#include "qlearn/levels.hpp"

#include <string>

#include "common/assert.hpp"

namespace glap::qlearn {

Level level_of(double utilization) noexcept {
  if (utilization <= 0.2) return Level::kLow;
  if (utilization <= 0.4) return Level::kMedium;
  if (utilization <= 0.5) return Level::kHigh;
  if (utilization <= 0.6) return Level::kXHigh;
  if (utilization <= 0.7) return Level::k2xHigh;
  if (utilization <= 0.8) return Level::k3xHigh;
  if (utilization <= 0.9) return Level::k4xHigh;
  if (utilization < 1.0) return Level::k5xHigh;
  return Level::kOverload;
}

double level_midpoint(Level level) noexcept {
  switch (level) {
    case Level::kLow:
      return 0.1;
    case Level::kMedium:
      return 0.3;
    case Level::kHigh:
      return 0.45;
    case Level::kXHigh:
      return 0.55;
    case Level::k2xHigh:
      return 0.65;
    case Level::k3xHigh:
      return 0.75;
    case Level::k4xHigh:
      return 0.85;
    case Level::k5xHigh:
      return 0.95;
    case Level::kOverload:
      return 1.0;
  }
  return 0.0;
}

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kLow:
      return "Low";
    case Level::kMedium:
      return "Medium";
    case Level::kHigh:
      return "High";
    case Level::kXHigh:
      return "xHigh";
    case Level::k2xHigh:
      return "2xHigh";
    case Level::k3xHigh:
      return "3xHigh";
    case Level::k4xHigh:
      return "4xHigh";
    case Level::k5xHigh:
      return "5xHigh";
    case Level::kOverload:
      return "Overload";
  }
  return "?";
}

LevelPair LevelPair::from_index(std::uint16_t index) noexcept {
  GLAP_DEBUG_ASSERT(index < kLevelPairCount, "level pair index out of range");
  return {static_cast<Level>(index / kLevelCount),
          static_cast<Level>(index % kLevelCount)};
}

LevelPair classify(double cpu_util, double mem_util) noexcept {
  return {level_of(cpu_util), level_of(mem_util)};
}

std::string to_string(LevelPair pair) {
  std::string out = "(";
  out += to_string(pair.cpu);
  out += ", ";
  out += to_string(pair.mem);
  out += ")";
  return out;
}

}  // namespace glap::qlearn
