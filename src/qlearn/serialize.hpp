// Q-table (de)serialization.
//
// A learned policy is valuable across runs: operators train once (or
// periodically) and ship the unified tables to new PMs joining the
// cluster. The format is a small CSV dialect —
//   state_cpu,state_mem,action_cpu,action_mem,q
// with level names (Low … Overload) for human inspection and diffing.
#pragma once

#include <iosfwd>

#include "qlearn/qtable.hpp"

namespace glap::qlearn {

/// Writes every entry of `table`, sorted by key for stable diffs.
void save_qtable(const QTable& table, std::ostream& out);

/// Parses the format written by save_qtable. Throws
/// glap::precondition_error on malformed rows or unknown level names.
[[nodiscard]] QTable load_qtable(std::istream& in);

/// Parses a level name ("Low", "Medium", …, "Overload").
[[nodiscard]] Level level_from_string(std::string_view name);

}  // namespace glap::qlearn
