#include "qlearn/qtable.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace glap::qlearn {

double QTable::value(State s, Action a) const {
  const auto it = values_.find(key_of(s, a));
  return it == values_.end() ? 0.0 : it->second;
}

bool QTable::contains(State s, Action a) const {
  return values_.contains(key_of(s, a));
}

void QTable::set(State s, Action a, double q) { values_[key_of(s, a)] = q; }

void QTable::update(State s, Action a, double reward, State next,
                    const QLearningParams& params) {
  GLAP_DEBUG_ASSERT(params.alpha >= 0.0 && params.alpha <= 1.0,
                    "alpha out of [0,1]");
  GLAP_DEBUG_ASSERT(params.gamma >= 0.0 && params.gamma <= 1.0,
                    "gamma out of [0,1]");
  const double old_q = value(s, a);
  const double target = reward + params.gamma * max_value(next);
  values_[key_of(s, a)] = (1.0 - params.alpha) * old_q + params.alpha * target;
}

double QTable::max_value(State s) const {
  // The state's action row spans a contiguous key block.
  const Key base = static_cast<Key>(s.index()) * kLevelPairCount;
  double best = 0.0;
  bool found = false;
  for (std::uint16_t a = 0; a < kLevelPairCount; ++a) {
    const auto it = values_.find(base + a);
    if (it == values_.end()) continue;
    if (!found || it->second > best) best = it->second;
    found = true;
  }
  return found ? best : 0.0;
}

std::optional<Action> QTable::best_action(
    State s, const std::vector<Action>& available) const {
  std::optional<Action> best;
  double best_q = 0.0;
  for (const Action& a : available) {
    const double q = value(s, a);
    if (!best || q > best_q) {
      best = a;
      best_q = q;
    }
  }
  return best;
}

void QTable::merge_average(const QTable& other) {
  for (const auto& [key, q_other] : other.values_) {
    auto it = values_.find(key);
    if (it == values_.end())
      values_.emplace(key, q_other);
    else
      it->second = 0.5 * (it->second + q_other);
  }
}

std::vector<double> QTable::dense() const {
  std::vector<double> out(kLevelPairCount * kLevelPairCount, 0.0);
  for (const auto& [key, q] : values_) out[key] = q;
  return out;
}

double cosine_similarity(const QTable& a, const QTable& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [key, qa] : a.entries()) {
    na += qa * qa;
    const auto it = b.entries().find(key);
    if (it != b.entries().end()) dot += qa * it->second;
  }
  for (const auto& [key, qb] : b.entries()) nb += qb * qb;
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace glap::qlearn
