#include "qlearn/qtable.hpp"

#include <bit>
#include <cmath>

#include "common/assert.hpp"

namespace glap::qlearn {

void QTable::update(State s, Action a, double reward, State next,
                    const QLearningParams& params) {
  GLAP_DEBUG_ASSERT(params.alpha >= 0.0 && params.alpha <= 1.0,
                    "alpha out of [0,1]");
  GLAP_DEBUG_ASSERT(params.gamma >= 0.0 && params.gamma <= 1.0,
                    "gamma out of [0,1]");
  const Key k = key_of(s, a);
  const double old_q = values_[k];  // 0.0 when absent, by invariant
  const double target = reward + params.gamma * max_value(next);
  mark_present(k);
  values_[k] = (1.0 - params.alpha) * old_q + params.alpha * target;
}

double QTable::max_value(State s) const noexcept {
  // The state's action row is one contiguous 81-element block.
  const Key base = static_cast<Key>(s.index()) * kLevelPairCount;
  double best = 0.0;
  bool found = false;
  for (std::uint16_t a = 0; a < kLevelPairCount; ++a) {
    const Key k = base + a;
    if (!present(k)) continue;
    const double q = values_[k];
    if (!found || q > best) best = q;
    found = true;
  }
  return found ? best : 0.0;
}

std::optional<Action> QTable::best_action(
    State s, const std::vector<Action>& available) const {
  const Key base = static_cast<Key>(s.index()) * kLevelPairCount;
  std::optional<Action> best;
  double best_q = 0.0;
  for (const Action& a : available) {
    const double q = values_[base + a.index()];
    if (!best || q > best_q) {
      best = a;
      best_q = q;
    }
  }
  return best;
}

void QTable::merge_average(const QTable& other) noexcept {
  // Walk the words of `other`'s presence bitmap: entries present in both
  // tables average, entries only `other` has are adopted verbatim.
  for (std::size_t w = 0; w < kWordCount; ++w) {
    const std::uint64_t theirs = other.present_[w];
    if (theirs == 0) continue;
    const std::uint64_t mine = present_[w];
    for (std::uint64_t pending = theirs; pending != 0;
         pending &= pending - 1) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(pending));
      const std::size_t k = w * 64 + bit;
      values_[k] = (mine >> bit) & 1u
                       ? 0.5 * (values_[k] + other.values_[k])
                       : other.values_[k];
    }
    size_ += static_cast<std::uint32_t>(std::popcount(theirs & ~mine));
    present_[w] = mine | theirs;
  }
}

CosineTerms cosine_terms(const QTable& a, const QTable& b) noexcept {
  // Absent slots hold 0.0, so a single linear pass over the flat arrays
  // computes the intersection dot product and both norms at once. Four
  // independent accumulator chains per term (lane j sums elements
  // k ≡ j mod 4, combined as (s0+s1)+(s2+s3)) break the FP-add latency
  // chain without -ffast-math reassociation. That combine order is part
  // of the kernel's deterministic result — the differential test's
  // reference model replicates it exactly.
  const auto& va = a.raw_values();
  const auto& vb = b.raw_values();
  // One pass per term: mixing the three reductions in one loop tempts the
  // SLP vectorizer into shuffle-heavy code, while a lone product-reduce
  // loop vectorizes cleanly. The arrays are ~52 KiB each, so three passes
  // stay cache-resident.
  const auto reduce = [](const double* x, const double* y) noexcept {
    double acc[4] = {};
    constexpr std::size_t kBlocked =
        QTable::kEntryCount & ~std::size_t{3};
    for (std::size_t k = 0; k < kBlocked; k += 4)
      for (std::size_t j = 0; j < 4; ++j) acc[j] += x[k + j] * y[k + j];
    double sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (std::size_t k = kBlocked; k < QTable::kEntryCount; ++k)
      sum += x[k] * y[k];
    return sum;
  };
  CosineTerms t;
  t.dot = reduce(va.data(), vb.data());
  t.norm_a = reduce(va.data(), va.data());
  t.norm_b = reduce(vb.data(), vb.data());
  return t;
}

double cosine_similarity(const QTable& a, const QTable& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const CosineTerms t = cosine_terms(a, b);
  if (t.norm_a == 0.0 && t.norm_b == 0.0) return 1.0;
  if (t.norm_a == 0.0 || t.norm_b == 0.0) return 0.0;
  return t.dot / (std::sqrt(t.norm_a) * std::sqrt(t.norm_b));
}

}  // namespace glap::qlearn
