// Sparse-semantics Q-table over (PM-state, VM-action) pairs, stored flat.
//
// The key space is tiny and fixed (81 states × 81 actions = 6561 pairs),
// so the table keeps a dense row-major array of doubles plus a presence
// bitmap (~52 KiB per table) instead of a hash map. Sparsity is still
// semantically meaningful — the gossip aggregation phase unions sparse
// tables, so "no entry" means "this PM never observed that pair", not
// "value zero" — but presence is a bit test, the Bellman update (paper
// formula (1)) is a branch-free store, greedy lookups scan one contiguous
// 81-element row, and Algorithm 2's merge plus the Fig. 5 cosine metric
// are single linear passes with no hashing anywhere.
//
// Invariant: slots whose presence bit is clear always hold 0.0, so
// value() and the linear kernels never need to consult the bitmap.
#pragma once

#include <array>
#include <cstdint>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "qlearn/levels.hpp"

namespace glap::qlearn {

struct QLearningParams {
  double alpha = 0.5;  ///< learning rate
  double gamma = 0.8;  ///< discount factor
};

class QTable {
 public:
  using Key = std::uint32_t;

  /// Total (state, action) pairs: 81 × 81.
  static constexpr std::size_t kEntryCount =
      kLevelPairCount * kLevelPairCount;

  [[nodiscard]] static constexpr Key key_of(State s, Action a) noexcept {
    return static_cast<Key>(s.index()) * kLevelPairCount + a.index();
  }
  [[nodiscard]] static State state_of(Key k) noexcept {
    return State::from_index(static_cast<std::uint16_t>(k / kLevelPairCount));
  }
  [[nodiscard]] static Action action_of(Key k) noexcept {
    return Action::from_index(static_cast<std::uint16_t>(k % kLevelPairCount));
  }

  /// Q(s, a); 0 when the pair has never been visited.
  [[nodiscard]] double value(State s, Action a) const noexcept {
    return values_[key_of(s, a)];
  }

  /// Whether the pair has an entry.
  [[nodiscard]] bool contains(State s, Action a) const noexcept {
    return present(key_of(s, a));
  }

  void set(State s, Action a, double q) noexcept {
    const Key k = key_of(s, a);
    mark_present(k);
    values_[k] = q;
  }

  /// Bellman update (paper formula (1)):
  ///   Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·max_{a'} Q(s',a')).
  /// The max ranges over actions already known for s' (0 when none).
  void update(State s, Action a, double reward, State next,
              const QLearningParams& params);

  /// max_a Q(s, a) over known actions (0 when s has no entries).
  [[nodiscard]] double max_value(State s) const noexcept;

  /// Greedy action restricted to `available` (π_out): the available action
  /// with the greatest Q(s, ·). Unknown pairs count as Q = 0. Returns
  /// nullopt when `available` is empty. Ties break toward the first
  /// occurrence in `available`.
  [[nodiscard]] std::optional<Action> best_action(
      State s, const std::vector<Action>& available) const;

  /// Algorithm 2's UPDATE: average values present in both tables, adopt
  /// entries present in exactly one.
  void merge_average(const QTable& other) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  void clear() noexcept {
    values_.fill(0.0);
    present_.fill(0);
    size_ = 0;
  }

  /// Iteration support for serialization/analysis: a forward range of
  /// (key, value) pairs over the *present* entries, in ascending key
  /// order (stable output without sorting).
  class EntryIterator {
   public:
    using value_type = std::pair<Key, double>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    EntryIterator(const QTable* table, std::size_t key) noexcept
        : table_(table), key_(key) {
      skip_absent();
    }
    [[nodiscard]] value_type operator*() const noexcept {
      return {static_cast<Key>(key_), table_->values_[key_]};
    }
    EntryIterator& operator++() noexcept {
      ++key_;
      skip_absent();
      return *this;
    }
    EntryIterator operator++(int) noexcept {
      EntryIterator copy = *this;
      ++*this;
      return copy;
    }
    [[nodiscard]] friend bool operator==(const EntryIterator& a,
                                         const EntryIterator& b) noexcept {
      return a.key_ == b.key_;
    }

   private:
    void skip_absent() noexcept {
      while (key_ < kEntryCount && !table_->present(static_cast<Key>(key_)))
        ++key_;
    }
    const QTable* table_;
    std::size_t key_;
  };

  class EntryRange {
   public:
    explicit EntryRange(const QTable* table) noexcept : table_(table) {}
    [[nodiscard]] EntryIterator begin() const noexcept {
      return {table_, 0};
    }
    [[nodiscard]] EntryIterator end() const noexcept {
      return {table_, kEntryCount};
    }

   private:
    const QTable* table_;
  };

  [[nodiscard]] EntryRange entries() const noexcept {
    return EntryRange{this};
  }

  /// Flat 6561-element value array (absent pairs hold 0.0). Backing store
  /// for the vectorized merge/cosine kernels and dense().
  [[nodiscard]] const std::array<double, kEntryCount>& raw_values()
      const noexcept {
    return values_;
  }

  /// Dense 6561-dim snapshot (unvisited pairs are 0).
  [[nodiscard]] std::vector<double> dense() const {
    return {values_.begin(), values_.end()};
  }

 private:
  static constexpr std::size_t kWordCount = (kEntryCount + 63) / 64;

  [[nodiscard]] bool present(Key k) const noexcept {
    return (present_[k >> 6] >> (k & 63)) & 1u;
  }
  void mark_present(Key k) noexcept {
    std::uint64_t& word = present_[k >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (k & 63);
    size_ += static_cast<std::uint32_t>(!(word & bit));
    word |= bit;
  }

  std::array<double, kEntryCount> values_{};
  std::array<std::uint64_t, kWordCount> present_{};
  std::uint32_t size_ = 0;
};

/// Dot product and squared norms over two tables' shared key space (one
/// linear pass; absent entries contribute nothing). Building block for
/// the Fig. 5 convergence metric here and in core::QTablePair.
struct CosineTerms {
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
};
[[nodiscard]] CosineTerms cosine_terms(const QTable& a,
                                       const QTable& b) noexcept;

/// Cosine similarity between two sparse tables over the union key space.
/// Two empty tables are identical (1); one empty table scores 0.
[[nodiscard]] double cosine_similarity(const QTable& a, const QTable& b);

}  // namespace glap::qlearn
