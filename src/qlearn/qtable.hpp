// Sparse Q-table over (PM-state, VM-action) pairs.
//
// Stores only visited pairs (the gossip aggregation phase unions sparse
// maps, so sparsity is semantically meaningful: "no entry" means "this PM
// never observed that pair", not "value zero"). Provides the Bellman
// update from the paper's formula (1), greedy lookups restricted to an
// available-action set, the pairwise merge of Algorithm 2, and the cosine
// similarity used by the Fig. 5 convergence experiment.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "qlearn/levels.hpp"

namespace glap::qlearn {

struct QLearningParams {
  double alpha = 0.5;  ///< learning rate
  double gamma = 0.8;  ///< discount factor
};

class QTable {
 public:
  using Key = std::uint32_t;

  [[nodiscard]] static constexpr Key key_of(State s, Action a) noexcept {
    return static_cast<Key>(s.index()) * kLevelPairCount + a.index();
  }
  [[nodiscard]] static State state_of(Key k) noexcept {
    return State::from_index(static_cast<std::uint16_t>(k / kLevelPairCount));
  }
  [[nodiscard]] static Action action_of(Key k) noexcept {
    return Action::from_index(static_cast<std::uint16_t>(k % kLevelPairCount));
  }

  /// Q(s, a); 0 when the pair has never been visited.
  [[nodiscard]] double value(State s, Action a) const;

  /// Whether the pair has an entry.
  [[nodiscard]] bool contains(State s, Action a) const;

  void set(State s, Action a, double q);

  /// Bellman update (paper formula (1)):
  ///   Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·max_{a'} Q(s',a')).
  /// The max ranges over actions already known for s' (0 when none).
  void update(State s, Action a, double reward, State next,
              const QLearningParams& params);

  /// max_a Q(s, a) over known actions (0 when s has no entries).
  [[nodiscard]] double max_value(State s) const;

  /// Greedy action restricted to `available` (π_out): the available action
  /// with the greatest Q(s, ·). Unknown pairs count as Q = 0. Returns
  /// nullopt when `available` is empty. Ties break toward the first
  /// occurrence in `available`.
  [[nodiscard]] std::optional<Action> best_action(
      State s, const std::vector<Action>& available) const;

  /// Algorithm 2's UPDATE: average values present in both tables, adopt
  /// entries present in exactly one.
  void merge_average(const QTable& other);

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  void clear() noexcept { values_.clear(); }

  /// Iteration support for serialization/analysis.
  [[nodiscard]] const std::unordered_map<Key, double>& entries()
      const noexcept {
    return values_;
  }

  /// Dense 6561-dim snapshot (unvisited pairs are 0).
  [[nodiscard]] std::vector<double> dense() const;

 private:
  std::unordered_map<Key, double> values_;
};

/// Cosine similarity between two sparse tables over the union key space.
/// Two empty tables are identical (1); one empty table scores 0.
[[nodiscard]] double cosine_similarity(const QTable& a, const QTable& b);

}  // namespace glap::qlearn
