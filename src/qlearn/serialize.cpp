#include "qlearn/serialize.hpp"

#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "common/csv.hpp"

namespace glap::qlearn {

Level level_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kLevelCount; ++i) {
    const auto level = static_cast<Level>(i);
    if (to_string(level) == name) return level;
  }
  GLAP_REQUIRE(false, "unknown level name: " + std::string(name));
  return Level::kLow;  // unreachable
}

void save_qtable(const QTable& table, std::ostream& out) {
  CsvWriter writer(out);
  writer.write_row({"state_cpu", "state_mem", "action_cpu", "action_mem",
                    "q"});
  // entries() iterates in ascending key order, so rows come out sorted
  // (stable diffs) without an explicit sort.
  for (const auto& [key, q] : table.entries()) {
    const State s = QTable::state_of(key);
    const Action a = QTable::action_of(key);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", q);
    writer.write_row({std::string(to_string(s.cpu)),
                      std::string(to_string(s.mem)),
                      std::string(to_string(a.cpu)),
                      std::string(to_string(a.mem)), buf});
  }
}

QTable load_qtable(std::istream& in) {
  const CsvTable csv = read_csv(in, /*has_header=*/true);
  GLAP_REQUIRE(csv.column("state_cpu") == 0 && csv.column("q") == 4,
               "unexpected q-table CSV header");
  QTable table;
  for (const auto& row : csv.rows) {
    GLAP_REQUIRE(row.size() == 5, "q-table row must have 5 fields");
    const State s{level_from_string(row[0]), level_from_string(row[1])};
    const Action a{level_from_string(row[2]), level_from_string(row[3])};
    table.set(s, a, std::stod(row[4]));
  }
  return table;
}

}  // namespace glap::qlearn
