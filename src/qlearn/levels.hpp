// Calibrated resource-utilization levels (paper §IV-A).
//
// GLAP discretizes utilization into nine levels so that states and actions
// stay finite. The thresholds are exactly the paper's:
//   Low ≤ 0.2 < Medium ≤ 0.4 < High ≤ 0.5 < xHigh ≤ 0.6 < 2xHigh ≤ 0.7 <
//   3xHigh ≤ 0.8 < 4xHigh ≤ 0.9 < 5xHigh < 1.0 = Overload.
// Utilizations above 1 (an oversubscribed PM) are Overload as well.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace glap::qlearn {

enum class Level : std::uint8_t {
  kLow = 0,
  kMedium,
  kHigh,
  kXHigh,
  k2xHigh,
  k3xHigh,
  k4xHigh,
  k5xHigh,
  kOverload,
};

inline constexpr std::size_t kLevelCount = 9;

/// Maps a utilization value to its calibrated level.
[[nodiscard]] Level level_of(double utilization) noexcept;

/// Representative (midpoint) utilization of a level; Overload maps to 1.
[[nodiscard]] double level_midpoint(Level level) noexcept;

[[nodiscard]] std::string_view to_string(Level level) noexcept;

[[nodiscard]] constexpr std::uint8_t level_index(Level level) noexcept {
  return static_cast<std::uint8_t>(level);
}

/// Per-(CPU, memory) level pair; serves as both PM state and VM action
/// (paper: an action is "migration of a VM in a certain state").
struct LevelPair {
  Level cpu = Level::kLow;
  Level mem = Level::kLow;

  friend constexpr bool operator==(LevelPair a, LevelPair b) noexcept {
    return a.cpu == b.cpu && a.mem == b.mem;
  }

  /// Dense index in [0, 81).
  [[nodiscard]] constexpr std::uint16_t index() const noexcept {
    return static_cast<std::uint16_t>(level_index(cpu) * kLevelCount +
                                      level_index(mem));
  }

  [[nodiscard]] static LevelPair from_index(std::uint16_t index) noexcept;

  /// True when any resource is at the Overload level.
  [[nodiscard]] constexpr bool any_overload() const noexcept {
    return cpu == Level::kOverload || mem == Level::kOverload;
  }
};

inline constexpr std::size_t kLevelPairCount = kLevelCount * kLevelCount;

/// Classifies a (cpu, mem) utilization vector.
[[nodiscard]] LevelPair classify(double cpu_util, double mem_util) noexcept;

/// Renders e.g. "(3xHigh, Medium)".
[[nodiscard]] std::string to_string(LevelPair pair);

using State = LevelPair;
using Action = LevelPair;

}  // namespace glap::qlearn
