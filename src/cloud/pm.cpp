#include "cloud/pm.hpp"

#include <algorithm>

namespace glap::cloud {

bool Pm::remove_vm(VmId vm) {
  auto it = std::find(vms_.begin(), vms_.end(), vm);
  if (it == vms_.end()) return false;
  vms_.erase(it);
  return true;
}

}  // namespace glap::cloud
