#include "cloud/sla.hpp"

namespace glap::cloud {

SlaAccounting::SlaAccounting(std::size_t pm_count, std::size_t vm_count,
                             SlaParams params)
    : params_(params), pms_(pm_count), vms_(vm_count) {
  GLAP_REQUIRE(pm_count > 0 && vm_count > 0, "empty SLA accounting");
  GLAP_REQUIRE(params.migration_degradation >= 0.0 &&
                   params.migration_degradation <= 1.0,
               "migration degradation fraction out of range");
}

void SlaAccounting::record_pm_round(std::size_t pm, bool active,
                                    bool cpu_saturated, double dt_seconds) {
  GLAP_REQUIRE(pm < pms_.size(), "pm index out of range");
  GLAP_REQUIRE(dt_seconds >= 0.0, "negative round duration");
  if (!active) return;
  pms_[pm].active_s += dt_seconds;
  if (cpu_saturated) pms_[pm].saturated_s += dt_seconds;
}

void SlaAccounting::record_vm_round(std::size_t vm, double cpu_usage_mips,
                                    double dt_seconds) {
  GLAP_REQUIRE(vm < vms_.size(), "vm index out of range");
  GLAP_REQUIRE(cpu_usage_mips >= 0.0 && dt_seconds >= 0.0,
               "negative VM accounting inputs");
  vms_[vm].requested_mips_s += cpu_usage_mips * dt_seconds;
}

void SlaAccounting::record_migration(std::size_t vm, double cpu_usage_mips,
                                     double tau_seconds) {
  GLAP_REQUIRE(vm < vms_.size(), "vm index out of range");
  GLAP_REQUIRE(cpu_usage_mips >= 0.0 && tau_seconds >= 0.0,
               "negative migration accounting inputs");
  vms_[vm].degraded_mips_s +=
      params_.migration_degradation * cpu_usage_mips * tau_seconds;
}

double SlaAccounting::slavo() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& pm : pms_) {
    if (pm.active_s <= 0.0) continue;
    sum += pm.saturated_s / pm.active_s;
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

double SlaAccounting::slalm() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& vm : vms_) {
    if (vm.requested_mips_s <= 0.0) continue;
    sum += vm.degraded_mips_s / vm.requested_mips_s;
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

double SlaAccounting::pm_saturated_seconds(std::size_t pm) const {
  GLAP_REQUIRE(pm < pms_.size(), "pm index out of range");
  return pms_[pm].saturated_s;
}

double SlaAccounting::pm_active_seconds(std::size_t pm) const {
  GLAP_REQUIRE(pm < pms_.size(), "pm index out of range");
  return pms_[pm].active_s;
}

}  // namespace glap::cloud
