// Physical machine: capacity, power model, and the set of hosted VMs.
// Aggregated utilization and the power bit live on DataCenter (which
// owns the VM objects and the struct-of-arrays node state); the PM only
// tracks membership and its static hardware description.
#pragma once

#include <vector>

#include "cloud/power.hpp"
#include "cloud/specs.hpp"

namespace glap::cloud {

enum class PmPower : std::uint8_t { kOn, kSleep };

class Pm {
 public:
  Pm(PmId id, PmSpec spec)
      : id_(id), spec_(spec), power_model_(spec.power) {}

  [[nodiscard]] PmId id() const noexcept { return id_; }
  [[nodiscard]] const PmSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const LinearPowerModel& power_model() const noexcept {
    return power_model_;
  }

  [[nodiscard]] const std::vector<VmId>& vms() const noexcept { return vms_; }
  [[nodiscard]] bool empty() const noexcept { return vms_.empty(); }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }

 private:
  friend class DataCenter;

  void add_vm(VmId vm) { vms_.push_back(vm); }
  bool remove_vm(VmId vm);

  PmId id_;
  PmSpec spec_;
  LinearPowerModel power_model_;
  std::vector<VmId> vms_;
};

}  // namespace glap::cloud
