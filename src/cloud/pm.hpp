// Physical machine: capacity, power state, and the set of hosted VMs.
// Aggregated utilization lives on DataCenter (which owns the VM objects);
// the PM only tracks membership and its power/activity bookkeeping.
#pragma once

#include <vector>

#include "cloud/power.hpp"
#include "cloud/specs.hpp"

namespace glap::cloud {

enum class PmPower : std::uint8_t { kOn, kSleep };

class Pm {
 public:
  Pm(PmId id, PmSpec spec)
      : id_(id), spec_(spec), power_model_(spec.power) {}

  [[nodiscard]] PmId id() const noexcept { return id_; }
  [[nodiscard]] const PmSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const LinearPowerModel& power_model() const noexcept {
    return power_model_;
  }

  [[nodiscard]] PmPower power() const noexcept { return power_; }
  [[nodiscard]] bool is_on() const noexcept { return power_ == PmPower::kOn; }

  [[nodiscard]] const std::vector<VmId>& vms() const noexcept { return vms_; }
  [[nodiscard]] bool empty() const noexcept { return vms_.empty(); }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }

 private:
  friend class DataCenter;

  void add_vm(VmId vm) { vms_.push_back(vm); }
  bool remove_vm(VmId vm);
  void set_power(PmPower p) noexcept { power_ = p; }

  PmId id_;
  PmSpec spec_;
  LinearPowerModel power_model_;
  PmPower power_ = PmPower::kOn;
  std::vector<VmId> vms_;
};

}  // namespace glap::cloud
