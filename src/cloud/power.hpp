// Power and migration-energy models.
//
// PM power draw is linear in CPU utilization — the standard model for this
// server class, shared with the compared work [10]:
//     P(u) = P_idle + (P_max − P_idle) · u,   u ∈ [0, 1].
// Migration energy overhead follows the paper's Eq. 3 (after Strunk &
// Dargie [2]): both endpoints burn extra CPU for the transfer duration τ,
//     E = ((P_i^lm − P_i^idle) + (P_j^lm − P_j^idle)) · τ,
// where P^lm is the power at the machine's utilization plus a fixed
// migration CPU overhead share.
#pragma once

#include "cloud/specs.hpp"

namespace glap::cloud {

class LinearPowerModel {
 public:
  explicit LinearPowerModel(PowerParams params);

  /// Instantaneous draw at utilization u (clamped to [0,1]), in watts.
  [[nodiscard]] double power_watts(double utilization) const noexcept;

  /// Energy over an interval at constant utilization, in joules.
  [[nodiscard]] double energy_joules(double utilization,
                                     double seconds) const noexcept;

  [[nodiscard]] double idle_watts() const noexcept { return params_.idle_watts; }
  [[nodiscard]] double max_watts() const noexcept { return params_.max_watts; }

 private:
  PowerParams params_;
};

struct MigrationEnergyParams {
  /// Fraction of CPU the live-migration transfer consumes on each endpoint.
  double cpu_overhead_fraction = 0.10;
};

/// Transfer duration: the VM's resident memory over the migration
/// bandwidth shared by the two endpoints (the tighter of the two).
[[nodiscard]] double migration_seconds(double vm_mem_mb, double src_bw_mbps,
                                       double dst_bw_mbps) noexcept;

/// Paper Eq. 3.
[[nodiscard]] double migration_energy_joules(
    const LinearPowerModel& src_model, double src_utilization,
    const LinearPowerModel& dst_model, double dst_utilization,
    double tau_seconds, const MigrationEnergyParams& params) noexcept;

}  // namespace glap::cloud
