#include "cloud/vm.hpp"

#include "common/assert.hpp"

namespace glap::cloud {

void Vm::observe_demand(const Resources& fraction) {
  GLAP_REQUIRE(fraction.cpu >= 0.0 && fraction.cpu <= 1.0 &&
                   fraction.mem >= 0.0 && fraction.mem <= 1.0,
               "demand fraction out of [0,1]");
  demand_fraction_ = fraction;
  tracker_.observe(fraction);
}

}  // namespace glap::cloud
