// The data-center substrate: owns every PM and VM, the placement map, and
// all the accounting the evaluation metrics read (migrations, energy, SLA).
//
// Round protocol (driven by the experiment harness):
//   1. observe_demands(fracs)  — push this round's per-VM demand samples;
//   2. consolidation protocols run and call migrate()/set_power();
//   3. end_round()             — accumulate time-based metrics.
//
// Consolidation algorithms only mutate the data center through migrate()
// and set_power(), so every placement invariant is enforced in one place.
//
// Hot node state is struct-of-arrays: per-VM demand fractions, running
// averages, and precomputed absolute usage, plus the per-PM power bitmap,
// live in flat vectors indexed by VmId/PmId. The Vm/Pm objects carry only
// identity and hardware description, so the per-round demand fold and the
// overload/power scans at 100k PMs walk contiguous memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "cloud/migration.hpp"
#include "cloud/pm.hpp"
#include "cloud/sla.hpp"
#include "cloud/vm.hpp"
#include "common/assert.hpp"
#include "common/exec_context.hpp"
#include "common/rng.hpp"

namespace glap::metrics {
class MetricsRegistry;
class Counter;
class OrderedHistogram;
}  // namespace glap::metrics
namespace glap::trace {
class TraceLog;
}

namespace glap::cloud {

/// Relaxed atomic counter that stays copyable/movable so DataCenter keeps
/// value semantics. Copies happen only at quiescent points (construction,
/// test fixtures) where no concurrent mutation is possible.
class RelaxedCounter {
 public:
  RelaxedCounter(std::size_t v = 0) noexcept : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  [[nodiscard]] std::size_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void increment() noexcept { v_.fetch_add(1, std::memory_order_relaxed); }
  void decrement() noexcept { v_.fetch_sub(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> v_;
};

struct DataCenterConfig {
  /// Specs used by the homogeneous constructor, and the reference PM
  /// class for the BFD oracle in heterogeneous fleets.
  PmSpec pm_spec = hp_proliant_ml110_g5();
  VmSpec vm_spec = ec2_micro();
  double round_seconds = 120.0;  ///< paper: each round mimics 2 minutes
  SlaParams sla;
  MigrationEnergyParams migration_energy;
};

class DataCenter {
 public:
  /// Homogeneous fleet: every PM is config.pm_spec, every VM
  /// config.vm_spec (the paper's evaluation setting).
  DataCenter(std::size_t pm_count, std::size_t vm_count,
             DataCenterConfig config);

  /// Heterogeneous fleet: one spec per PM and per VM.
  DataCenter(std::vector<PmSpec> pm_specs, std::vector<VmSpec> vm_specs,
             DataCenterConfig config);

  // ------------------------------------------------------------ placement

  /// Places VM `vm` on PM `pm` during initial setup (no migration cost).
  void place(VmId vm, PmId pm);

  /// Random initial placement, at most `max_per_pm` VMs per PM (0 = no
  /// cap). The same seed reproduces the same placement, which the paper
  /// requires to compare algorithms fairly.
  void place_randomly(Rng& rng, std::size_t max_per_pm = 0);

  /// Removes a placed VM from its host (churn departure). The VM keeps
  /// its identity and demand-average history and may be re-placed later
  /// via place().
  void depart(VmId vm);

  [[nodiscard]] bool is_placed(VmId vm) const;
  [[nodiscard]] std::size_t placed_vm_count() const noexcept {
    return placed_vms_;
  }

  /// Returns the current placement (vm -> pm) snapshot (departed VMs map
  /// to PmId(-1)).
  [[nodiscard]] std::vector<PmId> placement_snapshot() const;

  // ------------------------------------------------------------- topology

  [[nodiscard]] std::size_t pm_count() const noexcept { return pms_.size(); }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }

  [[nodiscard]] const Pm& pm(PmId id) const;
  [[nodiscard]] const Vm& vm(VmId id) const;
  [[nodiscard]] PmId host_of(VmId id) const;

  [[nodiscard]] const DataCenterConfig& config() const noexcept {
    return config_;
  }

  // ------------------------------------------------- node state (SoA pools)

  /// True when the PM is powered on (flat bitmap; the Pm object itself
  /// carries no power state).
  [[nodiscard]] bool pm_on(PmId id) const {
    GLAP_REQUIRE(id < pm_on_.size(), "pm id out of range");
    return pm_on_[id] != 0;
  }

  /// Current demand as fractions of the VM's own allocation.
  [[nodiscard]] Resources vm_demand_fraction(VmId id) const {
    GLAP_REQUIRE(id < vm_demand_.size(), "vm id out of range");
    return vm_demand_[id];
  }
  /// Running-average demand as fractions of the VM allocation (the
  /// paper's {c, v} piggyback tuple, folded per observe_demands call).
  [[nodiscard]] Resources vm_average_fraction(VmId id) const {
    GLAP_REQUIRE(id < vm_avg_.size(), "vm id out of range");
    return vm_avg_[id];
  }
  /// Current absolute usage (MIPS, MB); precomputed at observation time.
  [[nodiscard]] Resources vm_current_usage(VmId id) const {
    GLAP_REQUIRE(id < vm_usage_.size(), "vm id out of range");
    return vm_usage_[id];
  }
  /// Average absolute usage (MIPS, MB).
  [[nodiscard]] Resources vm_average_usage(VmId id) const {
    GLAP_REQUIRE(id < vm_avg_.size(), "vm id out of range");
    return vm_avg_[id].scaled_by(vm_capacity_[id]);
  }
  [[nodiscard]] std::uint64_t vm_observation_count(VmId id) const {
    GLAP_REQUIRE(id < vm_avg_count_.size(), "vm id out of range");
    return vm_avg_count_[id];
  }

  // ---------------------------------------------------------- utilization

  /// Aggregate *current* usage of a PM in absolute units (MIPS, MB).
  [[nodiscard]] Resources current_usage(PmId id) const;
  /// Aggregate current usage as a fraction of PM capacity (may exceed 1
  /// when the PM is oversubscribed — that is what overload means).
  [[nodiscard]] Resources current_utilization(PmId id) const;
  /// Same using the VMs' running-average demands (GLAP's state input).
  [[nodiscard]] Resources average_utilization(PmId id) const;

  /// A PM is overloaded when aggregate current demand reaches capacity on
  /// any resource (CPU at 100% is the SLA-relevant case).
  [[nodiscard]] bool overloaded(PmId id) const;
  [[nodiscard]] bool cpu_saturated(PmId id) const;

  /// True when `pm` can host `vm`'s *current* usage within capacity.
  [[nodiscard]] bool can_host(PmId pm, VmId vm) const;

  /// Number of PMs that are powered on.
  [[nodiscard]] std::size_t active_pm_count() const noexcept {
    return active_pms_.load();
  }
  /// Number of powered-on PMs currently overloaded.
  [[nodiscard]] std::size_t overloaded_pm_count() const;

  // ------------------------------------------------------------ mutation

  /// Live-migrates `vm` to `to`. Validates that the source is not the
  /// destination and that `to` is powered on, computes τ and migration
  /// energy, and updates SLA degradation. Capacity is deliberately NOT
  /// enforced here — policies differ in how strictly they check (that is
  /// part of what the paper compares); use can_host() in the policy.
  MigrationRecord migrate(VmId vm, PmId to);

  /// Powers a PM on/off. Sleeping requires the PM to be empty.
  void set_power(PmId id, PmPower power);

  /// Deferred accounting mode for the parallel engine: migrate() still
  /// applies placement mutations immediately (they are protected by the
  /// engine's reservations), but the order-sensitive accounting — SLA
  /// degradation, the floating-point migration-energy sum, the migration
  /// record list — is logged per execution shard and replayed in serial
  /// order by commit_deferred_accounting(). This keeps those sums
  /// bit-identical to the serial engine regardless of thread scheduling.
  void set_deferred_accounting(bool enabled);
  [[nodiscard]] bool deferred_accounting() const noexcept {
    return deferred_accounting_;
  }

  /// Replays deferred accounting in (order_key, seq) order — exactly the
  /// serial execution order. Call at a quiescent point (the harness calls
  /// it after every engine step). No-op when nothing is deferred.
  void commit_deferred_accounting();

  // ------------------------------------------------------- quiescence hook

  /// Placement/demand events the quiescence engine re-activates PMs on.
  enum class WakeEvent : std::uint8_t {
    kDemand,     ///< a hosted VM's demand moved past the epsilon band, or
                 ///< the PM is currently overloaded
    kMigration,  ///< a VM arrived at / left the PM (migration or churn)
    kPower,      ///< the PM's power state changed
  };
  using WakeHook = std::function<void(PmId, WakeEvent)>;

  /// Installs the wake hook the harness bridges to Engine::wake(). The
  /// hook fires on migrate()/place()/depart() for both endpoints, on
  /// set_power() transitions, and during observe_demands() for every PM
  /// hosting a VM whose demand fraction drifted more than
  /// `demand_epsilon` (either resource) from its last-notified reference,
  /// plus every overloaded PM. Reference fractions advance only when the
  /// hook fires, so the notification sequence is a pure function of the
  /// demand stream and placement history — identical across engine modes.
  /// Pass a null hook to detach.
  void set_wake_hook(WakeHook hook, double demand_epsilon);

  /// Extra migration latency charged by the network model (DESIGN.md
  /// §13.5): called from migrate() as hook(from, to, mem_mb) and the
  /// returned seconds are added to τ before the energy integral. The
  /// harness installs it when `network.migration_contention` is on; a
  /// null hook (the default) keeps the dedicated-bandwidth τ of §5.
  using MigrationNetworkHook = std::function<double(PmId, PmId, double)>;
  void set_migration_network(MigrationNetworkHook hook) {
    migration_network_ = std::move(hook);
  }

  /// Attaches observability sinks (neither owned; either may be null).
  /// Resolves and caches the DataCenter's instruments — dc.migrations,
  /// dc.power_transitions, dc.migration_tau_s, dc.migration_energy_j —
  /// so the hot paths pay one null check when observability is off.
  /// Call from the driver thread, before the engine runs.
  void set_telemetry(metrics::MetricsRegistry* registry,
                     trace::TraceLog* trace);

  // ------------------------------------------------------- round protocol

  /// Pushes this round's demand fractions (one entry per VM, indexed by
  /// VmId) and updates every *placed* VM's running average; departed VMs'
  /// samples are ignored (their workload does not exist right now).
  void observe_demands(std::span<const Resources> fractions);

  /// Closes the round: SLA time accounting and PM energy integration.
  void end_round();

  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }

  // -------------------------------------------------------------- metrics

  [[nodiscard]] std::uint64_t total_migrations() const noexcept {
    return migrations_.size();
  }
  [[nodiscard]] const std::vector<MigrationRecord>& migrations() const noexcept {
    return migrations_;
  }
  /// Total migration-overhead energy so far (J), per paper Eq. 3.
  [[nodiscard]] double migration_energy_joules() const noexcept {
    return migration_energy_j_;
  }
  /// Total PM energy so far (J), from the linear power model.
  [[nodiscard]] double total_energy_joules() const noexcept {
    return total_energy_j_;
  }
  [[nodiscard]] const SlaAccounting& sla() const noexcept { return sla_; }

  /// Migrations that completed during the current (not yet ended) round.
  [[nodiscard]] std::uint64_t migrations_this_round() const noexcept {
    return migrations_this_round_;
  }

 private:
  struct DeferredMigration {
    std::uint64_t order_key;  ///< serial rank of the initiating interaction
    std::uint32_t seq;        ///< mutation index within that interaction
    MigrationRecord record;
    double vm_cpu_mips;  ///< CPU usage at migration time (SLA input)
  };

  void apply_migration_accounting(const MigrationRecord& record,
                                  double vm_cpu_mips);

  DataCenterConfig config_;
  std::vector<Pm> pms_;
  std::vector<Vm> vms_;
  std::vector<PmId> host_of_;
  std::size_t placed_vms_ = 0;
  std::vector<Resources> usage_cache_;  // per-PM aggregate current usage
  // Struct-of-arrays node state (hot paths scan these linearly).
  std::vector<std::uint8_t> pm_on_;      // power bitmap, 1 = on
  std::vector<Resources> vm_demand_;     // current fraction of allocation
  std::vector<Resources> vm_usage_;      // absolute usage = demand × capacity
  std::vector<Resources> vm_avg_;        // running-average fraction
  std::vector<std::uint64_t> vm_avg_count_;
  std::vector<Resources> vm_capacity_;   // flat copy of spec().capacity()
  std::vector<Resources> vm_wake_ref_;   // last hook-notified fraction
  WakeHook wake_hook_;
  MigrationNetworkHook migration_network_;
  double demand_epsilon_ = 0.0;
  RelaxedCounter active_pms_;
  bool deferred_accounting_ = false;
  /// One log per exec shard; threads append lock-free to their own shard.
  std::vector<std::vector<DeferredMigration>> deferred_log_;
  std::vector<DeferredMigration> commit_scratch_;
  std::vector<MigrationRecord> migrations_;
  // Observability (see set_telemetry). Raw pointers into an externally
  // owned MetricsRegistry; null means disabled.
  trace::TraceLog* trace_ = nullptr;
  metrics::Counter* ctr_migrations_ = nullptr;
  metrics::Counter* ctr_power_transitions_ = nullptr;
  metrics::OrderedHistogram* hist_tau_ = nullptr;
  metrics::OrderedHistogram* hist_energy_ = nullptr;
  std::uint64_t migrations_this_round_ = 0;
  double migration_energy_j_ = 0.0;
  double total_energy_j_ = 0.0;
  SlaAccounting sla_;
  std::uint32_t round_ = 0;
};

}  // namespace glap::cloud
