// Machine specifications used by the evaluation (paper §V-A):
// PMs modeled as HP ProLiant ML110 G5 (2660 MIPS, 4 GB, 10 Gb/s-class
// network) and VMs as EC2 micro instances (500 MIPS, 613 MB).
#pragma once

#include <cstdint>

#include "common/resources.hpp"

namespace glap::cloud {

using VmId = std::uint32_t;
using PmId = std::uint32_t;

struct VmSpec {
  double cpu_mips = 500.0;
  double mem_mb = 613.0;

  [[nodiscard]] constexpr Resources capacity() const noexcept {
    return {cpu_mips, mem_mb};
  }
};

/// Linear power model parameters; published SPECpower figures for the
/// ML110 G5 (the same model the PABFD paper [10] uses).
struct PowerParams {
  double idle_watts = 93.7;
  double max_watts = 135.0;
};

struct PmSpec {
  double cpu_mips = 2660.0;
  double mem_mb = 4096.0;
  /// Effective live-migration throughput per transfer, in MB/s. The paper
  /// cites a fast data-center network, but live-migration page-copy
  /// throughput is bounded by the hypervisor, not the fabric; 125 MB/s
  /// (1 Gb/s, the setting of the compared work [10]) keeps τ — and hence
  /// SLALM and Eq.-3 energy — in the regime the paper reports.
  double migration_bw_mbps = 125.0;
  PowerParams power;

  [[nodiscard]] constexpr Resources capacity() const noexcept {
    return {cpu_mips, mem_mb};
  }
};

/// The evaluation's PM preset.
[[nodiscard]] constexpr PmSpec hp_proliant_ml110_g5() noexcept {
  return PmSpec{};
}

/// The older server class of the comparator work's testbed [10]
/// (heterogeneous-fleet experiments): slower, smaller idle/max draw.
[[nodiscard]] constexpr PmSpec hp_proliant_ml110_g4() noexcept {
  return PmSpec{.cpu_mips = 1860.0,
                .mem_mb = 4096.0,
                .migration_bw_mbps = 125.0,
                .power = {.idle_watts = 86.0, .max_watts = 117.0}};
}

/// The evaluation's VM preset.
[[nodiscard]] constexpr VmSpec ec2_micro() noexcept { return VmSpec{}; }

/// Larger instance types (heterogeneous-fleet experiments; sizes follow
/// the compared work's VM classes).
[[nodiscard]] constexpr VmSpec ec2_small() noexcept {
  return VmSpec{.cpu_mips = 1000.0, .mem_mb = 1740.0};
}
[[nodiscard]] constexpr VmSpec ec2_medium() noexcept {
  return VmSpec{.cpu_mips = 2000.0, .mem_mb = 1740.0};
}

}  // namespace glap::cloud
