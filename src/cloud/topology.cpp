#include "cloud/topology.hpp"

#include "common/assert.hpp"

namespace glap::cloud {

RackTopology::RackTopology(std::size_t pm_count, std::size_t rack_size,
                           double switch_watts)
    : pm_count_(pm_count),
      rack_size_(rack_size),
      // Guard the division: the REQUIREs below report the real error.
      racks_(rack_size ? (pm_count + rack_size - 1) / rack_size : 0),
      switch_watts_(switch_watts) {
  GLAP_REQUIRE(pm_count > 0, "topology needs at least one PM");
  GLAP_REQUIRE(rack_size > 0, "rack size must be positive");
  GLAP_REQUIRE(switch_watts >= 0.0, "switch power must be non-negative");
}

RackId RackTopology::rack_of(PmId pm) const {
  GLAP_REQUIRE(pm < pm_count_, "pm id out of range");
  return static_cast<RackId>(pm / rack_size_);
}

std::vector<PmId> RackTopology::members(RackId rack) const {
  GLAP_REQUIRE(rack < racks_, "rack id out of range");
  std::vector<PmId> out;
  const std::size_t begin = rack * rack_size_;
  const std::size_t end = std::min(pm_count_, begin + rack_size_);
  out.reserve(end - begin);
  for (std::size_t p = begin; p < end; ++p)
    out.push_back(static_cast<PmId>(p));
  return out;
}

std::size_t RackTopology::active_racks(const DataCenter& dc) const {
  GLAP_REQUIRE(dc.pm_count() == pm_count_, "topology/data-center mismatch");
  std::size_t active = 0;
  for (RackId r = 0; r < racks_; ++r) {
    for (PmId p : members(r)) {
      if (dc.pm_on(p)) {
        ++active;
        break;
      }
    }
  }
  return active;
}

double RackTopology::rack_load(const DataCenter& dc, RackId rack) const {
  GLAP_REQUIRE(dc.pm_count() == pm_count_, "topology/data-center mismatch");
  double sum = 0.0;
  std::size_t on = 0;
  for (PmId p : members(rack)) {
    if (!dc.pm_on(p)) continue;
    sum += dc.average_utilization(p).sum();
    ++on;
  }
  return on ? sum / static_cast<double>(on) : 0.0;
}

}  // namespace glap::cloud
