// Record of one live migration, as produced by DataCenter::migrate.
#pragma once

#include <cstdint>

#include "cloud/specs.hpp"

namespace glap::cloud {

struct MigrationRecord {
  VmId vm = 0;
  PmId from = 0;
  PmId to = 0;
  std::uint32_t round = 0;
  double tau_seconds = 0.0;
  double energy_joules = 0.0;  ///< overhead energy per paper Eq. 3
};

}  // namespace glap::cloud
