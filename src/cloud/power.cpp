#include "cloud/power.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace glap::cloud {

LinearPowerModel::LinearPowerModel(PowerParams params) : params_(params) {
  GLAP_REQUIRE(params.idle_watts >= 0.0, "idle power must be non-negative");
  GLAP_REQUIRE(params.max_watts >= params.idle_watts,
               "max power below idle power");
}

double LinearPowerModel::power_watts(double utilization) const noexcept {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return params_.idle_watts + (params_.max_watts - params_.idle_watts) * u;
}

double LinearPowerModel::energy_joules(double utilization,
                                       double seconds) const noexcept {
  return power_watts(utilization) * seconds;
}

double migration_seconds(double vm_mem_mb, double src_bw_mbps,
                         double dst_bw_mbps) noexcept {
  const double bw = std::min(src_bw_mbps, dst_bw_mbps);
  GLAP_DEBUG_ASSERT(bw > 0.0, "migration bandwidth must be positive");
  GLAP_DEBUG_ASSERT(vm_mem_mb >= 0.0, "negative VM memory");
  return vm_mem_mb / bw;
}

double migration_energy_joules(const LinearPowerModel& src_model,
                               double src_utilization,
                               const LinearPowerModel& dst_model,
                               double dst_utilization, double tau_seconds,
                               const MigrationEnergyParams& params) noexcept {
  const double src_lm =
      src_model.power_watts(src_utilization + params.cpu_overhead_fraction);
  const double dst_lm =
      dst_model.power_watts(dst_utilization + params.cpu_overhead_fraction);
  const double delta =
      (src_lm - src_model.idle_watts()) + (dst_lm - dst_model.idle_watts());
  return delta * tau_seconds;
}

}  // namespace glap::cloud
