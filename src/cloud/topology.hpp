// Rack topology — the substrate for the paper's second future-work item
// ("extend the algorithm to be aware of the network topology such that it
// will switch off network switches, an important factor of energy
// consumption in cloud data centers").
//
// PMs are grouped into fixed racks, each behind a top-of-rack switch that
// draws power while *any* PM in the rack is awake and can be switched off
// once the whole rack sleeps. Rack-aware consolidation therefore wants to
// empty PMs rack-by-rack, not uniformly.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/datacenter.hpp"

namespace glap::cloud {

using RackId = std::uint32_t;

class RackTopology {
 public:
  /// Groups `pm_count` PMs into consecutive racks of `rack_size` (the
  /// last rack may be smaller).
  RackTopology(std::size_t pm_count, std::size_t rack_size,
               double switch_watts = 150.0);

  [[nodiscard]] RackId rack_of(PmId pm) const;
  [[nodiscard]] std::size_t rack_count() const noexcept { return racks_; }
  [[nodiscard]] std::size_t rack_size() const noexcept { return rack_size_; }
  [[nodiscard]] double switch_watts() const noexcept { return switch_watts_; }

  /// PMs in `rack` (ids are consecutive by construction).
  [[nodiscard]] std::vector<PmId> members(RackId rack) const;

  /// Racks with at least one powered-on PM — each costs a live switch.
  [[nodiscard]] std::size_t active_racks(const DataCenter& dc) const;

  /// Mean *average* utilization (sum of cpu+mem components) over the
  /// rack's powered-on PMs; 0 when the whole rack sleeps. The rack-aware
  /// consolidation drain rule keys on this.
  [[nodiscard]] double rack_load(const DataCenter& dc, RackId rack) const;

  /// Switch energy for one interval: active racks × switch power × dt.
  [[nodiscard]] double switch_energy_joules(const DataCenter& dc,
                                            double dt_seconds) const {
    return static_cast<double>(active_racks(dc)) * switch_watts_ *
           dt_seconds;
  }

 private:
  std::size_t pm_count_;
  std::size_t rack_size_;
  std::size_t racks_;
  double switch_watts_;
};

}  // namespace glap::cloud
