// SLA metric accounting per the paper's Eq. (1)-(2):
//
//   SLAVO  = (1/N) Σ_i  Ts_i / Ta_i      (PM-side: share of active time a
//                                         PM spent at 100% CPU)
//   SLALM  = (1/M) Σ_j  Cd_j / Cr_j      (VM-side: migration degradation —
//                                         Cd is 10% of the VM's CPU use
//                                         during its migrations, Cr its
//                                         total requested CPU)
//   SLAV   = SLAVO × SLALM
//
// The accountant is fed by DataCenter: once per round for time/demand
// accumulation and once per migration for degradation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace glap::cloud {

struct SlaParams {
  /// Fraction of the VM's CPU usage counted as degraded during migration.
  double migration_degradation = 0.10;
};

class SlaAccounting {
 public:
  SlaAccounting(std::size_t pm_count, std::size_t vm_count, SlaParams params);

  /// Accumulates one round of PM activity.
  void record_pm_round(std::size_t pm, bool active, bool cpu_saturated,
                       double dt_seconds);

  /// Accumulates one round of VM demand (for Cr).
  void record_vm_round(std::size_t vm, double cpu_usage_mips,
                       double dt_seconds);

  /// Accumulates degradation for one live migration of `vm` that ran for
  /// `tau_seconds` while the VM used `cpu_usage_mips`.
  void record_migration(std::size_t vm, double cpu_usage_mips,
                        double tau_seconds);

  [[nodiscard]] double slavo() const;
  [[nodiscard]] double slalm() const;
  [[nodiscard]] double slav() const { return slavo() * slalm(); }

  [[nodiscard]] double pm_saturated_seconds(std::size_t pm) const;
  [[nodiscard]] double pm_active_seconds(std::size_t pm) const;

 private:
  struct PmClock {
    double saturated_s = 0.0;
    double active_s = 0.0;
  };
  struct VmClock {
    double degraded_mips_s = 0.0;
    double requested_mips_s = 0.0;
  };

  SlaParams params_;
  std::vector<PmClock> pms_;
  std::vector<VmClock> vms_;
};

}  // namespace glap::cloud
