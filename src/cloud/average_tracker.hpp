// The paper's running-average demand tracker.
//
// Each VM piggybacks a tuple {c, v}: c is how many times its demand has
// been monitored, v the average observed so far. The next sample d(t)
// updates the average as ((c·v) + d(t)) / (c + 1) — exactly the formula in
// §IV-B. GLAP builds its *states* from these averages and its post-action
// outcomes from current demands; that split is what lets it anticipate
// load variation.
#pragma once

#include <cstdint>

#include "common/resources.hpp"

namespace glap::cloud {

class AverageTracker {
 public:
  /// Folds one observation into the running average.
  void observe(const Resources& demand) noexcept {
    const auto c = static_cast<double>(count_);
    value_ = (value_ * c + demand) * (1.0 / (c + 1.0));
    ++count_;
  }

  [[nodiscard]] Resources average() const noexcept { return value_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  void reset() noexcept {
    count_ = 0;
    value_ = {};
  }

 private:
  std::uint64_t count_ = 0;
  Resources value_{};
};

}  // namespace glap::cloud
