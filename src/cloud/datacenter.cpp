#include "cloud/datacenter.hpp"

#include <algorithm>
#include <cmath>

#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace glap::cloud {

namespace {
std::vector<PmSpec> repeat_pm(const PmSpec& spec, std::size_t n) {
  return std::vector<PmSpec>(n, spec);
}
std::vector<VmSpec> repeat_vm(const VmSpec& spec, std::size_t n) {
  return std::vector<VmSpec>(n, spec);
}
}  // namespace

DataCenter::DataCenter(std::size_t pm_count, std::size_t vm_count,
                       DataCenterConfig config)
    : DataCenter(repeat_pm(config.pm_spec, pm_count),
                 repeat_vm(config.vm_spec, vm_count), config) {}

DataCenter::DataCenter(std::vector<PmSpec> pm_specs,
                       std::vector<VmSpec> vm_specs, DataCenterConfig config)
    : config_(config),
      host_of_(vm_specs.size(), static_cast<PmId>(-1)),
      usage_cache_(pm_specs.size()),
      pm_on_(pm_specs.size(), 1),
      vm_demand_(vm_specs.size()),
      vm_usage_(vm_specs.size()),
      vm_avg_(vm_specs.size()),
      vm_avg_count_(vm_specs.size(), 0),
      vm_capacity_(vm_specs.size()),
      vm_wake_ref_(vm_specs.size()),
      active_pms_(pm_specs.size()),
      sla_(std::max<std::size_t>(1, pm_specs.size()),
           std::max<std::size_t>(1, vm_specs.size()), config.sla) {
  GLAP_REQUIRE(!pm_specs.empty() && !vm_specs.empty(), "empty data center");
  GLAP_REQUIRE(config.round_seconds > 0.0, "round duration must be positive");
  pms_.reserve(pm_specs.size());
  vms_.reserve(vm_specs.size());
  for (std::size_t i = 0; i < pm_specs.size(); ++i)
    pms_.emplace_back(static_cast<PmId>(i), pm_specs[i]);
  for (std::size_t i = 0; i < vm_specs.size(); ++i) {
    vms_.emplace_back(static_cast<VmId>(i), vm_specs[i]);
    vm_capacity_[i] = vm_specs[i].capacity();
  }
}

const Pm& DataCenter::pm(PmId id) const {
  GLAP_REQUIRE(id < pms_.size(), "pm id out of range");
  return pms_[id];
}

const Vm& DataCenter::vm(VmId id) const {
  GLAP_REQUIRE(id < vms_.size(), "vm id out of range");
  return vms_[id];
}

PmId DataCenter::host_of(VmId id) const {
  GLAP_REQUIRE(id < host_of_.size(), "vm id out of range");
  GLAP_REQUIRE(host_of_[id] != static_cast<PmId>(-1), "vm is not placed");
  return host_of_[id];
}

void DataCenter::place(VmId vm_id, PmId pm_id) {
  GLAP_REQUIRE(vm_id < vms_.size(), "vm id out of range");
  GLAP_REQUIRE(pm_id < pms_.size(), "pm id out of range");
  GLAP_REQUIRE(host_of_[vm_id] == static_cast<PmId>(-1),
               "vm already placed; use migrate()");
  GLAP_REQUIRE(pm_on_[pm_id] != 0, "cannot place on a sleeping pm");
  pms_[pm_id].add_vm(vm_id);
  host_of_[vm_id] = pm_id;
  usage_cache_[pm_id] += vm_usage_[vm_id];
  ++placed_vms_;
  vm_wake_ref_[vm_id] = vm_demand_[vm_id];
  if (wake_hook_) wake_hook_(pm_id, WakeEvent::kMigration);
}

void DataCenter::depart(VmId vm_id) {
  GLAP_REQUIRE(vm_id < vms_.size(), "vm id out of range");
  const PmId host = host_of(vm_id);  // throws when not placed
  const bool removed = pms_[host].remove_vm(vm_id);
  GLAP_ASSERT(removed, "placement map out of sync");
  usage_cache_[host] -= vm_usage_[vm_id];
  host_of_[vm_id] = static_cast<PmId>(-1);
  --placed_vms_;
  if (wake_hook_) wake_hook_(host, WakeEvent::kMigration);
}

bool DataCenter::is_placed(VmId vm_id) const {
  GLAP_REQUIRE(vm_id < vms_.size(), "vm id out of range");
  return host_of_[vm_id] != static_cast<PmId>(-1);
}

void DataCenter::place_randomly(Rng& rng, std::size_t max_per_pm) {
  // Random placement that respects *nominal* allocations (a PM never gets
  // more VMs than their requested resources fit), as an admission
  // controller would guarantee.
  std::vector<Resources> allocated(pms_.size());
  for (VmId v = 0; v < vms_.size(); ++v) {
    const Resources vm_alloc = vms_[v].spec().capacity();
    bool placed = false;
    for (std::size_t attempt = 0; attempt < pms_.size() * 4; ++attempt) {
      const auto p = static_cast<PmId>(rng.bounded(pms_.size()));
      if (max_per_pm && pms_[p].vm_count() >= max_per_pm) continue;
      if (!(allocated[p] + vm_alloc).fits_within(pms_[p].spec().capacity()))
        continue;
      place(v, p);
      allocated[p] += vm_alloc;
      placed = true;
      break;
    }
    if (!placed) {
      // Dense corner case: fall back to the first PM that fits.
      for (PmId p = 0; p < pms_.size() && !placed; ++p) {
        if (max_per_pm && pms_[p].vm_count() >= max_per_pm) continue;
        if (!(allocated[p] + vm_alloc).fits_within(pms_[p].spec().capacity()))
          continue;
        place(v, p);
        allocated[p] += vm_alloc;
        placed = true;
      }
    }
    if (!placed) {
      // Arbitrary-order placement fragmented a dense fleet (mixed VM
      // sizes near nominal capacity). Restart with best-fit decreasing —
      // what a real admission controller computes when a naive assignment
      // fails.
      for (VmId undo = 0; undo <= v; ++undo)
        if (is_placed(undo)) depart(undo);
      std::fill(allocated.begin(), allocated.end(), Resources{});

      std::vector<VmId> order(vms_.size());
      for (VmId i = 0; i < vms_.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
        return vms_[a].spec().cpu_mips > vms_[b].spec().cpu_mips;
      });
      for (VmId vm : order) {
        const Resources alloc = vms_[vm].spec().capacity();
        PmId best = static_cast<PmId>(-1);
        double best_spare = 0.0;
        for (PmId p = 0; p < pms_.size(); ++p) {
          if (max_per_pm && pms_[p].vm_count() >= max_per_pm) continue;
          const Resources cap = pms_[p].spec().capacity();
          if (!(allocated[p] + alloc).fits_within(cap)) continue;
          const double spare = cap.cpu - allocated[p].cpu;
          if (best == static_cast<PmId>(-1) || spare < best_spare) {
            best = p;
            best_spare = spare;
          }
        }
        GLAP_REQUIRE(best != static_cast<PmId>(-1),
                     "data center cannot fit all VM allocations");
        place(vm, best);
        allocated[best] += alloc;
      }
      return;
    }
  }
}

std::vector<PmId> DataCenter::placement_snapshot() const { return host_of_; }

Resources DataCenter::current_usage(PmId id) const {
  GLAP_REQUIRE(id < pms_.size(), "pm id out of range");
  return usage_cache_[id];
}

Resources DataCenter::current_utilization(PmId id) const {
  return current_usage(id).divided_by(pm(id).spec().capacity());
}

Resources DataCenter::average_utilization(PmId id) const {
  const Pm& host = pm(id);
  Resources sum;
  for (VmId v : host.vms()) sum += vm_avg_[v].scaled_by(vm_capacity_[v]);
  return sum.divided_by(host.spec().capacity());
}

bool DataCenter::overloaded(PmId id) const {
  const Resources u = current_utilization(id);
  return u.cpu >= 1.0 || u.mem >= 1.0;
}

bool DataCenter::cpu_saturated(PmId id) const {
  return current_utilization(id).cpu >= 1.0;
}

bool DataCenter::can_host(PmId pm_id, VmId vm_id) const {
  GLAP_REQUIRE(pm_id < pms_.size(), "pm id out of range");
  GLAP_REQUIRE(vm_id < vms_.size(), "vm id out of range");
  if (pm_on_[pm_id] == 0) return false;
  const Resources projected = usage_cache_[pm_id] + vm_usage_[vm_id];
  return projected.fits_within(pms_[pm_id].spec().capacity());
}

std::size_t DataCenter::overloaded_pm_count() const {
  std::size_t count = 0;
  for (PmId p = 0; p < pms_.size(); ++p)
    if (pm_on_[p] != 0 && overloaded(p)) ++count;
  return count;
}

MigrationRecord DataCenter::migrate(VmId vm_id, PmId to) {
  GLAP_REQUIRE(vm_id < vms_.size(), "vm id out of range");
  GLAP_REQUIRE(to < pms_.size(), "pm id out of range");
  const PmId from = host_of(vm_id);
  GLAP_REQUIRE(from != to, "migration to the current host");
  GLAP_REQUIRE(pm_on_[to] != 0, "migration target is sleeping");

  const Resources moving_usage = vm_usage_[vm_id];
  double tau = migration_seconds(moving_usage.mem,
                                 pms_[from].spec().migration_bw_mbps,
                                 pms_[to].spec().migration_bw_mbps);
  // Under the network model the pre-copy stream shares the fabric with
  // gossip: queueing behind the current backlog lengthens τ (and thus the
  // energy integral below).
  if (migration_network_) tau += migration_network_(from, to, moving_usage.mem);
  const double src_util = std::min(current_utilization(from).cpu, 1.0);
  const double dst_util = std::min(current_utilization(to).cpu, 1.0);
  const double energy = ::glap::cloud::migration_energy_joules(
      pms_[from].power_model(), src_util, pms_[to].power_model(), dst_util,
      tau, config_.migration_energy);

  const bool removed = pms_[from].remove_vm(vm_id);
  GLAP_ASSERT(removed, "placement map out of sync");
  pms_[to].add_vm(vm_id);
  host_of_[vm_id] = to;
  usage_cache_[from] -= moving_usage;
  usage_cache_[to] += moving_usage;

  MigrationRecord record{vm_id, from, to, round_, tau, energy};
  // Observability: both sinks buffer per shard with (order_key, seq) tags
  // and replay in serial order at commit, so this is safe (and identical)
  // under both engine modes.
  if (trace_ != nullptr)
    trace_->emit(trace::Kind::kMigration, static_cast<std::int64_t>(vm_id),
                 static_cast<std::int64_t>(from), static_cast<std::int64_t>(to),
                 0, moving_usage.cpu, energy);
  if (ctr_migrations_ != nullptr) {
    ctr_migrations_->inc();
    hist_tau_->observe(tau);
    hist_energy_->observe(energy);
  }
  if (deferred_accounting_) {
    exec::Context& ctx = exec::context();
    deferred_log_[ctx.shard_slot].push_back(
        {ctx.order_key, ctx.seq++, record, moving_usage.cpu});
  } else {
    apply_migration_accounting(record, moving_usage.cpu);
  }
  if (wake_hook_) {
    wake_hook_(from, WakeEvent::kMigration);
    wake_hook_(to, WakeEvent::kMigration);
  }
  return record;
}

void DataCenter::apply_migration_accounting(const MigrationRecord& record,
                                            double vm_cpu_mips) {
  sla_.record_migration(record.vm, vm_cpu_mips, record.tau_seconds);
  migration_energy_j_ += record.energy_joules;
  ++migrations_this_round_;
  migrations_.push_back(record);
}

void DataCenter::set_deferred_accounting(bool enabled) {
  deferred_accounting_ = enabled;
  if (enabled && deferred_log_.empty())
    deferred_log_.resize(exec::kShardCount);
}

void DataCenter::commit_deferred_accounting() {
  if (deferred_log_.empty()) return;
  commit_scratch_.clear();
  for (auto& shard : deferred_log_) {
    commit_scratch_.insert(commit_scratch_.end(), shard.begin(), shard.end());
    shard.clear();
  }
  if (commit_scratch_.empty()) return;
  // (order_key, seq) is the serial execution order: order_key is the
  // interaction's rank in the round permutation and seq its mutation
  // index, so the replay reproduces the serial engine's accounting —
  // including the floating-point summation order — exactly.
  std::sort(commit_scratch_.begin(), commit_scratch_.end(),
            [](const DeferredMigration& a, const DeferredMigration& b) {
              return a.order_key != b.order_key ? a.order_key < b.order_key
                                                : a.seq < b.seq;
            });
  for (const DeferredMigration& d : commit_scratch_)
    apply_migration_accounting(d.record, d.vm_cpu_mips);
}

void DataCenter::set_power(PmId id, PmPower power) {
  const Pm& target = pm(id);
  const std::uint8_t on = power == PmPower::kSleep ? 0 : 1;
  if (pm_on_[id] == on) return;
  if (power == PmPower::kSleep)
    GLAP_REQUIRE(target.empty(), "cannot sleep a pm that still hosts vms");
  pm_on_[id] = on;
  if (power == PmPower::kSleep)
    active_pms_.decrement();
  else
    active_pms_.increment();
  if (trace_ != nullptr)
    trace_->emit(trace::Kind::kPower, static_cast<std::int64_t>(id),
                 power == PmPower::kSleep ? 0 : 1);
  if (ctr_power_transitions_ != nullptr) ctr_power_transitions_->inc();
  if (wake_hook_) wake_hook_(id, WakeEvent::kPower);
}

void DataCenter::set_wake_hook(WakeHook hook, double demand_epsilon) {
  GLAP_REQUIRE(demand_epsilon >= 0.0, "demand epsilon must be non-negative");
  wake_hook_ = std::move(hook);
  demand_epsilon_ = demand_epsilon;
  // Re-anchor the references so the first post-install drift is measured
  // from the demand the caller saw when it installed the hook.
  if (wake_hook_) vm_wake_ref_ = vm_demand_;
}

void DataCenter::set_telemetry(metrics::MetricsRegistry* registry,
                               trace::TraceLog* trace) {
  trace_ = trace;
  if (registry != nullptr) {
    ctr_migrations_ = registry->counter("dc.migrations");
    ctr_power_transitions_ = registry->counter("dc.power_transitions");
    hist_tau_ = registry->histogram("dc.migration_tau_s");
    hist_energy_ = registry->histogram("dc.migration_energy_j");
  } else {
    ctr_migrations_ = nullptr;
    ctr_power_transitions_ = nullptr;
    hist_tau_ = nullptr;
    hist_energy_ = nullptr;
  }
}

void DataCenter::observe_demands(std::span<const Resources> fractions) {
  GLAP_REQUIRE(fractions.size() == vms_.size(),
               "need one demand sample per vm");
  // Rebuild the per-PM aggregate cache from scratch (O(VMs)); departed
  // VMs neither observe demand nor contribute usage. The fold walks the
  // flat demand/average/usage arrays in VmId order — one linear pass.
  std::fill(usage_cache_.begin(), usage_cache_.end(), Resources{});
  const bool hooked = static_cast<bool>(wake_hook_);
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    const PmId host = host_of_[v];
    if (host == static_cast<PmId>(-1)) continue;
    const Resources& f = fractions[v];
    GLAP_REQUIRE(f.cpu >= 0.0 && f.cpu <= 1.0 && f.mem >= 0.0 && f.mem <= 1.0,
                 "demand fraction out of [0,1]");
    vm_demand_[v] = f;
    // The paper's running average: ((c·v) + d(t)) / (c + 1). Keep the
    // exact AverageTracker arithmetic so results are bit-identical.
    const auto c = static_cast<double>(vm_avg_count_[v]);
    vm_avg_[v] = (vm_avg_[v] * c + f) * (1.0 / (c + 1.0));
    ++vm_avg_count_[v];
    vm_usage_[v] = f.scaled_by(vm_capacity_[v]);
    usage_cache_[host] += vm_usage_[v];
    if (hooked && (std::abs(f.cpu - vm_wake_ref_[v].cpu) > demand_epsilon_ ||
                   std::abs(f.mem - vm_wake_ref_[v].mem) > demand_epsilon_)) {
      vm_wake_ref_[v] = f;
      wake_hook_(host, WakeEvent::kDemand);
    }
  }
  if (hooked) {
    // Overloaded PMs must always run their shed logic next round, even
    // when every hosted VM stayed inside its epsilon band.
    for (PmId p = 0; p < pms_.size(); ++p)
      if (pm_on_[p] != 0 && overloaded(p)) wake_hook_(p, WakeEvent::kDemand);
  }
}

void DataCenter::end_round() {
  const double dt = config_.round_seconds;
  for (PmId p = 0; p < pms_.size(); ++p) {
    const bool active = pm_on_[p] != 0;
    sla_.record_pm_round(p, active, active && cpu_saturated(p), dt);
    if (active) {
      const double u = std::min(current_utilization(p).cpu, 1.0);
      total_energy_j_ += pms_[p].power_model().energy_joules(u, dt);
    }
  }
  for (VmId v = 0; v < vms_.size(); ++v)
    if (host_of_[v] != static_cast<PmId>(-1))
      sla_.record_vm_round(v, vm_usage_[v].cpu, dt);
  migrations_this_round_ = 0;
  ++round_;
}

}  // namespace glap::cloud
