// Virtual machine: nominal allocation plus the live demand signal.
// Demand is stored as fractions of the VM's own allocation; absolute
// usage (MIPS, MB) is derived on demand. The average tracker implements
// the paper's {c, v} piggyback tuple.
#pragma once

#include "cloud/average_tracker.hpp"
#include "cloud/specs.hpp"

namespace glap::cloud {

class Vm {
 public:
  Vm(VmId id, VmSpec spec) : id_(id), spec_(spec) {}

  [[nodiscard]] VmId id() const noexcept { return id_; }
  [[nodiscard]] const VmSpec& spec() const noexcept { return spec_; }

  /// Records this round's demand (fractions of the VM's allocation) and
  /// folds it into the running average.
  void observe_demand(const Resources& fraction);

  /// Current demand as fractions of the VM allocation.
  [[nodiscard]] Resources demand_fraction() const noexcept {
    return demand_fraction_;
  }
  /// Running-average demand as fractions of the VM allocation.
  [[nodiscard]] Resources average_fraction() const noexcept {
    return tracker_.average();
  }

  /// Current absolute usage (MIPS, MB).
  [[nodiscard]] Resources current_usage() const noexcept {
    return demand_fraction_.scaled_by(spec_.capacity());
  }
  /// Average absolute usage (MIPS, MB).
  [[nodiscard]] Resources average_usage() const noexcept {
    return tracker_.average().scaled_by(spec_.capacity());
  }

  [[nodiscard]] std::uint64_t observation_count() const noexcept {
    return tracker_.count();
  }

 private:
  VmId id_;
  VmSpec spec_;
  Resources demand_fraction_{};
  AverageTracker tracker_;
};

}  // namespace glap::cloud
