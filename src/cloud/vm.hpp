// Virtual machine identity: id plus nominal allocation. The live demand
// signal (current fraction, running average, absolute usage) lives in
// DataCenter's struct-of-arrays pools — see datacenter.hpp — so the
// per-round demand fold and the PM aggregation scans walk cache-linear
// arrays instead of striding over VM objects.
#pragma once

#include "cloud/specs.hpp"

namespace glap::cloud {

class Vm {
 public:
  Vm(VmId id, VmSpec spec) : id_(id), spec_(spec) {}

  [[nodiscard]] VmId id() const noexcept { return id_; }
  [[nodiscard]] const VmSpec& spec() const noexcept { return spec_; }

 private:
  VmId id_;
  VmSpec spec_;
};

}  // namespace glap::cloud
