#include "cloud/migration.hpp"

// MigrationRecord is a plain aggregate; this TU anchors the target.
