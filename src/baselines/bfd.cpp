#include "baselines/bfd.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace glap::baselines {

std::size_t bfd_bin_count(std::vector<Resources> vm_usages,
                          const Resources& pm_capacity) {
  GLAP_REQUIRE(pm_capacity.cpu > 0.0 && pm_capacity.mem > 0.0,
               "pm capacity must be positive");
  std::sort(vm_usages.begin(), vm_usages.end(),
            [](const Resources& a, const Resources& b) {
              return a.cpu > b.cpu;
            });
  std::vector<Resources> bins;  // remaining capacity per bin
  for (const Resources& vm : vm_usages) {
    GLAP_REQUIRE(vm.fits_within(pm_capacity),
                 "a single vm exceeds pm capacity");
    std::size_t best = bins.size();
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (!vm.fits_within(bins[b])) continue;
      if (best == bins.size() || bins[b].cpu < bins[best].cpu) best = b;
    }
    if (best == bins.size()) bins.push_back(pm_capacity);
    bins[best] -= vm;
  }
  return bins.size();
}

std::size_t bfd_bin_count(const cloud::DataCenter& dc) {
  std::vector<Resources> usages;
  usages.reserve(dc.vm_count());
  for (cloud::VmId v = 0; v < dc.vm_count(); ++v)
    if (dc.is_placed(v)) usages.push_back(dc.vm_current_usage(v));
  // The oracle packs into the configured *reference* PM class; for
  // heterogeneous fleets it is a capacity-normalized reference, not an
  // exact optimum over mixed bins.
  return bfd_bin_count(std::move(usages), dc.config().pm_spec.capacity());
}

}  // namespace glap::baselines
