#include "baselines/pabfd.hpp"

#include <algorithm>

namespace glap::baselines {

namespace {
constexpr std::size_t kMonitorMsgBytes = 16;
}

PabfdManager::PabfdManager(const PabfdConfig& config, cloud::DataCenter& dc)
    : config_(config), dc_(dc), history_(dc.pm_count()) {
  GLAP_REQUIRE(config.mad_safety > 0.0, "mad_safety must be positive");
  GLAP_REQUIRE(config.history_window >= config.min_history,
               "history_window smaller than min_history");
  GLAP_REQUIRE(config.min_history >= 2, "min_history too small for MAD");
}

struct PabfdInstaller {
  static void mark_manager(PabfdManager& m, sim::NodeId node) {
    m.manager_node_ = node;
    m.is_manager_ = true;
  }
};

sim::Engine::ProtocolSlot PabfdManager::install(sim::Engine& engine,
                                                const PabfdConfig& config,
                                                cloud::DataCenter& dc,
                                                sim::NodeId manager_node) {
  GLAP_REQUIRE(engine.node_count() == dc.pm_count(),
               "engine nodes must map 1:1 onto data-center PMs");
  GLAP_REQUIRE(manager_node < engine.node_count(), "manager node out of range");
  const auto slot = engine.add_protocol_pool<PabfdManager>(
      [&](sim::NodeId /*i*/) { return PabfdManager(config, dc); });
  PabfdInstaller::mark_manager(
      engine.protocol_at<PabfdManager>(slot, manager_node), manager_node);
  return slot;
}

double PabfdManager::mad(std::vector<double> samples) {
  GLAP_REQUIRE(!samples.empty(), "MAD of an empty sample");
  auto median_of = [](std::vector<double>& v) {
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                     v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
      const double lower =
          *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
      m = 0.5 * (m + lower);
    }
    return m;
  };
  const double med = median_of(samples);
  for (double& x : samples) x = std::abs(x - med);
  return median_of(samples);
}

double PabfdManager::iqr(std::vector<double> samples) {
  GLAP_REQUIRE(!samples.empty(), "IQR of an empty sample");
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  };
  return quantile(0.75) - quantile(0.25);
}

double PabfdManager::lr_forecast(const std::vector<double>& samples) {
  GLAP_REQUIRE(samples.size() >= 2, "LR forecast needs two samples");
  // OLS of y over t in [0, n); forecast at t = n.
  const auto n = static_cast<double>(samples.size());
  double sum_t = 0.0, sum_y = 0.0, sum_ty = 0.0, sum_tt = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto t = static_cast<double>(i);
    sum_t += t;
    sum_y += samples[i];
    sum_ty += t * samples[i];
    sum_tt += t * t;
  }
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom == 0.0) return samples.back();
  const double slope = (n * sum_ty - sum_t * sum_y) / denom;
  const double intercept = (sum_y - slope * sum_t) / n;
  return intercept + slope * n;
}

double PabfdManager::upper_threshold(cloud::PmId pm) const {
  GLAP_REQUIRE(pm < history_.size(), "pm id out of range");
  const auto& h = history_[pm];
  if (h.size() < config_.min_history) return config_.default_upper;
  const std::vector<double> samples(h.begin(), h.end());
  double tu = config_.default_upper;
  switch (config_.estimator) {
    case ThresholdEstimator::kMad:
      tu = 1.0 - config_.mad_safety * mad(samples);
      break;
    case ThresholdEstimator::kIqr:
      tu = 1.0 - config_.mad_safety * iqr(samples);
      break;
    case ThresholdEstimator::kLr: {
      // Declare "overloaded" when the projected next utilization (scaled
      // by the safety factor) would saturate: equivalent to a threshold
      // of current + (1 − s·forecast) headroom, expressed as Tu.
      const double forecast = lr_forecast(samples);
      tu = 1.0 - config_.mad_safety * std::max(0.0, forecast - samples.back());
      break;
    }
  }
  return std::clamp(tu, config_.min_upper, 1.0);
}

void PabfdManager::record_history() {
  for (cloud::PmId p = 0; p < dc_.pm_count(); ++p) {
    if (!dc_.pm_on(p)) continue;
    auto& h = history_[p];
    h.push_back(std::min(dc_.current_utilization(p).cpu, 1.0));
    while (h.size() > config_.history_window) h.pop_front();
  }
}

std::optional<cloud::PmId> PabfdManager::best_target(
    cloud::VmId vm, cloud::PmId exclude,
    const std::vector<bool>& barred) const {
  std::optional<cloud::PmId> best;
  double best_power_delta = 0.0;
  double best_util = 0.0;
  const Resources vm_usage = dc_.vm_current_usage(vm);
  for (cloud::PmId p = 0; p < dc_.pm_count(); ++p) {
    if (p == exclude || barred[p] || !dc_.pm_on(p)) continue;
    if (!dc_.can_host(p, vm)) continue;
    const double u_before = std::min(dc_.current_utilization(p).cpu, 1.0);
    const double u_after = std::min(
        (dc_.current_usage(p).cpu + vm_usage.cpu) / dc_.pm(p).spec().cpu_mips,
        1.0);
    // Placement checks capacity fit only (CloudSim's isSuitableForVm);
    // the adaptive threshold governs overload *detection*, not placement —
    // which is why PABFD packs tight and keeps churning (Figs. 8-9).
    const auto& model = dc_.pm(p).power_model();
    const double delta = model.power_watts(u_after) -
                         model.power_watts(u_before);
    // Least power increase; homogeneous hosts tie on the linear model, so
    // the emptiest host breaks ties — evicted (volatile) VMs land where
    // the next burst is least likely to trigger another eviction.
    if (!best || delta < best_power_delta ||
        (delta == best_power_delta && u_before < best_util)) {
      best = p;
      best_power_delta = delta;
      best_util = u_before;
    }
  }
  return best;
}

std::optional<cloud::PmId> PabfdManager::wake_one(sim::Engine& engine) {
  if (!config_.allow_wake) return std::nullopt;
  for (cloud::PmId p = 0; p < dc_.pm_count(); ++p) {
    if (dc_.pm_on(p)) continue;
    dc_.set_power(p, cloud::PmPower::kOn);
    engine.set_status(static_cast<sim::NodeId>(p), sim::NodeStatus::kActive);
    return p;
  }
  return std::nullopt;
}

void PabfdManager::relieve_overloads(sim::Engine& engine) {
  // Gather evictions from every overloaded host (Minimum Migration Time:
  // smallest resident memory first).
  std::vector<std::pair<cloud::VmId, cloud::PmId>> to_place;
  for (cloud::PmId p = 0; p < dc_.pm_count(); ++p) {
    if (!dc_.pm_on(p)) continue;
    const double tu = upper_threshold(p);
    double cpu_usage = dc_.current_usage(p).cpu;
    const double cap = dc_.pm(p).spec().cpu_mips;
    if (cpu_usage / cap <= tu) continue;
    auto vms = dc_.pm(p).vms();
    std::sort(vms.begin(), vms.end(), [&](cloud::VmId a, cloud::VmId b) {
      return dc_.vm_current_usage(a).mem < dc_.vm_current_usage(b).mem;
    });
    for (cloud::VmId v : vms) {
      if (cpu_usage / cap <= tu) break;
      to_place.emplace_back(v, p);
      cpu_usage -= dc_.vm_current_usage(v).cpu;
    }
  }

  // Power-aware BFD placement: decreasing CPU demand.
  std::sort(to_place.begin(), to_place.end(),
            [&](const auto& a, const auto& b) {
              return dc_.vm_current_usage(a.first).cpu >
                     dc_.vm_current_usage(b.first).cpu;
            });
  std::vector<bool> barred(dc_.pm_count(), false);
  for (const auto& [vm, source] : to_place) {
    auto target = best_target(vm, source, barred);
    if (!target) {
      if (const auto fresh = wake_one(engine))
        target = dc_.can_host(*fresh, vm) ? fresh : std::nullopt;
    }
    if (!target) continue;  // nowhere to go; host stays overloaded
    dc_.migrate(vm, *target);
    engine.network().count_message(static_cast<sim::NodeId>(source),
                                   static_cast<sim::NodeId>(*target),
                                   kMonitorMsgBytes);
  }
}

void PabfdManager::evacuate_underloaded(sim::Engine& engine) {
  // Consider hosts in increasing CPU utilization; try to fully evacuate
  // each. Hosts that already received evacuated VMs this pass are barred
  // from being evacuated themselves (they were just chosen as targets).
  std::vector<cloud::PmId> order;
  for (cloud::PmId p = 0; p < dc_.pm_count(); ++p) {
    // The manager's own host must stay on.
    if (!dc_.pm_on(p) || p == static_cast<cloud::PmId>(manager_node_))
      continue;
    if (dc_.pm(p).empty()) {
      dc_.set_power(p, cloud::PmPower::kSleep);
      engine.set_status(static_cast<sim::NodeId>(p),
                        sim::NodeStatus::kSleeping);
      continue;
    }
    order.push_back(p);
  }
  std::sort(order.begin(), order.end(), [&](cloud::PmId a, cloud::PmId b) {
    return dc_.current_utilization(a).cpu < dc_.current_utilization(b).cpu;
  });

  std::vector<bool> barred(dc_.pm_count(), false);
  // Hosts are visited in increasing utilization; once several in a row
  // cannot be evacuated, denser ones will not be either — stop scanning.
  std::size_t consecutive_failures = 0;
  constexpr std::size_t kMaxConsecutiveFailures = 5;
  for (cloud::PmId p : order) {
    if (consecutive_failures >= kMaxConsecutiveFailures) break;
    if (barred[p]) continue;
    const double tu = upper_threshold(p);
    if (dc_.current_utilization(p).cpu > tu) continue;  // overloaded: skip

    // Dry-run: all VMs must find targets before any migration happens.
    std::vector<double> spare_cpu(dc_.pm_count());
    std::vector<double> spare_mem(dc_.pm_count());
    for (cloud::PmId t = 0; t < dc_.pm_count(); ++t) {
      // Evacuation targets keep threshold headroom — a switch-off that
      // pushes its receivers straight past Tu would be undone (and paid
      // for again) at the very next controller cycle.
      spare_cpu[t] = dc_.pm(t).spec().cpu_mips * upper_threshold(t) -
                     dc_.current_usage(t).cpu;
      spare_mem[t] = dc_.pm(t).spec().mem_mb - dc_.current_usage(t).mem;
    }
    auto vms = dc_.pm(p).vms();
    std::sort(vms.begin(), vms.end(), [&](cloud::VmId a, cloud::VmId b) {
      return dc_.vm_current_usage(a).cpu > dc_.vm_current_usage(b).cpu;
    });
    std::vector<std::pair<cloud::VmId, cloud::PmId>> plan;
    bool feasible = true;
    for (cloud::VmId v : vms) {
      const Resources usage = dc_.vm_current_usage(v);
      std::optional<cloud::PmId> target;
      double best_spare = 0.0;
      for (cloud::PmId t = 0; t < dc_.pm_count(); ++t) {
        if (t == p || barred[t] || !dc_.pm_on(t)) continue;
        if (usage.cpu > spare_cpu[t] || usage.mem > spare_mem[t]) continue;
        // Best fit: tightest remaining CPU.
        if (!target || spare_cpu[t] < best_spare) {
          target = t;
          best_spare = spare_cpu[t];
        }
      }
      if (!target) {
        feasible = false;
        break;
      }
      plan.emplace_back(v, *target);
      spare_cpu[*target] -= usage.cpu;
      spare_mem[*target] -= usage.mem;
    }
    if (!feasible) {
      ++consecutive_failures;
      continue;
    }
    consecutive_failures = 0;

    for (const auto& [v, t] : plan) {
      dc_.migrate(v, t);
      barred[t] = true;
      engine.network().count_message(static_cast<sim::NodeId>(p),
                                     static_cast<sim::NodeId>(t),
                                     kMonitorMsgBytes);
    }
    dc_.set_power(p, cloud::PmPower::kSleep);
    engine.set_status(static_cast<sim::NodeId>(p),
                      sim::NodeStatus::kSleeping);
    barred[p] = true;
  }
}

void PabfdManager::select_peers(sim::Engine& /*engine*/, sim::NodeId self,
                                sim::PeerSet& peers) {
  if (is_manager_ && self == manager_node_) peers.add_global();
}

void PabfdManager::execute(sim::Engine& engine, sim::NodeId self,
                           const sim::PeerSet& /*peers*/) {
  if (!is_manager_ || self != manager_node_) return;
  // The manager polls every active PM (monitoring traffic).
  for (cloud::PmId p = 0; p < dc_.pm_count(); ++p)
    if (dc_.pm_on(p))
      engine.network().count_message(static_cast<sim::NodeId>(p), self,
                                     kMonitorMsgBytes);
  record_history();
  // Reconsolidation runs on the controller period, not every sample.
  const std::uint32_t interval = std::max<std::uint32_t>(
      1, config_.interval_rounds);
  if (++cycles_since_action_ < interval) return;
  cycles_since_action_ = 0;
  relieve_overloads(engine);
  evacuate_underloaded(engine);
}

}  // namespace glap::baselines
