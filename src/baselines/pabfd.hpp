// PABFD — Power-Aware Best Fit Decreasing with adaptive MAD threshold
// (Beloglazov & Buyya — CCPE 2012), the centralized comparator in the
// GLAP evaluation.
//
// A central manager (hosted on node 0, which therefore never sleeps —
// the paper's point about centralized designs) observes every PM each
// round and:
//   1. records per-PM CPU utilization history and derives a per-PM upper
//      threshold Tu = 1 − s·MAD(history) (Median Absolute Deviation, the
//      estimator the GLAP paper names);
//   2. relieves overloaded PMs (u > Tu) by evicting VMs chosen by the
//      Minimum Migration Time policy (smallest resident memory) until the
//      PM returns below Tu;
//   3. re-places evicted VMs with power-aware best-fit-decreasing: VMs
//      sorted by decreasing CPU demand, each assigned to the feasible
//      active host with the least power increase (waking a sleeping host
//      when none fits);
//   4. evacuates underloaded hosts (all VMs placeable elsewhere) and
//      switches them off.
// The continuous re-shuffling this produces is why PABFD shows the
// highest migration counts in Figs. 8-10.
#pragma once

#include <deque>

#include "cloud/datacenter.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace glap::baselines {

/// Adaptive-threshold estimator (Beloglazov & Buyya compare several ways
/// of "capturing dynamic workload of VMs to determine an appropriate
/// upper threshold" — the GLAP paper names MAD, IQR and Robust Local
/// Regression).
enum class ThresholdEstimator : std::uint8_t {
  kMad,  ///< Tu = 1 − s·MAD(history)            (the GLAP paper's choice)
  kIqr,  ///< Tu = 1 − s·IQR(history)
  kLr,   ///< local-regression forecast: Tu set so the OLS-extrapolated
         ///< next utilization stays below saturation (s scales the margin)
};

[[nodiscard]] constexpr const char* to_string(ThresholdEstimator e) noexcept {
  switch (e) {
    case ThresholdEstimator::kMad:
      return "MAD";
    case ThresholdEstimator::kIqr:
      return "IQR";
    case ThresholdEstimator::kLr:
      return "LR";
  }
  return "?";
}

struct PabfdConfig {
  ThresholdEstimator estimator = ThresholdEstimator::kMad;
  double mad_safety = 2.5;          ///< s in Tu = 1 − s·MAD
  std::size_t history_window = 30;  ///< rounds of utilization history kept
  std::size_t min_history = 10;     ///< MAD needs this many samples
  double default_upper = 0.8;       ///< Tu before history accumulates
  double min_upper = 0.4;           ///< clamp for Tu (very noisy hosts)
  bool allow_wake = true;           ///< manager may wake sleeping hosts
  /// Manager reconsolidation period in rounds. Beloglazov's controller
  /// acts on a multi-minute period; 3 rounds = 6 simulated minutes
  /// (utilization history still records every round).
  std::uint32_t interval_rounds = 3;
};

class PabfdManager final : public sim::Protocol {
 public:
  PabfdManager(const PabfdConfig& config, cloud::DataCenter& dc);

  /// Installs the manager logic; it executes on node `manager_node` only
  /// (the other instances are inert stand-ins so the slot is total).
  static sim::Engine::ProtocolSlot install(sim::Engine& engine,
                                           const PabfdConfig& config,
                                           cloud::DataCenter& dc,
                                           sim::NodeId manager_node = 0);

  /// The manager node scans and mutates the whole data center, so it
  /// declares a global footprint (the parallel engine runs it alone);
  /// the inert stand-in instances touch nothing.
  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

  /// Median absolute deviation (exposed for tests).
  [[nodiscard]] static double mad(std::vector<double> samples);

  /// Inter-quartile range (linear-interpolated quartiles).
  [[nodiscard]] static double iqr(std::vector<double> samples);

  /// OLS forecast of the next sample (local regression over the window);
  /// exposed for tests.
  [[nodiscard]] static double lr_forecast(const std::vector<double>& samples);

  /// Current adaptive upper threshold of `pm`.
  [[nodiscard]] double upper_threshold(cloud::PmId pm) const;

 private:
  void record_history();
  void relieve_overloads(sim::Engine& engine);
  void evacuate_underloaded(sim::Engine& engine);

  /// Feasible target minimizing power increase; nullopt when none.
  [[nodiscard]] std::optional<cloud::PmId> best_target(
      cloud::VmId vm, cloud::PmId exclude,
      const std::vector<bool>& barred) const;

  /// Wakes any sleeping PM and returns it; nullopt when none sleeps.
  std::optional<cloud::PmId> wake_one(sim::Engine& engine);

  PabfdConfig config_;
  cloud::DataCenter& dc_;
  sim::NodeId manager_node_ = 0;
  bool is_manager_ = false;
  std::uint32_t cycles_since_action_ = 0;
  std::vector<std::deque<double>> history_;  // per-PM CPU utilization

  friend struct PabfdInstaller;
};

}  // namespace glap::baselines
