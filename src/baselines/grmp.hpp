// GRMP — gossip-based aggressive consolidation with a static threshold
// (Wuhib, Yanggratoke, Stadler — JNSM 2015), configured as in the GLAP
// evaluation: static upper threshold 0.8.
//
// Per round a PM gossips with a random neighbor; the pair greedily shifts
// VMs from the less-utilized PM onto the other as long as the receiver
// stays below the threshold on every resource (current demands only —
// GRMP formulates consolidation as bin packing and ignores demand
// variability, which is exactly why it overloads PMs when demand rises).
// A drained PM switches off immediately. An overloaded PM sheds VMs to
// its gossip partner while the partner has headroom below the threshold.
#pragma once

#include "cloud/datacenter.hpp"
#include "overlay/neighbor_provider.hpp"

namespace glap::baselines {

struct GrmpConfig {
  double upper_threshold = 0.8;
  /// GRMP's management objective is CPU-utilization-centric; by default
  /// the threshold gates CPU only, leaving memory unguarded — which
  /// reproduces the aggressive below-baseline packing (and the resulting
  /// overload rate) the GLAP evaluation reports for GRMP. Set true to
  /// gate both resources (ablation).
  bool threshold_both_resources = false;
};

class GrmpProtocol final : public sim::Protocol {
 public:
  GrmpProtocol(const GrmpConfig& config, cloud::DataCenter& dc,
               sim::Engine::ProtocolSlot overlay_slot);

  static sim::Engine::ProtocolSlot install(
      sim::Engine& engine, const GrmpConfig& config, cloud::DataCenter& dc,
      sim::Engine::ProtocolSlot overlay_slot);

  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

 private:
  /// Moves VMs sender→recipient while the recipient stays under threshold.
  void pack(sim::Engine& engine, cloud::PmId sender, cloud::PmId recipient);

  /// True when `pm` would stay at or below the threshold after adding `vm`.
  [[nodiscard]] bool accepts(cloud::PmId pm, cloud::VmId vm) const;

  GrmpConfig config_;
  cloud::DataCenter& dc_;
  sim::Engine::ProtocolSlot overlay_slot_;
};

}  // namespace glap::baselines
