#include "baselines/ecocloud.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "net/network_model.hpp"

namespace glap::baselines {

namespace {
constexpr std::size_t kProbeMsgBytes = 16;
}

EcoCloudProtocol::EcoCloudProtocol(const EcoCloudConfig& config,
                                   cloud::DataCenter& dc, Rng rng)
    : config_(config), dc_(dc), rng_(rng) {
  GLAP_REQUIRE(config.lower_threshold > 0.0 &&
                   config.lower_threshold < config.upper_threshold &&
                   config.upper_threshold <= 1.0,
               "ecocloud thresholds must satisfy 0 < T1 < T2 <= 1");
  GLAP_REQUIRE(config.probe_count > 0, "probe_count must be positive");
}

struct EcoCloudInstaller {
  static void set_slot(EcoCloudProtocol& p, sim::Engine::ProtocolSlot slot) {
    p.self_slot_ = slot;
    p.self_slot_known_ = true;
  }
};

sim::Engine::ProtocolSlot EcoCloudProtocol::install(sim::Engine& engine,
                                                    const EcoCloudConfig& config,
                                                    cloud::DataCenter& dc,
                                                    std::uint64_t seed) {
  GLAP_REQUIRE(engine.node_count() == dc.pm_count(),
               "engine nodes must map 1:1 onto data-center PMs");
  Rng master(hash_combine(seed, hash_tag("ecocloud")));
  const auto slot = engine.add_protocol_pool<EcoCloudProtocol>(
      [&](sim::NodeId i) {
        return EcoCloudProtocol(config, dc, master.split(i));
      });
  for (std::size_t i = 0; i < engine.node_count(); ++i)
    EcoCloudInstaller::set_slot(engine.protocol_at<EcoCloudProtocol>(
                                    slot, static_cast<sim::NodeId>(i)),
                                slot);
  return slot;
}

double EcoCloudProtocol::acceptance_probability(
    double utilization, const EcoCloudConfig& config) noexcept {
  const double t2 = config.upper_threshold;
  if (utilization < 0.0 || utilization >= t2) return 0.0;
  const double x = utilization / t2;
  const double p = config.accept_shape;
  // f(x) = x^p (1 − x), normalized so the peak value is 1.
  const double x_peak = p / (p + 1.0);
  const double peak = std::pow(x_peak, p) * (1.0 - x_peak);
  return std::pow(x, p) * (1.0 - x) / peak;
}

double EcoCloudProtocol::underload_migration_probability(
    double utilization, const EcoCloudConfig& config) noexcept {
  if (utilization < config.lower_threshold)
    // Grows linearly as the server empties: scale at u=0, zero at T1…
    return config.migrate_prob_scale *
           (1.0 - utilization / config.lower_threshold);
  if (utilization < config.upper_threshold) {
    // …with a small residual drain in the (T1, T2) band, quadratically
    // vanishing toward T2 (see mid_band_scale in the config).
    const double slack = 1.0 - utilization / config.upper_threshold;
    return config.mid_band_scale * slack * slack;
  }
  return 0.0;
}

std::optional<cloud::VmId> EcoCloudProtocol::pick_vm(cloud::PmId pm) const {
  const auto& vms = dc_.pm(pm).vms();
  if (vms.empty()) return std::nullopt;
  cloud::VmId best = vms.front();
  double best_mem = dc_.vm_current_usage(best).mem;
  for (cloud::VmId v : vms) {
    const double mem = dc_.vm_current_usage(v).mem;
    if (mem < best_mem) {
      best = v;
      best_mem = mem;
    }
  }
  return best;
}

std::optional<cloud::PmId> EcoCloudProtocol::probe_place(
    Rng& rng, cloud::PmId source, cloud::VmId vm, sim::Engine* engine,
    sim::PeerSet* declare) const {
  const std::size_t n = dc_.pm_count();
  for (std::size_t probe = 0; probe < config_.probe_count; ++probe) {
    const auto candidate = static_cast<cloud::PmId>(rng.bounded(n));
    if (candidate == source) continue;
    // The power-state read below already touches the candidate, so it is
    // declared before the is_on check.
    if (declare) declare->add(static_cast<sim::NodeId>(candidate));
    if (!dc_.pm_on(candidate)) continue;
    if (engine) {
      engine->network().count_message(static_cast<sim::NodeId>(source),
                                      static_cast<sim::NodeId>(candidate),
                                      kProbeMsgBytes);
      // Probe semantics under the network model: a lost or late
      // probe/reply skips this candidate (the next draw tries another).
      // Declare-mode dry runs (engine == nullptr) never touch the model.
      if (net::NetworkModel* net = engine->net_model();
          net != nullptr &&
          !net->round_trip(static_cast<sim::NodeId>(source),
                           static_cast<sim::NodeId>(candidate),
                           kProbeMsgBytes, kProbeMsgBytes,
                           net::Channel::kProbe)
               .ok())
        continue;
    }
    const double u = dc_.current_utilization(candidate).max_component();
    if (!rng.bernoulli(acceptance_probability(u, config_))) continue;
    if (!dc_.can_host(candidate, vm)) continue;
    return candidate;
  }
  return std::nullopt;
}

bool EcoCloudProtocol::try_place(sim::Engine& engine, cloud::PmId source,
                                 cloud::VmId vm) {
  const auto target = probe_place(rng_, source, vm, &engine, nullptr);
  if (!target) return false;
  dc_.migrate(vm, *target);
  return true;
}

bool EcoCloudProtocol::plan_evacuation(
    Rng& rng, sim::NodeId self, cloud::PmId source, sim::Engine* engine,
    sim::PeerSet* declare,
    std::vector<std::pair<cloud::VmId, cloud::PmId>>* plan_out) const {
  const std::size_t n = dc_.pm_count();

  // Plan: find an accepting target for every VM, reserving planned load.
  // Keyed deterministically (std::map, PmId order): the plan is only ever
  // *looked up* per candidate today, but an unordered map here is one
  // refactor away from iteration in engine-dependent bucket order — the
  // exact hazard the glap-lint unordered-iteration rule now rejects.
  std::map<cloud::PmId, Resources> reserved;
  for (cloud::VmId vm : dc_.pm(source).vms()) {
    const Resources usage = dc_.vm_current_usage(vm);
    bool placed = false;
    for (std::size_t probe = 0; probe < config_.probe_count && !placed;
         ++probe) {
      const auto candidate = static_cast<cloud::PmId>(rng.bounded(n));
      if (candidate == source) continue;
      if (declare) declare->add(static_cast<sim::NodeId>(candidate));
      if (!dc_.pm_on(candidate)) continue;
      if (engine) {
        engine->network().count_message(
            self, static_cast<sim::NodeId>(candidate), kProbeMsgBytes);
        if (net::NetworkModel* net = engine->net_model();
            net != nullptr &&
            !net->round_trip(self, static_cast<sim::NodeId>(candidate),
                             kProbeMsgBytes, kProbeMsgBytes,
                             net::Channel::kProbe)
                 .ok())
          continue;
      }
      const Resources pm_cap = dc_.pm(candidate).spec().capacity();
      const Resources planned =
          dc_.current_usage(candidate) + reserved[candidate];
      const double u = planned.divided_by(pm_cap).max_component();
      if (!rng.bernoulli(acceptance_probability(u, config_))) continue;
      if (!(planned + usage).fits_within(pm_cap)) continue;
      reserved[candidate] += usage;
      if (plan_out) plan_out->emplace_back(vm, candidate);
      placed = true;
    }
    if (!placed) return false;  // incomplete plan — nothing migrates
  }
  return true;
}

bool EcoCloudProtocol::try_evacuate(sim::Engine& engine, sim::NodeId self,
                                    cloud::PmId source) {
  std::vector<std::pair<cloud::VmId, cloud::PmId>> plan;
  if (!plan_evacuation(rng_, self, source, &engine, nullptr, &plan))
    return false;
  for (const auto& [vm, target] : plan) dc_.migrate(vm, target);
  dc_.set_power(source, cloud::PmPower::kSleep);
  engine.set_status(self, sim::NodeStatus::kSleeping);
  return true;
}

void EcoCloudProtocol::select_peers(sim::Engine& /*engine*/, sim::NodeId self,
                                    sim::PeerSet& peers) {
  // Dry-run execute()'s exact decision tree on a copied RNG: EcoCloud has
  // no overlay, so its footprint is whatever servers the probe loops draw.
  // The draws are reproducible at execute time because every state read
  // along the path (own load, candidates' power and load) is on a node
  // declared here and therefore frozen by the reservation.
  const auto p = static_cast<cloud::PmId>(self);
  const double u = dc_.current_utilization(p).max_component();
  Rng sim_rng = rng_;

  if (u > config_.upper_threshold) {
    const double excess =
        (u - config_.upper_threshold) / (1.0 - config_.upper_threshold);
    if (sim_rng.bernoulli(std::min(1.0, 0.1 * excess)))
      if (const auto vm = pick_vm(p))
        probe_place(sim_rng, p, *vm, nullptr, &peers);
    return;
  }
  if (cooldown_ > 0) return;      // execute() only decrements the counter
  if (dc_.pm(p).empty()) return;  // execute() hibernates self only
  if (sim_rng.bernoulli(underload_migration_probability(u, config_)))
    plan_evacuation(sim_rng, self, p, nullptr, &peers, nullptr);
}

void EcoCloudProtocol::execute(sim::Engine& engine, sim::NodeId self,
                               const sim::PeerSet& /*peers*/) {
  const auto p = static_cast<cloud::PmId>(self);
  const Resources util = dc_.current_utilization(p);
  const double u = util.max_component();

  if (u > config_.upper_threshold) {
    // Above T2: shed one VM via a Bernoulli trial whose probability ramps
    // with the excess — gradual relief, not a hard rule (servers hovering
    // at T2 would otherwise shed every round and churn forever).
    const double excess =
        (u - config_.upper_threshold) / (1.0 - config_.upper_threshold);
    if (rng_.bernoulli(std::min(1.0, 0.1 * excess)))
      if (const auto vm = pick_vm(p)) try_place(engine, p, *vm);
    return;
  }

  if (cooldown_ > 0) {
    --cooldown_;
    return;
  }
  if (dc_.pm(p).empty()) {
    dc_.set_power(p, cloud::PmPower::kSleep);
    engine.set_status(self, sim::NodeStatus::kSleeping);
    return;
  }
  if (rng_.bernoulli(underload_migration_probability(u, config_))) {
    if (!try_evacuate(engine, self, p)) cooldown_ = config_.evacuation_cooldown;
  }
}

}  // namespace glap::baselines
