// Best-Fit Decreasing packing reference.
//
// Fig. 6 compares every algorithm's active-PM count against "a baseline
// packing without producing any SLA violation", computed by BFD over the
// VMs' resource utilization of the last round. This is that oracle: given
// the current absolute usage of every VM and the PM capacity, it returns
// the minimum-ish number of PMs BFD needs so that no PM is oversubscribed.
#pragma once

#include <cstddef>
#include <vector>

#include "cloud/datacenter.hpp"
#include "common/resources.hpp"

namespace glap::baselines {

/// Packs `vm_usages` (absolute MIPS/MB per VM) into bins of `pm_capacity`
/// using Best-Fit Decreasing ordered by CPU demand; best fit = the bin
/// with the least remaining CPU that still fits both resources. Returns
/// the number of bins used.
[[nodiscard]] std::size_t bfd_bin_count(std::vector<Resources> vm_usages,
                                        const Resources& pm_capacity);

/// Convenience: BFD bin count for the data center's current VM usage.
[[nodiscard]] std::size_t bfd_bin_count(const cloud::DataCenter& dc);

}  // namespace glap::baselines
