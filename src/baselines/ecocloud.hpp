// EcoCloud — probabilistic gradual consolidation (Mastroianni, Meo,
// Papuzzo — IEEE TCC 2013), configured as in the GLAP evaluation:
// lower threshold T1 = 0.3, upper threshold T2 = 0.8.
//
// Each server periodically evaluates Bernoulli trials on local state:
//   * below T2: with a probability that grows as the server empties, it
//     attempts a *whole-server evacuation* toward hibernation. The
//     evacuation is planned first (every VM probes candidate servers,
//     reserving planned capacity) and executed only when complete, so
//     every consolidation migration contributes to a switch-off; a failed
//     plan costs nothing and starts a cooldown.
//   * above T2: a Bernoulli trial (ramping with the excess) sheds one VM.
// A migrating VM is offered to candidate servers (the original system
// broadcasts through a coordinator; we probe a bounded random sample of
// active servers, which the GLAP paper notes as EcoCloud's scalability
// weakness). Each candidate accepts via a Bernoulli trial whose success
// probability peaks just below T2 — servers prefer filling up, but never
// past the threshold. A drained server hibernates.
#pragma once

#include "cloud/datacenter.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace glap::baselines {

struct EcoCloudConfig {
  double lower_threshold = 0.3;  ///< T1
  double upper_threshold = 0.8;  ///< T2
  /// Shape of the acceptance function f(u) ∝ (u/T2)^p · (1 − u/T2);
  /// larger p moves the acceptance peak closer to T2.
  double accept_shape = 3.0;
  /// Candidate servers probed per migration attempt (coordinator fan-out).
  std::size_t probe_count = 16;
  /// Scale of the underload migration probability at u = 0.
  double migrate_prob_scale = 0.9;
  /// Residual drain probability scale between T1 and T2: without it a
  /// static VM population stalls in the (T1, T2) dead band and the system
  /// never approaches the packing the EcoCloud paper reports under churn.
  double mid_band_scale = 0.06;
  /// Rounds a server waits after a failed evacuation plan before its
  /// drain Bernoulli may fire again.
  std::uint32_t evacuation_cooldown = 150;
};

class EcoCloudProtocol final : public sim::Protocol {
 public:
  EcoCloudProtocol(const EcoCloudConfig& config, cloud::DataCenter& dc,
                   Rng rng);

  static sim::Engine::ProtocolSlot install(sim::Engine& engine,
                                           const EcoCloudConfig& config,
                                           cloud::DataCenter& dc,
                                           std::uint64_t seed);

  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

  /// Rounds left before this server's drain Bernoulli may fire again
  /// (non-zero only after a failed evacuation plan).
  [[nodiscard]] std::uint32_t cooldown_remaining() const noexcept {
    return cooldown_;
  }

  /// Acceptance probability of a server at utilization u (pure; tested).
  [[nodiscard]] static double acceptance_probability(
      double utilization, const EcoCloudConfig& config) noexcept;

  /// Underload migration probability at utilization u (pure; tested).
  [[nodiscard]] static double underload_migration_probability(
      double utilization, const EcoCloudConfig& config) noexcept;

 private:
  /// Probes up to probe_count random servers for `vm` using `rng` and
  /// returns the first accepting candidate. Dual-mode: with `engine` it
  /// counts probe messages (the real decision); with `declare` it records
  /// every probed server id (select_peers dry-run). Reads but never
  /// mutates data-center state, so two runs over identical state with an
  /// identical RNG yield the same candidate.
  std::optional<cloud::PmId> probe_place(Rng& rng, cloud::PmId source,
                                         cloud::VmId vm, sim::Engine* engine,
                                         sim::PeerSet* declare) const;

  /// Plans a complete evacuation of `source` (a target for every hosted
  /// VM, probabilistic acceptance against planned utilization, capacity
  /// reserved as the plan grows). Same dual-mode contract as probe_place;
  /// `plan_out` may be null when only the outcome matters.
  bool plan_evacuation(
      Rng& rng, sim::NodeId self, cloud::PmId source, sim::Engine* engine,
      sim::PeerSet* declare,
      std::vector<std::pair<cloud::VmId, cloud::PmId>>* plan_out) const;

  /// Offers `vm` to up to probe_count random active servers; each accepts
  /// via its Bernoulli trial plus a hard capacity check. Returns true when
  /// the VM migrated. Used by the overload-relief path.
  bool try_place(sim::Engine& engine, cloud::PmId source, cloud::VmId vm);

  /// Atomic evacuation: executes all planned migrations and hibernates
  /// only when the plan is complete, otherwise migrates nothing.
  bool try_evacuate(sim::Engine& engine, sim::NodeId self, cloud::PmId source);

  /// Picks the VM to shed: smallest current memory (cheapest migration).
  [[nodiscard]] std::optional<cloud::VmId> pick_vm(cloud::PmId pm) const;

  EcoCloudConfig config_;
  cloud::DataCenter& dc_;
  Rng rng_;
  std::uint32_t cooldown_ = 0;
  sim::Engine::ProtocolSlot self_slot_ = 0;
  bool self_slot_known_ = false;

  friend struct EcoCloudInstaller;
};

}  // namespace glap::baselines
