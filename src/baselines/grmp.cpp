#include "baselines/grmp.hpp"

#include "net/network_model.hpp"

namespace glap::baselines {

namespace {
constexpr std::size_t kStateMsgBytes = 16;
}

GrmpProtocol::GrmpProtocol(const GrmpConfig& config, cloud::DataCenter& dc,
                           sim::Engine::ProtocolSlot overlay_slot)
    : config_(config), dc_(dc), overlay_slot_(overlay_slot) {
  GLAP_REQUIRE(config.upper_threshold > 0.0 && config.upper_threshold <= 1.0,
               "grmp threshold out of (0,1]");
}

sim::Engine::ProtocolSlot GrmpProtocol::install(
    sim::Engine& engine, const GrmpConfig& config, cloud::DataCenter& dc,
    sim::Engine::ProtocolSlot overlay_slot) {
  GLAP_REQUIRE(engine.node_count() == dc.pm_count(),
               "engine nodes must map 1:1 onto data-center PMs");
  return engine.add_protocol_pool<GrmpProtocol>([&](sim::NodeId /*i*/) {
    return GrmpProtocol(config, dc, overlay_slot);
  });
}

bool GrmpProtocol::accepts(cloud::PmId pm, cloud::VmId vm) const {
  const Resources projected =
      dc_.current_usage(pm) + dc_.vm_current_usage(vm);
  const Resources util =
      projected.divided_by(dc_.pm(pm).spec().capacity());
  if (util.cpu > config_.upper_threshold) return false;
  if (config_.threshold_both_resources &&
      util.mem > config_.upper_threshold)
    return false;
  // Memory is bounded by physical capacity regardless of the threshold.
  return util.mem <= 1.0;
}

void GrmpProtocol::pack(sim::Engine& engine, cloud::PmId sender,
                        cloud::PmId recipient) {
  const std::size_t cap = dc_.pm(sender).vm_count();
  for (std::size_t attempt = 0; attempt < cap; ++attempt) {
    const auto& vms = dc_.pm(sender).vms();
    if (vms.empty()) break;
    // Greedy: move the largest-CPU VM that the recipient accepts.
    cloud::VmId best = cloud::VmId(-1);
    double best_cpu = -1.0;
    for (cloud::VmId v : vms) {
      if (!accepts(recipient, v)) continue;
      const double cpu = dc_.vm_current_usage(v).cpu;
      if (cpu > best_cpu) {
        best = v;
        best_cpu = cpu;
      }
    }
    if (best == cloud::VmId(-1)) break;
    dc_.migrate(best, recipient);
    engine.network().count_message(static_cast<sim::NodeId>(sender),
                                   static_cast<sim::NodeId>(recipient),
                                   kStateMsgBytes);
  }
}

void GrmpProtocol::select_peers(sim::Engine& engine, sim::NodeId self,
                                sim::PeerSet& peers) {
  // The gossip partner comes from the overlay sample; packing, the
  // capacity checks, and the switch-off touch only self and that partner.
  engine.protocol_at<overlay::NeighborProvider>(overlay_slot_, self)
      .append_peer_candidates(peers);
}

void GrmpProtocol::execute(sim::Engine& engine, sim::NodeId self,
                           const sim::PeerSet& /*peers*/) {
  auto& sampler =
      engine.protocol_at<overlay::NeighborProvider>(overlay_slot_, self);
  const auto peer = sampler.sample_active_peer(engine, self);
  if (!peer) return;
  if (net::NetworkModel* net = engine.net_model()) {
    // GRMP rounds are self-contained: a lost or late state exchange just
    // abandons this round's packing attempt.
    if (!net->round_trip(self, *peer, kStateMsgBytes, kStateMsgBytes,
                         net::Channel::kConsolidation)
             .ok())
      return;
  }
  engine.network().count_message(self, *peer, kStateMsgBytes);
  engine.network().count_message(*peer, self, kStateMsgBytes);

  const auto p = static_cast<cloud::PmId>(self);
  const auto q = static_cast<cloud::PmId>(*peer);

  // GRMP's management objective is packing (power minimization); it has no
  // dedicated overload-relief path — an overloaded PM can only hope the
  // regular packing direction eventually drains it, which is the failure
  // mode Fig. 1 of the GLAP paper illustrates. The threshold merely gates
  // what a receiver accepts.
  const double up = dc_.current_utilization(p).sum();
  const double uq = dc_.current_utilization(q).sum();
  const cloud::PmId sender = up <= uq ? p : q;
  const cloud::PmId recipient = up <= uq ? q : p;
  pack(engine, sender, recipient);

  if (dc_.pm(sender).empty()) {
    dc_.set_power(sender, cloud::PmPower::kSleep);
    engine.set_status(static_cast<sim::NodeId>(sender),
                      sim::NodeStatus::kSleeping);
  }
}

}  // namespace glap::baselines
