// The Gossip Workload Consolidation component (paper §IV-D, Algorithm 3).
//
// Each round a PM exchanges state with one random overlay neighbor
// (push-pull). If either party is overloaded it sheds VMs while
// overloaded; otherwise the PM with the lower (average) total utilization
// becomes the sender and drains toward switch-off. Every candidate
// migration passes three gates evaluated *on the sender* (Q-tables are
// identical after aggregation, and the sender knows the target's state, so
// no extra round-trip is needed):
//   1. π_out — the VM whose action has the greatest Q_out(s_sender, ·),
//      ties broken by least migration cost (current memory footprint);
//   2. π_in  — rejected when Q_in(s_target, a) < 0 (the learned predictor
//      of "this lands the target in overload now or soon");
//   3. capacity — the target must fit the VM's *current* demand.
// A sender that fully drains switches to sleep and leaves the overlay.
#pragma once

#include "cloud/datacenter.hpp"
#include "cloud/topology.hpp"
#include "core/config.hpp"
#include "core/gossip_learning.hpp"
#include "overlay/neighbor_provider.hpp"

// glap::metrics::Counter is forward-declared by gossip_learning.hpp.

namespace glap::core {

/// Per-run consolidation counters (for tests and ablation benches).
struct ConsolidationStats {
  std::uint64_t exchanges = 0;       ///< state push-pulls performed
  std::uint64_t migrations = 0;      ///< successful migrations initiated
  std::uint64_t rejected_by_pi_in = 0;
  std::uint64_t rejected_by_capacity = 0;
  std::uint64_t no_vm_available = 0;
  std::uint64_t switch_offs = 0;
};

class GlapConsolidationProtocol final : public sim::Protocol {
 public:
  /// `topology` may be null (vanilla GLAP); when set and
  /// config.rack_affinity > 0, peer sampling and the drain rule become
  /// rack-aware (see GlapConfig::rack_affinity).
  GlapConsolidationProtocol(const GlapConfig& config, cloud::DataCenter& dc,
                            sim::Engine::ProtocolSlot overlay_slot,
                            sim::Engine::ProtocolSlot learning_slot,
                            const cloud::RackTopology* topology, Rng rng);

  static sim::Engine::ProtocolSlot install(
      sim::Engine& engine, const GlapConfig& config, cloud::DataCenter& dc,
      sim::Engine::ProtocolSlot overlay_slot,
      sim::Engine::ProtocolSlot learning_slot, std::uint64_t seed,
      const cloud::RackTopology* topology = nullptr);

  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

  /// Quiescence vote: consolidation has started, the last
  /// `quiescence.idle_rounds` exchanges moved no VM, and the most recent
  /// partner-table cosine similarity reached
  /// `quiescence.similarity_threshold`. The learning component's own
  /// vote covers the "tables unified" precondition, so it is not
  /// re-checked here.
  [[nodiscard]] bool can_quiesce(const sim::Engine& engine,
                                 sim::NodeId self) const override;

  [[nodiscard]] const ConsolidationStats& stats() const noexcept {
    return stats_;
  }

  /// Last partner-table cosine similarity measured by the quiescence
  /// candidate check (-2 until one has been computed). Test hook.
  [[nodiscard]] double last_partner_similarity() const noexcept {
    return last_similarity_;
  }

 private:
  enum class Mode { kShedOverload, kDrainToSleep };

  /// UPDATESTATE: decides roles and runs the MIGRATE loop. Returns the
  /// number of VMs moved (the quiescence calm counter feeds on it).
  std::size_t update_state(sim::Engine& engine, cloud::PmId p, cloud::PmId q);

  /// MIGRATE loop from `sender` to `recipient`; returns the number of VMs
  /// moved. Stops on π_in rejection, missing VM, or lack of capacity.
  std::size_t migrate_loop(sim::Engine& engine, cloud::PmId sender,
                           cloud::PmId recipient, Mode mode);

  /// π_out + least-migration-cost tie-break. Returns the chosen VM and its
  /// action, or nullopt when the sender hosts no VMs. Non-const: fills the
  /// scratch_actions_ round-loop buffer.
  [[nodiscard]] std::optional<std::pair<cloud::VmId, qlearn::Action>> find_vm(
      const qlearn::QTable& out_table, qlearn::State sender_state,
      cloud::PmId sender);

  [[nodiscard]] qlearn::State pm_state(cloud::PmId pm) const;

  /// Rack-affinity peer sampling: a random active same-rack PM with
  /// probability rack_affinity, the overlay sample otherwise.
  [[nodiscard]] std::optional<sim::NodeId> sample_peer(sim::Engine& engine,
                                                       sim::NodeId self);

  /// The state push-pull plus the migrate loop and the calm/similarity
  /// bookkeeping — the exchange body shared by the immediate path and a
  /// deferred delivery coming due.
  void perform_exchange(sim::Engine& engine, sim::NodeId self,
                        sim::NodeId peer);

  /// A state exchange the network model delayed: performed at `due` with
  /// delivery-time state (DESIGN.md §13.4). Blocks quiescence while in
  /// flight; the engine re-activates the node via WakeReason::kNetwork.
  struct PendingExchange {
    bool active = false;
    sim::NodeId partner = 0;
    sim::Round due = 0;
    std::uint64_t msg_id = 0;
    sim::Round delay = 0;
  };

  GlapConfig config_;
  cloud::DataCenter& dc_;
  sim::Engine::ProtocolSlot overlay_slot_;
  sim::Engine::ProtocolSlot learning_slot_;
  const cloud::RackTopology* topology_;
  Rng rng_;
  ConsolidationStats stats_;
  sim::Round cycles_ = 0;
  // Quiescence candidate state: consecutive migration-free exchanges and
  // the similarity measured once the calm streak nears the vote
  // threshold (so non-candidates never pay the cosine scan).
  sim::Round calm_rounds_ = 0;
  double last_similarity_ = -2.0;
  PendingExchange pending_;
  // Round-loop scratch for find_vm's per-VM action levels.
  std::vector<qlearn::Action> scratch_actions_;
  // Registry mirrors of stats_ (shared across instances; null = disabled).
  bool telemetry_resolved_ = false;
  metrics::Counter* ctr_exchanges_ = nullptr;
  metrics::Counter* ctr_pi_in_rejects_ = nullptr;
  metrics::Counter* ctr_capacity_rejects_ = nullptr;
  metrics::Counter* ctr_switch_offs_ = nullptr;
};

}  // namespace glap::core
