// The two reward systems of GLAP (paper §IV-A). The reward of a transition
// is the sum over resources of the per-level reward of the *post-action*
// state ("the total reward of any transition from s to s' is aggregation
// rewards of each resource").
#pragma once

#include "core/config.hpp"
#include "qlearn/levels.hpp"

namespace glap::core {

class RewardSystem {
 public:
  explicit RewardSystem(RewardParams params);

  /// Per-resource sender reward of landing on `level`; always positive and
  /// strictly decreasing in the level.
  [[nodiscard]] double out_level_reward(qlearn::Level level) const noexcept;

  /// Per-resource recipient reward: positive, increasing toward 5xHigh,
  /// strongly negative at Overload.
  [[nodiscard]] double in_level_reward(qlearn::Level level) const noexcept;

  /// Transition rewards: sum of per-resource level rewards of `next`.
  [[nodiscard]] double out_reward(qlearn::LevelPair next) const noexcept;
  [[nodiscard]] double in_reward(qlearn::LevelPair next) const noexcept;

  [[nodiscard]] const RewardParams& params() const noexcept { return params_; }

 private:
  RewardParams params_;
};

}  // namespace glap::core
