// VM profiles — the data the VMM shares with GLAP components (paper §III).
// A profile carries the VM's current and running-average demand plus its
// nominal allocation; the learning phase trains on pools of profiles
// (local + one neighbor's), never on live VM objects.
#pragma once

#include <vector>

#include "cloud/datacenter.hpp"
#include "common/resources.hpp"
#include "qlearn/levels.hpp"

namespace glap::core {

struct VmProfile {
  Resources current_usage;  ///< absolute (MIPS, MB)
  Resources average_usage;  ///< absolute (MIPS, MB)
  Resources allocation;     ///< nominal (MIPS, MB)

  /// The VM's action level: its demand relative to its own allocation
  /// (see DESIGN.md §3 — with micro VMs on large PMs, PM-relative levels
  /// would collapse onto Low and erase the action space).
  [[nodiscard]] qlearn::Action action(bool use_average) const noexcept {
    const Resources frac = (use_average ? average_usage : current_usage)
                               .divided_by(allocation);
    return qlearn::classify(frac.cpu, frac.mem);
  }
};

/// Extracts the profiles of every VM currently hosted on `pm` into `out`
/// (cleared first). The out-param form lets round-loop callers reuse one
/// buffer instead of allocating a vector per interaction.
inline void profiles_of(const cloud::DataCenter& dc, cloud::PmId pm,
                        std::vector<VmProfile>* out) {
  out->clear();
  const auto& vms = dc.pm(pm).vms();
  out->reserve(vms.size());
  for (cloud::VmId v : vms)
    out->push_back({dc.vm_current_usage(v), dc.vm_average_usage(v),
                    dc.vm(v).spec().capacity()});
}

/// Convenience form for cold paths and tests.
[[nodiscard]] inline std::vector<VmProfile> profiles_of(
    const cloud::DataCenter& dc, cloud::PmId pm) {
  std::vector<VmProfile> out;
  profiles_of(dc, pm, &out);
  return out;
}

/// PM state of a profile set: aggregate usage over the PM capacity,
/// classified into levels. `use_average` selects which usage signal.
[[nodiscard]] inline qlearn::State state_of_profiles(
    const std::vector<VmProfile>& profiles, const Resources& pm_capacity,
    bool use_average) noexcept {
  Resources sum;
  for (const auto& p : profiles)
    sum += use_average ? p.average_usage : p.current_usage;
  const Resources util = sum.divided_by(pm_capacity);
  return qlearn::classify(util.cpu, util.mem);
}

}  // namespace glap::core
