// VM profiles — the data the VMM shares with GLAP components (paper §III).
// A profile carries the VM's current and running-average demand plus its
// nominal allocation; the learning phase trains on pools of profiles
// (local + one neighbor's), never on live VM objects.
#pragma once

#include <vector>

#include "cloud/datacenter.hpp"
#include "common/resources.hpp"
#include "qlearn/levels.hpp"

namespace glap::core {

struct VmProfile {
  Resources current_usage;  ///< absolute (MIPS, MB)
  Resources average_usage;  ///< absolute (MIPS, MB)
  Resources allocation;     ///< nominal (MIPS, MB)

  /// The VM's action level: its demand relative to its own allocation
  /// (see DESIGN.md §3 — with micro VMs on large PMs, PM-relative levels
  /// would collapse onto Low and erase the action space).
  [[nodiscard]] qlearn::Action action(bool use_average) const noexcept {
    const Resources frac = (use_average ? average_usage : current_usage)
                               .divided_by(allocation);
    return qlearn::classify(frac.cpu, frac.mem);
  }
};

/// Extracts the profiles of every VM currently hosted on `pm`.
[[nodiscard]] inline std::vector<VmProfile> profiles_of(
    const cloud::DataCenter& dc, cloud::PmId pm) {
  std::vector<VmProfile> out;
  const auto& vms = dc.pm(pm).vms();
  out.reserve(vms.size());
  for (cloud::VmId v : vms) {
    const cloud::Vm& vm = dc.vm(v);
    out.push_back({vm.current_usage(), vm.average_usage(),
                   vm.spec().capacity()});
  }
  return out;
}

/// PM state of a profile set: aggregate usage over the PM capacity,
/// classified into levels. `use_average` selects which usage signal.
[[nodiscard]] inline qlearn::State state_of_profiles(
    const std::vector<VmProfile>& profiles, const Resources& pm_capacity,
    bool use_average) noexcept {
  Resources sum;
  for (const auto& p : profiles)
    sum += use_average ? p.average_usage : p.current_usage;
  const Resources util = sum.divided_by(pm_capacity);
  return qlearn::classify(util.cpu, util.mem);
}

}  // namespace glap::core
