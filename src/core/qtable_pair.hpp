// φ^io — the union of a PM's OUT and IN Q-tables, exchanged and merged as
// one unit by the aggregation phase (Algorithm 2 operates on
// φ_p^io = φ_p^in ∪ φ_p^out).
#pragma once

#include "qlearn/qtable.hpp"

namespace glap::core {

struct QTablePair {
  qlearn::QTable out;
  qlearn::QTable in;

  /// Algorithm 2's UPDATE applied to both component tables.
  void merge_average(const QTablePair& other) {
    out.merge_average(other.out);
    in.merge_average(other.in);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return out.size() + in.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return out.empty() && in.empty();
  }
};

/// Cosine similarity over the concatenated (out, in) key spaces — the
/// Fig. 5 convergence metric.
[[nodiscard]] double cosine_similarity(const QTablePair& a,
                                       const QTablePair& b);

}  // namespace glap::core
