// Local training — the learning phase of the two-phase protocol
// (Algorithm 1). A PM simulates the consolidation process over a pool of
// VM profiles (its own plus one neighbor's, duplicated to cover highly
// loaded states): k times per round it draws a sender subset and a target
// subset, "migrates" a random VM between them, and applies the Bellman
// update to both Q-tables.
//
// The states before an action (and the VM's action level) come from
// *average* demands; the state after the action comes from *current*
// demands — the §IV-B split that teaches the tables how volatile each
// workload pattern really is.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/profiles.hpp"
#include "core/qtable_pair.hpp"
#include "core/rewards.hpp"

namespace glap::core {

class LocalTrainer {
 public:
  LocalTrainer(const GlapConfig& config, Resources pm_capacity, Rng rng);

  /// Duplicates `pool` entries in place (round-robin) until the pool's
  /// aggregate average CPU could fill `duplicate_pool_pm_multiple` PMs;
  /// no-op when the pool is already big enough or empty.
  void grow_pool(std::vector<VmProfile>& pool) const;

  /// Value-returning convenience wrapper around grow_pool.
  [[nodiscard]] std::vector<VmProfile> duplicate_if_required(
      std::vector<VmProfile> pool) const {
    grow_pool(pool);
    return pool;
  }

  /// One learning round: k simulated consolidation steps over `pool`,
  /// updating `tables` in place. Pools smaller than 2 profiles are a no-op
  /// (nothing to migrate between subsets).
  void train_round(const std::vector<VmProfile>& pool, QTablePair& tables);

  [[nodiscard]] const RewardSystem& rewards() const noexcept {
    return rewards_;
  }

 private:
  /// Draws into `out` a random subset of pool indices whose aggregate
  /// average CPU utilization approaches a uniformly drawn target in
  /// [0.05, 1.1].
  void draw_subset(const std::vector<VmProfile>& pool,
                   std::vector<std::size_t>& out);

  [[nodiscard]] qlearn::State subset_state(
      const std::vector<VmProfile>& pool,
      const std::vector<std::size_t>& subset, bool use_average,
      std::size_t excluded, const VmProfile* added) const;

  GlapConfig config_;
  Resources pm_capacity_;
  RewardSystem rewards_;
  Rng rng_;
  // Round-loop scratch: train_round used to allocate four vectors per
  // simulated migration; these keep their capacity across iterations.
  std::vector<std::size_t> scratch_order_;
  std::vector<std::size_t> scratch_sender_;
  std::vector<std::size_t> scratch_target_;
};

}  // namespace glap::core
