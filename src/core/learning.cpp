#include "core/learning.hpp"

#include <algorithm>

namespace glap::core {

namespace {
constexpr std::size_t kNoExclusion = static_cast<std::size_t>(-1);
}

LocalTrainer::LocalTrainer(const GlapConfig& config, Resources pm_capacity,
                           Rng rng)
    : config_(config), pm_capacity_(pm_capacity), rewards_(config.rewards),
      rng_(rng) {
  GLAP_REQUIRE(pm_capacity.cpu > 0.0 && pm_capacity.mem > 0.0,
               "pm capacity must be positive");
  GLAP_REQUIRE(config.train_iterations_per_round > 0,
               "train_iterations_per_round must be positive");
}

void LocalTrainer::grow_pool(std::vector<VmProfile>& pool) const {
  if (pool.empty()) return;
  double total_avg_cpu = 0.0;
  for (const auto& p : pool) total_avg_cpu += p.average_usage.cpu;
  const double target = config_.duplicate_pool_pm_multiple * pm_capacity_.cpu;
  const std::size_t originals = pool.size();
  std::size_t cursor = 0;
  // Hard cap keeps adversarial all-idle pools from ballooning the pool.
  const std::size_t max_size = originals * 16;
  pool.reserve(max_size);
  while (total_avg_cpu < target && pool.size() < max_size) {
    pool.push_back(pool[cursor]);
    total_avg_cpu += pool[cursor].average_usage.cpu;
    cursor = (cursor + 1) % originals;
  }
}

void LocalTrainer::draw_subset(const std::vector<VmProfile>& pool,
                               std::vector<std::size_t>& out) {
  // Aim the subset's aggregate *average* CPU utilization at a random
  // target so training visits the whole state spectrum, including
  // overloaded configurations (target may exceed 1).
  const double target_util = rng_.uniform(0.05, 1.1);
  scratch_order_.resize(pool.size());
  for (std::size_t i = 0; i < scratch_order_.size(); ++i)
    scratch_order_[i] = i;
  rng_.shuffle(scratch_order_);

  out.clear();
  out.reserve(pool.size());
  double cpu_sum = 0.0;
  for (std::size_t idx : scratch_order_) {
    out.push_back(idx);
    cpu_sum += pool[idx].average_usage.cpu;
    if (cpu_sum / pm_capacity_.cpu >= target_util) break;
  }
}

qlearn::State LocalTrainer::subset_state(
    const std::vector<VmProfile>& pool, const std::vector<std::size_t>& subset,
    bool use_average, std::size_t excluded, const VmProfile* added) const {
  Resources sum;
  for (std::size_t idx : subset) {
    if (idx == excluded) continue;
    const VmProfile& p = pool[idx];
    sum += use_average ? p.average_usage : p.current_usage;
  }
  if (added) sum += use_average ? added->average_usage : added->current_usage;
  const Resources util = sum.divided_by(pm_capacity_);
  return qlearn::classify(util.cpu, util.mem);
}

void LocalTrainer::train_round(const std::vector<VmProfile>& pool,
                               QTablePair& tables) {
  if (pool.size() < 2) return;
  const bool avg = config_.use_average_state;

  for (std::size_t iter = 0; iter < config_.train_iterations_per_round;
       ++iter) {
    draw_subset(pool, scratch_sender_);
    draw_subset(pool, scratch_target_);
    const auto& sender = scratch_sender_;
    const auto& target = scratch_target_;
    if (sender.empty()) continue;

    // The migrating VM: a random member of the sender subset.
    const std::size_t vm_pos = rng_.pick_index(sender);
    const std::size_t vm_idx = sender[vm_pos];
    const VmProfile& vm = pool[vm_idx];
    const qlearn::Action action = vm.action(avg);

    // Sender side (OUT): pre-state from averages, outcome from currents.
    const qlearn::State s_sender =
        subset_state(pool, sender, avg, kNoExclusion, nullptr);
    const qlearn::State s_sender_after =
        subset_state(pool, sender, /*use_average=*/false, vm_idx, nullptr);
    tables.out.update(s_sender, action, rewards_.out_reward(s_sender_after),
                      s_sender_after, config_.q);

    // Target side (IN): would accepting this VM (eventually) overload us?
    const qlearn::State s_target =
        subset_state(pool, target, avg, kNoExclusion, nullptr);
    const qlearn::State s_target_after =
        subset_state(pool, target, /*use_average=*/false, kNoExclusion, &vm);
    tables.in.update(s_target, action, rewards_.in_reward(s_target_after),
                     s_target_after, config_.q);
  }
}

}  // namespace glap::core
