#include "core/rewards.hpp"

#include "common/assert.hpp"

namespace glap::core {

RewardSystem::RewardSystem(RewardParams params) : params_(params) {
  GLAP_REQUIRE(params.out_step > 0.0, "out_step must be positive");
  GLAP_REQUIRE(params.out_base -
                       params.out_step * (qlearn::kLevelCount - 1) >
                   0.0,
               "reward OUT must stay positive at Overload (r_O > 0)");
  GLAP_REQUIRE(params.in_step > 0.0, "in_step must be positive");
  GLAP_REQUIRE(params.in_base > 0.0, "reward IN base must be positive");
  GLAP_REQUIRE(params.in_overload < 0.0, "reward IN Overload must be negative");
}

double RewardSystem::out_level_reward(qlearn::Level level) const noexcept {
  return params_.out_base -
         params_.out_step * static_cast<double>(qlearn::level_index(level));
}

double RewardSystem::in_level_reward(qlearn::Level level) const noexcept {
  if (level == qlearn::Level::kOverload) return params_.in_overload;
  return params_.in_base +
         params_.in_step * static_cast<double>(qlearn::level_index(level));
}

double RewardSystem::out_reward(qlearn::LevelPair next) const noexcept {
  return out_level_reward(next.cpu) + out_level_reward(next.mem);
}

double RewardSystem::in_reward(qlearn::LevelPair next) const noexcept {
  return in_level_reward(next.cpu) + in_level_reward(next.mem);
}

}  // namespace glap::core
