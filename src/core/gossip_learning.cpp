#include "core/gossip_learning.hpp"

#include "common/metrics.hpp"
#include "net/network_model.hpp"

namespace glap::core {

namespace {
constexpr std::size_t kQEntryBytes = 12;       // key + value on the wire
constexpr std::size_t kProfileBytes = 48;      // one VM profile on the wire
}

GossipLearningProtocol::GossipLearningProtocol(
    const GlapConfig& config, cloud::DataCenter& dc,
    sim::Engine::ProtocolSlot overlay_slot, Resources pm_capacity, Rng rng)
    : config_(config),
      dc_(dc),
      overlay_slot_(overlay_slot),
      trainer_(config, pm_capacity, rng),
      learning_rounds_(config.learning_rounds),
      aggregation_rounds_(config.aggregation_rounds) {}

void GossipLearningProtocol::retrigger(sim::Round learning_rounds,
                                       sim::Round aggregation_rounds) {
  cycles_ = 0;
  learning_rounds_ = learning_rounds;
  aggregation_rounds_ = aggregation_rounds;
}

struct GossipLearningInstaller {
  static void set_slot(GossipLearningProtocol& p,
                       sim::Engine::ProtocolSlot slot) {
    p.self_slot_ = slot;
    p.self_slot_known_ = true;
  }
};

sim::Engine::ProtocolSlot GossipLearningProtocol::install(
    sim::Engine& engine, const GlapConfig& config, cloud::DataCenter& dc,
    sim::Engine::ProtocolSlot overlay_slot, std::uint64_t seed) {
  GLAP_REQUIRE(engine.node_count() == dc.pm_count(),
               "engine nodes must map 1:1 onto data-center PMs");
  Rng master(hash_combine(seed, hash_tag("gossip-learning")));
  const auto slot = engine.add_protocol_pool<GossipLearningProtocol>(
      [&](sim::NodeId i) {
        return GossipLearningProtocol(
            config, dc, overlay_slot,
            dc.pm(static_cast<cloud::PmId>(i)).spec().capacity(),
            master.split(i));
      });
  for (std::size_t i = 0; i < engine.node_count(); ++i)
    GossipLearningInstaller::set_slot(
        engine.protocol_at<GossipLearningProtocol>(
            slot, static_cast<sim::NodeId>(i)),
        slot);
  return slot;
}

GossipLearningProtocol::Phase GossipLearningProtocol::phase() const noexcept {
  if (cycles_ < learning_rounds_) return Phase::kLearning;
  if (cycles_ < learning_rounds_ + aggregation_rounds_)
    return Phase::kAggregation;
  return Phase::kIdle;
}

GossipLearningProtocol::Phase GossipLearningProtocol::phase_after_cycle()
    const noexcept {
  if (cycles_ + 1 < learning_rounds_) return Phase::kLearning;
  if (cycles_ + 1 < learning_rounds_ + aggregation_rounds_)
    return Phase::kAggregation;
  return Phase::kIdle;
}

void GossipLearningProtocol::select_peers(sim::Engine& engine,
                                          sim::NodeId self,
                                          sim::PeerSet& peers) {
  // Idle cycles only bump the local counter. Learning/aggregation cycles
  // sample one overlay peer and read (learning) or rewrite (aggregation)
  // that peer's state; the overlay's candidate superset covers every id
  // the sample may probe. The utilization gate reads only self state, so
  // declaring candidates unconditionally is a safe over-approximation.
  if (phase() == Phase::kIdle) return;
  engine.protocol_at<overlay::NeighborProvider>(overlay_slot_, self)
      .append_peer_candidates(peers);
}

void GossipLearningProtocol::execute(sim::Engine& engine, sim::NodeId self,
                                     const sim::PeerSet& /*peers*/) {
  if (!telemetry_resolved_) {
    telemetry_resolved_ = true;
    if (metrics::MetricsRegistry* m = engine.metrics()) {
      ctr_train_ = m->counter("learning.train_cycles");
      ctr_merge_ = m->counter("learning.merges");
    }
  }
  // A deferred push-pull comes due before anything else this round; its
  // reply was on the wire, so it completes even if the phase has since
  // advanced (the merge is idempotent knowledge transfer).
  if (pending_.active && engine.current_round() >= pending_.due) {
    complete_pending(engine, self);
    ++cycles_;
    return;
  }
  const Phase current = phase();
  ++cycles_;
  switch (current) {
    case Phase::kLearning:
      learning_cycle(engine, self);
      break;
    case Phase::kAggregation:
      aggregation_cycle(engine, self);
      break;
    case Phase::kIdle:
      break;
  }
}

void GossipLearningProtocol::learning_cycle(sim::Engine& engine,
                                            sim::NodeId self) {
  // Only lightly loaded PMs train, to avoid disturbing collocated VMs
  // (paper: PMs with ≥50% free CPU run the algorithm locally).
  const Resources util =
      dc_.average_utilization(static_cast<cloud::PmId>(self));
  if (util.max_component() > config_.learning_util_threshold) return;

  auto& sampler = engine.protocol_at<overlay::NeighborProvider>(
      overlay_slot_, self);
  profiles_of(dc_, static_cast<cloud::PmId>(self), &scratch_pool_);
  if (const auto peer = sampler.sample_active_peer(engine, self)) {
    GLAP_ASSERT(self_slot_known_, "learning protocol used before install()");
    auto& remote = engine.protocol_at<GossipLearningProtocol>(self_slot_,
                                                              *peer);
    remote.shared_profiles(*peer, &scratch_remote_);
    // Profile freshness matters (they feed this round's training batch),
    // so a lost or late fetch is simply skipped: train on the local pool.
    bool fetched = true;
    if (net::NetworkModel* net = engine.net_model())
      fetched = net->round_trip(self, *peer, kQEntryBytes,
                                scratch_remote_.size() * kProfileBytes,
                                net::Channel::kLearning)
                    .ok();
    if (fetched) {
      engine.network().count_message(*peer, self,
                                     scratch_remote_.size() * kProfileBytes);
      scratch_pool_.insert(scratch_pool_.end(), scratch_remote_.begin(),
                           scratch_remote_.end());
    }
  }
  trainer_.grow_pool(scratch_pool_);
  trainer_.train_round(scratch_pool_, tables_);
  if (ctr_train_ != nullptr) ctr_train_->inc();
}

void GossipLearningProtocol::aggregation_cycle(sim::Engine& engine,
                                               sim::NodeId self) {
  auto& sampler = engine.protocol_at<overlay::NeighborProvider>(
      overlay_slot_, self);
  const auto peer = sampler.sample_active_peer(engine, self);
  if (!peer) return;
  GLAP_ASSERT(self_slot_known_, "learning protocol used before install()");
  auto& remote =
      engine.protocol_at<GossipLearningProtocol>(self_slot_, *peer);

  if (net::NetworkModel* net = engine.net_model()) {
    const net::Verdict verdict = net->round_trip(
        self, *peer, tables_.size() * kQEntryBytes,
        remote.tables_.size() * kQEntryBytes, net::Channel::kAggregation);
    if (verdict.outcome == net::Verdict::Outcome::kDropped)
      return;  // lost on the wire: neither side merges this cycle
    if (verdict.outcome == net::Verdict::Outcome::kDelayed) {
      // The reply is in flight; merge when it lands (DESIGN.md §13.4).
      pending_ = {true, *peer, engine.current_round() + verdict.delay,
                  verdict.msg_id, verdict.delay};
      engine.schedule_wake(self, pending_.due, sim::WakeReason::kNetwork);
      return;
    }
  }

  engine.network().count_message(self, *peer,
                                 tables_.size() * kQEntryBytes);
  engine.network().count_message(*peer, self,
                                 remote.tables_.size() * kQEntryBytes);

  // Push-pull merge (Algorithm 2): both parties apply UPDATE and end up
  // with the identical averaged/unioned table. Merging in place and
  // copying once (flat tables copy as a single memcpy) beats building a
  // third table.
  tables_.merge_average(remote.tables_);
  remote.tables_ = tables_;
  if (ctr_merge_ != nullptr) ctr_merge_->inc();
  // The push-pull rewrote the peer's tables: that is incoming gossip for
  // a parked peer, so re-activate it (no-op unless quiescent).
  engine.wake(*peer, sim::WakeReason::kGossip);
}

void GossipLearningProtocol::complete_pending(sim::Engine& engine,
                                              sim::NodeId self) {
  const PendingExchange pending = pending_;
  pending_ = {};
  net::NetworkModel* net = engine.net_model();
  GLAP_ASSERT(net != nullptr, "pending exchange without a network model");
  // Report the actual rounds-in-flight: a node that slept past its due
  // round picks the reply up late, and the trace must say so (the checker
  // pins deliver.round == send.round + delay).
  const sim::Round send_round = pending.due - pending.delay;
  net->deliver_deferred(self, pending.partner, pending.msg_id,
                        engine.current_round() - send_round);
  // The merge uses delivery-time state: tables on both sides may have
  // moved since the send — exactly the staleness a slow network causes.
  auto& remote =
      engine.protocol_at<GossipLearningProtocol>(self_slot_, pending.partner);
  engine.network().count_message(self, pending.partner,
                                 tables_.size() * kQEntryBytes);
  engine.network().count_message(pending.partner, self,
                                 remote.tables_.size() * kQEntryBytes);
  tables_.merge_average(remote.tables_);
  remote.tables_ = tables_;
  if (ctr_merge_ != nullptr) ctr_merge_->inc();
  engine.wake(pending.partner, sim::WakeReason::kGossip);
}

}  // namespace glap::core
