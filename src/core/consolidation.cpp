#include "core/consolidation.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "net/network_model.hpp"

namespace glap::core {

namespace {
constexpr std::size_t kStateMsgBytes = 32;  // (cpu, mem) current + average
}

GlapConsolidationProtocol::GlapConsolidationProtocol(
    const GlapConfig& config, cloud::DataCenter& dc,
    sim::Engine::ProtocolSlot overlay_slot,
    sim::Engine::ProtocolSlot learning_slot,
    const cloud::RackTopology* topology, Rng rng)
    : config_(config),
      dc_(dc),
      overlay_slot_(overlay_slot),
      learning_slot_(learning_slot),
      topology_(topology),
      rng_(rng) {
  GLAP_REQUIRE(config.rack_affinity >= 0.0 && config.rack_affinity <= 1.0,
               "rack_affinity out of [0,1]");
}

sim::Engine::ProtocolSlot GlapConsolidationProtocol::install(
    sim::Engine& engine, const GlapConfig& config, cloud::DataCenter& dc,
    sim::Engine::ProtocolSlot overlay_slot,
    sim::Engine::ProtocolSlot learning_slot, std::uint64_t seed,
    const cloud::RackTopology* topology) {
  GLAP_REQUIRE(engine.node_count() == dc.pm_count(),
               "engine nodes must map 1:1 onto data-center PMs");
  Rng master(hash_combine(seed, hash_tag("glap-consolidation")));
  return engine.add_protocol_pool<GlapConsolidationProtocol>(
      [&](sim::NodeId i) {
        return GlapConsolidationProtocol(config, dc, overlay_slot,
                                         learning_slot, topology,
                                         master.split(i));
      });
}

std::optional<sim::NodeId> GlapConsolidationProtocol::sample_peer(
    sim::Engine& engine, sim::NodeId self) {
  if (topology_ && config_.rack_affinity > 0.0 &&
      rng_.bernoulli(config_.rack_affinity)) {
    const auto rack = topology_->rack_of(static_cast<cloud::PmId>(self));
    auto members = topology_->members(rack);
    rng_.shuffle(members);
    for (cloud::PmId peer : members) {
      if (peer == static_cast<cloud::PmId>(self)) continue;
      if (engine.is_active(static_cast<sim::NodeId>(peer)))
        return static_cast<sim::NodeId>(peer);
    }
    // Whole rack asleep or solitary: fall through to the overlay.
  }
  auto& sampler =
      engine.protocol_at<overlay::NeighborProvider>(overlay_slot_, self);
  return sampler.sample_active_peer(engine, self);
}

qlearn::State GlapConsolidationProtocol::pm_state(cloud::PmId pm) const {
  const Resources util = config_.use_average_state
                             ? dc_.average_utilization(pm)
                             : dc_.current_utilization(pm);
  return qlearn::classify(util.cpu, util.mem);
}

void GlapConsolidationProtocol::select_peers(sim::Engine& engine,
                                             sim::NodeId self,
                                             sim::PeerSet& peers) {
  // Mirror execute()'s gates without advancing any counter. cycles_ is
  // read pre-increment in both phases; the learning phase gate must use
  // the post-increment view because the learning slot executes (and bumps
  // its counter) before this slot does within the same round.
  if (cycles_ < config_.consolidation_start_round) return;
  auto& learning =
      engine.protocol_at<GossipLearningProtocol>(learning_slot_, self);
  if (learning.phase_after_cycle() != GossipLearningProtocol::Phase::kIdle &&
      !config_.continue_during_relearn)
    return;
  if (topology_ && config_.rack_affinity > 0.0) {
    // Rack-aware mode reads the utilization of every member of both the
    // sender's and the recipient's racks (rack_load) and may sample any
    // rack member; declaring that closure precisely is not worth the
    // complexity, so rack-aware interactions run exclusively.
    peers.add_global();
    return;
  }
  // The push-pull partner comes from the overlay; migrations, the learned
  // tables, and the switch-off all touch only self and that partner.
  engine.protocol_at<overlay::NeighborProvider>(overlay_slot_, self)
      .append_peer_candidates(peers);
}

void GlapConsolidationProtocol::execute(sim::Engine& engine, sim::NodeId self,
                                        const sim::PeerSet& /*peers*/) {
  // The learning component feeds this one: consolidation pauses until the
  // two-phase learning pre-run has produced unified Q-values and the
  // configured start round (the experiment's warmup) has passed.
  const sim::Round cycle = cycles_++;
  if (cycle < config_.consolidation_start_round) return;
  auto& learning = engine.protocol_at<GossipLearningProtocol>(
      learning_slot_, self);
  if (learning.phase() != GossipLearningProtocol::Phase::kIdle &&
      !config_.continue_during_relearn)
    return;

  // A deferred state exchange comes due before a new one is initiated:
  // the initiator was blocked on the reply in flight (DESIGN.md §13.4).
  if (pending_.active) {
    if (engine.current_round() < pending_.due) return;
    const PendingExchange pending = pending_;
    pending_ = {};
    net::NetworkModel* net = engine.net_model();
    GLAP_ASSERT(net != nullptr, "pending exchange without a network model");
    const sim::Round send_round = pending.due - pending.delay;
    net->deliver_deferred(self, pending.partner, pending.msg_id,
                          engine.current_round() - send_round);
    // A partner that slept or failed while the reply was in flight makes
    // the exchange moot — the payload arrived, the conversation did not.
    if (engine.is_active(pending.partner))
      perform_exchange(engine, self, pending.partner);
    return;
  }

  const auto peer = sample_peer(engine, self);
  if (!peer) {
    // No active partner: an interaction-free round still counts toward
    // the calm streak (a drained neighborhood is the converged state).
    ++calm_rounds_;
    return;
  }

  if (net::NetworkModel* net = engine.net_model()) {
    const net::Verdict verdict = net->round_trip(
        self, *peer, kStateMsgBytes, kStateMsgBytes,
        net::Channel::kConsolidation);
    if (verdict.outcome == net::Verdict::Outcome::kDropped)
      return;  // no reply, no evidence: the calm streak does not advance
    if (verdict.outcome == net::Verdict::Outcome::kDelayed) {
      pending_ = {true, *peer, engine.current_round() + verdict.delay,
                  verdict.msg_id, verdict.delay};
      engine.schedule_wake(self, pending_.due, sim::WakeReason::kNetwork);
      return;
    }
  }

  perform_exchange(engine, self, *peer);
}

void GlapConsolidationProtocol::perform_exchange(sim::Engine& engine,
                                                 sim::NodeId self,
                                                 sim::NodeId peer) {
  if (!telemetry_resolved_) {
    telemetry_resolved_ = true;
    if (metrics::MetricsRegistry* m = engine.metrics()) {
      ctr_exchanges_ = m->counter("consolidation.exchanges");
      ctr_pi_in_rejects_ = m->counter("consolidation.pi_in_rejects");
      ctr_capacity_rejects_ = m->counter("consolidation.capacity_rejects");
      ctr_switch_offs_ = m->counter("consolidation.switch_offs");
    }
  }

  // Push-pull state exchange (Algorithm 3, lines 1-10).
  engine.network().count_message(self, peer, kStateMsgBytes);
  engine.network().count_message(peer, self, kStateMsgBytes);
  ++stats_.exchanges;
  if (ctr_exchanges_ != nullptr) ctr_exchanges_->inc();

  const std::size_t moved = update_state(
      engine, static_cast<cloud::PmId>(self), static_cast<cloud::PmId>(peer));
  if (moved > 0) {
    calm_rounds_ = 0;
    return;
  }
  ++calm_rounds_;
  const QuiescenceConfig& quiesce = config_.quiescence;
  if (quiesce.idle_rounds > 0 && calm_rounds_ >= quiesce.idle_rounds) {
    // Candidate to park: measure convergence against this exchange's
    // partner. Deferring the cosine scan to the calm tail keeps the
    // O(|table|) cost off every non-candidate round.
    auto& mine = engine.protocol_at<GossipLearningProtocol>(learning_slot_,
                                                            self);
    auto& theirs = engine.protocol_at<GossipLearningProtocol>(learning_slot_,
                                                              peer);
    last_similarity_ = cosine_similarity(mine.tables(), theirs.tables());
  }
}

bool GlapConsolidationProtocol::can_quiesce(const sim::Engine& /*engine*/,
                                            sim::NodeId /*self*/) const {
  if (pending_.active) return false;  // a reply is in flight
  const QuiescenceConfig& quiesce = config_.quiescence;
  if (quiesce.idle_rounds == 0) return false;
  if (cycles_ <= config_.consolidation_start_round) return false;
  return calm_rounds_ >= quiesce.idle_rounds &&
         last_similarity_ >= quiesce.similarity_threshold;
}

std::size_t GlapConsolidationProtocol::update_state(sim::Engine& engine,
                                                    cloud::PmId p,
                                                    cloud::PmId q) {
  // Overload relief takes priority (lines 12-13); since the interaction is
  // push-pull, an overloaded passive party sheds symmetrically.
  if (dc_.overloaded(p)) return migrate_loop(engine, p, q, Mode::kShedOverload);
  if (dc_.overloaded(q)) return migrate_loop(engine, q, p, Mode::kShedOverload);

  // Otherwise the less-utilized PM drains toward switch-off (lines 14-16).
  // Rack-aware variant: across racks, the PM of the *emptier rack* drains
  // first so whole racks (and their switches) can power down.
  double up = dc_.average_utilization(p).sum();
  double uq = dc_.average_utilization(q).sum();
  if (topology_ && config_.rack_affinity > 0.0) {
    const auto rack_p = topology_->rack_of(p);
    const auto rack_q = topology_->rack_of(q);
    if (rack_p != rack_q) {
      up = topology_->rack_load(dc_, rack_p);
      uq = topology_->rack_load(dc_, rack_q);
    }
  }
  const cloud::PmId sender = up <= uq ? p : q;
  const cloud::PmId recipient = up <= uq ? q : p;
  const std::size_t moved =
      migrate_loop(engine, sender, recipient, Mode::kDrainToSleep);

  if (dc_.pm(sender).empty()) {
    dc_.set_power(sender, cloud::PmPower::kSleep);
    engine.set_status(static_cast<sim::NodeId>(sender),
                      sim::NodeStatus::kSleeping);
    ++stats_.switch_offs;
    if (ctr_switch_offs_ != nullptr) ctr_switch_offs_->inc();
  }
  return moved;
}

std::optional<std::pair<cloud::VmId, qlearn::Action>>
GlapConsolidationProtocol::find_vm(const qlearn::QTable& out_table,
                                   qlearn::State sender_state,
                                   cloud::PmId sender) {
  const auto& vms = dc_.pm(sender).vms();
  if (vms.empty()) return std::nullopt;

  // π_out: the available action with the greatest Q_out(s, ·).
  std::vector<qlearn::Action>& actions = scratch_actions_;
  actions.clear();
  actions.reserve(vms.size());
  for (cloud::VmId v : vms) {
    const Resources frac = config_.use_average_state
                               ? dc_.vm_average_fraction(v)
                               : dc_.vm_demand_fraction(v);
    actions.push_back(qlearn::classify(frac.cpu, frac.mem));
  }
  const auto best = out_table.best_action(sender_state, actions);
  if (!best) return std::nullopt;

  // Among VMs matching the chosen action, pick the least migration cost
  // (smallest current memory footprint — memory drives τ).
  std::optional<cloud::VmId> chosen;
  double chosen_mem = 0.0;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    if (!(actions[i] == *best)) continue;
    const double mem = dc_.vm_current_usage(vms[i]).mem;
    if (!chosen || mem < chosen_mem) {
      chosen = vms[i];
      chosen_mem = mem;
    }
  }
  GLAP_ASSERT(chosen.has_value(), "best_action returned unavailable action");
  return std::make_pair(*chosen, *best);
}

std::size_t GlapConsolidationProtocol::migrate_loop(sim::Engine& engine,
                                                    cloud::PmId sender,
                                                    cloud::PmId recipient,
                                                    Mode mode) {
  auto& learning = engine.protocol_at<GossipLearningProtocol>(
      learning_slot_, static_cast<sim::NodeId>(sender));
  const QTablePair& tables = learning.tables();

  std::size_t moved = 0;
  const std::size_t cap = dc_.pm(sender).vm_count();
  for (std::size_t attempt = 0; attempt < cap; ++attempt) {
    const bool keep_going = mode == Mode::kShedOverload
                                ? dc_.overloaded(sender)
                                : !dc_.pm(sender).empty();
    if (!keep_going) break;

    const auto pick = find_vm(tables.out, pm_state(sender), sender);
    if (!pick) {
      ++stats_.no_vm_available;
      break;
    }
    const auto [vm, action] = *pick;

    // π_in evaluated on the sender's copy of the (unified) IN table.
    if (tables.in.value(pm_state(recipient), action) < 0.0) {
      ++stats_.rejected_by_pi_in;
      if (ctr_pi_in_rejects_ != nullptr) ctr_pi_in_rejects_->inc();
      break;
    }
    if (!dc_.can_host(recipient, vm)) {
      ++stats_.rejected_by_capacity;
      if (ctr_capacity_rejects_ != nullptr) ctr_capacity_rejects_->inc();
      break;
    }

    dc_.migrate(vm, recipient);
    engine.network().count_message(static_cast<sim::NodeId>(sender),
                                   static_cast<sim::NodeId>(recipient),
                                   kStateMsgBytes);
    ++stats_.migrations;
    ++moved;
  }
  return moved;
}

}  // namespace glap::core
