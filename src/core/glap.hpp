// Public entry point for the GLAP stack: wires the three components of
// Fig. 2 (Cyclon membership, Gossip Learning, Gossip Consolidation) onto a
// simulation engine driving a data center.
#pragma once

#include "cloud/datacenter.hpp"
#include "core/config.hpp"
#include "core/consolidation.hpp"
#include "core/gossip_learning.hpp"
#include "overlay/cyclon.hpp"

namespace glap::core {

struct GlapSlots {
  sim::Engine::ProtocolSlot overlay;
  sim::Engine::ProtocolSlot learning;
  sim::Engine::ProtocolSlot consolidation;
};

/// Installs Cyclon + GossipLearning + GlapConsolidation on `engine` (one
/// instance of each per node). Consolidation activates at
/// config.consolidation_start_round. Pass a RackTopology (outliving the
/// engine) to enable the rack-aware variant (config.rack_affinity).
[[nodiscard]] inline GlapSlots install_glap(
    sim::Engine& engine, cloud::DataCenter& dc, const GlapConfig& config,
    const overlay::CyclonConfig& cyclon_config, std::uint64_t seed,
    const cloud::RackTopology* topology = nullptr) {
  GlapSlots slots{};
  slots.overlay = overlay::CyclonProtocol::install(engine, cyclon_config,
                                                   seed);
  slots.learning = GossipLearningProtocol::install(engine, config, dc,
                                                   slots.overlay, seed);
  slots.consolidation = GlapConsolidationProtocol::install(
      engine, config, dc, slots.overlay, slots.learning, seed, topology);
  return slots;
}

/// As install_glap, but on an already-installed peer-sampling overlay
/// (any NeighborProvider slot — Cyclon, Newscast, or a static graph),
/// enabling overlay ablations.
[[nodiscard]] inline GlapSlots install_glap_on(
    sim::Engine& engine, cloud::DataCenter& dc, const GlapConfig& config,
    sim::Engine::ProtocolSlot overlay_slot, std::uint64_t seed,
    const cloud::RackTopology* topology = nullptr) {
  GlapSlots slots{};
  slots.overlay = overlay_slot;
  slots.learning = GossipLearningProtocol::install(engine, config, dc,
                                                   slots.overlay, seed);
  slots.consolidation = GlapConsolidationProtocol::install(
      engine, config, dc, slots.overlay, slots.learning, seed, topology);
  return slots;
}

}  // namespace glap::core
