#include "core/qtable_pair.hpp"

#include <cmath>

namespace glap::core {

double cosine_similarity(const QTablePair& a, const QTablePair& b) {
  const qlearn::CosineTerms t_out = qlearn::cosine_terms(a.out, b.out);
  const qlearn::CosineTerms t_in = qlearn::cosine_terms(a.in, b.in);
  const double dot = t_out.dot + t_in.dot;
  const double na = t_out.norm_a + t_in.norm_a;
  const double nb = t_out.norm_b + t_in.norm_b;
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace glap::core
