#include "core/qtable_pair.hpp"

#include <cmath>

namespace glap::core {

namespace {
struct DotTerms {
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
};

DotTerms accumulate(const qlearn::QTable& a, const qlearn::QTable& b) {
  DotTerms t;
  for (const auto& [key, qa] : a.entries()) {
    t.norm_a += qa * qa;
    const auto it = b.entries().find(key);
    if (it != b.entries().end()) t.dot += qa * it->second;
  }
  for (const auto& [key, qb] : b.entries()) t.norm_b += qb * qb;
  return t;
}
}  // namespace

double cosine_similarity(const QTablePair& a, const QTablePair& b) {
  const DotTerms t_out = accumulate(a.out, b.out);
  const DotTerms t_in = accumulate(a.in, b.in);
  const double dot = t_out.dot + t_in.dot;
  const double na = t_out.norm_a + t_in.norm_a;
  const double nb = t_out.norm_b + t_in.norm_b;
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace glap::core
