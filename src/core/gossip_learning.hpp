// The Gossip Learning component (paper §IV-B): the two-phase distributed
// protocol that first trains Q-values locally (Algorithm 1) and then
// unifies them through push-pull gossip averaging (Algorithm 2).
//
// Phase scheduling is per-node and cycle-counted: the first
// `learning_rounds` cycles run local training, the next
// `aggregation_rounds` cycles run gossip aggregation, after which the
// component goes idle and the consolidation component (which polls
// phase()) starts using the unified tables. This mirrors the paper's
// "700 more rounds to calculate Q-values beforehand".
#pragma once

#include "cloud/datacenter.hpp"
#include "core/config.hpp"
#include "core/learning.hpp"
#include "core/qtable_pair.hpp"
#include "overlay/neighbor_provider.hpp"

namespace glap::metrics {
class Counter;
}

namespace glap::core {

class GossipLearningProtocol final : public sim::Protocol {
 public:
  enum class Phase { kLearning, kAggregation, kIdle };

  GossipLearningProtocol(const GlapConfig& config, cloud::DataCenter& dc,
                         sim::Engine::ProtocolSlot overlay_slot,
                         Resources pm_capacity, Rng rng);

  /// Installs one instance per node; `overlay_slot` must host a
  /// NeighborProvider.
  static sim::Engine::ProtocolSlot install(
      sim::Engine& engine, const GlapConfig& config, cloud::DataCenter& dc,
      sim::Engine::ProtocolSlot overlay_slot, std::uint64_t seed);

  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

  /// Quiescence vote: done once both phases have run and no deferred
  /// network exchange is in flight. A relearn retrigger resets the
  /// phase; the harness wakes every node then.
  [[nodiscard]] bool can_quiesce(const sim::Engine& /*engine*/,
                                 sim::NodeId /*self*/) const override {
    return phase() == Phase::kIdle && !pending_.active;
  }

  [[nodiscard]] Phase phase() const noexcept;

  /// Phase the component will report after this round's execute() has
  /// bumped the cycle counter. Consolidation's select_peers gates on this:
  /// it runs before the learning slot executes, but the execute-time gate
  /// observes the post-increment phase.
  [[nodiscard]] Phase phase_after_cycle() const noexcept;
  [[nodiscard]] const QTablePair& tables() const noexcept { return tables_; }
  [[nodiscard]] QTablePair& tables_mutable() noexcept { return tables_; }

  /// Re-enters the learning phase (paper §IV-B: learning "runs as
  /// required by a predefined policy, e.g. if the arrival and departure
  /// rates of VMs exceed a threshold ... or based on a fixed time
  /// interval"; the trigger comes from an oracle — here the harness).
  /// Existing Q-values are refined, not discarded: formula (1)'s α blends
  /// the new environment into the old knowledge.
  void retrigger(sim::Round learning_rounds, sim::Round aggregation_rounds);

  /// Profiles this PM would share with a learning neighbor.
  [[nodiscard]] std::vector<VmProfile> shared_profiles(
      sim::NodeId self) const {
    return profiles_of(dc_, static_cast<cloud::PmId>(self));
  }

  /// Allocation-free variant: clears and fills `*out` (hot path).
  void shared_profiles(sim::NodeId self, std::vector<VmProfile>* out) const {
    profiles_of(dc_, static_cast<cloud::PmId>(self), out);
  }

 private:
  void learning_cycle(sim::Engine& engine, sim::NodeId self);
  void aggregation_cycle(sim::Engine& engine, sim::NodeId self);
  void complete_pending(sim::Engine& engine, sim::NodeId self);

  /// A table push-pull the network model delayed (DESIGN.md §13.4): the
  /// merge runs at `due` with delivery-time state. One in flight per
  /// node — the initiator blocks on the outstanding reply.
  struct PendingExchange {
    bool active = false;
    sim::NodeId partner = 0;
    sim::Round due = 0;
    std::uint64_t msg_id = 0;
    sim::Round delay = 0;
  };

  GlapConfig config_;
  cloud::DataCenter& dc_;
  sim::Engine::ProtocolSlot overlay_slot_;
  sim::Engine::ProtocolSlot self_slot_ = 0;
  bool self_slot_known_ = false;
  bool telemetry_resolved_ = false;
  metrics::Counter* ctr_train_ = nullptr;  ///< learning.train_cycles
  metrics::Counter* ctr_merge_ = nullptr;  ///< learning.merges
  LocalTrainer trainer_;
  QTablePair tables_;
  // Round-loop scratch: learning_cycle used to allocate the profile pool
  // and the remote snapshot every round; capacity persists across rounds.
  std::vector<VmProfile> scratch_pool_;
  std::vector<VmProfile> scratch_remote_;
  sim::Round cycles_ = 0;
  sim::Round learning_rounds_;
  sim::Round aggregation_rounds_;
  PendingExchange pending_;

  friend struct GossipLearningInstaller;
};

}  // namespace glap::core
