// GLAP configuration knobs, with defaults matching the paper's evaluation.
#pragma once

#include <cstddef>

#include "qlearn/qtable.hpp"
#include "sim/node.hpp"

namespace glap::core {

/// Per-level reward parameters (paper §IV-A, "Reward (R)").
///
/// Reward OUT: every level earns a positive reward, strictly decreasing
/// with utilization (r_L > r_M > … > r_O > 0) — transitions toward
/// emptiness pay more, pushing senders to drain quickly.
///
/// Reward IN: positive and increasing toward (but not including) Overload
/// — recipients should be "avaricious" — with a strongly negative reward
/// for landing in Overload (r_O ≪ 0).
struct RewardParams {
  double out_base = 9.0;    ///< reward of Low for OUT; decreases by out_step
  double out_step = 1.0;    ///< per-level decrement (keeps r_O > 0)
  double in_base = 1.0;     ///< reward of Low for IN; increases by in_step
  double in_step = 1.0;     ///< per-level increment up to 5xHigh
  double in_overload = -300.0;  ///< r_O for IN (≪ 0)
};

/// Quiescence: a config-level semantic, not an engine-mode toggle. When
/// enabled, a PM whose protocols unanimously report convergence is parked
/// and skipped until a wake event (incoming gossip write, demand drift
/// past `demand_epsilon`, migration arrival/departure, power transition,
/// relearn trigger) re-activates it. The serial and event engines apply
/// the policy identically, so at a fixed config every engine mode still
/// produces field-identical results; *enabling* it changes the simulated
/// trajectory — that skipped work is exactly the scalability payoff.
///
/// Lives in core (not harness) because the convergence vote is GLAP's:
/// the consolidation component parks on Q-table similarity, the learning
/// component on reaching its idle phase. Baseline protocols never vote to
/// park; overlays always do.
struct QuiescenceConfig {
  bool enabled = false;
  /// Partner-table cosine similarity at or above which the consolidation
  /// component counts its Q-tables as converged.
  double similarity_threshold = 0.999;
  /// Consecutive migration-free consolidation exchanges before the
  /// component votes to park (0 = never vote).
  sim::Round idle_rounds = 8;
  /// |Δ demand fraction| (either resource, vs the last-notified
  /// reference) beyond which a hosted VM's drift re-activates its PM.
  double demand_epsilon = 0.05;
  /// Optional heartbeat: re-wake every parked PM after this many rounds
  /// (0 = no heartbeat; migrations/demand/gossip still wake).
  sim::Round recheck_rounds = 0;
};

struct GlapConfig {
  qlearn::QLearningParams q{.alpha = 0.5, .gamma = 0.8};
  RewardParams rewards;

  /// Engine-level quiescence policy (see QuiescenceConfig). The harness
  /// reads enabled/demand_epsilon/recheck_rounds; the consolidation
  /// component reads similarity_threshold/idle_rounds for its vote.
  QuiescenceConfig quiescence;

  /// Learning phase: only PMs with average utilization at or below this
  /// run local training (the evaluation uses PMs with ≥50% free CPU).
  double learning_util_threshold = 0.5;
  /// k — simulated sender/target consolidation steps per learning round.
  std::size_t train_iterations_per_round = 24;
  /// Duplicate the collected profile pool until its aggregate average CPU
  /// could fill this many PMs (covers highly loaded states, §IV-B).
  double duplicate_pool_pm_multiple = 2.5;

  /// Two-phase pre-run. The paper reserves 700 extra rounds before the
  /// evaluation window; learning saturates far sooner and gossip
  /// averaging converges in O(log N) rounds, so the defaults train for
  /// 150 rounds and aggregate for 60, then idle out the warmup.
  sim::Round learning_rounds = 150;
  sim::Round aggregation_rounds = 60;
  /// Consolidation stays inactive until this many rounds have elapsed
  /// (aligned with the experiment's warmup so GLAP and the baselines
  /// start consolidating at the same instant). Must be at least
  /// learning_rounds + aggregation_rounds.
  sim::Round consolidation_start_round = 700;

  /// Ablation: when false, states/actions use current demands only (the
  /// naive scheme §IV-B argues against) instead of the average/current
  /// split.
  bool use_average_state = true;

  /// Topology awareness (paper future work): when a RackTopology is
  /// installed, the consolidation component samples a same-rack gossip
  /// partner with this probability (falling back to the overlay) and
  /// drains the PM of the emptier *rack* first, so whole racks — and
  /// their switches — power down. 0 keeps vanilla GLAP behaviour.
  double rack_affinity = 0.0;

  /// When the learning component is re-triggered mid-run (VM churn
  /// exceeded the oracle's threshold), consolidation either keeps using
  /// the previous Q-values (true — the paper's "continue using the
  /// previous Q-values") or pauses until the new ones are unified
  /// (false — the paper's "pause for a while and resume").
  bool continue_during_relearn = true;
};

}  // namespace glap::core
