// Node identity and lifecycle states for the cycle-driven simulator.
#pragma once

#include <cstdint>

namespace glap::sim {

using NodeId = std::uint32_t;
using Round = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Lifecycle of a simulated machine.
///  - Active:   participates in gossip, initiates rounds.
///  - Sleeping: powered down by consolidation; does not initiate or answer
///              gossip, but can be woken (e.g. by a centralized manager).
///  - Failed:   crashed; never comes back (used by failure-injection tests).
enum class NodeStatus : std::uint8_t { kActive, kSleeping, kFailed };

[[nodiscard]] constexpr const char* to_string(NodeStatus s) noexcept {
  switch (s) {
    case NodeStatus::kActive:
      return "active";
    case NodeStatus::kSleeping:
      return "sleeping";
    case NodeStatus::kFailed:
      return "failed";
  }
  return "?";
}

/// Cause attached to a quiescence/activity transition (DESIGN.md §12).
/// kConverged tags the parking transition itself; the rest tag the event
/// that re-activated a quiescent node. Rendered into "activity" trace
/// events, so the names are part of the trace schema.
enum class WakeReason : std::uint8_t {
  kConverged,  ///< every protocol slot voted can_quiesce — node parked
  kGossip,     ///< an incoming gossip exchange touched the node's state
  kDemand,     ///< a hosted VM's demand moved past the wake epsilon
  kMigration,  ///< a migration / placement / departure landed on the PM
  kStatus,     ///< lifecycle transition (sleep/wake/fail)
  kSchedule,   ///< round-indexed re-check fired (Engine::schedule_wake)
  kRelearn,    ///< fleet-wide re-learning trigger
  kNetwork,    ///< a delayed network delivery came due (DESIGN.md §13)
};

[[nodiscard]] constexpr const char* to_string(WakeReason r) noexcept {
  switch (r) {
    case WakeReason::kConverged:
      return "converged";
    case WakeReason::kGossip:
      return "gossip";
    case WakeReason::kDemand:
      return "demand";
    case WakeReason::kMigration:
      return "migration";
    case WakeReason::kStatus:
      return "status";
    case WakeReason::kSchedule:
      return "schedule";
    case WakeReason::kRelearn:
      return "relearn";
    case WakeReason::kNetwork:
      return "network";
  }
  return "?";
}

}  // namespace glap::sim
