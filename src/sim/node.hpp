// Node identity and lifecycle states for the cycle-driven simulator.
#pragma once

#include <cstdint>

namespace glap::sim {

using NodeId = std::uint32_t;
using Round = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Lifecycle of a simulated machine.
///  - Active:   participates in gossip, initiates rounds.
///  - Sleeping: powered down by consolidation; does not initiate or answer
///              gossip, but can be woken (e.g. by a centralized manager).
///  - Failed:   crashed; never comes back (used by failure-injection tests).
enum class NodeStatus : std::uint8_t { kActive, kSleeping, kFailed };

[[nodiscard]] constexpr const char* to_string(NodeStatus s) noexcept {
  switch (s) {
    case NodeStatus::kActive:
      return "active";
    case NodeStatus::kSleeping:
      return "sleeping";
    case NodeStatus::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace glap::sim
