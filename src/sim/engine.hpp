// Cycle-driven P2P simulation engine (PeerSim CDSim equivalent).
//
// Usage:
//   Engine engine(n_nodes, seed);
//   auto slot = engine.add_protocol_slot(make_protocols(...));
//   engine.add_observer(&metrics);
//   engine.run(720);
//
// Per round the engine orders nodes by a counter-based hash of
// (seed, round, node) — a deterministic per-round permutation, so no node
// systematically initiates first — invokes every installed protocol slot on
// every active node, then runs observers. Node status transitions (sleep
// for switched-off PMs, wake, fail) are applied immediately and broadcast
// to the node's protocol instances so overlays can drop dead links.
//
// Execution modes:
//   * Serial (default, the reference semantics): nodes run one after the
//     other in rank order.
//   * Parallel (enable_parallel_execution): the round runs as deterministic
//     waves. Each wave, the lowest-ranked pending nodes declare their peer
//     footprint (Protocol::select_peers), reserve themselves plus declared
//     peers via a fetch-max CAS on per-node owner words (lowest rank wins),
//     and the maximal *prefix* of the batch whose reservations fully
//     succeeded executes concurrently on an internal ThreadPool; everyone
//     else rolls into the next wave. Because retired nodes always form a
//     rank prefix and a winner owns every node it may touch, every
//     interaction observes exactly the state it would have seen in the
//     serial rank-order run — results are bit-identical to serial mode at
//     any thread count (threads=1 included). A global-footprint node (e.g.
//     a centralized baseline) executes alone, inline on the driver.
//   * Event-driven (enable_event_scheduler): instead of scanning every
//     node each round, the engine keeps a runnable set (active nodes that
//     are not quiescent), sorts only that subset by the shared hash-rank
//     keys, and executes it in rank order. Mid-round activations insert
//     into the remaining schedule at their rank position (or carry to the
//     next round when their rank has already passed), so the executed
//     sequence is exactly the serial engine's executed sequence at the
//     same configuration — field-identical results, including profiler
//     call counts (tests/integration/test_determinism.cpp).
//
// Quiescence (enable_quiescence, DESIGN.md §12) is a *configuration-level*
// semantic, orthogonal to the execution mode: after a node executes, every
// installed slot is polled via Protocol::can_quiesce, and a unanimous vote
// parks the node — it is skipped until wake()/schedule_wake()/set_status
// re-activates it. Both the serial and event engines apply the same rule,
// so any (mode A, mode B) pair at a fixed config stays field-identical;
// the event engine merely skips parked nodes without visiting them.
// Protocol storage is struct-of-arrays: each slot owns one contiguous
// arena of concrete protocol objects (add_protocol_pool) plus a flat
// per-node pointer array scanned on the hot path.
//
// Typed peer access is RTTI-free on the per-round path: each slot carries
// cached typed-pointer views, registered eagerly when the slot is added
// through the typed add_protocol_slot overload (and widened to interface
// types via add_protocol_view). protocol_at serves from those caches with
// a tag compare; dynamic_cast only runs on the cold first-access fallback
// for slots installed through the type-erased overload, plus a debug-only
// consistency check. View storage is a fixed-capacity array with an atomic
// count per slot, so concurrent lookups from pool workers are lock-free
// while the cold resolve path stays mutex-guarded.
#pragma once

#include <array>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/network_stats.hpp"
#include "sim/node.hpp"
#include "sim/protocol.hpp"

namespace glap::metrics {
class MetricsRegistry;
}
namespace glap::prof {
class PhaseProfiler;
}
namespace glap::trace {
class TraceLog;
}
namespace glap::net {
class NetworkModel;
}

namespace glap::sim {

namespace detail {
/// One byte of static storage per distinct protocol type; its address is
/// the type's identity (no RTTI, vague linkage merges it across TUs).
template <typename T>
inline constexpr char kProtocolTypeTag = 0;
}  // namespace detail

class Engine {
 public:
  using ProtocolSlot = std::size_t;

  Engine(std::size_t node_count, std::uint64_t seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs one protocol layer: `instances` must hold exactly one
  /// instance per node (index == NodeId). Returns the slot handle used to
  /// reach peer instances. This type-erased overload registers no typed
  /// view; the first protocol_at<T> on the slot resolves one lazily.
  ProtocolSlot add_protocol_slot(
      std::vector<std::unique_ptr<Protocol>> instances);

  /// Typed overload: additionally caches the concrete per-node pointers so
  /// protocol_at<T> never needs RTTI. Prefer this in protocol installers.
  template <typename T>
    requires(std::derived_from<T, Protocol> && !std::same_as<T, Protocol>)
  ProtocolSlot add_protocol_slot(std::vector<std::unique_ptr<T>> instances) {
    std::vector<std::unique_ptr<Protocol>> base;
    base.reserve(instances.size());
    std::vector<void*> ptrs;
    ptrs.reserve(instances.size());
    for (auto& p : instances) {
      ptrs.push_back(p.get());
      base.push_back(std::move(p));
    }
    const ProtocolSlot slot = add_protocol_slot(std::move(base));
    append_view(slot, type_tag<T>(), std::move(ptrs));
    return slot;
  }

  /// Struct-of-arrays slot: one contiguous arena of T, one object per
  /// node, constructed in node-id order by `make(node)`. The per-round
  /// scan walks objects that are adjacent in memory (no per-instance heap
  /// allocation, no pointer chasing between neighbours), which is what
  /// makes 100k-node rounds bandwidth-bound rather than allocator-bound.
  /// The typed view is registered eagerly, like the typed overload above.
  /// T must be move-constructible (the arena is reserved up front, so the
  /// move only runs while filling the pool, never afterwards; element
  /// addresses are stable for the engine's lifetime).
  template <typename T, typename Factory>
    requires(std::derived_from<T, Protocol> && !std::same_as<T, Protocol> &&
             std::constructible_from<T, std::invoke_result_t<Factory&, NodeId>>)
  ProtocolSlot add_protocol_pool(Factory&& make) {
    auto arena = std::make_shared<std::vector<T>>();
    arena->reserve(node_count());
    for (std::size_t node = 0; node < node_count(); ++node)
      arena->emplace_back(make(static_cast<NodeId>(node)));
    Slot slot;
    slot.instances.reserve(arena->size());
    std::vector<void*> ptrs;
    ptrs.reserve(arena->size());
    for (T& p : *arena) {
      slot.instances.push_back(&p);
      ptrs.push_back(&p);
    }
    slot.storage = std::move(arena);
    const ProtocolSlot index = push_slot(std::move(slot));
    append_view(index, type_tag<T>(), std::move(ptrs));
    return index;
  }


  /// Widens an already-registered `Concrete` view to a base/interface
  /// type, so protocol_at<As> is served from cache too (e.g. a Cyclon
  /// slot viewed as overlay::NeighborProvider). Pure pointer adjustment —
  /// no RTTI. No-op when the `As` view already exists.
  template <typename Concrete, typename As>
    requires std::derived_from<Concrete, As>
  void add_protocol_view(ProtocolSlot slot) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    const TypedView* source = find_view(slot, type_tag<Concrete>());
    GLAP_REQUIRE(source != nullptr,
                 "add_protocol_view needs the concrete view registered");
    if (find_view(slot, type_tag<As>()) != nullptr) return;
    std::vector<void*> ptrs;
    ptrs.reserve(source->ptrs.size());
    for (void* p : source->ptrs)
      ptrs.push_back(static_cast<As*>(static_cast<Concrete*>(p)));
    append_view(slot, type_tag<As>(), std::move(ptrs));
  }

  /// Registers an observer (not owned). Observers run in add order.
  void add_observer(Observer* observer);

  /// Switches step() to deterministic wave-parallel execution on an
  /// internal thread pool of `threads` workers (>= 1). Results are
  /// bit-identical to the serial engine at any thread count; threads is
  /// clamped to the shard budget (exec::kShardCount - 1). With threads=1
  /// the wave machinery runs inline on the caller with no pool.
  void enable_parallel_execution(std::size_t threads);

  [[nodiscard]] bool parallel() const noexcept { return parallel_; }

  /// Switches step() to event-driven execution: only the runnable set
  /// (active, non-quiescent nodes) is keyed, sorted and executed each
  /// round; mid-round activations insert at their rank position. Executed
  /// sequences — and therefore all results — are identical to the serial
  /// engine at the same configuration. Mutually exclusive with
  /// enable_parallel_execution.
  void enable_event_scheduler();

  [[nodiscard]] bool event_mode() const noexcept { return event_mode_; }

  /// Enables the quiescence semantic: after a node executes, its slots are
  /// polled via Protocol::can_quiesce and a unanimous vote parks it until
  /// an event re-activates it. `recheck_rounds` > 0 additionally schedules
  /// a wake `recheck_rounds` rounds after each parking, so no node stays
  /// parked unobserved forever (0 disables the heartbeat). Applies
  /// identically under serial and event execution; mutually exclusive with
  /// the wave-parallel engine.
  void enable_quiescence(Round recheck_rounds = 0);

  [[nodiscard]] bool quiescence_enabled() const noexcept {
    return quiescence_;
  }

  /// True while `node` is parked by a unanimous can_quiesce vote.
  [[nodiscard]] bool is_quiescent(NodeId node) const {
    GLAP_REQUIRE(node < status_.size(), "node id out of range");
    return !quiescent_.empty() && quiescent_[node] != 0;
  }

  /// Number of nodes currently parked by can_quiesce votes. Nodes skipped
  /// for being asleep/failed are not counted — this is the convergence
  /// signal, not the scheduling set.
  [[nodiscard]] std::size_t quiescent_count() const noexcept {
    return quiescent_count_;
  }

  /// Re-activates a parked node immediately. While a round is in flight
  /// under the event scheduler, the node is inserted into the remaining
  /// schedule iff its rank has not passed yet — exactly when the serial
  /// engine would still visit it this round. No-op on nodes that are not
  /// parked, so callers may signal unconditionally.
  void wake(NodeId node, WakeReason reason);

  /// Enqueues a wake for the start of `round` (or the next round start if
  /// `round` has passed). Drained before the round order is computed, in
  /// (round, node) order, so the resulting schedule is deterministic.
  void schedule_wake(NodeId node, Round round, WakeReason reason);

  /// wake() for every parked node (e.g. a fleet-wide re-learning trigger).
  void wake_all(WakeReason reason);

  /// Runs `rounds` rounds (continuing from the current round counter);
  /// stops early if an observer requests it. Returns rounds executed.
  Round run(Round rounds);

  /// Executes a single round.
  void step();

  [[nodiscard]] std::size_t node_count() const noexcept {
    return status_.size();
  }
  [[nodiscard]] Round current_round() const noexcept { return round_; }

  [[nodiscard]] NodeStatus status(NodeId node) const {
    GLAP_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node];
  }
  [[nodiscard]] bool is_active(NodeId node) const {
    GLAP_HOT_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node] == NodeStatus::kActive;
  }
  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_count_.load(std::memory_order_relaxed);
  }

  /// Changes a node's status and notifies all of its protocol instances.
  /// In parallel mode callable from an executing interaction only for
  /// nodes it has reserved (the initiator or a declared peer).
  void set_status(NodeId node, NodeStatus status);

  /// Typed access to a protocol instance; T must match the installed type
  /// (or a registered view of it). Throws precondition_error on mismatch.
  template <typename T>
  [[nodiscard]] T& protocol_at(ProtocolSlot slot, NodeId node) {
    GLAP_HOT_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_HOT_REQUIRE(node < slots_[slot].instances.size(),
                     "node id out of range");
    const SlotViews& views = views_[slot];
    const std::size_t count = views.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      const TypedView& view = views.entries[i];
      if (view.tag != type_tag<T>()) continue;
      T* typed = static_cast<T*>(view.ptrs[node]);
      GLAP_DEBUG_ASSERT(
          dynamic_cast<T*>(slots_[slot].instances[node]) == typed,
          "cached protocol view out of sync");
      return *typed;
    }
    return resolve_protocol_view<T>(slot, node);
  }

  [[nodiscard]] NetworkStats& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& network() const noexcept {
    return network_;
  }

  /// Engine-level RNG for protocols needing shared randomness. Protocols
  /// typically hold their own split streams; the round order does not
  /// consume this stream (it is counter-hashed from the seed).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Attaches the observability sinks (neither owned; either may be null).
  /// Install BEFORE protocols so instrumented code can resolve and cache
  /// its instruments on the driver thread. Protocols read these through
  /// metrics()/trace_log() and must guard every use with a null check —
  /// a null pointer is the disabled state and costs one predictable branch.
  void set_telemetry(metrics::MetricsRegistry* metrics,
                     trace::TraceLog* trace) noexcept {
    metrics_ = metrics;
    trace_ = trace;
  }

  [[nodiscard]] metrics::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] trace::TraceLog* trace_log() const noexcept { return trace_; }

  /// Attaches the message-level network model (not owned; null = the
  /// ideal instantaneous network, which is the default). Protocols read
  /// it through net_model() and must treat null as "always delivered".
  /// The harness only installs it under the serial or event engine — the
  /// wave-parallel executed order is not the serial order, which the
  /// model's msg-id-indexed loss decisions rely on (DESIGN.md §13.3).
  void set_net_model(net::NetworkModel* net) noexcept { net_model_ = net; }
  [[nodiscard]] net::NetworkModel* net_model() const noexcept {
    return net_model_;
  }

  /// Attaches the per-phase profiler (not owned; null = disabled, which
  /// costs two predictable branches per instrumented scope). Per-slot
  /// execute bodies and the wave select phase are timed; phases beyond
  /// prof::PhaseProfiler::kMaxPhases are silently uncounted.
  void set_profiler(prof::PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  [[nodiscard]] prof::PhaseProfiler* profiler() const noexcept {
    return profiler_;
  }

 private:
  using TypeTag = const void*;

  /// One protocol layer, struct-of-arrays: `instances` is the flat hot
  /// array scanned per round (index == NodeId); `storage` owns the backing
  /// memory — a contiguous `std::vector<T>` arena for pool slots, or the
  /// legacy per-instance unique_ptr vector for slots installed through
  /// add_protocol_slot.
  struct Slot {
    std::vector<Protocol*> instances;
    std::shared_ptr<void> storage;
  };

  struct TypedView {
    TypeTag tag = nullptr;
    std::vector<void*> ptrs;  ///< per-node pointers, already cast to T*
  };

  /// Lock-free-readable view set for one slot. Fixed capacity + atomic
  /// count: readers scan entries[0..count), the cold resolve path appends
  /// under views_mutex_ with a release store. Lives in a deque so element
  /// addresses are stable as slots are added.
  struct SlotViews {
    static constexpr std::size_t kMaxViews = 8;
    std::array<TypedView, kMaxViews> entries;
    std::atomic<std::size_t> count{0};
  };

  template <typename T>
  [[nodiscard]] static TypeTag type_tag() noexcept {
    return &detail::kProtocolTypeTag<T>;
  }

  void append_view(ProtocolSlot slot, TypeTag tag, std::vector<void*> ptrs);

  [[nodiscard]] const TypedView* find_view(ProtocolSlot slot,
                                           TypeTag tag) const;

  /// Cold path: first protocol_at<T> on a slot with no cached T view
  /// (slots installed through the type-erased overload). Resolves every
  /// instance with one dynamic_cast, caches the view, and throws
  /// precondition_error when the slot does not actually hold T.
  template <typename T>
  T& resolve_protocol_view(ProtocolSlot slot, NodeId node) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_REQUIRE(node < slots_[slot].instances.size(),
                 "node id out of range");
    std::lock_guard lock(views_mutex_);
    // Another thread may have resolved the view while we waited.
    if (const TypedView* view = find_view(slot, type_tag<T>()))
      return *static_cast<T*>(view->ptrs[node]);
    std::vector<void*> ptrs;
    ptrs.reserve(slots_[slot].instances.size());
    for (Protocol* p : slots_[slot].instances) {
      T* typed = dynamic_cast<T*>(p);
      GLAP_REQUIRE(typed != nullptr, "protocol type mismatch for slot");
      ptrs.push_back(typed);
    }
    T* result = static_cast<T*>(ptrs[node]);
    append_view_locked(slot, type_tag<T>(), std::move(ptrs));
    return *result;
  }

  void append_view_locked(ProtocolSlot slot, TypeTag tag,
                          std::vector<void*> ptrs);

  /// Registers a finished Slot and its (empty) view set; returns its index.
  ProtocolSlot push_slot(Slot slot);

  /// Recomputes order_ for the current round (hash-rank permutation).
  void compute_round_order();

  void run_round_serial();
  void run_round_waves();
  void run_round_event();

  /// Quiescence vote after `node` executed: parks it when every slot
  /// agrees. Returns true when the node was parked.
  bool poll_quiesce(NodeId node);

  /// Drains schedule_wake entries due at the current round (round start,
  /// driver context — events sort ahead of all execution this round).
  void drain_wake_queue();

  /// Event-mode mid-round activation: inserts `node` into the remaining
  /// schedule at its rank position unless its rank already passed.
  void insert_runnable(NodeId node);

  /// Clears a node's parked bit (if set) and emits the activity event.
  /// Returns true when the node was parked.
  bool clear_quiescent(NodeId node, WakeReason reason);

  void trace_activity(NodeId node, bool awake, WakeReason reason);

  /// Runs one node's full slot stack (shared by serial and parallel paths;
  /// re-checks status between slots because an earlier protocol may have
  /// put the node to sleep). `rank` seeds the deferred-effect order key.
  void execute_node(NodeId node, std::size_t rank, const PeerSet& peers);

  /// parallel_for over the pool when one exists, inline loop otherwise.
  void run_parallel(std::size_t n, const std::function<void(std::size_t)>& fn);

  void claim(std::uint64_t claim_word, NodeId target) noexcept;
  [[nodiscard]] bool owns(std::uint64_t claim_word,
                          NodeId target) const noexcept;

  std::vector<NodeStatus> status_;
  std::atomic<std::size_t> active_count_;
  std::vector<Slot> slots_;
  std::deque<SlotViews> views_;  ///< parallel to slots_
  std::mutex views_mutex_;
  std::vector<Observer*> observers_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> order_keys_;  ///< per-node sort key, scratch
  NetworkStats network_;
  metrics::MetricsRegistry* metrics_ = nullptr;
  trace::TraceLog* trace_ = nullptr;
  prof::PhaseProfiler* profiler_ = nullptr;
  net::NetworkModel* net_model_ = nullptr;
  Rng rng_;
  std::uint64_t order_seed_;
  Round round_ = 0;
  bool stop_requested_ = false;

  // --- quiescence + event-scheduler state ---
  bool event_mode_ = false;
  bool quiescence_ = false;
  Round recheck_rounds_ = 0;
  std::vector<std::uint8_t> quiescent_;  ///< parked by can_quiesce vote
  std::size_t quiescent_count_ = 0;
  std::uint64_t round_seed_cur_ = 0;  ///< this round's hash-rank seed
  bool in_round_ = false;             ///< event round in flight
  std::vector<NodeId> run_list_;      ///< event-mode schedule, rank order
  std::size_t run_cursor_ = 0;        ///< index currently executing
  std::vector<Round> in_list_round_;  ///< run_list_ membership stamp
  /// Pending schedule_wake entries, a min-heap on (round, node, reason).
  std::vector<std::pair<Round, std::pair<NodeId, WakeReason>>> wake_queue_;

  // --- parallel mode state ---
  bool parallel_ = false;
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<PeerSet> peer_sets_;   ///< per-node selection scratch
  std::vector<std::uint32_t> rank_;  ///< per-node rank this round
  /// Per-node reservation word: (wave_stamp << 32) | (UINT32_MAX - rank),
  /// claimed via fetch-max CAS so the lowest rank wins and stale claims
  /// from earlier waves never outrank current ones. Cleared each round.
  std::vector<std::atomic<std::uint64_t>> owner_;
  std::vector<NodeId> pending_;  ///< wave scheduling scratch
};

}  // namespace glap::sim
