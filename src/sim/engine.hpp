// Cycle-driven P2P simulation engine (PeerSim CDSim equivalent).
//
// Usage:
//   Engine engine(n_nodes, seed);
//   auto slot = engine.add_protocol_slot(make_protocols(...));
//   engine.add_observer(&metrics);
//   engine.run(720);
//
// Per round the engine orders nodes by a counter-based hash of
// (seed, round, node) — a deterministic per-round permutation, so no node
// systematically initiates first — invokes every installed protocol slot on
// every active node, then runs observers. Node status transitions (sleep
// for switched-off PMs, wake, fail) are applied immediately and broadcast
// to the node's protocol instances so overlays can drop dead links.
//
// Execution modes:
//   * Serial (default, the reference semantics): nodes run one after the
//     other in rank order.
//   * Parallel (enable_parallel_execution): the round runs as deterministic
//     waves. Each wave, the lowest-ranked pending nodes declare their peer
//     footprint (Protocol::select_peers), reserve themselves plus declared
//     peers via a fetch-max CAS on per-node owner words (lowest rank wins),
//     and the maximal *prefix* of the batch whose reservations fully
//     succeeded executes concurrently on an internal ThreadPool; everyone
//     else rolls into the next wave. Because retired nodes always form a
//     rank prefix and a winner owns every node it may touch, every
//     interaction observes exactly the state it would have seen in the
//     serial rank-order run — results are bit-identical to serial mode at
//     any thread count (threads=1 included). A global-footprint node (e.g.
//     a centralized baseline) executes alone, inline on the driver.
//
// Typed peer access is RTTI-free on the per-round path: each slot carries
// cached typed-pointer views, registered eagerly when the slot is added
// through the typed add_protocol_slot overload (and widened to interface
// types via add_protocol_view). protocol_at serves from those caches with
// a tag compare; dynamic_cast only runs on the cold first-access fallback
// for slots installed through the type-erased overload, plus a debug-only
// consistency check. View storage is a fixed-capacity array with an atomic
// count per slot, so concurrent lookups from pool workers are lock-free
// while the cold resolve path stays mutex-guarded.
#pragma once

#include <array>
#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/network_stats.hpp"
#include "sim/node.hpp"
#include "sim/protocol.hpp"

namespace glap::metrics {
class MetricsRegistry;
}
namespace glap::prof {
class PhaseProfiler;
}
namespace glap::trace {
class TraceLog;
}

namespace glap::sim {

namespace detail {
/// One byte of static storage per distinct protocol type; its address is
/// the type's identity (no RTTI, vague linkage merges it across TUs).
template <typename T>
inline constexpr char kProtocolTypeTag = 0;
}  // namespace detail

class Engine {
 public:
  using ProtocolSlot = std::size_t;

  Engine(std::size_t node_count, std::uint64_t seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs one protocol layer: `instances` must hold exactly one
  /// instance per node (index == NodeId). Returns the slot handle used to
  /// reach peer instances. This type-erased overload registers no typed
  /// view; the first protocol_at<T> on the slot resolves one lazily.
  ProtocolSlot add_protocol_slot(
      std::vector<std::unique_ptr<Protocol>> instances);

  /// Typed overload: additionally caches the concrete per-node pointers so
  /// protocol_at<T> never needs RTTI. Prefer this in protocol installers.
  template <typename T>
    requires(std::derived_from<T, Protocol> && !std::same_as<T, Protocol>)
  ProtocolSlot add_protocol_slot(std::vector<std::unique_ptr<T>> instances) {
    std::vector<std::unique_ptr<Protocol>> base;
    base.reserve(instances.size());
    std::vector<void*> ptrs;
    ptrs.reserve(instances.size());
    for (auto& p : instances) {
      ptrs.push_back(p.get());
      base.push_back(std::move(p));
    }
    const ProtocolSlot slot = add_protocol_slot(std::move(base));
    append_view(slot, type_tag<T>(), std::move(ptrs));
    return slot;
  }

  /// Widens an already-registered `Concrete` view to a base/interface
  /// type, so protocol_at<As> is served from cache too (e.g. a Cyclon
  /// slot viewed as overlay::NeighborProvider). Pure pointer adjustment —
  /// no RTTI. No-op when the `As` view already exists.
  template <typename Concrete, typename As>
    requires std::derived_from<Concrete, As>
  void add_protocol_view(ProtocolSlot slot) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    const TypedView* source = find_view(slot, type_tag<Concrete>());
    GLAP_REQUIRE(source != nullptr,
                 "add_protocol_view needs the concrete view registered");
    if (find_view(slot, type_tag<As>()) != nullptr) return;
    std::vector<void*> ptrs;
    ptrs.reserve(source->ptrs.size());
    for (void* p : source->ptrs)
      ptrs.push_back(static_cast<As*>(static_cast<Concrete*>(p)));
    append_view(slot, type_tag<As>(), std::move(ptrs));
  }

  /// Registers an observer (not owned). Observers run in add order.
  void add_observer(Observer* observer);

  /// Switches step() to deterministic wave-parallel execution on an
  /// internal thread pool of `threads` workers (>= 1). Results are
  /// bit-identical to the serial engine at any thread count; threads is
  /// clamped to the shard budget (exec::kShardCount - 1). With threads=1
  /// the wave machinery runs inline on the caller with no pool.
  void enable_parallel_execution(std::size_t threads);

  [[nodiscard]] bool parallel() const noexcept { return parallel_; }

  /// Runs `rounds` rounds (continuing from the current round counter);
  /// stops early if an observer requests it. Returns rounds executed.
  Round run(Round rounds);

  /// Executes a single round.
  void step();

  [[nodiscard]] std::size_t node_count() const noexcept {
    return status_.size();
  }
  [[nodiscard]] Round current_round() const noexcept { return round_; }

  [[nodiscard]] NodeStatus status(NodeId node) const {
    GLAP_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node];
  }
  [[nodiscard]] bool is_active(NodeId node) const {
    GLAP_HOT_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node] == NodeStatus::kActive;
  }
  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_count_.load(std::memory_order_relaxed);
  }

  /// Changes a node's status and notifies all of its protocol instances.
  /// In parallel mode callable from an executing interaction only for
  /// nodes it has reserved (the initiator or a declared peer).
  void set_status(NodeId node, NodeStatus status);

  /// Typed access to a protocol instance; T must match the installed type
  /// (or a registered view of it). Throws precondition_error on mismatch.
  template <typename T>
  [[nodiscard]] T& protocol_at(ProtocolSlot slot, NodeId node) {
    GLAP_HOT_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_HOT_REQUIRE(node < slots_[slot].size(), "node id out of range");
    const SlotViews& views = views_[slot];
    const std::size_t count = views.count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      const TypedView& view = views.entries[i];
      if (view.tag != type_tag<T>()) continue;
      T* typed = static_cast<T*>(view.ptrs[node]);
      GLAP_DEBUG_ASSERT(dynamic_cast<T*>(slots_[slot][node].get()) == typed,
                        "cached protocol view out of sync");
      return *typed;
    }
    return resolve_protocol_view<T>(slot, node);
  }

  [[nodiscard]] NetworkStats& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& network() const noexcept {
    return network_;
  }

  /// Engine-level RNG for protocols needing shared randomness. Protocols
  /// typically hold their own split streams; the round order does not
  /// consume this stream (it is counter-hashed from the seed).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Attaches the observability sinks (neither owned; either may be null).
  /// Install BEFORE protocols so instrumented code can resolve and cache
  /// its instruments on the driver thread. Protocols read these through
  /// metrics()/trace_log() and must guard every use with a null check —
  /// a null pointer is the disabled state and costs one predictable branch.
  void set_telemetry(metrics::MetricsRegistry* metrics,
                     trace::TraceLog* trace) noexcept {
    metrics_ = metrics;
    trace_ = trace;
  }

  [[nodiscard]] metrics::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] trace::TraceLog* trace_log() const noexcept { return trace_; }

  /// Attaches the per-phase profiler (not owned; null = disabled, which
  /// costs two predictable branches per instrumented scope). Per-slot
  /// execute bodies and the wave select phase are timed; phases beyond
  /// prof::PhaseProfiler::kMaxPhases are silently uncounted.
  void set_profiler(prof::PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  [[nodiscard]] prof::PhaseProfiler* profiler() const noexcept {
    return profiler_;
  }

 private:
  using TypeTag = const void*;

  struct TypedView {
    TypeTag tag = nullptr;
    std::vector<void*> ptrs;  ///< per-node pointers, already cast to T*
  };

  /// Lock-free-readable view set for one slot. Fixed capacity + atomic
  /// count: readers scan entries[0..count), the cold resolve path appends
  /// under views_mutex_ with a release store. Lives in a deque so element
  /// addresses are stable as slots are added.
  struct SlotViews {
    static constexpr std::size_t kMaxViews = 8;
    std::array<TypedView, kMaxViews> entries;
    std::atomic<std::size_t> count{0};
  };

  template <typename T>
  [[nodiscard]] static TypeTag type_tag() noexcept {
    return &detail::kProtocolTypeTag<T>;
  }

  void append_view(ProtocolSlot slot, TypeTag tag, std::vector<void*> ptrs);

  [[nodiscard]] const TypedView* find_view(ProtocolSlot slot,
                                           TypeTag tag) const;

  /// Cold path: first protocol_at<T> on a slot with no cached T view
  /// (slots installed through the type-erased overload). Resolves every
  /// instance with one dynamic_cast, caches the view, and throws
  /// precondition_error when the slot does not actually hold T.
  template <typename T>
  T& resolve_protocol_view(ProtocolSlot slot, NodeId node) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_REQUIRE(node < slots_[slot].size(), "node id out of range");
    std::lock_guard lock(views_mutex_);
    // Another thread may have resolved the view while we waited.
    if (const TypedView* view = find_view(slot, type_tag<T>()))
      return *static_cast<T*>(view->ptrs[node]);
    std::vector<void*> ptrs;
    ptrs.reserve(slots_[slot].size());
    for (const auto& p : slots_[slot]) {
      T* typed = dynamic_cast<T*>(p.get());
      GLAP_REQUIRE(typed != nullptr, "protocol type mismatch for slot");
      ptrs.push_back(typed);
    }
    T* result = static_cast<T*>(ptrs[node]);
    append_view_locked(slot, type_tag<T>(), std::move(ptrs));
    return *result;
  }

  void append_view_locked(ProtocolSlot slot, TypeTag tag,
                          std::vector<void*> ptrs);

  /// Recomputes order_ for the current round (hash-rank permutation).
  void compute_round_order();

  void run_round_serial();
  void run_round_waves();

  /// Runs one node's full slot stack (shared by serial and parallel paths;
  /// re-checks status between slots because an earlier protocol may have
  /// put the node to sleep). `rank` seeds the deferred-effect order key.
  void execute_node(NodeId node, std::size_t rank, const PeerSet& peers);

  /// parallel_for over the pool when one exists, inline loop otherwise.
  void run_parallel(std::size_t n, const std::function<void(std::size_t)>& fn);

  void claim(std::uint64_t claim_word, NodeId target) noexcept;
  [[nodiscard]] bool owns(std::uint64_t claim_word,
                          NodeId target) const noexcept;

  std::vector<NodeStatus> status_;
  std::atomic<std::size_t> active_count_;
  std::vector<std::vector<std::unique_ptr<Protocol>>> slots_;
  std::deque<SlotViews> views_;  ///< parallel to slots_
  std::mutex views_mutex_;
  std::vector<Observer*> observers_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> order_keys_;  ///< per-node sort key, scratch
  NetworkStats network_;
  metrics::MetricsRegistry* metrics_ = nullptr;
  trace::TraceLog* trace_ = nullptr;
  prof::PhaseProfiler* profiler_ = nullptr;
  Rng rng_;
  std::uint64_t order_seed_;
  Round round_ = 0;
  bool stop_requested_ = false;

  // --- parallel mode state ---
  bool parallel_ = false;
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<PeerSet> peer_sets_;   ///< per-node selection scratch
  std::vector<std::uint32_t> rank_;  ///< per-node rank this round
  /// Per-node reservation word: (wave_stamp << 32) | (UINT32_MAX - rank),
  /// claimed via fetch-max CAS so the lowest rank wins and stale claims
  /// from earlier waves never outrank current ones. Cleared each round.
  std::vector<std::atomic<std::uint64_t>> owner_;
  std::vector<NodeId> pending_;  ///< wave scheduling scratch
};

}  // namespace glap::sim
