// Cycle-driven P2P simulation engine (PeerSim CDSim equivalent).
//
// Usage:
//   Engine engine(n_nodes, seed);
//   auto slot = engine.add_protocol_slot(make_protocols(...));
//   engine.add_observer(&metrics);
//   engine.run(720);
//
// Per round the engine shuffles the node order (so no node systematically
// initiates first), invokes every installed protocol slot on every active
// node, then runs observers. Node status transitions (sleep for switched-
// off PMs, wake, fail) are applied immediately and broadcast to the node's
// protocol instances so overlays can drop dead links.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/network_stats.hpp"
#include "sim/node.hpp"
#include "sim/protocol.hpp"

namespace glap::sim {

class Engine {
 public:
  using ProtocolSlot = std::size_t;

  Engine(std::size_t node_count, std::uint64_t seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs one protocol layer: `instances` must hold exactly one
  /// instance per node (index == NodeId). Returns the slot handle used to
  /// reach peer instances.
  ProtocolSlot add_protocol_slot(
      std::vector<std::unique_ptr<Protocol>> instances);

  /// Registers an observer (not owned). Observers run in add order.
  void add_observer(Observer* observer);

  /// Runs `rounds` rounds (continuing from the current round counter);
  /// stops early if an observer requests it. Returns rounds executed.
  Round run(Round rounds);

  /// Executes a single round.
  void step();

  [[nodiscard]] std::size_t node_count() const noexcept {
    return status_.size();
  }
  [[nodiscard]] Round current_round() const noexcept { return round_; }

  [[nodiscard]] NodeStatus status(NodeId node) const {
    GLAP_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node];
  }
  [[nodiscard]] bool is_active(NodeId node) const {
    return status(node) == NodeStatus::kActive;
  }
  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_count_;
  }

  /// Changes a node's status and notifies all of its protocol instances.
  void set_status(NodeId node, NodeStatus status);

  /// Typed access to a protocol instance; T must match the installed type.
  template <typename T>
  [[nodiscard]] T& protocol_at(ProtocolSlot slot, NodeId node) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_REQUIRE(node < slots_[slot].size(), "node id out of range");
    auto* typed = dynamic_cast<T*>(slots_[slot][node].get());
    GLAP_REQUIRE(typed != nullptr, "protocol type mismatch for slot");
    return *typed;
  }

  [[nodiscard]] NetworkStats& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& network() const noexcept {
    return network_;
  }

  /// Engine-level RNG: round shuffling and any protocol needing shared
  /// randomness. Protocols typically hold their own split streams.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  std::vector<NodeStatus> status_;
  std::size_t active_count_;
  std::vector<std::vector<std::unique_ptr<Protocol>>> slots_;
  std::vector<Observer*> observers_;
  std::vector<NodeId> order_;
  NetworkStats network_;
  Rng rng_;
  Round round_ = 0;
  bool stop_requested_ = false;
};

}  // namespace glap::sim
