// Cycle-driven P2P simulation engine (PeerSim CDSim equivalent).
//
// Usage:
//   Engine engine(n_nodes, seed);
//   auto slot = engine.add_protocol_slot(make_protocols(...));
//   engine.add_observer(&metrics);
//   engine.run(720);
//
// Per round the engine shuffles the node order (so no node systematically
// initiates first), invokes every installed protocol slot on every active
// node, then runs observers. Node status transitions (sleep for switched-
// off PMs, wake, fail) are applied immediately and broadcast to the node's
// protocol instances so overlays can drop dead links.
//
// Typed peer access is RTTI-free on the per-round path: each slot carries
// cached typed-pointer views, registered eagerly when the slot is added
// through the typed add_protocol_slot overload (and widened to interface
// types via add_protocol_view). protocol_at serves from those caches with
// a tag compare; dynamic_cast only runs on the cold first-access fallback
// for slots installed through the type-erased overload, plus a debug-only
// consistency check.
#pragma once

#include <concepts>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/network_stats.hpp"
#include "sim/node.hpp"
#include "sim/protocol.hpp"

namespace glap::sim {

namespace detail {
/// One byte of static storage per distinct protocol type; its address is
/// the type's identity (no RTTI, vague linkage merges it across TUs).
template <typename T>
inline constexpr char kProtocolTypeTag = 0;
}  // namespace detail

class Engine {
 public:
  using ProtocolSlot = std::size_t;

  Engine(std::size_t node_count, std::uint64_t seed);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs one protocol layer: `instances` must hold exactly one
  /// instance per node (index == NodeId). Returns the slot handle used to
  /// reach peer instances. This type-erased overload registers no typed
  /// view; the first protocol_at<T> on the slot resolves one lazily.
  ProtocolSlot add_protocol_slot(
      std::vector<std::unique_ptr<Protocol>> instances);

  /// Typed overload: additionally caches the concrete per-node pointers so
  /// protocol_at<T> never needs RTTI. Prefer this in protocol installers.
  template <typename T>
    requires(std::derived_from<T, Protocol> && !std::same_as<T, Protocol>)
  ProtocolSlot add_protocol_slot(std::vector<std::unique_ptr<T>> instances) {
    std::vector<std::unique_ptr<Protocol>> base;
    base.reserve(instances.size());
    std::vector<void*> ptrs;
    ptrs.reserve(instances.size());
    for (auto& p : instances) {
      ptrs.push_back(p.get());
      base.push_back(std::move(p));
    }
    const ProtocolSlot slot = add_protocol_slot(std::move(base));
    views_[slot].push_back({type_tag<T>(), std::move(ptrs)});
    return slot;
  }

  /// Widens an already-registered `Concrete` view to a base/interface
  /// type, so protocol_at<As> is served from cache too (e.g. a Cyclon
  /// slot viewed as overlay::NeighborProvider). Pure pointer adjustment —
  /// no RTTI. No-op when the `As` view already exists.
  template <typename Concrete, typename As>
    requires std::derived_from<Concrete, As>
  void add_protocol_view(ProtocolSlot slot) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    const TypedView* source = find_view(slot, type_tag<Concrete>());
    GLAP_REQUIRE(source != nullptr,
                 "add_protocol_view needs the concrete view registered");
    if (find_view(slot, type_tag<As>()) != nullptr) return;
    std::vector<void*> ptrs;
    ptrs.reserve(source->ptrs.size());
    for (void* p : source->ptrs)
      ptrs.push_back(static_cast<As*>(static_cast<Concrete*>(p)));
    views_[slot].push_back({type_tag<As>(), std::move(ptrs)});
  }

  /// Registers an observer (not owned). Observers run in add order.
  void add_observer(Observer* observer);

  /// Runs `rounds` rounds (continuing from the current round counter);
  /// stops early if an observer requests it. Returns rounds executed.
  Round run(Round rounds);

  /// Executes a single round.
  void step();

  [[nodiscard]] std::size_t node_count() const noexcept {
    return status_.size();
  }
  [[nodiscard]] Round current_round() const noexcept { return round_; }

  [[nodiscard]] NodeStatus status(NodeId node) const {
    GLAP_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node];
  }
  [[nodiscard]] bool is_active(NodeId node) const {
    GLAP_HOT_REQUIRE(node < status_.size(), "node id out of range");
    return status_[node] == NodeStatus::kActive;
  }
  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_count_;
  }

  /// Changes a node's status and notifies all of its protocol instances.
  void set_status(NodeId node, NodeStatus status);

  /// Typed access to a protocol instance; T must match the installed type
  /// (or a registered view of it). Throws precondition_error on mismatch.
  template <typename T>
  [[nodiscard]] T& protocol_at(ProtocolSlot slot, NodeId node) {
    GLAP_HOT_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_HOT_REQUIRE(node < slots_[slot].size(), "node id out of range");
    for (const TypedView& view : views_[slot]) {
      if (view.tag != type_tag<T>()) continue;
      T* typed = static_cast<T*>(view.ptrs[node]);
      GLAP_DEBUG_ASSERT(dynamic_cast<T*>(slots_[slot][node].get()) == typed,
                        "cached protocol view out of sync");
      return *typed;
    }
    return resolve_protocol_view<T>(slot, node);
  }

  [[nodiscard]] NetworkStats& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& network() const noexcept {
    return network_;
  }

  /// Engine-level RNG: round shuffling and any protocol needing shared
  /// randomness. Protocols typically hold their own split streams.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  using TypeTag = const void*;

  struct TypedView {
    TypeTag tag;
    std::vector<void*> ptrs;  ///< per-node pointers, already cast to T*
  };

  template <typename T>
  [[nodiscard]] static TypeTag type_tag() noexcept {
    return &detail::kProtocolTypeTag<T>;
  }

  [[nodiscard]] const TypedView* find_view(ProtocolSlot slot,
                                           TypeTag tag) const;

  /// Cold path: first protocol_at<T> on a slot with no cached T view
  /// (slots installed through the type-erased overload). Resolves every
  /// instance with one dynamic_cast, caches the view, and throws
  /// precondition_error when the slot does not actually hold T.
  template <typename T>
  T& resolve_protocol_view(ProtocolSlot slot, NodeId node) {
    GLAP_REQUIRE(slot < slots_.size(), "protocol slot out of range");
    GLAP_REQUIRE(node < slots_[slot].size(), "node id out of range");
    std::vector<void*> ptrs;
    ptrs.reserve(slots_[slot].size());
    for (const auto& p : slots_[slot]) {
      T* typed = dynamic_cast<T*>(p.get());
      GLAP_REQUIRE(typed != nullptr, "protocol type mismatch for slot");
      ptrs.push_back(typed);
    }
    views_[slot].push_back({type_tag<T>(), std::move(ptrs)});
    return *static_cast<T*>(views_[slot].back().ptrs[node]);
  }

  std::vector<NodeStatus> status_;
  std::size_t active_count_;
  std::vector<std::vector<std::unique_ptr<Protocol>>> slots_;
  std::vector<std::vector<TypedView>> views_;  ///< parallel to slots_
  std::vector<Observer*> observers_;
  std::vector<NodeId> order_;
  NetworkStats network_;
  Rng rng_;
  Round round_ = 0;
  bool stop_requested_ = false;
};

}  // namespace glap::sim
