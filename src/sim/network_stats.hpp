// Message/byte accounting for the simulated gossip traffic. Protocols call
// count_message for every simulated exchange so that the harness can report
// communication overhead alongside the paper's metrics.
//
// Counters are sharded per thread so the parallel engine can count without
// locks or atomic contention: each thread increments the shard named by its
// exec::Context slot (0 = driver thread, 1..63 = pool workers), and readers
// sum the shards. Totals are integers, so the merged result is independent
// of which thread counted what — reads are only meaningful at quiescent
// points (between waves/rounds), which is where the harness samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/exec_context.hpp"
#include "sim/node.hpp"

namespace glap::sim {

class NetworkStats {
 public:
  void count_message(NodeId from, NodeId to, std::size_t bytes) noexcept {
    (void)from;
    (void)to;
    Shard& shard = shards_[exec::context().shard_slot];
    ++shard.messages;
    shard.bytes += bytes;
  }

  void reset() noexcept {
    for (Shard& shard : shards_) shard = Shard{};
  }

  [[nodiscard]] std::uint64_t messages() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.messages;
    return total;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.bytes;
    return total;
  }

  /// Per-shard byte counts for the opt-in "shard_bytes" trace event. The
  /// breakdown is execution-dependent (which shard counted a message depends
  /// on thread assignment); only the sum is deterministic. Quiescent points
  /// only.
  [[nodiscard]] std::vector<std::uint64_t> bytes_per_shard() const {
    std::vector<std::uint64_t> out(exec::kShardCount);
    for (std::size_t i = 0; i < exec::kShardCount; ++i)
      out[i] = shards_[i].bytes;
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  Shard shards_[exec::kShardCount];
};

}  // namespace glap::sim
