// Message/byte accounting for the simulated gossip traffic. The engine is
// single-threaded per run, so plain counters suffice. Protocols call
// count_message for every simulated exchange so that the harness can report
// communication overhead alongside the paper's metrics.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/node.hpp"

namespace glap::sim {

class NetworkStats {
 public:
  void count_message(NodeId from, NodeId to, std::size_t bytes) noexcept {
    (void)from;
    (void)to;
    ++messages_;
    bytes_ += bytes;
  }

  void reset() noexcept {
    messages_ = 0;
    bytes_ = 0;
  }

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace glap::sim
