// Protocol and Observer interfaces for the cycle-driven engine.
//
// This mirrors PeerSim's CDSim model: every node owns one instance of each
// installed protocol; once per round the engine invokes next_cycle on the
// active nodes' instances in a freshly shuffled order. Protocol instances
// interact by directly invoking methods on peer instances (fetched through
// Engine::protocol_at), which models a synchronous request/response within
// the round — exactly how PeerSim cycle-driven protocols are written.
#pragma once

#include "sim/node.hpp"

namespace glap::sim {

class Engine;

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// One gossip cycle initiated by `self`. Called only for active nodes.
  virtual void next_cycle(Engine& engine, NodeId self) = 0;

  /// Invoked when the node's lifecycle status changes (sleep/wake/fail).
  virtual void on_status_change(Engine& /*engine*/, NodeId /*self*/,
                                NodeStatus /*status*/) {}
};

/// Observers run at the end of every round; they sample metrics and may
/// stop the simulation early by returning false from on_round_end.
class Observer {
 public:
  virtual ~Observer() = default;

  /// Returns false to stop the simulation after this round.
  virtual bool on_round_end(Engine& engine, Round round) = 0;
};

}  // namespace glap::sim
