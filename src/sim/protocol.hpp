// Protocol and Observer interfaces for the cycle-driven engine.
//
// This mirrors PeerSim's CDSim model: every node owns one instance of each
// installed protocol; once per round the engine invokes the active nodes'
// instances in a deterministic per-round order. Protocol instances interact
// by directly invoking methods on peer instances (fetched through
// Engine::protocol_at), which models a synchronous request/response within
// the round — exactly how PeerSim cycle-driven protocols are written.
//
// The round API is split into two phases so the engine can run rounds as
// deterministic parallel waves:
//
//   select_peers(engine, self, out)  — read-only. Declares every node whose
//       per-node state (protocol instances, PM/VM state, node status) the
//       upcoming execute() may read or write. Over-approximation is safe
//       (it only costs scheduling conflicts); omission is a correctness bug.
//       Must not mutate any logical state — in particular it must not
//       advance the protocol's RNG (dry-run decision paths on a copy).
//       The initiator itself is always reserved implicitly and does not
//       need to be declared.
//   execute(engine, self, peers)     — the mutation, i.e. the former
//       next_cycle body. `peers` is the set declared during selection;
//       protocols are free to ignore it and re-derive their partner (the
//       declared state is frozen between the two phases, so dry-run and
//       real decisions coincide).
//
// The default select_peers declares a *global* footprint, which makes the
// parallel engine execute that node exclusively — unknown protocols stay
// correct (merely slow) until they opt in with a precise declaration.
#pragma once

#include <vector>

#include "sim/node.hpp"

namespace glap::sim {

class Engine;

/// Set of nodes an interaction will touch, produced by select_peers.
/// Duplicate ids are allowed (the engine's reservation loop tolerates
/// them), so callers can append overlapping candidate sets cheaply.
class PeerSet {
 public:
  void clear() noexcept {
    ids_.clear();
    global_ = false;
  }

  void add(NodeId id) {
    if (!global_) ids_.push_back(id);
  }

  /// Declares an unbounded footprint: the interaction may touch any node.
  /// The parallel engine runs such interactions exclusively, with no other
  /// interaction in flight.
  void add_global() noexcept {
    global_ = true;
    ids_.clear();
  }

  [[nodiscard]] bool global() const noexcept { return global_; }
  [[nodiscard]] const std::vector<NodeId>& ids() const noexcept {
    return ids_;
  }

 private:
  std::vector<NodeId> ids_;
  bool global_ = false;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Phase 1 (read-only): declare the nodes execute() may touch. Called
  /// only for active nodes; may run several times per round (a node that
  /// loses its reservation re-selects in a later wave) and concurrently
  /// with other nodes' select_peers, so it must be pure with respect to
  /// logical state. Default: global footprint (safe for any protocol).
  virtual void select_peers(Engine& /*engine*/, NodeId /*self*/,
                            PeerSet& out) {
    out.add_global();
  }

  /// Phase 2: one gossip cycle initiated by `self`. Called only for active
  /// nodes. `peers` is what select_peers declared (empty in the serial
  /// engine, which never runs selection).
  virtual void execute(Engine& engine, NodeId self, const PeerSet& peers) = 0;

  /// Invoked when the node's lifecycle status changes (sleep/wake/fail).
  virtual void on_status_change(Engine& /*engine*/, NodeId /*self*/,
                                NodeStatus /*status*/) {}

  /// Quiescence vote (DESIGN.md §12): polled right after the node executed
  /// a round, only when the engine runs with quiescence enabled. A node is
  /// parked — skipped in subsequent rounds until an event re-activates it —
  /// only when EVERY installed slot returns true. Must be a pure read of
  /// the instance's own state. Default: never quiesce, so a stack that
  /// contains any protocol without an explicit vote stays always-active.
  virtual bool can_quiesce(const Engine& /*engine*/,
                           NodeId /*self*/) const {
    return false;
  }
};

/// Observers run at the end of every round; they sample metrics and may
/// stop the simulation early by returning false from on_round_end.
class Observer {
 public:
  virtual ~Observer() = default;

  /// Returns false to stop the simulation after this round.
  virtual bool on_round_end(Engine& engine, Round round) = 0;
};

}  // namespace glap::sim
