#include "sim/network_stats.hpp"

// NetworkStats is header-only today; this TU anchors the library target and
// reserves a home for latency/topology-aware accounting extensions.
