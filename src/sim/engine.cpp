#include "sim/engine.hpp"

#include <algorithm>
#include <numeric>

#include "common/profiler.hpp"

namespace glap::sim {

namespace {

/// First-wave batch size; later waves adapt to 2x the previous winner
/// count so a heavily conflicting round does not re-select hundreds of
/// nodes per wave, while a conflict-free round drains quickly.
constexpr std::size_t kMinWaveBatch = 64;

/// Reservation word for a claimant of rank `rank` in wave `stamp`: the
/// stamp occupies the high half so words from earlier waves always lose,
/// and the rank is stored inverted so fetch-max keeps the LOWEST rank.
[[nodiscard]] constexpr std::uint64_t claim_word(std::uint32_t stamp,
                                                 std::uint32_t rank) noexcept {
  return (static_cast<std::uint64_t>(stamp) << 32) |
         (0xFFFFFFFFu - static_cast<std::uint64_t>(rank));
}

}  // namespace

Engine::Engine(std::size_t node_count, std::uint64_t seed)
    : status_(node_count, NodeStatus::kActive),
      active_count_(node_count),
      order_(node_count),
      order_keys_(node_count),
      rng_(hash_combine(seed, hash_tag("engine"))),
      order_seed_(hash_combine(seed, hash_tag("order"))),
      owner_(node_count) {
  GLAP_REQUIRE(node_count > 0, "engine needs at least one node");
  GLAP_REQUIRE(node_count < static_cast<std::size_t>(kInvalidNode),
               "too many nodes");
  std::iota(order_.begin(), order_.end(), NodeId{0});
}

Engine::ProtocolSlot Engine::add_protocol_slot(
    std::vector<std::unique_ptr<Protocol>> instances) {
  GLAP_REQUIRE(instances.size() == status_.size(),
               "need exactly one protocol instance per node");
  for (const auto& p : instances)
    GLAP_REQUIRE(p != nullptr, "null protocol instance");
  slots_.push_back(std::move(instances));
  views_.emplace_back();
  return slots_.size() - 1;
}

void Engine::append_view(ProtocolSlot slot, TypeTag tag,
                         std::vector<void*> ptrs) {
  std::lock_guard lock(views_mutex_);
  append_view_locked(slot, tag, std::move(ptrs));
}

void Engine::append_view_locked(ProtocolSlot slot, TypeTag tag,
                                std::vector<void*> ptrs) {
  SlotViews& views = views_[slot];
  const std::size_t count = views.count.load(std::memory_order_relaxed);
  GLAP_REQUIRE(count < SlotViews::kMaxViews,
               "too many typed views registered on one protocol slot");
  views.entries[count].tag = tag;
  views.entries[count].ptrs = std::move(ptrs);
  views.count.store(count + 1, std::memory_order_release);
}

const Engine::TypedView* Engine::find_view(ProtocolSlot slot,
                                           TypeTag tag) const {
  const SlotViews& views = views_[slot];
  const std::size_t count = views.count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i)
    if (views.entries[i].tag == tag) return &views.entries[i];
  return nullptr;
}

void Engine::add_observer(Observer* observer) {
  GLAP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void Engine::enable_parallel_execution(std::size_t threads) {
  GLAP_REQUIRE(threads >= 1, "parallel execution needs at least one thread");
  threads_ = std::min<std::size_t>(threads, exec::kShardCount - 1);
  parallel_ = true;
  peer_sets_.resize(node_count());
  rank_.resize(node_count());
  pending_.reserve(node_count());
  if (threads_ > 1 && !pool_)
    pool_ = std::make_unique<ThreadPool>(threads_);
}

void Engine::set_status(NodeId node, NodeStatus status) {
  GLAP_REQUIRE(node < status_.size(), "node id out of range");
  const NodeStatus old = status_[node];
  if (old == status) return;
  GLAP_REQUIRE(old != NodeStatus::kFailed, "failed nodes cannot transition");
  status_[node] = status;
  if (old == NodeStatus::kActive)
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  if (status == NodeStatus::kActive)
    active_count_.fetch_add(1, std::memory_order_relaxed);
  for (auto& slot : slots_)
    slot[node]->on_status_change(*this, node, status);
}

void Engine::compute_round_order() {
  // Counter-based hash rank: a deterministic permutation per (seed, round)
  // that both execution modes share, independent of any RNG stream state.
  const std::uint64_t round_seed = hash_combine(order_seed_, round_);
  for (std::size_t node = 0; node < order_keys_.size(); ++node)
    order_keys_[node] = hash_combine(round_seed, node);
  std::sort(order_.begin(), order_.end(), [this](NodeId a, NodeId b) {
    return order_keys_[a] != order_keys_[b] ? order_keys_[a] < order_keys_[b]
                                            : a < b;
  });
}

void Engine::execute_node(NodeId node, std::size_t rank,
                          const PeerSet& peers) {
  exec::Context& ctx = exec::context();
  ctx.order_key = rank;
  ctx.seq = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    // A protocol earlier in the stack may have put this node to sleep
    // (e.g. consolidation switched the PM off mid-round).
    if (status_[node] != NodeStatus::kActive) break;
    prof::PhaseScope timer(profiler_, prof::PhaseProfiler::kFirstSlot + s);
    slots_[s][node]->execute(*this, node, peers);
  }
}

void Engine::run_parallel(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (pool_ && n > 1) {
    parallel_for(*pool_, n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void Engine::claim(std::uint64_t word, NodeId target) noexcept {
  // fetch-max via CAS loop; relaxed is enough because the selection and
  // scan phases are separated by the pool's completion barrier.
  std::atomic<std::uint64_t>& slot = owner_[target];
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < word && !slot.compare_exchange_weak(
                           cur, word, std::memory_order_relaxed)) {
  }
}

bool Engine::owns(std::uint64_t word, NodeId target) const noexcept {
  return owner_[target].load(std::memory_order_relaxed) == word;
}

void Engine::run_round_serial() {
  static const PeerSet kNoPeers;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const NodeId node = order_[i];
    if (status_[node] != NodeStatus::kActive) continue;
    execute_node(node, i, kNoPeers);
  }
}

void Engine::run_round_waves() {
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i)
    rank_[order_[i]] = static_cast<std::uint32_t>(i);
  for (auto& word : owner_) word.store(0, std::memory_order_relaxed);
  pending_.assign(order_.begin(), order_.end());

  std::size_t begin = 0;  // pending_[0, begin) has executed
  std::size_t last_winners = kMinWaveBatch;
  std::uint32_t wave_stamp = 0;  // < node_count waves per round, no wrap
  while (begin < pending_.size()) {
    ++wave_stamp;
    const std::size_t remaining = pending_.size() - begin;
    const std::size_t batch = std::min(
        remaining, std::max<std::size_t>(kMinWaveBatch, 2 * last_winners));

    // Phase 1 (parallel): the lowest-ranked pending nodes declare their
    // footprint and stake reservations. Selection is pure, so a node that
    // loses here simply re-selects next wave against the updated state.
    run_parallel(batch, [&](std::size_t i) {
      // Selection is a wave-mode-only phase: its call count depends on
      // how waves shake out, so the profiler treats it as wall-clock-only.
      prof::PhaseScope timer(profiler_, prof::PhaseProfiler::kSelect);
      const NodeId node = pending_[begin + i];
      PeerSet& peers = peer_sets_[node];
      peers.clear();
      if (status_[node] == NodeStatus::kActive) {
        for (auto& slot : slots_) slot[node]->select_peers(*this, node, peers);
      }
      if (!peers.global()) {
        const std::uint64_t word = claim_word(wave_stamp, rank_[node]);
        claim(word, node);
        for (NodeId id : peers.ids()) claim(word, id);
      }
    });

    // Phase 2 (serial scan): accept the maximal *prefix* of the batch
    // whose reservations fully held. The prefix rule is what guarantees
    // serial equivalence — every winner sees exactly the state the serial
    // rank-order run would have produced, because everything ranked below
    // it has already retired and nothing ranked above it may touch its
    // reserved nodes this wave.
    std::size_t winners = 0;
    bool executed_inline = false;
    for (std::size_t i = 0; i < batch; ++i) {
      const NodeId node = pending_[begin + i];
      const PeerSet& peers = peer_sets_[node];
      if (peers.global()) {
        // Unbounded footprint: run it alone, inline on the driver, with
        // no other interaction in flight (the barrier above guarantees
        // quiescence). Only valid as the lowest-ranked pending node.
        if (i == 0) {
          execute_node(node, rank_[node], peers);
          winners = 1;
          executed_inline = true;
        }
        break;
      }
      const std::uint64_t word = claim_word(wave_stamp, rank_[node]);
      bool owned = owns(word, node);
      for (NodeId id : peers.ids()) {
        if (!owned) break;
        owned = owns(word, id);
      }
      if (!owned) break;
      ++winners;
    }
    // The lowest-ranked pending node always wins its reservations (no one
    // outranks it in the batch), so every wave retires at least one node.
    GLAP_ASSERT(winners > 0, "parallel wave made no progress");

    // Phase 3 (parallel): execute the winning prefix. Reserved sets are
    // pairwise disjoint in effect (each reserved node is owned by exactly
    // one winner), so winners never touch shared state.
    if (!executed_inline) {
      run_parallel(winners, [&](std::size_t i) {
        const NodeId node = pending_[begin + i];
        execute_node(node, rank_[node], peer_sets_[node]);
      });
    }
    begin += winners;
    last_winners = winners;
  }
}

void Engine::step() {
  compute_round_order();
  if (parallel_) {
    run_round_waves();
  } else {
    run_round_serial();
  }
  ++round_;
  for (Observer* obs : observers_) {
    if (!obs->on_round_end(*this, round_)) stop_requested_ = true;
  }
}

Round Engine::run(Round rounds) {
  stop_requested_ = false;
  Round executed = 0;
  while (executed < rounds && !stop_requested_) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace glap::sim
