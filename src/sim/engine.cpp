#include "sim/engine.hpp"

#include <numeric>

namespace glap::sim {

Engine::Engine(std::size_t node_count, std::uint64_t seed)
    : status_(node_count, NodeStatus::kActive),
      active_count_(node_count),
      order_(node_count),
      rng_(hash_combine(seed, hash_tag("engine"))) {
  GLAP_REQUIRE(node_count > 0, "engine needs at least one node");
  GLAP_REQUIRE(node_count < static_cast<std::size_t>(kInvalidNode),
               "too many nodes");
  std::iota(order_.begin(), order_.end(), NodeId{0});
}

Engine::ProtocolSlot Engine::add_protocol_slot(
    std::vector<std::unique_ptr<Protocol>> instances) {
  GLAP_REQUIRE(instances.size() == status_.size(),
               "need exactly one protocol instance per node");
  for (const auto& p : instances)
    GLAP_REQUIRE(p != nullptr, "null protocol instance");
  slots_.push_back(std::move(instances));
  views_.emplace_back();
  return slots_.size() - 1;
}

const Engine::TypedView* Engine::find_view(ProtocolSlot slot,
                                           TypeTag tag) const {
  for (const TypedView& view : views_[slot])
    if (view.tag == tag) return &view;
  return nullptr;
}

void Engine::add_observer(Observer* observer) {
  GLAP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void Engine::set_status(NodeId node, NodeStatus status) {
  GLAP_REQUIRE(node < status_.size(), "node id out of range");
  const NodeStatus old = status_[node];
  if (old == status) return;
  GLAP_REQUIRE(old != NodeStatus::kFailed, "failed nodes cannot transition");
  status_[node] = status;
  if (old == NodeStatus::kActive) --active_count_;
  if (status == NodeStatus::kActive) ++active_count_;
  for (auto& slot : slots_)
    slot[node]->on_status_change(*this, node, status);
}

void Engine::step() {
  rng_.shuffle(order_);
  for (NodeId node : order_) {
    if (status_[node] != NodeStatus::kActive) continue;
    for (auto& slot : slots_) {
      // A protocol earlier in the stack may have put this node to sleep
      // (e.g. consolidation switched the PM off mid-round).
      if (status_[node] != NodeStatus::kActive) break;
      slot[node]->next_cycle(*this, node);
    }
  }
  ++round_;
  for (Observer* obs : observers_) {
    if (!obs->on_round_end(*this, round_)) stop_requested_ = true;
  }
}

Round Engine::run(Round rounds) {
  stop_requested_ = false;
  Round executed = 0;
  while (executed < rounds && !stop_requested_) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace glap::sim
