#include "sim/engine.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/profiler.hpp"
#include "common/tracing.hpp"

namespace glap::sim {

namespace {

/// First-wave batch size; later waves adapt to 2x the previous winner
/// count so a heavily conflicting round does not re-select hundreds of
/// nodes per wave, while a conflict-free round drains quickly.
constexpr std::size_t kMinWaveBatch = 64;

/// Reservation word for a claimant of rank `rank` in wave `stamp`: the
/// stamp occupies the high half so words from earlier waves always lose,
/// and the rank is stored inverted so fetch-max keeps the LOWEST rank.
[[nodiscard]] constexpr std::uint64_t claim_word(std::uint32_t stamp,
                                                 std::uint32_t rank) noexcept {
  return (static_cast<std::uint64_t>(stamp) << 32) |
         (0xFFFFFFFFu - static_cast<std::uint64_t>(rank));
}

/// in_list_round_ stamp that never equals a real round number.
constexpr Round kNeverInList = static_cast<Round>(-1);

}  // namespace

Engine::Engine(std::size_t node_count, std::uint64_t seed)
    : status_(node_count, NodeStatus::kActive),
      active_count_(node_count),
      order_(node_count),
      order_keys_(node_count),
      rng_(hash_combine(seed, hash_tag("engine"))),
      order_seed_(hash_combine(seed, hash_tag("order"))),
      owner_(node_count) {
  GLAP_REQUIRE(node_count > 0, "engine needs at least one node");
  GLAP_REQUIRE(node_count < static_cast<std::size_t>(kInvalidNode),
               "too many nodes");
  std::iota(order_.begin(), order_.end(), NodeId{0});
}

Engine::ProtocolSlot Engine::add_protocol_slot(
    std::vector<std::unique_ptr<Protocol>> instances) {
  GLAP_REQUIRE(instances.size() == status_.size(),
               "need exactly one protocol instance per node");
  for (const auto& p : instances)
    GLAP_REQUIRE(p != nullptr, "null protocol instance");
  Slot slot;
  slot.instances.reserve(instances.size());
  for (const auto& p : instances) slot.instances.push_back(p.get());
  slot.storage = std::make_shared<std::vector<std::unique_ptr<Protocol>>>(
      std::move(instances));
  return push_slot(std::move(slot));
}

Engine::ProtocolSlot Engine::push_slot(Slot slot) {
  GLAP_REQUIRE(slot.instances.size() == status_.size(),
               "need exactly one protocol instance per node");
  slots_.push_back(std::move(slot));
  views_.emplace_back();
  return slots_.size() - 1;
}

void Engine::append_view(ProtocolSlot slot, TypeTag tag,
                         std::vector<void*> ptrs) {
  std::lock_guard lock(views_mutex_);
  append_view_locked(slot, tag, std::move(ptrs));
}

void Engine::append_view_locked(ProtocolSlot slot, TypeTag tag,
                                std::vector<void*> ptrs) {
  SlotViews& views = views_[slot];
  const std::size_t count = views.count.load(std::memory_order_relaxed);
  GLAP_REQUIRE(count < SlotViews::kMaxViews,
               "too many typed views registered on one protocol slot");
  views.entries[count].tag = tag;
  views.entries[count].ptrs = std::move(ptrs);
  views.count.store(count + 1, std::memory_order_release);
}

const Engine::TypedView* Engine::find_view(ProtocolSlot slot,
                                           TypeTag tag) const {
  const SlotViews& views = views_[slot];
  const std::size_t count = views.count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i)
    if (views.entries[i].tag == tag) return &views.entries[i];
  return nullptr;
}

void Engine::add_observer(Observer* observer) {
  GLAP_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void Engine::enable_parallel_execution(std::size_t threads) {
  GLAP_REQUIRE(threads >= 1, "parallel execution needs at least one thread");
  GLAP_REQUIRE(!event_mode_ && !quiescence_,
               "wave-parallel execution excludes the event scheduler and "
               "quiescence (single-driver semantics; see DESIGN.md §12)");
  threads_ = std::min<std::size_t>(threads, exec::kShardCount - 1);
  parallel_ = true;
  peer_sets_.resize(node_count());
  rank_.resize(node_count());
  pending_.reserve(node_count());
  if (threads_ > 1 && !pool_)
    pool_ = std::make_unique<ThreadPool>(threads_);
}

void Engine::enable_event_scheduler() {
  GLAP_REQUIRE(!parallel_,
               "event scheduler excludes wave-parallel execution");
  event_mode_ = true;
  run_list_.reserve(node_count());
  in_list_round_.assign(node_count(), kNeverInList);
  if (quiescent_.empty()) quiescent_.assign(node_count(), 0);
}

void Engine::enable_quiescence(Round recheck_rounds) {
  GLAP_REQUIRE(!parallel_,
               "quiescence excludes wave-parallel execution");
  quiescence_ = true;
  recheck_rounds_ = recheck_rounds;
  if (quiescent_.empty()) quiescent_.assign(node_count(), 0);
}

void Engine::set_status(NodeId node, NodeStatus status) {
  GLAP_REQUIRE(node < status_.size(), "node id out of range");
  const NodeStatus old = status_[node];
  if (old == status) return;
  GLAP_REQUIRE(old != NodeStatus::kFailed, "failed nodes cannot transition");
  // A parked node leaving the active state is un-parked first, so the
  // quiescent set only ever contains active nodes and the activity trace
  // alternates cleanly per node.
  if (status != NodeStatus::kActive) clear_quiescent(node, WakeReason::kStatus);
  status_[node] = status;
  if (old == NodeStatus::kActive)
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  if (status == NodeStatus::kActive) {
    active_count_.fetch_add(1, std::memory_order_relaxed);
    // A node switched back on mid-round joins the remaining schedule iff
    // its rank has not passed — the serial engine's visit rule.
    if (event_mode_ && in_round_) insert_runnable(node);
  }
  for (auto& slot : slots_)
    slot.instances[node]->on_status_change(*this, node, status);
}

void Engine::trace_activity(NodeId node, bool awake, WakeReason reason) {
  if (!quiescence_ || trace_ == nullptr) return;
  trace_->emit(trace::Kind::kActivity, node, awake ? 1 : 0,
               static_cast<std::int64_t>(reason));
}

bool Engine::clear_quiescent(NodeId node, WakeReason reason) {
  if (quiescent_.empty() || quiescent_[node] == 0) return false;
  quiescent_[node] = 0;
  --quiescent_count_;
  trace_activity(node, /*awake=*/true, reason);
  return true;
}

void Engine::wake(NodeId node, WakeReason reason) {
  GLAP_REQUIRE(node < status_.size(), "node id out of range");
  if (!clear_quiescent(node, reason)) return;
  if (event_mode_ && in_round_) insert_runnable(node);
}

void Engine::wake_all(WakeReason reason) {
  if (quiescent_count_ == 0) return;
  for (std::size_t node = 0; node < status_.size(); ++node)
    wake(static_cast<NodeId>(node), reason);
}

void Engine::schedule_wake(NodeId node, Round round, WakeReason reason) {
  GLAP_REQUIRE(node < status_.size(), "node id out of range");
  wake_queue_.emplace_back(round, std::make_pair(node, reason));
  std::push_heap(wake_queue_.begin(), wake_queue_.end(),
                 std::greater<>());
}

void Engine::drain_wake_queue() {
  while (!wake_queue_.empty() && wake_queue_.front().first <= round_) {
    std::pop_heap(wake_queue_.begin(), wake_queue_.end(), std::greater<>());
    const auto [node, reason] = wake_queue_.back().second;
    wake_queue_.pop_back();
    wake(node, reason);
  }
}

bool Engine::poll_quiesce(NodeId node) {
  if (!quiescence_ || quiescent_[node] != 0) return false;
  if (status_[node] != NodeStatus::kActive) return false;
  for (const Slot& slot : slots_)
    if (!slot.instances[node]->can_quiesce(*this, node)) return false;
  quiescent_[node] = 1;
  ++quiescent_count_;
  trace_activity(node, /*awake=*/false, WakeReason::kConverged);
  if (recheck_rounds_ > 0)
    schedule_wake(node, round_ + recheck_rounds_, WakeReason::kSchedule);
  return true;
}

void Engine::compute_round_order() {
  // Counter-based hash rank: a deterministic permutation per (seed, round)
  // that all execution modes share, independent of any RNG stream state.
  round_seed_cur_ = hash_combine(order_seed_, round_);
  for (std::size_t node = 0; node < order_keys_.size(); ++node)
    order_keys_[node] = hash_combine(round_seed_cur_, node);
  std::sort(order_.begin(), order_.end(), [this](NodeId a, NodeId b) {
    return order_keys_[a] != order_keys_[b] ? order_keys_[a] < order_keys_[b]
                                            : a < b;
  });
}

void Engine::execute_node(NodeId node, std::size_t rank,
                          const PeerSet& peers) {
  exec::Context& ctx = exec::context();
  // rank+1: order key 0 is reserved for round-start driver events (wake
  // drains), which must sort ahead of every execution this round. A
  // uniform shift preserves the relative order the trace contract needs.
  ctx.order_key = rank + 1;
  ctx.seq = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    // A protocol earlier in the stack may have put this node to sleep
    // (e.g. consolidation switched the PM off mid-round).
    if (status_[node] != NodeStatus::kActive) break;
    prof::PhaseScope timer(profiler_, prof::PhaseProfiler::kFirstSlot + s);
    slots_[s].instances[node]->execute(*this, node, peers);
  }
}

void Engine::run_parallel(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (pool_ && n > 1) {
    parallel_for(*pool_, n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void Engine::claim(std::uint64_t word, NodeId target) noexcept {
  // fetch-max via CAS loop; relaxed is enough because the selection and
  // scan phases are separated by the pool's completion barrier.
  std::atomic<std::uint64_t>& slot = owner_[target];
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < word && !slot.compare_exchange_weak(
                           cur, word, std::memory_order_relaxed)) {
  }
}

bool Engine::owns(std::uint64_t word, NodeId target) const noexcept {
  return owner_[target].load(std::memory_order_relaxed) == word;
}

void Engine::run_round_serial() {
  static const PeerSet kNoPeers;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const NodeId node = order_[i];
    if (status_[node] != NodeStatus::kActive) continue;
    if (quiescence_ && quiescent_[node] != 0) continue;
    execute_node(node, i, kNoPeers);
    if (quiescence_) poll_quiesce(node);
  }
}

void Engine::run_round_event() {
  // Runnable subset only: key, sort and visit the nodes that can actually
  // run. Parked and non-active nodes pay nothing this round.
  static const PeerSet kNoPeers;
  run_list_.clear();
  for (std::size_t node = 0; node < status_.size(); ++node) {
    if (status_[node] != NodeStatus::kActive) continue;
    if (!quiescent_.empty() && quiescent_[node] != 0) continue;
    run_list_.push_back(static_cast<NodeId>(node));
    order_keys_[node] = hash_combine(round_seed_cur_, node);
    in_list_round_[node] = round_;
  }
  std::sort(run_list_.begin(), run_list_.end(), [this](NodeId a, NodeId b) {
    return order_keys_[a] != order_keys_[b] ? order_keys_[a] < order_keys_[b]
                                            : a < b;
  });
  in_round_ = true;
  for (run_cursor_ = 0; run_cursor_ < run_list_.size(); ++run_cursor_) {
    const NodeId node = run_list_[run_cursor_];
    // Status may have flipped since scheduling (a peer put the node to
    // sleep mid-round) — same skip the serial visit applies.
    if (status_[node] != NodeStatus::kActive) continue;
    if (quiescent_[node] != 0) continue;
    execute_node(node, run_cursor_, kNoPeers);
    if (quiescence_) poll_quiesce(node);
  }
  in_round_ = false;
}

void Engine::insert_runnable(NodeId node) {
  // Already scheduled this round (visited or still ahead of the cursor):
  // the serial engine would not visit it twice either.
  if (in_list_round_[node] == round_) return;
  const std::uint64_t key = hash_combine(round_seed_cur_, node);
  order_keys_[node] = key;
  const NodeId current = run_list_[run_cursor_];
  // Rank already passed (or ties the executing node): runs next round,
  // exactly like a serial wake landing behind the visit cursor.
  if (key < order_keys_[current] ||
      (key == order_keys_[current] && node <= current))
    return;
  const auto pos = std::lower_bound(
      run_list_.begin() + static_cast<std::ptrdiff_t>(run_cursor_) + 1,
      run_list_.end(), node, [this](NodeId a, NodeId b) {
        return order_keys_[a] != order_keys_[b]
                   ? order_keys_[a] < order_keys_[b]
                   : a < b;
      });
  run_list_.insert(pos, node);
  in_list_round_[node] = round_;
}

void Engine::run_round_waves() {
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i)
    rank_[order_[i]] = static_cast<std::uint32_t>(i);
  for (auto& word : owner_) word.store(0, std::memory_order_relaxed);
  pending_.assign(order_.begin(), order_.end());

  std::size_t begin = 0;  // pending_[0, begin) has executed
  std::size_t last_winners = kMinWaveBatch;
  std::uint32_t wave_stamp = 0;  // < node_count waves per round, no wrap
  while (begin < pending_.size()) {
    ++wave_stamp;
    const std::size_t remaining = pending_.size() - begin;
    const std::size_t batch = std::min(
        remaining, std::max<std::size_t>(kMinWaveBatch, 2 * last_winners));

    // Phase 1 (parallel): the lowest-ranked pending nodes declare their
    // footprint and stake reservations. Selection is pure, so a node that
    // loses here simply re-selects next wave against the updated state.
    run_parallel(batch, [&](std::size_t i) {
      // Selection is a wave-mode-only phase: its call count depends on
      // how waves shake out, so the profiler treats it as wall-clock-only.
      prof::PhaseScope timer(profiler_, prof::PhaseProfiler::kSelect);
      const NodeId node = pending_[begin + i];
      PeerSet& peers = peer_sets_[node];
      peers.clear();
      if (status_[node] == NodeStatus::kActive) {
        for (auto& slot : slots_)
          slot.instances[node]->select_peers(*this, node, peers);
      }
      if (!peers.global()) {
        const std::uint64_t word = claim_word(wave_stamp, rank_[node]);
        claim(word, node);
        for (NodeId id : peers.ids()) claim(word, id);
      }
    });

    // Phase 2 (serial scan): accept the maximal *prefix* of the batch
    // whose reservations fully held. The prefix rule is what guarantees
    // serial equivalence — every winner sees exactly the state the serial
    // rank-order run would have produced, because everything ranked below
    // it has already retired and nothing ranked above it may touch its
    // reserved nodes this wave.
    std::size_t winners = 0;
    bool executed_inline = false;
    for (std::size_t i = 0; i < batch; ++i) {
      const NodeId node = pending_[begin + i];
      const PeerSet& peers = peer_sets_[node];
      if (peers.global()) {
        // Unbounded footprint: run it alone, inline on the driver, with
        // no other interaction in flight (the barrier above guarantees
        // quiescence). Only valid as the lowest-ranked pending node.
        if (i == 0) {
          execute_node(node, rank_[node], peers);
          winners = 1;
          executed_inline = true;
        }
        break;
      }
      const std::uint64_t word = claim_word(wave_stamp, rank_[node]);
      bool owned = owns(word, node);
      for (NodeId id : peers.ids()) {
        if (!owned) break;
        owned = owns(word, id);
      }
      if (!owned) break;
      ++winners;
    }
    // The lowest-ranked pending node always wins its reservations (no one
    // outranks it in the batch), so every wave retires at least one node.
    GLAP_ASSERT(winners > 0, "parallel wave made no progress");

    // Phase 3 (parallel): execute the winning prefix. Reserved sets are
    // pairwise disjoint in effect (each reserved node is owned by exactly
    // one winner), so winners never touch shared state.
    if (!executed_inline) {
      run_parallel(winners, [&](std::size_t i) {
        const NodeId node = pending_[begin + i];
        execute_node(node, rank_[node], peer_sets_[node]);
      });
    }
    begin += winners;
    last_winners = winners;
  }
}

void Engine::step() {
  // Round-start driver context: order key 0 sorts scheduled-wake activity
  // events ahead of every execution this round (execute_node uses rank+1),
  // identically in every mode.
  exec::Context& ctx = exec::context();
  ctx.order_key = 0;
  ctx.seq = 0;
  round_seed_cur_ = hash_combine(order_seed_, round_);
  drain_wake_queue();
  if (event_mode_) {
    run_round_event();
  } else {
    compute_round_order();
    if (parallel_) {
      run_round_waves();
    } else {
      run_round_serial();
    }
  }
  ++round_;
  for (Observer* obs : observers_) {
    if (!obs->on_round_end(*this, round_)) stop_requested_ = true;
  }
}

Round Engine::run(Round rounds) {
  stop_requested_ = false;
  Round executed = 0;
  while (executed < rounds && !stop_requested_) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace glap::sim
