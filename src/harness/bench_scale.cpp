#include "harness/bench_scale.hpp"

#include <cstdlib>
#include <string_view>

namespace glap::harness {

BenchScale bench_scale_from_env() {
  BenchScale scale;
  const char* env = std::getenv("GLAP_BENCH_SCALE");
  const bool full = env && std::string_view(env) == "full";
  if (full) {
    scale.sizes = {500, 1000, 2000};
    scale.ratios = {2, 3, 4};
    scale.repetitions = 5;
    scale.rounds = 720;
    scale.warmup_rounds = 700;
  } else {
    scale.sizes = {150};
    scale.ratios = {2, 3, 4};
    scale.repetitions = 2;
    scale.rounds = 160;
    scale.warmup_rounds = 160;
  }
  if (const char* reps = std::getenv("GLAP_BENCH_REPS")) {
    const long parsed = std::strtol(reps, nullptr, 10);
    if (parsed > 0) scale.repetitions = static_cast<std::size_t>(parsed);
  }
  return scale;
}

void apply_scale(ExperimentConfig& config, const BenchScale& scale) {
  config.rounds = scale.rounds;
  config.warmup_rounds = scale.warmup_rounds;
  config.fit_glap_phases_to_warmup();
}

}  // namespace glap::harness
