// Experiment configuration: one cell of the paper's evaluation sweep
// (cluster size × VM:PM ratio × algorithm × seed).
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "baselines/ecocloud.hpp"
#include "baselines/grmp.hpp"
#include "baselines/pabfd.hpp"
#include "cloud/datacenter.hpp"
#include "common/tracing.hpp"
#include "core/config.hpp"
#include "net/network_model.hpp"
#include "overlay/cyclon.hpp"
#include "overlay/newscast.hpp"
#include "trace/google_synth.hpp"

namespace glap::harness {

enum class Algorithm {
  kGlap,
  kGrmp,
  kEcoCloud,
  kPabfd,
  kNone,  ///< no consolidation: workload replay only (control)
};

/// Peer-sampling overlay for the gossip protocols (GLAP, GRMP).
enum class OverlayKind {
  kCyclon,    ///< the paper's membership layer
  kNewscast,  ///< ablation: freshness-driven gossip membership
};

[[nodiscard]] constexpr std::string_view to_string(OverlayKind o) noexcept {
  switch (o) {
    case OverlayKind::kCyclon:
      return "Cyclon";
    case OverlayKind::kNewscast:
      return "Newscast";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kGlap:
      return "GLAP";
    case Algorithm::kGrmp:
      return "GRMP";
    case Algorithm::kEcoCloud:
      return "EcoCloud";
    case Algorithm::kPabfd:
      return "PABFD";
    case Algorithm::kNone:
      return "None";
  }
  return "?";
}

/// Optional heterogeneous fleet composition. When a class list is
/// non-empty, per-entity specs are drawn from it (weighted, seeded by the
/// experiment seed) instead of the homogeneous DataCenterConfig specs.
struct FleetMix {
  struct PmClass {
    cloud::PmSpec spec;
    double weight = 1.0;
  };
  struct VmClass {
    cloud::VmSpec spec;
    double weight = 1.0;
  };
  std::vector<PmClass> pm_classes;
  std::vector<VmClass> vm_classes;

  [[nodiscard]] bool heterogeneous() const noexcept {
    return !pm_classes.empty() || !vm_classes.empty();
  }
};

/// VM churn: arrivals and departures during the evaluation window. Churn
/// is harness-driven (the cloud provider's admission path), identical for
/// every algorithm: a departure frees the VM's slot; an arrival places the
/// VM on a random powered-on PM with nominal-allocation headroom, waking a
/// sleeping PM when none has room.
struct ChurnConfig {
  bool enabled = false;
  /// Per placed VM per evaluation round.
  double departure_prob = 0.0;
  /// Per departed VM per evaluation round.
  double arrival_prob = 0.0;
  /// Fraction of VMs placed when the run starts (the rest arrive later).
  double initial_placed_fraction = 1.0;

  // GLAP's re-learning oracle (paper §IV-B): re-trigger the two-phase
  // learning when churn since the last learning exceeds a rate threshold.
  bool glap_relearn = true;
  /// Churn events per VM per round (since last trigger) that re-trigger.
  double relearn_rate_threshold = 0.02;
  sim::Round relearn_learning_rounds = 40;
  sim::Round relearn_aggregation_rounds = 20;
  sim::Round relearn_min_interval = 60;
};

/// Observability knobs (DESIGN.md §10). File sinks default to off; a run
/// with the defaults constructs no registry and no trace file, so the
/// only cost instrumented code pays is one null-pointer test per site —
/// except the flight recorder (§10.7), which stays on with a bounded
/// in-memory ring so crashes always leave a post-mortem trace.
struct ObservabilityConfig {
  /// Collect counters/gauges/histograms/per-round series into a
  /// MetricsRegistry, returned via RunResult::metrics. Implied by any of
  /// the sink paths below.
  bool metrics = false;

  /// Non-empty: stream the round-level event trace to this file.
  std::string trace_path;
  /// Test hook: stream the trace to this stream instead of a file (takes
  /// precedence over trace_path; not owned).
  std::ostream* trace_sink = nullptr;
  /// Encoding for the trace sink: JSONL text (default) or the compact
  /// GTB binary format (DESIGN.md §10.6). Both are bit-identical across
  /// engines and interchangeable via `glap-trace convert`.
  trace::Format trace_format = trace::Format::kJsonl;
  /// Also emit per-round per-shard network byte breakdowns ("shard_bytes"
  /// events). Execution-dependent — which shard counted a message depends
  /// on thread assignment — so this is excluded from the serial/parallel
  /// bit-identity contract. Default off.
  bool trace_shard_detail = false;

  /// Deterministic trace sampling (DESIGN.md §10.6): keep probability for
  /// the high-volume shuffle and net event kinds, decided by a pure hash
  /// of (seed, ids) so sampled traces stay bit-identical across engines
  /// and a message's send/deliver/drop are kept or dropped together.
  /// 1.0 = keep everything. Driver-only lines are never sampled.
  double trace_sample_shuffle = 1.0;
  double trace_sample_net = 1.0;

  /// Flight recorder (DESIGN.md §10.7): rounds of GTB trace retained in
  /// memory for post-mortem dumps. Always on (even with no trace sink);
  /// 0 disables.
  std::size_t flight_recorder_rounds = 8;
  /// Where the recorder dumps when an invariant check, GLAP_ENABLE_CHECKS
  /// assertion, or fatal signal fires mid-run.
  std::string flight_recorder_path = "glap-flight.gtb";
  /// Non-empty: also dump the recorder here at normal run end (CI hook —
  /// lets the pipeline verify the dump parses without crashing a run).
  std::string flight_dump_path;

  /// Collect the per-phase engine profile (select/execute/commit scoped
  /// timers, DESIGN.md §10.4), returned via RunResult::profile. Phase
  /// call counts are deterministic (serial == wave-parallel at any thread
  /// count) and, when metrics are also on, published as
  /// `profile.<phase>.calls` counters; wall-clock columns are
  /// host-dependent and stay out of every bit-identity contract.
  bool profile = false;

  /// Non-empty: write the full registry snapshot (JSON) here at run end.
  std::string metrics_json_path;
  /// Non-empty: write all per-round series side by side as CSV here.
  std::string series_csv_path;

  [[nodiscard]] bool metrics_enabled() const noexcept {
    return metrics || !metrics_json_path.empty() || !series_csv_path.empty();
  }
  [[nodiscard]] bool trace_enabled() const noexcept {
    return trace_sink != nullptr || !trace_path.empty();
  }
  [[nodiscard]] bool flight_enabled() const noexcept {
    return flight_recorder_rounds > 0;
  }
};

struct ExperimentConfig {
  Algorithm algorithm = Algorithm::kGlap;
  std::size_t pm_count = 1000;
  std::size_t vm_ratio = 2;  ///< VMs per PM (paper: 2, 3, 4)

  /// Evaluation window: 720 rounds of 2 simulated minutes = 24 h.
  sim::Round rounds = 720;
  /// Pre-run during which demand plays but no algorithm consolidates
  /// (GLAP trains + aggregates here — "700 more rounds" in the paper).
  /// Identical for every algorithm so all see the same evaluation-window
  /// demand streams and VM averages.
  sim::Round warmup_rounds = 700;

  std::uint64_t seed = 42;

  /// Engine execution threads. 1 = the serial reference engine; >1 runs
  /// rounds as deterministic reservation waves on a thread pool — results
  /// are bit-identical to serial for any thread count (see DESIGN.md).
  std::size_t engine_threads = 1;

  /// Event-driven scheduler (DESIGN.md §12): each round only the runnable
  /// set (active, non-quiescent nodes) is keyed and executed. Results are
  /// field-identical to the serial engine at the same configuration — the
  /// payoff comes from combining it with glap.quiescence, which shrinks
  /// the runnable set as nodes converge. Requires engine_threads == 1.
  bool event_engine = false;

  /// Rack topology: 0 disables (no racks, no switch accounting). When
  /// set, PMs are grouped into racks of this size, active top-of-rack
  /// switches are metered, and GLAP may use glap.rack_affinity.
  std::size_t rack_size = 0;
  /// Power draw of one live top-of-rack switch (rack_size > 0 only).
  double rack_switch_watts = 150.0;

  /// Record Fig. 5's per-round Q-table cosine similarity during warmup
  /// (GLAP only; costs a similarity sweep per round).
  bool track_convergence = false;
  /// Node pairs sampled per round for the convergence estimate.
  std::size_t convergence_pairs = 128;

  ObservabilityConfig observability;

  /// Message-level network model (DESIGN.md §13). Off by default: gossip
  /// then completes instantaneously as in the paper's evaluation. When
  /// network.enabled, exchanges route over the rack fabric (latency,
  /// bandwidth, loss, ToR contention) and the run requires
  /// engine_threads == 1 (serial or event engine).
  net::NetworkConfig network;

  cloud::DataCenterConfig datacenter;
  FleetMix fleet;
  ChurnConfig churn;
  trace::GoogleSynthConfig workload;
  OverlayKind overlay = OverlayKind::kCyclon;
  overlay::CyclonConfig cyclon;
  overlay::NewscastConfig newscast;
  core::GlapConfig glap;
  baselines::GrmpConfig grmp;
  baselines::EcoCloudConfig ecocloud;
  baselines::PabfdConfig pabfd;

  [[nodiscard]] std::size_t vm_count() const noexcept {
    return pm_count * vm_ratio;
  }

  /// "1000-3 GLAP seed=42" style label for reports.
  [[nodiscard]] std::string label() const;

  /// Fits GLAP's two learning phases inside the warmup window and aligns
  /// the consolidation start with the end of warmup (call after changing
  /// warmup_rounds).
  void fit_glap_phases_to_warmup() noexcept {
    glap.learning_rounds = std::min<sim::Round>(glap.learning_rounds,
                                                warmup_rounds / 2);
    glap.aggregation_rounds = std::min<sim::Round>(
        glap.aggregation_rounds, warmup_rounds - glap.learning_rounds);
    glap.consolidation_start_round = warmup_rounds;
  }
};

}  // namespace glap::harness
