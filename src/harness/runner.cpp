#include "harness/runner.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

#include "baselines/bfd.hpp"
#include "common/flight_recorder.hpp"
#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/tracing.hpp"
#include "core/glap.hpp"
#include "trace/demand_model.hpp"

namespace glap::harness {

std::string ExperimentConfig::label() const {
  std::ostringstream os;
  os << pm_count << '-' << vm_ratio << ' ' << to_string(algorithm)
     << " seed=" << seed;
  return os.str();
}

namespace {

/// Builds the per-entity spec vectors for a heterogeneous fleet; class
/// choice depends only on (seed, index), never on the algorithm.
template <typename Class, typename Spec>
std::vector<Spec> draw_specs(const std::vector<Class>& classes,
                             const Spec& fallback, std::size_t count,
                             Rng rng) {
  if (classes.empty()) return std::vector<Spec>(count, fallback);
  double total = 0.0;
  for (const auto& c : classes) {
    GLAP_REQUIRE(c.weight >= 0.0, "fleet class weight must be non-negative");
    total += c.weight;
  }
  GLAP_REQUIRE(total > 0.0, "fleet class weights must not all be zero");
  std::vector<Spec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    double pick = rng.uniform() * total;
    const Class* chosen = &classes.back();
    for (const auto& c : classes) {
      pick -= c.weight;
      if (pick < 0.0) {
        chosen = &c;
        break;
      }
    }
    specs.push_back(chosen->spec);
  }
  return specs;
}

/// Mean cosine similarity of Q-table pairs over sampled node pairs.
double sample_convergence(sim::Engine& engine,
                          sim::Engine::ProtocolSlot learning_slot,
                          std::size_t pair_count, Rng& rng) {
  const std::size_t n = engine.node_count();
  if (n < 2) return 1.0;
  RunningStats stats;
  for (std::size_t i = 0; i < pair_count; ++i) {
    const auto a = static_cast<sim::NodeId>(rng.bounded(n));
    auto b = static_cast<sim::NodeId>(rng.bounded(n));
    if (a == b) b = static_cast<sim::NodeId>((b + 1) % n);
    const auto& ta =
        engine.protocol_at<core::GossipLearningProtocol>(learning_slot, a)
            .tables();
    const auto& tb =
        engine.protocol_at<core::GossipLearningProtocol>(learning_slot, b)
            .tables();
    stats.add(core::cosine_similarity(ta, tb));
  }
  return stats.mean();
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& config) {
  GLAP_REQUIRE(config.pm_count > 0 && config.vm_ratio > 0,
               "experiment needs PMs and VMs");
  if (config.algorithm == Algorithm::kGlap)
    GLAP_REQUIRE(config.glap.learning_rounds + config.glap.aggregation_rounds <=
                     config.warmup_rounds,
                 "GLAP pre-phases must fit inside warmup_rounds "
                 "(call fit_glap_phases_to_warmup)");

  // --- Substrate construction (algorithm-independent) -------------------
  Rng fleet_rng(hash_combine(config.seed, hash_tag("fleet")));
  cloud::DataCenter dc(
      draw_specs(config.fleet.pm_classes, config.datacenter.pm_spec,
                 config.pm_count, fleet_rng.split("pm")),
      draw_specs(config.fleet.vm_classes, config.datacenter.vm_spec,
                 config.vm_count(), fleet_rng.split("vm")),
      config.datacenter);

  const trace::GoogleSynth synth(config.workload, config.seed);
  std::vector<trace::DemandModelPtr> models;
  models.reserve(config.vm_count());
  for (std::size_t v = 0; v < config.vm_count(); ++v)
    models.push_back(synth.make_model(v));

  Rng placement_rng(hash_combine(config.seed, hash_tag("placement")));
  dc.place_randomly(placement_rng);

  sim::Engine engine(config.pm_count, config.seed);
  if (config.engine_threads > 1) {
    engine.enable_parallel_execution(config.engine_threads);
    // Order-sensitive accounting is logged per shard during the round and
    // replayed in serial order at the quiescent point after each step.
    dc.set_deferred_accounting(true);
  }
  if (config.event_engine) {
    GLAP_REQUIRE(config.engine_threads == 1,
                 "event_engine requires engine_threads == 1");
    engine.enable_event_scheduler();
  }
  const core::QuiescenceConfig& quiesce = config.glap.quiescence;
  if (quiesce.enabled) {
    GLAP_REQUIRE(config.engine_threads == 1,
                 "quiescence requires engine_threads == 1");
    engine.enable_quiescence(quiesce.recheck_rounds);
    // Bridge data-center events onto parked nodes. The mapping is fixed:
    // kPower transitions already flow through Engine::set_status (which
    // un-parks), so the hook's kPower arm is only a safety net.
    dc.set_wake_hook(
        [&engine](cloud::PmId pm, cloud::DataCenter::WakeEvent event) {
          sim::WakeReason reason = sim::WakeReason::kStatus;
          switch (event) {
            case cloud::DataCenter::WakeEvent::kDemand:
              reason = sim::WakeReason::kDemand;
              break;
            case cloud::DataCenter::WakeEvent::kMigration:
              reason = sim::WakeReason::kMigration;
              break;
            case cloud::DataCenter::WakeEvent::kPower:
              reason = sim::WakeReason::kStatus;
              break;
          }
          engine.wake(static_cast<sim::NodeId>(pm), reason);
        },
        quiesce.demand_epsilon);
  }

  std::optional<cloud::RackTopology> topology;
  if (config.rack_size > 0)
    topology.emplace(config.pm_count, config.rack_size,
                     config.rack_switch_watts);

  // --- Network model (DESIGN.md §13) -------------------------------------
  // Message admission decisions depend on executed interaction order, which
  // the wave-parallel engine reorders; serial and event engines share the
  // same order, so those two are the supported pair.
  std::optional<net::NetworkModel> net_model;
  if (config.network.enabled) {
    GLAP_REQUIRE(config.engine_threads == 1,
                 "network model requires engine_threads == 1 "
                 "(serial or event engine)");
    const std::size_t net_rack = config.rack_size > 0
                                     ? config.rack_size
                                     : config.network.default_rack_size;
    net_model.emplace(config.pm_count, net_rack, config.network,
                      config.datacenter.round_seconds, config.seed);
    engine.set_net_model(&*net_model);
    if (config.network.migration_contention)
      dc.set_migration_network([&net_model](cloud::PmId from, cloud::PmId to,
                                            double mem_mb) {
        return net_model->migration_delay_seconds(
            static_cast<sim::NodeId>(from), static_cast<sim::NodeId>(to),
            mem_mb);
      });
  }

  // --- Observability -----------------------------------------------------
  // Sinks attach BEFORE protocol install so instrumented code resolves its
  // instruments from a registry that exists for the whole run. Off by
  // default: no registry, no trace log, one null check per instrumented
  // site.
  const ObservabilityConfig& obs = config.observability;
  std::shared_ptr<metrics::MetricsRegistry> registry;
  if (obs.metrics_enabled()) {
    registry = std::make_shared<metrics::MetricsRegistry>();
    // Pre-register the harness series (and shared instrument names) on the
    // driver thread; name-sorted output makes this cosmetic, but it keeps
    // all registration out of the engine's execution phase.
    registry->series("active_pms");
    registry->series("overloaded_pms");
    registry->series("migrations_round");
    registry->series("net_messages");
    registry->series("net_bytes");
  }
  const trace::SamplingPolicy sampling{obs.trace_sample_shuffle,
                                       obs.trace_sample_net, config.seed};
  std::ofstream trace_file;
  std::optional<trace::TraceLog> trace_log;
  if (obs.trace_sink != nullptr) {
    trace_log.emplace(obs.trace_sink, obs.trace_format, sampling);
  } else if (!obs.trace_path.empty()) {
    // Binary mode either way: GTB needs it, and JSONL never emits '\r'.
    trace_file.open(obs.trace_path, std::ios::binary | std::ios::trunc);
    GLAP_REQUIRE(trace_file.is_open(), "cannot open trace_path for writing");
    trace_log.emplace(&trace_file, obs.trace_format, sampling);
  } else if (obs.flight_enabled()) {
    // No file sink, but the always-on flight recorder still needs the
    // event stream: a sink-less log GTB-encodes straight into the ring.
    trace_log.emplace(nullptr, trace::Format::kGtb, sampling);
  }
  std::optional<flight::FlightRecorder> flight;
  if (obs.flight_enabled() && trace_log) {
    flight.emplace(obs.flight_recorder_rounds);
    flight->set_registry(registry.get());
    trace_log->set_flight_recorder(&*flight);
  }
  trace::TraceLog* trace = trace_log ? &*trace_log : nullptr;
  engine.set_telemetry(registry.get(), trace);
  dc.set_telemetry(registry.get(), trace);
  if (net_model) net_model->set_telemetry(registry.get(), trace);
  std::unique_ptr<prof::PhaseProfiler> profiler;
  if (obs.profile) {
    profiler = std::make_unique<prof::PhaseProfiler>();
    engine.set_profiler(profiler.get());
  }

  // --- Protocol stack ----------------------------------------------------
  auto install_overlay = [&] {
    return config.overlay == OverlayKind::kNewscast
               ? overlay::NewscastProtocol::install(engine, config.newscast,
                                                    config.seed)
               : overlay::CyclonProtocol::install(engine, config.cyclon,
                                                  config.seed);
  };
  // Readable phase labels for the profile report: `execute.<protocol>`
  // per installed slot instead of the positional slot index.
  auto label_slot = [&](sim::Engine::ProtocolSlot slot, const char* name) {
    if (profiler)
      profiler->set_label(prof::PhaseProfiler::kFirstSlot + slot,
                          std::string("execute.") + name);
  };
  const char* overlay_name =
      config.overlay == OverlayKind::kNewscast ? "newscast" : "cyclon";
  std::optional<core::GlapSlots> glap_slots;
  switch (config.algorithm) {
    case Algorithm::kGlap:
      glap_slots = core::install_glap_on(engine, dc, config.glap,
                                         install_overlay(), config.seed,
                                         topology ? &*topology : nullptr);
      label_slot(glap_slots->overlay, overlay_name);
      label_slot(glap_slots->learning, "learning");
      label_slot(glap_slots->consolidation, "consolidation");
      break;
    case Algorithm::kGrmp: {
      const auto overlay_slot = install_overlay();
      label_slot(overlay_slot, overlay_name);
      label_slot(baselines::GrmpProtocol::install(engine, config.grmp, dc,
                                                  overlay_slot),
                 "grmp");
      break;
    }
    case Algorithm::kEcoCloud:
      label_slot(baselines::EcoCloudProtocol::install(engine, config.ecocloud,
                                                      dc, config.seed),
                 "ecocloud");
      break;
    case Algorithm::kPabfd:
      label_slot(baselines::PabfdManager::install(engine, config.pabfd, dc),
                 "pabfd");
      break;
    case Algorithm::kNone:
      break;
  }

  // GLAP's consolidation waits for learning to go idle; every baseline
  // must equally sit out the warmup so all algorithms start consolidating
  // at the same instant. Baseline warmup idling is enforced here by
  // simply not stepping their protocols during warmup (see below).
  const bool baseline_idles_in_warmup =
      config.algorithm != Algorithm::kGlap;

  RunResult result;
  Rng convergence_rng(hash_combine(config.seed, hash_tag("convergence")));

  std::vector<Resources> demands(config.vm_count());
  auto advance_demands = [&] {
    for (std::size_t v = 0; v < demands.size(); ++v)
      demands[v] = models[v]->next().clamped(0.0, 1.0);
    dc.observe_demands(demands);
  };

  // --- Churn machinery -----------------------------------------------------
  // The event stream (who departs/arrives when) is a pure function of the
  // seed — identical for every algorithm. Arrival *placement* necessarily
  // depends on cluster state, so it draws from a separate stream to keep
  // the event stream aligned across algorithms.
  Rng churn_rng(hash_combine(config.seed, hash_tag("churn")));
  Rng churn_place_rng(hash_combine(config.seed, hash_tag("churn-place")));
  auto place_arrival = [&](cloud::VmId vm) -> bool {
    // Admission by nominal allocations among powered-on PMs; wake one
    // sleeping PM when nothing fits.
    auto allocated_of = [&](cloud::PmId p) {
      Resources sum;
      for (cloud::VmId hosted : dc.pm(p).vms())
        sum += dc.vm(hosted).spec().capacity();
      return sum;
    };
    auto fits = [&](cloud::PmId p) {
      return (allocated_of(p) + dc.vm(vm).spec().capacity())
          .fits_within(dc.pm(p).spec().capacity());
    };
    for (std::size_t attempt = 0; attempt < dc.pm_count(); ++attempt) {
      const auto p =
          static_cast<cloud::PmId>(churn_place_rng.bounded(dc.pm_count()));
      if (!dc.pm_on(p) || !fits(p)) continue;
      dc.place(vm, p);
      return true;
    }
    for (cloud::PmId p = 0; p < dc.pm_count(); ++p) {
      if (!dc.pm_on(p) && dc.pm(p).empty()) {
        dc.set_power(p, cloud::PmPower::kOn);
        engine.set_status(static_cast<sim::NodeId>(p),
                          sim::NodeStatus::kActive);
        dc.place(vm, p);
        return true;
      }
      if (dc.pm_on(p) && fits(p)) {
        dc.place(vm, p);
        return true;
      }
    }
    return false;  // full cluster: the arrival is refused this round
  };

  std::uint64_t churn_events_since_relearn = 0;
  sim::Round rounds_since_relearn = 0;
  auto churn_step = [&] {
    if (!config.churn.enabled) return;
    for (cloud::VmId v = 0; v < dc.vm_count(); ++v) {
      if (dc.is_placed(v)) {
        if (churn_rng.bernoulli(config.churn.departure_prob)) {
          dc.depart(v);
          ++churn_events_since_relearn;
        }
      } else if (churn_rng.bernoulli(config.churn.arrival_prob)) {
        if (place_arrival(v)) ++churn_events_since_relearn;
      }
    }
  };

  auto maybe_relearn = [&] {
    if (!config.churn.enabled || !config.churn.glap_relearn || !glap_slots)
      return;
    ++rounds_since_relearn;
    if (rounds_since_relearn < config.churn.relearn_min_interval) return;
    const double rate =
        static_cast<double>(churn_events_since_relearn) /
        (static_cast<double>(dc.vm_count()) * rounds_since_relearn);
    if (rate < config.churn.relearn_rate_threshold) return;
    for (sim::NodeId n = 0; n < engine.node_count(); ++n)
      engine.protocol_at<core::GossipLearningProtocol>(glap_slots->learning, n)
          .retrigger(config.churn.relearn_learning_rounds,
                     config.churn.relearn_aggregation_rounds);
    // A fleet-wide phase reset invalidates every park decision.
    engine.wake_all(sim::WakeReason::kRelearn);
    ++result.relearn_triggers;
    if (trace != nullptr) trace->relearn(engine.current_round());
    churn_events_since_relearn = 0;
    rounds_since_relearn = 0;
  };

  // Initial partial placement: depart a deterministic random subset.
  if (config.churn.enabled && config.churn.initial_placed_fraction < 1.0) {
    for (cloud::VmId v = 0; v < dc.vm_count(); ++v)
      if (!churn_rng.bernoulli(config.churn.initial_placed_fraction))
        dc.depart(v);
  }

  // Crash dumping arms only now — after every config-validation
  // GLAP_REQUIRE and sink setup above — so an expected precondition
  // failure leaves no stray dump file. From here to run end, any
  // invariant failure or fatal signal dumps the flight-recorder ring to
  // flight_recorder_path (plus `.what.txt` / `.metrics.json` sidecars).
  const flight::CrashDumpScope crash_scope(
      flight ? &*flight : nullptr, obs.flight_recorder_path);

  // --- Warmup ------------------------------------------------------------
  for (sim::Round r = 0; r < config.warmup_rounds; ++r) {
    advance_demands();
    if (!baseline_idles_in_warmup) {
      if (trace != nullptr) trace->begin_round(engine.current_round());
      if (net_model) net_model->begin_round(engine.current_round());
      engine.step();
      {
        prof::PhaseScope timer(profiler.get(), prof::PhaseProfiler::kCommit);
        dc.commit_deferred_accounting();
        if (registry) registry->commit_round();
        if (trace != nullptr) trace->commit_round();
      }
      if (config.track_convergence && glap_slots) {
        result.convergence.push_back(
            sample_convergence(engine, glap_slots->learning,
                               config.convergence_pairs, convergence_rng));
        if (trace != nullptr)
          trace->qsim(engine.current_round() - 1, result.convergence.back());
      }
    }
    // Note: no dc.end_round() — warmup time does not count toward SLA,
    // energy, or migration metrics; demand averages still accumulate.
  }

  // --- Evaluation window ---------------------------------------------------
  const std::uint64_t warmup_messages = engine.network().messages();
  const std::uint64_t warmup_bytes = engine.network().bytes();

  std::uint64_t prev_messages = engine.network().messages();
  std::uint64_t prev_bytes = engine.network().bytes();

  for (sim::Round r = 0; r < config.rounds; ++r) {
    const std::uint64_t round = engine.current_round();
    if (trace != nullptr) trace->begin_round(round);
    advance_demands();
    churn_step();
    maybe_relearn();
    // Flush events the churn machinery emitted on the driver thread (PM
    // wakes) before any interaction events join the buffers — driver-phase
    // and engine-phase events must not share a sort batch, because the
    // driver context's tags are not part of the determinism contract.
    if (trace != nullptr) trace->commit_round();
    if (net_model) net_model->begin_round(round);
    engine.step();
    {
      prof::PhaseScope timer(profiler.get(), prof::PhaseProfiler::kCommit);
      dc.commit_deferred_accounting();
      if (registry) registry->commit_round();
      if (trace != nullptr) trace->commit_round();
    }

    RoundSample sample;
    sample.round = r;
    sample.active_pms = static_cast<std::uint32_t>(dc.active_pm_count());
    sample.overloaded_pms =
        static_cast<std::uint32_t>(dc.overloaded_pm_count());
    sample.migrations_round =
        static_cast<std::uint32_t>(dc.migrations_this_round());
    sample.migrations_cum = dc.total_migrations();
    sample.migration_energy_j = dc.migration_energy_joules();
    sample.quiescent_pms = static_cast<std::uint32_t>(engine.quiescent_count());
    if (topology) {
      sample.active_racks =
          static_cast<std::uint32_t>(topology->active_racks(dc));
      result.switch_energy_j +=
          topology->switch_energy_joules(dc, config.datacenter.round_seconds);
    }
    result.rounds.push_back(sample);

    const std::uint64_t messages = engine.network().messages();
    const std::uint64_t bytes = engine.network().bytes();
    if (registry) {
      registry->series("active_pms")->append(sample.active_pms);
      registry->series("overloaded_pms")->append(sample.overloaded_pms);
      registry->series("migrations_round")->append(sample.migrations_round);
      registry->series("net_messages")
          ->append(static_cast<double>(messages - prev_messages));
      registry->series("net_bytes")
          ->append(static_cast<double>(bytes - prev_bytes));
    }
    if (trace != nullptr) {
      trace->round_summary(round, sample.active_pms, sample.overloaded_pms,
                           sample.migrations_round, messages - prev_messages,
                           bytes - prev_bytes);
      for (cloud::PmId p = 0; p < dc.pm_count(); ++p)
        if (dc.pm_on(p) && dc.overloaded(p))
          trace->overload(round, static_cast<std::int64_t>(p),
                          dc.current_utilization(p).cpu);
      if (obs.trace_shard_detail)
        trace->shard_bytes(round, engine.network().bytes_per_shard());
      if (net_model) net_model->trace_queue_depths(round);
    }
    prev_messages = messages;
    prev_bytes = bytes;

    dc.end_round();
  }

  // --- Final validity check ------------------------------------------------
  // No protocol may leave a VM on a sleeping PM; migrations and power
  // transitions go through DataCenter, but this guards protocol logic
  // errors (e.g. sleeping a PM another thread of control just filled).
  for (cloud::VmId v = 0; v < dc.vm_count(); ++v)
    if (dc.is_placed(v))
      GLAP_ASSERT(dc.pm_on(dc.host_of(v)),
                  "vm stranded on a sleeping pm after the run");

  // --- Run-level aggregates ------------------------------------------------
  result.total_migrations = dc.total_migrations();
  result.migration_energy_j = dc.migration_energy_joules();
  result.total_energy_j = dc.total_energy_joules();
  result.slavo = dc.sla().slavo();
  result.slalm = dc.sla().slalm();
  result.slav = dc.sla().slav();
  result.messages = engine.network().messages() - warmup_messages;
  result.bytes = engine.network().bytes() - warmup_bytes;
  result.final_active_pms = static_cast<std::uint32_t>(dc.active_pm_count());
  result.final_overloaded_pms =
      static_cast<std::uint32_t>(dc.overloaded_pm_count());
  result.final_bfd_bins =
      static_cast<std::uint32_t>(baselines::bfd_bin_count(dc));

  if (net_model) {
    const net::NetworkModel::Totals& net_totals = net_model->totals();
    result.net_sends = net_totals.sends;
    result.net_delivered = net_totals.delivered;
    result.net_delayed = net_totals.delayed;
    result.net_dropped_loss = net_totals.dropped_loss;
    result.net_dropped_congestion = net_totals.dropped_congestion;
  }

  if (profiler) {
    result.profile = profiler->totals();
    // Deterministic phase call counts join the metric snapshot, so the
    // existing serial-vs-parallel bit-identity checks cover them. The
    // select count and all wall-clock columns stay out (execution-mode
    // and host dependent respectively).
    if (registry) {
      for (const auto& phase : result.profile)
        if (phase.deterministic)
          registry->counter("profile." + phase.label + ".calls")
              ->inc(phase.calls);
    }
  }

  if (registry) {
    registry->gauge("slavo")->set(result.slavo);
    registry->gauge("slalm")->set(result.slalm);
    registry->gauge("slav")->set(result.slav);
    registry->gauge("total_energy_j")->set(result.total_energy_j);
    registry->gauge("migration_energy_j")->set(result.migration_energy_j);
    if (!obs.metrics_json_path.empty()) {
      std::ofstream out(obs.metrics_json_path);
      GLAP_REQUIRE(out.is_open(), "cannot open metrics_json_path");
      registry->write_json(out);
    }
    if (!obs.series_csv_path.empty()) {
      std::ofstream out(obs.series_csv_path);
      GLAP_REQUIRE(out.is_open(), "cannot open series_csv_path");
      registry->write_series_csv(out);
    }
    result.metrics = registry;
  }

  // CI hook: persist the flight-recorder ring at normal run end too, so
  // the pipeline can verify crash dumps parse without crashing a run.
  if (flight && !obs.flight_dump_path.empty())
    GLAP_REQUIRE(flight->dump(obs.flight_dump_path),
                 "cannot write flight_dump_path");

  return result;
}

}  // namespace glap::harness
