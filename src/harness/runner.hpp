// Experiment runner: builds the substrate (data center, demand streams,
// overlay, protocols) for one configuration, drives warmup + evaluation
// rounds, and samples the metrics the paper reports.
//
// Fairness guarantees (paper §V-A): the initial placement and every VM's
// demand stream depend only on (seed, pm_count, vm_ratio) — never on the
// algorithm — so all algorithms replay identical workloads from identical
// starting states.
#pragma once

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"

namespace glap::harness {

/// Runs one experiment to completion. Deterministic in config.seed.
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& config);

}  // namespace glap::harness
