#include "harness/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/assert.hpp"
#include "common/json.hpp"

namespace glap::harness {

BenchReport::BenchReport(std::string bench, std::string title)
    : bench_(std::move(bench)), title_(std::move(title)) {}

void BenchReport::add_table(const std::string& name,
                            std::vector<std::string> columns,
                            std::vector<std::vector<std::string>> rows) {
  for (const auto& row : rows)
    GLAP_REQUIRE(row.size() == columns.size(),
                 "report table row width must match its columns");
  tables_.push_back({name, std::move(columns), std::move(rows)});
}

void BenchReport::add_headline(const std::string& key,
                               const std::string& value) {
  headlines_.emplace_back(key, value);
}

std::string BenchReport::results_dir() {
  const char* env = std::getenv("GLAP_RESULTS_DIR");
  return env != nullptr && *env != '\0' ? env : "results";
}

std::string BenchReport::write() const {
  const std::filesystem::path dir(results_dir());
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = dir / (bench_ + ".json");

  std::ofstream out(path);
  GLAP_REQUIRE(out.is_open(), "cannot open bench results file for writing");
  JsonWriter w(out);
  w.begin_object();
  w.member("bench", bench_);
  w.member("title", title_);
  w.key("scale").begin_object();
  w.key("sizes").begin_array();
  for (const std::size_t s : scale_.sizes) w.value(std::uint64_t{s});
  w.end_array();
  w.key("ratios").begin_array();
  for (const std::size_t r : scale_.ratios) w.value(std::uint64_t{r});
  w.end_array();
  w.member("repetitions", std::uint64_t{scale_.repetitions});
  w.member("rounds", std::uint64_t{scale_.rounds});
  w.member("warmup_rounds", std::uint64_t{scale_.warmup_rounds});
  w.end_object();
  w.key("tables").begin_array();
  for (const Table& t : tables_) {
    w.begin_object();
    w.member("name", t.name);
    w.key("columns").begin_array();
    for (const auto& c : t.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const auto& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("headlines").begin_object();
  for (const auto& [key, value] : headlines_) w.member(key, value);
  w.end_object();
  w.end_object();
  out << '\n';

  std::printf("[results] wrote %s\n", path.string().c_str());
  return path.string();
}

}  // namespace glap::harness
