// Sweep execution: runs a set of experiment cells × repetitions on a
// thread pool and aggregates repeated runs into the median/p10/p90
// summaries the paper plots.
#pragma once

#include <functional>
#include <vector>

#include "common/thread_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "harness/runner.hpp"

namespace glap::harness {

/// Results of all repetitions of one experiment cell.
struct CellResult {
  ExperimentConfig config;  ///< config of the first repetition
  std::vector<RunResult> runs;

  /// Pools a per-round series across all runs and summarizes it — the
  /// paper's "median, 10th and 90th percentiles ... at the end of each
  /// round in all the executions" (Figs. 7-8).
  [[nodiscard]] PercentileSummary pooled_round_summary(
      const std::function<std::vector<double>(const RunResult&)>& series)
      const;

  /// Mean of a per-run scalar across repetitions (Table I, Figs. 6, 10).
  [[nodiscard]] double mean_of(
      const std::function<double(const RunResult&)>& metric) const;
};

/// Runs `repetitions` of `base` (seeds base.seed, base.seed+1, …) in
/// parallel on `pool`.
[[nodiscard]] CellResult run_cell(const ExperimentConfig& base,
                                  std::size_t repetitions, ThreadPool& pool);

/// Runs many cells × repetitions, all in parallel; preserves cell order.
[[nodiscard]] std::vector<CellResult> run_cells(
    const std::vector<ExperimentConfig>& cells, std::size_t repetitions,
    ThreadPool& pool);

/// Writes every repetition's per-round samples as CSV (columns: rep,
/// round, active_pms, overloaded_pms, migrations_round, migrations_cum,
/// migration_energy_j, active_racks) — the machine-readable per-round sink
/// behind examples/sweep_cli and external plotting.
void write_round_series_csv(const CellResult& cell, std::ostream& out);

}  // namespace glap::harness
