#include "harness/sweep.hpp"

#include <ostream>

#include "common/csv.hpp"
#include "common/json.hpp"

namespace glap::harness {

PercentileSummary CellResult::pooled_round_summary(
    const std::function<std::vector<double>(const RunResult&)>& series)
    const {
  std::vector<double> pooled;
  for (const auto& run : runs) {
    auto s = series(run);
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  return summarize(std::move(pooled));
}

double CellResult::mean_of(
    const std::function<double(const RunResult&)>& metric) const {
  RunningStats stats;
  for (const auto& run : runs) stats.add(metric(run));
  return stats.mean();
}

CellResult run_cell(const ExperimentConfig& base, std::size_t repetitions,
                    ThreadPool& pool) {
  GLAP_REQUIRE(repetitions > 0, "need at least one repetition");
  CellResult cell;
  cell.config = base;
  cell.runs.resize(repetitions);
  parallel_for(pool, repetitions, [&](std::size_t rep) {
    ExperimentConfig config = base;
    config.seed = base.seed + rep;
    cell.runs[rep] = run_experiment(config);
  });
  return cell;
}

std::vector<CellResult> run_cells(const std::vector<ExperimentConfig>& cells,
                                  std::size_t repetitions, ThreadPool& pool) {
  GLAP_REQUIRE(repetitions > 0, "need at least one repetition");
  std::vector<CellResult> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].config = cells[c];
    results[c].runs.resize(repetitions);
  }
  // One flat index space over cells × repetitions so a straggler cell
  // cannot serialize the tail; parallel_for also owns error propagation.
  parallel_for(pool, cells.size() * repetitions, [&](std::size_t i) {
    const std::size_t c = i / repetitions;
    const std::size_t rep = i % repetitions;
    ExperimentConfig config = cells[c];
    config.seed = cells[c].seed + rep;
    results[c].runs[rep] = run_experiment(config);
  });
  return results;
}

void write_round_series_csv(const CellResult& cell, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_row({"rep", "round", "active_pms", "overloaded_pms",
                 "migrations_round", "migrations_cum", "migration_energy_j",
                 "active_racks"});
  for (std::size_t rep = 0; rep < cell.runs.size(); ++rep) {
    for (const RoundSample& s : cell.runs[rep].rounds) {
      csv.write_row({std::to_string(rep), std::to_string(s.round),
                     std::to_string(s.active_pms),
                     std::to_string(s.overloaded_pms),
                     std::to_string(s.migrations_round),
                     std::to_string(s.migrations_cum),
                     json_double(s.migration_energy_j),
                     std::to_string(s.active_racks)});
    }
  }
}

}  // namespace glap::harness
