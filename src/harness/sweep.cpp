#include "harness/sweep.hpp"

#include <mutex>

namespace glap::harness {

PercentileSummary CellResult::pooled_round_summary(
    const std::function<std::vector<double>(const RunResult&)>& series)
    const {
  std::vector<double> pooled;
  for (const auto& run : runs) {
    auto s = series(run);
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  return summarize(std::move(pooled));
}

double CellResult::mean_of(
    const std::function<double(const RunResult&)>& metric) const {
  RunningStats stats;
  for (const auto& run : runs) stats.add(metric(run));
  return stats.mean();
}

CellResult run_cell(const ExperimentConfig& base, std::size_t repetitions,
                    ThreadPool& pool) {
  GLAP_REQUIRE(repetitions > 0, "need at least one repetition");
  CellResult cell;
  cell.config = base;
  cell.runs.resize(repetitions);
  parallel_for(pool, repetitions, [&](std::size_t rep) {
    ExperimentConfig config = base;
    config.seed = base.seed + rep;
    cell.runs[rep] = run_experiment(config);
  });
  return cell;
}

std::vector<CellResult> run_cells(const std::vector<ExperimentConfig>& cells,
                                  std::size_t repetitions, ThreadPool& pool) {
  GLAP_REQUIRE(repetitions > 0, "need at least one repetition");
  std::vector<CellResult> results(cells.size());
  std::vector<std::future<void>> futures;
  futures.reserve(cells.size() * repetitions);
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].config = cells[c];
    results[c].runs.resize(repetitions);
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      futures.push_back(pool.submit([&, c, rep] {
        try {
          ExperimentConfig config = cells[c];
          config.seed = cells[c].seed + rep;
          results[c].runs[rep] = run_experiment(config);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }));
    }
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace glap::harness
