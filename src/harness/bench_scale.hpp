// Bench-runtime scaling. The paper's full sweep (3 sizes × 3 ratios × 4
// algorithms × 20 repetitions × 1420 rounds) is minutes of CPU time; the
// bench binaries default to a reduced-but-shape-preserving configuration
// and honour two environment variables for full-fidelity runs:
//   GLAP_BENCH_SCALE=full    — paper-size clusters and repetition count
//   GLAP_BENCH_REPS=<n>      — override the repetition count
#pragma once

#include <cstddef>
#include <vector>

#include "harness/experiment.hpp"

namespace glap::harness {

struct BenchScale {
  std::vector<std::size_t> sizes;   ///< cluster sizes to sweep
  std::vector<std::size_t> ratios;  ///< VM:PM ratios to sweep
  std::size_t repetitions;
  sim::Round rounds;
  sim::Round warmup_rounds;
};

/// Reads GLAP_BENCH_SCALE / GLAP_BENCH_REPS and returns the sweep shape.
/// Default: sizes {150}, ratios {2, 3, 4}, 2 repetitions, 160+160 rounds
/// (sized for a single-core CI box). "full": sizes {500, 1000, 2000},
/// 5 repetitions (20 with GLAP_BENCH_REPS=20), 720+700 rounds.
[[nodiscard]] BenchScale bench_scale_from_env();

/// Applies the scale's round counts to a config (and refits GLAP phases).
void apply_scale(ExperimentConfig& config, const BenchScale& scale);

}  // namespace glap::harness
