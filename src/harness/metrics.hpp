// Per-run results sampled by the experiment runner: one RoundSample per
// evaluation round (the paper samples "at the end of each round") plus
// run-level aggregates for Table I and Figs. 6-10.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/stats.hpp"

namespace glap::harness {

struct RoundSample {
  std::uint32_t round = 0;            ///< evaluation-window round index
  std::uint32_t active_pms = 0;       ///< powered-on PMs
  std::uint32_t overloaded_pms = 0;   ///< powered-on PMs over capacity
  std::uint64_t migrations_cum = 0;   ///< cumulative migrations so far
  std::uint32_t migrations_round = 0; ///< migrations within this round
  double migration_energy_j = 0.0;    ///< cumulative Eq.-3 energy
  std::uint32_t active_racks = 0;     ///< racks with a live switch (0 when
                                      ///< topology is disabled)
  std::uint32_t quiescent_pms = 0;    ///< nodes parked by can_quiesce votes
                                      ///< (0 unless glap.quiescence.enabled)
};

struct RunResult {
  std::vector<RoundSample> rounds;

  // Evaluation-window totals.
  std::uint64_t total_migrations = 0;
  double migration_energy_j = 0.0;
  double total_energy_j = 0.0;
  double slavo = 0.0;
  double slalm = 0.0;
  double slav = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  std::uint32_t final_active_pms = 0;
  std::uint32_t final_overloaded_pms = 0;
  /// BFD packing of the last round's VM usage (Fig. 6 baseline).
  std::uint32_t final_bfd_bins = 0;
  /// Times the churn oracle re-triggered GLAP's learning phases.
  std::uint32_t relearn_triggers = 0;
  /// Top-of-rack switch energy over the evaluation window (J); 0 when the
  /// topology is disabled.
  double switch_energy_j = 0.0;

  // Network-model totals (DESIGN.md §13; all 0 when network.enabled is
  // off). Counts cover warmup + evaluation — every admitted round-trip.
  std::uint64_t net_sends = 0;
  std::uint64_t net_delivered = 0;           ///< same-round deliveries
  std::uint64_t net_delayed = 0;             ///< deferred ≥1 round
  std::uint64_t net_dropped_loss = 0;        ///< random loss drops
  std::uint64_t net_dropped_congestion = 0;  ///< queue-overflow drops

  [[nodiscard]] double mean_active_racks() const {
    RunningStats st;
    for (const auto& s : rounds) st.add(s.active_racks);
    return st.mean();
  }

  /// Mean parked-node count over the evaluation window (quiescence runs).
  [[nodiscard]] double mean_quiescent_pms() const {
    RunningStats st;
    for (const auto& s : rounds) st.add(s.quiescent_pms);
    return st.mean();
  }

  /// Mean per-round Q-table cosine similarity across sampled PM pairs,
  /// one entry per warmup round (filled when track_convergence is set).
  std::vector<double> convergence;

  /// The run's metric registry (counters/gauges/histograms/series), or
  /// null when ObservabilityConfig::metrics_enabled() was false.
  std::shared_ptr<metrics::MetricsRegistry> metrics;

  /// Per-phase engine profile (empty unless ObservabilityConfig::profile).
  /// Entries with `deterministic` set carry call counts that are a pure
  /// function of (config, seed); wall_ns is always host-dependent.
  std::vector<prof::PhaseProfiler::PhaseTotals> profile;

  // Derived helpers -------------------------------------------------------

  [[nodiscard]] std::vector<double> overloaded_series() const {
    std::vector<double> out;
    out.reserve(rounds.size());
    for (const auto& s : rounds) out.push_back(s.overloaded_pms);
    return out;
  }
  [[nodiscard]] std::vector<double> active_series() const {
    std::vector<double> out;
    out.reserve(rounds.size());
    for (const auto& s : rounds) out.push_back(s.active_pms);
    return out;
  }
  [[nodiscard]] std::vector<double> migrations_per_round_series() const {
    std::vector<double> out;
    out.reserve(rounds.size());
    for (const auto& s : rounds) out.push_back(s.migrations_round);
    return out;
  }

  [[nodiscard]] double mean_overloaded() const {
    RunningStats st;
    for (const auto& s : rounds) st.add(s.overloaded_pms);
    return st.mean();
  }
  [[nodiscard]] double mean_active() const {
    RunningStats st;
    for (const auto& s : rounds) st.add(s.active_pms);
    return st.mean();
  }
  /// Mean per-round fraction of active PMs that are overloaded (Fig. 6).
  [[nodiscard]] double mean_overloaded_fraction() const {
    RunningStats st;
    for (const auto& s : rounds)
      if (s.active_pms > 0)
        st.add(static_cast<double>(s.overloaded_pms) / s.active_pms);
    return st.mean();
  }
};

}  // namespace glap::harness
