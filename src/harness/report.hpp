// Machine-readable bench results: every figure/table bench binary mirrors
// the tables it prints into results/<bench>.json so downstream tooling
// (scripts/regen_experiments.py, the CI docs-drift stage) can rebuild the
// EXPERIMENTS.md tables without scraping console output.
//
// Cell values are stored as *preformatted strings* — the C++ side owns all
// number formatting, so a regenerated document is byte-identical to one
// built from the same JSON regardless of the consumer's float printing.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "harness/bench_scale.hpp"

namespace glap::harness {

class BenchReport {
 public:
  /// `bench` names the output file (results/<bench>.json); `title` is the
  /// human-readable headline (mirrors the console banner).
  BenchReport(std::string bench, std::string title);

  void set_scale(const BenchScale& scale) { scale_ = scale; }

  /// Adds a named table; rows are preformatted cell strings.
  void add_table(const std::string& name, std::vector<std::string> columns,
                 std::vector<std::vector<std::string>> rows);

  /// Mirrors a console table verbatim.
  void add_table(const std::string& name, const ConsoleTable& table) {
    add_table(name, table.header(), table.rows());
  }

  /// Adds a key → preformatted-value headline (reduction percentages,
  /// totals — the numbers EXPERIMENTS.md quotes inline).
  void add_headline(const std::string& key, const std::string& value);

  /// Directory bench results land in: $GLAP_RESULTS_DIR or "results"
  /// (created on demand).
  [[nodiscard]] static std::string results_dir();

  /// Writes results_dir()/<bench>.json and returns the path written.
  std::string write() const;

 private:
  struct Table {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string bench_;
  std::string title_;
  BenchScale scale_{};
  std::vector<Table> tables_;
  std::vector<std::pair<std::string, std::string>> headlines_;
};

}  // namespace glap::harness
