// Static k-regular-ish random overlay: each node gets k random distinct
// neighbors at install time and the set never changes. Used as a simple,
// analyzable NeighborProvider in tests and as an ablation against Cyclon
// (no self-healing: dead neighbors are skipped, not replaced).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "overlay/neighbor_provider.hpp"

namespace glap::overlay {

struct RandomGraphConfig {
  std::size_t degree = 20;
};

class RandomGraphProtocol final : public NeighborProvider {
 public:
  RandomGraphProtocol(std::vector<sim::NodeId> neighbors, Rng rng)
      : neighbors_(std::move(neighbors)), rng_(rng) {}

  /// Installs the overlay on every node and returns its slot.
  static sim::Engine::ProtocolSlot install(sim::Engine& engine,
                                           const RandomGraphConfig& config,
                                           std::uint64_t seed);

  /// The static overlay does nothing per round, so it touches no one.
  void select_peers(sim::Engine&, sim::NodeId, sim::PeerSet&) override {}
  void execute(sim::Engine&, sim::NodeId, const sim::PeerSet&) override {}

  std::optional<sim::NodeId> sample_active_peer(sim::Engine& engine,
                                                sim::NodeId self) override;

  [[nodiscard]] std::vector<sim::NodeId> neighbor_view() const override {
    return neighbors_;
  }

  void append_peer_candidates(sim::PeerSet& out) const override {
    // sample_active_peer may probe any static neighbor.
    for (sim::NodeId id : neighbors_) out.add(id);
  }

 private:
  std::vector<sim::NodeId> neighbors_;
  Rng rng_;
};

}  // namespace glap::overlay
