// Common interface for peer-sampling overlays. Consolidation protocols
// (GLAP, GRMP, EcoCloud) only need "give me a random live neighbor", so
// they program against this interface and work over either the dynamic
// Cyclon overlay or the static random graph used in tests.
#pragma once

#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace glap::overlay {

class NeighborProvider : public sim::Protocol {
 public:
  /// Returns a uniformly random *active* neighbor, or nullopt when none of
  /// the current neighbors are active. Implementations may prune dead
  /// entries as a side effect.
  virtual std::optional<sim::NodeId> sample_active_peer(sim::Engine& engine,
                                                        sim::NodeId self) = 0;

  /// Snapshot of the current neighbor set (may include dead entries).
  [[nodiscard]] virtual std::vector<sim::NodeId> neighbor_view() const = 0;

  /// Appends a superset of every id sample_active_peer may probe, prune,
  /// or return to `out`, without mutating anything. Consumers call this
  /// from select_peers to declare the footprint of a later sample call.
  virtual void append_peer_candidates(sim::PeerSet& out) const = 0;
};

}  // namespace glap::overlay
