// Newscast — the other classic gossip membership protocol (Jelasity &
// van Steen). Included as an alternative NeighborProvider so GLAP's
// dependence on the peer-sampling layer can be ablated against Cyclon.
//
// Each node caches up to c "news items" (peer id, logical timestamp).
// Once per round it picks a random cache member; the two union their
// caches plus fresh self-entries and each keeps the c freshest distinct
// items. Compared to Cyclon, Newscast refreshes aggressively (timestamps
// dominate) which yields faster dissemination but a more skewed
// in-degree distribution.
#pragma once

#include <cstddef>
#include <optional>

#include "common/rng.hpp"
#include "overlay/neighbor_provider.hpp"

namespace glap::metrics {
class Counter;
}

namespace glap::overlay {

struct NewscastConfig {
  std::size_t cache_size = 20;
  std::size_t dead_peer_retries = 3;
};

class NewscastProtocol final : public NeighborProvider {
 public:
  struct Item {
    sim::NodeId id;
    std::uint32_t timestamp;
  };

  NewscastProtocol(NewscastConfig config, Rng rng);

  static sim::Engine::ProtocolSlot install(sim::Engine& engine,
                                           const NewscastConfig& config,
                                           std::uint64_t seed);

  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

  std::optional<sim::NodeId> sample_active_peer(sim::Engine& engine,
                                                sim::NodeId self) override;

  /// Quiescence vote: always yes (same contract as CyclonProtocol — the
  /// membership layer never keeps a converged node awake).
  [[nodiscard]] bool can_quiesce(const sim::Engine& /*engine*/,
                                 sim::NodeId /*self*/) const override {
    return true;
  }

  [[nodiscard]] std::vector<sim::NodeId> neighbor_view() const override;

  void append_peer_candidates(sim::PeerSet& out) const override;

  /// Passive side: merges the initiator's items (plus a fresh entry for
  /// the initiator itself) and returns a snapshot of the local cache
  /// taken *before* the merge.
  std::vector<Item> handle_exchange(sim::NodeId self, sim::NodeId initiator,
                                    const std::vector<Item>& received,
                                    std::uint32_t now);

  void bootstrap(sim::NodeId self, const std::vector<sim::NodeId>& peers);

  [[nodiscard]] const std::vector<Item>& cache() const noexcept {
    return cache_;
  }

 private:
  /// Unions `incoming` into the cache, dropping self-entries and keeping
  /// the cache_size freshest distinct ids.
  void merge(sim::NodeId self, const std::vector<Item>& incoming);

  NewscastConfig config_;
  Rng rng_;
  std::vector<Item> cache_;
  std::vector<Item> scratch_select_;  ///< select_peers dry-run copy
  sim::Engine::ProtocolSlot slot_ = 0;
  bool slot_known_ = false;
  bool telemetry_resolved_ = false;
  metrics::Counter* ctr_exchanges_ = nullptr;  ///< newscast.exchanges

  friend struct NewscastInstaller;
};

}  // namespace glap::overlay
