#include "overlay/newscast.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "common/tracing.hpp"
#include "net/network_model.hpp"

namespace glap::overlay {

namespace {
constexpr std::size_t kItemBytes = 8;
}

NewscastProtocol::NewscastProtocol(NewscastConfig config, Rng rng)
    : config_(config), rng_(rng) {
  GLAP_REQUIRE(config.cache_size > 0, "newscast cache_size must be positive");
  cache_.reserve(config.cache_size);
}

struct NewscastInstaller {
  static void set_slot(NewscastProtocol& p, sim::Engine::ProtocolSlot slot) {
    p.slot_ = slot;
    p.slot_known_ = true;
  }
};

sim::Engine::ProtocolSlot NewscastProtocol::install(sim::Engine& engine,
                                                    const NewscastConfig& config,
                                                    std::uint64_t seed) {
  const std::size_t n = engine.node_count();
  Rng master(hash_combine(seed, hash_tag("newscast")));
  const auto slot = engine.add_protocol_pool<NewscastProtocol>(
      [&](sim::NodeId i) { return NewscastProtocol(config, master.split(i)); });
  engine.add_protocol_view<NewscastProtocol, NeighborProvider>(slot);

  Rng boot(hash_combine(seed, hash_tag("newscast-bootstrap")));
  std::vector<sim::NodeId> peers;
  for (std::size_t i = 0; i < n; ++i) {
    auto& proto = engine.protocol_at<NewscastProtocol>(
        slot, static_cast<sim::NodeId>(i));
    peers.clear();
    if (n > 1) {
      peers.push_back(static_cast<sim::NodeId>((i + 1) % n));
      while (peers.size() < std::min(config.cache_size, n - 1)) {
        auto candidate = static_cast<sim::NodeId>(boot.bounded(n));
        if (candidate == i) continue;
        if (std::find(peers.begin(), peers.end(), candidate) != peers.end())
          continue;
        peers.push_back(candidate);
      }
    }
    proto.bootstrap(static_cast<sim::NodeId>(i), peers);
    NewscastInstaller::set_slot(proto, slot);
  }
  return slot;
}

void NewscastProtocol::bootstrap(sim::NodeId self,
                                 const std::vector<sim::NodeId>& peers) {
  for (sim::NodeId id : peers) {
    if (id == self || cache_.size() >= config_.cache_size) continue;
    const bool dup = std::any_of(cache_.begin(), cache_.end(),
                                 [&](const Item& e) { return e.id == id; });
    if (!dup) cache_.push_back({id, 0});
  }
}

void NewscastProtocol::merge(sim::NodeId self,
                             const std::vector<Item>& incoming) {
  for (const Item& item : incoming) {
    if (item.id == self) continue;
    auto it = std::find_if(cache_.begin(), cache_.end(),
                           [&](const Item& e) { return e.id == item.id; });
    if (it != cache_.end()) {
      it->timestamp = std::max(it->timestamp, item.timestamp);
    } else {
      cache_.push_back(item);
    }
  }
  if (cache_.size() > config_.cache_size) {
    std::sort(cache_.begin(), cache_.end(),
              [](const Item& a, const Item& b) {
                return a.timestamp > b.timestamp;
              });
    cache_.resize(config_.cache_size);
  }
}

std::vector<NewscastProtocol::Item> NewscastProtocol::handle_exchange(
    sim::NodeId self, sim::NodeId initiator,
    const std::vector<Item>& received, std::uint32_t now) {
  std::vector<Item> snapshot = cache_;
  snapshot.push_back({self, now});
  std::vector<Item> incoming = received;
  incoming.push_back({initiator, now});
  merge(self, incoming);
  return snapshot;
}

void NewscastProtocol::select_peers(sim::Engine& engine, sim::NodeId /*self*/,
                                    sim::PeerSet& peers) {
  GLAP_ASSERT(slot_known_, "newscast used before install()");
  // Status probes and pruning hit only current cache ids; the exchange
  // partner's pre-merge cache is the only source of new ids this round,
  // so declaring it covers later slots sampling the post-exchange cache.
  for (const Item& e : cache_) peers.add(e.id);
  // Dry-run the partner pick on a copied RNG and cache snapshot: the real
  // execute() replays the identical draws against state frozen by the
  // reservation, so both arrive at the same partner.
  Rng sim_rng = rng_;
  scratch_select_.assign(cache_.begin(), cache_.end());
  for (std::size_t attempt = 0;
       attempt <= config_.dead_peer_retries && !scratch_select_.empty();
       ++attempt) {
    const std::size_t idx = sim_rng.pick_index(scratch_select_);
    const sim::NodeId peer = scratch_select_[idx].id;
    if (!engine.is_active(peer)) {
      scratch_select_.erase(scratch_select_.begin() +
                            static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    const auto& remote = engine.protocol_at<NewscastProtocol>(slot_, peer);
    for (const Item& e : remote.cache()) peers.add(e.id);
    return;
  }
}

void NewscastProtocol::execute(sim::Engine& engine, sim::NodeId self,
                               const sim::PeerSet& /*peers*/) {
  GLAP_ASSERT(slot_known_, "newscast used before install()");
  if (!telemetry_resolved_) {
    telemetry_resolved_ = true;
    if (metrics::MetricsRegistry* m = engine.metrics())
      ctr_exchanges_ = m->counter("newscast.exchanges");
  }
  const auto now = static_cast<std::uint32_t>(engine.current_round() + 1);
  for (std::size_t attempt = 0;
       attempt <= config_.dead_peer_retries && !cache_.empty(); ++attempt) {
    const std::size_t idx = rng_.pick_index(cache_);
    const sim::NodeId peer = cache_[idx].id;
    if (!engine.is_active(peer)) {
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    if (net::NetworkModel* net = engine.net_model()) {
      // Like Cyclon: exchanges are freshness-bound, so a lost or delayed
      // round-trip just times the exchange out until next round.
      const std::size_t wire = (cache_.size() + 1) * kItemBytes;
      if (!net->round_trip(self, peer, wire, wire, net::Channel::kShuffle)
               .ok())
        return;
    }
    std::vector<Item> outgoing = cache_;
    outgoing.push_back({self, now});
    engine.network().count_message(self, peer, outgoing.size() * kItemBytes);
    auto& remote = engine.protocol_at<NewscastProtocol>(slot_, peer);
    const auto reply = remote.handle_exchange(peer, self, outgoing, now);
    engine.network().count_message(peer, self, reply.size() * kItemBytes);
    if (ctr_exchanges_ != nullptr) ctr_exchanges_->inc();
    if (trace::TraceLog* t = engine.trace_log())
      t->emit(trace::Kind::kShuffle, static_cast<std::int64_t>(self),
              static_cast<std::int64_t>(peer),
              static_cast<std::int64_t>(outgoing.size()),
              static_cast<std::int64_t>(reply.size()));
    std::vector<Item> incoming = reply;
    incoming.push_back({peer, now});
    merge(self, incoming);
    return;
  }
}

std::optional<sim::NodeId> NewscastProtocol::sample_active_peer(
    sim::Engine& engine, sim::NodeId /*self*/) {
  while (!cache_.empty()) {
    const std::size_t idx = rng_.pick_index(cache_);
    const sim::NodeId peer = cache_[idx].id;
    if (engine.is_active(peer)) return peer;
    cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return std::nullopt;
}

std::vector<sim::NodeId> NewscastProtocol::neighbor_view() const {
  std::vector<sim::NodeId> ids;
  ids.reserve(cache_.size());
  for (const auto& e : cache_) ids.push_back(e.id);
  return ids;
}

void NewscastProtocol::append_peer_candidates(sim::PeerSet& out) const {
  // sample_active_peer only ever probes current cache entries.
  for (const Item& e : cache_) out.add(e.id);
}

}  // namespace glap::overlay
