// Cyclon: inexpensive membership management for unstructured P2P overlays
// (Voulgaris, Gavidia, van Steen — JNSM 2005). This is the membership
// layer GLAP runs on (paper Fig. 2).
//
// Each node keeps a small cache of (neighbor, age) entries. Once per round
// it ages all entries, contacts its *oldest* neighbor, and the two swap
// random subsets of size ℓ (the initiator replaces its own entry, age 0,
// into the sent subset). The resulting overlay approximates a random graph
// with strong connectivity and an in-degree distribution concentrated
// around the cache size — properties the overlay tests verify.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "overlay/neighbor_provider.hpp"

namespace glap::metrics {
class Counter;
class OrderedHistogram;
}  // namespace glap::metrics

namespace glap::overlay {

struct CyclonConfig {
  std::size_t cache_size = 20;      ///< c: neighbor cache capacity
  std::size_t shuffle_length = 8;   ///< ℓ: entries exchanged per shuffle
  /// Retries when the chosen shuffle partner turns out to be dead; each
  /// failure removes the dead entry (Cyclon's self-healing behaviour).
  std::size_t dead_peer_retries = 3;
};

class CyclonProtocol final : public NeighborProvider {
 public:
  struct Entry {
    sim::NodeId id;
    std::uint32_t age;
  };

  CyclonProtocol(CyclonConfig config, Rng rng);

  /// Installs a Cyclon instance on every node of the engine, bootstrapped
  /// with `config.cache_size` random neighbors each, and returns the slot.
  static sim::Engine::ProtocolSlot install(sim::Engine& engine,
                                           const CyclonConfig& config,
                                           std::uint64_t seed);

  void select_peers(sim::Engine& engine, sim::NodeId self,
                    sim::PeerSet& peers) override;
  void execute(sim::Engine& engine, sim::NodeId self,
               const sim::PeerSet& peers) override;

  std::optional<sim::NodeId> sample_active_peer(sim::Engine& engine,
                                                sim::NodeId self) override;

  /// Quiescence vote: always yes. The membership layer only serves the
  /// components above it; a parked node's cache simply stops refreshing,
  /// and active nodes keep shuffling with the parked node's entries.
  [[nodiscard]] bool can_quiesce(const sim::Engine& /*engine*/,
                                 sim::NodeId /*self*/) const override {
    return true;
  }

  [[nodiscard]] std::vector<sim::NodeId> neighbor_view() const override;

  void append_peer_candidates(sim::PeerSet& out) const override;

  /// Passive side of a shuffle: merges the initiator's subset and returns
  /// a random subset of (up to) shuffle_length local entries. The returned
  /// reference aliases an internal scratch buffer that stays valid until
  /// this instance's next handle_shuffle call.
  const std::vector<Entry>& handle_shuffle(sim::NodeId self,
                                           sim::NodeId initiator,
                                           const std::vector<Entry>& received);

  /// Seeds the cache (bootstrap); ignores self-links and duplicates.
  void bootstrap(sim::NodeId self, const std::vector<sim::NodeId>& neighbors);

  [[nodiscard]] const std::vector<Entry>& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] const CyclonConfig& config() const noexcept { return config_; }

  /// Removes every cache entry pointing at `peer` (dead-link pruning).
  void remove_neighbor(sim::NodeId peer);

 private:
  void merge(sim::NodeId self, const std::vector<Entry>& received,
             const std::vector<Entry>& sent);
  [[nodiscard]] std::optional<std::size_t> oldest_entry_index() const;
  void take_random_subset(std::size_t count,
                          std::optional<std::size_t> forced,
                          std::vector<Entry>& out);

  /// Resolves (once per instance) the shared shuffle instruments from the
  /// engine's registry; no-ops into the disabled state when none attached.
  void resolve_telemetry(sim::Engine& engine);

  CyclonConfig config_;
  Rng rng_;
  std::vector<Entry> cache_;
  sim::Engine::ProtocolSlot slot_ = 0;
  bool slot_known_ = false;
  bool telemetry_resolved_ = false;
  metrics::Counter* ctr_shuffles_ = nullptr;          ///< cyclon.shuffles
  metrics::OrderedHistogram* hist_entries_ = nullptr;  ///< cyclon.shuffle_entries

  // Scratch buffers reused across rounds: the shuffle exchange used to
  // allocate fresh vectors on both sides every round.
  std::vector<std::size_t> scratch_indices_;
  std::vector<Entry> scratch_sent_;      ///< initiator: subset shipped out
  std::vector<Entry> scratch_outgoing_;  ///< initiator: sent + own entry
  std::vector<Entry> scratch_reply_;     ///< passive side: reply subset
  std::vector<Entry> scratch_incoming_;  ///< passive side: received + link
  std::vector<Entry> scratch_select_;    ///< select_peers dry-run copy

  friend struct CyclonInstaller;
};

}  // namespace glap::overlay
