#include "overlay/cyclon.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "common/tracing.hpp"
#include "net/network_model.hpp"

namespace glap::overlay {

namespace {
constexpr std::size_t kEntryBytes = 8;  // (id, age) on the wire
}

CyclonProtocol::CyclonProtocol(CyclonConfig config, Rng rng)
    : config_(config), rng_(rng) {
  GLAP_REQUIRE(config_.cache_size > 0, "cyclon cache_size must be positive");
  GLAP_REQUIRE(config_.shuffle_length > 0 &&
                   config_.shuffle_length <= config_.cache_size,
               "cyclon shuffle_length must be in [1, cache_size]");
  cache_.reserve(config_.cache_size);
}

struct CyclonInstaller {
  static void set_slot(CyclonProtocol& p, sim::Engine::ProtocolSlot slot) {
    p.slot_ = slot;
    p.slot_known_ = true;
  }
};

sim::Engine::ProtocolSlot CyclonProtocol::install(sim::Engine& engine,
                                                  const CyclonConfig& config,
                                                  std::uint64_t seed) {
  const std::size_t n = engine.node_count();
  Rng master(hash_combine(seed, hash_tag("cyclon")));
  const auto slot = engine.add_protocol_pool<CyclonProtocol>(
      [&](sim::NodeId i) { return CyclonProtocol(config, master.split(i)); });
  engine.add_protocol_view<CyclonProtocol, NeighborProvider>(slot);

  // Bootstrap each cache with random distinct peers (ring + random links
  // guarantees initial connectivity even for tiny caches).
  Rng boot(hash_combine(seed, hash_tag("cyclon-bootstrap")));
  std::vector<sim::NodeId> neighbors;
  for (std::size_t i = 0; i < n; ++i) {
    auto& proto = engine.protocol_at<CyclonProtocol>(
        slot, static_cast<sim::NodeId>(i));
    neighbors.clear();
    if (n > 1) {
      neighbors.push_back(static_cast<sim::NodeId>((i + 1) % n));
      while (neighbors.size() < std::min(config.cache_size, n - 1)) {
        auto candidate = static_cast<sim::NodeId>(boot.bounded(n));
        if (candidate == i) continue;
        if (std::find(neighbors.begin(), neighbors.end(), candidate) !=
            neighbors.end())
          continue;
        neighbors.push_back(candidate);
      }
    }
    proto.bootstrap(static_cast<sim::NodeId>(i), neighbors);
    CyclonInstaller::set_slot(proto, slot);
  }
  return slot;
}

void CyclonProtocol::bootstrap(sim::NodeId self,
                               const std::vector<sim::NodeId>& neighbors) {
  for (sim::NodeId id : neighbors) {
    if (id == self) continue;
    if (cache_.size() >= config_.cache_size) break;
    const bool dup = std::any_of(cache_.begin(), cache_.end(),
                                 [&](const Entry& e) { return e.id == id; });
    if (!dup) cache_.push_back({id, 0});
  }
}

std::optional<std::size_t> CyclonProtocol::oldest_entry_index() const {
  if (cache_.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < cache_.size(); ++i)
    if (cache_[i].age > cache_[best].age) best = i;
  return best;
}

void CyclonProtocol::remove_neighbor(sim::NodeId peer) {
  std::erase_if(cache_, [&](const Entry& e) { return e.id == peer; });
}

void CyclonProtocol::take_random_subset(std::size_t count,
                                        std::optional<std::size_t> forced,
                                        std::vector<Entry>& out) {
  // Selects up to `count` random entries (always including `forced` when
  // given) and removes them from the cache; merge() re-inserts survivors.
  out.clear();
  if (cache_.empty() || count == 0) return;
  scratch_indices_.resize(cache_.size());
  for (std::size_t i = 0; i < scratch_indices_.size(); ++i)
    scratch_indices_[i] = i;
  rng_.shuffle(scratch_indices_);
  if (forced) {
    auto it =
        std::find(scratch_indices_.begin(), scratch_indices_.end(), *forced);
    GLAP_DEBUG_ASSERT(it != scratch_indices_.end(), "forced index missing");
    std::iter_swap(scratch_indices_.begin(), it);
  }
  const std::size_t take = std::min(count, scratch_indices_.size());
  // Descending erase order so earlier removals don't shift later indices.
  std::sort(scratch_indices_.begin(),
            scratch_indices_.begin() + static_cast<std::ptrdiff_t>(take),
            std::greater<>());
  out.reserve(take);
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t idx = scratch_indices_[k];
    out.push_back(cache_[idx]);
    cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void CyclonProtocol::merge(sim::NodeId self, const std::vector<Entry>& received,
                           const std::vector<Entry>& sent) {
  // Standard Cyclon merge: drop self-pointers and entries already present,
  // use empty cache slots first, then fall back to the slots freed by the
  // entries we shipped out (which take_random_subset already removed).
  for (const Entry& entry : received) {
    if (entry.id == self) continue;
    const bool dup =
        std::any_of(cache_.begin(), cache_.end(),
                    [&](const Entry& e) { return e.id == entry.id; });
    if (dup) continue;
    if (cache_.size() < config_.cache_size) cache_.push_back(entry);
  }
  // Re-insert shipped entries that still fit (they were not replaced).
  for (const Entry& entry : sent) {
    if (entry.id == self) continue;
    if (cache_.size() >= config_.cache_size) break;
    const bool dup =
        std::any_of(cache_.begin(), cache_.end(),
                    [&](const Entry& e) { return e.id == entry.id; });
    if (!dup) cache_.push_back(entry);
  }
}

const std::vector<CyclonProtocol::Entry>& CyclonProtocol::handle_shuffle(
    sim::NodeId self, sim::NodeId initiator,
    const std::vector<Entry>& received) {
  take_random_subset(config_.shuffle_length, std::nullopt, scratch_reply_);
  // The passive node may keep a fresh pointer back to the initiator.
  scratch_incoming_.assign(received.begin(), received.end());
  const bool has_initiator =
      std::any_of(scratch_incoming_.begin(), scratch_incoming_.end(),
                  [&](const Entry& e) { return e.id == initiator; });
  if (!has_initiator) scratch_incoming_.push_back({initiator, 0});
  merge(self, scratch_incoming_, scratch_reply_);
  return scratch_reply_;
}

void CyclonProtocol::select_peers(sim::Engine& engine, sim::NodeId /*self*/,
                                  sim::PeerSet& peers) {
  GLAP_ASSERT(slot_known_, "cyclon used before install()");
  // Everything execute() may touch: status probes on (and pruning of) the
  // own cache entries, the shuffle partner, and — because later protocol
  // slots sample from the post-shuffle cache — the partner's entries,
  // which are the only ids that can enter the cache this round (the reply
  // is drawn from the partner's pre-merge cache).
  for (const Entry& e : cache_) peers.add(e.id);
  // Dry-run the partner choice on a scratch copy: uniform aging preserves
  // the oldest-entry argmax and no RNG is consumed before the partner is
  // fixed, so this replicates execute()'s retry loop exactly without
  // mutating the cache or the RNG stream.
  scratch_select_.assign(cache_.begin(), cache_.end());
  for (std::size_t attempt = 0;
       attempt <= config_.dead_peer_retries && !scratch_select_.empty();
       ++attempt) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < scratch_select_.size(); ++i)
      if (scratch_select_[i].age > scratch_select_[best].age) best = i;
    const sim::NodeId peer = scratch_select_[best].id;
    if (!engine.is_active(peer)) {
      scratch_select_.erase(scratch_select_.begin() +
                            static_cast<std::ptrdiff_t>(best));
      continue;
    }
    const auto& remote = engine.protocol_at<CyclonProtocol>(slot_, peer);
    for (const Entry& e : remote.cache()) peers.add(e.id);
    return;
  }
}

void CyclonProtocol::resolve_telemetry(sim::Engine& engine) {
  // Runs once per instance; the registry's get-or-create is mutex-guarded
  // and the instruments are shared across all Cyclon instances.
  telemetry_resolved_ = true;
  if (metrics::MetricsRegistry* m = engine.metrics()) {
    ctr_shuffles_ = m->counter("cyclon.shuffles");
    hist_entries_ = m->histogram("cyclon.shuffle_entries");
  }
}

void CyclonProtocol::execute(sim::Engine& engine, sim::NodeId self,
                             const sim::PeerSet& /*peers*/) {
  GLAP_ASSERT(slot_known_, "cyclon used before install()");
  if (!telemetry_resolved_) resolve_telemetry(engine);
  for (auto& entry : cache_) ++entry.age;

  for (std::size_t attempt = 0;
       attempt <= config_.dead_peer_retries && !cache_.empty(); ++attempt) {
    const auto oldest = oldest_entry_index();
    if (!oldest) return;
    const sim::NodeId peer = cache_[*oldest].id;
    if (!engine.is_active(peer)) {
      // Self-healing: a dead oldest neighbor is simply discarded.
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(*oldest));
      continue;
    }
    if (net::NetworkModel* net = engine.net_model()) {
      // A shuffle is only useful fresh: a lost or late round-trip simply
      // times out and the node retries next round (membership
      // self-heals), before any cache entry has been moved.
      const std::size_t wire = config_.shuffle_length * kEntryBytes;
      if (!net->round_trip(self, peer, wire, wire, net::Channel::kShuffle)
               .ok())
        return;
    }
    take_random_subset(config_.shuffle_length - 1, std::nullopt,
                       scratch_sent_);
    scratch_outgoing_.assign(scratch_sent_.begin(), scratch_sent_.end());
    scratch_outgoing_.push_back({self, 0});
    engine.network().count_message(self, peer,
                                   scratch_outgoing_.size() * kEntryBytes);
    auto& remote = engine.protocol_at<CyclonProtocol>(slot_, peer);
    const auto& reply = remote.handle_shuffle(peer, self, scratch_outgoing_);
    engine.network().count_message(peer, self, reply.size() * kEntryBytes);
    if (ctr_shuffles_ != nullptr) {
      ctr_shuffles_->inc();
      hist_entries_->observe(
          static_cast<double>(scratch_outgoing_.size() + reply.size()));
    }
    if (trace::TraceLog* t = engine.trace_log())
      t->emit(trace::Kind::kShuffle, static_cast<std::int64_t>(self),
              static_cast<std::int64_t>(peer),
              static_cast<std::int64_t>(scratch_outgoing_.size()),
              static_cast<std::int64_t>(reply.size()));
    merge(self, reply, scratch_sent_);
    return;
  }
}

std::optional<sim::NodeId> CyclonProtocol::sample_active_peer(
    sim::Engine& engine, sim::NodeId /*self*/) {
  // Try random entries, pruning dead ones as we go.
  while (!cache_.empty()) {
    const std::size_t idx = rng_.pick_index(cache_);
    const sim::NodeId peer = cache_[idx].id;
    if (engine.is_active(peer)) return peer;
    cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return std::nullopt;
}

std::vector<sim::NodeId> CyclonProtocol::neighbor_view() const {
  std::vector<sim::NodeId> ids;
  ids.reserve(cache_.size());
  for (const auto& e : cache_) ids.push_back(e.id);
  return ids;
}

void CyclonProtocol::append_peer_candidates(sim::PeerSet& out) const {
  // sample_active_peer only ever probes current cache entries.
  for (const Entry& e : cache_) out.add(e.id);
}

}  // namespace glap::overlay
