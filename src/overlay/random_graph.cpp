#include "overlay/random_graph.hpp"

#include <algorithm>

namespace glap::overlay {

sim::Engine::ProtocolSlot RandomGraphProtocol::install(
    sim::Engine& engine, const RandomGraphConfig& config, std::uint64_t seed) {
  GLAP_REQUIRE(config.degree > 0, "random graph degree must be positive");
  const std::size_t n = engine.node_count();
  Rng master(hash_combine(seed, hash_tag("random-graph")));
  const auto slot = engine.add_protocol_pool<RandomGraphProtocol>(
      [&](sim::NodeId node) {
        const auto i = static_cast<std::size_t>(node);
        std::vector<sim::NodeId> neighbors;
        if (n > 1) {
          // Ring edge for guaranteed connectivity + random chords.
          neighbors.push_back(static_cast<sim::NodeId>((i + 1) % n));
          const std::size_t target = std::min(config.degree, n - 1);
          while (neighbors.size() < target) {
            auto candidate = static_cast<sim::NodeId>(master.bounded(n));
            if (candidate == i) continue;
            if (std::find(neighbors.begin(), neighbors.end(), candidate) !=
                neighbors.end())
              continue;
            neighbors.push_back(candidate);
          }
        }
        return RandomGraphProtocol(std::move(neighbors), master.split(i));
      });
  engine.add_protocol_view<RandomGraphProtocol, NeighborProvider>(slot);
  return slot;
}

std::optional<sim::NodeId> RandomGraphProtocol::sample_active_peer(
    sim::Engine& engine, sim::NodeId /*self*/) {
  if (neighbors_.empty()) return std::nullopt;
  // Sample without replacement until an active neighbor is found.
  std::vector<std::size_t> order(neighbors_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.shuffle(order);
  for (std::size_t idx : order) {
    const sim::NodeId peer = neighbors_[idx];
    if (engine.is_active(peer)) return peer;
  }
  return std::nullopt;
}

}  // namespace glap::overlay
