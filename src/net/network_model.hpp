// Deterministic message-level network model for the gossip substrate
// (DESIGN.md §13). Models the two-tier datacenter fabric the rack
// topology implies: every PM hangs off one access link, racks share an
// oversubscribed top-of-rack uplink, and the core is non-blocking. An
// exchange sent in round r is delivered in round r + floor(latency /
// round_seconds) — 0 at healthy defaults, which reproduces the ideal
// instantaneous model — or dropped, either by the configured random loss
// rate or because a link's drop-tail queue is full. Live migrations are
// charged to the same links (DataCenter's migration-network hook), so a
// migration storm inflates queueing delay for — and can congestion-drop —
// the gossip that scheduled it.
//
// Determinism: the model holds no RNG stream. Loss decisions hash
// (seed, msg_id) through splitmix64, and msg ids are assigned in executed
// interaction order — identical between the serial and event engines,
// whose executed sequences coincide (DESIGN.md §13.3). The wave-parallel
// engine executes in shard order, so the harness refuses to combine it
// with the network model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/node.hpp"

namespace glap::metrics {
class MetricsRegistry;
class Counter;
}  // namespace glap::metrics
namespace glap::trace {
class TraceLog;
}

namespace glap::net {

/// Knobs for the two-tier fabric (all deterministic; DESIGN.md §13.2).
/// Defaults describe a healthy 1 GbE edge where gossip-sized payloads see
/// zero queueing and sub-round latency, i.e. the modeled network is
/// behaviorally identical to the ideal one until loss or contention bite.
struct NetworkConfig {
  bool enabled = false;
  /// Access-link bandwidth per PM (both directions share one queue).
  double access_gbps = 1.0;
  /// Propagation + switching latency per access hop (seconds).
  double access_latency_s = 50e-6;
  /// Extra latency for crossing the core between two ToR uplinks (seconds).
  double uplink_latency_s = 450e-6;
  /// ToR uplink capacity = access_gbps * rack_size / oversubscription.
  double oversubscription = 4.0;
  /// Drop-tail queue limit per link, as a fraction of one round's service
  /// capacity: a message that would push a link's backlog past
  /// queue_limit_rounds * bytes_per_round is dropped as congested.
  double queue_limit_rounds = 0.25;
  /// Probability that one leg of an exchange is lost (per-message
  /// counter-hash, not an RNG stream). A push-pull round trip has two
  /// legs, so its loss probability is 1 - (1 - loss_rate)^2.
  double loss_rate = 0.0;
  /// Rack width used when the experiment runs without a rack topology
  /// (rack_size == 0); with a topology the harness passes its rack_size.
  std::size_t default_rack_size = 32;
  /// Charge live-migration payloads (VM memory) to the same links, so
  /// migrations stretch their own τ and delay/drown gossip.
  bool migration_contention = true;
};

/// Traffic classes; rendered into "net" trace events by name.
enum class Channel : std::uint8_t {
  kShuffle = 0,       ///< overlay membership (Cyclon/Newscast)
  kLearning = 1,      ///< GLAP workload-profile fetch
  kAggregation = 2,   ///< GLAP Q-table push-pull
  kConsolidation = 3, ///< GLAP/GRMP state exchange
  kProbe = 4,         ///< EcoCloud placement probes
  kMigration = 5,     ///< live-migration payload (pre-copy stream)
};

[[nodiscard]] const char* channel_name(Channel c) noexcept;

/// Why a message was dropped; rendered into "net" drop events by name.
enum class DropReason : std::uint8_t { kNone = 0, kLoss = 1, kCongestion = 2 };

[[nodiscard]] const char* drop_reason_name(DropReason r) noexcept;

/// Admission decision for one exchange.
struct Verdict {
  enum class Outcome : std::uint8_t { kDelivered, kDelayed, kDropped };
  Outcome outcome = Outcome::kDelivered;
  /// Rounds until the reply is in hand (kDelayed only; >= 1).
  sim::Round delay = 0;
  DropReason reason = DropReason::kNone;
  std::uint64_t msg_id = 0;
  [[nodiscard]] bool ok() const noexcept {
    return outcome == Outcome::kDelivered;
  }
};

class NetworkModel {
 public:
  /// `rack_size` groups consecutive PM ids exactly like cloud::RackTopology.
  NetworkModel(std::size_t pm_count, std::size_t rack_size,
               const NetworkConfig& config, double round_seconds,
               std::uint64_t seed);

  /// Observability sinks (neither owned; either may be null). Attach
  /// before the first round; "net" trace events are buffered through the
  /// ordered TraceLog path so they are safe from inside interactions.
  void set_telemetry(metrics::MetricsRegistry* metrics,
                     trace::TraceLog* trace);

  /// Advances simulated time: drains one round of service capacity from
  /// every link backlog. The harness calls this once per round, before
  /// Engine::step(), for warmup and evaluation rounds alike.
  void begin_round(sim::Round round);

  /// Admits one push-pull exchange (request `fwd_bytes` from a to b, reply
  /// `rev_bytes` back). Charges both legs to the route on success.
  Verdict round_trip(sim::NodeId a, sim::NodeId b, std::size_t fwd_bytes,
                     std::size_t rev_bytes, Channel channel);

  /// Admits a one-way datagram (single loss leg, same queueing rules).
  Verdict send(sim::NodeId from, sim::NodeId to, std::size_t bytes,
               Channel channel);

  /// Completion report for an exchange a protocol deferred: emits the
  /// "deliver" trace event at the due round and counts the delivery.
  /// Call from the deferred execute(), never twice per msg_id.
  void deliver_deferred(sim::NodeId from, sim::NodeId to,
                        std::uint64_t msg_id, sim::Round delay);

  /// Charges a live migration's memory payload to the route and returns
  /// the extra seconds the stream spends queued behind traffic already in
  /// flight on the slowest link (added to τ by DataCenter's hook).
  /// Migrations are never dropped — pre-copy retransmits — but they are
  /// the main source of backlog the gossip channels then see.
  double migration_delay_seconds(sim::NodeId from, sim::NodeId to,
                                 double mem_mb);

  /// Driver-only: writes one "net" queue-depth line per link with a
  /// nonzero backlog (link-id order). Call only at quiescent points.
  void trace_queue_depths(sim::Round round);

  // ---- run-level counters (pure function of config and seed) ----
  struct Totals {
    std::uint64_t sends = 0;         ///< exchanges attempted
    std::uint64_t delivered = 0;     ///< completed (incl. deferred)
    std::uint64_t delayed = 0;       ///< admitted with delay >= 1 round
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_congestion = 0;
  };
  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }

  // ---- introspection for tests ----
  [[nodiscard]] std::size_t rack_of(sim::NodeId pm) const noexcept {
    return pm / rack_size_;
  }
  [[nodiscard]] std::size_t rack_count() const noexcept {
    return uplink_backlog_.size();
  }
  [[nodiscard]] double access_backlog(sim::NodeId pm) const {
    return access_backlog_[pm];
  }
  [[nodiscard]] double uplink_backlog(std::size_t rack) const {
    return uplink_backlog_[rack];
  }
  [[nodiscard]] double access_bytes_per_round() const noexcept {
    return access_rate_ * round_seconds_;
  }
  [[nodiscard]] double uplink_bytes_per_round() const noexcept {
    return uplink_rate_ * round_seconds_;
  }

 private:
  /// A route is at most 4 links; index < pm_count = access link of that
  /// PM, index >= pm_count = uplink of rack (index - pm_count).
  struct Route {
    std::size_t links[4];
    std::size_t count = 0;
  };
  [[nodiscard]] Route route_between(sim::NodeId a, sim::NodeId b) const;
  [[nodiscard]] double& backlog_of(std::size_t link);
  [[nodiscard]] double rate_of(std::size_t link) const noexcept;
  [[nodiscard]] double limit_bytes_of(std::size_t link) const noexcept;
  /// Deterministic per-message uniform in [0, 1).
  [[nodiscard]] double loss_draw(std::uint64_t msg_id) const noexcept;
  Verdict admit(sim::NodeId from, sim::NodeId to, std::size_t fwd_bytes,
                std::size_t rev_bytes, Channel channel, double loss_prob,
                double base_latency_extra);
  void emit_send(sim::NodeId from, sim::NodeId to, std::uint64_t msg_id,
                 std::size_t bytes, Channel channel);
  void emit_deliver(sim::NodeId from, sim::NodeId to, std::uint64_t msg_id,
                    sim::Round delay);
  void emit_drop(sim::NodeId from, sim::NodeId to, std::uint64_t msg_id,
                 DropReason reason);

  NetworkConfig config_;
  std::size_t pm_count_;
  std::size_t rack_size_;
  double round_seconds_;
  std::uint64_t seed_;

  double access_rate_;  ///< bytes per second per access link
  double uplink_rate_;  ///< bytes per second per ToR uplink

  std::vector<double> access_backlog_;  ///< queued bytes per PM link
  std::vector<double> uplink_backlog_;  ///< queued bytes per rack uplink

  std::uint64_t next_msg_id_ = 0;
  Totals totals_;

  metrics::MetricsRegistry* metrics_ = nullptr;
  trace::TraceLog* trace_ = nullptr;
  metrics::Counter* ctr_sends_ = nullptr;
  metrics::Counter* ctr_delivered_ = nullptr;
  metrics::Counter* ctr_delayed_ = nullptr;
  metrics::Counter* ctr_dropped_loss_ = nullptr;
  metrics::Counter* ctr_dropped_congestion_ = nullptr;
};

}  // namespace glap::net
