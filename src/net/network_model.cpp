#include "net/network_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace glap::net {

const char* channel_name(Channel c) noexcept {
  switch (c) {
    case Channel::kShuffle: return "shuffle";
    case Channel::kLearning: return "learning";
    case Channel::kAggregation: return "aggregation";
    case Channel::kConsolidation: return "consolidation";
    case Channel::kProbe: return "probe";
    case Channel::kMigration: return "migration";
  }
  return "?";
}

const char* drop_reason_name(DropReason r) noexcept {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kLoss: return "loss";
    case DropReason::kCongestion: return "congestion";
  }
  return "?";
}

NetworkModel::NetworkModel(std::size_t pm_count, std::size_t rack_size,
                           const NetworkConfig& config, double round_seconds,
                           std::uint64_t seed)
    : config_(config),
      pm_count_(pm_count),
      rack_size_(rack_size > 0 ? rack_size : config.default_rack_size),
      round_seconds_(round_seconds),
      seed_(hash_combine(seed, hash_tag("net-model"))) {
  GLAP_REQUIRE(pm_count > 0, "network model needs at least one PM");
  GLAP_REQUIRE(rack_size_ > 0, "network rack size must be positive");
  GLAP_REQUIRE(config.access_gbps > 0.0, "access_gbps must be positive");
  GLAP_REQUIRE(config.oversubscription >= 1.0,
               "oversubscription must be >= 1");
  GLAP_REQUIRE(config.loss_rate >= 0.0 && config.loss_rate < 1.0,
               "loss_rate out of [0, 1)");
  GLAP_REQUIRE(config.queue_limit_rounds > 0.0,
               "queue_limit_rounds must be positive");
  GLAP_REQUIRE(round_seconds > 0.0, "round_seconds must be positive");
  access_rate_ = config.access_gbps * 1e9 / 8.0;
  uplink_rate_ = access_rate_ * static_cast<double>(rack_size_) /
                 config.oversubscription;
  access_backlog_.assign(pm_count_, 0.0);
  uplink_backlog_.assign((pm_count_ + rack_size_ - 1) / rack_size_, 0.0);
}

void NetworkModel::set_telemetry(metrics::MetricsRegistry* metrics,
                                 trace::TraceLog* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ != nullptr) {
    ctr_sends_ = metrics_->counter("netmodel.sends");
    ctr_delivered_ = metrics_->counter("netmodel.delivered");
    ctr_delayed_ = metrics_->counter("netmodel.delayed");
    ctr_dropped_loss_ = metrics_->counter("netmodel.dropped_loss");
    ctr_dropped_congestion_ = metrics_->counter("netmodel.dropped_congestion");
  }
}

void NetworkModel::begin_round(sim::Round /*round*/) {
  const double access_service = access_rate_ * round_seconds_;
  for (double& b : access_backlog_) b = std::max(0.0, b - access_service);
  const double uplink_service = uplink_rate_ * round_seconds_;
  for (double& b : uplink_backlog_) b = std::max(0.0, b - uplink_service);
}

NetworkModel::Route NetworkModel::route_between(sim::NodeId a,
                                                sim::NodeId b) const {
  GLAP_DEBUG_ASSERT(a < pm_count_ && b < pm_count_, "PM id out of range");
  Route r;
  r.links[r.count++] = a;  // access link of the initiator
  const std::size_t rack_a = rack_of(a);
  const std::size_t rack_b = rack_of(b);
  if (rack_a != rack_b) {
    r.links[r.count++] = pm_count_ + rack_a;
    r.links[r.count++] = pm_count_ + rack_b;
  }
  r.links[r.count++] = b;  // access link of the responder
  return r;
}

double& NetworkModel::backlog_of(std::size_t link) {
  return link < pm_count_ ? access_backlog_[link]
                          : uplink_backlog_[link - pm_count_];
}

double NetworkModel::rate_of(std::size_t link) const noexcept {
  return link < pm_count_ ? access_rate_ : uplink_rate_;
}

double NetworkModel::limit_bytes_of(std::size_t link) const noexcept {
  return config_.queue_limit_rounds * rate_of(link) * round_seconds_;
}

double NetworkModel::loss_draw(std::uint64_t msg_id) const noexcept {
  // Counter-based: no stream state, so admission order cannot perturb
  // other randomness and equal msg ids always draw the same value.
  const std::uint64_t h = hash_combine(seed_, msg_id);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void NetworkModel::emit_send(sim::NodeId from, sim::NodeId to,
                             std::uint64_t msg_id, std::size_t bytes,
                             Channel channel) {
  if (trace_ != nullptr)
    trace_->emit(trace::Kind::kNet, /*op=*/0, static_cast<std::int64_t>(from),
                 static_cast<std::int64_t>(to),
                 static_cast<std::int64_t>(msg_id),
                 static_cast<double>(bytes),
                 static_cast<double>(static_cast<int>(channel)));
}

void NetworkModel::emit_deliver(sim::NodeId from, sim::NodeId to,
                                std::uint64_t msg_id, sim::Round delay) {
  if (trace_ != nullptr)
    trace_->emit(trace::Kind::kNet, /*op=*/1, static_cast<std::int64_t>(from),
                 static_cast<std::int64_t>(to),
                 static_cast<std::int64_t>(msg_id),
                 static_cast<double>(delay), 0.0);
}

void NetworkModel::emit_drop(sim::NodeId from, sim::NodeId to,
                             std::uint64_t msg_id, DropReason reason) {
  if (trace_ != nullptr)
    trace_->emit(trace::Kind::kNet, /*op=*/2, static_cast<std::int64_t>(from),
                 static_cast<std::int64_t>(to),
                 static_cast<std::int64_t>(msg_id),
                 static_cast<double>(static_cast<int>(reason)), 0.0);
}

Verdict NetworkModel::admit(sim::NodeId from, sim::NodeId to,
                            std::size_t fwd_bytes, std::size_t rev_bytes,
                            Channel channel, double loss_prob,
                            double base_latency_extra) {
  Verdict v;
  v.msg_id = next_msg_id_++;
  ++totals_.sends;
  if (ctr_sends_ != nullptr) ctr_sends_->inc();
  emit_send(from, to, v.msg_id, fwd_bytes + rev_bytes, channel);

  const Route route = route_between(from, to);
  const double payload = static_cast<double>(fwd_bytes + rev_bytes);

  // Drop-tail admission: a full link rejects the whole exchange and keeps
  // its queue unchanged.
  for (std::size_t i = 0; i < route.count; ++i) {
    if (backlog_of(route.links[i]) + payload > limit_bytes_of(route.links[i])) {
      v.outcome = Verdict::Outcome::kDropped;
      v.reason = DropReason::kCongestion;
      ++totals_.dropped_congestion;
      if (ctr_dropped_congestion_ != nullptr) ctr_dropped_congestion_->inc();
      emit_drop(from, to, v.msg_id, v.reason);
      return v;
    }
  }

  if (loss_prob > 0.0 && loss_draw(v.msg_id) < loss_prob) {
    v.outcome = Verdict::Outcome::kDropped;
    v.reason = DropReason::kLoss;
    ++totals_.dropped_loss;
    if (ctr_dropped_loss_ != nullptr) ctr_dropped_loss_->inc();
    emit_drop(from, to, v.msg_id, v.reason);
    return v;
  }

  // Latency = propagation along the route + worst queueing delay behind
  // bytes already in flight; floor() maps it onto whole rounds, so a
  // round trip fitting inside one round (the healthy case) behaves
  // exactly like the ideal instantaneous model.
  double latency = 2.0 * config_.access_latency_s + base_latency_extra;
  if (route.count == 4) latency += config_.uplink_latency_s;
  double queue_delay = 0.0;
  for (std::size_t i = 0; i < route.count; ++i)
    queue_delay = std::max(
        queue_delay, backlog_of(route.links[i]) / rate_of(route.links[i]));
  latency += queue_delay;
  for (std::size_t i = 0; i < route.count; ++i)
    backlog_of(route.links[i]) += payload;

  const auto delay =
      static_cast<sim::Round>(std::floor(latency / round_seconds_));
  if (delay == 0) {
    v.outcome = Verdict::Outcome::kDelivered;
    ++totals_.delivered;
    if (ctr_delivered_ != nullptr) ctr_delivered_->inc();
    emit_deliver(from, to, v.msg_id, 0);
  } else {
    v.outcome = Verdict::Outcome::kDelayed;
    v.delay = delay;
    ++totals_.delayed;
    if (ctr_delayed_ != nullptr) ctr_delayed_->inc();
    // The deliver event is emitted at the due round by deliver_deferred.
  }
  return v;
}

Verdict NetworkModel::round_trip(sim::NodeId a, sim::NodeId b,
                                 std::size_t fwd_bytes, std::size_t rev_bytes,
                                 Channel channel) {
  GLAP_REQUIRE(a != b, "round trip to self");
  // Two independent loss legs collapse into one draw with the combined
  // probability — the initiator cannot distinguish which leg vanished.
  const double p = config_.loss_rate;
  const double p_round_trip = 1.0 - (1.0 - p) * (1.0 - p);
  return admit(a, b, fwd_bytes, rev_bytes, channel, p_round_trip, 0.0);
}

Verdict NetworkModel::send(sim::NodeId from, sim::NodeId to, std::size_t bytes,
                           Channel channel) {
  GLAP_REQUIRE(from != to, "send to self");
  return admit(from, to, bytes, 0, channel, config_.loss_rate, 0.0);
}

void NetworkModel::deliver_deferred(sim::NodeId from, sim::NodeId to,
                                    std::uint64_t msg_id, sim::Round delay) {
  ++totals_.delivered;
  if (ctr_delivered_ != nullptr) ctr_delivered_->inc();
  emit_deliver(from, to, msg_id, delay);
}

double NetworkModel::migration_delay_seconds(sim::NodeId from, sim::NodeId to,
                                             double mem_mb) {
  if (!config_.migration_contention || from == to) return 0.0;
  const double bytes = std::max(0.0, mem_mb) * 1e6;
  const Route route = route_between(from, to);
  // The pre-copy stream waits for whatever is already queued on the
  // slowest link of its route, then adds itself to every link's queue.
  double queue_ahead = 0.0;
  for (std::size_t i = 0; i < route.count; ++i)
    queue_ahead = std::max(
        queue_ahead, backlog_of(route.links[i]) / rate_of(route.links[i]));
  for (std::size_t i = 0; i < route.count; ++i)
    backlog_of(route.links[i]) += bytes;
  const std::uint64_t msg_id = next_msg_id_++;
  ++totals_.sends;
  ++totals_.delivered;
  if (ctr_sends_ != nullptr) ctr_sends_->inc();
  if (ctr_delivered_ != nullptr) ctr_delivered_->inc();
  emit_send(from, to, msg_id, static_cast<std::size_t>(bytes),
            Channel::kMigration);
  // The pre-copy stream starts transferring immediately (delay 0); its
  // queueing stretch is reported through the migration's τ, not here.
  emit_deliver(from, to, msg_id, 0);
  return queue_ahead;
}

void NetworkModel::trace_queue_depths(sim::Round round) {
  if (trace_ == nullptr) return;
  for (std::size_t p = 0; p < access_backlog_.size(); ++p)
    if (access_backlog_[p] > 0.0)
      trace_->net_queue(round, "access", static_cast<std::int64_t>(p),
                        static_cast<std::uint64_t>(access_backlog_[p]));
  for (std::size_t r = 0; r < uplink_backlog_.size(); ++r)
    if (uplink_backlog_[r] > 0.0)
      trace_->net_queue(round, "uplink", static_cast<std::int64_t>(r),
                        static_cast<std::uint64_t>(uplink_backlog_[r]));
}

}  // namespace glap::net
