#include "trace/google_synth.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/demand_models.hpp"

namespace glap::trace {

GoogleSynth::GoogleSynth(GoogleSynthConfig config, std::uint64_t seed)
    : config_(config), seed_(hash_combine(seed, hash_tag("google-synth"))) {
  const double total = config.w_stable + config.w_diurnal +
                       config.w_random_walk + config.w_bursty +
                       config.w_spike;
  GLAP_REQUIRE(total > 0.0, "mixture weights must not all be zero");
  GLAP_REQUIRE(config.cpu_hi > config.cpu_lo && config.mem_hi > config.mem_lo,
               "level ranges empty");
  GLAP_REQUIRE(config.rounds_per_day > 0, "rounds_per_day must be positive");
}

DemandModelPtr GoogleSynth::make_model(std::uint64_t vm_id) const {
  Rng rng(hash_combine(seed_, vm_id));

  const auto& c = config_;
  const double total =
      c.w_stable + c.w_diurnal + c.w_random_walk + c.w_bursty + c.w_spike;
  const double pick = rng.uniform() * total;

  const double cpu_base =
      c.cpu_lo + (c.cpu_hi - c.cpu_lo) * rng.beta(c.cpu_beta_a, c.cpu_beta_b);
  const double mem_base =
      c.mem_lo + (c.mem_hi - c.mem_lo) * rng.beta(c.mem_beta_a, c.mem_beta_b);

  double acc = c.w_stable;
  if (pick < acc)
    return std::make_unique<StableModel>(cpu_base, mem_base,
                                         /*jitter=*/0.03, rng.split("m"));

  acc += c.w_diurnal;
  if (pick < acc) {
    const double amplitude = rng.uniform(0.15, 0.35);
    // Keep the wave inside [0,1] around the base.
    const double base = std::clamp(cpu_base, amplitude + 0.02,
                                   1.0 - amplitude - 0.02);
    return std::make_unique<DiurnalModel>(base, amplitude, c.rounds_per_day,
                                          rng.uniform(), mem_base,
                                          rng.split("m"));
  }

  acc += c.w_random_walk;
  if (pick < acc) {
    const double sigma = rng.uniform(0.03, 0.1);
    return std::make_unique<RandomWalkModel>(cpu_base, sigma, mem_base,
                                             rng.split("m"));
  }

  acc += c.w_bursty;
  if (pick < acc) {
    const double low = std::min(cpu_base, 0.35);
    const double high = rng.uniform(0.7, 1.0);
    // Expected dwell ~ 1/p rounds: bursts every ~12-50 rounds lasting
    // ~8-30 rounds (tens of minutes, as in the Google traces).
    const double p_up = rng.uniform(0.02, 0.08);
    const double p_down = rng.uniform(0.03, 0.12);
    return std::make_unique<BurstyModel>(low, high, p_up, p_down, mem_base,
                                         rng.split("m"));
  }

  const double base = std::min(cpu_base, 0.3);
  const double spike_level = rng.uniform(0.8, 1.0);
  const double spike_prob = rng.uniform(0.01, 0.04);
  const auto spike_len = static_cast<std::uint32_t>(rng.range(3, 12));
  return std::make_unique<SpikeModel>(base, spike_level, spike_prob, spike_len,
                                      mem_base, rng.split("m"));
}

}  // namespace glap::trace
