// Synthetic Google-Cluster-like workload ensemble.
//
// The real Google cluster traces are not distributed with this repository
// (see DESIGN.md §4). This generator reproduces the statistical properties
// the GLAP evaluation depends on:
//   * VMs use far less than their allocation — heavy-tailed base levels
//     with a CPU mean around 30% of the request;
//   * per-VM time series are partially predictable (stable / diurnal /
//     mean-reverting / bursty / spiky archetypes) so a learner can
//     characterize them;
//   * memory varies much less than CPU;
//   * the ensemble mixes archetypes, so different PMs host different
//     workload patterns (the paper's argument against one global
//     threshold).
// Streams are a pure function of (seed, vm_id): every algorithm in an
// experiment replays identical demands.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "trace/demand_model.hpp"

namespace glap::trace {

/// Mixture weights and level parameters for the ensemble. Defaults follow
/// published Google-trace characterizations (low mean usage, heavy tail).
struct GoogleSynthConfig {
  // Archetype mixture weights (normalized internally). Bursty/spiky jobs
  // carry substantial weight: the Google traces' CPU series swing hard,
  // and that variability is what separates the consolidation policies.
  double w_stable = 0.15;
  double w_diurnal = 0.25;
  double w_random_walk = 0.25;
  double w_bursty = 0.25;
  double w_spike = 0.10;

  // Base CPU level ~ Beta(a, b) scaled into [cpu_lo, cpu_hi].
  double cpu_beta_a = 2.0;
  double cpu_beta_b = 4.0;
  double cpu_lo = 0.05;
  double cpu_hi = 0.95;

  // Base memory level ~ Beta(a, b) scaled into [mem_lo, mem_hi]. Memory
  // runs lower and steadier than CPU (as in the Google traces), so CPU is
  // the binding resource during packing — the regime the paper studies.
  double mem_beta_a = 2.5;
  double mem_beta_b = 3.5;
  double mem_lo = 0.10;
  double mem_hi = 0.60;

  /// Rounds per simulated day; diurnal VMs get this period.
  std::uint32_t rounds_per_day = 720;
};

/// Factory for per-VM demand models. Construct one per experiment with the
/// experiment seed, then call make_model(vm_id) for each VM.
class GoogleSynth {
 public:
  explicit GoogleSynth(GoogleSynthConfig config, std::uint64_t seed);

  /// Builds the deterministic stream for `vm_id`.
  [[nodiscard]] DemandModelPtr make_model(std::uint64_t vm_id) const;

  [[nodiscard]] const GoogleSynthConfig& config() const noexcept {
    return config_;
  }

 private:
  GoogleSynthConfig config_;
  std::uint64_t seed_;
};

}  // namespace glap::trace
