#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace glap::trace {

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  if (series.size() < 2 || lag >= series.size()) return 0.0;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(series.size());
  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);
  if (var == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < series.size(); ++i)
    cov += (series[i] - mean) * (series[i + lag] - mean);
  return cov / var;
}

double burst_fraction(const std::vector<double>& series, double threshold) {
  if (series.empty()) return 0.0;
  std::size_t hits = 0;
  for (double x : series)
    if (x >= threshold) ++hits;
  return static_cast<double>(hits) / static_cast<double>(series.size());
}

double mean_burst_length(const std::vector<double>& series,
                         double threshold) {
  std::size_t runs = 0, total = 0, current = 0;
  for (double x : series) {
    if (x >= threshold) {
      ++current;
    } else if (current > 0) {
      ++runs;
      total += current;
      current = 0;
    }
  }
  if (current > 0) {
    ++runs;
    total += current;
  }
  return runs ? static_cast<double>(total) / static_cast<double>(runs) : 0.0;
}

double peak_to_mean(const std::vector<double>& series) {
  if (series.empty()) return 0.0;
  double mean = 0.0, peak = series.front();
  for (double x : series) {
    mean += x;
    peak = std::max(peak, x);
  }
  mean /= static_cast<double>(series.size());
  return mean > 0.0 ? peak / mean : 0.0;
}

}  // namespace glap::trace
