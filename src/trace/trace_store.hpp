// Materialized trace storage + replay.
//
// TraceStore holds a dense [vm][round] matrix of (cpu, mem) samples. It is
// used (a) to load externally supplied real traces from CSV — the path a
// user with the actual Google Cluster data would take — and (b) in tests
// that need to inspect whole series. ReplayModel adapts a stored row back
// into the DemandModel interface (cycling past the end).
//
// CSV schema: header "vm,round,cpu,mem"; one row per (vm, round) sample.
// Rounds must be dense 0..R-1 per VM.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/resources.hpp"
#include "trace/demand_model.hpp"

namespace glap::trace {

class TraceStore {
 public:
  TraceStore() = default;

  /// Pre-sizes the store for `vms` series of length `rounds`.
  TraceStore(std::size_t vms, std::size_t rounds);

  /// Materializes `rounds` samples from each provided model.
  static TraceStore from_models(const std::vector<DemandModel*>& models,
                                std::size_t rounds);

  /// Parses the CSV schema described above.
  static TraceStore load_csv(std::istream& in);

  void save_csv(std::ostream& out) const;

  void set(std::size_t vm, std::size_t round, Resources demand);
  [[nodiscard]] Resources at(std::size_t vm, std::size_t round) const;

  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_; }
  [[nodiscard]] std::size_t round_count() const noexcept { return rounds_; }

  /// Mean demand of one VM's series.
  [[nodiscard]] Resources series_mean(std::size_t vm) const;

 private:
  std::size_t vms_ = 0;
  std::size_t rounds_ = 0;
  std::vector<Resources> data_;  // row-major [vm][round]
};

/// DemandModel that replays a stored series, cycling at the end.
class ReplayModel final : public DemandModel {
 public:
  ReplayModel(const TraceStore& store, std::size_t vm);

  Resources next() override;
  Resources long_run_mean() const override;

 private:
  const TraceStore& store_;
  std::size_t vm_;
  std::size_t cursor_ = 0;
};

}  // namespace glap::trace
