// Per-VM demand stream interface.
//
// A DemandModel yields one (cpu, mem) utilization sample per simulation
// round, each component expressed as a fraction of the VM's *own nominal
// allocation* in [0, 1]. Models are deterministic functions of their
// construction seed, so every consolidation algorithm in an experiment
// replays the identical stream — the fairness requirement from the paper's
// evaluation setup.
#pragma once

#include <memory>

#include "common/resources.hpp"

namespace glap::trace {

class DemandModel {
 public:
  virtual ~DemandModel() = default;

  /// Produces the demand for the next round; components are in [0, 1].
  [[nodiscard]] virtual Resources next() = 0;

  /// The long-run mean this stream fluctuates around (for tests/reports).
  [[nodiscard]] virtual Resources long_run_mean() const = 0;
};

using DemandModelPtr = std::unique_ptr<DemandModel>;

}  // namespace glap::trace
