// Concrete per-VM demand stream models.
//
// Each model drives the CPU series with a distinct workload archetype
// observed in the Google cluster traces (steady services, diurnal
// front-ends, mean-reverting batch noise, on/off bursty jobs, rare
// spikes) and pairs it with a steadier memory series (memory in the
// Google traces varies far less than CPU). All randomness comes from the
// Rng passed at construction, so streams are reproducible.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "trace/demand_model.hpp"

namespace glap::trace {

/// Mean-reverting Ornstein-Uhlenbeck component used by several models:
///   x' = x + theta * (mu - x) + sigma * N(0,1), clamped to [0, 1].
class OuProcess {
 public:
  OuProcess(double mean, double theta, double sigma, double initial)
      : mean_(mean), theta_(theta), sigma_(sigma), x_(initial) {}

  double step(Rng& rng) noexcept {
    x_ += theta_ * (mean_ - x_) + sigma_ * rng.normal();
    if (x_ < 0.0) x_ = 0.0;
    if (x_ > 1.0) x_ = 1.0;
    return x_;
  }

  void recenter(double mean) noexcept { mean_ = mean; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double value() const noexcept { return x_; }

 private:
  double mean_;
  double theta_;
  double sigma_;
  double x_;
};

/// Shared memory-series behaviour: slow OU walk around a base level.
class MemorySeries {
 public:
  MemorySeries(double base, double sigma, Rng& rng)
      : ou_(base, 0.05, sigma, base + 0.02 * rng.normal()) {}

  double step(Rng& rng) noexcept { return ou_.step(rng); }
  [[nodiscard]] double mean() const noexcept { return ou_.mean(); }

 private:
  OuProcess ou_;
};

/// Steady service: CPU stays near its base with small gaussian jitter.
class StableModel final : public DemandModel {
 public:
  StableModel(double cpu_base, double mem_base, double jitter, Rng rng);
  Resources next() override;
  Resources long_run_mean() const override;

 private:
  Rng rng_;
  double cpu_base_;
  double jitter_;
  MemorySeries mem_;
};

/// Diurnal front-end: sinusoid with one period per simulated day plus OU
/// noise. `period_rounds` is typically 720 (24 h at 2 min/round).
class DiurnalModel final : public DemandModel {
 public:
  DiurnalModel(double cpu_base, double amplitude, std::uint32_t period_rounds,
               double phase_fraction, double mem_base, Rng rng);
  Resources next() override;
  Resources long_run_mean() const override;

 private:
  Rng rng_;
  double cpu_base_;
  double amplitude_;
  std::uint32_t period_;
  double phase_;
  double jitter_;
  std::uint32_t t_ = 0;
  MemorySeries mem_;
};

/// Mean-reverting batch noise: pure OU walk around the base level.
class RandomWalkModel final : public DemandModel {
 public:
  RandomWalkModel(double cpu_base, double sigma, double mem_base, Rng rng);
  Resources next() override;
  Resources long_run_mean() const override;

 private:
  Rng rng_;
  OuProcess cpu_;
  MemorySeries mem_;
};

/// On/off bursty job: a two-state Markov regime (low/high CPU level) with
/// geometric dwell times; OU noise inside each regime.
class BurstyModel final : public DemandModel {
 public:
  BurstyModel(double low_level, double high_level, double p_low_to_high,
              double p_high_to_low, double mem_base, Rng rng);
  Resources next() override;
  Resources long_run_mean() const override;

  [[nodiscard]] bool in_burst() const noexcept { return high_; }

 private:
  Rng rng_;
  double low_level_;
  double high_level_;
  double p_up_;
  double p_down_;
  bool high_ = false;
  OuProcess cpu_;
  MemorySeries mem_;
};

/// Mostly idle with rare short spikes to a high level.
class SpikeModel final : public DemandModel {
 public:
  SpikeModel(double base, double spike_level, double spike_prob,
             std::uint32_t spike_len, double mem_base, Rng rng);
  Resources next() override;
  Resources long_run_mean() const override;

 private:
  Rng rng_;
  double base_;
  double spike_level_;
  double spike_prob_;
  std::uint32_t spike_len_;
  std::uint32_t remaining_spike_ = 0;
  MemorySeries mem_;
};

}  // namespace glap::trace
