#include "trace/trace_store.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "common/assert.hpp"
#include "common/csv.hpp"

namespace glap::trace {

TraceStore::TraceStore(std::size_t vms, std::size_t rounds)
    : vms_(vms), rounds_(rounds), data_(vms * rounds) {
  GLAP_REQUIRE(vms > 0 && rounds > 0, "trace store dimensions must be positive");
}

TraceStore TraceStore::from_models(const std::vector<DemandModel*>& models,
                                   std::size_t rounds) {
  GLAP_REQUIRE(!models.empty(), "need at least one model");
  TraceStore store(models.size(), rounds);
  for (std::size_t vm = 0; vm < models.size(); ++vm) {
    GLAP_REQUIRE(models[vm] != nullptr, "null demand model");
    for (std::size_t r = 0; r < rounds; ++r)
      store.set(vm, r, models[vm]->next());
  }
  return store;
}

void TraceStore::set(std::size_t vm, std::size_t round, Resources demand) {
  GLAP_REQUIRE(vm < vms_ && round < rounds_, "trace index out of range");
  GLAP_REQUIRE(demand.cpu >= 0.0 && demand.cpu <= 1.0 && demand.mem >= 0.0 &&
                   demand.mem <= 1.0,
               "trace demand components must be in [0,1]");
  data_[vm * rounds_ + round] = demand;
}

Resources TraceStore::at(std::size_t vm, std::size_t round) const {
  GLAP_REQUIRE(vm < vms_ && round < rounds_, "trace index out of range");
  return data_[vm * rounds_ + round];
}

Resources TraceStore::series_mean(std::size_t vm) const {
  GLAP_REQUIRE(vm < vms_, "vm index out of range");
  Resources sum;
  for (std::size_t r = 0; r < rounds_; ++r) sum += at(vm, r);
  return sum * (1.0 / static_cast<double>(rounds_));
}

void TraceStore::save_csv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.write_row({"vm", "round", "cpu", "mem"});
  for (std::size_t vm = 0; vm < vms_; ++vm)
    for (std::size_t r = 0; r < rounds_; ++r) {
      const Resources d = at(vm, r);
      writer.write_row_values({static_cast<double>(vm),
                               static_cast<double>(r), d.cpu, d.mem});
    }
}

TraceStore TraceStore::load_csv(std::istream& in) {
  const CsvTable table = read_csv(in, /*has_header=*/true);
  const std::size_t c_vm = table.column("vm");
  const std::size_t c_round = table.column("round");
  const std::size_t c_cpu = table.column("cpu");
  const std::size_t c_mem = table.column("mem");
  GLAP_REQUIRE(c_vm != CsvTable::npos && c_round != CsvTable::npos &&
                   c_cpu != CsvTable::npos && c_mem != CsvTable::npos,
               "trace CSV missing required columns vm,round,cpu,mem");

  std::size_t max_vm = 0, max_round = 0;
  for (const auto& row : table.rows) {
    max_vm = std::max(max_vm, static_cast<std::size_t>(std::stoull(row[c_vm])));
    max_round =
        std::max(max_round, static_cast<std::size_t>(std::stoull(row[c_round])));
  }
  GLAP_REQUIRE(!table.rows.empty(), "trace CSV has no rows");

  TraceStore store(max_vm + 1, max_round + 1);
  std::vector<bool> seen((max_vm + 1) * (max_round + 1), false);
  for (const auto& row : table.rows) {
    const auto vm = static_cast<std::size_t>(std::stoull(row[c_vm]));
    const auto round = static_cast<std::size_t>(std::stoull(row[c_round]));
    store.set(vm, round, {std::stod(row[c_cpu]), std::stod(row[c_mem])});
    seen[vm * (max_round + 1) + round] = true;
  }
  for (bool s : seen)
    GLAP_REQUIRE(s, "trace CSV has gaps: every (vm, round) pair is required");
  return store;
}

ReplayModel::ReplayModel(const TraceStore& store, std::size_t vm)
    : store_(store), vm_(vm) {
  GLAP_REQUIRE(vm < store.vm_count(), "vm index out of range");
  GLAP_REQUIRE(store.round_count() > 0, "empty trace store");
}

Resources ReplayModel::next() {
  const Resources d = store_.at(vm_, cursor_);
  cursor_ = (cursor_ + 1) % store_.round_count();
  return d;
}

Resources ReplayModel::long_run_mean() const { return store_.series_mean(vm_); }

}  // namespace glap::trace
