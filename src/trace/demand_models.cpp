#include "trace/demand_models.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace glap::trace {

namespace {
double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }
}

// ---------------------------------------------------------------- Stable

StableModel::StableModel(double cpu_base, double mem_base, double jitter,
                         Rng rng)
    : rng_(rng),
      cpu_base_(clamp01(cpu_base)),
      jitter_(jitter),
      mem_(clamp01(mem_base), 0.004, rng_) {
  GLAP_REQUIRE(jitter >= 0.0, "jitter must be non-negative");
}

Resources StableModel::next() {
  return {clamp01(cpu_base_ + jitter_ * rng_.normal()), mem_.step(rng_)};
}

Resources StableModel::long_run_mean() const {
  return {cpu_base_, mem_.mean()};
}

// --------------------------------------------------------------- Diurnal

DiurnalModel::DiurnalModel(double cpu_base, double amplitude,
                           std::uint32_t period_rounds, double phase_fraction,
                           double mem_base, Rng rng)
    : rng_(rng),
      cpu_base_(clamp01(cpu_base)),
      amplitude_(amplitude),
      period_(period_rounds),
      phase_(phase_fraction),
      jitter_(0.02),
      mem_(clamp01(mem_base), 0.004, rng_) {
  GLAP_REQUIRE(period_rounds > 0, "diurnal period must be positive");
}

Resources DiurnalModel::next() {
  const double angle = 2.0 * std::numbers::pi *
                       (static_cast<double>(t_) / period_ + phase_);
  ++t_;
  const double wave = amplitude_ * std::sin(angle);
  return {clamp01(cpu_base_ + wave + jitter_ * rng_.normal()),
          mem_.step(rng_)};
}

Resources DiurnalModel::long_run_mean() const {
  return {cpu_base_, mem_.mean()};
}

// ----------------------------------------------------------- Random walk

RandomWalkModel::RandomWalkModel(double cpu_base, double sigma,
                                 double mem_base, Rng rng)
    : rng_(rng),
      cpu_(clamp01(cpu_base), 0.08, sigma, clamp01(cpu_base)),
      mem_(clamp01(mem_base), 0.004, rng_) {}

Resources RandomWalkModel::next() {
  return {cpu_.step(rng_), mem_.step(rng_)};
}

Resources RandomWalkModel::long_run_mean() const {
  return {cpu_.mean(), mem_.mean()};
}

// ---------------------------------------------------------------- Bursty

BurstyModel::BurstyModel(double low_level, double high_level,
                         double p_low_to_high, double p_high_to_low,
                         double mem_base, Rng rng)
    : rng_(rng),
      low_level_(clamp01(low_level)),
      high_level_(clamp01(high_level)),
      p_up_(p_low_to_high),
      p_down_(p_high_to_low),
      cpu_(low_level_, 0.25, 0.02, low_level_),
      mem_(clamp01(mem_base), 0.005, rng_) {
  GLAP_REQUIRE(p_low_to_high >= 0.0 && p_low_to_high <= 1.0,
               "transition probability out of range");
  GLAP_REQUIRE(p_high_to_low >= 0.0 && p_high_to_low <= 1.0,
               "transition probability out of range");
}

Resources BurstyModel::next() {
  if (high_) {
    if (rng_.bernoulli(p_down_)) high_ = false;
  } else {
    if (rng_.bernoulli(p_up_)) high_ = true;
  }
  cpu_.recenter(high_ ? high_level_ : low_level_);
  return {cpu_.step(rng_), mem_.step(rng_)};
}

Resources BurstyModel::long_run_mean() const {
  // Stationary distribution of the two-state chain.
  const double denom = p_up_ + p_down_;
  const double frac_high = denom > 0.0 ? p_up_ / denom : 0.0;
  return {low_level_ + frac_high * (high_level_ - low_level_), mem_.mean()};
}

// ----------------------------------------------------------------- Spike

SpikeModel::SpikeModel(double base, double spike_level, double spike_prob,
                       std::uint32_t spike_len, double mem_base, Rng rng)
    : rng_(rng),
      base_(clamp01(base)),
      spike_level_(clamp01(spike_level)),
      spike_prob_(spike_prob),
      spike_len_(std::max<std::uint32_t>(1, spike_len)),
      mem_(clamp01(mem_base), 0.004, rng_) {
  GLAP_REQUIRE(spike_prob >= 0.0 && spike_prob <= 1.0,
               "spike probability out of range");
}

Resources SpikeModel::next() {
  double cpu;
  if (remaining_spike_ > 0) {
    --remaining_spike_;
    cpu = clamp01(spike_level_ + 0.03 * rng_.normal());
  } else {
    if (rng_.bernoulli(spike_prob_)) {
      remaining_spike_ = spike_len_ - 1;
      cpu = clamp01(spike_level_ + 0.03 * rng_.normal());
    } else {
      cpu = clamp01(base_ + 0.02 * rng_.normal());
    }
  }
  return {cpu, mem_.step(rng_)};
}

Resources SpikeModel::long_run_mean() const {
  // Expected fraction of rounds spent in a spike.
  const double cycle = 1.0 / std::max(spike_prob_, 1e-9) +
                       static_cast<double>(spike_len_ - 1);
  const double frac = std::min(1.0, static_cast<double>(spike_len_) / cycle);
  return {base_ + frac * (spike_level_ - base_), mem_.mean()};
}

}  // namespace glap::trace
