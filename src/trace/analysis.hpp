// Time-series analysis helpers for workload traces: the statistics used
// to validate that the synthetic ensemble matches the published
// properties of the Google traces, and available to users inspecting
// their own CSV traces.
#pragma once

#include <cstddef>
#include <vector>

namespace glap::trace {

/// Lag-k autocorrelation of a series; 0 for degenerate inputs.
/// Diurnal/bursty workloads show high positive low-lag autocorrelation —
/// the predictability GLAP's learning exploits.
[[nodiscard]] double autocorrelation(const std::vector<double>& series,
                                     std::size_t lag);

/// Fraction of samples at or above `threshold`.
[[nodiscard]] double burst_fraction(const std::vector<double>& series,
                                    double threshold);

/// Mean length of maximal runs at/above `threshold` (0 when none) —
/// the burst-duration statistic that separates spiky from bursty jobs.
[[nodiscard]] double mean_burst_length(const std::vector<double>& series,
                                       double threshold);

/// Peak-to-mean ratio (0 for empty or zero-mean series).
[[nodiscard]] double peak_to_mean(const std::vector<double>& series);

}  // namespace glap::trace
