// Streaming and batch statistics used by the metric pipeline:
// Welford accumulators, percentile summaries, histograms, and the
// cosine-similarity helper the Fig. 5 convergence experiment relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace glap {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median / arbitrary-percentile summary of a batch of samples.
/// Percentiles use linear interpolation between order statistics
/// (the same convention as numpy's default).
struct PercentileSummary {
  double p10 = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Computes an interpolated percentile; q in [0, 100]. Empty input -> 0.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Computes the p10/median/p90 summary the paper reports in Figs. 7-8,
/// plus the p95/p99 tail the trace-stats tooling reports for latency-like
/// fields (network delivery delay, per-round migration counts).
[[nodiscard]] PercentileSummary summarize(std::vector<double> samples);

/// Cosine similarity of two equal-length vectors; returns 1 for two
/// zero vectors (identical) and 0 when exactly one is zero.
[[nodiscard]] double cosine_similarity(const std::vector<double>& a,
                                       const std::vector<double>& b);

/// Fixed-width histogram over [lo, hi]; out-of-range samples clamp to the
/// edge bins. Used by the trace explorer example and trace tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Renders an ASCII bar chart (one line per bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace glap
