// Trace analysis over the typed events of trace_reader: per-VM migration
// lineage, per-PM overload episodes, the physical-invariant verifier
// behind `glap-trace check`, and per-kind statistics.
//
// All four analyzers are single-pass streaming consumers: feed every
// event of a trace to add() in file order, then call finish()/accessors.
// They assume the trace of ONE complete run_experiment invocation — the
// invariants lean on the harness's per-round line ordering (buffered
// interaction events, then the "round" summary, then the driver overload
// scan; see DESIGN.md §10.2), which concatenated or truncated traces do
// not satisfy.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/trace_reader.hpp"

namespace glap::trace {

// ---- lineage ------------------------------------------------------------

struct MigrationHop {
  std::uint64_t round = 0;
  std::int64_t from = 0;
  std::int64_t to = 0;
  double cpu = 0.0;
  double energy_j = 0.0;
};

struct OccupancyEvent {
  enum class What : std::uint8_t { kVmIn, kVmOut, kPowerOn, kPowerOff };
  std::uint64_t round = 0;
  What what = What::kVmIn;
  std::int64_t vm = -1;  ///< -1 for power events
};

/// Reconstructs where every VM travelled and what happened to every PM.
/// Maps are keyed by id so report output is deterministic.
class LineageBuilder {
 public:
  void add(const TraceEvent& e);

  [[nodiscard]] const std::map<std::int64_t, std::vector<MigrationHop>>&
  vm_chains() const noexcept {
    return vm_chains_;
  }
  [[nodiscard]] const std::map<std::int64_t, std::vector<OccupancyEvent>>&
  pm_timelines() const noexcept {
    return pm_timelines_;
  }

 private:
  std::map<std::int64_t, std::vector<MigrationHop>> vm_chains_;
  std::map<std::int64_t, std::vector<OccupancyEvent>> pm_timelines_;
};

// ---- overload episodes --------------------------------------------------

/// A maximal run of consecutive rounds in which one PM was reported
/// overloaded by the driver's per-round scan.
struct OverloadEpisode {
  std::int64_t pm = 0;
  std::uint64_t onset_round = 0;
  std::uint64_t rounds = 0;  ///< consecutive overload reports
  double peak_cpu = 0.0;
  /// True when an out-migration from the PM happened in the round right
  /// after the last overload report (the shed that ended the episode);
  /// false means demand dropped on its own (or the trace ended first).
  bool resolved_by_migration = false;
  std::int64_t resolving_vm = -1;
  std::uint64_t resolving_round = 0;
  /// Episode still open when the trace ended.
  bool ongoing = false;
};

class EpisodeDetector {
 public:
  void add(const TraceEvent& e);
  /// Closes open episodes and returns all episodes in (onset, pm) order.
  [[nodiscard]] std::vector<OverloadEpisode> finish();

 private:
  struct Open {
    std::uint64_t onset = 0;
    std::uint64_t last = 0;
    double peak = 0.0;
  };
  struct LastShed {
    std::uint64_t round = 0;
    std::int64_t vm = -1;
  };
  void close(std::int64_t pm, const Open& open, bool ongoing);

  std::map<std::int64_t, Open> open_;
  std::map<std::int64_t, LastShed> last_shed_;
  std::vector<OverloadEpisode> closed_;
  std::uint64_t max_round_seen_ = 0;
};

// ---- invariant checking -------------------------------------------------

struct Violation {
  std::size_t line = 0;  ///< 1-based trace line (0 for end-of-trace checks)
  std::uint64_t round = 0;
  std::string rule;     ///< stable rule id, e.g. "migration-into-off"
  std::string message;  ///< pointed human-readable diagnostic
};

/// Verifies the physical invariants every run_experiment trace satisfies
/// by construction (the rules mirror DataCenter's own preconditions plus
/// the harness's conservation arithmetic — see DESIGN.md §10.5):
///
///   monotone-rounds          round numbers never decrease
///   summary-gap              "round" summaries are consecutive
///   migration-self           from != to
///   migration-chain          a VM migrates from the PM it was last seen on
///   migration-from-off /     neither endpoint of a migration is a PM whose
///   migration-into-off         last power event switched it off
///   migration-into-overloaded  (strict_overload_target only) no migration
///                              into a PM still marked by the most recent
///                              overload report; the mark clears once the PM
///                              sheds a VM, power-cycles, or a newer report
///                              completes without naming it
///   power-alternation        per-PM power events alternate on/off
///   power-off-occupied       a PM only powers off when every VM that ever
///                            migrated onto it has migrated away (churn
///                            departures are trace-invisible, so traces of
///                            churn runs need churn_tolerant)
///   overload-off-pm          overload reports only name powered-on PMs
///   overload-duplicate       one report per PM per round
///   summary-migrations       summary.migrations == migration lines that round
///   summary-overloaded       summary.overloaded_pms == overload lines
///   summary-active-delta     active_pms deltas == net power events between
///                            consecutive summaries (capacity conservation)
///   qsim-range               similarity in [-1, 1]
///   activity-alternation     per-PM activity events alternate: a PM parks
///                            only while awake and re-activates only while
///                            parked (mirrors Engine's quiescent set)
///   activity-park-off-pm     only powered-on PMs park (the engine un-parks
///                            a node before any lifecycle transition)
///   activity-reason          parking carries reason "converged"; wakes
///                            carry any other known sim::WakeReason name
///   net-deliver-unsent       a deliver/drop references a msg id with no
///                            prior send (no deliver-before-send)
///   net-delay-arithmetic     deliver.round == send.round + deliver.delay
///   net-terminal-duplicate   at most one terminal (deliver or drop) per
///                            msg id — a message cannot be both delivered
///                            and dropped
///   net-drop-reason          drops carry reason "loss" or "congestion"
///                            (a drop requires a lossy or congested link);
///                            queue lines name link "access" or "uplink"
///   net-queue-zero           queue lines report a positive backlog — the
///                            writer skips idle links (DESIGN.md §13.6),
///                            so readers tolerate per-round gaps in queue
///                            coverage rather than expecting zero lines
class InvariantChecker {
 public:
  struct Options {
    /// Accept traces of churn-enabled runs: VM departures do not emit
    /// trace events, so occupancy-based rules cannot be enforced.
    bool churn_tolerant = false;
    /// Enforce migration-into-overloaded. Advisory: the per-round demand
    /// re-advance can clear a real overload with no trace-visible event,
    /// so a migration into a PM from the last overload report may be
    /// legitimate (the accepting protocol saw the new, lower demand).
    bool strict_overload_target = false;
  };

  InvariantChecker() = default;
  explicit InvariantChecker(Options options) : options_(options) {}

  /// `line` is the 1-based line number (TraceReader::line_number()).
  void add(const TraceEvent& e, std::size_t line);

  /// Runs the end-of-trace checks; call exactly once, after the last add.
  void finish();

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t events_checked() const noexcept {
    return events_checked_;
  }

 private:
  void report(std::size_t line, std::uint64_t round, const char* rule,
              std::string message);
  /// Completes the open overload report once an event proves the driver
  /// scan for that round is over.
  void finalize_overload_report();

  Options options_;
  std::vector<Violation> violations_;
  std::uint64_t events_checked_ = 0;

  bool any_event_ = false;
  std::uint64_t last_round_ = 0;

  std::map<std::int64_t, bool> power_on_;        ///< last power event per PM
  std::map<std::int64_t, std::int64_t> vm_host_;  ///< last known host per VM
  std::map<std::int64_t, std::set<std::int64_t>> occupants_;

  /// PMs named by the most recent *completed* overload report that have
  /// not shed a VM or power-cycled since.
  std::set<std::int64_t> still_overloaded_;

  /// PMs currently parked per the activity event stream.
  std::set<std::int64_t> parked_;

  // Open overload report (driver scan in progress for report_round_).
  bool report_open_ = false;
  std::uint64_t report_round_ = 0;
  std::set<std::int64_t> report_pms_;
  std::size_t report_first_line_ = 0;

  // Pending summary whose overload scan has not completed yet.
  bool have_summary_ = false;
  std::uint64_t summary_round_ = 0;
  std::uint64_t summary_overloaded_ = 0;
  std::size_t summary_line_ = 0;

  // Previous completed summary (capacity-conservation anchor).
  bool have_prev_summary_ = false;
  std::uint64_t prev_summary_round_ = 0;
  std::uint64_t prev_summary_active_ = 0;

  std::uint64_t migrations_this_round_ = 0;
  std::uint64_t migration_round_ = 0;
  std::int64_t net_power_delta_ = 0;  ///< since the last summary

  /// Network-model message ledger: send round + whether a terminal event
  /// (deliver or drop) has been seen, keyed by msg id.
  struct NetMsg {
    std::uint64_t send_round = 0;
    bool terminal = false;
  };
  std::map<std::int64_t, NetMsg> net_msgs_;
};

// ---- statistics ---------------------------------------------------------

struct TraceStats {
  std::uint64_t counts[kEventKindCount] = {};
  std::uint64_t total_lines = 0;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;

  // Value series for percentile reporting.
  std::vector<double> migration_cpu;
  std::vector<double> migration_energy_j;
  std::vector<double> shuffle_sent;
  std::vector<double> net_send_bytes;     ///< payload of "send" events
  std::vector<double> net_deliver_delay;  ///< rounds late per "deliver"
  std::vector<double> overload_cpu;
  std::vector<double> qsim_similarity;
  std::vector<double> round_active_pms;
  std::vector<double> round_overloaded_pms;
  std::vector<double> round_migrations;
  std::vector<double> round_messages;
  std::vector<double> round_bytes;
};

class StatsCollector {
 public:
  void add(const TraceEvent& e);
  [[nodiscard]] const TraceStats& stats() const noexcept { return stats_; }

 private:
  TraceStats stats_;
};

}  // namespace glap::trace
