#include "common/trace_format.hpp"

#include <charconv>
#include <cstring>

#include "common/json.hpp"
#include "common/tracing.hpp"

namespace glap::trace {

namespace {

void app_i64(std::string* out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out->append(buf, res.ptr);
}

void app_u64(std::string* out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out->append(buf, res.ptr);
}

void app_bool(std::string* out, bool v) { *out += v ? "true" : "false"; }

void app_double(std::string* out, double v) { *out += json_double(v); }

// ---- GTB primitive writers (explicit little-endian byte order) ----------

void put_u8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_i64(std::string* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

// ---- GTB primitive readers ----------------------------------------------

class GtbCursor {
 public:
  GtbCursor(std::string_view payload, std::string* error)
      : p_(payload.data()),
        end_(payload.data() + payload.size()),
        error_(error) {}

  bool fail(const char* why) {
    if (error_ != nullptr && error_->empty()) *error_ = why;
    ok_ = false;
    return false;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return p_ == end_; }

  bool read_u8(std::uint8_t* out) {
    if (end_ - p_ < 1) return fail("record payload ends mid-field");
    *out = static_cast<std::uint8_t>(*p_++);
    return true;
  }

  bool read_u32(std::uint32_t* out) {
    if (end_ - p_ < 4) return fail("record payload ends mid-field");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    p_ += 4;
    *out = v;
    return true;
  }

  bool read_u64(std::uint64_t* out) {
    if (end_ - p_ < 8) return fail("record payload ends mid-field");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    p_ += 8;
    *out = v;
    return true;
  }

  bool read_i64(std::int64_t* out) {
    std::uint64_t v = 0;
    if (!read_u64(&v)) return false;
    *out = static_cast<std::int64_t>(v);
    return true;
  }

  bool read_f64(double* out) {
    std::uint64_t bits = 0;
    if (!read_u64(&bits)) return false;
    std::memcpy(out, &bits, sizeof *out);
    return true;
  }

 private:
  const char* p_;
  const char* end_;
  std::string* error_;
  bool ok_ = true;
};

bool unknown_name(const char* what, std::string_view name,
                  std::string* error) {
  if (error != nullptr && error->empty())
    *error = std::string("unknown ") + what + " '" + std::string(name) + "'";
  return false;
}

}  // namespace

// ---- name/code tables ---------------------------------------------------

const char* net_channel_name(std::int64_t code) {
  switch (code) {
    case 0: return "shuffle";
    case 1: return "learning";
    case 2: return "aggregation";
    case 3: return "consolidation";
    case 4: return "probe";
    case 5: return "migration";
  }
  return "?";
}

bool net_channel_code(std::string_view name, std::int64_t* out) {
  for (std::int64_t c = 0; c <= 5; ++c)
    if (name == net_channel_name(c)) {
      *out = c;
      return true;
    }
  return false;
}

const char* net_drop_reason_name(std::int64_t code) {
  switch (code) {
    case 1: return "loss";
    case 2: return "congestion";
  }
  return "?";
}

bool net_drop_reason_code(std::string_view name, std::int64_t* out) {
  for (std::int64_t c = 1; c <= 2; ++c)
    if (name == net_drop_reason_name(c)) {
      *out = c;
      return true;
    }
  return false;
}

bool activity_reason_code(std::string_view name, std::int64_t* out) {
  for (std::int64_t c = 0; c <= 7; ++c)
    if (name == activity_reason_name(c)) {
      *out = c;
      return true;
    }
  return false;
}

const char* net_op_name(std::int64_t code) {
  switch (code) {
    case 0: return "send";
    case 1: return "deliver";
    case 2: return "drop";
    case 3: return "queue";
  }
  return "?";
}

bool net_op_code(std::string_view name, std::int64_t* out) {
  for (std::int64_t c = 0; c <= 3; ++c)
    if (name == net_op_name(c)) {
      *out = c;
      return true;
    }
  return false;
}

const char* net_link_name(std::int64_t code) {
  switch (code) {
    case 0: return "access";
    case 1: return "uplink";
  }
  return "?";
}

bool net_link_code(std::string_view name, std::int64_t* out) {
  for (std::int64_t c = 0; c <= 1; ++c)
    if (name == net_link_name(c)) {
      *out = c;
      return true;
    }
  return false;
}

// ---- JSONL --------------------------------------------------------------

void render_jsonl(const TraceEvent& e, std::string* out) {
  *out += "{\"ev\":\"";
  *out += event_kind_name(e.kind);
  *out += "\",\"round\":";
  app_u64(out, e.round);
  switch (e.kind) {
    case EventKind::kMigration:
      *out += ",\"vm\":";
      app_i64(out, e.migration.vm);
      *out += ",\"from\":";
      app_i64(out, e.migration.from);
      *out += ",\"to\":";
      app_i64(out, e.migration.to);
      *out += ",\"cpu\":";
      app_double(out, e.migration.cpu);
      *out += ",\"energy_j\":";
      app_double(out, e.migration.energy_j);
      break;
    case EventKind::kPower:
      *out += ",\"pm\":";
      app_i64(out, e.power.pm);
      *out += ",\"on\":";
      app_bool(out, e.power.on);
      break;
    case EventKind::kShuffle:
      *out += ",\"initiator\":";
      app_i64(out, e.shuffle.initiator);
      *out += ",\"peer\":";
      app_i64(out, e.shuffle.peer);
      *out += ",\"sent\":";
      app_i64(out, e.shuffle.sent);
      *out += ",\"reply\":";
      app_i64(out, e.shuffle.reply);
      break;
    case EventKind::kOverload:
      *out += ",\"pm\":";
      app_i64(out, e.overload.pm);
      *out += ",\"cpu\":";
      app_double(out, e.overload.cpu);
      break;
    case EventKind::kFault:
      *out += ",\"pm\":";
      app_i64(out, e.fault.pm);
      *out += ",\"kind\":";
      app_i64(out, e.fault.code);
      *out += ",\"value\":";
      app_double(out, e.fault.value);
      break;
    case EventKind::kActivity:
      *out += ",\"pm\":";
      app_i64(out, e.activity.pm);
      *out += ",\"awake\":";
      app_bool(out, e.activity.awake);
      *out += ",\"reason\":\"";
      *out += e.activity.reason;
      *out += '"';
      break;
    case EventKind::kNet:
      *out += ",\"op\":\"";
      *out += e.net.op;
      *out += '"';
      if (e.net.op == "queue") {
        *out += ",\"link\":\"";
        *out += e.net.link;
        *out += "\",\"id\":";
        app_i64(out, e.net.link_id);
        *out += ",\"bytes\":";
        app_i64(out, e.net.bytes);
      } else {
        *out += ",\"src\":";
        app_i64(out, e.net.src);
        *out += ",\"dst\":";
        app_i64(out, e.net.dst);
        *out += ",\"msg\":";
        app_i64(out, e.net.msg);
        if (e.net.op == "send") {
          *out += ",\"bytes\":";
          app_i64(out, e.net.bytes);
          *out += ",\"channel\":\"";
          *out += e.net.channel;
          *out += '"';
        } else if (e.net.op == "deliver") {
          *out += ",\"delay\":";
          app_i64(out, e.net.delay);
        } else {
          *out += ",\"reason\":\"";
          *out += e.net.reason;
          *out += '"';
        }
      }
      break;
    case EventKind::kRound:
      *out += ",\"active_pms\":";
      app_u64(out, e.summary.active_pms);
      *out += ",\"overloaded_pms\":";
      app_u64(out, e.summary.overloaded_pms);
      *out += ",\"migrations\":";
      app_u64(out, e.summary.migrations);
      *out += ",\"messages\":";
      app_u64(out, e.summary.messages);
      *out += ",\"bytes\":";
      app_u64(out, e.summary.bytes);
      break;
    case EventKind::kQsim:
      *out += ",\"similarity\":";
      app_double(out, e.qsim.similarity);
      break;
    case EventKind::kRelearn:
      break;
    case EventKind::kShardBytes:
      *out += ",\"bytes\":[";
      for (std::size_t i = 0; i < e.shard_bytes.size(); ++i) {
        if (i) *out += ',';
        app_u64(out, e.shard_bytes[i]);
      }
      *out += ']';
      break;
  }
  *out += "}\n";
}

// ---- GTB ----------------------------------------------------------------

void append_gtb_header(std::string* out) {
  out->append(kGtbMagic, sizeof kGtbMagic);
  put_u32(out, kGtbVersion);
}

bool append_gtb_record(const TraceEvent& e, std::string* out,
                       std::string* error) {
  const std::size_t len_at = out->size();
  put_u32(out, 0);  // length backpatched below
  const std::size_t payload_at = out->size();
  put_u8(out, static_cast<std::uint8_t>(e.kind));
  put_u64(out, e.round);
  bool ok = true;
  switch (e.kind) {
    case EventKind::kMigration:
      put_i64(out, e.migration.vm);
      put_i64(out, e.migration.from);
      put_i64(out, e.migration.to);
      put_f64(out, e.migration.cpu);
      put_f64(out, e.migration.energy_j);
      break;
    case EventKind::kPower:
      put_i64(out, e.power.pm);
      put_u8(out, e.power.on ? 1 : 0);
      break;
    case EventKind::kShuffle:
      put_i64(out, e.shuffle.initiator);
      put_i64(out, e.shuffle.peer);
      put_i64(out, e.shuffle.sent);
      put_i64(out, e.shuffle.reply);
      break;
    case EventKind::kOverload:
      put_i64(out, e.overload.pm);
      put_f64(out, e.overload.cpu);
      break;
    case EventKind::kFault:
      put_i64(out, e.fault.pm);
      put_i64(out, e.fault.code);
      put_f64(out, e.fault.value);
      break;
    case EventKind::kActivity: {
      std::int64_t reason = 0;
      if (!activity_reason_code(e.activity.reason, &reason))
        ok = unknown_name("activity reason", e.activity.reason, error);
      put_i64(out, e.activity.pm);
      put_u8(out, e.activity.awake ? 1 : 0);
      put_u8(out, static_cast<std::uint8_t>(reason));
      break;
    }
    case EventKind::kNet: {
      std::int64_t op = 0;
      if (!net_op_code(e.net.op, &op)) {
        ok = unknown_name("net op", e.net.op, error);
        break;
      }
      put_u8(out, static_cast<std::uint8_t>(op));
      if (op == 3) {  // queue
        std::int64_t link = 0;
        if (!net_link_code(e.net.link, &link))
          ok = unknown_name("net link", e.net.link, error);
        put_u8(out, static_cast<std::uint8_t>(link));
        put_i64(out, e.net.link_id);
        put_i64(out, e.net.bytes);
      } else {
        put_i64(out, e.net.src);
        put_i64(out, e.net.dst);
        put_i64(out, e.net.msg);
        if (op == 0) {  // send
          std::int64_t channel = 0;
          if (!net_channel_code(e.net.channel, &channel))
            ok = unknown_name("net channel", e.net.channel, error);
          put_i64(out, e.net.bytes);
          put_u8(out, static_cast<std::uint8_t>(channel));
        } else if (op == 1) {  // deliver
          put_i64(out, e.net.delay);
        } else {  // drop
          std::int64_t reason = 0;
          if (!net_drop_reason_code(e.net.reason, &reason))
            ok = unknown_name("net drop reason", e.net.reason, error);
          put_u8(out, static_cast<std::uint8_t>(reason));
        }
      }
      break;
    }
    case EventKind::kRound:
      put_u64(out, e.summary.active_pms);
      put_u64(out, e.summary.overloaded_pms);
      put_u64(out, e.summary.migrations);
      put_u64(out, e.summary.messages);
      put_u64(out, e.summary.bytes);
      break;
    case EventKind::kQsim:
      put_f64(out, e.qsim.similarity);
      break;
    case EventKind::kRelearn:
      break;
    case EventKind::kShardBytes:
      put_u32(out, static_cast<std::uint32_t>(e.shard_bytes.size()));
      for (const std::uint64_t v : e.shard_bytes) put_u64(out, v);
      break;
  }
  if (!ok) {
    out->resize(len_at);
    return false;
  }
  const auto len = static_cast<std::uint32_t>(out->size() - payload_at);
  for (int i = 0; i < 4; ++i)
    (*out)[len_at + static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xffu);
  return true;
}

bool decode_gtb_payload(std::string_view payload, TraceEvent* out,
                        std::string* error) {
  if (error != nullptr) error->clear();
  GtbCursor in(payload, error);
  std::uint8_t kind_code = 0;
  TraceEvent parsed;
  if (!in.read_u8(&kind_code)) return false;
  if (kind_code >= kEventKindCount) {
    return in.fail("unknown event kind code");
  }
  parsed.kind = static_cast<EventKind>(kind_code);
  if (!in.read_u64(&parsed.round)) return false;
  switch (parsed.kind) {
    case EventKind::kMigration:
      in.read_i64(&parsed.migration.vm);
      in.read_i64(&parsed.migration.from);
      in.read_i64(&parsed.migration.to);
      in.read_f64(&parsed.migration.cpu);
      in.read_f64(&parsed.migration.energy_j);
      break;
    case EventKind::kPower: {
      std::uint8_t on = 0;
      in.read_i64(&parsed.power.pm);
      in.read_u8(&on);
      parsed.power.on = on != 0;
      break;
    }
    case EventKind::kShuffle:
      in.read_i64(&parsed.shuffle.initiator);
      in.read_i64(&parsed.shuffle.peer);
      in.read_i64(&parsed.shuffle.sent);
      in.read_i64(&parsed.shuffle.reply);
      break;
    case EventKind::kOverload:
      in.read_i64(&parsed.overload.pm);
      in.read_f64(&parsed.overload.cpu);
      break;
    case EventKind::kFault:
      in.read_i64(&parsed.fault.pm);
      in.read_i64(&parsed.fault.code);
      in.read_f64(&parsed.fault.value);
      break;
    case EventKind::kActivity: {
      std::uint8_t awake = 0, reason = 0;
      in.read_i64(&parsed.activity.pm);
      in.read_u8(&awake);
      in.read_u8(&reason);
      if (!in.ok()) break;
      parsed.activity.awake = awake != 0;
      if (reason > 7) return in.fail("unknown activity reason code");
      parsed.activity.reason = activity_reason_name(reason);
      break;
    }
    case EventKind::kNet: {
      std::uint8_t op = 0;
      if (!in.read_u8(&op)) break;
      if (op > 3) return in.fail("unknown net op code");
      parsed.net.op = net_op_name(op);
      if (op == 3) {  // queue
        std::uint8_t link = 0;
        in.read_u8(&link);
        in.read_i64(&parsed.net.link_id);
        in.read_i64(&parsed.net.bytes);
        if (!in.ok()) break;
        if (link > 1) return in.fail("unknown net link code");
        parsed.net.link = net_link_name(link);
      } else {
        in.read_i64(&parsed.net.src);
        in.read_i64(&parsed.net.dst);
        in.read_i64(&parsed.net.msg);
        if (op == 0) {  // send
          std::uint8_t channel = 0;
          in.read_i64(&parsed.net.bytes);
          in.read_u8(&channel);
          if (!in.ok()) break;
          if (channel > 5) return in.fail("unknown net channel code");
          parsed.net.channel = net_channel_name(channel);
        } else if (op == 1) {  // deliver
          in.read_i64(&parsed.net.delay);
        } else {  // drop
          std::uint8_t reason = 0;
          in.read_u8(&reason);
          if (!in.ok()) break;
          if (reason < 1 || reason > 2)
            return in.fail("unknown net drop reason code");
          parsed.net.reason = net_drop_reason_name(reason);
        }
      }
      break;
    }
    case EventKind::kRound:
      in.read_u64(&parsed.summary.active_pms);
      in.read_u64(&parsed.summary.overloaded_pms);
      in.read_u64(&parsed.summary.migrations);
      in.read_u64(&parsed.summary.messages);
      in.read_u64(&parsed.summary.bytes);
      break;
    case EventKind::kQsim:
      in.read_f64(&parsed.qsim.similarity);
      break;
    case EventKind::kRelearn:
      break;
    case EventKind::kShardBytes: {
      std::uint32_t count = 0;
      if (!in.read_u32(&count)) break;
      if (static_cast<std::size_t>(count) * 8 > payload.size())
        return in.fail("shard_bytes count exceeds the record payload");
      parsed.shard_bytes.resize(count);
      for (std::uint32_t i = 0; i < count && in.ok(); ++i)
        in.read_u64(&parsed.shard_bytes[i]);
      break;
    }
  }
  if (!in.ok()) return false;
  if (!in.at_end()) return in.fail("trailing bytes after the record");
  *out = std::move(parsed);
  return true;
}

}  // namespace glap::trace
