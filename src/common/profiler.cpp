#include "common/profiler.hpp"

#include "common/assert.hpp"

namespace glap::prof {

PhaseProfiler::PhaseProfiler() {
  labels_[kSelect] = "select";
  labels_[kCommit] = "commit";
  for (std::size_t slot = 0; slot + kFirstSlot < kMaxPhases; ++slot)
    labels_[kFirstSlot + slot] = "execute.slot" + std::to_string(slot);
}

void PhaseProfiler::set_label(std::size_t phase, std::string label) {
  GLAP_REQUIRE(phase < kMaxPhases, "profiler phase out of range");
  GLAP_REQUIRE(!label.empty(), "profiler phase label must not be empty");
  labels_[phase] = std::move(label);
}

std::vector<PhaseProfiler::PhaseTotals> PhaseProfiler::totals() const {
  std::vector<PhaseTotals> out;
  for (std::size_t phase = 0; phase < kMaxPhases; ++phase) {
    PhaseTotals total;
    total.phase = phase;
    total.label = labels_[phase];
    total.deterministic = phase != kSelect;
    for (const Shard& shard : shards_) {
      total.calls += shard.cells[phase].calls;
      total.wall_ns += shard.cells[phase].ns;
    }
    if (total.calls > 0 || phase < kFirstSlot) out.push_back(total);
  }
  return out;
}

}  // namespace glap::prof
