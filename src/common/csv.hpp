// Tiny CSV reader/writer. Used to persist per-round metric series from
// bench runs and to load externally supplied (real Google Cluster) traces.
// Supports RFC-4180 style quoting for fields containing commas/quotes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace glap {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);
  /// Convenience overload that formats doubles with %.6g.
  void write_row_values(const std::vector<double>& values);

  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or npos when missing.
  [[nodiscard]] std::size_t column(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parses a whole CSV document; first row is treated as the header when
/// `has_header` is true. Throws glap::precondition_error on malformed input
/// (unterminated quote).
[[nodiscard]] CsvTable read_csv(std::istream& in, bool has_header = true);

/// Parses one CSV record into fields (handles quoted fields).
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace glap
