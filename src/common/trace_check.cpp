#include "common/trace_check.hpp"

#include <algorithm>
#include <sstream>

namespace glap::trace {

// ---- LineageBuilder -----------------------------------------------------

void LineageBuilder::add(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kMigration: {
      vm_chains_[e.migration.vm].push_back({e.round, e.migration.from,
                                            e.migration.to, e.migration.cpu,
                                            e.migration.energy_j});
      pm_timelines_[e.migration.from].push_back(
          {e.round, OccupancyEvent::What::kVmOut, e.migration.vm});
      pm_timelines_[e.migration.to].push_back(
          {e.round, OccupancyEvent::What::kVmIn, e.migration.vm});
      break;
    }
    case EventKind::kPower:
      pm_timelines_[e.power.pm].push_back(
          {e.round,
           e.power.on ? OccupancyEvent::What::kPowerOn
                      : OccupancyEvent::What::kPowerOff,
           -1});
      break;
    default:
      break;
  }
}

// ---- EpisodeDetector ----------------------------------------------------

void EpisodeDetector::close(std::int64_t pm, const Open& open, bool ongoing) {
  OverloadEpisode episode;
  episode.pm = pm;
  episode.onset_round = open.onset;
  episode.rounds = open.last - open.onset + 1;
  episode.peak_cpu = open.peak;
  episode.ongoing = ongoing;
  // The shed that ends an episode lands in the round right after the last
  // overload report; migrations of that round precede the report scan in
  // the trace, so by close time the shed (if any) has been seen.
  const auto shed = last_shed_.find(pm);
  if (!ongoing && shed != last_shed_.end() &&
      shed->second.round == open.last + 1) {
    episode.resolved_by_migration = true;
    episode.resolving_vm = shed->second.vm;
    episode.resolving_round = shed->second.round;
  }
  closed_.push_back(episode);
}

void EpisodeDetector::add(const TraceEvent& e) {
  max_round_seen_ = std::max(max_round_seen_, e.round);
  if (e.kind == EventKind::kMigration) {
    last_shed_[e.migration.from] = {e.round, e.migration.vm};
    return;
  }
  if (e.kind != EventKind::kOverload) return;
  const std::int64_t pm = e.overload.pm;
  auto it = open_.find(pm);
  if (it != open_.end()) {
    if (e.round <= it->second.last + 1) {  // consecutive (or duplicate) report
      it->second.last = std::max(it->second.last, e.round);
      it->second.peak = std::max(it->second.peak, e.overload.cpu);
      return;
    }
    close(pm, it->second, /*ongoing=*/false);
    open_.erase(it);
  }
  open_[pm] = {e.round, e.round, e.overload.cpu};
}

std::vector<OverloadEpisode> EpisodeDetector::finish() {
  for (const auto& [pm, open] : open_) {
    // An episode whose last report is before the final round did end; one
    // reaching the final round is cut off by the end of the trace.
    close(pm, open, /*ongoing=*/open.last >= max_round_seen_);
  }
  open_.clear();
  std::vector<OverloadEpisode> out = std::move(closed_);
  closed_.clear();
  std::sort(out.begin(), out.end(),
            [](const OverloadEpisode& a, const OverloadEpisode& b) {
              return a.onset_round != b.onset_round
                         ? a.onset_round < b.onset_round
                         : a.pm < b.pm;
            });
  return out;
}

// ---- InvariantChecker ---------------------------------------------------

void InvariantChecker::report(std::size_t line, std::uint64_t round,
                              const char* rule, std::string message) {
  violations_.push_back({line, round, rule, std::move(message)});
}

void InvariantChecker::finalize_overload_report() {
  if (report_open_) {
    if (have_summary_ && summary_round_ == report_round_) {
      if (report_pms_.size() != summary_overloaded_) {
        std::ostringstream msg;
        msg << "round " << report_round_ << " summary claims "
            << summary_overloaded_ << " overloaded PMs but the driver scan "
            << "reported " << report_pms_.size();
        report(report_first_line_, report_round_, "summary-overloaded",
               msg.str());
      }
      summary_overloaded_ = 0;  // resolved
    }
    still_overloaded_ = std::move(report_pms_);
    report_pms_.clear();
    report_open_ = false;
    have_summary_ = have_summary_ && summary_round_ != report_round_;
  } else if (have_summary_) {
    // Summary announced overloads but no overload line followed, or a
    // clean round: either way the completed report is empty.
    if (summary_overloaded_ != 0) {
      std::ostringstream msg;
      msg << "round " << summary_round_ << " summary claims "
          << summary_overloaded_
          << " overloaded PMs but no overload lines followed";
      report(summary_line_, summary_round_, "summary-overloaded", msg.str());
    }
    still_overloaded_.clear();
    have_summary_ = false;
  }
}

void InvariantChecker::add(const TraceEvent& e, std::size_t line) {
  ++events_checked_;

  // Crossing into a later round proves the previous round's driver
  // overload scan is complete (overload lines are the last deterministic
  // lines of a round).
  if ((report_open_ && e.round > report_round_) ||
      (have_summary_ && e.round > summary_round_))
    finalize_overload_report();

  if (any_event_ && e.round < last_round_) {
    std::ostringstream msg;
    msg << "round went backwards: " << last_round_ << " -> " << e.round;
    report(line, e.round, "monotone-rounds", msg.str());
  }
  any_event_ = true;
  last_round_ = std::max(last_round_, e.round);

  switch (e.kind) {
    case EventKind::kMigration: {
      const auto& m = e.migration;
      if (e.round != migration_round_) {
        migration_round_ = e.round;
        migrations_this_round_ = 0;
      }
      ++migrations_this_round_;
      if (m.from == m.to) {
        std::ostringstream msg;
        msg << "vm " << m.vm << " migrated from pm " << m.from
            << " onto itself";
        report(line, e.round, "migration-self", msg.str());
      }
      if (!options_.churn_tolerant) {
        const auto host = vm_host_.find(m.vm);
        if (host != vm_host_.end() && host->second != m.from) {
          std::ostringstream msg;
          msg << "vm " << m.vm << " migrated from pm " << m.from
              << " but was last seen on pm " << host->second;
          report(line, e.round, "migration-chain", msg.str());
        }
      }
      const auto from_power = power_on_.find(m.from);
      if (from_power != power_on_.end() && !from_power->second) {
        std::ostringstream msg;
        msg << "vm " << m.vm << " migrated off pm " << m.from
            << ", which is powered off";
        report(line, e.round, "migration-from-off", msg.str());
      }
      const auto to_power = power_on_.find(m.to);
      if (to_power != power_on_.end() && !to_power->second) {
        std::ostringstream msg;
        msg << "vm " << m.vm << " migrated onto pm " << m.to
            << ", which is powered off";
        report(line, e.round, "migration-into-off", msg.str());
      }
      if (options_.strict_overload_target &&
          still_overloaded_.count(m.to) != 0) {
        std::ostringstream msg;
        msg << "vm " << m.vm << " migrated onto pm " << m.to
            << ", overloaded per the last report and untouched since";
        report(line, e.round, "migration-into-overloaded", msg.str());
      }
      vm_host_[m.vm] = m.to;
      occupants_[m.from].erase(m.vm);
      occupants_[m.to].insert(m.vm);
      still_overloaded_.erase(m.from);  // shed a VM: overload mark is stale
      break;
    }
    case EventKind::kPower: {
      const auto& p = e.power;
      const auto known = power_on_.find(p.pm);
      if (known != power_on_.end() && known->second == p.on) {
        std::ostringstream msg;
        msg << "pm " << p.pm << " powered " << (p.on ? "on" : "off")
            << " twice in a row";
        report(line, e.round, "power-alternation", msg.str());
      }
      if (!p.on && !options_.churn_tolerant) {
        const auto occ = occupants_.find(p.pm);
        if (occ != occupants_.end() && !occ->second.empty()) {
          std::ostringstream msg;
          msg << "pm " << p.pm << " powered off with " << occ->second.size()
              << " known VM(s) still placed (first: vm "
              << *occ->second.begin() << ")";
          report(line, e.round, "power-off-occupied", msg.str());
        }
      }
      if (!p.on) occupants_[p.pm].clear();  // churn departures are invisible
      power_on_[p.pm] = p.on;
      net_power_delta_ += p.on ? 1 : -1;
      still_overloaded_.erase(p.pm);  // power cycle: overload mark is stale
      break;
    }
    case EventKind::kShuffle:
      if (e.shuffle.initiator == e.shuffle.peer) {
        std::ostringstream msg;
        msg << "node " << e.shuffle.initiator << " shuffled with itself";
        report(line, e.round, "shuffle-self", msg.str());
      }
      if (e.shuffle.sent < 0 || e.shuffle.reply < 0) {
        std::ostringstream msg;
        msg << "negative shuffle payload (sent " << e.shuffle.sent
            << ", reply " << e.shuffle.reply << ")";
        report(line, e.round, "shuffle-negative", msg.str());
      }
      break;
    case EventKind::kOverload: {
      const auto& o = e.overload;
      if (!report_open_) {
        report_open_ = true;
        report_round_ = e.round;
        report_first_line_ = line;
      }
      if (!report_pms_.insert(o.pm).second) {
        std::ostringstream msg;
        msg << "pm " << o.pm << " reported overloaded twice in round "
            << e.round;
        report(line, e.round, "overload-duplicate", msg.str());
      }
      const auto known = power_on_.find(o.pm);
      if (known != power_on_.end() && !known->second) {
        std::ostringstream msg;
        msg << "powered-off pm " << o.pm << " reported overloaded";
        report(line, e.round, "overload-off-pm", msg.str());
      }
      break;
    }
    case EventKind::kFault:
      break;  // semantics land with the fault-injection harness
    case EventKind::kNet: {
      const auto& n = e.net;
      if (n.op == "send") {
        if (!net_msgs_.emplace(n.msg, NetMsg{e.round, false}).second) {
          std::ostringstream msg;
          msg << "msg " << n.msg << " sent twice";
          report(line, e.round, "net-deliver-unsent", msg.str());
        }
      } else if (n.op == "deliver" || n.op == "drop") {
        const auto it = net_msgs_.find(n.msg);
        if (it == net_msgs_.end()) {
          std::ostringstream msg;
          msg << "net " << n.op << " for msg " << n.msg
              << " which was never sent";
          report(line, e.round, "net-deliver-unsent", msg.str());
        } else {
          if (it->second.terminal) {
            std::ostringstream msg;
            msg << "msg " << n.msg << " already delivered or dropped before "
                << "this " << n.op;
            report(line, e.round, "net-terminal-duplicate", msg.str());
          }
          it->second.terminal = true;
          if (n.op == "deliver" &&
              e.round != it->second.send_round +
                             static_cast<std::uint64_t>(n.delay)) {
            std::ostringstream msg;
            msg << "msg " << n.msg << " sent in round " << it->second.send_round
                << " with delay " << n.delay << " but delivered in round "
                << e.round;
            report(line, e.round, "net-delay-arithmetic", msg.str());
          }
          if (n.op == "drop" && e.round != it->second.send_round) {
            std::ostringstream msg;
            msg << "msg " << n.msg << " sent in round " << it->second.send_round
                << " but dropped in round " << e.round
                << " (drops are decided at send time)";
            report(line, e.round, "net-delay-arithmetic", msg.str());
          }
        }
        if (n.op == "drop" && n.reason != "loss" && n.reason != "congestion") {
          std::ostringstream msg;
          msg << "msg " << n.msg << " dropped with unknown reason '"
              << n.reason << "' (a drop requires a lossy or congested link)";
          report(line, e.round, "net-drop-reason", msg.str());
        }
      } else if (n.op == "queue") {
        if (n.link != "access" && n.link != "uplink") {
          std::ostringstream msg;
          msg << "net queue line names unknown link kind '" << n.link << "'";
          report(line, e.round, "net-drop-reason", msg.str());
        }
        if (n.bytes == 0) {
          // The writer skips idle links entirely (DESIGN.md §13.6), so a
          // zero-backlog line means the emitter regressed; readers must
          // instead tolerate per-round gaps in queue coverage.
          std::ostringstream msg;
          msg << "net queue line for " << n.link << ' ' << n.link_id
              << " reports zero backlog (idle links are skipped, not "
                 "emitted)";
          report(line, e.round, "net-queue-zero", msg.str());
        }
      }
      break;
    }
    case EventKind::kActivity: {
      const auto& a = e.activity;
      static const std::set<std::string> kKnownReasons{
          "converged", "gossip",   "demand",  "migration",
          "status",    "schedule", "relearn", "network"};
      if (kKnownReasons.count(a.reason) == 0) {
        std::ostringstream msg;
        msg << "pm " << a.pm << " activity event has unknown reason '"
            << a.reason << "'";
        report(line, e.round, "activity-reason", msg.str());
      } else if (a.awake == (a.reason == "converged")) {
        std::ostringstream msg;
        msg << "pm " << a.pm << (a.awake ? " woke" : " parked")
            << " with reason '" << a.reason
            << "' (parking must be 'converged', wakes must not)";
        report(line, e.round, "activity-reason", msg.str());
      }
      if (a.awake) {
        if (parked_.erase(a.pm) == 0) {
          std::ostringstream msg;
          msg << "pm " << a.pm << " re-activated but was not parked";
          report(line, e.round, "activity-alternation", msg.str());
        }
      } else {
        if (!parked_.insert(a.pm).second) {
          std::ostringstream msg;
          msg << "pm " << a.pm << " parked twice in a row";
          report(line, e.round, "activity-alternation", msg.str());
        }
        const auto known = power_on_.find(a.pm);
        if (known != power_on_.end() && !known->second) {
          std::ostringstream msg;
          msg << "powered-off pm " << a.pm << " parked as quiescent";
          report(line, e.round, "activity-park-off-pm", msg.str());
        }
      }
      break;
    }
    case EventKind::kRound: {
      const auto& s = e.summary;
      const std::uint64_t migrations_seen =
          migration_round_ == e.round ? migrations_this_round_ : 0;
      if (s.migrations != migrations_seen) {
        std::ostringstream msg;
        msg << "round " << e.round << " summary claims " << s.migrations
            << " migrations but the trace carries " << migrations_seen;
        report(line, e.round, "summary-migrations", msg.str());
      }
      if (have_prev_summary_) {
        if (e.round != prev_summary_round_ + 1) {
          std::ostringstream msg;
          msg << "summary rounds jumped from " << prev_summary_round_
              << " to " << e.round;
          report(line, e.round, "summary-gap", msg.str());
        }
        const std::int64_t expected =
            static_cast<std::int64_t>(prev_summary_active_) +
            net_power_delta_;
        if (static_cast<std::int64_t>(s.active_pms) != expected) {
          std::ostringstream msg;
          msg << "round " << e.round << " summary reports " << s.active_pms
              << " active PMs, but " << prev_summary_active_
              << " active in round " << prev_summary_round_ << " plus a net "
              << net_power_delta_ << " power transitions gives " << expected;
          report(line, e.round, "summary-active-delta", msg.str());
        }
      }
      net_power_delta_ = 0;
      have_prev_summary_ = true;
      prev_summary_round_ = e.round;
      prev_summary_active_ = s.active_pms;

      have_summary_ = true;
      summary_round_ = e.round;
      summary_overloaded_ = s.overloaded_pms;
      summary_line_ = line;
      break;
    }
    case EventKind::kQsim:
      if (e.qsim.similarity < -1.0 - 1e-9 || e.qsim.similarity > 1.0 + 1e-9) {
        std::ostringstream msg;
        msg << "qsim similarity " << e.qsim.similarity
            << " outside [-1, 1]";
        report(line, e.round, "qsim-range", msg.str());
      }
      break;
    case EventKind::kRelearn:
    case EventKind::kShardBytes:
      break;
  }
}

void InvariantChecker::finish() { finalize_overload_report(); }

// ---- StatsCollector -----------------------------------------------------

void StatsCollector::add(const TraceEvent& e) {
  ++stats_.counts[static_cast<std::size_t>(e.kind)];
  if (stats_.total_lines == 0 || e.round < stats_.first_round)
    stats_.first_round = e.round;
  stats_.last_round = std::max(stats_.last_round, e.round);
  ++stats_.total_lines;
  switch (e.kind) {
    case EventKind::kMigration:
      stats_.migration_cpu.push_back(e.migration.cpu);
      stats_.migration_energy_j.push_back(e.migration.energy_j);
      break;
    case EventKind::kShuffle:
      stats_.shuffle_sent.push_back(static_cast<double>(e.shuffle.sent));
      break;
    case EventKind::kOverload:
      stats_.overload_cpu.push_back(e.overload.cpu);
      break;
    case EventKind::kNet:
      if (e.net.op == "send")
        stats_.net_send_bytes.push_back(static_cast<double>(e.net.bytes));
      else if (e.net.op == "deliver")
        stats_.net_deliver_delay.push_back(static_cast<double>(e.net.delay));
      break;
    case EventKind::kQsim:
      stats_.qsim_similarity.push_back(e.qsim.similarity);
      break;
    case EventKind::kRound:
      stats_.round_active_pms.push_back(
          static_cast<double>(e.summary.active_pms));
      stats_.round_overloaded_pms.push_back(
          static_cast<double>(e.summary.overloaded_pms));
      stats_.round_migrations.push_back(
          static_cast<double>(e.summary.migrations));
      stats_.round_messages.push_back(
          static_cast<double>(e.summary.messages));
      stats_.round_bytes.push_back(static_cast<double>(e.summary.bytes));
      break;
    default:
      break;
  }
}

}  // namespace glap::trace
