// MetricsRegistry: low-overhead counters, gauges, Welford histograms and
// per-round series that protocols, the DataCenter and the harness publish
// into during a run.
//
// Determinism contract (DESIGN.md §10). Metric *output* must be bit-identical
// between the serial reference engine and the wave-parallel engine at any
// thread count. Each instrument type meets that differently:
//
//  * Counter — integer adds are order-insensitive, so counters keep one
//    cache-line-padded slot per exec shard (exec::kShardCount) and sum them
//    on read. No ordering needed.
//  * OrderedHistogram — Welford moments are FP-order-sensitive, so observe()
//    from inside an interaction buffers (order_key, seq, value) per shard;
//    commit_round() replays all buffered samples sorted by (order_key, seq)
//    — the same replay the DataCenter uses for deferred accounting — into a
//    single RunningStats. observe_now() is the driver-only path for samples
//    taken at quiescent points (between rounds); these are prepended in
//    call order before the current round's buffered samples are replayed.
//  * Gauge / Series — driver-only, written at quiescent points; plain
//    non-atomic storage.
//
// Registration is mutex-guarded get-or-create; instruments live in deques so
// pointers stay stable. Snapshot output (JSON/CSV) iterates names in sorted
// order, so the output never depends on which thread registered first.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/exec_context.hpp"
#include "common/stats.hpp"

namespace glap::metrics {

/// Monotonic integer counter, sharded per execution slot. inc() is safe from
/// any engine thread; value() is meaningful at quiescent points (it sums the
/// shards without synchronization).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    shards_[exec::context().shard_slot].v += delta;
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v;
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.v = 0;
  }

 private:
  struct alignas(64) Slot {
    std::uint64_t v = 0;
  };
  Slot shards_[exec::kShardCount];
};

/// Driver-only scalar; set at quiescent points (between rounds / end of run).
class Gauge {
 public:
  void set(double v) noexcept { v_ = v; }
  [[nodiscard]] double value() const noexcept { return v_; }

 private:
  double v_ = 0.0;
};

/// Welford histogram whose in-round observations are replayed in serial
/// interaction order at commit_round(), making the moments bit-identical
/// across engine modes. See the file header for the full contract.
class OrderedHistogram {
 public:
  /// Records a sample from inside an engine interaction. Tags it with the
  /// current interaction's (order_key, seq) so commit can recover serial
  /// order. seq shares the same per-interaction counter the DataCenter's
  /// deferred accounting uses, keeping intra-interaction order faithful.
  void observe(double v) {
    auto& ctx = exec::context();
    buffers_[ctx.shard_slot].push_back({ctx.order_key, ctx.seq++, v});
  }

  /// Driver-only: records a sample at a quiescent point (not inside an
  /// interaction). Applied immediately, before any samples still buffered
  /// for the current round.
  void observe_now(double v) { stats_.add(v); }

  /// Replays all buffered samples in (order_key, seq) order into the
  /// accumulated stats. Call only at quiescent points (end of round).
  void commit_round();

  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }

 private:
  struct Sample {
    std::uint64_t order_key;
    std::uint32_t seq;
    double value;
  };
  std::vector<Sample> buffers_[exec::kShardCount];
  std::vector<Sample> scratch_;
  RunningStats stats_;
};

/// Driver-only per-round time series (one append per round).
class Series {
 public:
  void append(double v) { values_.push_back(v); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

/// Named instrument registry. get-or-create is mutex-guarded (cold path —
/// callers cache the returned pointer); instruments are pointer-stable.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter* counter(std::string_view name);
  [[nodiscard]] Gauge* gauge(std::string_view name);
  [[nodiscard]] OrderedHistogram* histogram(std::string_view name);
  [[nodiscard]] Series* series(std::string_view name);

  /// Replays every histogram's buffered in-round samples in serial order.
  /// The harness calls this once per round, at the quiescent point after
  /// Engine::step() / DataCenter::commit_deferred_accounting().
  void commit_round();

  /// Full snapshot as a JSON object — counters, gauges, histogram moments,
  /// series — with names in sorted order. Byte-deterministic.
  void write_json(std::ostream& out) const;

  /// All series side by side as CSV (round index + one column per series,
  /// columns name-sorted). Series of different lengths pad with empty cells.
  void write_series_csv(std::ostream& out) const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    T instrument;
  };
  template <typename T>
  [[nodiscard]] T* get_or_create(std::deque<Entry<T>>& entries,
                                 std::string_view name);

  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<OrderedHistogram>> histograms_;
  std::deque<Entry<Series>> series_;
};

}  // namespace glap::metrics
