#include "common/trace_reader.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <istream>

#include "common/trace_format.hpp"

namespace glap::trace {

namespace {

// The trace writer emits flat objects with string/number/bool members
// plus one array-of-unsigned member (shard_bytes). A hand-rolled scanner
// over that subset keeps the reader dependency-free and lets every error
// carry the offending key; generality (nesting, escapes, exponents in
// keys) is intentionally out of scope and reported as an error.

struct JsonValue {
  enum class Type : std::uint8_t { kNumber, kBool, kString, kArray };
  Type type = Type::kNumber;
  std::string_view text;  ///< raw number token, or string body (no escapes)
  bool boolean = false;
  std::vector<std::uint64_t> array;
};

struct Member {
  std::string_view key;
  JsonValue value;
};

class Cursor {
 public:
  Cursor(std::string_view s, std::string* error)
      : p_(s.data()), end_(s.data() + s.size()), error_(error) {}

  bool fail(const std::string& why) {
    if (error_ != nullptr && error_->empty()) *error_ = why;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r')) ++p_;
  }

  bool consume(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return p_ == end_;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return p_ == end_ ? '\0' : *p_;
  }

  bool parse_string(std::string_view* out) {
    if (!consume('"')) return fail("expected '\"'");
    const char* start = p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\')
        return fail("escape sequences are not used by the trace schema");
      ++p_;
    }
    if (p_ == end_) return fail("unterminated string");
    *out = std::string_view(start, static_cast<std::size_t>(p_ - start));
    ++p_;  // closing quote
    return true;
  }

  bool parse_number_token(std::string_view* out) {
    skip_ws();
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      if (*p_ >= '0' && *p_ <= '9') digits = true;
      ++p_;
    }
    if (!digits) return fail("expected a number");
    *out = std::string_view(start, static_cast<std::size_t>(p_ - start));
    return true;
  }

  bool parse_value(JsonValue* out) {
    const char c = peek();
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->text);
    }
    if (c == 't' || c == 'f') {
      const std::string_view want = c == 't' ? "true" : "false";
      if (std::string_view(p_, static_cast<std::size_t>(end_ - p_))
              .substr(0, want.size()) != want)
        return fail("expected a JSON literal");
      p_ += want.size();
      out->type = JsonValue::Type::kBool;
      out->boolean = c == 't';
      return true;
    }
    if (c == '[') {
      ++p_;
      out->type = JsonValue::Type::kArray;
      if (peek() == ']') {
        ++p_;
        return true;
      }
      while (true) {
        std::string_view token;
        if (!parse_number_token(&token)) return false;
        std::uint64_t v = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec != std::errc() || ptr != token.data() + token.size())
          return fail("array elements must be unsigned integers");
        out->array.push_back(v);
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']' in array");
      }
    }
    out->type = JsonValue::Type::kNumber;
    return parse_number_token(&out->text);
  }

  /// Parses the whole flat object; fails on trailing non-space bytes.
  bool parse_object(std::vector<Member>* members) {
    if (!consume('{')) return fail("trace line is not a JSON object");
    if (!consume('}')) {
      while (true) {
        Member m;
        if (!parse_string(&m.key)) return false;
        if (!consume(':')) return fail("expected ':' after key");
        if (!parse_value(&m.value)) return false;
        members->push_back(std::move(m));
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}' in object");
      }
    }
    if (!at_end()) return fail("trailing bytes after the JSON object");
    return true;
  }

 private:
  const char* p_;
  const char* end_;
  std::string* error_;
};

[[nodiscard]] const Member* find(const std::vector<Member>& members,
                                 std::string_view key) {
  for (const Member& m : members)
    if (m.key == key) return &m;
  return nullptr;
}

/// Field extractor: accumulates the first error and lets the caller
/// finish the extraction unconditionally, then test ok() once.
class Fields {
 public:
  Fields(const std::vector<Member>& members, std::string* error)
      : members_(members), error_(error) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }

  void require_i64(std::string_view key, std::int64_t* out) {
    const JsonValue* v = number(key);
    if (v == nullptr) return;
    const auto [ptr, ec] =
        std::from_chars(v->text.data(), v->text.data() + v->text.size(), *out);
    if (ec != std::errc() || ptr != v->text.data() + v->text.size())
      fail(std::string("field '") + std::string(key) +
           "' is not an integer");
  }

  void require_u64(std::string_view key, std::uint64_t* out) {
    const JsonValue* v = number(key);
    if (v == nullptr) return;
    const auto [ptr, ec] =
        std::from_chars(v->text.data(), v->text.data() + v->text.size(), *out);
    if (ec != std::errc() || ptr != v->text.data() + v->text.size())
      fail(std::string("field '") + std::string(key) +
           "' is not an unsigned integer");
  }

  void require_double(std::string_view key, double* out) {
    const JsonValue* v = number(key);
    if (v == nullptr) return;
    // strtod needs NUL termination; number tokens are short.
    const std::string token(v->text);
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      fail(std::string("field '") + std::string(key) + "' is not a number");
      return;
    }
    *out = parsed;
  }

  void require_bool(std::string_view key, bool* out) {
    const Member* m = require(key);
    if (m == nullptr) return;
    if (m->value.type != JsonValue::Type::kBool) {
      fail(std::string("field '") + std::string(key) + "' is not a bool");
      return;
    }
    *out = m->value.boolean;
  }

  void require_string(std::string_view key, std::string* out) {
    const Member* m = require(key);
    if (m == nullptr) return;
    if (m->value.type != JsonValue::Type::kString) {
      fail(std::string("field '") + std::string(key) + "' is not a string");
      return;
    }
    *out = std::string(m->value.text);
  }

  void require_array(std::string_view key, std::vector<std::uint64_t>* out) {
    const Member* m = require(key);
    if (m == nullptr) return;
    if (m->value.type != JsonValue::Type::kArray) {
      fail(std::string("field '") + std::string(key) + "' is not an array");
      return;
    }
    *out = m->value.array;
  }

 private:
  void fail(const std::string& why) {
    if (ok_ && error_ != nullptr && error_->empty()) *error_ = why;
    ok_ = false;
  }

  const Member* require(std::string_view key) {
    const Member* m = find(members_, key);
    if (m == nullptr)
      fail(std::string("missing field '") + std::string(key) + "'");
    return m;
  }

  const JsonValue* number(std::string_view key) {
    const Member* m = require(key);
    if (m == nullptr) return nullptr;
    if (m->value.type != JsonValue::Type::kNumber) {
      fail(std::string("field '") + std::string(key) + "' is not a number");
      return nullptr;
    }
    return &m->value;
  }

  const std::vector<Member>& members_;
  std::string* error_;
  bool ok_ = true;
};

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kMigration: return "migration";
    case EventKind::kPower: return "power";
    case EventKind::kShuffle: return "shuffle";
    case EventKind::kOverload: return "overload";
    case EventKind::kFault: return "fault";
    case EventKind::kActivity: return "activity";
    case EventKind::kNet: return "net";
    case EventKind::kRound: return "round";
    case EventKind::kQsim: return "qsim";
    case EventKind::kRelearn: return "relearn";
    case EventKind::kShardBytes: return "shard_bytes";
  }
  return "?";
}

bool event_kind_from_name(std::string_view name, EventKind* out) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (name == event_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool parse_trace_line(std::string_view line, TraceEvent* out,
                      std::string* error) {
  if (error != nullptr) error->clear();
  std::vector<Member> members;
  members.reserve(8);
  Cursor cursor(line, error);
  if (!cursor.parse_object(&members)) return false;

  const Member* ev = find(members, "ev");
  if (ev == nullptr || ev->value.type != JsonValue::Type::kString) {
    if (error != nullptr && error->empty())
      *error = "missing string field 'ev'";
    return false;
  }
  TraceEvent parsed;
  if (!event_kind_from_name(ev->value.text, &parsed.kind)) {
    if (error != nullptr)
      *error = "unknown event kind '" + std::string(ev->value.text) + "'";
    return false;
  }

  Fields fields(members, error);
  fields.require_u64("round", &parsed.round);
  switch (parsed.kind) {
    case EventKind::kMigration:
      fields.require_i64("vm", &parsed.migration.vm);
      fields.require_i64("from", &parsed.migration.from);
      fields.require_i64("to", &parsed.migration.to);
      fields.require_double("cpu", &parsed.migration.cpu);
      fields.require_double("energy_j", &parsed.migration.energy_j);
      break;
    case EventKind::kPower:
      fields.require_i64("pm", &parsed.power.pm);
      fields.require_bool("on", &parsed.power.on);
      break;
    case EventKind::kShuffle:
      fields.require_i64("initiator", &parsed.shuffle.initiator);
      fields.require_i64("peer", &parsed.shuffle.peer);
      fields.require_i64("sent", &parsed.shuffle.sent);
      fields.require_i64("reply", &parsed.shuffle.reply);
      break;
    case EventKind::kOverload:
      fields.require_i64("pm", &parsed.overload.pm);
      fields.require_double("cpu", &parsed.overload.cpu);
      break;
    case EventKind::kFault:
      fields.require_i64("pm", &parsed.fault.pm);
      fields.require_i64("kind", &parsed.fault.code);
      fields.require_double("value", &parsed.fault.value);
      break;
    case EventKind::kActivity:
      fields.require_i64("pm", &parsed.activity.pm);
      fields.require_bool("awake", &parsed.activity.awake);
      fields.require_string("reason", &parsed.activity.reason);
      break;
    case EventKind::kNet:
      fields.require_string("op", &parsed.net.op);
      if (parsed.net.op == "send") {
        fields.require_i64("src", &parsed.net.src);
        fields.require_i64("dst", &parsed.net.dst);
        fields.require_i64("msg", &parsed.net.msg);
        fields.require_i64("bytes", &parsed.net.bytes);
        fields.require_string("channel", &parsed.net.channel);
      } else if (parsed.net.op == "deliver") {
        fields.require_i64("src", &parsed.net.src);
        fields.require_i64("dst", &parsed.net.dst);
        fields.require_i64("msg", &parsed.net.msg);
        fields.require_i64("delay", &parsed.net.delay);
      } else if (parsed.net.op == "drop") {
        fields.require_i64("src", &parsed.net.src);
        fields.require_i64("dst", &parsed.net.dst);
        fields.require_i64("msg", &parsed.net.msg);
        fields.require_string("reason", &parsed.net.reason);
      } else if (parsed.net.op == "queue") {
        fields.require_string("link", &parsed.net.link);
        fields.require_i64("id", &parsed.net.link_id);
        fields.require_i64("bytes", &parsed.net.bytes);
      } else if (!parsed.net.op.empty()) {
        if (error != nullptr && error->empty())
          *error = "unknown net op '" + parsed.net.op + "'";
        return false;
      }
      break;
    case EventKind::kRound:
      fields.require_u64("active_pms", &parsed.summary.active_pms);
      fields.require_u64("overloaded_pms", &parsed.summary.overloaded_pms);
      fields.require_u64("migrations", &parsed.summary.migrations);
      fields.require_u64("messages", &parsed.summary.messages);
      fields.require_u64("bytes", &parsed.summary.bytes);
      break;
    case EventKind::kQsim:
      fields.require_double("similarity", &parsed.qsim.similarity);
      break;
    case EventKind::kRelearn:
      break;
    case EventKind::kShardBytes:
      fields.require_array("bytes", &parsed.shard_bytes);
      break;
  }
  if (!fields.ok()) {
    if (error != nullptr && !error->empty())
      *error += std::string(" in ev=\"") + event_kind_name(parsed.kind) + "\"";
    return false;
  }
  *out = std::move(parsed);
  return true;
}

TraceReader::Status TraceReader::detect(std::string* error) {
  const int first = in_.peek();
  if (first == std::char_traits<char>::eof()) {
    // An empty file is a valid (empty) trace of either encoding.
    source_ = Source::kJsonl;
    return Status::kEof;
  }
  if (static_cast<char>(first) != kGtbMagic[0]) {
    // JSONL lines always open with '{' — only GTB starts with 'G'.
    source_ = Source::kJsonl;
    return Status::kEvent;
  }
  char header[kGtbHeaderBytes] = {};
  in_.read(header, static_cast<std::streamsize>(sizeof header));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof header)) {
    if (error != nullptr) *error = "file ends mid GTB header";
    return Status::kTruncated;
  }
  if (std::memcmp(header, kGtbMagic, sizeof kGtbMagic) != 0) {
    if (error != nullptr) *error = "bad GTB magic";
    return Status::kError;
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i)
    version |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(header[4 + i]))
               << (8 * i);
  if (version != kGtbVersion) {
    if (error != nullptr)
      *error = "unsupported GTB version " + std::to_string(version);
    return Status::kError;
  }
  source_ = Source::kGtb;
  return Status::kEvent;
}

TraceReader::Status TraceReader::next_jsonl(TraceEvent* out,
                                            std::string* error) {
  while (std::getline(in_, line_)) {
    ++line_no_;
    bool blank = true;
    for (const char c : line_)
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    if (blank) continue;
    if (parse_trace_line(line_, out, error)) return Status::kEvent;
    if (in_.eof()) {
      // The final line has no terminating '\n' and does not parse: the
      // file was cut mid-line, not malformed.
      if (error != nullptr)
        *error = "file ends mid-line (truncated trace)";
      return Status::kTruncated;
    }
    return Status::kError;
  }
  return Status::kEof;
}

TraceReader::Status TraceReader::next_gtb(TraceEvent* out,
                                          std::string* error) {
  char len_bytes[4];
  in_.read(len_bytes, 4);
  const std::streamsize got = in_.gcount();
  if (got == 0) return Status::kEof;
  ++line_no_;
  if (got < 4) {
    if (error != nullptr) *error = "file ends mid length prefix";
    return Status::kTruncated;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(len_bytes[i]))
           << (8 * i);
  // Every record carries at least a kind byte and the round number; a
  // smaller or implausibly large length is corruption, not truncation.
  if (len < 9 || len > kGtbMaxRecordBytes) {
    if (error != nullptr)
      *error = "corrupt GTB length prefix (" + std::to_string(len) + ")";
    return Status::kError;
  }
  line_.resize(len);
  in_.read(line_.data(), static_cast<std::streamsize>(len));
  if (in_.gcount() != static_cast<std::streamsize>(len)) {
    if (error != nullptr)
      *error = "file ends mid-record (" + std::to_string(in_.gcount()) +
               " of " + std::to_string(len) + " payload bytes)";
    return Status::kTruncated;
  }
  return decode_gtb_payload(line_, out, error) ? Status::kEvent
                                               : Status::kError;
}

TraceReader::Status TraceReader::next(TraceEvent* out, std::string* error) {
  if (error != nullptr) error->clear();
  if (source_ == Source::kUnknown) {
    const Status st = detect(error);
    if (st != Status::kEvent) return st;
  }
  return source_ == Source::kGtb ? next_gtb(out, error)
                                 : next_jsonl(out, error);
}

}  // namespace glap::trace
