#include "common/flight_recorder.hpp"

#include <csignal>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/assert.hpp"
#include "common/metrics.hpp"
#include "common/trace_format.hpp"

namespace glap::flight {

FlightRecorder::FlightRecorder(std::size_t max_rounds)
    : ring_(max_rounds > 0 ? max_rounds : 1) {}

void FlightRecorder::begin_round(std::uint64_t round) {
  if (any_) cursor_ = (cursor_ + 1) % ring_.size();
  any_ = true;
  Bucket& b = ring_[cursor_];
  b.round = round;
  b.used = true;
  b.bytes.clear();
}

void FlightRecorder::append(const char* data, std::size_t size) {
  if (!any_) begin_round(0);
  ring_[cursor_].bytes.append(data, size);
}

std::size_t FlightRecorder::rounds_retained() const noexcept {
  std::size_t n = 0;
  for_each_bucket([&](const Bucket&) { ++n; });
  return n;
}

std::uint64_t FlightRecorder::oldest_round() const noexcept {
  std::uint64_t round = 0;
  bool first = true;
  for_each_bucket([&](const Bucket& b) {
    if (first) round = b.round;
    first = false;
  });
  return round;
}

bool FlightRecorder::dump(const std::string& path) const {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    std::string header;
    trace::append_gtb_header(&header);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    for_each_bucket([&](const Bucket& b) {
      out.write(b.bytes.data(), static_cast<std::streamsize>(b.bytes.size()));
    });
    if (!out.good()) return false;
  }
  if (registry_ != nullptr) {
    std::ofstream out(path + ".metrics.json", std::ios::trunc);
    if (!out.is_open()) return false;
    registry_->write_json(out);
    if (!out.good()) return false;
  }
  return true;
}

void FlightRecorder::dump_to_fd(int fd) const noexcept {
  // The GTB header, spelled out so no allocation happens in this path.
  char header[trace::kGtbHeaderBytes] = {};
  std::memcpy(header, trace::kGtbMagic, sizeof trace::kGtbMagic);
  for (int i = 0; i < 4; ++i)
    header[4 + i] = static_cast<char>((trace::kGtbVersion >> (8 * i)) & 0xffu);
  auto write_all = [fd](const char* data, std::size_t size) {
    while (size > 0) {
      const ::ssize_t n = ::write(fd, data, size);
      if (n <= 0) return;
      data += n;
      size -= static_cast<std::size_t>(n);
    }
  };
  write_all(header, sizeof header);
  for_each_bucket(
      [&](const Bucket& b) { write_all(b.bytes.data(), b.bytes.size()); });
}

// ---- crash-dump activation ----------------------------------------------

namespace {

// Process-wide armed recorder. Plain globals, not atomics: CrashDumpScope
// is installed/removed on the driver thread at run boundaries, and the
// consumers (assertion hook, signal handler) only read.
FlightRecorder* g_recorder = nullptr;
char g_dump_path[512] = {};
bool g_dumping = false;

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
constexpr std::size_t kFatalSignalCount =
    sizeof kFatalSignals / sizeof kFatalSignals[0];
struct sigaction g_saved_actions[kFatalSignalCount];

extern "C" void flight_signal_handler(int sig) {
  if (g_recorder != nullptr && g_dump_path[0] != '\0') {
    const int fd =
        ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      g_recorder->dump_to_fd(fd);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still
  // dies the way it would have (core dump, abort status, ...).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void flight_assert_hook(const char* what) {
  if (g_dumping || g_recorder == nullptr || g_dump_path[0] == '\0') return;
  g_dumping = true;
  if (g_recorder->dump(g_dump_path)) {
    // The failure text rides along so the artifact is self-describing.
    std::ofstream out(std::string(g_dump_path) + ".what.txt",
                      std::ios::trunc);
    if (out.is_open()) out << what << '\n';
  }
  g_dumping = false;
}

}  // namespace

CrashDumpScope::CrashDumpScope(FlightRecorder* recorder,
                               const std::string& path) {
  if (recorder == nullptr || path.empty() || g_recorder != nullptr) return;
  active_ = true;
  g_recorder = recorder;
  std::strncpy(g_dump_path, path.c_str(), sizeof g_dump_path - 1);
  g_dump_path[sizeof g_dump_path - 1] = '\0';
  glap::detail::fatal_hook = &flight_assert_hook;
  struct sigaction action {};
  action.sa_handler = &flight_signal_handler;
  sigemptyset(&action.sa_mask);
  for (std::size_t i = 0; i < kFatalSignalCount; ++i)
    ::sigaction(kFatalSignals[i], &action, &g_saved_actions[i]);
}

CrashDumpScope::~CrashDumpScope() {
  if (!active_) return;
  for (std::size_t i = 0; i < kFatalSignalCount; ++i)
    ::sigaction(kFatalSignals[i], &g_saved_actions[i], nullptr);
  glap::detail::fatal_hook = nullptr;
  g_recorder = nullptr;
  g_dump_path[0] = '\0';
}

}  // namespace glap::flight
