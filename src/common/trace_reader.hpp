// Read side of the round-level trace: parses both encodings — the JSONL
// line shapes TraceLog renders (DESIGN.md §10.2) and the GTB binary
// records (§10.6, common/trace_format.hpp) — back into typed events.
// TraceReader sniffs the format from the first bytes of the stream, so
// every consumer (glap-trace check/lineage/episodes/stats, the trace
// tests) works on either file unchanged.
//
// This is the shared parsing layer under tools/glap-trace and the trace
// round-trip / invariant tests; the fault-injection harness asserts
// against it too, so the parser accepts every schema line including the
// reserved "fault" kind. Parsing is tolerant in exactly two directions:
// unknown object keys are ignored (forward compatibility), and a file cut
// mid-record — a crashed run, a signal-context flight dump — yields the
// parsed prefix followed by one kTruncated status instead of a hard
// error. Anything else malformed (not a JSON object, unknown "ev" or
// wire code, missing schema field, corrupt length prefix) is a reported
// error — never a crash and never a silently skipped event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace glap::trace {

/// Every line shape in the §10.2 schema: the buffered interaction kinds
/// first (mirroring trace::Kind), then the driver-direct lines.
enum class EventKind : std::uint8_t {
  kMigration,
  kPower,
  kShuffle,
  kOverload,
  kFault,
  kActivity,    ///< quiescence transition (event/quiescence engine)
  kNet,         ///< network-model send/deliver/drop/queue (DESIGN.md §13)
  kRound,       ///< per-round aggregate summary
  kQsim,        ///< Q-table cosine-similarity probe
  kRelearn,     ///< GLAP re-learning trigger
  kShardBytes,  ///< opt-in per-shard byte breakdown (non-deterministic)
};

inline constexpr std::size_t kEventKindCount = 11;

/// The JSONL "ev" value for a kind ("migration", "round", ...).
[[nodiscard]] const char* event_kind_name(EventKind k);

/// Reverse lookup; returns false on an unknown name.
[[nodiscard]] bool event_kind_from_name(std::string_view name,
                                        EventKind* out);

/// One parsed trace line. `kind` and `round` are always set; of the named
/// sub-structs only the one matching `kind` carries data.
struct TraceEvent {
  EventKind kind = EventKind::kRound;
  std::uint64_t round = 0;

  struct Migration {
    std::int64_t vm = 0;
    std::int64_t from = 0;
    std::int64_t to = 0;
    double cpu = 0.0;
    double energy_j = 0.0;
  } migration;
  struct Power {
    std::int64_t pm = 0;
    bool on = false;
  } power;
  struct Shuffle {
    std::int64_t initiator = 0;
    std::int64_t peer = 0;
    std::int64_t sent = 0;
    std::int64_t reply = 0;
  } shuffle;
  struct Overload {
    std::int64_t pm = 0;
    double cpu = 0.0;
  } overload;
  struct Fault {
    std::int64_t pm = 0;
    std::int64_t code = 0;  ///< rendered as "kind" on the wire
    double value = 0.0;
  } fault;
  struct Activity {
    std::int64_t pm = 0;
    bool awake = false;  ///< false = parked (quiesced), true = re-activated
    std::string reason;  ///< sim::WakeReason name ("converged", "gossip", ...)
  } activity;
  /// One network-model event; which fields carry data depends on `op`:
  ///   "send"    src, dst, msg, bytes, channel
  ///   "deliver" src, dst, msg, delay
  ///   "drop"    src, dst, msg, reason ("loss" | "congestion")
  ///   "queue"   link ("access" | "uplink"), link_id, bytes
  struct Net {
    std::string op;
    std::int64_t src = 0;
    std::int64_t dst = 0;
    std::int64_t msg = 0;
    std::int64_t bytes = 0;
    std::int64_t delay = 0;
    std::string reason;
    std::string channel;
    std::string link;
    std::int64_t link_id = 0;
  } net;
  struct RoundSummary {
    std::uint64_t active_pms = 0;
    std::uint64_t overloaded_pms = 0;
    std::uint64_t migrations = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  } summary;
  struct Qsim {
    double similarity = 0.0;
  } qsim;
  std::vector<std::uint64_t> shard_bytes;
};

/// Parses one line. On failure returns false and, when `error` is
/// non-null, stores a one-line description of what was malformed.
[[nodiscard]] bool parse_trace_line(std::string_view line, TraceEvent* out,
                                    std::string* error = nullptr);

/// Streaming reader over an externally owned istream; the encoding is
/// detected on the first next() call (a GTB file opens with the 'GTB0'
/// magic, a JSONL file with '{'). Blank JSONL lines are skipped;
/// everything else must parse. line_number() reports the 1-based
/// position of the line (JSONL) or record (GTB) the last next()
/// consumed, so error messages and invariant violations can point at
/// the offending bytes.
///
/// A stream that ends mid-record returns kTruncated exactly once (with a
/// diagnostic in `error`), then kEof; callers that analyze crash
/// artifacts treat it as end-of-data, callers that demand intact files
/// treat it as an error.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in) : in_(in) {}

  enum class Status : std::uint8_t { kEvent, kEof, kTruncated, kError };

  Status next(TraceEvent* out, std::string* error = nullptr);

  [[nodiscard]] std::size_t line_number() const noexcept { return line_no_; }

  /// True when the detected encoding is GTB; meaningful only after the
  /// first next() call.
  [[nodiscard]] bool binary() const noexcept {
    return source_ == Source::kGtb;
  }

 private:
  enum class Source : std::uint8_t { kUnknown, kJsonl, kGtb };

  Status detect(std::string* error);
  Status next_jsonl(TraceEvent* out, std::string* error);
  Status next_gtb(TraceEvent* out, std::string* error);

  std::istream& in_;
  Source source_ = Source::kUnknown;
  std::size_t line_no_ = 0;
  std::string line_;
};

}  // namespace glap::trace
