// Two-dimensional resource vector (CPU, memory) used across the stack:
// trace demand fractions, VM/PM capacities, and utilization arithmetic.
// The paper's model considers exactly these two resources; the state
// calibration in qlearn generalizes to more via templates if ever needed.
#pragma once

#include <algorithm>
#include <cmath>

namespace glap {

struct Resources {
  double cpu = 0.0;
  double mem = 0.0;

  constexpr Resources& operator+=(const Resources& o) noexcept {
    cpu += o.cpu;
    mem += o.mem;
    return *this;
  }
  constexpr Resources& operator-=(const Resources& o) noexcept {
    cpu -= o.cpu;
    mem -= o.mem;
    return *this;
  }
  constexpr Resources& operator*=(double k) noexcept {
    cpu *= k;
    mem *= k;
    return *this;
  }

  friend constexpr Resources operator+(Resources a, const Resources& b) noexcept {
    return a += b;
  }
  friend constexpr Resources operator-(Resources a, const Resources& b) noexcept {
    return a -= b;
  }
  friend constexpr Resources operator*(Resources a, double k) noexcept {
    return a *= k;
  }
  friend constexpr Resources operator*(double k, Resources a) noexcept {
    return a *= k;
  }
  friend constexpr bool operator==(const Resources& a,
                                   const Resources& b) noexcept {
    return a.cpu == b.cpu && a.mem == b.mem;
  }

  /// Element-wise division (utilization = usage / capacity).
  [[nodiscard]] constexpr Resources divided_by(const Resources& cap) const noexcept {
    return {cap.cpu > 0 ? cpu / cap.cpu : 0.0,
            cap.mem > 0 ? mem / cap.mem : 0.0};
  }

  /// Element-wise product (usage = fraction * capacity).
  [[nodiscard]] constexpr Resources scaled_by(const Resources& o) const noexcept {
    return {cpu * o.cpu, mem * o.mem};
  }

  /// True when every component of this fits within `cap`.
  [[nodiscard]] constexpr bool fits_within(const Resources& cap) const noexcept {
    return cpu <= cap.cpu && mem <= cap.mem;
  }

  [[nodiscard]] constexpr double max_component() const noexcept {
    return cpu > mem ? cpu : mem;
  }
  [[nodiscard]] constexpr double sum() const noexcept { return cpu + mem; }
  [[nodiscard]] constexpr double average() const noexcept {
    return 0.5 * (cpu + mem);
  }

  [[nodiscard]] Resources clamped(double lo, double hi) const noexcept {
    return {std::clamp(cpu, lo, hi), std::clamp(mem, lo, hi)};
  }

  [[nodiscard]] constexpr bool non_negative() const noexcept {
    return cpu >= 0.0 && mem >= 0.0;
  }
};

}  // namespace glap
