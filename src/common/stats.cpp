#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace glap {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  GLAP_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q out of [0,100]");
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

PercentileSummary summarize(std::vector<double> samples) {
  PercentileSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto interp = [&](double q) {
    const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  };
  s.p10 = interp(10.0);
  s.median = interp(50.0);
  s.p90 = interp(90.0);
  s.p95 = interp(95.0);
  s.p99 = interp(99.0);
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b) {
  GLAP_REQUIRE(a.size() == b.size(), "cosine_similarity length mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  GLAP_REQUIRE(hi > lo, "histogram range empty");
  GLAP_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  GLAP_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  GLAP_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  GLAP_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os.setf(std::ios::fixed);
    os.precision(3);
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") ";
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace glap
