// Leveled logging with a global threshold. Simulations are silent by
// default; examples and benches raise the level for progress reporting.
// Thread-safe: each log call formats into a local buffer and performs a
// single locked write.
#pragma once

#include <sstream>
#include <string>

namespace glap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/reads the global threshold (messages below it are dropped).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace glap

#define GLAP_LOG_DEBUG() ::glap::detail::LogLine(::glap::LogLevel::kDebug)
#define GLAP_LOG_INFO() ::glap::detail::LogLine(::glap::LogLevel::kInfo)
#define GLAP_LOG_WARN() ::glap::detail::LogLine(::glap::LogLevel::kWarn)
#define GLAP_LOG_ERROR() ::glap::detail::LogLine(::glap::LogLevel::kError)
