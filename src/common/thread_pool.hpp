// Minimal work-queue thread pool used by the experiment harness to run
// independent simulations (sweep cells × repetitions) in parallel.
// Each simulation is single-threaded and self-contained, so the pool only
// needs coarse-grained task submission, not work stealing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace glap {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// Indices are processed in contiguous chunks (~4 per worker) to bound
/// submission overhead; an exception skips the rest of its chunk, and the
/// first one observed rethrows after all chunks finish.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace glap
