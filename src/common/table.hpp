// Console table rendering for bench output. The figure/table bench
// binaries print the same rows/series the paper reports; this formats
// them in aligned ASCII so the shapes are easy to eyeball.
#pragma once

#include <string>
#include <vector>

namespace glap {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Formats doubles with the given precision.
  void add_row_values(const std::string& label,
                      const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::string render() const;

  /// Raw cells, for machine-readable sinks (harness::BenchReport) that
  /// mirror the console tables into results/<bench>.json.
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision into a string.
[[nodiscard]] std::string format_double(double v, int precision = 3);

/// Formats v in scientific-ish compact form (%.3g), for SLAV-style values.
[[nodiscard]] std::string format_compact(double v);

}  // namespace glap
