#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/exec_context.hpp"

namespace glap {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Shard slot 0 belongs to non-pool threads; workers cycle through 1..63.
  // Slots may repeat across different pools, which is safe as long as only
  // one pool's workers write a given accumulator concurrently (the engine
  // never runs protocol code on two pools at once).
  exec::context().shard_slot =
      static_cast<std::uint32_t>(worker_index % (exec::kShardCount - 1)) + 1;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One task per index drowns small bodies in queue-lock and future
  // allocation overhead (sweep fan-out submits thousands of cells).
  // Chunk into ~4 blocks per worker: enough slack for load balancing
  // across uneven cells, bounded submission cost.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace glap
