#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace glap {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace glap
