#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace glap {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == 0.0) return std::signbit(v) ? "-0" : "0";
  // Integers that fit a double exactly print without a fraction/exponent.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest %.{p}g form that strtod's back to the same bits. 17 significant
  // digits always round-trip an IEEE double, so the loop terminates.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().empty) out_ << ',';
  stack_.back().empty = false;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << '{';
  stack_.push_back({/*array=*/false, /*empty=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().empty;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << '[';
  stack_.push_back({/*array=*/true, /*empty=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.back().empty;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!stack_.back().empty) out_ << ',';
  stack_.back().empty = false;
  newline_indent();
  out_ << '"' << json_escape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  out_ << json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

}  // namespace glap
