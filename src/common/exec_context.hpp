// Thread-local execution context for the parallel simulation engine.
//
// The engine runs deterministic waves of node interactions on a ThreadPool.
// Code that accumulates side effects from inside those interactions (network
// message counters, deferred migration accounting) must do so without locks
// and without introducing scheduling-dependent ordering.  The context gives
// every thread a stable shard slot for per-thread accumulators, and carries
// the serial rank of the interaction currently executing so deferred effects
// can be replayed in exact serial order afterwards.
#pragma once

#include <cstdint>

namespace glap::exec {

/// Number of side-effect shards.  Slot 0 is reserved for threads that are not
/// pool workers (the main/driver thread); pool workers occupy slots 1..63, so
/// a parallel engine is capped at kShardCount - 1 worker threads.
inline constexpr std::uint32_t kShardCount = 64;

struct Context {
  /// Which accumulator shard this thread writes to (0 = non-pool thread).
  std::uint32_t shard_slot = 0;
  /// Serial rank of the initiator whose interaction is currently executing.
  /// Deferred side effects sort on (order_key, seq) to recover serial order.
  std::uint64_t order_key = 0;
  /// Per-interaction mutation counter (reset by the engine per initiator).
  std::uint32_t seq = 0;
};

[[nodiscard]] inline Context& context() noexcept {
  thread_local Context ctx;
  return ctx;
}

}  // namespace glap::exec
