// Always-on flight recorder (DESIGN.md §10.7): a bounded in-memory ring
// holding the GTB-encoded trace of the last N committed rounds, kept even
// when file tracing is off. When a run dies — a GLAP_REQUIRE/GLAP_ASSERT
// contract failure or a fatal signal — the ring is dumped as a valid GTB
// trace (plus the current metric snapshot when a registry is attached),
// so every CI failure and fault-injection run leaves a post-mortem
// artifact that `glap-trace` can analyze.
//
// The recorder buckets bytes per round: TraceLog::begin_round() seals the
// previous bucket and `append` extends the current one, so the ring always
// holds whole committed rounds and a dump is a parseable record stream.
// Events of the crashing round that were still sitting in the per-shard
// emit buffers (not yet committed) are not recoverable — the dump ends at
// the last quiescent point, which is also the last instant the trace
// bytes were deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace glap::metrics {
class MetricsRegistry;
}

namespace glap::flight {

class FlightRecorder {
 public:
  /// Default ring depth (rounds retained).
  static constexpr std::size_t kDefaultRounds = 8;

  explicit FlightRecorder(std::size_t max_rounds = kDefaultRounds);

  /// Seals the previous round's bucket and starts a new one (evicting the
  /// oldest bucket once the ring is full).
  void begin_round(std::uint64_t round);

  /// Appends GTB record bytes to the current round's bucket.
  void append(const char* data, std::size_t size);

  /// Attaches the registry whose snapshot joins every dump (not owned).
  void set_registry(const metrics::MetricsRegistry* registry) noexcept {
    registry_ = registry;
  }

  /// Writes a GTB header plus the retained rounds to `path`; when a
  /// registry is attached, its JSON snapshot lands at
  /// `<path>.metrics.json`. Returns false on I/O failure.
  [[nodiscard]] bool dump(const std::string& path) const;

  /// Signal-context dump: writes the header and retained buckets to an
  /// already-open fd with no allocation. Best-effort — a signal landing
  /// mid-append can leave the newest bucket truncated mid-record, which
  /// the truncation-tolerant TraceReader still parses up to that point.
  void dump_to_fd(int fd) const noexcept;

  [[nodiscard]] std::size_t max_rounds() const noexcept {
    return ring_.size();
  }
  /// Rounds currently retained (≤ max_rounds).
  [[nodiscard]] std::size_t rounds_retained() const noexcept;
  /// Round number of the oldest retained bucket (0 when empty).
  [[nodiscard]] std::uint64_t oldest_round() const noexcept;

 private:
  struct Bucket {
    std::uint64_t round = 0;
    bool used = false;
    std::string bytes;
  };

  /// Oldest-first bucket visit order.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 1; i <= ring_.size(); ++i) {
      const Bucket& b = ring_[(cursor_ + i) % ring_.size()];
      if (b.used) fn(b);
    }
  }

  std::vector<Bucket> ring_;
  std::size_t cursor_ = 0;  ///< index of the current (open) bucket
  bool any_ = false;
  const metrics::MetricsRegistry* registry_ = nullptr;
};

/// RAII activation of crash dumping for one run: while alive, the
/// assertion hook (common/assert.hpp) and the fatal-signal handlers
/// (SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL) dump `recorder` to `path`.
/// Process-wide and non-reentrant: a second concurrent scope is a no-op.
class CrashDumpScope {
 public:
  CrashDumpScope(FlightRecorder* recorder, const std::string& path);
  ~CrashDumpScope();

  CrashDumpScope(const CrashDumpScope&) = delete;
  CrashDumpScope& operator=(const CrashDumpScope&) = delete;

  /// True when this scope owns the process-wide hook installation.
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
};

}  // namespace glap::flight
