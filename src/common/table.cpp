#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace glap {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_compact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GLAP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  GLAP_REQUIRE(row.size() == header_.size(),
               "row width does not match header");
  rows_.push_back(std::move(row));
}

void ConsoleTable::add_row_values(const std::string& label,
                                  const std::vector<double>& values,
                                  int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "  " : "");
      os << row[i];
      for (std::size_t pad = row[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  return os.str();
}

}  // namespace glap
