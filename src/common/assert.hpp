// Lightweight contract-checking macros used across the library.
//
// GLAP_REQUIRE is always on (checks user-facing API preconditions and
// throws std::invalid_argument / std::logic_error style errors).
// GLAP_ASSERT compiles to a cheap check in all build types; internal
// invariants in hot loops should prefer GLAP_DEBUG_ASSERT which vanishes
// in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace glap {

/// Thrown when a documented API precondition is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is violated (indicates a bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
/// Flight-recorder hook (common/flight_recorder.hpp): while a
/// CrashDumpScope is active this points at its dump routine, so a failed
/// contract check leaves a post-mortem trace before the exception
/// propagates. Null whenever no recorder is armed.
inline void (*fatal_hook)(const char* what) = nullptr;

inline void notify_fatal(const std::string& what) {
  if (fatal_hook != nullptr) fatal_hook(what.c_str());
}

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  notify_fatal(os.str());
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  notify_fatal(os.str());
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace glap

#define GLAP_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr))                                                        \
      ::glap::detail::throw_precondition(#expr, __FILE__, __LINE__,     \
                                         (msg));                        \
  } while (false)

#define GLAP_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::glap::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define GLAP_DEBUG_ASSERT(expr, msg) ((void)0)
#else
#define GLAP_DEBUG_ASSERT(expr, msg) GLAP_ASSERT(expr, msg)
#endif

// GLAP_HOT_REQUIRE guards preconditions on per-round hot paths (e.g.
// Engine::protocol_at bounds checks). It is GLAP_REQUIRE unless the build
// turns hot-path checks off (CMake -DGLAP_ENABLE_CHECKS=OFF, which defines
// GLAP_NO_HOT_CHECKS — intended for optimized bench/Release builds; keep
// checks ON in Debug and CI). Cold-path validation and type-mismatch
// detection stay on GLAP_REQUIRE in every configuration.
#ifdef GLAP_NO_HOT_CHECKS
#define GLAP_HOT_REQUIRE(expr, msg) ((void)0)
#else
#define GLAP_HOT_REQUIRE(expr, msg) GLAP_REQUIRE(expr, msg)
#endif
