// Shared serialization layer for the two trace encodings (DESIGN.md §10):
// the JSONL text format and GTB, the compact length-prefixed binary
// format. Both are pure functions of a TraceEvent, so TraceLog (write
// side), TraceReader (read side) and `glap-trace convert` all produce
// byte-identical artifacts for the same event stream — the formats are
// interchangeable carriers of the same determinism contract.
//
// GTB wire format (version 1, all integers little-endian):
//
//   header   'G' 'T' 'B' '0'  u32 version
//   record   u32 payload_len  payload
//   payload  u8 kind (trace::EventKind value)  u64 round  fields...
//
// Per-kind fields (i64/u64/f64 are 8 bytes; f64 is the IEEE-754 bit
// pattern, so doubles round-trip exactly through JSONL's shortest-form
// rendering):
//
//   migration    i64 vm, from, to        f64 cpu, energy_j
//   power        i64 pm                  u8 on
//   shuffle      i64 initiator, peer, sent, reply
//   overload     i64 pm                  f64 cpu
//   fault        i64 pm, kind            f64 value
//   activity     i64 pm                  u8 awake, u8 reason code
//   net          u8 op, then per op:
//     send(0)    i64 src, dst, msg, bytes   u8 channel code
//     deliver(1) i64 src, dst, msg, delay
//     drop(2)    i64 src, dst, msg          u8 reason code
//     queue(3)   u8 link code               i64 id, bytes
//   round        u64 active_pms, overloaded_pms, migrations,
//                u64 messages, bytes
//   qsim         f64 similarity
//   relearn      (no fields)
//   shard_bytes  u32 count, u64 x count
//
// String enumerations travel as the 1-byte codes pinned by the name/code
// tables below; an event naming an unknown string cannot be encoded.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/trace_reader.hpp"

namespace glap::trace {

// ---- name/code tables ---------------------------------------------------
// Channel codes mirror net::Channel and drop-reason codes net::DropReason
// in declaration order (pinned here and in tests/common/test_tracing.cpp
// rather than shared via an include — the net model is downstream).

[[nodiscard]] const char* net_channel_name(std::int64_t code);
[[nodiscard]] bool net_channel_code(std::string_view name, std::int64_t* out);

[[nodiscard]] const char* net_drop_reason_name(std::int64_t code);
[[nodiscard]] bool net_drop_reason_code(std::string_view name,
                                        std::int64_t* out);

/// Reverse of activity_reason_name (common/tracing.hpp).
[[nodiscard]] bool activity_reason_code(std::string_view name,
                                        std::int64_t* out);

/// Net ops: 0 send, 1 deliver, 2 drop, 3 queue.
[[nodiscard]] const char* net_op_name(std::int64_t code);
[[nodiscard]] bool net_op_code(std::string_view name, std::int64_t* out);

/// Queue links: 0 access, 1 uplink.
[[nodiscard]] const char* net_link_name(std::int64_t code);
[[nodiscard]] bool net_link_code(std::string_view name, std::int64_t* out);

// ---- JSONL --------------------------------------------------------------

/// Appends the §10.2 JSONL line (including trailing '\n') for `e`.
/// Byte-identical to what TraceLog has always written: integers in
/// shortest decimal form, doubles via json_double.
void render_jsonl(const TraceEvent& e, std::string* out);

// ---- GTB ----------------------------------------------------------------

inline constexpr char kGtbMagic[4] = {'G', 'T', 'B', '0'};
inline constexpr std::uint32_t kGtbVersion = 1;
inline constexpr std::size_t kGtbHeaderBytes = 8;
/// Upper bound on one record's payload; anything larger is a corrupt
/// length prefix, not a real record (the largest schema record is a
/// shard_bytes line: 13 + 8 * exec::kShardCount bytes).
inline constexpr std::uint32_t kGtbMaxRecordBytes = 1u << 16;

/// Appends the 8-byte versioned file header.
void append_gtb_header(std::string* out);

/// Appends one length-prefixed record. Returns false (with a diagnostic
/// in `error`) only when `e` carries a string that has no wire code —
/// impossible for writer-produced events.
[[nodiscard]] bool append_gtb_record(const TraceEvent& e, std::string* out,
                                     std::string* error = nullptr);

/// Decodes one record payload (the bytes after the u32 length prefix).
/// Rejects short payloads, trailing bytes, and unknown codes.
[[nodiscard]] bool decode_gtb_payload(std::string_view payload,
                                      TraceEvent* out, std::string* error);

}  // namespace glap::trace
