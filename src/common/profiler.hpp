// Deterministic per-phase profiler for the simulation engine (DESIGN.md
// §10.4): scoped timers around the engine's execution phases, accumulated
// per exec shard with no locks on the hot path and merged only at
// quiescent points.
//
// The profile splits into two halves with different guarantees:
//
//   * phase CALL COUNTS for the commit phase and per-protocol-slot
//     execute bodies are a pure function of (config, seed) — identical
//     between the serial and wave-parallel engines at any thread count,
//     and part of the metric snapshot identity contract when published;
//   * WALL-CLOCK nanoseconds are host- and scheduling-dependent, and the
//     select phase only exists under wave execution (the serial engine
//     never calls select_peers), so both are reported separately and
//     never enter any bit-identity comparison.
//
// Cost when disabled: instrumented sites hold a PhaseScope over a null
// profiler — two predictable branches, no clock reads.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/exec_context.hpp"

namespace glap::prof {

class PhaseProfiler {
 public:
  /// Wave-parallel select_peers + reservation staking. Execution-mode
  /// dependent (serial runs never enter it) — wall-clock-only phase.
  static constexpr std::size_t kSelect = 0;
  /// Harness quiescent-point commit (deferred accounting + metric/trace
  /// round commit).
  static constexpr std::size_t kCommit = 1;
  /// Protocol slot k's execute body is phase kFirstSlot + k.
  static constexpr std::size_t kFirstSlot = 2;
  static constexpr std::size_t kMaxPhases = 16;

  PhaseProfiler();

  /// Overrides a phase's report label (driver thread, before the run).
  void set_label(std::size_t phase, std::string label);

  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Hot path: one call + elapsed time into the calling shard's cell.
  void record(std::size_t phase, std::uint64_t ns) noexcept {
    if (phase >= kMaxPhases) return;
    Cell& cell = shards_[exec::context().shard_slot].cells[phase];
    ++cell.calls;
    cell.ns += ns;
  }

  struct PhaseTotals {
    std::size_t phase = 0;
    std::string label;
    std::uint64_t calls = 0;
    std::uint64_t wall_ns = 0;
    /// True when `calls` is part of the determinism contract (everything
    /// except the select phase).
    bool deterministic = false;
  };

  /// Merges all shards. Quiescent points only (no interaction in flight).
  /// Select and commit always appear; slot phases appear once called.
  [[nodiscard]] std::vector<PhaseTotals> totals() const;

 private:
  struct Cell {
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
  };
  struct alignas(64) Shard {
    std::array<Cell, kMaxPhases> cells{};
  };

  std::array<Shard, exec::kShardCount> shards_{};
  std::array<std::string, kMaxPhases> labels_;
};

/// RAII timer: null profiler = disabled (no clock read).
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* profiler, std::size_t phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = PhaseProfiler::now_ns();
  }
  ~PhaseScope() {
    if (profiler_ != nullptr)
      profiler_->record(phase_, PhaseProfiler::now_ns() - start_);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::size_t phase_;
  std::uint64_t start_ = 0;
};

}  // namespace glap::prof
