#include "common/csv.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

#include "common/assert.hpp"

namespace glap {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[32];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields.emplace_back(buf);
  }
  write_row(fields);
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  return npos;
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  GLAP_REQUIRE(!in_quotes, "unterminated quoted CSV field");
  fields.push_back(std::move(cur));
  return fields;
}

CsvTable read_csv(std::istream& in, bool has_header) {
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = parse_csv_line(line);
    if (first && has_header) {
      table.header = std::move(fields);
    } else {
      table.rows.push_back(std::move(fields));
    }
    first = false;
  }
  return table;
}

}  // namespace glap
