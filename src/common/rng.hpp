// Deterministic, splittable pseudo-random number generation.
//
// All stochastic behaviour in the library flows through Rng so that a run
// is a pure function of its seed. Rng wraps xoshiro256++ (public-domain
// algorithm by Blackman & Vigna) seeded through SplitMix64, and satisfies
// the UniformRandomBitGenerator concept so it composes with <random>
// distributions when needed — though the built-in helpers below avoid
// libstdc++'s unspecified distribution algorithms and are reproducible
// across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace glap {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; used to derive independent
/// sub-seeds, e.g. hash_combine(seed, vm_id) for per-VM trace streams.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  return splitmix64(s);
}

/// Hash a short string tag into a 64-bit sub-seed component.
constexpr std::uint64_t hash_tag(std::string_view tag) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = h;
  return splitmix64(s);
}

/// xoshiro256++ engine with reproducible helper distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state via SplitMix64 (never all-zero).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent generator for a tagged subsystem.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept {
    return Rng(hash_combine(state_[0] ^ state_[2], stream));
  }
  [[nodiscard]] Rng split(std::string_view tag) const noexcept {
    return split(hash_tag(tag));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    GLAP_DEBUG_ASSERT(lo <= hi, "uniform bounds inverted");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    GLAP_DEBUG_ASSERT(lo <= hi, "range bounds inverted");
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (reproducible).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (mean = 1/rate).
  double exponential(double rate) noexcept;

  /// Gamma(shape, scale=1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape) noexcept;

  /// Beta(a, b) sample in [0, 1].
  double beta(double a, double b) noexcept;

  /// Pareto (Lomax-style bounded) sample in [0,1]: heavy-tailed helper.
  double bounded_pareto(double shape, double lo, double hi) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[bounded(i)]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  template <typename Container>
  std::size_t pick_index(const Container& c) noexcept {
    GLAP_DEBUG_ASSERT(!c.empty(), "pick_index on empty container");
    return static_cast<std::size_t>(bounded(c.size()));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace glap
