#include "common/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "common/csv.hpp"
#include "common/json.hpp"

namespace glap::metrics {

void OrderedHistogram::commit_round() {
  scratch_.clear();
  for (auto& buf : buffers_) {
    scratch_.insert(scratch_.end(), buf.begin(), buf.end());
    buf.clear();
  }
  if (scratch_.empty()) return;
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Sample& a, const Sample& b) {
              return a.order_key != b.order_key ? a.order_key < b.order_key
                                                : a.seq < b.seq;
            });
  for (const Sample& s : scratch_) stats_.add(s.value);
}

template <typename T>
T* MetricsRegistry::get_or_create(std::deque<Entry<T>>& entries,
                                  std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries) {
    if (e.name == name) return &e.instrument;
  }
  entries.push_back({std::string(name), T{}});
  return &entries.back().instrument;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  return get_or_create(counters_, name);
}
Gauge* MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(gauges_, name);
}
OrderedHistogram* MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(histograms_, name);
}
Series* MetricsRegistry::series(std::string_view name) {
  return get_or_create(series_, name);
}

void MetricsRegistry::commit_round() {
  // No lock: commit runs at quiescent points, after all engine threads have
  // joined the round barrier and before the next round starts.
  for (auto& e : histograms_) e.instrument.commit_round();
}

namespace {

template <typename T, typename Fn>
void write_sorted(JsonWriter& w, std::string_view section,
                  const std::deque<T>& entries, Fn&& emit) {
  std::vector<const T*> sorted;
  sorted.reserve(entries.size());
  for (const auto& e : entries) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const T* a, const T* b) { return a->name < b->name; });
  w.key(section).begin_object();
  for (const T* e : sorted) {
    w.key(e->name);
    emit(*e);
  }
  w.end_object();
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();
  write_sorted(w, "counters", counters_,
               [&](const auto& e) { w.value(e.instrument.value()); });
  write_sorted(w, "gauges", gauges_,
               [&](const auto& e) { w.value(e.instrument.value()); });
  write_sorted(w, "histograms", histograms_, [&](const auto& e) {
    const RunningStats& s = e.instrument.stats();
    w.begin_object()
        .member("count", s.count())
        .member("mean", s.mean())
        .member("stddev", s.stddev())
        .member("min", s.min())
        .member("max", s.max())
        .member("sum", s.sum())
        .end_object();
  });
  write_sorted(w, "series", series_, [&](const auto& e) {
    w.begin_array();
    for (const double v : e.instrument.values()) w.value(v);
    w.end_array();
  });
  w.end_object();
  out << '\n';
}

void MetricsRegistry::write_series_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry<Series>*> sorted;
  sorted.reserve(series_.size());
  for (const auto& e : series_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->name < b->name; });

  CsvWriter csv(out);
  std::vector<std::string> header{"round"};
  std::size_t rows = 0;
  for (const auto* e : sorted) {
    header.push_back(e->name);
    rows = std::max(rows, e->instrument.values().size());
  }
  csv.write_row(header);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row{std::to_string(r)};
    for (const auto* e : sorted) {
      const auto& vals = e->instrument.values();
      row.push_back(r < vals.size() ? json_double(vals[r]) : std::string());
    }
    csv.write_row(row);
  }
}

}  // namespace glap::metrics
