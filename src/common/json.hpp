// Minimal deterministic JSON writer for the observability sinks
// (results/<bench>.json, metrics snapshots, JSONL trace lines).
//
// Determinism is the point: the regen pipeline (scripts/regen_experiments.py)
// and the golden/bit-identity tests diff these bytes, so formatting must be
// a pure function of the values written. Numbers use the shortest decimal
// form that round-trips the exact double (no locale, no %g surprises);
// object keys are emitted in the order the caller writes them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace glap {

/// Shortest decimal string that strtod's back to exactly `v`. Emits
/// integers without an exponent where possible ("42" not "4.2e1");
/// non-finite values render as JSON null (they should not occur in metric
/// output — RunningStats on empty input returns 0).
[[nodiscard]] std::string json_double(double v);

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Streaming JSON writer with comma/indentation bookkeeping. Values are
/// written depth-first: begin_object/begin_array open a scope, key() names
/// the next member inside an object. Pretty-prints with 2-space indents —
/// stable output, human-diffable results files.
class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next member of the enclosing object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  void pre_value();
  void newline_indent();

  struct Scope {
    bool array = false;
    bool empty = true;
  };

  std::ostream& out_;
  std::vector<Scope> stack_;
  bool pending_key_ = false;
};

}  // namespace glap
