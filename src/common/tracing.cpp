#include "common/tracing.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"
#include "common/flight_recorder.hpp"
#include "common/trace_format.hpp"

namespace glap::trace {

// The writer-side Kind values double as the wire codes of the read-side
// EventKind (GTB stores the latter); keep the prefixes aligned.
static_assert(static_cast<int>(Kind::kMigration) ==
                  static_cast<int>(EventKind::kMigration) &&
              static_cast<int>(Kind::kPower) ==
                  static_cast<int>(EventKind::kPower) &&
              static_cast<int>(Kind::kShuffle) ==
                  static_cast<int>(EventKind::kShuffle) &&
              static_cast<int>(Kind::kOverload) ==
                  static_cast<int>(EventKind::kOverload) &&
              static_cast<int>(Kind::kFault) ==
                  static_cast<int>(EventKind::kFault) &&
              static_cast<int>(Kind::kActivity) ==
                  static_cast<int>(EventKind::kActivity) &&
              static_cast<int>(Kind::kNet) ==
                  static_cast<int>(EventKind::kNet),
              "trace::Kind must mirror the first trace::EventKind values");

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kMigration: return "migration";
    case Kind::kPower: return "power";
    case Kind::kShuffle: return "shuffle";
    case Kind::kOverload: return "overload";
    case Kind::kFault: return "fault";
    case Kind::kActivity: return "activity";
    case Kind::kNet: return "net";
  }
  return "?";
}

const char* activity_reason_name(std::int64_t code) {
  switch (code) {
    case 0: return "converged";
    case 1: return "gossip";
    case 2: return "demand";
    case 3: return "migration";
    case 4: return "status";
    case 5: return "schedule";
    case 6: return "relearn";
    case 7: return "network";
  }
  return "?";
}

TraceLog::TraceLog(std::ostream& out, Format format,
                   const SamplingPolicy& sampling)
    : TraceLog(&out, format, sampling) {}

TraceLog::TraceLog(std::ostream* out, Format format,
                   const SamplingPolicy& sampling)
    : out_(out),
      format_(format),
      sampling_(sampling),
      shuffle_keep_all_(sampling.shuffle_keep >= 1.0),
      net_keep_all_(sampling.net_keep >= 1.0),
      sample_seed_(hash_combine(sampling.seed, hash_tag("trace-sample"))) {
  GLAP_REQUIRE(sampling.shuffle_keep >= 0.0 && sampling.shuffle_keep <= 1.0 &&
                   sampling.net_keep >= 0.0 && sampling.net_keep <= 1.0,
               "trace sampling keep probabilities must be in [0, 1]");
  if (out_ != nullptr && format_ == Format::kGtb) {
    bytes_.clear();
    append_gtb_header(&bytes_);
    out_->write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
  }
}

void TraceLog::begin_round(std::uint64_t round) {
  round_ = round;
  if (recorder_ != nullptr) recorder_->begin_round(round);
}

void TraceLog::to_trace_event(const Event& e) {
  ev_.kind = static_cast<EventKind>(e.kind);
  ev_.round = round_;
  switch (e.kind) {
    case Kind::kMigration:
      ev_.migration.vm = e.a;
      ev_.migration.from = e.b;
      ev_.migration.to = e.c;
      ev_.migration.cpu = e.x;
      ev_.migration.energy_j = e.y;
      break;
    case Kind::kPower:
      ev_.power.pm = e.a;
      ev_.power.on = e.b != 0;
      break;
    case Kind::kShuffle:
      ev_.shuffle.initiator = e.a;
      ev_.shuffle.peer = e.b;
      ev_.shuffle.sent = e.c;
      ev_.shuffle.reply = e.d;
      break;
    case Kind::kOverload:
      ev_.overload.pm = e.a;
      ev_.overload.cpu = e.x;
      break;
    case Kind::kFault:
      ev_.fault.pm = e.a;
      ev_.fault.code = e.b;
      ev_.fault.value = e.x;
      break;
    case Kind::kActivity:
      ev_.activity.pm = e.a;
      ev_.activity.awake = e.b != 0;
      ev_.activity.reason = activity_reason_name(e.c);
      break;
    case Kind::kNet:
      ev_.net.src = e.b;
      ev_.net.dst = e.c;
      ev_.net.msg = e.d;
      switch (e.a) {
        case 0:
          ev_.net.op = "send";
          ev_.net.bytes = static_cast<std::int64_t>(e.x);
          ev_.net.channel =
              net_channel_name(static_cast<std::int64_t>(e.y));
          break;
        case 1:
          ev_.net.op = "deliver";
          ev_.net.delay = static_cast<std::int64_t>(e.x);
          break;
        default:
          ev_.net.op = "drop";
          ev_.net.reason =
              net_drop_reason_name(static_cast<std::int64_t>(e.x));
          break;
      }
      break;
  }
}

void TraceLog::write_event() {
  bytes_.clear();
  if (format_ == Format::kGtb) {
    std::string error;
    const bool ok = append_gtb_record(ev_, &bytes_, &error);
    GLAP_ASSERT(ok, "GTB encode of writer event failed: " + error);
    if (out_ != nullptr)
      out_->write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
    if (recorder_ != nullptr) recorder_->append(bytes_.data(), bytes_.size());
    return;
  }
  render_jsonl(ev_, &bytes_);
  if (out_ != nullptr)
    out_->write(bytes_.data(), static_cast<std::streamsize>(bytes_.size()));
  if (recorder_ != nullptr) {
    recorder_bytes_.clear();
    std::string error;
    const bool ok = append_gtb_record(ev_, &recorder_bytes_, &error);
    GLAP_ASSERT(ok, "GTB encode of writer event failed: " + error);
    recorder_->append(recorder_bytes_.data(), recorder_bytes_.size());
  }
}

void TraceLog::commit_round() {
  scratch_.clear();
  for (auto& buf : buffers_) {
    scratch_.insert(scratch_.end(), buf.begin(), buf.end());
    buf.clear();
  }
  if (scratch_.empty()) return;
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const Event& a, const Event& b) {
                     return a.order_key != b.order_key
                                ? a.order_key < b.order_key
                                : a.seq < b.seq;
                   });
  for (const Event& e : scratch_) {
    to_trace_event(e);
    write_event();
  }
}

void TraceLog::round_summary(std::uint64_t round, std::uint64_t active_pms,
                             std::uint64_t overloaded_pms,
                             std::uint64_t migrations, std::uint64_t messages,
                             std::uint64_t bytes) {
  ev_.kind = EventKind::kRound;
  ev_.round = round;
  ev_.summary.active_pms = active_pms;
  ev_.summary.overloaded_pms = overloaded_pms;
  ev_.summary.migrations = migrations;
  ev_.summary.messages = messages;
  ev_.summary.bytes = bytes;
  write_event();
}

void TraceLog::qsim(std::uint64_t round, double similarity) {
  ev_.kind = EventKind::kQsim;
  ev_.round = round;
  ev_.qsim.similarity = similarity;
  write_event();
}

void TraceLog::overload(std::uint64_t round, std::int64_t pm, double cpu) {
  ev_.kind = EventKind::kOverload;
  ev_.round = round;
  ev_.overload.pm = pm;
  ev_.overload.cpu = cpu;
  write_event();
}

void TraceLog::relearn(std::uint64_t round) {
  ev_.kind = EventKind::kRelearn;
  ev_.round = round;
  write_event();
}

void TraceLog::net_queue(std::uint64_t round, const char* link,
                         std::int64_t id, std::uint64_t backlog_bytes) {
  ev_.kind = EventKind::kNet;
  ev_.round = round;
  ev_.net.op = "queue";
  ev_.net.link = link;
  ev_.net.link_id = id;
  ev_.net.bytes = static_cast<std::int64_t>(backlog_bytes);
  write_event();
}

void TraceLog::shard_bytes(std::uint64_t round,
                           const std::vector<std::uint64_t>& per_shard) {
  ev_.kind = EventKind::kShardBytes;
  ev_.round = round;
  ev_.shard_bytes = per_shard;
  write_event();
}

}  // namespace glap::trace
