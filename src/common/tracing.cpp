#include "common/tracing.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"

namespace glap::trace {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kMigration: return "migration";
    case Kind::kPower: return "power";
    case Kind::kShuffle: return "shuffle";
    case Kind::kOverload: return "overload";
    case Kind::kFault: return "fault";
    case Kind::kActivity: return "activity";
    case Kind::kNet: return "net";
  }
  return "?";
}

const char* activity_reason_name(std::int64_t code) {
  switch (code) {
    case 0: return "converged";
    case 1: return "gossip";
    case 2: return "demand";
    case 3: return "migration";
    case 4: return "status";
    case 5: return "schedule";
    case 6: return "relearn";
    case 7: return "network";
  }
  return "?";
}

namespace {
/// Channel codes mirror net::Channel in declaration order (the net model
/// is a downstream library, so the mapping is pinned here and in
/// tests/common/test_tracing.cpp rather than shared via an include).
const char* net_channel_name(std::int64_t code) {
  switch (code) {
    case 0: return "shuffle";
    case 1: return "learning";
    case 2: return "aggregation";
    case 3: return "consolidation";
    case 4: return "probe";
    case 5: return "migration";
  }
  return "?";
}

/// Drop-reason codes mirror net::DropReason (1 loss, 2 congestion).
const char* net_drop_reason_name(std::int64_t code) {
  switch (code) {
    case 1: return "loss";
    case 2: return "congestion";
  }
  return "?";
}
}  // namespace

void TraceLog::render(const Event& e) {
  out_ << "{\"ev\":\"" << kind_name(e.kind) << "\",\"round\":" << round_;
  switch (e.kind) {
    case Kind::kMigration:
      out_ << ",\"vm\":" << e.a << ",\"from\":" << e.b << ",\"to\":" << e.c
           << ",\"cpu\":" << json_double(e.x)
           << ",\"energy_j\":" << json_double(e.y);
      break;
    case Kind::kPower:
      out_ << ",\"pm\":" << e.a << ",\"on\":" << (e.b ? "true" : "false");
      break;
    case Kind::kShuffle:
      out_ << ",\"initiator\":" << e.a << ",\"peer\":" << e.b
           << ",\"sent\":" << e.c << ",\"reply\":" << e.d;
      break;
    case Kind::kOverload:
      out_ << ",\"pm\":" << e.a << ",\"cpu\":" << json_double(e.x);
      break;
    case Kind::kFault:
      out_ << ",\"pm\":" << e.a << ",\"kind\":" << e.b
           << ",\"value\":" << json_double(e.x);
      break;
    case Kind::kActivity:
      out_ << ",\"pm\":" << e.a << ",\"awake\":" << (e.b ? "true" : "false")
           << ",\"reason\":\"" << activity_reason_name(e.c) << '"';
      break;
    case Kind::kNet:
      switch (e.a) {
        case 0:
          out_ << ",\"op\":\"send\",\"src\":" << e.b << ",\"dst\":" << e.c
               << ",\"msg\":" << e.d
               << ",\"bytes\":" << static_cast<std::int64_t>(e.x)
               << ",\"channel\":\""
               << net_channel_name(static_cast<std::int64_t>(e.y)) << '"';
          break;
        case 1:
          out_ << ",\"op\":\"deliver\",\"src\":" << e.b << ",\"dst\":" << e.c
               << ",\"msg\":" << e.d
               << ",\"delay\":" << static_cast<std::int64_t>(e.x);
          break;
        default:
          out_ << ",\"op\":\"drop\",\"src\":" << e.b << ",\"dst\":" << e.c
               << ",\"msg\":" << e.d << ",\"reason\":\""
               << net_drop_reason_name(static_cast<std::int64_t>(e.x)) << '"';
          break;
      }
      break;
  }
  out_ << "}\n";
}

void TraceLog::commit_round() {
  scratch_.clear();
  for (auto& buf : buffers_) {
    scratch_.insert(scratch_.end(), buf.begin(), buf.end());
    buf.clear();
  }
  if (scratch_.empty()) return;
  std::stable_sort(scratch_.begin(), scratch_.end(),
                   [](const Event& a, const Event& b) {
                     return a.order_key != b.order_key
                                ? a.order_key < b.order_key
                                : a.seq < b.seq;
                   });
  for (const Event& e : scratch_) render(e);
}

void TraceLog::round_summary(std::uint64_t round, std::uint64_t active_pms,
                             std::uint64_t overloaded_pms,
                             std::uint64_t migrations, std::uint64_t messages,
                             std::uint64_t bytes) {
  out_ << "{\"ev\":\"round\",\"round\":" << round
       << ",\"active_pms\":" << active_pms
       << ",\"overloaded_pms\":" << overloaded_pms
       << ",\"migrations\":" << migrations << ",\"messages\":" << messages
       << ",\"bytes\":" << bytes << "}\n";
}

void TraceLog::qsim(std::uint64_t round, double similarity) {
  out_ << "{\"ev\":\"qsim\",\"round\":" << round
       << ",\"similarity\":" << json_double(similarity) << "}\n";
}

void TraceLog::overload(std::uint64_t round, std::int64_t pm, double cpu) {
  out_ << "{\"ev\":\"overload\",\"round\":" << round << ",\"pm\":" << pm
       << ",\"cpu\":" << json_double(cpu) << "}\n";
}

void TraceLog::relearn(std::uint64_t round) {
  out_ << "{\"ev\":\"relearn\",\"round\":" << round << "}\n";
}

void TraceLog::net_queue(std::uint64_t round, const char* link,
                         std::int64_t id, std::uint64_t backlog_bytes) {
  out_ << "{\"ev\":\"net\",\"round\":" << round << ",\"op\":\"queue\",\"link\":\""
       << link << "\",\"id\":" << id << ",\"bytes\":" << backlog_bytes
       << "}\n";
}

void TraceLog::shard_bytes(std::uint64_t round,
                           const std::vector<std::uint64_t>& per_shard) {
  out_ << "{\"ev\":\"shard_bytes\",\"round\":" << round << ",\"bytes\":[";
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (i) out_ << ',';
    out_ << per_shard[i];
  }
  out_ << "]}\n";
}

}  // namespace glap::trace
