// Round-level event trace. One record per event in either of two
// byte-deterministic encodings — the JSONL text format or GTB, the
// compact binary format (common/trace_format.hpp) — selected per log.
// Events emitted from inside engine interactions are buffered per exec
// shard with (order_key, seq) tags and rendered in serial interaction
// order at commit_round(), so the trace bytes are bit-identical between
// the serial and wave-parallel engines in both formats (DESIGN.md §10
// lists the schema).
//
// Deterministic sampling (DESIGN.md §10.6): the high-volume interaction
// kinds (shuffle, net) can be thinned by a keep-probability decided by a
// pure hash of (seed, ids) — no RNG stream is consumed and the decision
// is independent of emit order, so sampled traces keep the engine
// bit-identity contract and a message's send/deliver/drop always travel
// together. Driver-only lines are never sampled.
//
// Driver-only events (round summaries, Q-similarity probes, re-learning
// triggers) bypass the ordered buffers and are written directly; they must
// only be emitted at quiescent points. The per-shard network byte breakdown
// is execution-dependent (which shard counted a message depends on thread
// assignment), so it is opt-in and excluded from the determinism contract.
//
// Every written record can additionally be teed, GTB-encoded, into a
// flight recorder ring (common/flight_recorder.hpp) for post-mortem
// dumps; the harness keeps that ring alive even with no file sink.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/exec_context.hpp"
#include "common/rng.hpp"
#include "common/trace_reader.hpp"

namespace glap::flight {
class FlightRecorder;
}

namespace glap::trace {

/// Event kinds rendered into the JSONL "ev" field. Values mirror the
/// first entries of trace::EventKind (trace_reader.hpp).
enum class Kind : std::uint8_t {
  kMigration,    // a=vm, b=from_pm, c=to_pm, x=cpu, y=energy_j
  kPower,        // a=pm, b=on(0/1)
  kShuffle,      // a=initiator, b=peer, c=sent_entries, d=reply_entries
  kOverload,     // a=pm, x=cpu_utilization
  kFault,        // a=pm, b=fault_code, x=value — reserved for PM-fault
                 // injection (crash-stop, message loss, partition); no
                 // current emit site, but the wire format is fixed now so
                 // fault traces parse with today's trace_reader
  kActivity,     // a=pm, b=awake(0/1), c=reason code — quiescence
                 // transition under the event/quiescence engine
                 // (DESIGN.md §12); reason codes mirror sim::WakeReason
  kNet,          // network-model event (DESIGN.md §13): a=op (0 send,
                 // 1 deliver, 2 drop), b=src pm, c=dst pm, d=msg id,
                 // x=bytes|delay|drop-reason code, y=channel code; the
                 // driver-only queue-depth line ("op":"queue") bypasses
                 // the buffers via net_queue()
};

[[nodiscard]] const char* kind_name(Kind k);

/// Reason string for "activity" events; codes mirror sim::WakeReason in
/// declaration order (tests/common/test_tracing.cpp pins the mapping).
[[nodiscard]] const char* activity_reason_name(std::int64_t code);

/// Trace encodings; readers auto-detect which one a file carries.
enum class Format : std::uint8_t {
  kJsonl,  ///< one JSON object per line (DESIGN.md §10.2)
  kGtb,    ///< length-prefixed binary records (DESIGN.md §10.6)
};

/// Deterministic per-kind sampling (keep probabilities in [0, 1]).
/// Decisions are pure hashes: shuffle keeps hash(seed', round, initiator),
/// net keeps hash(seed', msg id) — one draw per message, so a kept
/// message keeps its send, deliver/drop, all together, preserving the
/// net-* invariants on the sampled trace. seed' mixes the experiment seed
/// with a fixed tag, mirroring the network model's loss draws.
struct SamplingPolicy {
  double shuffle_keep = 1.0;
  double net_keep = 1.0;
  std::uint64_t seed = 0;
};

/// Trace sink over an (optional) externally owned stream.
class TraceLog {
 public:
  /// Writes to `out` in `format`; the stream must outlive the log. A GTB
  /// log writes the versioned file header immediately.
  explicit TraceLog(std::ostream& out, Format format = Format::kJsonl,
                    const SamplingPolicy& sampling = {});

  /// As above, but `out` may be null: a sink-less log only feeds the
  /// attached flight recorder (the always-on post-mortem ring).
  explicit TraceLog(std::ostream* out, Format format,
                    const SamplingPolicy& sampling = {});

  /// Tees every written record, GTB-encoded, into `recorder` (not owned).
  void set_flight_recorder(flight::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  [[nodiscard]] Format format() const noexcept { return format_; }

  /// Records an event from inside an engine interaction; rendered in serial
  /// (order_key, seq) order at commit_round(). seq shares the interaction's
  /// mutation counter so trace events interleave faithfully with deferred
  /// DataCenter accounting. Sampled-out events are dropped here, before
  /// they consume buffer space or a seq tag — the keep decision is a pure
  /// hash, identical for every engine and thread count.
  void emit(Kind kind, std::int64_t a = 0, std::int64_t b = 0,
            std::int64_t c = 0, std::int64_t d = 0, double x = 0.0,
            double y = 0.0) {
    if (kind == Kind::kShuffle) {
      if (!shuffle_keep_all_ &&
          !sample_keep(hash_combine(round_, static_cast<std::uint64_t>(a)),
                       sampling_.shuffle_keep))
        return;
    } else if (kind == Kind::kNet) {
      if (!net_keep_all_ &&
          !sample_keep(static_cast<std::uint64_t>(d), sampling_.net_keep))
        return;
    }
    auto& ctx = exec::context();
    buffers_[ctx.shard_slot].push_back(
        {ctx.order_key, ctx.seq++, kind, a, b, c, d, x, y});
  }

  /// Starts a new round: subsequent events tag this round number, and the
  /// flight recorder (if any) seals the previous round's ring bucket.
  void begin_round(std::uint64_t round);

  /// Sorts and renders all events buffered during the current round.
  /// Call only at quiescent points (after the engine's round barrier).
  void commit_round();

  // ---- driver-only direct writes (quiescent points only) ----
  // Never sampled: these are the low-volume per-round summaries analysis
  // leans on.

  /// Per-round aggregate line ("ev":"round"): totals are deterministic.
  void round_summary(std::uint64_t round, std::uint64_t active_pms,
                     std::uint64_t overloaded_pms, std::uint64_t migrations,
                     std::uint64_t messages, std::uint64_t bytes);

  /// Q-table cosine-similarity probe ("ev":"qsim").
  void qsim(std::uint64_t round, double similarity);

  /// Per-PM overload line ("ev":"overload"); the harness scans PMs in id
  /// order at the quiescent point after each evaluation round.
  void overload(std::uint64_t round, std::int64_t pm, double cpu);

  /// GLAP re-learning trigger ("ev":"relearn").
  void relearn(std::uint64_t round);

  /// Network queue-depth line ("ev":"net","op":"queue"): the backlog of
  /// one link at the end of a round. `link` is "access" or "uplink", `id`
  /// the PM or rack index. Driver-only; the harness scans links in id
  /// order at the quiescent point, so the lines are deterministic. The
  /// network model skips zero-backlog links entirely (§13.6): healthy
  /// large runs pay no O(links) trace lines, and readers must tolerate
  /// per-round gaps in queue coverage.
  void net_queue(std::uint64_t round, const char* link, std::int64_t id,
                 std::uint64_t backlog_bytes);

  /// Opt-in per-shard network byte breakdown ("ev":"shard_bytes").
  /// Execution-dependent — which shard counted a message depends on thread
  /// assignment — hence excluded from the serial/parallel identity contract.
  void shard_bytes(std::uint64_t round,
                   const std::vector<std::uint64_t>& per_shard);

 private:
  struct Event {
    std::uint64_t order_key;
    std::uint32_t seq;
    Kind kind;
    std::int64_t a, b, c, d;
    double x, y;
  };

  [[nodiscard]] bool sample_keep(std::uint64_t key,
                                 double keep) const noexcept {
    return static_cast<double>(hash_combine(sample_seed_, key) >> 11) *
               0x1.0p-53 <
           keep;
  }

  /// Converts one buffered tuple into the scratch TraceEvent.
  void to_trace_event(const Event& e);
  /// Renders the scratch TraceEvent to the sink and flight recorder.
  void write_event();

  std::ostream* out_;
  Format format_;
  SamplingPolicy sampling_;
  bool shuffle_keep_all_;
  bool net_keep_all_;
  std::uint64_t sample_seed_;
  flight::FlightRecorder* recorder_ = nullptr;
  std::uint64_t round_ = 0;
  TraceEvent ev_;        ///< scratch event (string fields stay SSO-short)
  std::string bytes_;    ///< scratch rendering of one record
  std::string recorder_bytes_;  ///< scratch GTB tee when the sink is JSONL
  std::vector<Event> buffers_[exec::kShardCount];
  std::vector<Event> scratch_;
};

}  // namespace glap::trace
