// Round-level JSONL event trace. One JSON object per line; events emitted
// from inside engine interactions are buffered per exec shard with
// (order_key, seq) tags and rendered in serial interaction order at
// commit_round() — so the trace bytes are bit-identical between the serial
// and wave-parallel engines (DESIGN.md §10 lists the schema).
//
// Cost when disabled: the harness simply does not construct a TraceLog and
// instrumented code guards each emit with a single `if (trace_)` pointer
// test — no formatting, no buffering.
//
// Driver-only events (round summaries, Q-similarity probes, re-learning
// triggers) bypass the ordered buffers and are written directly; they must
// only be emitted at quiescent points. The per-shard network byte breakdown
// is execution-dependent (which shard counted a message depends on thread
// assignment), so it is opt-in and excluded from the determinism contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/exec_context.hpp"

namespace glap::trace {

/// Event kinds rendered into the JSONL "ev" field.
enum class Kind : std::uint8_t {
  kMigration,    // a=vm, b=from_pm, c=to_pm, x=cpu, y=energy_j
  kPower,        // a=pm, b=on(0/1)
  kShuffle,      // a=initiator, b=peer, c=sent_entries, d=reply_entries
  kOverload,     // a=pm, x=cpu_utilization
  kFault,        // a=pm, b=fault_code, x=value — reserved for PM-fault
                 // injection (crash-stop, message loss, partition); no
                 // current emit site, but the wire format is fixed now so
                 // fault traces parse with today's trace_reader
  kActivity,     // a=pm, b=awake(0/1), c=reason code — quiescence
                 // transition under the event/quiescence engine
                 // (DESIGN.md §12); reason codes mirror sim::WakeReason
  kNet,          // network-model event (DESIGN.md §13): a=op (0 send,
                 // 1 deliver, 2 drop), b=src pm, c=dst pm, d=msg id,
                 // x=bytes|delay|drop-reason code, y=channel code; the
                 // driver-only queue-depth line ("op":"queue") bypasses
                 // the buffers via net_queue()
};

[[nodiscard]] const char* kind_name(Kind k);

/// Reason string for "activity" events; codes mirror sim::WakeReason in
/// declaration order (tests/common/test_tracing.cpp pins the mapping).
[[nodiscard]] const char* activity_reason_name(std::int64_t code);

/// JSONL trace sink over an externally owned stream.
class TraceLog {
 public:
  /// Writes to `out`; the stream must outlive the log.
  explicit TraceLog(std::ostream& out) : out_(out) {}

  /// Records an event from inside an engine interaction; rendered in serial
  /// (order_key, seq) order at commit_round(). seq shares the interaction's
  /// mutation counter so trace events interleave faithfully with deferred
  /// DataCenter accounting.
  void emit(Kind kind, std::int64_t a = 0, std::int64_t b = 0,
            std::int64_t c = 0, std::int64_t d = 0, double x = 0.0,
            double y = 0.0) {
    auto& ctx = exec::context();
    buffers_[ctx.shard_slot].push_back(
        {ctx.order_key, ctx.seq++, kind, a, b, c, d, x, y});
  }

  /// Starts a new round: subsequent events tag this round number.
  void begin_round(std::uint64_t round) { round_ = round; }

  /// Sorts and renders all events buffered during the current round.
  /// Call only at quiescent points (after the engine's round barrier).
  void commit_round();

  // ---- driver-only direct writes (quiescent points only) ----

  /// Per-round aggregate line ("ev":"round"): totals are deterministic.
  void round_summary(std::uint64_t round, std::uint64_t active_pms,
                     std::uint64_t overloaded_pms, std::uint64_t migrations,
                     std::uint64_t messages, std::uint64_t bytes);

  /// Q-table cosine-similarity probe ("ev":"qsim").
  void qsim(std::uint64_t round, double similarity);

  /// Per-PM overload line ("ev":"overload"); the harness scans PMs in id
  /// order at the quiescent point after each evaluation round.
  void overload(std::uint64_t round, std::int64_t pm, double cpu);

  /// GLAP re-learning trigger ("ev":"relearn").
  void relearn(std::uint64_t round);

  /// Network queue-depth line ("ev":"net","op":"queue"): the backlog of
  /// one link at the end of a round. `link` is "access" or "uplink", `id`
  /// the PM or rack index. Driver-only; the harness scans links in id
  /// order at the quiescent point, so the lines are deterministic.
  void net_queue(std::uint64_t round, const char* link, std::int64_t id,
                 std::uint64_t backlog_bytes);

  /// Opt-in per-shard network byte breakdown ("ev":"shard_bytes").
  /// Execution-dependent — which shard counted a message depends on thread
  /// assignment — hence excluded from the serial/parallel identity contract.
  void shard_bytes(std::uint64_t round,
                   const std::vector<std::uint64_t>& per_shard);

 private:
  struct Event {
    std::uint64_t order_key;
    std::uint32_t seq;
    Kind kind;
    std::int64_t a, b, c, d;
    double x, y;
  };
  void render(const Event& e);

  std::ostream& out_;
  std::uint64_t round_ = 0;
  std::vector<Event> buffers_[exec::kShardCount];
  std::vector<Event> scratch_;
};

}  // namespace glap::trace
