#include "common/rng.hpp"

#include <cmath>

namespace glap {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  GLAP_DEBUG_ASSERT(bound > 0, "bounded(0) is undefined");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) noexcept {
  GLAP_DEBUG_ASSERT(rate > 0, "exponential rate must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::gamma(double shape) noexcept {
  GLAP_DEBUG_ASSERT(shape > 0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

double Rng::beta(double a, double b) noexcept {
  const double x = gamma(a);
  const double y = gamma(b);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

double Rng::bounded_pareto(double shape, double lo, double hi) noexcept {
  GLAP_DEBUG_ASSERT(shape > 0 && lo > 0 && hi > lo, "bad bounded_pareto args");
  const double u = uniform();
  const double la = std::pow(lo, shape);
  const double ha = std::pow(hi, shape);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
}

}  // namespace glap
