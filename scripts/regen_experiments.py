#!/usr/bin/env python3
"""Regenerate the measured tables in EXPERIMENTS.md from bench results.

Every bench binary mirrors the tables it prints into results/<bench>.json
(see src/harness/report.hpp). This script reruns the generating benches and
rewrites the blocks between

    <!-- GENERATED:BEGIN <bench>.<table> -->
    ...
    <!-- GENERATED:END <bench>.<table> -->

markers in EXPERIMENTS.md from those files. Cell values arrive preformatted
from the C++ side; this script only lays out markdown, so a regenerated
document is byte-identical to any other regenerated from the same results
(the CI docs-drift stage depends on that).

`<table>` may also be the literal `headlines`, which renders the bench's
headline key/value pairs as a two-column table.

A few results files are produced by tools other than a bench binary (see
EXTERNAL below); their blocks are rendered from the committed file and the
script never tries to execute `bench/<name>` for them.

Usage:
    scripts/regen_experiments.py [--build-dir build-release] [--check]
        [--results-dir results] [--skip-run] [--only bench1,bench2]
    scripts/regen_experiments.py --update-test-count build

--check regenerates in memory and exits 1 with a diff if EXPERIMENTS.md is
out of date. --skip-run trusts the existing results files. The bench scale
is inherited from the environment (GLAP_BENCH_SCALE / GLAP_BENCH_REPS).

--update-test-count runs `ctest -N` in the given build dir and rewrites the
test count between <!-- TEST-COUNT:BEGIN --> / END markers in README.md.
"""

import argparse
import difflib
import json
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXPERIMENTS = os.path.join(REPO, "EXPERIMENTS.md")
README = os.path.join(REPO, "README.md")

BEGIN_RE = re.compile(r"<!-- GENERATED:BEGIN ([A-Za-z0-9_]+)\.([A-Za-z0-9_]+) -->")
END_TMPL = "<!-- GENERATED:END {bench}.{table} -->"

# Results files with no bench binary behind them. trace_stats.json is written
# by `glap-trace stats --results` (the CI trace-verify stage regenerates it
# from the canonical `glap-trace gen` trace); lint_stats.json is written by
# `glap-lint scan . --results` (the CI lint stage). Blocks over these names
# render from the existing file and are never dispatched to run_benches.
EXTERNAL = {"trace_stats", "lint_stats"}


def fail(msg):
    print(f"[regen] error: {msg}", file=sys.stderr)
    sys.exit(1)


def find_blocks(text):
    """Yields (bench, table) for every generated block, in document order."""
    return [(m.group(1), m.group(2)) for m in BEGIN_RE.finditer(text)]


def run_benches(benches, build_dir, results_dir):
    env = dict(os.environ, GLAP_RESULTS_DIR=results_dir)
    for bench in benches:
        exe = os.path.join(build_dir, "bench", bench)
        if not os.path.exists(exe):
            fail(f"bench binary not found: {exe} (build it first)")
        print(f"[regen] running {bench} ...", flush=True)
        proc = subprocess.run([exe], env=env, cwd=REPO,
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            fail(f"{bench} exited with {proc.returncode}")


def load_results(bench, results_dir):
    path = os.path.join(results_dir, f"{bench}.json")
    if not os.path.isabs(path):
        path = os.path.join(REPO, path)
    if not os.path.exists(path):
        if bench in EXTERNAL:
            hint = ("`glap-lint scan . --results` (the CI lint stage does "
                    "this)" if bench == "lint_stats" else
                    "`glap-trace gen <trace> && glap-trace stats <trace> "
                    "--results` (the CI trace-verify stage does this)")
            fail(f"missing results file {path}; generate it with {hint}")
        fail(f"missing results file {path}; run the {bench} bench "
             f"(or drop --skip-run)")
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def markdown_table(columns, rows):
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_block(results, bench, table):
    if table == "headlines":
        headlines = results.get("headlines", {})
        if not headlines:
            fail(f"{bench}.json has no headlines")
        return markdown_table(["key", "value"],
                              [[k, v] for k, v in headlines.items()])
    for t in results.get("tables", []):
        if t["name"] == table:
            return markdown_table(t["columns"], t["rows"])
    fail(f"{bench}.json has no table named '{table}'")


def regenerate(text, results_dir):
    """Returns `text` with every generated block rebuilt from results."""
    out = text
    for bench, table in find_blocks(text):
        begin = f"<!-- GENERATED:BEGIN {bench}.{table} -->"
        end = END_TMPL.format(bench=bench, table=table)
        start = out.index(begin)
        stop = out.find(end, start)
        if stop < 0:
            fail(f"unterminated generated block {bench}.{table}")
        results = load_results(bench, results_dir)
        body = render_block(results, bench, table)
        out = out[:start] + begin + "\n" + body + "\n" + out[stop:]
    return out


def update_test_count(build_dir):
    proc = subprocess.run(["ctest", "--test-dir", build_dir, "-N"],
                          cwd=REPO, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"ctest -N failed:\n{proc.stderr}")
    m = re.search(r"Total Tests:\s*(\d+)", proc.stdout)
    if not m:
        fail("could not find 'Total Tests: N' in ctest -N output")
    count = int(m.group(1))

    with open(README, encoding="utf-8") as f:
        text = f.read()
    begin, end = "<!-- TEST-COUNT:BEGIN -->", "<!-- TEST-COUNT:END -->"
    if begin not in text or end not in text:
        fail(f"README.md is missing the {begin} / {end} markers")
    start = text.index(begin) + len(begin)
    stop = text.index(end)
    new_text = text[:start] + str(count) + text[stop:]
    if new_text != text:
        with open(README, "w", encoding="utf-8") as f:
            f.write(new_text)
        print(f"[regen] README.md test count -> {count}")
    else:
        print(f"[regen] README.md test count already {count}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-release",
                    help="build tree with the bench binaries")
    ap.add_argument("--results-dir", default="results",
                    help="where benches write / script reads <bench>.json")
    ap.add_argument("--check", action="store_true",
                    help="fail with a diff instead of rewriting")
    ap.add_argument("--skip-run", action="store_true",
                    help="reuse existing results files, do not run benches")
    ap.add_argument("--only", default="",
                    help="comma-separated subset of benches to rerun "
                         "(others use existing results files)")
    ap.add_argument("--update-test-count", metavar="BUILD_DIR",
                    help="rewrite the README test count from ctest -N "
                         "and exit")
    args = ap.parse_args()

    if args.update_test_count:
        update_test_count(args.update_test_count)
        return

    with open(EXPERIMENTS, encoding="utf-8") as f:
        text = f.read()
    blocks = find_blocks(text)
    if not blocks:
        fail("EXPERIMENTS.md contains no GENERATED blocks")
    benches = sorted({bench for bench, _ in blocks})

    runnable = [b for b in benches if b not in EXTERNAL]
    if not args.skip_run:
        selected = runnable
        if args.only:
            only = set(args.only.split(","))
            unknown = only - set(benches)
            if unknown:
                fail(f"--only names unknown benches: {sorted(unknown)}")
            skipped = sorted(only & EXTERNAL)
            if skipped:
                print(f"[regen] {', '.join(skipped)}: externally generated "
                      f"(see scripts/ci.sh trace-verify); using the existing "
                      f"results file")
            selected = [b for b in runnable if b in only]
        run_benches(selected, args.build_dir, args.results_dir)

    new_text = regenerate(text, args.results_dir)
    if args.check:
        if new_text != text:
            diff = difflib.unified_diff(
                text.splitlines(keepends=True),
                new_text.splitlines(keepends=True),
                fromfile="EXPERIMENTS.md (committed)",
                tofile="EXPERIMENTS.md (regenerated)")
            sys.stderr.writelines(diff)
            fail("EXPERIMENTS.md is out of date; run "
                 "scripts/regen_experiments.py")
        print("[regen] EXPERIMENTS.md is up to date")
        return

    if new_text != text:
        with open(EXPERIMENTS, "w", encoding="utf-8") as f:
            f.write(new_text)
        print("[regen] EXPERIMENTS.md rewritten")
    else:
        print("[regen] EXPERIMENTS.md unchanged")


if __name__ == "__main__":
    main()
