#!/usr/bin/env bash
# Tier-1 CI entry point.
#
# Stage 1 (correctness): RelWithDebInfo build with hot-path checks ON,
# full ctest suite. This is the gating tier-1 verify from ROADMAP.md.
#
# Stage 2 (performance): Release (-O3, NDEBUG) build with
# GLAP_ENABLE_CHECKS=OFF so benchmarks measure the unchecked per-round
# path. Runs bench/perf_baseline and prints its JSON line; compare
# against the committed BENCH_qtable.json at the repo root.
#
# Stage 3 (trace verify): glap-trace check over both committed golden
# 8-PM traces (JSONL and GTB) and a freshly generated canonical 150-PM
# GLAP trace; `glap-trace convert` must round-trip the two goldens into
# each other byte-for-byte; a deliberately corrupted copy must fail with
# exit code 1. Also refreshes results/trace_stats.json via `glap-trace
# stats --results` so the docs drift stage covers the trace_stats block.
#
# Stage 4 (docs drift): reruns every bench that feeds a GENERATED block
# in EXPERIMENTS.md at the default 150-PM scale and fails with a diff if
# the committed tables don't match the regenerated ones byte-for-byte.
# Simulation results are a pure function of (config, seed), so this is
# host-independent; the throughput benches are not drift-checked.
#
# Stage 5 (trace overhead): bench/trace_overhead asserts rounds/sec with
# tracing off stays within a noise band of the committed
# BENCH_engine.json entry, that tracing on doesn't crater it, and that
# metrics-on at 1000 PMs stays within a ratio of metrics-off.
#
# Stage 6 (thread safety, RUN_TSAN=1 to enable): ThreadSanitizer build;
# runs the full ctest suite plus the multi-threaded 150-PM GLAP smoke
# (bench/parallel_smoke) under TSan to catch data races in the
# wave-parallel engine.
#
# Stage 7 (lint): glap-lint scan over the checked-in tree must be clean.
# The scan runs twice through the incremental cache — a cold pass that
# populates it and a warm pass that must hit every file — so CI also
# gates the cache round-trip the dev workflow relies on. `--results`
# refreshes results/lint_stats.json and `graph --results` refreshes
# results/lint_graph.json; both feed GENERATED blocks in EXPERIMENTS.md,
# so this runs before the docs-drift stage. A header self-containment
# pass compiles every src/**/*.hpp standalone (the include-hygiene rule
# pins #pragma once; this pins the includes actually sufficing). If
# clang-tidy is installed, a bounded tidy pass (.clang-tidy: bugprone-*,
# performance-*, concurrency-*) runs over src/; absent clang-tidy the
# pass is skipped — glap-lint is the gating analyzer.
#
# Stage 8 (memory/UB safety, RUN_ASAN_UBSAN=1 to enable): combined
# AddressSanitizer + UndefinedBehaviorSanitizer build (UB reports are
# fatal via -fno-sanitize-recover=all); runs the full ctest suite plus
# bench/parallel_smoke.
#
# Stage 9 (scale smoke): a 10k-PM GLAP run on the event-driven engine
# with quiescence enabled (DESIGN.md §12) must finish inside a
# wall-clock budget (SCALE_SMOKE_BUDGET_S, default 150 s — ~10x the
# reference container's time, so it only trips on real regressions),
# and its trace — including the activity park/wake events — must pass
# `glap-trace check`. A second, shorter run with --binary and
# --flight-dump verifies the always-on flight recorder leaves a
# parseable GTB post-mortem at the same scale. This is the cheap
# stand-in for the committed 1k/10k/100k sweep in BENCH_scale.json,
# which is multi-minute and ~10.9 GiB at the top cell and therefore not
# rerun by CI.
#
# Stage 10 (network smoke, RUN_NET_SMOKE=1 default): a 1k-PM GLAP run
# with the network model enabled at 1% loss (DESIGN.md §13) must emit
# "ev":"net" send/deliver/drop events and pass `glap-trace check`,
# which enforces the net-* invariants (delay arithmetic, terminal
# uniqueness, drop reasons) over the full message population.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLAP_ENABLE_CHECKS=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== bench: Release -O3 build (checks off) =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release -DGLAP_ENABLE_CHECKS=OFF
cmake --build build-release -j "$JOBS"

if [[ "${RUN_LINT:-1}" == "1" ]]; then
  echo "== lint: glap-lint scan over the checked-in tree =="
  # --results refreshes results/lint_stats.json before the docs-drift
  # stage checks the lint_stats block in EXPERIMENTS.md. The cold run
  # populates the content-hash cache; the warm rerun must hit every
  # file (the cache degrades to a cold scan on any mismatch, so a
  # failure here means the cache round-trip itself is broken).
  LINT_CACHE=build-release/lint.cache
  rm -f "$LINT_CACHE"
  ./build-release/tools/glap-lint scan . --results --cache "$LINT_CACHE"
  warm=$(./build-release/tools/glap-lint scan . --cache "$LINT_CACHE")
  echo "$warm"
  if [[ "$warm" != *" 0 miss(es)"* ]]; then
    echo "warm lint scan re-linted files the cache should have covered" >&2
    exit 1
  fi
  # Mirror the module dependency graph for the docs-drift stage
  # (EXPERIMENTS.md embeds results/lint_graph.json's tables).
  ./build-release/tools/glap-lint graph . --results >/dev/null

  echo "== lint: header self-containment over src/**/*.hpp =="
  # Every project header must compile standalone: #pragma once plus a
  # complete include set. Catches headers that lean on their includers.
  while IFS= read -r hdr; do
    if ! echo "#include \"${hdr#src/}\"" | \
         g++ -std=c++20 -fsyntax-only -Isrc -x c++ - 2>/tmp/hdr_err.$$; then
      echo "header is not self-contained: $hdr" >&2
      cat /tmp/hdr_err.$$ >&2
      rm -f /tmp/hdr_err.$$
      exit 1
    fi
  done < <(find src -name '*.hpp' | sort)
  rm -f /tmp/hdr_err.$$
  echo "all src/ headers compile standalone"

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: bounded clang-tidy pass over src/ =="
    # Bounded: tidy only the protocol layers that carry the determinism
    # contract; glap-lint (above) covers the whole tree.
    find src/sim src/overlay src/core src/baselines -name '*.cpp' -print0 |
      xargs -0 -n 1 -P "$JOBS" clang-tidy -p build --quiet
  else
    echo "clang-tidy not installed; skipping tidy pass (glap-lint gates)"
  fi
fi

if [[ "${RUN_BENCH:-1}" == "1" ]]; then
  echo "== bench: perf_baseline =="
  ./build-release/bench/perf_baseline "ci-$(git rev-parse --short HEAD 2>/dev/null || echo local)"
fi

if [[ "${RUN_TRACE_VERIFY:-1}" == "1" ]]; then
  echo "== trace verify: glap-trace check over golden + fresh traces =="
  GLAP_TRACE=./build-release/tools/glap-trace
  "$GLAP_TRACE" check tests/integration/golden/trace_8pm.jsonl
  "$GLAP_TRACE" check tests/integration/golden/trace_8pm.gtb

  # The two golden encodings pin the SAME run: converting the GTB golden
  # to JSONL must reproduce the JSONL golden byte for byte (and back).
  GOLDEN_RT=build-release/trace_golden_rt
  "$GLAP_TRACE" convert tests/integration/golden/trace_8pm.gtb \
    "$GOLDEN_RT.jsonl"
  cmp tests/integration/golden/trace_8pm.jsonl "$GOLDEN_RT.jsonl"
  "$GLAP_TRACE" convert tests/integration/golden/trace_8pm.jsonl \
    "$GOLDEN_RT.gtb" --to gtb
  cmp tests/integration/golden/trace_8pm.gtb "$GOLDEN_RT.gtb"
  rm -f "$GOLDEN_RT.jsonl" "$GOLDEN_RT.gtb"

  # Canonical 150-PM GLAP run (gen defaults): check it and refresh the
  # stats mirror that feeds the trace_stats block in EXPERIMENTS.md —
  # this runs before the docs-drift stage so --check sees fresh numbers.
  CI_TRACE=build-release/trace_ci.jsonl
  "$GLAP_TRACE" gen "$CI_TRACE"
  "$GLAP_TRACE" check "$CI_TRACE"
  "$GLAP_TRACE" stats "$CI_TRACE" --results

  # A deliberately corrupted copy (every migration redirected onto its
  # source PM) must fail the check with exit code 1, not 0 or 2.
  sed -E 's/"from":([0-9]+),"to":[0-9]+/"from":\1,"to":\1/' \
    "$CI_TRACE" > "$CI_TRACE.corrupt"
  corrupt_status=0
  "$GLAP_TRACE" check "$CI_TRACE.corrupt" 2>/dev/null || corrupt_status=$?
  if [[ "$corrupt_status" != "1" ]]; then
    echo "glap-trace check exited $corrupt_status on a corrupted trace" \
         "(want 1: violations found)" >&2
    exit 1
  fi
  echo "corrupted trace rejected as expected"
  rm -f "$CI_TRACE" "$CI_TRACE.corrupt"
fi

if [[ "${RUN_SCALE_SMOKE:-1}" == "1" ]]; then
  echo "== scale smoke: 10k-PM event-engine run + trace check =="
  GLAP_TRACE=./build-release/tools/glap-trace
  SMOKE_TRACE=build-release/trace_scale_smoke.jsonl
  SMOKE_BUDGET_S="${SCALE_SMOKE_BUDGET_S:-150}"
  smoke_start=$(date +%s)
  "$GLAP_TRACE" gen "$SMOKE_TRACE" --pms 10000 --warmup 40 --rounds 40 \
    --event --quiesce
  smoke_elapsed=$(( $(date +%s) - smoke_start ))
  if (( smoke_elapsed > SMOKE_BUDGET_S )); then
    echo "scale smoke took ${smoke_elapsed}s (budget ${SMOKE_BUDGET_S}s):" \
         "the event engine has regressed at 10k PMs" >&2
    exit 1
  fi
  echo "scale smoke finished in ${smoke_elapsed}s (budget ${SMOKE_BUDGET_S}s)"
  # The smoke trace carries the quiescence activity events, so this also
  # verifies the park/wake invariants (activity-reason, alternation,
  # park-off-pm) at a scale the unit fixtures don't reach.
  "$GLAP_TRACE" check "$SMOKE_TRACE"

  # The always-on flight recorder rides along on the same scale: force an
  # end-of-run dump and require that the ring parses as a GTB trace
  # (`stats`, not `check` — a dump starts mid-run, so the whole-trace
  # invariants don't apply). The dump is what a crashed run would leave.
  FLIGHT_DUMP=build-release/flight_scale_smoke.gtb
  "$GLAP_TRACE" gen "$SMOKE_TRACE" --pms 10000 --warmup 40 --rounds 8 \
    --event --quiesce --binary --flight-dump "$FLIGHT_DUMP"
  "$GLAP_TRACE" stats "$FLIGHT_DUMP" >/dev/null
  echo "flight dump parsed cleanly ($(stat -c %s "$FLIGHT_DUMP") bytes)"
  rm -f "$SMOKE_TRACE" "$FLIGHT_DUMP"
fi

if [[ "${RUN_NET_SMOKE:-1}" == "1" ]]; then
  echo "== network smoke: 1k-PM run with 1% loss + trace check =="
  GLAP_TRACE=./build-release/tools/glap-trace
  NET_TRACE=build-release/trace_net_smoke.jsonl
  "$GLAP_TRACE" gen "$NET_TRACE" --pms 1000 --warmup 40 --rounds 40 \
    --net --loss 1
  # The run must actually exercise the model: sends, deliveries, and
  # loss drops all have to appear before the invariant check means much.
  for op in '"op":"send"' '"op":"deliver"' '"reason":"loss"'; do
    if ! grep -q '"ev":"net".*'"$op" "$NET_TRACE"; then
      echo "network smoke trace has no $op events" >&2
      exit 1
    fi
  done
  "$GLAP_TRACE" check "$NET_TRACE"
  rm -f "$NET_TRACE"
fi

if [[ "${RUN_DOCS_DRIFT:-1}" == "1" ]]; then
  echo "== docs drift: regenerate EXPERIMENTS.md tables and compare =="
  python3 scripts/regen_experiments.py --build-dir build-release --check
  python3 scripts/regen_experiments.py --update-test-count build
  if ! git diff --quiet -- README.md 2>/dev/null; then
    echo "README.md test count is stale; commit the update" >&2
    git --no-pager diff -- README.md >&2
    exit 1
  fi
fi

if [[ "${RUN_TRACE_SMOKE:-1}" == "1" ]]; then
  echo "== trace overhead: tracing-off path vs BENCH_engine.json =="
  ./build-release/bench/trace_overhead --reference BENCH_engine.json
fi

if [[ "${RUN_TSAN:-1}" == "1" ]]; then
  echo "== tsan: ThreadSanitizer build + ctest + parallel smoke =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGLAP_TSAN=ON -DGLAP_ENABLE_CHECKS=ON
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
  ./build-tsan/bench/parallel_smoke
fi

if [[ "${RUN_ASAN_UBSAN:-1}" == "1" ]]; then
  echo "== asan-ubsan: Address+UB sanitizer build + ctest + parallel smoke =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGLAP_ASAN=ON -DGLAP_UBSAN=ON -DGLAP_ENABLE_CHECKS=ON
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
  ./build-asan/bench/parallel_smoke
fi
