// glap-trace: analysis CLI over the round-level trace in either encoding
// — JSONL (DESIGN.md §10.2) or the GTB binary format (§10.6); the reader
// auto-detects which one a file carries. The parsing and analysis logic
// lives in src/common (trace_reader, trace_format, trace_check); this
// binary is argument handling and report formatting.
//
//   glap-trace lineage  <trace> [--vm ID] [--pm ID] [--top N]
//   glap-trace episodes <trace> [--pm ID] [--min-rounds N]
//   glap-trace check    <trace> [--churn-tolerant] [--strict] [--max-print N]
//   glap-trace stats    <trace> [--results]
//   glap-trace convert  <in> <out> [--to jsonl|gtb]
//   glap-trace gen      <out>   [--algorithm GLAP|GRMP|EcoCloud|PABFD]
//                               [--pms N] [--ratio R] [--warmup N]
//                               [--rounds N] [--seed S] [--threads T]
//                               [--net] [--loss PCT] [--binary]
//                               [--sample-shuffle PCT] [--sample-net PCT]
//                               [--flight-dump PATH]
//
// A trace cut mid-record (crashed run, signal-context flight dump) is
// analyzed up to the cut with a warning, not rejected.
//
// Exit codes (pinned by DESIGN.md §10.5 and tests/integration):
//   0  success; for `check`, the trace satisfies every invariant
//   1  `check` found invariant violations
//   2  usage error, unreadable input, or a malformed trace line
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/trace_check.hpp"
#include "common/trace_format.hpp"
#include "common/trace_reader.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace {

using namespace glap;

constexpr int kExitOk = 0;
constexpr int kExitViolations = 1;
constexpr int kExitError = 2;

int usage() {
  std::fprintf(
      stderr,
      "usage: glap-trace <subcommand> <file> [options]\n"
      "  lineage  <trace> [--vm ID] [--pm ID] [--top N]   migration chains "
      "+ PM occupancy timelines\n"
      "  episodes <trace> [--pm ID] [--min-rounds N]      overload episodes\n"
      "  check    <trace> [--churn-tolerant] [--strict] [--max-print N]\n"
      "                                                   invariant verifier "
      "(exit 1 on violation)\n"
      "  stats    <trace> [--results]                     per-kind counts / "
      "percentiles (--results mirrors\n"
      "                                                   to results/"
      "trace_stats.json)\n"
      "  convert  <in> <out> [--to jsonl|gtb]             re-encode a trace "
      "(default: the other format)\n"
      "  gen      <out> [--algorithm A] [--pms N] [--ratio R] [--warmup N]\n"
      "                 [--rounds N] [--seed S] [--threads T] [--event]\n"
      "                 [--quiesce] [--net] [--loss PCT] [--binary]\n"
      "                 [--sample-shuffle PCT] [--sample-net PCT]\n"
      "                 [--flight-dump PATH]\n"
      "                                                   run an experiment "
      "and write its trace\n"
      "both trace encodings (JSONL text, GTB binary) are auto-detected\n");
  return kExitError;
}

struct Args {
  std::string file;
  std::string file2;  ///< second positional; only `convert` takes one
  std::map<std::string, std::string> flags;  ///< "--x v" and bare "--x"
};

bool parse_args(int argc, char** argv, Args* out) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        out->flags[arg] = argv[++i];
      else
        out->flags[arg] = "";
    } else if (out->file.empty()) {
      out->file = arg;
    } else if (out->file2.empty()) {
      out->file2 = arg;
    } else {
      std::fprintf(stderr, "glap-trace: unexpected argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  if (out->file.empty()) {
    std::fprintf(stderr, "glap-trace: missing file argument\n");
    return false;
  }
  return true;
}

long long flag_int(const Args& args, const char* name, long long fallback) {
  const auto it = args.flags.find(name);
  return it == args.flags.end() ? fallback : std::atoll(it->second.c_str());
}

double flag_double(const Args& args, const char* name, double fallback) {
  const auto it = args.flags.find(name);
  return it == args.flags.end() ? fallback : std::atof(it->second.c_str());
}

bool has_flag(const Args& args, const char* name) {
  return args.flags.count(name) != 0;
}

/// Streams every event of `path` into the analyzers via `fn`. Returns
/// false (after printing the offending line) on I/O or parse errors. A
/// trace cut mid-record — a crash artifact — yields its parsed prefix
/// with a warning instead of an error, so post-mortem analysis works.
template <typename Fn>
bool for_each_event(const std::string& path, Fn&& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "glap-trace: cannot open '%s'\n", path.c_str());
    return false;
  }
  trace::TraceReader reader(in);
  trace::TraceEvent event;
  std::string error;
  while (true) {
    const auto status = reader.next(&event, &error);
    if (status == trace::TraceReader::Status::kEof) return true;
    if (status == trace::TraceReader::Status::kTruncated) {
      std::fprintf(stderr,
                   "glap-trace: warning: %s:%zu: %s — analyzing the %zu "
                   "record(s) before the cut\n",
                   path.c_str(), reader.line_number(), error.c_str(),
                   reader.line_number() - 1);
      return true;
    }
    if (status == trace::TraceReader::Status::kError) {
      std::fprintf(stderr, "glap-trace: %s:%zu: %s\n", path.c_str(),
                   reader.line_number(), error.c_str());
      return false;
    }
    fn(event, reader.line_number());
  }
}

// ---- lineage ------------------------------------------------------------

int cmd_lineage(const Args& args) {
  trace::LineageBuilder lineage;
  if (!for_each_event(args.file,
                      [&](const trace::TraceEvent& e, std::size_t) {
                        lineage.add(e);
                      }))
    return kExitError;

  const long long only_vm = flag_int(args, "--vm", -1);
  const long long only_pm = flag_int(args, "--pm", -1);
  const long long top = flag_int(args, "--top", 20);

  if (only_pm < 0) {
    std::printf("== VM migration chains (%zu VMs migrated) ==\n",
                lineage.vm_chains().size());
    long long printed = 0;
    for (const auto& [vm, hops] : lineage.vm_chains()) {
      if (only_vm >= 0 && vm != only_vm) continue;
      if (only_vm < 0 && printed++ >= top) {
        std::printf("  ... (--top %lld reached; --vm ID for one chain)\n",
                    top);
        break;
      }
      std::printf("vm %lld: pm %lld", static_cast<long long>(vm),
                  static_cast<long long>(hops.front().from));
      for (const auto& hop : hops)
        std::printf(" -(r%llu)-> pm %lld",
                    static_cast<unsigned long long>(hop.round),
                    static_cast<long long>(hop.to));
      double energy = 0.0;
      for (const auto& hop : hops) energy += hop.energy_j;
      std::printf("  [%zu hops, %.1f J]\n", hops.size(), energy);
    }
  }
  if (only_vm < 0) {
    std::printf("== PM occupancy timelines (%zu PMs touched) ==\n",
                lineage.pm_timelines().size());
    long long printed = 0;
    for (const auto& [pm, events] : lineage.pm_timelines()) {
      if (only_pm >= 0 && pm != only_pm) continue;
      if (only_pm < 0 && printed++ >= top) {
        std::printf("  ... (--top %lld reached; --pm ID for one timeline)\n",
                    top);
        break;
      }
      std::printf("pm %lld:", static_cast<long long>(pm));
      for (const auto& ev : events) {
        const char* what = "?";
        switch (ev.what) {
          case trace::OccupancyEvent::What::kVmIn: what = "+vm"; break;
          case trace::OccupancyEvent::What::kVmOut: what = "-vm"; break;
          case trace::OccupancyEvent::What::kPowerOn: what = "on"; break;
          case trace::OccupancyEvent::What::kPowerOff: what = "off"; break;
        }
        if (ev.vm >= 0)
          std::printf(" r%llu:%s%lld",
                      static_cast<unsigned long long>(ev.round), what,
                      static_cast<long long>(ev.vm));
        else
          std::printf(" r%llu:%s", static_cast<unsigned long long>(ev.round),
                      what);
      }
      std::printf("\n");
    }
  }
  return kExitOk;
}

// ---- episodes -----------------------------------------------------------

int cmd_episodes(const Args& args) {
  trace::EpisodeDetector detector;
  if (!for_each_event(args.file,
                      [&](const trace::TraceEvent& e, std::size_t) {
                        detector.add(e);
                      }))
    return kExitError;

  const long long only_pm = flag_int(args, "--pm", -1);
  const long long min_rounds = flag_int(args, "--min-rounds", 1);
  const auto episodes = detector.finish();

  std::printf("%-8s %-8s %-8s %-9s %s\n", "pm", "onset", "rounds", "peak_cpu",
              "resolution");
  std::size_t shown = 0, migration_resolved = 0;
  for (const auto& ep : episodes) {
    if (only_pm >= 0 && ep.pm != only_pm) continue;
    if (static_cast<long long>(ep.rounds) < min_rounds) continue;
    ++shown;
    if (ep.resolved_by_migration) ++migration_resolved;
    char resolution[80];
    if (ep.ongoing)
      std::snprintf(resolution, sizeof resolution, "ongoing at trace end");
    else if (ep.resolved_by_migration)
      std::snprintf(resolution, sizeof resolution,
                    "migration of vm %lld in round %llu",
                    static_cast<long long>(ep.resolving_vm),
                    static_cast<unsigned long long>(ep.resolving_round));
    else
      std::snprintf(resolution, sizeof resolution, "demand drop");
    std::printf("%-8lld %-8llu %-8llu %-9.3f %s\n",
                static_cast<long long>(ep.pm),
                static_cast<unsigned long long>(ep.onset_round),
                static_cast<unsigned long long>(ep.rounds), ep.peak_cpu,
                resolution);
  }
  std::printf("-- %zu episode(s), %zu resolved by migration\n", shown,
              migration_resolved);
  return kExitOk;
}

// ---- check --------------------------------------------------------------

int cmd_check(const Args& args) {
  trace::InvariantChecker::Options options;
  options.churn_tolerant = has_flag(args, "--churn-tolerant");
  options.strict_overload_target = has_flag(args, "--strict");
  trace::InvariantChecker checker(options);
  if (!for_each_event(args.file,
                      [&](const trace::TraceEvent& e, std::size_t line) {
                        checker.add(e, line);
                      }))
    return kExitError;
  checker.finish();

  const auto& violations = checker.violations();
  if (violations.empty()) {
    std::printf("glap-trace check: OK — %llu events, 0 violations\n",
                static_cast<unsigned long long>(checker.events_checked()));
    return kExitOk;
  }
  const long long max_print = flag_int(args, "--max-print", 20);
  long long printed = 0;
  for (const auto& v : violations) {
    if (printed++ >= max_print) {
      std::fprintf(stderr, "  ... (%zu more; raise --max-print)\n",
                   violations.size() - static_cast<std::size_t>(max_print));
      break;
    }
    std::fprintf(stderr, "%s:%zu: [%s] round %llu: %s\n", args.file.c_str(),
                 v.line, v.rule.c_str(),
                 static_cast<unsigned long long>(v.round),
                 v.message.c_str());
  }
  std::fprintf(stderr,
               "glap-trace check: FAIL — %zu violation(s) in %llu events\n",
               violations.size(),
               static_cast<unsigned long long>(checker.events_checked()));
  return kExitViolations;
}

// ---- stats --------------------------------------------------------------

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

int cmd_stats(const Args& args) {
  trace::StatsCollector collector;
  if (!for_each_event(args.file,
                      [&](const trace::TraceEvent& e, std::size_t) {
                        collector.add(e);
                      }))
    return kExitError;
  const trace::TraceStats& stats = collector.stats();

  std::vector<std::vector<std::string>> count_rows;
  for (std::size_t k = 0; k < trace::kEventKindCount; ++k)
    count_rows.push_back(
        {trace::event_kind_name(static_cast<trace::EventKind>(k)),
         std::to_string(stats.counts[k])});

  const std::vector<std::pair<const char*, const std::vector<double>*>>
      fields = {
          {"migration.cpu", &stats.migration_cpu},
          {"migration.energy_j", &stats.migration_energy_j},
          {"shuffle.sent", &stats.shuffle_sent},
          {"overload.cpu", &stats.overload_cpu},
          {"qsim.similarity", &stats.qsim_similarity},
          {"net.send_bytes", &stats.net_send_bytes},
          {"net.deliver_delay", &stats.net_deliver_delay},
          {"round.active_pms", &stats.round_active_pms},
          {"round.overloaded_pms", &stats.round_overloaded_pms},
          {"round.migrations", &stats.round_migrations},
          {"round.messages", &stats.round_messages},
          {"round.bytes", &stats.round_bytes},
      };
  std::vector<std::vector<std::string>> field_rows;
  for (const auto& [name, values] : fields) {
    const PercentileSummary s = summarize(*values);
    field_rows.push_back({name, std::to_string(s.count), fmt(s.min),
                          fmt(s.p10), fmt(s.median), fmt(s.p90), fmt(s.p95),
                          fmt(s.p99), fmt(s.max), fmt(s.mean)});
  }

  std::printf("%-14s %s\n", "event", "count");
  for (const auto& row : count_rows)
    std::printf("%-14s %s\n", row[0].c_str(), row[1].c_str());
  std::printf("rounds %llu..%llu, %llu lines total\n",
              static_cast<unsigned long long>(stats.first_round),
              static_cast<unsigned long long>(stats.last_round),
              static_cast<unsigned long long>(stats.total_lines));
  std::printf("\n%-22s %-7s %-9s %-9s %-9s %-9s %-9s %-9s %-9s %s\n",
              "field", "n", "min", "p10", "p50", "p90", "p95", "p99", "max",
              "mean");
  for (const auto& row : field_rows)
    std::printf("%-22s %-7s %-9s %-9s %-9s %-9s %-9s %-9s %-9s %s\n",
                row[0].c_str(), row[1].c_str(), row[2].c_str(),
                row[3].c_str(), row[4].c_str(), row[5].c_str(),
                row[6].c_str(), row[7].c_str(), row[8].c_str(),
                row[9].c_str());

  if (has_flag(args, "--results")) {
    harness::BenchReport report(
        "trace_stats", "Trace statistics — per-event-kind counts and "
                       "field percentiles (150-PM GLAP reference trace)");
    report.add_table("events", {"event", "count"}, count_rows);
    report.add_table("fields",
                     {"field", "n", "min", "p10", "p50", "p90", "p95",
                      "p99", "max", "mean"},
                     field_rows);
    report.add_headline("total_lines", std::to_string(stats.total_lines));
    report.add_headline("first_round", std::to_string(stats.first_round));
    report.add_headline("last_round", std::to_string(stats.last_round));
    std::printf("wrote %s\n", report.write().c_str());
  }
  return kExitOk;
}

// ---- convert ------------------------------------------------------------

int cmd_convert(const Args& args) {
  if (args.file2.empty()) {
    std::fprintf(stderr, "glap-trace convert: needs <in> <out>\n");
    return kExitError;
  }
  std::ifstream in(args.file, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "glap-trace: cannot open '%s'\n", args.file.c_str());
    return kExitError;
  }
  trace::TraceReader reader(in);

  bool to_gtb = false;
  bool truncated = false;
  std::ofstream out;
  std::string buf;
  // Opened lazily, after the reader has sniffed the input encoding, so
  // the default target can be "the other format".
  auto open_out = [&]() -> bool {
    const auto to = args.flags.find("--to");
    if (to == args.flags.end()) {
      to_gtb = !reader.binary();
    } else if (to->second == "jsonl" || to->second == "gtb") {
      to_gtb = to->second == "gtb";
    } else {
      std::fprintf(stderr,
                   "glap-trace convert: --to wants 'jsonl' or 'gtb', "
                   "got '%s'\n",
                   to->second.c_str());
      return false;
    }
    out.open(args.file2, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "glap-trace: cannot open '%s' for writing\n",
                   args.file2.c_str());
      return false;
    }
    if (to_gtb) {
      buf.clear();
      trace::append_gtb_header(&buf);
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    }
    return true;
  };

  std::size_t records = 0;
  trace::TraceEvent event;
  std::string error;
  while (true) {
    const auto status = reader.next(&event, &error);
    if (status == trace::TraceReader::Status::kEof) break;
    if (status == trace::TraceReader::Status::kTruncated) {
      std::fprintf(stderr,
                   "glap-trace: warning: %s:%zu: %s — converting the "
                   "records before the cut\n",
                   args.file.c_str(), reader.line_number(), error.c_str());
      truncated = true;
      break;
    }
    if (status == trace::TraceReader::Status::kError) {
      std::fprintf(stderr, "glap-trace: %s:%zu: %s\n", args.file.c_str(),
                   reader.line_number(), error.c_str());
      return kExitError;
    }
    if (!out.is_open() && !open_out()) return kExitError;
    buf.clear();
    if (to_gtb) {
      if (!trace::append_gtb_record(event, &buf, &error)) {
        std::fprintf(stderr, "glap-trace: %s:%zu: %s\n", args.file.c_str(),
                     reader.line_number(), error.c_str());
        return kExitError;
      }
    } else {
      trace::render_jsonl(event, &buf);
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    ++records;
  }
  if (!out.is_open() && !open_out()) return kExitError;  // empty input
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "glap-trace: write to '%s' failed\n",
                 args.file2.c_str());
    return kExitError;
  }
  std::fprintf(stderr, "glap-trace convert: %zu record(s) -> %s (%s)%s\n",
               records, args.file2.c_str(), to_gtb ? "gtb" : "jsonl",
               truncated ? ", input truncated" : "");
  return kExitOk;
}

// ---- gen ----------------------------------------------------------------

int cmd_gen(const Args& args) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 150;
  config.vm_ratio = 2;
  config.warmup_rounds = 200;
  config.rounds = 150;
  config.seed = 42;

  const auto algo = args.flags.find("--algorithm");
  if (algo != args.flags.end()) {
    const std::string& name = algo->second;
    if (name == "GLAP") config.algorithm = harness::Algorithm::kGlap;
    else if (name == "GRMP") config.algorithm = harness::Algorithm::kGrmp;
    else if (name == "EcoCloud")
      config.algorithm = harness::Algorithm::kEcoCloud;
    else if (name == "PABFD") config.algorithm = harness::Algorithm::kPabfd;
    else {
      std::fprintf(stderr,
                   "glap-trace gen: unknown --algorithm '%s' (want GLAP, "
                   "GRMP, EcoCloud or PABFD)\n",
                   name.c_str());
      return kExitError;
    }
  }
  config.pm_count =
      static_cast<std::size_t>(flag_int(args, "--pms", 150));
  config.vm_ratio = static_cast<std::size_t>(flag_int(args, "--ratio", 2));
  config.warmup_rounds =
      static_cast<sim::Round>(flag_int(args, "--warmup", 200));
  config.rounds = static_cast<sim::Round>(flag_int(args, "--rounds", 150));
  config.seed = static_cast<std::uint64_t>(flag_int(args, "--seed", 42));
  config.engine_threads =
      static_cast<std::size_t>(flag_int(args, "--threads", 1));
  config.event_engine = has_flag(args, "--event");
  if (has_flag(args, "--quiesce")) {
    // Quiescence defaults tuned for short gen runs: wake on any visible
    // demand move, park after a short calm streak.
    config.glap.quiescence.enabled = true;
    config.glap.quiescence.demand_epsilon =
        0.01 * static_cast<double>(flag_int(args, "--epsilon-pct", 15));
    config.glap.quiescence.idle_rounds =
        static_cast<sim::Round>(flag_int(args, "--idle-rounds", 8));
  }
  if (has_flag(args, "--net") || has_flag(args, "--loss")) {
    // Network model (DESIGN.md §13): --loss takes percent (1 = 1% drop).
    config.network.enabled = true;
    config.network.loss_rate =
        0.01 * static_cast<double>(flag_int(args, "--loss", 0));
  }
  config.fit_glap_phases_to_warmup();
  config.observability.trace_path = args.file;
  if (has_flag(args, "--binary"))
    config.observability.trace_format = trace::Format::kGtb;
  // Sampling keeps take percent, like --loss: --sample-net 10 keeps ~10%
  // of net messages (decided per message by a pure hash, DESIGN.md §10.6).
  config.observability.trace_sample_shuffle =
      0.01 * flag_double(args, "--sample-shuffle", 100.0);
  config.observability.trace_sample_net =
      0.01 * flag_double(args, "--sample-net", 100.0);
  const auto flight_dump = args.flags.find("--flight-dump");
  if (flight_dump != args.flags.end())
    config.observability.flight_dump_path = flight_dump->second;

  std::fprintf(stderr, "glap-trace gen: %s -> %s\n", config.label().c_str(),
               args.file.c_str());
  const harness::RunResult result = harness::run_experiment(config);
  std::fprintf(stderr,
               "glap-trace gen: %zu evaluation rounds, %llu migrations\n",
               result.rounds.size(),
               static_cast<unsigned long long>(result.total_migrations));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();

  if (cmd != "convert" && !args.file2.empty()) {
    std::fprintf(stderr, "glap-trace: unexpected argument '%s'\n",
                 args.file2.c_str());
    return usage();
  }
  try {
    if (cmd == "lineage") return cmd_lineage(args);
    if (cmd == "episodes") return cmd_episodes(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "gen") return cmd_gen(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "glap-trace: %s\n", e.what());
    return kExitError;
  }
  std::fprintf(stderr, "glap-trace: unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}
