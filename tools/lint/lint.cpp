#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/model.hpp"
#include "lint/token.hpp"

namespace glap::lint {

namespace {

// ---- rule catalogue -----------------------------------------------------

constexpr RuleInfo kRules[] = {
    {"wall-clock", "determinism",
     "no wall-clock reads (<clock>::now, time(), gettimeofday) outside the "
     "src/common profiler/rng whitelist"},
    {"banned-random", "determinism",
     "no std::rand/std::random_device/<random> engines; all randomness "
     "flows through glap::Rng (src/common/rng)"},
    {"unordered-iteration", "determinism",
     "no range-iteration over std::unordered_{map,set} in protocol code "
     "(src/sim, src/overlay, src/core, src/baselines)"},
    {"pointer-order", "determinism",
     "no pointer-keyed ordering: std::hash<T*>, map/set keyed by pointer, "
     "or pointer-to-integer casts used as keys"},
    {"static-mutable", "determinism",
     "no mutable function-local or class statics in protocol code"},
    {"wave-safety", "determinism",
     "select_peers/can_quiesce overrides must be pure: no member writes "
     "outside *scratch*/*select* staging, no same-class mutating calls, "
     "no draws from the member RNG (copy it into a local first)"},
    {"trace-kind", "safety",
     "\"ev\" names in trace literals must match the trace::EventKind set"},
    {"checks-guard", "safety",
     "GLAP_NO_HOT_CHECKS conditionals must be closed and carry an #else; "
     "GLAP_ENABLE_CHECKS never appears in C++ (it is the CMake name)"},
    {"float-narrowing", "safety",
     "no float in Q-table kernels (src/qlearn, src/core/qtable_pair) — "
     "the learning state is double end to end"},
    {"table-sync", "safety",
     "every enumerator of the pinned enums (trace::EventKind, trace::Kind, "
     "WakeReason, net::Channel, net::DropReason) must appear in the "
     "renderer/parser/code tables that serialize it"},
    {"hot-alloc", "perf",
     "no per-round heap allocation in round-loop scopes of src/sim and "
     "src/core: new/make_unique/make_shared, or push_back/emplace_back on "
     "a container never reserve()d in the file"},
    {"layering", "project",
     "src/ module include edges must match the tools/lint/layers.txt DAG; "
     "undeclared edges, stale declared edges and cycles are findings"},
    {"include-hygiene", "project",
     "quoted project includes must provide at least one name the includer "
     "references (transitively), and project headers need #pragma once"},
    {"suppression", "meta",
     "glap-lint allow comments must name a known rule, carry a "
     "justification, and match a real finding"},
};

// ---- path scoping -------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Protocol code: everything that runs inside engine interactions and so
/// falls under the serial-vs-parallel bit-identity contract.
bool in_protocol_code(std::string_view rel) {
  return starts_with(rel, "src/sim/") || starts_with(rel, "src/overlay/") ||
         starts_with(rel, "src/core/") || starts_with(rel, "src/baselines/");
}

/// Q-table kernel files: the flat-storage merge/cosine/update kernels and
/// their paired-table wrapper; double-precision end to end.
bool in_qtable_kernels(std::string_view rel) {
  return starts_with(rel, "src/qlearn/") ||
         starts_with(rel, "src/core/qtable_pair");
}

/// Wall-clock whitelist: the profiler measures wall time by design, and
/// the Rng implementation is the one blessed randomness source.
bool wall_clock_whitelisted(std::string_view rel) {
  return starts_with(rel, "src/common/profiler") ||
         starts_with(rel, "src/common/rng");
}

bool random_whitelisted(std::string_view rel) {
  return starts_with(rel, "src/common/rng");
}

// ---- per-file analysis --------------------------------------------------

struct Analysis {
  std::string_view rel;
  const std::vector<Token>& toks;
  const std::vector<std::string>& lines;
  std::vector<Finding> raw;  ///< pre-suppression findings

  void flag(std::size_t line, const char* rule, std::string message) {
    raw.push_back({std::string(rel), line, rule, std::move(message)});
  }

  bool is_ident(std::size_t i, std::string_view text) const {
    return i < toks.size() && toks[i].kind == Token::Kind::kIdent &&
           toks[i].text == text;
  }
  bool is_punct(std::size_t i, std::string_view text) const {
    return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
           toks[i].text == text;
  }

  /// Index just past the `>` matching the `<` at `open` (which must be a
  /// `<`), or `open + 1` if no well-formed close is found nearby.
  std::size_t match_angle(std::size_t open, std::size_t* close) const {
    int depth = 0;
    for (std::size_t i = open; i < toks.size() && i < open + 256; ++i) {
      if (is_punct(i, "<")) ++depth;
      else if (is_punct(i, ">")) {
        if (--depth == 0) {
          if (close) *close = i;
          return i + 1;
        }
      } else if (is_punct(i, ";") || is_punct(i, "{")) {
        break;  // statement ended: was a comparison, not a template
      }
    }
    if (close) *close = open;
    return open + 1;
  }
};

// wall-clock: `<anything>clock::now(`, plus freestanding C time calls.
void rule_wall_clock(Analysis& a) {
  if (wall_clock_whitelisted(a.rel)) return;
  static const std::set<std::string_view> kTimeFns = {
      "time",   "clock",     "gettimeofday", "clock_gettime",
      "ftime",  "localtime", "gmtime",       "mktime"};
  const auto& t = a.toks;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    // <ident containing "clock"> :: now (
    if (t[i].kind == Token::Kind::kIdent && a.is_punct(i + 1, "::") &&
        a.is_ident(i + 2, "now")) {
      std::string lower = t[i].text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (lower.find("clock") != std::string::npos)
        a.flag(t[i].line, "wall-clock",
               t[i].text + "::now() reads a wall clock; simulation state "
               "must be a pure function of the seed (use prof::PhaseProfiler "
               "for timing)");
    }
    // freestanding time()/clock()/... call, not a member access
    if (t[i].kind == Token::Kind::kIdent && kTimeFns.count(t[i].text) &&
        a.is_punct(i + 1, "(")) {
      const bool member =
          i > 0 && (a.is_punct(i - 1, ".") || a.is_punct(i - 1, "->"));
      const bool declared =  // `double time(...)` style declaration
          i > 0 && t[i - 1].kind == Token::Kind::kIdent;
      if (!member && !declared)
        a.flag(t[i].line, "wall-clock",
               t[i].text + "() reads the system clock; derive timing from "
               "rounds or the profiler, never from wall time");
    }
  }
}

// banned-random: <random> engines / C rand anywhere outside src/common/rng.
void rule_banned_random(Analysis& a) {
  if (random_whitelisted(a.rel)) return;
  static const std::set<std::string_view> kEngines = {
      "random_device", "mt19937",     "mt19937_64", "default_random_engine",
      "minstd_rand",   "minstd_rand0", "knuth_b",   "ranlux24",
      "ranlux48"};
  static const std::set<std::string_view> kCallOnly = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "srand48", "random",
      "srandom"};
  const auto& t = a.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (kEngines.count(t[i].text)) {
      a.flag(t[i].line, "banned-random",
             "std::" + t[i].text + " is nondeterministic or standard-"
             "library-specific; all randomness must flow through glap::Rng");
      continue;
    }
    if (kCallOnly.count(t[i].text) && a.is_punct(i + 1, "(")) {
      const bool member =
          i > 0 && (a.is_punct(i - 1, ".") || a.is_punct(i - 1, "->"));
      const bool declared = i > 0 && t[i - 1].kind == Token::Kind::kIdent;
      if (!member && !declared)
        a.flag(t[i].line, "banned-random",
               t[i].text + "() draws from global, seed-independent state; "
               "use glap::Rng");
    }
  }
}

// unordered-iteration: range-for / begin() over unordered containers in
// protocol code. Two passes: collect declared unordered variable names,
// then flag iteration over them (or over inline unordered expressions).
void rule_unordered_iteration(Analysis& a) {
  if (!in_protocol_code(a.rel)) return;
  const auto& t = a.toks;
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!a.is_ident(i, "unordered_map") && !a.is_ident(i, "unordered_set"))
      continue;
    if (!a.is_punct(i + 1, "<")) continue;
    std::size_t close = i + 1;
    std::size_t j = a.match_angle(i + 1, &close);
    while (a.is_punct(j, "&") || a.is_punct(j, "*")) ++j;
    if (j < t.size() && t[j].kind == Token::Kind::kIdent)
      unordered_vars.insert(t[j].text);
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // for ( ... : <range containing an unordered name> )
    if (a.is_ident(i, "for") && a.is_punct(i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < t.size() && j < i + 128; ++j) {
        if (a.is_punct(j, "(")) ++depth;
        else if (a.is_punct(j, ")")) {
          if (--depth == 0) break;
        } else if (a.is_punct(j, ":") && depth == 1 && colon == 0) {
          colon = j;
        } else if (a.is_punct(j, ";")) {
          break;  // classic for loop
        }
      }
      if (colon == 0) continue;
      int d = 1;
      for (std::size_t j = colon + 1; j < t.size() && j < colon + 64; ++j) {
        if (a.is_punct(j, "(")) ++d;
        else if (a.is_punct(j, ")") && --d == 0) break;
        const bool hit =
            t[j].kind == Token::Kind::kIdent &&
            (unordered_vars.count(t[j].text) ||
             t[j].text == "unordered_map" || t[j].text == "unordered_set");
        if (hit) {
          a.flag(t[i].line, "unordered-iteration",
                 "range-iteration over '" + t[j].text + "' (unordered "
                 "container): bucket order depends on hashing/allocation, "
                 "not the seed — iterate a sorted extraction instead");
          break;
        }
      }
    }
    // <unordered var> . begin/end/cbegin/cend — except in argument
    // position (preceded by '(' or ','), which is the blessed sorted-
    // extraction idiom: std::vector<...> v(m.begin(), m.end()); sort(v).
    if (t[i].kind == Token::Kind::kIdent && unordered_vars.count(t[i].text) &&
        a.is_punct(i + 1, ".") && i + 2 < t.size() &&
        t[i + 2].kind == Token::Kind::kIdent) {
      const std::string& m = t[i + 2].text;
      const bool extraction =
          i > 0 && (a.is_punct(i - 1, "(") || a.is_punct(i - 1, ","));
      if (!extraction &&
          (m == "begin" || m == "end" || m == "cbegin" || m == "cend"))
        a.flag(t[i].line, "unordered-iteration",
               "'" + t[i].text + "." + m + "()' iterates an unordered "
               "container in protocol code; extract into a sorted "
               "container first");
    }
  }
}

// pointer-order: hashing or ordering keyed on pointer values.
void rule_pointer_order(Analysis& a) {
  const auto& t = a.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = t[i].text;
    if (name == "hash" && a.is_punct(i + 1, "<")) {
      std::size_t close = i + 1;
      a.match_angle(i + 1, &close);
      for (std::size_t j = i + 2; j < close; ++j)
        if (a.is_punct(j, "*")) {
          a.flag(t[i].line, "pointer-order",
                 "std::hash over a pointer type: hash values depend on "
                 "allocation addresses and differ run to run");
          break;
        }
    }
    // std::map / std::set keyed by a pointer (first template argument).
    if ((name == "map" || name == "set" || name == "multimap" ||
         name == "multiset") &&
        i > 0 && a.is_punct(i - 1, "::") && a.is_punct(i + 1, "<")) {
      std::size_t close = i + 1;
      a.match_angle(i + 1, &close);
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (a.is_punct(j, "<")) ++depth;
        else if (a.is_punct(j, ">")) --depth;
        else if (a.is_punct(j, ",") && depth == 1) break;  // past the key
        else if (a.is_punct(j, "*") && depth == 1) {
          a.flag(t[i].line, "pointer-order",
                 "std::" + name + " keyed by a pointer orders by address; "
                 "key on a stable id instead");
          break;
        }
      }
    }
    if (name == "reinterpret_cast" && a.is_punct(i + 1, "<")) {
      std::size_t close = i + 1;
      a.match_angle(i + 1, &close);
      for (std::size_t j = i + 2; j < close; ++j)
        if (t[j].kind == Token::Kind::kIdent &&
            t[j].text.find("intptr") != std::string::npos) {
          a.flag(t[i].line, "pointer-order",
                 "pointer-to-integer cast: address-derived values must "
                 "never feed ordering, hashing or seeds");
          break;
        }
    }
  }
}

// static-mutable: `static` data (without const/constexpr) in protocol code.
void rule_static_mutable(Analysis& a) {
  if (!in_protocol_code(a.rel)) return;
  const auto& t = a.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!a.is_ident(i, "static")) continue;
    bool is_const = false;
    std::size_t j = i + 1;
    // Skip/inspect decl-specifiers before the declarator.
    while (j < t.size() && t[j].kind == Token::Kind::kIdent &&
           (t[j].text == "const" || t[j].text == "constexpr" ||
            t[j].text == "consteval" || t[j].text == "constinit" ||
            t[j].text == "inline" || t[j].text == "thread_local")) {
      if (t[j].text == "const" || t[j].text == "constexpr" ||
          t[j].text == "consteval")
        is_const = true;
      ++j;
    }
    if (is_const) continue;
    // Walk to the first structural token: '(' before ';'/'='/'{' means a
    // function declaration (fine); anything else is static mutable data.
    // A trailing `const` anywhere before the terminator (e.g.
    // `static std::string const x`) also counts as immutable.
    bool mutable_data = false;
    for (std::size_t k = j; k < t.size() && k < j + 64; ++k) {
      if (t[k].kind == Token::Kind::kIdent &&
          (t[k].text == "const" || t[k].text == "constexpr")) {
        is_const = true;
        break;
      }
      if (a.is_punct(k, "(")) break;  // function (or ctor-style init — rare)
      if (a.is_punct(k, "<")) {       // template args: skip to close
        std::size_t close = k;
        k = a.match_angle(k, &close);
        if (k == close) break;  // unmatched; give up on this decl
        --k;                    // loop ++ lands just past the '>'
        continue;
      }
      if (a.is_punct(k, ";") || a.is_punct(k, "=") || a.is_punct(k, "{")) {
        mutable_data = true;
        break;
      }
    }
    if (!is_const && mutable_data)
      a.flag(t[i].line, "static-mutable",
             "mutable static in protocol code: shared across every node "
             "and thread, so it breaks both determinism and the wave-"
             "parallel contract — keep per-node state in the protocol "
             "object");
  }
}

// trace-kind: "ev" names inside string literals must be known kinds.
void rule_trace_kind(Analysis& a) {
  const auto& kinds = trace_event_kinds();
  auto known = [&](const std::string& name) {
    return std::find(kinds.begin(), kinds.end(), name) != kinds.end();
  };
  for (const Token& tok : a.toks) {
    if (tok.kind != Token::Kind::kString) continue;
    const std::string& s = tok.text;
    // Matches both escaped (\"ev\":\") spellings inside ordinary literals
    // and plain ("ev":") spellings inside raw strings.
    for (const char* pat : {"\\\"ev\\\":\\\"", "\"ev\":\""}) {
      const std::string pattern(pat);
      std::size_t pos = 0;
      while ((pos = s.find(pattern, pos)) != std::string::npos) {
        pos += pattern.size();
        std::size_t end = pos;
        while (end < s.size() && ident_char(s[end])) ++end;
        const std::string name = s.substr(pos, end - pos);
        if (!name.empty() && !known(name))
          a.flag(tok.line, "trace-kind",
                 "\"ev\":\"" + name + "\" is not a trace::EventKind (known: "
                 "migration, power, shuffle, overload, fault, activity, net, "
                 "round, qsim, relearn, shard_bytes) — traces written here "
                 "would not parse");
      }
    }
  }
}

// checks-guard: GLAP_NO_HOT_CHECKS conditionals closed + carrying #else;
// the CMake-side name GLAP_ENABLE_CHECKS must never reach C++ code.
void rule_checks_guard(Analysis& a) {
  struct Cond {
    std::size_t line;
    bool on_hot_checks;
    bool has_else = false;
  };
  std::vector<Cond> stack;
  for (std::size_t ln = 0; ln < a.lines.size(); ++ln) {
    const std::string& raw = a.lines[ln];
    std::size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '#') continue;
    std::istringstream is(raw.substr(p + 1));
    std::string directive;
    is >> directive;
    const bool mentions_hot =
        raw.find("GLAP_NO_HOT_CHECKS") != std::string::npos;
    if (directive == "if" || directive == "ifdef" || directive == "ifndef") {
      stack.push_back({ln + 1, mentions_hot});
    } else if (directive == "elif" || directive == "else") {
      if (!stack.empty()) stack.back().has_else = true;
    } else if (directive == "endif") {
      if (stack.empty()) {
        a.flag(ln + 1, "checks-guard", "#endif without a matching #if");
      } else {
        const Cond c = stack.back();
        stack.pop_back();
        if (c.on_hot_checks && !c.has_else)
          a.flag(c.line, "checks-guard",
                 "conditional on GLAP_NO_HOT_CHECKS has no #else: one of "
                 "the checks-on/checks-off builds is left without a "
                 "definition");
      }
    }
  }
  for (const Cond& c : stack)
    a.flag(c.line, "checks-guard",
           std::string("unterminated #if") +
               (c.on_hot_checks ? " on GLAP_NO_HOT_CHECKS" : ""));
  for (const Token& tok : a.toks)
    if (tok.kind == Token::Kind::kIdent && tok.text == "GLAP_ENABLE_CHECKS")
      a.flag(tok.line, "checks-guard",
             "GLAP_ENABLE_CHECKS is the CMake option name and is never "
             "defined for the compiler — guard on GLAP_NO_HOT_CHECKS "
             "(see src/common/assert.hpp)");
}

// float-narrowing: the Q-table kernels are double end to end.
void rule_float_narrowing(Analysis& a) {
  if (!in_qtable_kernels(a.rel)) return;
  for (const Token& tok : a.toks)
    if (tok.kind == Token::Kind::kIdent && tok.text == "float")
      a.flag(tok.line, "float-narrowing",
             "float in a Q-table kernel: learning state is double end to "
             "end; a float round-trip silently changes merge/update "
             "results and breaks golden tests");
}

// hot-alloc: heap allocation inside round-loop scopes. The engine's round
// loop dominates wall time at 10k-100k PMs, so per-round allocation there
// is a measured regression, not a style nit (DESIGN.md §12). A scope is
// "round-loop" when the enclosing function is one the engine enters every
// round per node: the per-node dispatch (`execute`, `execute_node`,
// `run_round`), any `*_cycle` protocol phase, or a known per-round helper.
// Setup/install paths allocate freely. push_back/emplace_back is only
// flagged when the receiver is never reserve()d anywhere in the file —
// a reserve hoists the growth out of the hot path.
bool in_hot_alloc_dirs(std::string_view rel) {
  return starts_with(rel, "src/sim/") || starts_with(rel, "src/core/");
}

bool hot_scope_name(const std::string& name) {
  static const std::set<std::string_view> kExact = {
      "execute",     "execute_node", "run_round",  "poll_quiesce",
      "find_vm",     "update_state", "grow_pool",  "draw_subset",
      "train_round", "wake"};
  return kExact.count(name) > 0 || name.find("_cycle") != std::string::npos;
}

void rule_hot_alloc(Analysis& a) {
  if (!in_hot_alloc_dirs(a.rel)) return;
  const auto& t = a.toks;
  // Pre-pass: receivers that are reserve()d somewhere in this file.
  std::set<std::string> reserved;
  for (std::size_t i = 0; i + 3 < t.size(); ++i)
    if (t[i].kind == Token::Kind::kIdent &&
        (a.is_punct(i + 1, ".") || a.is_punct(i + 1, "->")) &&
        a.is_ident(i + 2, "reserve") && a.is_punct(i + 3, "("))
      reserved.insert(t[i].text);

  static const std::set<std::string_view> kNotAFunction = {
      "if", "for", "while", "switch", "catch", "return", "sizeof"};
  struct Scope {
    int depth;         ///< brace depth of the function body
    bool hot;
    std::string name;  ///< innermost hot scope, for the diagnostic
  };
  std::vector<Scope> scopes;
  int depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (a.is_punct(i, "{")) {
      ++depth;
      continue;
    }
    if (a.is_punct(i, "}")) {
      --depth;
      while (!scopes.empty() && depth < scopes.back().depth)
        scopes.pop_back();
      continue;
    }
    // Function definition: ident ( ... ) [const noexcept override final] {
    // (ctor-init-lists and trailing-return types are not recognised; the
    // hot set contains no constructors, so nothing is lost).
    if (t[i].kind == Token::Kind::kIdent && !kNotAFunction.count(t[i].text) &&
        a.is_punct(i + 1, "(")) {
      int d = 0;
      std::size_t j = i + 1;
      for (; j < t.size() && j < i + 512; ++j) {
        if (a.is_punct(j, "(")) ++d;
        else if (a.is_punct(j, ")") && --d == 0) break;
      }
      if (j < t.size() && a.is_punct(j, ")")) {
        std::size_t k = j + 1;
        while (k < t.size() && t[k].kind == Token::Kind::kIdent &&
               (t[k].text == "const" || t[k].text == "noexcept" ||
                t[k].text == "override" || t[k].text == "final"))
          ++k;
        if (k < t.size() && a.is_punct(k, "{"))
          scopes.push_back({depth + 1, hot_scope_name(t[i].text), t[i].text});
      }
    }
    std::string hot_name;
    for (const Scope& s : scopes)
      if (s.hot) hot_name = s.name;
    if (hot_name.empty()) continue;

    if (a.is_ident(i, "new") && !(i > 0 && (a.is_punct(i - 1, ".") ||
                                            a.is_punct(i - 1, "->") ||
                                            a.is_ident(i - 1, "operator")))) {
      a.flag(t[i].line, "hot-alloc",
             "'new' inside round-loop scope '" + hot_name + "' allocates "
             "every round; hoist the allocation into setup or a reused "
             "member buffer");
      continue;
    }
    if ((a.is_ident(i, "make_unique") || a.is_ident(i, "make_shared")) &&
        (a.is_punct(i + 1, "<") || a.is_punct(i + 1, "("))) {
      a.flag(t[i].line, "hot-alloc",
             "'" + t[i].text + "' inside round-loop scope '" + hot_name +
             "' allocates every round; hoist the allocation into setup or "
             "a reused member buffer");
      continue;
    }
    if ((a.is_ident(i, "push_back") || a.is_ident(i, "emplace_back")) &&
        a.is_punct(i + 1, "(") && i >= 2 &&
        (a.is_punct(i - 1, ".") || a.is_punct(i - 1, "->")) &&
        t[i - 2].kind == Token::Kind::kIdent &&
        !reserved.count(t[i - 2].text)) {
      a.flag(t[i].line, "hot-alloc",
             "'" + t[i - 2].text + "." + t[i].text + "' in round-loop "
             "scope '" + hot_name + "' with no '" + t[i - 2].text +
             ".reserve' anywhere in this file: growth reallocates in the "
             "hot path");
    }
  }
}

// ---- suppression comments ----------------------------------------------

/// Parses `// glap-lint: allow(<rule>): <reason>` (and allow-file) out of
/// each raw line. Only `//` comments count, and only when the directive
/// names a plausible (lowercase/dash) rule — so prose, usage strings and
/// documentation that merely *mention* the syntax never parse as allows.
/// Malformed directives become "suppression" findings directly.
std::vector<Suppression> parse_suppressions(
    std::string_view rel, const std::vector<std::string>& lines,
    std::vector<Finding>* malformed) {
  std::vector<Suppression> out;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& raw = lines[ln];
    const std::size_t at = raw.find("glap-lint:");
    if (at == std::string::npos) continue;
    if (raw.rfind("//", at) == std::string::npos) continue;  // not a comment
    std::size_t p = at + std::string("glap-lint:").size();
    while (p < raw.size() && raw[p] == ' ') ++p;
    bool file_wide = false;
    if (raw.compare(p, 11, "allow-file(") == 0) {
      file_wide = true;
      p += 11;
    } else if (raw.compare(p, 6, "allow(") == 0) {
      p += 6;
    } else {
      continue;  // mentions glap-lint: but is not a directive
    }
    const std::size_t close = raw.find(')', p);
    if (close == std::string::npos) continue;
    const std::string rule = raw.substr(p, close - p);
    const bool rule_shaped =
        !rule.empty() &&
        rule.find_first_not_of("abcdefghijklmnopqrstuvwxyz-") ==
            std::string::npos;
    if (!rule_shaped) continue;  // documentation placeholder, not an allow
    std::size_t r = close + 1;
    if (r < raw.size() && raw[r] == ':') ++r;
    while (r < raw.size() && raw[r] == ' ') ++r;
    const std::string reason = raw.substr(r);
    if (!is_known_rule(rule)) {
      malformed->push_back({std::string(rel), ln + 1, "suppression",
                            "allow(" + rule + ") names no known rule (see "
                            "glap-lint rules)"});
      continue;
    }
    if (reason.empty()) {
      malformed->push_back(
          {std::string(rel), ln + 1, "suppression",
           "allow(" + rule + ") has no justification — every suppression "
           "must say why the occurrence is safe"});
      continue;
    }
    out.push_back({ln + 1, rule, reason, file_wide, false});
  }
  return out;
}

// ---- tree pipeline ------------------------------------------------------

/// One scanned file: per-file report plus the project-pass summary.
struct FileEntry {
  std::string path;
  std::uint64_t hash = 0;
  FileReport report;
  FileSummary summary;
};

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Cache format/semantics version; bump when rules or the summary shape
/// change so stale caches fall back to a cold scan.
constexpr int kCacheVersion = 1;

std::uint64_t cache_fingerprint() {
  std::string all = "glap-lint-cache-v" + std::to_string(kCacheVersion);
  for (const RuleInfo& r : rules()) {
    all += '|';
    all += r.name;
  }
  return fnv1a64(all);
}

void write_names(std::ostream& out, char tag,
                 const std::vector<std::string>& names) {
  if (names.empty()) return;
  out << tag;
  for (const std::string& n : names) out << ' ' << n;
  out << '\n';
}

/// Serializes one entry into the line-based cache format. All fields are
/// single-token except messages/reasons, which close out their line.
void write_cache_entry(std::ostream& out, const FileEntry& e) {
  out << "F " << std::hex << e.hash << std::dec << ' ' << e.path << '\n';
  for (const Finding& f : e.report.findings)
    out << "f " << f.line << ' ' << f.rule << ' ' << f.message << '\n';
  for (const Suppression& s : e.report.suppressions)
    out << "s " << s.line << ' ' << (s.file_wide ? 1 : 0) << ' '
        << (s.used ? 1 : 0) << ' ' << s.rule << ' ' << s.reason << '\n';
  const FileSummary& m = e.summary;
  out << "y " << (m.is_header ? 1 : 0) << ' ' << (m.has_pragma_once ? 1 : 0)
      << ' ' << (m.module.empty() ? "-" : m.module) << '\n';
  for (const IncludeRef& inc : m.includes)
    out << "i " << inc.line << ' ' << inc.path << '\n';
  write_names(out, 'P', m.provided);
  write_names(out, 'R', m.referenced);
  write_names(out, 'N', m.name_strings);
  for (const ClassDecl& c : m.classes) {
    out << "C " << c.line << ' ' << c.name << '\n';
    write_names(out, 'B', c.bases);
    write_names(out, 'M', c.members);
    write_names(out, 'U', c.mutating_methods);
  }
  for (const EnumDecl& en : m.enums) {
    out << "E " << en.line << ' ' << en.name;
    for (const std::string& v : en.enumerators) out << ' ' << v;
    out << '\n';
  }
  for (const WaveEvent& w : m.wave_events)
    out << "W " << static_cast<int>(w.kind) << ' ' << w.line << ' '
        << w.class_name << ' ' << w.method << ' ' << w.name << '\n';
  out << ".\n";
}

/// Parses the cache produced by write_cache_entry. Any structural
/// surprise invalidates the whole cache (returns empty) — the scan then
/// runs cold, which is always correct.
std::map<std::string, FileEntry> load_cache(const std::string& path) {
  std::map<std::string, FileEntry> cache;
  std::ifstream in(path);
  if (!in.is_open()) return cache;
  std::string line;
  if (!std::getline(in, line)) return cache;
  {
    std::istringstream head(line);
    std::string magic;
    std::uint64_t fp = 0;
    if (!(head >> magic >> std::hex >> fp) || magic != "glap-lint-cache" ||
        fp != cache_fingerprint())
      return cache;
  }
  FileEntry cur;
  bool open = false;
  auto rest_of = [](std::istringstream& is) {
    std::string rest;
    std::getline(is, rest);
    const std::size_t p = rest.find_first_not_of(' ');
    return p == std::string::npos ? std::string() : rest.substr(p);
  };
  auto read_names = [](std::istringstream& is, std::vector<std::string>* out) {
    std::string n;
    while (is >> n) out->push_back(n);
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "F") {
      if (open) return {};  // truncated previous record
      cur = FileEntry{};
      if (!(is >> std::hex >> cur.hash >> std::dec >> cur.path)) return {};
      cur.summary.path = cur.path;
      open = true;
    } else if (tag == ".") {
      if (!open) return {};
      cache[cur.path] = std::move(cur);
      cur = FileEntry{};
      open = false;
    } else if (!open) {
      return {};
    } else if (tag == "f") {
      Finding f;
      f.file = cur.path;
      if (!(is >> f.line >> f.rule)) return {};
      f.message = rest_of(is);
      cur.report.findings.push_back(std::move(f));
    } else if (tag == "s") {
      Suppression s;
      int fw = 0, used = 0;
      if (!(is >> s.line >> fw >> used >> s.rule)) return {};
      s.file_wide = fw != 0;
      s.used = used != 0;
      s.reason = rest_of(is);
      cur.report.suppressions.push_back(std::move(s));
    } else if (tag == "y") {
      int header = 0, pragma = 0;
      std::string module;
      if (!(is >> header >> pragma >> module)) return {};
      cur.summary.is_header = header != 0;
      cur.summary.has_pragma_once = pragma != 0;
      cur.summary.module = module == "-" ? "" : module;
    } else if (tag == "i") {
      IncludeRef inc;
      if (!(is >> inc.line >> inc.path)) return {};
      cur.summary.includes.push_back(std::move(inc));
    } else if (tag == "P") {
      read_names(is, &cur.summary.provided);
    } else if (tag == "R") {
      read_names(is, &cur.summary.referenced);
    } else if (tag == "N") {
      read_names(is, &cur.summary.name_strings);
    } else if (tag == "C") {
      ClassDecl c;
      if (!(is >> c.line >> c.name)) return {};
      cur.summary.classes.push_back(std::move(c));
    } else if (tag == "B" || tag == "M" || tag == "U") {
      if (cur.summary.classes.empty()) return {};
      ClassDecl& c = cur.summary.classes.back();
      read_names(is, tag == "B" ? &c.bases
                                : tag == "M" ? &c.members
                                             : &c.mutating_methods);
    } else if (tag == "E") {
      EnumDecl e;
      if (!(is >> e.line >> e.name)) return {};
      read_names(is, &e.enumerators);
      cur.summary.enums.push_back(std::move(e));
    } else if (tag == "W") {
      WaveEvent w;
      int kind = 0;
      if (!(is >> kind >> w.line >> w.class_name >> w.method >> w.name))
        return {};
      w.kind = static_cast<WaveEvent::Kind>(kind);
      cur.summary.wave_events.push_back(std::move(w));
    } else {
      return {};
    }
  }
  if (open) return {};  // truncated final record
  return cache;
}

/// Project pass + suppression resolution + aggregation over per-file
/// entries. Consumes the entries (moves findings out).
TreeReport finalize_tree(std::vector<FileEntry>& entries,
                         std::string_view layers_text) {
  std::sort(entries.begin(), entries.end(),
            [](const FileEntry& a, const FileEntry& b) {
              return a.path < b.path;
            });
  TreeReport report;
  report.files_scanned = entries.size();

  std::vector<FileSummary> summaries;
  summaries.reserve(entries.size());
  for (const FileEntry& e : entries) summaries.push_back(e.summary);
  ProjectModel pm = analyze_project(summaries, layers_text);
  report.layer_edges = std::move(pm.edges);
  report.module_files = std::move(pm.module_files);

  std::map<std::string, FileEntry*> by_path;
  for (FileEntry& e : entries) by_path[e.path] = &e;

  // Project findings run through the same allow machinery as per-file
  // ones: an allow on the finding's line or the line above, or an
  // allow-file, silences it and is marked used.
  auto try_suppress = [](FileEntry* e, const Finding& f) {
    if (!e) return false;
    for (Suppression& s : e->report.suppressions) {
      if (s.rule != f.rule) continue;
      if (s.file_wide || s.line == f.line || s.line + 1 == f.line) {
        s.used = true;
        return true;
      }
    }
    return false;
  };
  std::map<std::string, std::vector<Finding>> extra;
  std::vector<Finding> orphans;  // e.g. anchored at tools/lint/layers.txt
  for (Finding& f : pm.findings) {
    const auto it = by_path.find(f.file);
    FileEntry* e = it == by_path.end() ? nullptr : it->second;
    if (try_suppress(e, f)) continue;
    if (e)
      extra[f.file].push_back(std::move(f));
    else
      orphans.push_back(std::move(f));
  }
  // Allows naming a project rule were deferred by lint_source; any still
  // unused after the project pass is stale, same as a per-file allow.
  for (FileEntry& e : entries) {
    for (const Suppression& s : e.report.suppressions) {
      if (!is_project_rule(s.rule) || s.used) continue;
      Finding stale{e.path, s.line, "suppression",
                    "allow(" + s.rule + ") matched no finding — remove the "
                    "stale suppression"};
      if (!try_suppress(&e, stale))
        extra[e.path].push_back(std::move(stale));
    }
  }

  for (FileEntry& e : entries) {
    for (const Suppression& s : e.report.suppressions)
      if (s.used) {
        ++report.suppressions_used;
        ++report.rule_suppressions[s.rule];
      }
    std::vector<Finding> merged = std::move(e.report.findings);
    const auto it = extra.find(e.path);
    if (it != extra.end())
      for (Finding& f : it->second) merged.push_back(std::move(f));
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Finding& x, const Finding& y) {
                       return x.line < y.line;
                     });
    for (Finding& f : merged) {
      ++report.rule_hits[f.rule];
      report.findings.push_back(std::move(f));
    }
  }
  for (Finding& f : orphans) {
    ++report.rule_hits[f.rule];
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace

// ---- public API ---------------------------------------------------------

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kAll(std::begin(kRules),
                                          std::end(kRules));
  return kAll;
}

bool is_known_rule(std::string_view name) {
  for (const RuleInfo& r : rules())
    if (name == r.name) return true;
  return false;
}

bool is_project_rule(std::string_view name) {
  return name == "layering" || name == "wave-safety" ||
         name == "table-sync" || name == "include-hygiene";
}

const std::vector<std::string>& trace_event_kinds() {
  static const std::vector<std::string> kKinds = {
      "migration", "power", "shuffle",  "overload", "fault",      "activity",
      "net",       "round", "qsim",     "relearn",  "shard_bytes"};
  return kKinds;
}

FileReport lint_source(std::string_view rel_path, std::string_view content) {
  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    while (start <= content.size()) {
      std::size_t nl = content.find('\n', start);
      if (nl == std::string_view::npos) {
        lines.emplace_back(content.substr(start));
        break;
      }
      lines.emplace_back(content.substr(start, nl - start));
      start = nl + 1;
    }
  }
  const std::vector<Token> toks = tokenize(content);
  Analysis a{rel_path, toks, lines, {}};

  rule_wall_clock(a);
  rule_banned_random(a);
  rule_unordered_iteration(a);
  rule_pointer_order(a);
  rule_static_mutable(a);
  rule_trace_kind(a);
  rule_checks_guard(a);
  rule_float_narrowing(a);
  rule_hot_alloc(a);

  FileReport report;
  std::vector<Finding> malformed;
  report.suppressions = parse_suppressions(rel_path, lines, &malformed);

  // Apply suppressions: a finding is dropped by an allow on its line or
  // the line above, or an allow-file anywhere; the allow is marked used.
  // Findings under the meta "suppression" rule (malformed or stale
  // allows) run through the same machinery, so even they can be excused
  // with an explicit allow(suppression): <reason>.
  auto suppressed = [&](const Finding& f) {
    for (Suppression& s : report.suppressions) {
      if (s.rule != f.rule) continue;
      if (s.file_wide || s.line == f.line || s.line + 1 == f.line) {
        s.used = true;
        return true;
      }
    }
    return false;
  };
  for (Finding& f : a.raw)
    if (!suppressed(f)) report.findings.push_back(std::move(f));
  for (Finding& f : malformed)
    if (!suppressed(f)) report.findings.push_back(std::move(f));
  // A suppression that silences nothing is stale: report it so the allow
  // inventory shrinks when the code it excused goes away. Allows naming
  // a project rule are exempt here — their findings only exist at tree
  // scope, so lint_tree/lint_project do their staleness check instead.
  for (const Suppression& s : report.suppressions) {
    if (s.used || is_project_rule(s.rule)) continue;
    Finding stale{std::string(rel_path), s.line, "suppression",
                  "allow(" + s.rule + ") matched no finding — remove the "
                  "stale suppression"};
    if (!suppressed(stale)) report.findings.push_back(std::move(stale));
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& x, const Finding& y) {
                     return x.line < y.line;
                   });
  return report;
}

TreeReport lint_project(const std::vector<ProjectFile>& files,
                        std::string_view layers_text) {
  std::vector<FileEntry> entries;
  entries.reserve(files.size());
  for (const ProjectFile& f : files) {
    FileEntry e;
    e.path = f.path;
    e.report = lint_source(f.path, f.content);
    e.summary = summarize_source(f.path, f.content);
    entries.push_back(std::move(e));
  }
  return finalize_tree(entries, layers_text);
}

TreeReport lint_tree(const std::string& root, const std::string& cache_path) {
  namespace fs = std::filesystem;
  TreeReport report;
  std::vector<fs::path> files;
  bool any_root = false;
  for (const char* sub : {"src", "bench", "tools", "tests/support"}) {
    const fs::path dir = fs::path(root) / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    any_root = true;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h")
        files.push_back(it->path());
    }
    if (ec) report.io_errors.push_back(dir.string() + ": " + ec.message());
  }
  if (!any_root) {
    report.io_errors.push_back(root +
                               ": no src/, bench/ or tools/ directory");
    return report;
  }
  std::sort(files.begin(), files.end());

  std::string layers_text;
  {
    std::ifstream in(fs::path(root) / "tools" / "lint" / "layers.txt");
    if (in.is_open()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      layers_text = buf.str();
    }
  }

  std::map<std::string, FileEntry> cache;
  if (!cache_path.empty()) cache = load_cache(cache_path);

  std::vector<FileEntry> entries;
  entries.reserve(files.size());
  std::ostringstream cache_out;  // per-file state, before the project pass
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      report.io_errors.push_back(path.string() + ": cannot open");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const std::string rel =
        fs::path(fs::relative(path, root)).generic_string();
    const std::uint64_t hash = fnv1a64(content);

    FileEntry entry;
    const auto hit = cache.find(rel);
    if (hit != cache.end() && hit->second.hash == hash) {
      entry = hit->second;
      ++report.cache_hits;
    } else {
      entry.path = rel;
      entry.hash = hash;
      entry.report = lint_source(rel, content);
      entry.summary = summarize_source(rel, content);
      ++report.cache_misses;
    }
    if (!cache_path.empty()) write_cache_entry(cache_out, entry);
    entries.push_back(std::move(entry));
  }

  if (!cache_path.empty()) {
    // Best effort: an unwritable cache costs the next run a cold scan,
    // never correctness, so it is not an io_error.
    std::ofstream out(cache_path, std::ios::binary | std::ios::trunc);
    if (out.is_open()) {
      out << "glap-lint-cache " << std::hex << cache_fingerprint()
          << std::dec << '\n';
      out << cache_out.str();
    }
  }

  TreeReport merged = finalize_tree(entries, layers_text);
  merged.io_errors = std::move(report.io_errors);
  merged.cache_hits = report.cache_hits;
  merged.cache_misses = report.cache_misses;
  return merged;
}

}  // namespace glap::lint
