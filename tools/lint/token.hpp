// Shared C++ lexer for glap-lint. Both the per-file rule pass (lint.cpp)
// and the cross-TU project model (model.cpp) consume the same token
// stream, so the lexer lives here rather than in either's anonymous
// namespace. It is deliberately not a real C++ front end: comments are
// skipped, string/char literals keep their raw spelling, preprocessor
// lines tokenize like ordinary code, and the only multi-char puncts
// merged are `::` and `->` (rules that care about `==` vs `=` must look
// at adjacent single-char tokens).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace glap::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;  ///< for kString: raw source spelling between quotes
  std::size_t line;
};

bool ident_start(char c);
bool ident_char(char c);

/// Lexes C++ source into identifier/number/string/punct tokens. Comments
/// are skipped; string and char literals become kString tokens carrying
/// their raw (still-escaped) spelling so literal-content rules can scan
/// them. Raw strings and line continuations are handled; preprocessor
/// directives are tokenized like ordinary code (the preprocessor rules
/// run in a separate line-based pass).
std::vector<Token> tokenize(std::string_view src);

/// True iff `text` is a C++ keyword (or contextual keyword / common
/// preprocessor directive name) — used to filter identifier streams down
/// to names that could resolve across translation units.
bool is_cpp_keyword(std::string_view text);

}  // namespace glap::lint
