// glap-lint core: a dependency-free, tokenizer-based static analyzer
// enforcing the project's determinism and safety rules over src/, bench/,
// tools/ and tests/support (DESIGN.md §11 documents the full catalogue).
//
// The engine's headline claim — bit-identical serial vs wave-parallel
// rounds — survives only while every source of nondeterminism stays
// quarantined inside src/common (Rng for randomness, PhaseProfiler for
// wall clocks). Nothing in the compiler enforces that, so this pass does:
// it lexes each file (comments and string literals stripped), applies
// per-directory rules, and honours explicit, justified suppressions.
//
// Two tiers of analysis:
//   per-file   lint_source() — one token stream at a time (PR 5 rules)
//   project    tools/lint/model.{hpp,cpp} — the include graph, Protocol
//              subclass registry and pinned-enum registry joined across
//              files: layering, wave-safety, table-sync, include-hygiene
//
// Suppression syntax (justification is mandatory):
//   // glap-lint: allow(<rule>): <why this occurrence is safe>
//     — on the violating line or the line directly above it
//   // glap-lint: allow-file(<rule>): <why this whole file is exempt>
//     — anywhere in the file (conventionally the top comment block)
// A suppression that matches nothing, names an unknown rule, or lacks a
// justification is itself reported under the "suppression" rule, so the
// allow inventory can only grow deliberately. Allows naming a project
// rule are resolved during tree scans (lint_tree/lint_project), where the
// cross-file findings exist; `glap-lint file` parses but ignores them.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace glap::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path as reported (repo-relative under scan)
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule name, e.g. "wall-clock"
  std::string message;  ///< human-readable diagnostic
};

/// One `glap-lint: allow(...)` comment found in a file.
struct Suppression {
  std::size_t line = 0;
  std::string rule;
  std::string reason;
  bool file_wide = false;  ///< allow-file(...) vs line-scoped allow(...)
  bool used = false;       ///< matched at least one would-be finding
};

/// Static rule metadata (also rendered by `glap-lint rules`).
struct RuleInfo {
  const char* name;
  const char* tier;     ///< "determinism", "safety", "perf", "project" or "meta"
  const char* summary;  ///< one-line description
};

/// Every rule the analyzer knows, in stable display order.
const std::vector<RuleInfo>& rules();

/// True iff `name` names a known rule (suppression targets must).
bool is_known_rule(std::string_view name);

/// True iff `name` is a project-tier rule resolved across files during
/// tree scans (layering, wave-safety, table-sync, include-hygiene).
/// Suppressions targeting these are matched — and checked for staleness —
/// at the tree level, not inside lint_source.
bool is_project_rule(std::string_view name);

/// The trace-event names the `trace-kind` rule accepts in "ev" literals.
/// Must track trace::EventKind; tests/tools/test_lint_cli.cpp pins the
/// two lists against each other so the sets cannot drift.
const std::vector<std::string>& trace_event_kinds();

/// Result of linting one file.
struct FileReport {
  std::vector<Finding> findings;         ///< unsuppressed violations
  std::vector<Suppression> suppressions; ///< every allow comment seen
};

/// Lints `content` as if it lived at repo-relative `rel_path`; the path
/// drives directory-scoped rules (protocol dirs, Q-kernel files, the
/// src/common whitelists). Pure function of its inputs. Runs the
/// per-file rules only — project rules need the whole tree.
FileReport lint_source(std::string_view rel_path, std::string_view content);

/// One observed src/ module dependency edge. Produced by the project
/// pass (tools/lint/model.cpp) and rendered by `glap-lint graph`.
struct LayerEdge {
  std::string from;
  std::string to;
  std::size_t includes = 0;  ///< how many #include directives induce it
  bool declared = false;     ///< present in tools/lint/layers.txt
};

/// Aggregate over a tree scan.
struct TreeReport {
  std::vector<Finding> findings;  ///< across files, in sorted path order
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
  std::map<std::string, std::size_t> rule_hits;         ///< findings per rule
  std::map<std::string, std::size_t> rule_suppressions; ///< used allows
  std::vector<std::string> io_errors;  ///< unreadable files / missing dirs
  // Project-model outputs (rendered by `glap-lint graph`).
  std::vector<LayerEdge> layer_edges;               ///< sorted (from, to)
  std::map<std::string, std::size_t> module_files;  ///< src module -> files
  // Incremental-cache accounting (zero when no cache file was given).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// Walks `<root>/src`, `<root>/bench`, `<root>/tools` and
/// `<root>/tests/support` (every .cpp, .hpp, .h, in sorted path order),
/// lints each file, then runs the project rules over the joined
/// summaries. The layering DAG is read from `<root>/tools/lint/layers.txt`
/// when present (absent: the layering rule is skipped). Missing scan
/// roots or unreadable files are reported in `io_errors`, never thrown.
///
/// `cache_path`, when non-empty, names a content-hash cache: files whose
/// hash matches skip tokenization entirely (per-file findings and the
/// project summary are replayed from the cache), and the cache is
/// rewritten after the scan. A missing, stale or corrupt cache degrades
/// to a cold scan — never to wrong results.
TreeReport lint_tree(const std::string& root,
                     const std::string& cache_path = "");

/// An in-memory file for lint_project (fixture trees in tests).
struct ProjectFile {
  std::string path;     ///< repo-relative, '/'-separated
  std::string content;
};

/// The full pipeline — per-file rules, project rules, suppression
/// resolution — over an in-memory tree. `layers_text` plays the role of
/// tools/lint/layers.txt ("" = absent). lint_tree is this plus I/O.
TreeReport lint_project(const std::vector<ProjectFile>& files,
                        std::string_view layers_text);

}  // namespace glap::lint
