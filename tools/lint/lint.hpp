// glap-lint core: a dependency-free, tokenizer-based static analyzer
// enforcing the project's determinism and safety rules over src/, bench/
// and tools/ (DESIGN.md §11 documents the full catalogue).
//
// The engine's headline claim — bit-identical serial vs wave-parallel
// rounds — survives only while every source of nondeterminism stays
// quarantined inside src/common (Rng for randomness, PhaseProfiler for
// wall clocks). Nothing in the compiler enforces that, so this pass does:
// it lexes each file (comments and string literals stripped), applies
// per-directory rules, and honours explicit, justified suppressions.
//
// Suppression syntax (justification is mandatory):
//   // glap-lint: allow(<rule>): <why this occurrence is safe>
//     — on the violating line or the line directly above it
//   // glap-lint: allow-file(<rule>): <why this whole file is exempt>
//     — anywhere in the file (conventionally the top comment block)
// A suppression that matches nothing, names an unknown rule, or lacks a
// justification is itself reported under the "suppression" rule, so the
// allow inventory can only grow deliberately.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace glap::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path as reported (repo-relative under scan)
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule name, e.g. "wall-clock"
  std::string message;  ///< human-readable diagnostic
};

/// One `glap-lint: allow(...)` comment found in a file.
struct Suppression {
  std::size_t line = 0;
  std::string rule;
  std::string reason;
  bool file_wide = false;  ///< allow-file(...) vs line-scoped allow(...)
  bool used = false;       ///< matched at least one would-be finding
};

/// Static rule metadata (also rendered by `glap-lint rules`).
struct RuleInfo {
  const char* name;
  const char* tier;     ///< "determinism", "safety" or "meta"
  const char* summary;  ///< one-line description
};

/// Every rule the analyzer knows, in stable display order.
const std::vector<RuleInfo>& rules();

/// True iff `name` names a known rule (suppression targets must).
bool is_known_rule(std::string_view name);

/// The trace-event names the `trace-kind` rule accepts in "ev" literals.
/// Must track trace::EventKind; tests/tools/test_lint_cli.cpp pins the
/// two lists against each other so the sets cannot drift.
const std::vector<std::string>& trace_event_kinds();

/// Result of linting one file.
struct FileReport {
  std::vector<Finding> findings;         ///< unsuppressed violations
  std::vector<Suppression> suppressions; ///< every allow comment seen
};

/// Lints `content` as if it lived at repo-relative `rel_path`; the path
/// drives directory-scoped rules (protocol dirs, Q-kernel files, the
/// src/common whitelists). Pure function of its inputs.
FileReport lint_source(std::string_view rel_path, std::string_view content);

/// Aggregate over a tree scan.
struct TreeReport {
  std::vector<Finding> findings;  ///< across files, in sorted path order
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
  std::map<std::string, std::size_t> rule_hits;         ///< findings per rule
  std::map<std::string, std::size_t> rule_suppressions; ///< used allows
  std::vector<std::string> io_errors;  ///< unreadable files / missing dirs
};

/// Walks `<root>/src`, `<root>/bench` and `<root>/tools` (every .cpp,
/// .hpp, .h, in sorted path order) and lints each file. Missing scan
/// roots or unreadable files are reported in `io_errors`, never thrown.
TreeReport lint_tree(const std::string& root);

}  // namespace glap::lint
