#include "lint/model.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "lint/token.hpp"

namespace glap::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool all_caps_macro(const std::string& s) {
  if (s.size() < 2) return false;
  bool letter = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) letter = true;
  }
  return letter;
}

/// kCamelCase enumerator -> snake_case table name: kShardBytes -> shard_bytes.
std::string enum_snake_name(std::string_view enumerator) {
  std::string_view s = enumerator;
  if (s.size() > 1 && s[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(s[1])))
    s.remove_prefix(1);
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (i > 0) out += '_';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

// ---- token-stream helpers ----------------------------------------------

struct Cursor {
  const std::vector<Token>& t;

  bool is_ident(std::size_t i, std::string_view text) const {
    return i < t.size() && t[i].kind == Token::Kind::kIdent &&
           t[i].text == text;
  }
  bool is_punct(std::size_t i, std::string_view text) const {
    return i < t.size() && t[i].kind == Token::Kind::kPunct &&
           t[i].text == text;
  }
  bool is_any_ident(std::size_t i) const {
    return i < t.size() && t[i].kind == Token::Kind::kIdent;
  }

  /// Index just past the `>` matching the `<` at `open`, or open + 1 when
  /// no close is found nearby (comparison, not template arguments).
  std::size_t skip_angles(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < t.size() && i < open + 256; ++i) {
      if (is_punct(i, "<")) ++depth;
      else if (is_punct(i, ">")) {
        if (--depth == 0) return i + 1;
      } else if (is_punct(i, ";") || is_punct(i, "{")) {
        break;
      }
    }
    return open + 1;
  }

  /// Index of the `)` matching the `(` at `open` (or t.size()).
  std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
      if (is_punct(i, "(")) ++depth;
      else if (is_punct(i, ")") && --depth == 0) return i;
    }
    return t.size();
  }

  /// Index of the `}` matching the `{` at `open` (or t.size()).
  std::size_t match_brace(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
      if (is_punct(i, "{")) ++depth;
      else if (is_punct(i, "}") && --depth == 0) return i;
    }
    return t.size();
  }
};

// ---- wave-safety body extraction ---------------------------------------

const std::set<std::string_view>& container_mutators() {
  static const std::set<std::string_view> kMutators = {
      "assign",   "clear",  "emplace", "emplace_back", "erase",
      "insert",   "pop_back", "push_back", "reserve",  "resize",
      "shrink_to_fit", "swap"};
  return kMutators;
}

/// Scans one select_peers/can_quiesce body `[open, close_of(open)]` and
/// records candidate purity violations. Over-approximate on purpose:
/// locals and other objects are weeded out later against the class
/// registry, so only genuine member touches survive resolution.
void scan_wave_body(const Cursor& c, std::size_t open,
                    const std::string& class_name, const std::string& method,
                    std::vector<WaveEvent>* out) {
  const auto& t = c.t;
  const std::size_t close = c.match_brace(open);
  auto add = [&](WaveEvent::Kind kind, std::size_t line,
                 const std::string& name) {
    out->push_back({kind, line, class_name, method, name});
  };
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& s = t[i].text;
    if (is_cpp_keyword(s) || all_caps_macro(s)) continue;

    // `this -> x` reads as a bare member access on x.
    const bool via_this = i >= 2 && c.is_punct(i - 1, "->") &&
                          c.is_ident(i - 2, "this");
    const bool qualified =
        !via_this && i > 0 &&
        (c.is_punct(i - 1, ".") || c.is_punct(i - 1, "->") ||
         c.is_punct(i - 1, "::"));

    // Member-object call chains: `s.m(...)` / `s->m(...)`.
    if (!qualified && i + 3 < close &&
        (c.is_punct(i + 1, ".") || c.is_punct(i + 1, "->")) &&
        c.is_any_ident(i + 2) && c.is_punct(i + 3, "(")) {
      const std::string& m = t[i + 2].text;
      if (to_lower(s).find("rng") != std::string::npos) {
        add(WaveEvent::Kind::kRng, t[i].line, s);
        continue;
      }
      if (container_mutators().count(m)) {
        add(WaveEvent::Kind::kMutateCall, t[i].line, s);
        continue;
      }
    }

    if (!qualified) {
      // Plain and compound assignment, increment, decrement. `==` must
      // not match: the tokenizer emits `=` `=` as two puncts.
      std::size_t eq = i + 1;
      // Subscripted target: `s[...] = v` assigns through the member.
      if (c.is_punct(i + 1, "[")) {
        int d = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (c.is_punct(j, "[")) ++d;
          else if (c.is_punct(j, "]") && --d == 0) {
            eq = j + 1;
            break;
          }
        }
      }
      const bool prev_op =
          i > 0 && t[i - 1].kind == Token::Kind::kPunct &&
          std::string_view("=!<>+-*/%&|^").find(t[i - 1].text) !=
              std::string_view::npos;
      bool assigns = false;
      if (!prev_op || via_this) {
        if (c.is_punct(eq, "=") && !c.is_punct(eq + 1, "="))
          assigns = true;  // s = v / s[i] = v
        else if (eq < close && t[eq].kind == Token::Kind::kPunct &&
                 t[eq].text.size() == 1 &&
                 std::string_view("+-*/%&|^").find(t[eq].text) !=
                     std::string_view::npos &&
                 c.is_punct(eq + 1, "="))
          assigns = true;  // s += v and friends
        else if ((c.is_punct(eq, "<") && c.is_punct(eq + 1, "<") &&
                  c.is_punct(eq + 2, "=")) ||
                 (c.is_punct(eq, ">") && c.is_punct(eq + 1, ">") &&
                  c.is_punct(eq + 2, "=")))
          assigns = true;  // s <<= v / s >>= v
        else if ((c.is_punct(eq, "+") && c.is_punct(eq + 1, "+")) ||
                 (c.is_punct(eq, "-") && c.is_punct(eq + 1, "-")))
          assigns = true;  // s++ / s--
      }
      if (!assigns && i >= 2 &&
          ((c.is_punct(i - 1, "+") && c.is_punct(i - 2, "+")) ||
           (c.is_punct(i - 1, "-") && c.is_punct(i - 2, "-"))))
        assigns = true;  // ++s / --s
      if (assigns) {
        add(WaveEvent::Kind::kAssign, t[i].line, s);
        continue;
      }

      // Unqualified call: maybe a method of this class.
      if (c.is_punct(i + 1, "(")) {
        const bool decl_like = i > 0 && c.is_any_ident(i - 1);
        if (!decl_like && !via_this)
          add(WaveEvent::Kind::kBareCall, t[i].line, s);
        else if (via_this)
          add(WaveEvent::Kind::kBareCall, t[i].line, s);
      }
    }
  }
}

bool wave_checked_method(const std::string& name) {
  return name == "select_peers" || name == "can_quiesce";
}

// ---- class / enum / provided-name extraction ---------------------------

/// Names after which `ident (` is a call, not a declaration.
bool decl_prev_excluded(const std::string& prev) {
  static const std::set<std::string_view> kExcluded = {
      "return", "new",  "delete", "throw",  "case",      "goto",
      "else",   "do",   "sizeof", "co_return", "co_await", "co_yield",
      "operator"};
  return kExcluded.count(prev) > 0;
}

}  // namespace

FileSummary summarize_source(std::string_view rel_path,
                             std::string_view content) {
  FileSummary out;
  out.path = std::string(rel_path);
  if (starts_with(rel_path, "src/")) {
    const std::size_t slash = rel_path.find('/', 4);
    if (slash != std::string_view::npos)
      out.module = std::string(rel_path.substr(4, slash - 4));
  }
  const std::size_t dot = rel_path.rfind('.');
  const std::string_view ext =
      dot == std::string_view::npos ? "" : rel_path.substr(dot);
  out.is_header = ext == ".hpp" || ext == ".h";

  // Line pass: includes, #pragma once, #define'd names.
  std::set<std::string> provided;
  {
    std::size_t start = 0, ln = 1;
    while (start <= content.size()) {
      std::size_t nl = content.find('\n', start);
      const std::string_view raw = content.substr(
          start, nl == std::string_view::npos ? std::string_view::npos
                                              : nl - start);
      std::size_t p = raw.find_first_not_of(" \t");
      if (p != std::string_view::npos && raw[p] == '#') {
        std::size_t q = raw.find_first_not_of(" \t", p + 1);
        const std::string_view body =
            q == std::string_view::npos ? std::string_view() : raw.substr(q);
        if (starts_with(body, "pragma") &&
            body.find("once") != std::string_view::npos) {
          out.has_pragma_once = true;
        } else if (starts_with(body, "include")) {
          const std::size_t open = body.find('"');
          if (open != std::string_view::npos) {
            const std::size_t end = body.find('"', open + 1);
            if (end != std::string_view::npos)
              out.includes.push_back(
                  {ln, std::string(body.substr(open + 1, end - open - 1))});
          }
        } else if (starts_with(body, "define")) {
          std::size_t d = body.find_first_not_of(" \t", 6);
          if (d != std::string_view::npos && ident_start(body[d])) {
            std::size_t e = d;
            while (e < body.size() && ident_char(body[e])) ++e;
            provided.insert(std::string(body.substr(d, e - d)));
          }
        }
      }
      if (nl == std::string_view::npos) break;
      start = nl + 1;
      ++ln;
    }
  }

  const std::vector<Token> toks = tokenize(content);
  const Cursor c{toks};
  std::set<std::string> referenced, name_strings;

  // Open class bodies, innermost last: member/method declarations live at
  // exactly `depth` braces inside their class.
  struct OpenClass {
    std::string name;
    int depth;        ///< brace depth of the class body interior
    std::size_t decl; ///< index into out.classes (it reallocates; no pointers)
  };
  std::vector<OpenClass> open_classes;
  int depth = 0;
  std::size_t decl_start = 0;  ///< first token of the current declaration

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind == Token::Kind::kString) {
      bool snake = !tok.text.empty() && tok.text.size() <= 64;
      for (char ch : tok.text)
        if (!(std::islower(static_cast<unsigned char>(ch)) ||
              std::isdigit(static_cast<unsigned char>(ch)) || ch == '_'))
          snake = false;
      if (snake) name_strings.insert(tok.text);
      continue;
    }
    if (tok.kind == Token::Kind::kPunct) {
      if (tok.text == "{") ++depth;
      else if (tok.text == "}") {
        --depth;
        while (!open_classes.empty() && depth < open_classes.back().depth)
          open_classes.pop_back();
      }
      if (tok.text == ";" || tok.text == "{" || tok.text == "}" ||
          tok.text == ":")
        decl_start = i + 1;
      continue;
    }
    if (tok.kind != Token::Kind::kIdent) continue;
    const std::string& s = tok.text;
    if (!is_cpp_keyword(s)) referenced.insert(s);

    // enum [class|struct] Name [: base] { enumerators }
    if (s == "enum") {
      std::size_t j = i + 1;
      if (c.is_ident(j, "class") || c.is_ident(j, "struct")) ++j;
      if (!c.is_any_ident(j)) continue;  // anonymous
      EnumDecl e;
      e.name = toks[j].text;
      e.line = toks[j].line;
      provided.insert(e.name);
      ++j;
      while (j < toks.size() && !c.is_punct(j, "{") && !c.is_punct(j, ";"))
        ++j;
      if (!c.is_punct(j, "{")) continue;  // forward declaration
      const std::size_t close = c.match_brace(j);
      int pd = 0;
      for (std::size_t k = j + 1; k < close; ++k) {
        if (c.is_punct(k, "(") || c.is_punct(k, "{")) ++pd;
        else if (c.is_punct(k, ")") || c.is_punct(k, "}")) --pd;
        else if (pd == 0 && c.is_any_ident(k) &&
                 (c.is_punct(k + 1, ",") || c.is_punct(k + 1, "=") ||
                  k + 1 == close)) {
          e.enumerators.push_back(toks[k].text);
          provided.insert(toks[k].text);
        }
      }
      out.enums.push_back(std::move(e));
      continue;
    }

    // class/struct Name [final] [: bases] { ... }
    if ((s == "class" || s == "struct") &&
        !(i > 0 && c.is_ident(i - 1, "enum"))) {
      std::size_t j = i + 1;
      while (c.is_punct(j, "[")) {  // [[attributes]]
        int d = 0;
        for (; j < toks.size(); ++j) {
          if (c.is_punct(j, "[")) ++d;
          else if (c.is_punct(j, "]") && --d == 0) {
            ++j;
            break;
          }
        }
      }
      if (!c.is_any_ident(j) || is_cpp_keyword(toks[j].text)) continue;
      ClassDecl decl;
      decl.name = toks[j].text;
      decl.line = toks[j].line;
      provided.insert(decl.name);
      ++j;
      if (c.is_ident(j, "final")) ++j;
      if (c.is_punct(j, ";") || c.is_punct(j, ",") || c.is_punct(j, ">") ||
          c.is_punct(j, ")"))
        continue;  // forward declaration / template parameter
      if (c.is_punct(j, ":")) {
        ++j;
        bool prev_scope = false;
        while (j < toks.size() && !c.is_punct(j, "{") && !c.is_punct(j, ";")) {
          if (c.is_punct(j, "<")) {
            j = c.skip_angles(j);
            continue;
          }
          if (c.is_punct(j, "::")) {
            prev_scope = true;
            ++j;
            continue;
          }
          if (c.is_any_ident(j) && !c.is_ident(j, "public") &&
              !c.is_ident(j, "protected") && !c.is_ident(j, "private") &&
              !c.is_ident(j, "virtual")) {
            if (prev_scope && !decl.bases.empty())
              decl.bases.back() = toks[j].text;  // sim::Protocol -> Protocol
            else
              decl.bases.push_back(toks[j].text);
            prev_scope = false;
          }
          ++j;
        }
      }
      if (!c.is_punct(j, "{")) continue;
      out.classes.push_back(std::move(decl));
      open_classes.push_back(
          {out.classes.back().name, depth + 1, out.classes.size() - 1});
      // The `{` itself is handled by the punct branch on its own turn.
      continue;
    }

    // using Alias = ...;
    if (s == "using" && c.is_any_ident(i + 1) && c.is_punct(i + 2, "=")) {
      provided.insert(toks[i + 1].text);
      continue;
    }

    const bool in_class_scope =
        !open_classes.empty() && depth == open_classes.back().depth;

    // Member data: `type name_ ;` directly inside a class body.
    if (in_class_scope && !s.empty() && s.back() == '_' &&
        (c.is_punct(i + 1, ";") || c.is_punct(i + 1, "=") ||
         c.is_punct(i + 1, "{") || c.is_punct(i + 1, "[") ||
         c.is_punct(i + 1, ",")) &&
        !(i > 0 && (c.is_punct(i - 1, ".") || c.is_punct(i - 1, "->") ||
                    c.is_punct(i - 1, "::")))) {
      out.classes[open_classes.back().decl].members.push_back(s);
    }

    // Method declaration/definition: `name ( ... ) [quals] {|;|=`.
    if (in_class_scope && c.is_punct(i + 1, "(") &&
        !(i > 0 && (c.is_punct(i - 1, ".") || c.is_punct(i - 1, "->") ||
                    c.is_punct(i - 1, "::") || c.is_punct(i - 1, "~")))) {
      ClassDecl* decl = &out.classes[open_classes.back().decl];
      const std::size_t close_paren = c.match_paren(i + 1);
      std::size_t k = close_paren + 1;
      bool is_const = false;
      while (k < toks.size() &&
             (c.is_ident(k, "const") || c.is_ident(k, "noexcept") ||
              c.is_ident(k, "override") || c.is_ident(k, "final") ||
              c.is_punct(k, "&"))) {
        if (c.is_ident(k, "const")) is_const = true;
        if (c.is_ident(k, "noexcept") && c.is_punct(k + 1, "("))
          k = c.match_paren(k + 1);
        ++k;
      }
      const bool has_body = c.is_punct(k, "{");
      const bool decl_like = c.is_punct(k, ";") || c.is_punct(k, "=") ||
                             c.is_punct(k, ":") || has_body;
      if (decl_like) {
        bool is_static = false, is_friend = false;
        for (std::size_t b = decl_start; b < i; ++b) {
          if (c.is_ident(b, "static")) is_static = true;
          if (c.is_ident(b, "friend")) is_friend = true;
        }
        if (!is_const && !is_static && !is_friend && s != decl->name)
          decl->mutating_methods.push_back(s);
        if (has_body && wave_checked_method(s))
          scan_wave_body(c, k, decl->name, s, &out.wave_events);
        provided.insert(s);
      }
    }

    // Out-of-line wave-method definition: `Class :: method ( ... ) ... {`.
    if (wave_checked_method(s) && i >= 2 && c.is_punct(i - 1, "::") &&
        c.is_any_ident(i - 2) && c.is_punct(i + 1, "(")) {
      const std::size_t close_paren = c.match_paren(i + 1);
      std::size_t k = close_paren + 1;
      while (k < toks.size() &&
             (c.is_ident(k, "const") || c.is_ident(k, "noexcept") ||
              c.is_ident(k, "override") || c.is_ident(k, "final")))
        ++k;
      if (c.is_punct(k, "{"))
        scan_wave_body(c, k, toks[i - 2].text, s, &out.wave_events);
    }

    // Namespace-scope declaration heuristic: `Type name (` / `Type name =`
    // / `Type name ;` provides `name`. Lenient by design — it exists so
    // include-hygiene only fires on includes providing *nothing* used.
    if (i > 0 &&
        (c.is_punct(i + 1, "(") || c.is_punct(i + 1, "=") ||
         c.is_punct(i + 1, ";") || c.is_punct(i + 1, ",") ||
         c.is_punct(i + 1, "{") || c.is_punct(i + 1, "["))) {
      const Token& prev = toks[i - 1];
      const bool type_prev =
          (prev.kind == Token::Kind::kIdent &&
           !decl_prev_excluded(prev.text)) ||
          (prev.kind == Token::Kind::kPunct &&
           (prev.text == ">" || prev.text == "*" || prev.text == "&"));
      if (type_prev && !(c.is_punct(i + 1, "=") && c.is_punct(i + 2, "=")))
        provided.insert(s);
    }
  }

  out.provided.assign(provided.begin(), provided.end());
  out.referenced.assign(referenced.begin(), referenced.end());
  out.name_strings.assign(name_strings.begin(), name_strings.end());
  return out;
}

// ---- project pass -------------------------------------------------------

namespace {

struct LayersSpec {
  bool present = false;
  std::map<std::string, std::size_t> module_line;
  std::map<std::pair<std::string, std::string>, std::size_t> edge_line;
};

LayersSpec parse_layers(std::string_view text) {
  LayersSpec spec;
  if (text.empty()) return spec;
  spec.present = true;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t ln = 0;
  while (std::getline(in, raw)) {
    ++ln;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string module, arrow, dep;
    if (!(line >> module)) continue;
    spec.module_line.emplace(module, ln);
    if (!(line >> arrow) || arrow != "->") continue;
    while (line >> dep)
      spec.edge_line.emplace(std::make_pair(module, dep), ln);
  }
  return spec;
}

/// Registered pinned enums: any new enumerator must land in every listed
/// table file before lint passes. kIdent matches the enumerator token
/// itself (switch cases / static_asserts); kName matches the derived
/// snake_case name as a standalone string literal (name/code tables).
struct EnumTableSpec {
  const char* decl_file;
  const char* enum_name;
  bool match_ident;
  std::vector<const char*> table_files;
  std::vector<const char*> skip;  ///< enumerators exempt (e.g. sentinels)
};

const std::vector<EnumTableSpec>& enum_table_specs() {
  static const std::vector<EnumTableSpec> kSpecs = {
      {"src/common/trace_reader.hpp", "EventKind", true,
       {"src/common/trace_reader.cpp", "src/common/trace_format.cpp",
        "src/common/tracing.cpp"},
       {}},
      {"src/common/tracing.hpp", "Kind", true,
       {"src/common/tracing.cpp"},
       {}},
      {"src/sim/node.hpp", "WakeReason", false,
       {"src/sim/node.hpp", "src/common/tracing.cpp"},
       {}},
      {"src/net/network_model.hpp", "Channel", false,
       {"src/net/network_model.cpp", "src/common/trace_format.cpp"},
       {}},
      {"src/net/network_model.hpp", "DropReason", false,
       {"src/net/network_model.cpp", "src/common/trace_format.cpp"},
       {"kNone"}},
  };
  return kSpecs;
}

bool scratchy(const std::string& name) {
  const std::string lower = to_lower(name);
  return lower.find("scratch") != std::string::npos ||
         lower.find("select") != std::string::npos;
}

}  // namespace

ProjectModel analyze_project(const std::vector<FileSummary>& files,
                             std::string_view layers_text) {
  ProjectModel pm;
  std::map<std::string, const FileSummary*> by_path;
  for (const FileSummary& f : files) by_path.emplace(f.path, &f);

  // Resolve quoted includes against the scanned tree. Each scan root is
  // its own include dir (src/, tools/, bench/, tests/), so try each
  // prefix; unresolved includes are external (gtest, system) and ignored.
  auto resolve = [&](const std::string& inc) -> const FileSummary* {
    for (const char* prefix : {"src/", "tools/", "bench/", "tests/", ""}) {
      const auto it = by_path.find(prefix + inc);
      if (it != by_path.end()) return it->second;
    }
    return nullptr;
  };

  // ---- layering ---------------------------------------------------------
  const LayersSpec layers = parse_layers(layers_text);
  struct EdgeSeen {
    std::size_t count = 0;
    std::string file;       ///< first include inducing the edge
    std::size_t line = 0;
    std::string target;
  };
  std::map<std::pair<std::string, std::string>, EdgeSeen> observed;
  for (const FileSummary& f : files) {
    if (f.module.empty()) continue;
    pm.module_files[f.module] += 1;
    for (const IncludeRef& inc : f.includes) {
      const FileSummary* target = resolve(inc.path);
      if (!target || target->module.empty() || target->module == f.module)
        continue;
      EdgeSeen& e = observed[{f.module, target->module}];
      if (e.count == 0) {
        e.file = f.path;
        e.line = inc.line;
        e.target = inc.path;
      }
      ++e.count;
    }
  }
  for (const auto& [edge, seen] : observed)
    pm.edges.push_back({edge.first, edge.second, seen.count,
                        layers.edge_line.count(edge) > 0});

  if (layers.present) {
    const std::string layers_file = "tools/lint/layers.txt";
    for (const auto& [edge, seen] : observed) {
      if (layers.edge_line.count(edge)) continue;
      pm.findings.push_back(
          {seen.file, seen.line, "layering",
           "#include \"" + seen.target + "\" creates module edge " +
               edge.first + " -> " + edge.second + " which " + layers_file +
               " does not declare — declare it or break the dependency"});
    }
    for (const auto& [edge, line] : layers.edge_line) {
      if (observed.count(edge)) continue;
      pm.findings.push_back(
          {layers_file, line, "layering",
           "declared edge " + edge.first + " -> " + edge.second +
               " matches no include in the tree — remove the stale "
               "declaration"});
    }
    for (const auto& [module, count] : pm.module_files) {
      (void)count;
      if (!layers.module_line.count(module))
        pm.findings.push_back(
            {layers_file, 1, "layering",
             "src/" + module + "/ exists but " + layers_file +
                 " has no entry for it — every module must declare its "
                 "dependencies"});
    }
    // Cycle check over the *declared* DAG (observed edges are a subset
    // once the undeclared-edge findings above are fixed).
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [edge, line] : layers.edge_line) {
      (void)line;
      adj[edge.first].push_back(edge.second);
    }
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::set<std::string> reported;
    std::vector<std::string> stack;
    auto dfs = [&](auto&& self, const std::string& u) -> void {
      color[u] = 1;
      stack.push_back(u);
      for (const std::string& v : adj[u]) {
        if (color[v] == 1) {
          // Reconstruct u -> ... -> v -> u from the gray stack.
          std::string cycle = v;
          bool in_cycle = false;
          for (const std::string& w : stack) {
            if (w == v) in_cycle = true;
            if (in_cycle && w != v) cycle += " -> " + w;
          }
          cycle += " -> " + v;
          if (reported.insert(cycle).second) {
            const auto it = layers.edge_line.find({u, v});
            pm.findings.push_back(
                {"tools/lint/layers.txt",
                 it == layers.edge_line.end() ? 1 : it->second, "layering",
                 "dependency cycle " + cycle + " — the module graph must "
                 "be a DAG or the build order and layering guarantees "
                 "collapse"});
          }
        } else if (color[v] == 0) {
          self(self, v);
        }
      }
      stack.pop_back();
      color[u] = 2;
    };
    for (const auto& [module, line] : layers.module_line) {
      (void)line;
      if (color[module] == 0) dfs(dfs, module);
    }
  }

  // ---- wave-safety ------------------------------------------------------
  std::map<std::string, ClassDecl> registry;
  for (const FileSummary& f : files)
    for (const ClassDecl& d : f.classes) {
      ClassDecl& merged = registry[d.name];
      merged.name = d.name;
      merged.bases.insert(merged.bases.end(), d.bases.begin(), d.bases.end());
      merged.members.insert(merged.members.end(), d.members.begin(),
                            d.members.end());
      merged.mutating_methods.insert(merged.mutating_methods.end(),
                                     d.mutating_methods.begin(),
                                     d.mutating_methods.end());
    }

  auto is_protocol = [&](const std::string& name) {
    std::set<std::string> seen;
    std::vector<std::string> todo{name};
    while (!todo.empty()) {
      const std::string cur = todo.back();
      todo.pop_back();
      if (cur == "Protocol") return true;
      if (!seen.insert(cur).second) continue;
      const auto it = registry.find(cur);
      if (it == registry.end()) continue;
      for (const std::string& b : it->second.bases) todo.push_back(b);
    }
    return false;
  };
  auto ancestry_union = [&](const std::string& name, bool methods) {
    std::set<std::string> out, seen;
    std::vector<std::string> todo{name};
    while (!todo.empty()) {
      const std::string cur = todo.back();
      todo.pop_back();
      if (!seen.insert(cur).second) continue;
      const auto it = registry.find(cur);
      if (it == registry.end()) continue;
      const auto& names =
          methods ? it->second.mutating_methods : it->second.members;
      out.insert(names.begin(), names.end());
      for (const std::string& b : it->second.bases) todo.push_back(b);
    }
    return out;
  };

  const std::string contract =
      " — select_peers/can_quiesce must be pure (src/sim/protocol.hpp): "
      "the wave engine replays them without the reservation order the "
      "serial engine saw";
  for (const FileSummary& f : files) {
    for (const WaveEvent& e : f.wave_events) {
      if (!is_protocol(e.class_name)) continue;
      const std::set<std::string> members =
          ancestry_union(e.class_name, /*methods=*/false);
      switch (e.kind) {
        case WaveEvent::Kind::kRng:
          if (members.count(e.name))
            pm.findings.push_back(
                {f.path, e.line, "wave-safety",
                 e.class_name + "::" + e.method + " draws from RNG member '" +
                     e.name + "'; dry-run draws must use a local copy "
                     "(Rng sim_rng = " + e.name + ";)" + contract});
          break;
        case WaveEvent::Kind::kAssign:
          if (members.count(e.name) && !scratchy(e.name))
            pm.findings.push_back(
                {f.path, e.line, "wave-safety",
                 e.class_name + "::" + e.method + " assigns to member '" +
                     e.name + "'; stage per-call state in a member named "
                     "*scratch*/*select* instead" + contract});
          break;
        case WaveEvent::Kind::kMutateCall:
          if (members.count(e.name) && !scratchy(e.name))
            pm.findings.push_back(
                {f.path, e.line, "wave-safety",
                 e.class_name + "::" + e.method + " mutates member '" +
                     e.name + "' in place; stage per-call state in a member "
                     "named *scratch*/*select* instead" + contract});
          break;
        case WaveEvent::Kind::kBareCall: {
          if (e.name == e.method) break;
          const std::set<std::string> mutators =
              ancestry_union(e.class_name, /*methods=*/true);
          if (mutators.count(e.name))
            pm.findings.push_back(
                {f.path, e.line, "wave-safety",
                 e.class_name + "::" + e.method + " calls non-const method '" +
                     e.name + "' of its own class" + contract});
          break;
        }
      }
    }
  }

  // ---- table-sync -------------------------------------------------------
  for (const EnumTableSpec& spec : enum_table_specs()) {
    const auto decl_it = by_path.find(spec.decl_file);
    if (decl_it == by_path.end()) continue;  // synthetic tree: not pinned
    const EnumDecl* decl = nullptr;
    for (const EnumDecl& e : decl_it->second->enums)
      if (e.name == spec.enum_name) decl = &e;
    if (!decl) {
      pm.findings.push_back(
          {spec.decl_file, 1, "table-sync",
           std::string("registered enum ") + spec.enum_name +
               " not found in this file — update the table-sync registry "
               "in tools/lint/model.cpp"});
      continue;
    }
    for (const std::string& enumerator : decl->enumerators) {
      bool skipped = false;
      for (const char* s : spec.skip)
        if (enumerator == s) skipped = true;
      if (skipped) continue;
      const std::string snake = enum_snake_name(enumerator);
      std::vector<std::string> missing;
      for (const char* table : spec.table_files) {
        const auto it = by_path.find(table);
        if (it == by_path.end()) {
          missing.push_back(std::string(table) + " (not in scan)");
          continue;
        }
        const FileSummary& t = *it->second;
        const bool hit =
            spec.match_ident
                ? std::binary_search(t.referenced.begin(), t.referenced.end(),
                                     enumerator)
                : std::binary_search(t.name_strings.begin(),
                                     t.name_strings.end(), snake);
        if (!hit) missing.push_back(table);
      }
      if (missing.empty()) continue;
      std::string where = missing[0];
      for (std::size_t i = 1; i < missing.size(); ++i)
        where += ", " + missing[i];
      pm.findings.push_back(
          {spec.decl_file, decl->line, "table-sync",
           std::string(spec.enum_name) + "::" + enumerator +
               (spec.match_ident ? " never appears in "
                                 : " (\"" + snake + "\") has no table entry "
                                   "in ") +
               where + " — a new enumerator must land in every pinned "
               "renderer/parser table before it can ship"});
    }
  }

  // ---- include-hygiene --------------------------------------------------
  std::map<std::string, std::set<std::string>> closure;
  std::set<std::string> in_progress;
  auto provided_closure = [&](auto&& self,
                              const FileSummary& f) -> const std::set<std::string>& {
    const auto it = closure.find(f.path);
    if (it != closure.end()) return it->second;
    std::set<std::string>& out = closure[f.path];  // placeholder breaks cycles
    if (!in_progress.insert(f.path).second) return out;
    out.insert(f.provided.begin(), f.provided.end());
    for (const IncludeRef& inc : f.includes) {
      const FileSummary* target = resolve(inc.path);
      if (!target) continue;
      const std::set<std::string>& sub = self(self, *target);
      out.insert(sub.begin(), sub.end());
    }
    in_progress.erase(f.path);
    return out;
  };

  auto own_header = [](const FileSummary& f, const FileSummary& h) {
    const auto stem = [](const std::string& p) {
      const std::size_t dot = p.rfind('.');
      return dot == std::string::npos ? p : p.substr(0, dot);
    };
    return stem(f.path) == stem(h.path);
  };

  for (const FileSummary& f : files) {
    for (const IncludeRef& inc : f.includes) {
      const FileSummary* target = resolve(inc.path);
      if (!target || own_header(f, *target)) continue;
      const std::set<std::string>& names = provided_closure(provided_closure,
                                                            *target);
      bool used = false;
      for (const std::string& r : f.referenced)
        if (names.count(r)) {
          used = true;
          break;
        }
      if (!used)
        pm.findings.push_back(
            {f.path, inc.line, "include-hygiene",
             "#include \"" + inc.path + "\" provides no name this file "
             "references (checked transitively) — drop the include"});
    }
    if (f.is_header && !f.has_pragma_once)
      pm.findings.push_back(
          {f.path, 1, "include-hygiene",
           "header lacks #pragma once — every project header must be "
           "safely re-includable (the CI stage compiles each one "
           "standalone)"});
  }

  std::stable_sort(pm.findings.begin(), pm.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return pm;
}

}  // namespace glap::lint
