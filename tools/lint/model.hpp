// Cross-TU project model for glap-lint. The per-file rules in lint.cpp
// see one token stream at a time; the properties that actually carry the
// determinism contract — module layering, select_peers/can_quiesce
// purity, and the pinned enum↔name/byte tables shared by GTB, the trace
// checker and the wake scheduler — span translation units. This layer
// summarizes each file once (`summarize_source`, pure and cacheable) and
// then runs the project-scoped rules over the joined summaries
// (`analyze_project`):
//
//   layering         src/ module include edges must match the checked-in
//                    tools/lint/layers.txt DAG (undeclared edges, stale
//                    declared edges and cycles are findings)
//   wave-safety      select_peers/can_quiesce overrides in Protocol
//                    subclasses must not write members outside the
//                    scratch_*/_select_ staging convention, call a
//                    mutating method of their own class, or draw from the
//                    member RNG (src/sim/protocol.hpp states the contract)
//   table-sync       every enumerator of a registered pinned enum must
//                    appear in the renderer/parser/code tables that
//                    serialize it (trace_format.cpp, tracing.cpp, ...)
//   include-hygiene  quoted project includes must provide at least one
//                    name the includer references (transitively), and
//                    project headers must carry #pragma once
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace glap::lint {

/// One quoted `#include "..."` directive (system includes are ignored).
struct IncludeRef {
  std::size_t line = 0;
  std::string path;  ///< as spelled, e.g. "common/rng.hpp"
};

/// A class/struct definition: enough structure for wave-safety to know
/// which names are members and which methods mutate.
struct ClassDecl {
  std::string name;
  std::size_t line = 0;
  std::vector<std::string> bases;             ///< unqualified base names
  std::vector<std::string> members;           ///< data members (…_ suffix)
  std::vector<std::string> mutating_methods;  ///< non-const method names
};

/// An enum (scoped or not) with its enumerators, for table-sync.
struct EnumDecl {
  std::string name;
  std::size_t line = 0;
  std::vector<std::string> enumerators;
};

/// A candidate purity violation inside a select_peers/can_quiesce body.
/// Extraction is per-file and over-approximate; resolution against the
/// class registry (members, base chains, const-ness) happens in
/// analyze_project, so locals and other objects never fire.
struct WaveEvent {
  enum class Kind : std::uint8_t {
    kAssign = 0,      ///< `name =`, `name +=`, `++name`, `name++`, ...
    kMutateCall = 1,  ///< `name.push_back(...)` and friends
    kBareCall = 2,    ///< unqualified `name(...)` — maybe a method of this
    kRng = 3,         ///< `name.draw(...)` where name looks like an RNG
  };
  Kind kind = Kind::kAssign;
  std::size_t line = 0;
  std::string class_name;  ///< enclosing class (from decl or X::method)
  std::string method;      ///< "select_peers" or "can_quiesce"
  std::string name;        ///< the identifier involved
};

/// Everything the project pass needs to know about one file. Produced by
/// a single tokenize of the file, independent of every other file — which
/// is what makes the on-disk scan cache sound.
struct FileSummary {
  std::string path;    ///< repo-relative, '/'-separated
  std::string module;  ///< "common", "sim", ... for src/<m>/...; else ""
  bool is_header = false;
  bool has_pragma_once = false;
  std::vector<IncludeRef> includes;
  std::vector<std::string> provided;      ///< names this file defines (sorted)
  std::vector<std::string> referenced;    ///< identifiers used (sorted)
  std::vector<std::string> name_strings;  ///< snake_case string literals
  std::vector<ClassDecl> classes;
  std::vector<EnumDecl> enums;
  std::vector<WaveEvent> wave_events;
};

/// Summarizes one file. Pure function of its inputs; `rel_path` drives
/// the module assignment and header detection.
FileSummary summarize_source(std::string_view rel_path,
                             std::string_view content);

/// Output of the project pass: the module graph plus every finding from
/// the four project rules (unsuppressed — the caller applies allows).
struct ProjectModel {
  std::vector<LayerEdge> edges;                     ///< sorted (from, to)
  std::map<std::string, std::size_t> module_files;  ///< src module -> files
  std::vector<Finding> findings;
};

/// Runs layering / wave-safety / table-sync / include-hygiene over the
/// joined summaries. `layers_text` is the contents of layers.txt
/// ("module -> dep dep ..." lines, '#' comments); when empty the layering
/// rule is skipped (synthetic trees without a DAG stay lintable). Enum
/// table specs whose declaring file is absent from the scan are skipped
/// for the same reason.
ProjectModel analyze_project(const std::vector<FileSummary>& files,
                             std::string_view layers_text);

}  // namespace glap::lint
