#include "lint/token.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace glap::lint {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0, line = 1;
  const std::size_t n = src.size();
  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal, with optional encoding prefix: R"delim( ... )delim"
    if ((c == 'R' && peek(1) == '"') ||
        ((c == 'u' || c == 'U' || c == 'L') && peek(1) == 'R' &&
         peek(2) == '"')) {
      std::size_t j = i + (c == 'R' ? 2 : 3);
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      ++j;  // past '('
      const std::string closer = ")" + delim + "\"";
      const std::size_t start = j;
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      const std::size_t tok_line = line;
      for (std::size_t k = i; k < stop; ++k)
        if (src[k] == '\n') ++line;
      out.push_back({Token::Kind::kString,
                     std::string(src.substr(start, stop - start)), tok_line});
      i = end == std::string_view::npos ? n : end + closer.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string raw;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          raw += src[j];
          raw += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; be lenient
        raw += src[j++];
      }
      if (quote == '"')
        out.push_back({Token::Kind::kString, raw, line});
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.push_back({Token::Kind::kIdent,
                     std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       src[j] == '\''))
        ++j;
      out.push_back({Token::Kind::kNumber,
                     std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Multi-char puncts the rules care about.
    if (c == ':' && peek(1) == ':') {
      out.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool is_cpp_keyword(std::string_view text) {
  static const std::set<std::string_view> kKeywords = {
      "alignas", "alignof", "and", "and_eq", "asm", "auto", "bitand",
      "bitor", "bool", "break", "case", "catch", "char", "char8_t",
      "char16_t", "char32_t", "class", "compl", "concept", "const",
      "consteval", "constexpr", "constinit", "const_cast", "continue",
      "co_await", "co_return", "co_yield", "decltype", "default", "delete",
      "do", "double", "dynamic_cast", "else", "enum", "explicit", "export",
      "extern", "false", "final", "float", "for", "friend", "goto", "if",
      "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
      "not", "not_eq", "nullptr", "operator", "or", "or_eq", "override",
      "private", "protected", "public", "register", "reinterpret_cast",
      "requires", "return", "short", "signed", "sizeof", "static",
      "static_assert", "static_cast", "struct", "switch", "template",
      "this", "thread_local", "throw", "true", "try", "typedef", "typeid",
      "typename", "union", "unsigned", "using", "virtual", "void",
      "volatile", "wchar_t", "while", "xor", "xor_eq",
      // preprocessor directive names (preprocessor lines tokenize like code)
      "include", "define", "undef", "ifdef", "ifndef", "elif", "endif",
      "pragma", "once", "error", "warning", "defined", "line",
  };
  return kKeywords.count(text) > 0;
}

}  // namespace glap::lint
