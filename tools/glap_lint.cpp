// glap-lint: determinism/safety static analysis over src/, bench/,
// tools/ and tests/support (DESIGN.md §11 documents the rule catalogue
// and suppression syntax). The tokenizer, per-file rules and the
// cross-TU project model live in tools/lint; this binary is argument
// handling and report formatting, mirroring glap-trace.
//
//   glap-lint scan [<root>] [--results] [--cache <file>] [--max-print N]
//   glap-lint graph [<root>] [--dot] [--results]
//   glap-lint file <path> [--as <rel-path>]
//   glap-lint rules
//   glap-lint trace-kinds
//
// Exit codes (pinned by DESIGN.md §11 and tests/tools):
//   0  clean — no rule violations
//   1  violations found (each printed as file:line: [rule] message)
//   2  usage error or unreadable input
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.hpp"
#include "lint/lint.hpp"

namespace {

using namespace glap;

constexpr int kExitOk = 0;
constexpr int kExitViolations = 1;
constexpr int kExitError = 2;

int usage() {
  std::fprintf(
      stderr,
      "usage: glap-lint <subcommand> [args]\n"
      "  scan [<root>] [--results] [--cache <file>] [--max-print N]\n"
      "        lint src/ bench/ tools/ tests/support under <root>\n"
      "        (default .); --results mirrors rule-hit counts to\n"
      "        results/lint_stats.json; --cache skips files whose\n"
      "        content hash matches the previous scan\n"
      "  graph [<root>] [--dot] [--results]\n"
      "        print the src/ module dependency graph against the\n"
      "        tools/lint/layers.txt DAG; --dot emits Graphviz,\n"
      "        --results mirrors it to results/lint_graph.json\n"
      "  file <path> [--as <rel-path>]\n"
      "        lint one file (per-file rules), scoped as if at <rel-path>\n"
      "  rules\n"
      "        list every rule\n"
      "  trace-kinds\n"
      "        known \"ev\" names for the trace-kind rule\n");
  return kExitError;
}

void print_findings(const std::vector<lint::Finding>& findings,
                    long long max_print) {
  long long printed = 0;
  for (const auto& f : findings) {
    if (printed++ >= max_print) {
      std::fprintf(stderr, "  ... (%zu more; raise --max-print)\n",
                   findings.size() - static_cast<std::size_t>(max_print));
      break;
    }
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
}

int cmd_scan(int argc, char** argv) {
  std::string root = ".";
  std::string cache;
  bool results = false;
  long long max_print = 50;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--results") == 0) {
      results = true;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache = argv[++i];
    } else if (std::strcmp(argv[i], "--max-print") == 0 && i + 1 < argc) {
      max_print = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--", 2) != 0) {
      root = argv[i];
    } else {
      std::fprintf(stderr, "glap-lint: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }

  const lint::TreeReport report = lint::lint_tree(root, cache);
  for (const auto& err : report.io_errors)
    std::fprintf(stderr, "glap-lint: %s\n", err.c_str());
  if (!report.io_errors.empty()) return kExitError;

  if (results) {
    harness::BenchReport out("lint_stats",
                             "glap-lint rule hits and suppressions over "
                             "src/, bench/, tools/ and tests/support");
    std::vector<std::vector<std::string>> rows;
    for (const auto& rule : lint::rules()) {
      const auto hit = report.rule_hits.find(rule.name);
      const auto sup = report.rule_suppressions.find(rule.name);
      rows.push_back(
          {rule.name, rule.tier,
           std::to_string(hit == report.rule_hits.end() ? 0 : hit->second),
           std::to_string(sup == report.rule_suppressions.end()
                              ? 0
                              : sup->second)});
    }
    out.add_table("rules", {"rule", "tier", "violations", "suppressions"},
                  rows);
    out.add_headline("files_scanned",
                     std::to_string(report.files_scanned));
    out.add_headline("violations", std::to_string(report.findings.size()));
    out.add_headline("suppressions",
                     std::to_string(report.suppressions_used));
    out.write();
  }

  if (!cache.empty())
    std::printf("glap-lint: cache — %zu hit(s), %zu miss(es)\n",
                report.cache_hits, report.cache_misses);
  if (report.findings.empty()) {
    std::printf("glap-lint: OK — %zu files, 0 violations, %zu "
                "suppression(s) in effect\n",
                report.files_scanned, report.suppressions_used);
    return kExitOk;
  }
  print_findings(report.findings, max_print);
  std::fprintf(stderr,
               "glap-lint: FAIL — %zu violation(s) in %zu files (%zu "
               "suppression(s) in effect)\n",
               report.findings.size(), report.files_scanned,
               report.suppressions_used);
  return kExitViolations;
}

// graph: render the observed src/ module dependency graph. Text mode
// lists modules with file counts and every observed edge (with the
// number of inducing #includes and whether layers.txt declares it);
// --dot emits a Graphviz digraph; --results mirrors the module-level
// graph to results/lint_graph.json (drift-checked against EXPERIMENTS.md,
// so only stable fields go in — no cache stats, no per-file data).
int cmd_graph(int argc, char** argv) {
  std::string root = ".";
  bool dot = false;
  bool results = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
    } else if (std::strcmp(argv[i], "--results") == 0) {
      results = true;
    } else if (std::strncmp(argv[i], "--", 2) != 0) {
      root = argv[i];
    } else {
      std::fprintf(stderr, "glap-lint: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }

  const lint::TreeReport report = lint::lint_tree(root);
  for (const auto& err : report.io_errors)
    std::fprintf(stderr, "glap-lint: %s\n", err.c_str());
  if (!report.io_errors.empty()) return kExitError;

  if (dot) {
    std::printf("digraph glap_modules {\n  rankdir=BT;\n");
    for (const auto& [mod, files] : report.module_files)
      std::printf("  \"%s\" [label=\"%s\\n%zu files\"];\n", mod.c_str(),
                  mod.c_str(), files);
    for (const auto& e : report.layer_edges)
      std::printf("  \"%s\" -> \"%s\" [label=\"%zu\"%s];\n", e.from.c_str(),
                  e.to.c_str(), e.includes,
                  e.declared ? "" : " color=red style=dashed");
    std::printf("}\n");
  } else {
    std::printf("modules (%zu):\n", report.module_files.size());
    for (const auto& [mod, files] : report.module_files)
      std::printf("  %-10s %zu files\n", mod.c_str(), files);
    std::printf("edges (%zu):\n", report.layer_edges.size());
    for (const auto& e : report.layer_edges)
      std::printf("  %-10s -> %-10s %3zu include(s)%s\n", e.from.c_str(),
                  e.to.c_str(), e.includes,
                  e.declared ? "" : "  UNDECLARED");
  }

  if (results) {
    harness::BenchReport out("lint_graph",
                             "src/ module dependency graph observed by "
                             "glap-lint against tools/lint/layers.txt");
    std::vector<std::vector<std::string>> mod_rows;
    for (const auto& [mod, files] : report.module_files)
      mod_rows.push_back({mod, std::to_string(files)});
    out.add_table("modules", {"module", "files"}, mod_rows);
    std::vector<std::vector<std::string>> edge_rows;
    std::size_t undeclared = 0;
    for (const auto& e : report.layer_edges) {
      edge_rows.push_back({e.from, e.to, std::to_string(e.includes),
                           e.declared ? "yes" : "no"});
      undeclared += e.declared ? 0 : 1;
    }
    out.add_table("layer_edges", {"from", "to", "includes", "declared"},
                  edge_rows);
    out.add_headline("modules", std::to_string(report.module_files.size()));
    out.add_headline("edges", std::to_string(report.layer_edges.size()));
    out.add_headline("undeclared_edges", std::to_string(undeclared));
    out.write();
  }
  return kExitOk;
}

int cmd_file(int argc, char** argv) {
  std::string path;
  std::string as;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--as") == 0 && i + 1 < argc) {
      as = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) != 0 && path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "glap-lint: unexpected argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "glap-lint: missing file argument\n");
    return usage();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "glap-lint: cannot open '%s'\n", path.c_str());
    return kExitError;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string rel = as.empty() ? path : as;
  lint::FileReport report = lint::lint_source(rel, buf.str());
  // Report under the real path but keep --as scoping for rule selection.
  for (auto& f : report.findings) f.file = path;
  if (report.findings.empty()) {
    std::size_t used = 0;
    for (const auto& s : report.suppressions) used += s.used ? 1 : 0;
    std::printf("glap-lint: OK — %s, 0 violations, %zu suppression(s)\n",
                path.c_str(), used);
    return kExitOk;
  }
  print_findings(report.findings, 50);
  std::fprintf(stderr, "glap-lint: FAIL — %zu violation(s) in %s\n",
               report.findings.size(), path.c_str());
  return kExitViolations;
}

int cmd_rules() {
  std::printf("%-20s %-12s %s\n", "rule", "tier", "summary");
  for (const auto& r : lint::rules())
    std::printf("%-20s %-12s %s\n", r.name, r.tier, r.summary);
  std::printf(
      "\nsuppress with: // glap-lint: allow(<rule>): <justification>\n"
      "               // glap-lint: allow-file(<rule>): <justification>\n");
  return kExitOk;
}

int cmd_trace_kinds() {
  for (const auto& name : lint::trace_event_kinds())
    std::printf("%s\n", name.c_str());
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "scan") return cmd_scan(argc, argv);
    if (cmd == "graph") return cmd_graph(argc, argv);
    if (cmd == "file") return cmd_file(argc, argv);
    if (cmd == "rules") return cmd_rules();
    if (cmd == "trace-kinds") return cmd_trace_kinds();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "glap-lint: %s\n", e.what());
    return kExitError;
  }
  std::fprintf(stderr, "glap-lint: unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}
