// glap-lint: determinism/safety static analysis over src/, bench/ and
// tools/ (DESIGN.md §11 documents the rule catalogue and suppression
// syntax). The tokenizer and rules live in tools/lint; this binary is
// argument handling and report formatting, mirroring glap-trace.
//
//   glap-lint scan [<root>] [--results] [--max-print N]
//   glap-lint file <path> [--as <rel-path>]
//   glap-lint rules
//   glap-lint trace-kinds
//
// Exit codes (pinned by DESIGN.md §11 and tests/tools):
//   0  clean — no rule violations
//   1  violations found (each printed as file:line: [rule] message)
//   2  usage error or unreadable input
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.hpp"
#include "lint/lint.hpp"

namespace {

using namespace glap;

constexpr int kExitOk = 0;
constexpr int kExitViolations = 1;
constexpr int kExitError = 2;

int usage() {
  std::fprintf(
      stderr,
      "usage: glap-lint <subcommand> [args]\n"
      "  scan [<root>] [--results] [--max-print N]  lint src/ bench/ tools/\n"
      "                                             under <root> (default .);\n"
      "                                             --results mirrors rule-hit\n"
      "                                             counts to results/\n"
      "                                             lint_stats.json\n"
      "  file <path> [--as <rel-path>]              lint one file, scoped as\n"
      "                                             if at <rel-path>\n"
      "  rules                                      list every rule\n"
      "  trace-kinds                                known \"ev\" names for the\n"
      "                                             trace-kind rule\n");
  return kExitError;
}

void print_findings(const std::vector<lint::Finding>& findings,
                    long long max_print) {
  long long printed = 0;
  for (const auto& f : findings) {
    if (printed++ >= max_print) {
      std::fprintf(stderr, "  ... (%zu more; raise --max-print)\n",
                   findings.size() - static_cast<std::size_t>(max_print));
      break;
    }
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
}

int cmd_scan(int argc, char** argv) {
  std::string root = ".";
  bool results = false;
  long long max_print = 50;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--results") == 0) {
      results = true;
    } else if (std::strcmp(argv[i], "--max-print") == 0 && i + 1 < argc) {
      max_print = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--", 2) != 0) {
      root = argv[i];
    } else {
      std::fprintf(stderr, "glap-lint: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }

  const lint::TreeReport report = lint::lint_tree(root);
  for (const auto& err : report.io_errors)
    std::fprintf(stderr, "glap-lint: %s\n", err.c_str());
  if (!report.io_errors.empty()) return kExitError;

  if (results) {
    harness::BenchReport out(
        "lint_stats",
        "glap-lint rule hits and suppressions over src/, bench/ and tools/");
    std::vector<std::vector<std::string>> rows;
    for (const auto& rule : lint::rules()) {
      const auto hit = report.rule_hits.find(rule.name);
      const auto sup = report.rule_suppressions.find(rule.name);
      rows.push_back(
          {rule.name, rule.tier,
           std::to_string(hit == report.rule_hits.end() ? 0 : hit->second),
           std::to_string(sup == report.rule_suppressions.end()
                              ? 0
                              : sup->second)});
    }
    out.add_table("rules", {"rule", "tier", "violations", "suppressions"},
                  rows);
    out.add_headline("files_scanned",
                     std::to_string(report.files_scanned));
    out.add_headline("violations", std::to_string(report.findings.size()));
    out.add_headline("suppressions",
                     std::to_string(report.suppressions_used));
    out.write();
  }

  if (report.findings.empty()) {
    std::printf("glap-lint: OK — %zu files, 0 violations, %zu "
                "suppression(s) in effect\n",
                report.files_scanned, report.suppressions_used);
    return kExitOk;
  }
  print_findings(report.findings, max_print);
  std::fprintf(stderr,
               "glap-lint: FAIL — %zu violation(s) in %zu files (%zu "
               "suppression(s) in effect)\n",
               report.findings.size(), report.files_scanned,
               report.suppressions_used);
  return kExitViolations;
}

int cmd_file(int argc, char** argv) {
  std::string path;
  std::string as;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--as") == 0 && i + 1 < argc) {
      as = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) != 0 && path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "glap-lint: unexpected argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "glap-lint: missing file argument\n");
    return usage();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "glap-lint: cannot open '%s'\n", path.c_str());
    return kExitError;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string rel = as.empty() ? path : as;
  lint::FileReport report = lint::lint_source(rel, buf.str());
  // Report under the real path but keep --as scoping for rule selection.
  for (auto& f : report.findings) f.file = path;
  if (report.findings.empty()) {
    std::size_t used = 0;
    for (const auto& s : report.suppressions) used += s.used ? 1 : 0;
    std::printf("glap-lint: OK — %s, 0 violations, %zu suppression(s)\n",
                path.c_str(), used);
    return kExitOk;
  }
  print_findings(report.findings, 50);
  std::fprintf(stderr, "glap-lint: FAIL — %zu violation(s) in %s\n",
               report.findings.size(), path.c_str());
  return kExitViolations;
}

int cmd_rules() {
  std::printf("%-20s %-12s %s\n", "rule", "tier", "summary");
  for (const auto& r : lint::rules())
    std::printf("%-20s %-12s %s\n", r.name, r.tier, r.summary);
  std::printf(
      "\nsuppress with: // glap-lint: allow(<rule>): <justification>\n"
      "               // glap-lint: allow-file(<rule>): <justification>\n");
  return kExitOk;
}

int cmd_trace_kinds() {
  for (const auto& name : lint::trace_event_kinds())
    std::printf("%s\n", name.c_str());
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "scan") return cmd_scan(argc, argv);
    if (cmd == "file") return cmd_file(argc, argv);
    if (cmd == "rules") return cmd_rules();
    if (cmd == "trace-kinds") return cmd_trace_kinds();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "glap-lint: %s\n", e.what());
    return kExitError;
  }
  std::fprintf(stderr, "glap-lint: unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}
