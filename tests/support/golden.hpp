// Shared golden-file comparison for tests that pin byte-exact artifacts
// (JSONL traces, rendered reports). One call replaces the open/slurp/diff
// boilerplate and the GLAP_UPDATE_GOLDEN regeneration path.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace glap::testing_support {

/// Byte-compares `actual` against the checked-in file at `path`. With
/// GLAP_UPDATE_GOLDEN set in the environment, rewrites the file and skips
/// the test instead. May ASSERT or GTEST_SKIP, so call it as the last
/// statement of the test body.
inline void expect_matches_golden(const std::string& path,
                                  const std::string& actual,
                                  const char* mismatch_hint) {
  if (std::getenv("GLAP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing; run with GLAP_UPDATE_GOLDEN=1 to create it";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str()) << mismatch_hint;
}

}  // namespace glap::testing_support
