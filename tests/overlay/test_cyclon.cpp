#include "overlay/cyclon.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <queue>
#include <set>

namespace glap::overlay {
namespace {

using sim::Engine;
using sim::NodeId;
using sim::NodeStatus;

CyclonProtocol& instance(Engine& engine, Engine::ProtocolSlot slot,
                         NodeId node) {
  return engine.protocol_at<CyclonProtocol>(slot, node);
}

/// BFS over the directed neighbor graph from node 0.
std::size_t reachable_from_zero(Engine& engine, Engine::ProtocolSlot slot) {
  std::set<NodeId> visited{0};
  std::queue<NodeId> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (NodeId next : instance(engine, slot, node).neighbor_view()) {
      if (visited.insert(next).second) frontier.push(next);
    }
  }
  return visited.size();
}

TEST(Cyclon, BootstrapFillsCache) {
  Engine engine(50, 1);
  const auto slot = CyclonProtocol::install(engine, {}, 1);
  for (NodeId n = 0; n < 50; ++n) {
    const auto& cache = instance(engine, slot, n).cache();
    EXPECT_GT(cache.size(), 0u);
    EXPECT_LE(cache.size(), CyclonConfig{}.cache_size);
  }
}

TEST(Cyclon, ConfigValidation) {
  EXPECT_THROW(CyclonProtocol({.cache_size = 0}, Rng(1)), precondition_error);
  EXPECT_THROW(
      CyclonProtocol({.cache_size = 4, .shuffle_length = 5}, Rng(1)),
      precondition_error);
  EXPECT_THROW(CyclonProtocol({.shuffle_length = 0}, Rng(1)),
               precondition_error);
}

TEST(Cyclon, InvariantsHoldOverManyRounds) {
  Engine engine(60, 2);
  CyclonConfig config{.cache_size = 8, .shuffle_length = 4};
  const auto slot = CyclonProtocol::install(engine, config, 2);
  engine.run(50);
  for (NodeId n = 0; n < 60; ++n) {
    const auto& cache = instance(engine, slot, n).cache();
    EXPECT_LE(cache.size(), config.cache_size);
    std::set<NodeId> ids;
    for (const auto& entry : cache) {
      EXPECT_NE(entry.id, n) << "self-link in cache of node " << n;
      EXPECT_TRUE(ids.insert(entry.id).second)
          << "duplicate neighbor " << entry.id << " at node " << n;
      EXPECT_LT(entry.id, 60u);
    }
  }
}

TEST(Cyclon, OverlayStaysConnected) {
  Engine engine(80, 3);
  const auto slot = CyclonProtocol::install(engine, {}, 3);
  engine.run(30);
  EXPECT_EQ(reachable_from_zero(engine, slot), 80u);
}

TEST(Cyclon, InDegreeStaysBalanced) {
  Engine engine(100, 4);
  CyclonConfig config{.cache_size = 10, .shuffle_length = 5};
  const auto slot = CyclonProtocol::install(engine, config, 4);
  engine.run(60);
  std::vector<int> indegree(100, 0);
  for (NodeId n = 0; n < 100; ++n)
    for (NodeId neighbor : instance(engine, slot, n).neighbor_view())
      ++indegree[neighbor];
  // Random-graph-like overlays keep in-degree near the cache size; a
  // star/hub topology would concentrate it.
  for (int d : indegree) EXPECT_LT(d, 40);
  const int total = std::accumulate(indegree.begin(), indegree.end(), 0);
  EXPECT_NEAR(static_cast<double>(total) / 100.0, 10.0, 2.0);
}

TEST(Cyclon, SampleReturnsActivePeer) {
  Engine engine(30, 5);
  const auto slot = CyclonProtocol::install(engine, {}, 5);
  engine.run(5);
  auto& node0 = instance(engine, slot, 0);
  for (int i = 0; i < 50; ++i) {
    const auto peer = node0.sample_active_peer(engine, 0);
    ASSERT_TRUE(peer.has_value());
    EXPECT_TRUE(engine.is_active(*peer));
    EXPECT_NE(*peer, 0u);
  }
}

TEST(Cyclon, SamplePrunesDeadPeers) {
  Engine engine(10, 6);
  const auto slot = CyclonProtocol::install(engine, {}, 6);
  engine.run(5);
  // Put everyone but node 0 to sleep: sampling must eventually return
  // nullopt and leave the cache empty of dead entries it touched.
  for (NodeId n = 1; n < 10; ++n) engine.set_status(n, NodeStatus::kSleeping);
  auto& node0 = instance(engine, slot, 0);
  EXPECT_EQ(node0.sample_active_peer(engine, 0), std::nullopt);
  EXPECT_TRUE(node0.cache().empty());
}

TEST(Cyclon, HealsAroundFailedNodes) {
  Engine engine(60, 7);
  const auto slot = CyclonProtocol::install(engine, {}, 7);
  engine.run(10);
  // Fail a third of the overlay.
  for (NodeId n = 40; n < 60; ++n) engine.set_status(n, NodeStatus::kFailed);
  engine.run(40);
  // Live nodes should have pruned (most) dead entries through shuffle
  // retries and keep a usable active-neighbor supply.
  for (NodeId n = 0; n < 40; ++n) {
    auto& proto = instance(engine, slot, n);
    const auto peer = proto.sample_active_peer(engine, n);
    ASSERT_TRUE(peer.has_value()) << "node " << n << " has no live neighbor";
    EXPECT_LT(*peer, 40u);
  }
}

TEST(Cyclon, AgesIncreaseWithoutContact) {
  Engine engine(5, 8);
  CyclonConfig config{.cache_size = 4, .shuffle_length = 2};
  const auto slot = CyclonProtocol::install(engine, config, 8);
  auto& node0 = instance(engine, slot, 0);
  // Directly drive only node 0's cycle: all its entries age.
  const auto before = node0.cache();
  node0.execute(engine, 0, sim::PeerSet{});
  // After one cycle, any surviving original entry has age >= 1 unless it
  // was refreshed by the shuffle reply.
  const auto after = node0.cache();
  EXPECT_FALSE(after.empty());
  (void)before;
}

TEST(Cyclon, RemoveNeighborDeletesAllEntries) {
  CyclonProtocol proto({.cache_size = 4, .shuffle_length = 2}, Rng(1));
  proto.bootstrap(0, {1, 2, 3});
  proto.remove_neighbor(2);
  for (const auto& e : proto.cache()) EXPECT_NE(e.id, 2u);
  EXPECT_EQ(proto.cache().size(), 2u);
}

TEST(Cyclon, BootstrapIgnoresSelfAndDuplicates) {
  CyclonProtocol proto({.cache_size = 8, .shuffle_length = 2}, Rng(1));
  proto.bootstrap(0, {0, 1, 1, 2});
  EXPECT_EQ(proto.cache().size(), 2u);
}

TEST(Cyclon, HandleShuffleReturnsSubsetAndLearnsInitiator) {
  CyclonProtocol proto({.cache_size = 8, .shuffle_length = 3}, Rng(2));
  proto.bootstrap(5, {1, 2, 3, 4});
  std::vector<CyclonProtocol::Entry> incoming{{7, 0}, {8, 1}};
  const auto reply = proto.handle_shuffle(5, 9, incoming);
  EXPECT_LE(reply.size(), 3u);
  bool knows_initiator = false;
  for (const auto& e : proto.cache())
    if (e.id == 9) knows_initiator = true;
  EXPECT_TRUE(knows_initiator);
}

TEST(Cyclon, SingleNodeOverlayIsDegenerate) {
  Engine engine(1, 9);
  const auto slot = CyclonProtocol::install(engine, {}, 9);
  engine.run(3);
  auto& only = instance(engine, slot, 0);
  EXPECT_TRUE(only.cache().empty());
  EXPECT_EQ(only.sample_active_peer(engine, 0), std::nullopt);
}

}  // namespace
}  // namespace glap::overlay
