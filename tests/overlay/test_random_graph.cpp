#include "overlay/random_graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace glap::overlay {
namespace {

using sim::Engine;
using sim::NodeId;
using sim::NodeStatus;

TEST(RandomGraph, DegreeMatchesConfig) {
  Engine engine(40, 1);
  const auto slot = RandomGraphProtocol::install(engine, {.degree = 6}, 1);
  for (NodeId n = 0; n < 40; ++n) {
    const auto neighbors =
        engine.protocol_at<RandomGraphProtocol>(slot, n).neighbor_view();
    EXPECT_EQ(neighbors.size(), 6u);
    std::set<NodeId> unique(neighbors.begin(), neighbors.end());
    EXPECT_EQ(unique.size(), neighbors.size());
    EXPECT_EQ(unique.count(n), 0u);
  }
}

TEST(RandomGraph, DegreeCappedBySize) {
  Engine engine(4, 2);
  const auto slot = RandomGraphProtocol::install(engine, {.degree = 10}, 2);
  for (NodeId n = 0; n < 4; ++n)
    EXPECT_EQ(engine.protocol_at<RandomGraphProtocol>(slot, n)
                  .neighbor_view()
                  .size(),
              3u);
}

TEST(RandomGraph, SamplesOnlyActivePeers) {
  Engine engine(20, 3);
  const auto slot = RandomGraphProtocol::install(engine, {.degree = 5}, 3);
  for (NodeId n = 10; n < 20; ++n) engine.set_status(n, NodeStatus::kSleeping);
  auto& node0 = engine.protocol_at<RandomGraphProtocol>(slot, 0);
  for (int i = 0; i < 30; ++i) {
    const auto peer = node0.sample_active_peer(engine, 0);
    if (peer) {
      EXPECT_TRUE(engine.is_active(*peer));
    }
  }
}

TEST(RandomGraph, SampleReturnsNulloptWhenAllNeighborsDead) {
  Engine engine(5, 4);
  const auto slot = RandomGraphProtocol::install(engine, {.degree = 4}, 4);
  for (NodeId n = 1; n < 5; ++n) engine.set_status(n, NodeStatus::kSleeping);
  auto& node0 = engine.protocol_at<RandomGraphProtocol>(slot, 0);
  EXPECT_EQ(node0.sample_active_peer(engine, 0), std::nullopt);
}

TEST(RandomGraph, ZeroDegreeRejected) {
  Engine engine(5, 5);
  EXPECT_THROW(RandomGraphProtocol::install(engine, {.degree = 0}, 5),
               precondition_error);
}

TEST(RandomGraph, NextCycleIsInert) {
  Engine engine(5, 6);
  const auto slot = RandomGraphProtocol::install(engine, {.degree = 2}, 6);
  const auto before =
      engine.protocol_at<RandomGraphProtocol>(slot, 0).neighbor_view();
  engine.run(10);
  const auto after =
      engine.protocol_at<RandomGraphProtocol>(slot, 0).neighbor_view();
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace glap::overlay
