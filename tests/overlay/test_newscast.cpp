#include "overlay/newscast.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <queue>
#include <set>

namespace glap::overlay {
namespace {

using sim::Engine;
using sim::NodeId;
using sim::NodeStatus;

NewscastProtocol& instance(Engine& engine, Engine::ProtocolSlot slot,
                           NodeId node) {
  return engine.protocol_at<NewscastProtocol>(slot, node);
}

std::size_t reachable_from_zero(Engine& engine, Engine::ProtocolSlot slot) {
  std::set<NodeId> visited{0};
  std::queue<NodeId> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (NodeId next : instance(engine, slot, node).neighbor_view())
      if (visited.insert(next).second) frontier.push(next);
  }
  return visited.size();
}

TEST(Newscast, BootstrapFillsCache) {
  Engine engine(40, 1);
  const auto slot = NewscastProtocol::install(engine, {}, 1);
  for (NodeId n = 0; n < 40; ++n)
    EXPECT_GT(instance(engine, slot, n).cache().size(), 0u);
}

TEST(Newscast, InvariantsHoldOverRounds) {
  Engine engine(50, 2);
  NewscastConfig config{.cache_size = 8};
  const auto slot = NewscastProtocol::install(engine, config, 2);
  engine.run(40);
  for (NodeId n = 0; n < 50; ++n) {
    const auto& cache = instance(engine, slot, n).cache();
    EXPECT_LE(cache.size(), config.cache_size);
    std::set<NodeId> ids;
    for (const auto& item : cache) {
      EXPECT_NE(item.id, n);
      EXPECT_TRUE(ids.insert(item.id).second);
    }
  }
}

TEST(Newscast, TimestampsStayFresh) {
  Engine engine(50, 3);
  const auto slot = NewscastProtocol::install(engine, {}, 3);
  engine.run(60);
  // Freshness-driven replacement: after many rounds no cache holds
  // entries older than a small window.
  const auto now = engine.current_round();
  for (NodeId n = 0; n < 50; ++n)
    for (const auto& item : instance(engine, slot, n).cache())
      EXPECT_GT(item.timestamp + 20, now)
          << "stale item at node " << n;
}

TEST(Newscast, OverlayStaysConnected) {
  Engine engine(60, 4);
  const auto slot = NewscastProtocol::install(engine, {}, 4);
  engine.run(30);
  EXPECT_EQ(reachable_from_zero(engine, slot), 60u);
}

TEST(Newscast, SamplesOnlyActivePeers) {
  Engine engine(20, 5);
  const auto slot = NewscastProtocol::install(engine, {}, 5);
  engine.run(5);
  for (NodeId n = 10; n < 20; ++n) engine.set_status(n, NodeStatus::kSleeping);
  auto& node0 = instance(engine, slot, 0);
  for (int i = 0; i < 20; ++i) {
    const auto peer = node0.sample_active_peer(engine, 0);
    if (peer) {
      EXPECT_TRUE(engine.is_active(*peer));
    }
  }
}

TEST(Newscast, HealsAroundFailedNodes) {
  Engine engine(40, 6);
  const auto slot = NewscastProtocol::install(engine, {}, 6);
  engine.run(10);
  for (NodeId n = 30; n < 40; ++n) engine.set_status(n, NodeStatus::kFailed);
  engine.run(30);
  for (NodeId n = 0; n < 30; ++n) {
    const auto peer =
        instance(engine, slot, n).sample_active_peer(engine, n);
    ASSERT_TRUE(peer.has_value());
    EXPECT_LT(*peer, 30u);
  }
}

TEST(Newscast, ConfigValidation) {
  EXPECT_THROW(NewscastProtocol({.cache_size = 0}, Rng(1)),
               precondition_error);
}

TEST(Newscast, HandleExchangeLearnsInitiator) {
  NewscastProtocol proto({.cache_size = 8}, Rng(7));
  proto.bootstrap(5, {1, 2});
  const auto reply = proto.handle_exchange(5, 9, {{3, 4}}, 10);
  EXPECT_EQ(reply.size(), 3u);  // snapshot of 2 items + fresh self entry
  bool knows_initiator = false;
  for (const auto& item : proto.cache())
    if (item.id == 9) knows_initiator = true;
  EXPECT_TRUE(knows_initiator);
}

}  // namespace
}  // namespace glap::overlay
