// Harness-level rack-topology tests: metric plumbing and the rack-aware
// GLAP variant end to end.
#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace glap::harness {
namespace {

ExperimentConfig topo_config(double affinity) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGlap;
  config.pm_count = 60;
  config.vm_ratio = 2;
  config.rounds = 60;
  config.warmup_rounds = 30;
  config.glap.learning_rounds = 12;
  config.glap.aggregation_rounds = 12;
  config.glap.consolidation_start_round = 30;
  config.seed = 77;
  config.rack_size = 6;
  config.rack_switch_watts = 120.0;
  config.glap.rack_affinity = affinity;
  return config;
}

TEST(TopologyHarness, RackMetricsPopulatedWhenEnabled) {
  const RunResult result = run_experiment(topo_config(0.0));
  ASSERT_FALSE(result.rounds.empty());
  for (const auto& s : result.rounds) {
    EXPECT_GE(s.active_racks, 1u);
    EXPECT_LE(s.active_racks, 10u);  // 60 PMs / rack of 6
  }
  EXPECT_GT(result.switch_energy_j, 0.0);
  EXPECT_GT(result.mean_active_racks(), 0.0);
}

TEST(TopologyHarness, DisabledTopologyMetersNothing) {
  ExperimentConfig config = topo_config(0.0);
  config.rack_size = 0;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.switch_energy_j, 0.0);
  for (const auto& s : result.rounds) EXPECT_EQ(s.active_racks, 0u);
}

TEST(TopologyHarness, ActiveRacksNeverBelowActivePmsBound) {
  // ceil(active_pms / rack_size) <= active_racks <= active_pms.
  const RunResult result = run_experiment(topo_config(0.5));
  for (const auto& s : result.rounds) {
    const std::uint32_t lower = (s.active_pms + 5) / 6;
    EXPECT_GE(s.active_racks, lower);
    EXPECT_LE(s.active_racks, s.active_pms);
  }
}

TEST(TopologyHarness, RackAwareVariantStillConsolidates) {
  const RunResult plain = run_experiment(topo_config(0.0));
  const RunResult aware = run_experiment(topo_config(0.5));
  EXPECT_LT(aware.final_active_pms, 60u);
  // Consolidation quality stays in the same ballpark (within 30%).
  EXPECT_LT(aware.mean_active(), plain.mean_active() * 1.3);
}

TEST(TopologyHarness, InvalidAffinityRejected) {
  ExperimentConfig config = topo_config(1.5);
  EXPECT_THROW(run_experiment(config), precondition_error);
}

TEST(TopologyHarness, DeterministicWithTopology) {
  const RunResult a = run_experiment(topo_config(0.5));
  const RunResult b = run_experiment(topo_config(0.5));
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_DOUBLE_EQ(a.switch_energy_j, b.switch_energy_j);
}

}  // namespace
}  // namespace glap::harness
