#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include "harness/bench_scale.hpp"

namespace glap::harness {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGrmp;
  config.pm_count = 30;
  config.vm_ratio = 2;
  config.rounds = 20;
  config.warmup_rounds = 10;
  config.fit_glap_phases_to_warmup();
  config.seed = 100;
  return config;
}

TEST(Sweep, RunCellUsesDistinctSeeds) {
  ThreadPool pool(2);
  const CellResult cell = run_cell(tiny(), 3, pool);
  ASSERT_EQ(cell.runs.size(), 3u);
  // Seeds 100, 101, 102: at least two runs should differ somewhere.
  bool differ = false;
  for (std::size_t i = 1; i < 3 && !differ; ++i)
    differ = cell.runs[i].total_migrations != cell.runs[0].total_migrations ||
             cell.runs[i].final_active_pms != cell.runs[0].final_active_pms;
  EXPECT_TRUE(differ);
}

TEST(Sweep, RunCellMatchesDirectRuns) {
  ThreadPool pool(3);
  const CellResult cell = run_cell(tiny(), 2, pool);
  ExperimentConfig direct = tiny();
  const RunResult first = run_experiment(direct);
  direct.seed = tiny().seed + 1;
  const RunResult second = run_experiment(direct);
  EXPECT_EQ(cell.runs[0].total_migrations, first.total_migrations);
  EXPECT_EQ(cell.runs[1].total_migrations, second.total_migrations);
}

TEST(Sweep, RunCellsPreservesOrder) {
  ThreadPool pool(4);
  std::vector<ExperimentConfig> cells;
  for (std::size_t size : {20, 30}) {
    ExperimentConfig config = tiny();
    config.pm_count = size;
    cells.push_back(config);
  }
  const auto results = run_cells(cells, 2, pool);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.pm_count, 20u);
  EXPECT_EQ(results[1].config.pm_count, 30u);
  for (const auto& cell : results) EXPECT_EQ(cell.runs.size(), 2u);
}

TEST(Sweep, PooledRoundSummaryPoolsAcrossRuns) {
  CellResult cell;
  for (int run = 0; run < 2; ++run) {
    RunResult r;
    for (std::uint32_t i = 0; i < 3; ++i) {
      RoundSample s;
      s.overloaded_pms = static_cast<std::uint32_t>(run * 3 + i);
      r.rounds.push_back(s);
    }
    cell.runs.push_back(std::move(r));
  }
  const auto summary = cell.pooled_round_summary(
      [](const RunResult& r) { return r.overloaded_series(); });
  EXPECT_EQ(summary.count, 6u);
  EXPECT_DOUBLE_EQ(summary.median, 2.5);
  EXPECT_DOUBLE_EQ(summary.min, 0.0);
  EXPECT_DOUBLE_EQ(summary.max, 5.0);
}

TEST(Sweep, MeanOfAveragesScalars) {
  CellResult cell;
  for (double m : {10.0, 20.0, 30.0}) {
    RunResult r;
    r.total_migrations = static_cast<std::uint64_t>(m);
    cell.runs.push_back(std::move(r));
  }
  EXPECT_DOUBLE_EQ(cell.mean_of([](const RunResult& r) {
    return static_cast<double>(r.total_migrations);
  }),
                   20.0);
}

TEST(Sweep, ZeroRepetitionsRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(run_cell(tiny(), 0, pool), precondition_error);
  EXPECT_THROW(run_cells({tiny()}, 0, pool), precondition_error);
}

TEST(BenchScale, DefaultAndFull) {
  // Without env overrides the default scale is small; this test only
  // checks invariants that hold for either setting.
  const BenchScale scale = bench_scale_from_env();
  EXPECT_FALSE(scale.sizes.empty());
  EXPECT_FALSE(scale.ratios.empty());
  EXPECT_GT(scale.repetitions, 0u);
  EXPECT_GT(scale.rounds, 0u);
  ExperimentConfig config;
  apply_scale(config, scale);
  EXPECT_EQ(config.rounds, scale.rounds);
  EXPECT_LE(config.glap.learning_rounds + config.glap.aggregation_rounds,
            config.warmup_rounds);
}

}  // namespace
}  // namespace glap::harness
