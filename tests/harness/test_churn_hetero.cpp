// Harness-level tests for VM churn, the GLAP re-learning oracle, and
// heterogeneous fleets.
#include <gtest/gtest.h>

#include "core/gossip_learning.hpp"
#include "harness/runner.hpp"

namespace glap::harness {
namespace {

ExperimentConfig churn_config(Algorithm algo) {
  ExperimentConfig config;
  config.algorithm = algo;
  config.pm_count = 40;
  config.vm_ratio = 3;
  config.rounds = 80;
  config.warmup_rounds = 30;
  config.glap.learning_rounds = 10;
  config.glap.aggregation_rounds = 10;
  config.glap.consolidation_start_round = 30;
  config.seed = 99;
  config.churn.enabled = true;
  config.churn.departure_prob = 0.01;
  config.churn.arrival_prob = 0.05;
  config.churn.initial_placed_fraction = 0.7;
  return config;
}

TEST(Churn, RunsCleanlyForEveryAlgorithm) {
  for (Algorithm algo : {Algorithm::kGlap, Algorithm::kGrmp,
                         Algorithm::kEcoCloud, Algorithm::kPabfd,
                         Algorithm::kNone}) {
    const RunResult result = run_experiment(churn_config(algo));
    EXPECT_EQ(result.rounds.size(), 80u) << to_string(algo);
    EXPECT_GT(result.total_energy_j, 0.0) << to_string(algo);
  }
}

TEST(Churn, DeterministicUnderChurn) {
  const RunResult a = run_experiment(churn_config(Algorithm::kGlap));
  const RunResult b = run_experiment(churn_config(Algorithm::kGlap));
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.relearn_triggers, b.relearn_triggers);
  for (std::size_t i = 0; i < a.rounds.size(); ++i)
    ASSERT_EQ(a.rounds[i].active_pms, b.rounds[i].active_pms) << i;
}

TEST(Churn, RelearnOracleFiresUnderHeavyChurn) {
  ExperimentConfig config = churn_config(Algorithm::kGlap);
  config.churn.departure_prob = 0.05;
  config.churn.arrival_prob = 0.2;
  config.churn.relearn_rate_threshold = 0.01;
  config.churn.relearn_min_interval = 20;
  config.churn.relearn_learning_rounds = 5;
  config.churn.relearn_aggregation_rounds = 5;
  const RunResult result = run_experiment(config);
  EXPECT_GT(result.relearn_triggers, 0u);
}

TEST(Churn, RelearnDisabledNeverFires) {
  ExperimentConfig config = churn_config(Algorithm::kGlap);
  config.churn.departure_prob = 0.05;
  config.churn.arrival_prob = 0.2;
  config.churn.glap_relearn = false;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.relearn_triggers, 0u);
}

TEST(Churn, BaselinesNeverRelearn) {
  ExperimentConfig config = churn_config(Algorithm::kGrmp);
  config.churn.departure_prob = 0.05;
  config.churn.arrival_prob = 0.2;
  config.churn.relearn_rate_threshold = 0.0;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.relearn_triggers, 0u);
}

TEST(Churn, NoChurnMeansNoTriggers) {
  ExperimentConfig config = churn_config(Algorithm::kGlap);
  config.churn.enabled = false;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.relearn_triggers, 0u);
}

TEST(Retrigger, ReentersLearningThenIdles) {
  cloud::DataCenter dc(4, 8, cloud::DataCenterConfig{});
  sim::Engine engine(4, 5);
  core::GlapConfig glap;
  glap.learning_rounds = 2;
  glap.aggregation_rounds = 2;
  const auto overlay = overlay::CyclonProtocol::install(engine, {}, 5);
  const auto learning =
      core::GossipLearningProtocol::install(engine, glap, dc, overlay, 5);
  for (cloud::VmId v = 0; v < 8; ++v) dc.place(v, static_cast<cloud::PmId>(v / 2));
  std::vector<Resources> demands(8, Resources{0.3, 0.3});
  auto step = [&] {
    dc.observe_demands(demands);
    engine.step();
  };
  for (int i = 0; i < 5; ++i) step();
  auto& node = engine.protocol_at<core::GossipLearningProtocol>(learning, 0);
  ASSERT_EQ(node.phase(), core::GossipLearningProtocol::Phase::kIdle);
  node.retrigger(3, 2);
  EXPECT_EQ(node.phase(), core::GossipLearningProtocol::Phase::kLearning);
  for (int i = 0; i < 3; ++i) step();
  EXPECT_EQ(node.phase(), core::GossipLearningProtocol::Phase::kAggregation);
  for (int i = 0; i < 2; ++i) step();
  EXPECT_EQ(node.phase(), core::GossipLearningProtocol::Phase::kIdle);
}

TEST(Heterogeneous, MixedFleetRunsAndConsolidates) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGlap;
  config.pm_count = 40;
  config.vm_ratio = 2;
  config.rounds = 40;
  config.warmup_rounds = 20;
  config.glap.learning_rounds = 8;
  config.glap.aggregation_rounds = 8;
  config.glap.consolidation_start_round = 20;
  config.seed = 21;
  config.fleet.pm_classes = {{cloud::hp_proliant_ml110_g5(), 0.5},
                             {cloud::hp_proliant_ml110_g4(), 0.5}};
  config.fleet.vm_classes = {{cloud::ec2_micro(), 0.7},
                             {cloud::ec2_small(), 0.3}};
  const RunResult result = run_experiment(config);
  EXPECT_LT(result.final_active_pms, 40u);
}

TEST(Heterogeneous, FleetDrawIsAlgorithmIndependent) {
  // Same seed, different algorithm: identical BFD oracle implies the
  // fleet and demand streams matched.
  ExperimentConfig base;
  base.pm_count = 30;
  base.vm_ratio = 2;
  base.rounds = 20;
  base.warmup_rounds = 10;
  base.fit_glap_phases_to_warmup();
  base.seed = 33;
  base.fleet.vm_classes = {{cloud::ec2_micro(), 0.5},
                           {cloud::ec2_small(), 0.5}};
  base.algorithm = Algorithm::kNone;
  const RunResult none = run_experiment(base);
  base.algorithm = Algorithm::kGrmp;
  const RunResult grmp = run_experiment(base);
  EXPECT_EQ(none.final_bfd_bins, grmp.final_bfd_bins);
}

TEST(Heterogeneous, InvalidWeightsRejected) {
  ExperimentConfig config;
  config.pm_count = 5;
  config.vm_ratio = 2;
  config.rounds = 1;
  config.warmup_rounds = 0;
  config.glap.learning_rounds = 0;
  config.glap.aggregation_rounds = 0;
  config.fleet.pm_classes = {{cloud::hp_proliant_ml110_g5(), 0.0}};
  EXPECT_THROW(run_experiment(config), precondition_error);
}

}  // namespace
}  // namespace glap::harness
