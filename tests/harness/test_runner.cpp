#include "harness/runner.hpp"

#include <gtest/gtest.h>

namespace glap::harness {
namespace {

ExperimentConfig tiny(Algorithm algo, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.algorithm = algo;
  config.pm_count = 40;
  config.vm_ratio = 2;
  config.rounds = 30;
  config.warmup_rounds = 30;
  config.glap.learning_rounds = 10;
  config.glap.aggregation_rounds = 10;
  config.glap.consolidation_start_round = 30;
  config.seed = seed;
  return config;
}

TEST(Runner, ProducesOneSamplePerEvaluationRound) {
  const RunResult result = run_experiment(tiny(Algorithm::kGlap));
  EXPECT_EQ(result.rounds.size(), 30u);
  for (std::size_t i = 0; i < result.rounds.size(); ++i)
    EXPECT_EQ(result.rounds[i].round, i);
}

TEST(Runner, DeterministicForSameSeed) {
  const RunResult a = run_experiment(tiny(Algorithm::kGlap));
  const RunResult b = run_experiment(tiny(Algorithm::kGlap));
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_DOUBLE_EQ(a.slav, b.slav);
  EXPECT_DOUBLE_EQ(a.migration_energy_j, b.migration_energy_j);
  EXPECT_EQ(a.final_active_pms, b.final_active_pms);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].active_pms, b.rounds[i].active_pms);
    EXPECT_EQ(a.rounds[i].overloaded_pms, b.rounds[i].overloaded_pms);
    EXPECT_EQ(a.rounds[i].migrations_cum, b.rounds[i].migrations_cum);
  }
}

TEST(Runner, DifferentSeedsProduceDifferentRuns) {
  const RunResult a = run_experiment(tiny(Algorithm::kGlap, 1));
  const RunResult b = run_experiment(tiny(Algorithm::kGlap, 2));
  bool any_difference = a.total_migrations != b.total_migrations;
  for (std::size_t i = 0; !any_difference && i < a.rounds.size(); ++i)
    any_difference = a.rounds[i].active_pms != b.rounds[i].active_pms;
  EXPECT_TRUE(any_difference);
}

TEST(Runner, NoneAlgorithmNeverMigrates) {
  const RunResult result = run_experiment(tiny(Algorithm::kNone));
  EXPECT_EQ(result.total_migrations, 0u);
  EXPECT_EQ(result.migration_energy_j, 0.0);
  EXPECT_EQ(result.final_active_pms, 40u);
  EXPECT_DOUBLE_EQ(result.slalm, 0.0);
}

TEST(Runner, EveryAlgorithmRunsCleanly) {
  for (Algorithm algo : {Algorithm::kGlap, Algorithm::kGrmp,
                         Algorithm::kEcoCloud, Algorithm::kPabfd}) {
    const RunResult result = run_experiment(tiny(algo));
    EXPECT_EQ(result.rounds.size(), 30u) << to_string(algo);
    EXPECT_GT(result.total_energy_j, 0.0) << to_string(algo);
    EXPECT_GE(result.final_bfd_bins, 1u) << to_string(algo);
  }
}

TEST(Runner, CumulativeMigrationsMonotone) {
  const RunResult result = run_experiment(tiny(Algorithm::kPabfd));
  std::uint64_t prev = 0;
  for (const auto& s : result.rounds) {
    EXPECT_GE(s.migrations_cum, prev);
    prev = s.migrations_cum;
  }
  EXPECT_EQ(prev, result.total_migrations);
}

TEST(Runner, PerRoundMigrationsSumToTotal) {
  const RunResult result = run_experiment(tiny(Algorithm::kGrmp));
  std::uint64_t sum = 0;
  for (const auto& s : result.rounds) sum += s.migrations_round;
  EXPECT_EQ(sum, result.total_migrations);
}

TEST(Runner, ActiveNeverExceedsTotalPms) {
  const RunResult result = run_experiment(tiny(Algorithm::kGrmp));
  for (const auto& s : result.rounds) {
    EXPECT_LE(s.active_pms, 40u);
    EXPECT_LE(s.overloaded_pms, s.active_pms);
  }
}

TEST(Runner, ConvergenceTrackingFillsWarmupSeries) {
  ExperimentConfig config = tiny(Algorithm::kGlap);
  config.track_convergence = true;
  config.convergence_pairs = 16;
  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.convergence.size(), config.warmup_rounds);
  for (double v : result.convergence) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  // Aggregation must have unified the tables by the end of warmup.
  EXPECT_GT(result.convergence.back(), 0.99);
}

TEST(Runner, BaselinesHaveNoConvergenceSeries) {
  ExperimentConfig config = tiny(Algorithm::kGrmp);
  config.track_convergence = true;
  const RunResult result = run_experiment(config);
  EXPECT_TRUE(result.convergence.empty());
}

TEST(Runner, GlapPhasesMustFitWarmup) {
  ExperimentConfig config = tiny(Algorithm::kGlap);
  config.glap.learning_rounds = 100;  // exceeds 30-round warmup
  EXPECT_THROW(run_experiment(config), precondition_error);
}

TEST(Runner, FitGlapPhasesClampsToWarmup) {
  ExperimentConfig config;
  config.warmup_rounds = 40;
  config.fit_glap_phases_to_warmup();
  EXPECT_LE(config.glap.learning_rounds + config.glap.aggregation_rounds,
            40u);
  EXPECT_EQ(config.glap.consolidation_start_round, 40u);
}

TEST(Runner, LabelMentionsKeyParameters) {
  const ExperimentConfig config = tiny(Algorithm::kEcoCloud, 9);
  const std::string label = config.label();
  EXPECT_NE(label.find("40-2"), std::string::npos);
  EXPECT_NE(label.find("EcoCloud"), std::string::npos);
  EXPECT_NE(label.find("seed=9"), std::string::npos);
}

TEST(RunResult, DerivedSeriesAndMeans) {
  RunResult result;
  for (std::uint32_t i = 0; i < 4; ++i) {
    RoundSample s;
    s.round = i;
    s.active_pms = 10 + i;
    s.overloaded_pms = i;
    s.migrations_round = 2 * i;
    result.rounds.push_back(s);
  }
  EXPECT_EQ(result.overloaded_series(),
            (std::vector<double>{0, 1, 2, 3}));
  EXPECT_EQ(result.active_series(),
            (std::vector<double>{10, 11, 12, 13}));
  EXPECT_EQ(result.migrations_per_round_series(),
            (std::vector<double>{0, 2, 4, 6}));
  EXPECT_DOUBLE_EQ(result.mean_overloaded(), 1.5);
  EXPECT_DOUBLE_EQ(result.mean_active(), 11.5);
  EXPECT_NEAR(result.mean_overloaded_fraction(),
              (0.0 / 10 + 1.0 / 11 + 2.0 / 12 + 3.0 / 13) / 4.0, 1e-12);
}

}  // namespace
}  // namespace glap::harness
