#include "net/network_model.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace glap::net {
namespace {

NetworkConfig healthy() {
  NetworkConfig c;
  c.enabled = true;
  return c;
}

constexpr double kRoundSeconds = 120.0;

TEST(NetworkModelTopology, RacksGroupConsecutiveIds) {
  NetworkModel net(100, 32, healthy(), kRoundSeconds, 1);
  EXPECT_EQ(net.rack_of(0), 0u);
  EXPECT_EQ(net.rack_of(31), 0u);
  EXPECT_EQ(net.rack_of(32), 1u);
  EXPECT_EQ(net.rack_of(99), 3u);
  EXPECT_EQ(net.rack_count(), 4u);  // ceil(100 / 32)
}

TEST(NetworkModelTopology, RatesFollowOversubscription) {
  NetworkConfig c = healthy();
  c.access_gbps = 1.0;
  c.oversubscription = 4.0;
  NetworkModel net(64, 32, c, kRoundSeconds, 1);
  const double access = 1e9 / 8.0 * kRoundSeconds;
  EXPECT_DOUBLE_EQ(net.access_bytes_per_round(), access);
  // Uplink serves 32 PMs at 4:1 oversubscription = 8 access links' worth.
  EXPECT_DOUBLE_EQ(net.uplink_bytes_per_round(), access * 32.0 / 4.0);
}

TEST(NetworkModelTopology, ConfigValidationRejectsNonsense) {
  NetworkConfig c = healthy();
  c.loss_rate = 1.0;
  EXPECT_THROW(NetworkModel(10, 5, c, kRoundSeconds, 1), precondition_error);
  c = healthy();
  c.oversubscription = 0.5;
  EXPECT_THROW(NetworkModel(10, 5, c, kRoundSeconds, 1), precondition_error);
  c = healthy();
  c.queue_limit_rounds = 0.0;
  EXPECT_THROW(NetworkModel(10, 5, c, kRoundSeconds, 1), precondition_error);
  EXPECT_THROW(NetworkModel(0, 5, healthy(), kRoundSeconds, 1),
               precondition_error);
  EXPECT_THROW(NetworkModel(10, 5, healthy(), 0.0, 1), precondition_error);
}

TEST(NetworkModelDelivery, HealthyFabricDeliversSameRound) {
  NetworkModel net(64, 32, healthy(), kRoundSeconds, 7);
  net.begin_round(0);
  // Intra-rack and inter-rack gossip-sized exchanges both complete within
  // the round at healthy defaults — the modeled network is behaviorally
  // the ideal one.
  const Verdict intra = net.round_trip(0, 1, 128, 128, Channel::kShuffle);
  EXPECT_TRUE(intra.ok());
  EXPECT_EQ(intra.delay, 0u);
  const Verdict inter =
      net.round_trip(0, 40, 4096, 4096, Channel::kAggregation);
  EXPECT_TRUE(inter.ok());
  EXPECT_EQ(net.totals().sends, 2u);
  EXPECT_EQ(net.totals().delivered, 2u);
  EXPECT_EQ(net.totals().dropped_loss, 0u);
  EXPECT_EQ(net.totals().dropped_congestion, 0u);
}

TEST(NetworkModelDelivery, MsgIdsAreAssignedInAdmissionOrder) {
  NetworkModel net(64, 32, healthy(), kRoundSeconds, 7);
  net.begin_round(0);
  EXPECT_EQ(net.round_trip(0, 1, 8, 8, Channel::kShuffle).msg_id, 0u);
  EXPECT_EQ(net.round_trip(2, 3, 8, 8, Channel::kShuffle).msg_id, 1u);
  EXPECT_EQ(net.send(4, 5, 8, Channel::kProbe).msg_id, 2u);
}

TEST(NetworkModelDelivery, PayloadChargesEveryLinkOnTheRoute) {
  NetworkModel net(64, 32, healthy(), kRoundSeconds, 7);
  net.begin_round(0);
  net.round_trip(0, 40, 100, 50, Channel::kConsolidation);
  EXPECT_DOUBLE_EQ(net.access_backlog(0), 150.0);
  EXPECT_DOUBLE_EQ(net.access_backlog(40), 150.0);
  EXPECT_DOUBLE_EQ(net.uplink_backlog(0), 150.0);
  EXPECT_DOUBLE_EQ(net.uplink_backlog(1), 150.0);
  // Intra-rack traffic never touches an uplink.
  net.round_trip(1, 2, 100, 0, Channel::kConsolidation);
  EXPECT_DOUBLE_EQ(net.uplink_backlog(0), 150.0);
}

TEST(NetworkModelDelivery, BeginRoundDrainsOneRoundOfService) {
  NetworkModel net(64, 32, healthy(), kRoundSeconds, 7);
  net.begin_round(0);
  net.round_trip(0, 1, 1000, 1000, Channel::kShuffle);
  EXPECT_GT(net.access_backlog(0), 0.0);
  // One round of 1 GbE service dwarfs a 2 kB backlog.
  net.begin_round(1);
  EXPECT_DOUBLE_EQ(net.access_backlog(0), 0.0);
}

TEST(NetworkModelDrops, DropTailCongestionRejectsAndKeepsQueue) {
  NetworkConfig c = healthy();
  c.queue_limit_rounds = 0.25;
  NetworkModel net(64, 32, c, kRoundSeconds, 7);
  net.begin_round(0);
  const double limit = 0.25 * net.access_bytes_per_round();
  const auto big = static_cast<std::size_t>(limit * 0.75);
  EXPECT_TRUE(net.round_trip(0, 1, big, 0, Channel::kAggregation).ok());
  const double before = net.access_backlog(0);
  const Verdict v = net.round_trip(0, 1, big, 0, Channel::kAggregation);
  EXPECT_EQ(v.outcome, Verdict::Outcome::kDropped);
  EXPECT_EQ(v.reason, DropReason::kCongestion);
  // Drop-tail: the rejected payload never joins the queue.
  EXPECT_DOUBLE_EQ(net.access_backlog(0), before);
  EXPECT_EQ(net.totals().dropped_congestion, 1u);
}

TEST(NetworkModelDrops, QueueingDelayDefersPastTheRoundBoundary) {
  // Shrink the round so a modest backlog is worth >= 1 round of service,
  // and raise the queue limit so admission still succeeds.
  NetworkConfig c = healthy();
  c.queue_limit_rounds = 10.0;
  c.access_latency_s = 0.0;  // isolate queueing from propagation
  const double round_s = 1e-4;  // one round serves 12.5 kB per access link
  NetworkModel net(64, 32, c, round_s, 7);
  net.begin_round(0);
  EXPECT_TRUE(net.round_trip(0, 1, 20000, 0, Channel::kAggregation).ok());
  // The second exchange queues behind 20 kB > 1 round of service.
  const Verdict v = net.round_trip(0, 1, 100, 0, Channel::kAggregation);
  EXPECT_EQ(v.outcome, Verdict::Outcome::kDelayed);
  EXPECT_GE(v.delay, 1u);
  EXPECT_EQ(net.totals().delayed, 1u);
}

TEST(NetworkModelDrops, LossIsDeterministicPerSeedAndMsgId) {
  NetworkConfig c = healthy();
  c.loss_rate = 0.05;
  auto run = [&](std::uint64_t seed) {
    NetworkModel net(64, 32, c, kRoundSeconds, seed);
    net.begin_round(0);
    std::vector<int> outcomes;
    for (int i = 0; i < 400; ++i)
      outcomes.push_back(static_cast<int>(
          net.round_trip(0, 1, 64, 64, Channel::kShuffle).outcome));
    return outcomes;
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));  // same seed: identical verdict sequence
  EXPECT_NE(a, run(43));  // different seed: different loss pattern
  // ~9.75% round-trip loss over 400 trials: some of each, never all.
  const auto drops = static_cast<std::size_t>(
      std::count(a.begin(), a.end(),
                 static_cast<int>(Verdict::Outcome::kDropped)));
  EXPECT_GT(drops, 0u);
  EXPECT_LT(drops, 200u);
}

TEST(NetworkModelDrops, RoundTripLossExceedsOneWayLoss) {
  NetworkConfig c = healthy();
  c.loss_rate = 0.2;
  NetworkModel rt(64, 32, c, kRoundSeconds, 9);
  NetworkModel ow(64, 32, c, kRoundSeconds, 9);
  rt.begin_round(0);
  ow.begin_round(0);
  for (int i = 0; i < 2000; ++i) {
    rt.round_trip(0, 1, 8, 8, Channel::kShuffle);
    ow.send(0, 1, 8, Channel::kProbe);
  }
  // Identical msg ids and seed, so draws coincide; the round trip's
  // combined probability 1-(1-p)^2 = 0.36 > 0.2 strictly dominates.
  EXPECT_GT(rt.totals().dropped_loss, ow.totals().dropped_loss);
}

TEST(NetworkModelTelemetry, CountersMirrorTotals) {
  NetworkConfig c = healthy();
  c.loss_rate = 0.5;
  metrics::MetricsRegistry registry;
  NetworkModel net(64, 32, c, kRoundSeconds, 11);
  net.set_telemetry(&registry, nullptr);
  net.begin_round(0);
  for (int i = 0; i < 50; ++i)
    net.round_trip(0, 1, 16, 16, Channel::kConsolidation);
  EXPECT_EQ(registry.counter("netmodel.sends")->value(), 50);
  EXPECT_EQ(registry.counter("netmodel.delivered")->value(),
            static_cast<std::int64_t>(net.totals().delivered));
  EXPECT_EQ(registry.counter("netmodel.dropped_loss")->value(),
            static_cast<std::int64_t>(net.totals().dropped_loss));
  EXPECT_EQ(net.totals().delivered + net.totals().dropped_loss, 50u);
}

TEST(NetworkModelTelemetry, MigrationContentionChargesAndReportsQueueAhead) {
  NetworkModel net(64, 32, healthy(), kRoundSeconds, 13);
  net.begin_round(0);
  // Empty fabric: the stream starts instantly.
  EXPECT_DOUBLE_EQ(net.migration_delay_seconds(0, 40, 4096.0), 0.0);
  EXPECT_GT(net.uplink_backlog(0), 0.0);
  // A second migration to the same target queues behind the first; the
  // bottleneck is the shared (slow) access link of PM 40, not the uplink.
  const double wait = net.migration_delay_seconds(1, 40, 4096.0);
  EXPECT_GT(wait, 0.0);
  EXPECT_NEAR(wait,
              4096e6 / (net.access_bytes_per_round() / kRoundSeconds),
              1e-6);
  EXPECT_EQ(net.totals().sends, 2u);
  EXPECT_EQ(net.totals().delivered, 2u);
}

TEST(NetworkModelTelemetry, DisabledContentionChargesNothing) {
  NetworkConfig c = healthy();
  c.migration_contention = false;
  NetworkModel net(64, 32, c, kRoundSeconds, 13);
  net.begin_round(0);
  EXPECT_DOUBLE_EQ(net.migration_delay_seconds(0, 40, 4096.0), 0.0);
  EXPECT_DOUBLE_EQ(net.uplink_backlog(0), 0.0);
  EXPECT_EQ(net.totals().sends, 0u);
}

TEST(NetworkModelTrace, EmitsSendDeliverDropAndQueueEvents) {
  NetworkConfig c = healthy();
  c.loss_rate = 0.5;
  std::ostringstream out;
  {
    trace::TraceLog log(out);
    NetworkModel net(64, 32, c, kRoundSeconds, 17);
    net.set_telemetry(nullptr, &log);
    log.begin_round(0);
    net.begin_round(0);
    for (int i = 0; i < 20; ++i)
      net.round_trip(0, 40, 256, 256, Channel::kLearning);
    log.commit_round();
    net.trace_queue_depths(0);
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("\"ev\":\"net\",\"round\":0,\"op\":\"send\""),
            std::string::npos);
  EXPECT_NE(text.find("\"channel\":\"learning\""), std::string::npos);
  EXPECT_NE(text.find("\"op\":\"deliver\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"loss\""), std::string::npos);
  // Delivered payloads left a backlog, so queue lines follow.
  EXPECT_NE(text.find("\"op\":\"queue\",\"link\":\"access\",\"id\":0"),
            std::string::npos);
  EXPECT_NE(text.find("\"link\":\"uplink\""), std::string::npos);
}

}  // namespace
}  // namespace glap::net
