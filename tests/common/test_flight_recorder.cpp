// Flight recorder (DESIGN.md §10.7): the bounded per-round ring, the
// GTB validity of its dumps, the metrics sidecar, and the CrashDumpScope
// activation of the assertion hook.
#include "common/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/metrics.hpp"
#include "common/trace_format.hpp"
#include "common/trace_reader.hpp"

namespace glap::flight {
namespace {

/// One encoded relearn record for `round` — the smallest schema record.
std::string relearn_record(std::uint64_t round) {
  trace::TraceEvent e;
  e.kind = trace::EventKind::kRelearn;
  e.round = round;
  std::string bytes;
  EXPECT_TRUE(trace::append_gtb_record(e, &bytes, nullptr));
  return bytes;
}

/// Feeds rounds [first, last] into the recorder, one record per round.
void record_rounds(FlightRecorder* recorder, std::uint64_t first,
                   std::uint64_t last) {
  for (std::uint64_t r = first; r <= last; ++r) {
    recorder->begin_round(r);
    const std::string bytes = relearn_record(r);
    recorder->append(bytes.data(), bytes.size());
  }
}

/// Parses a dump file back into events; fails the test on any error.
std::vector<trace::TraceEvent> read_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  trace::TraceReader reader(in);
  std::vector<trace::TraceEvent> events;
  trace::TraceEvent e;
  std::string error;
  while (true) {
    const auto status = reader.next(&e, &error);
    EXPECT_NE(status, trace::TraceReader::Status::kError)
        << "record " << reader.line_number() << ": " << error;
    if (status != trace::TraceReader::Status::kEvent) break;
    events.push_back(e);
  }
  EXPECT_TRUE(reader.binary()) << "dump is not a GTB file";
  return events;
}

TEST(FlightRecorder, RingKeepsOnlyTheNewestRounds) {
  FlightRecorder recorder(3);
  EXPECT_EQ(recorder.max_rounds(), 3u);
  EXPECT_EQ(recorder.rounds_retained(), 0u);

  record_rounds(&recorder, 1, 2);
  EXPECT_EQ(recorder.rounds_retained(), 2u);
  EXPECT_EQ(recorder.oldest_round(), 1u);

  record_rounds(&recorder, 3, 10);
  EXPECT_EQ(recorder.rounds_retained(), 3u);
  EXPECT_EQ(recorder.oldest_round(), 8u);
}

TEST(FlightRecorder, DumpIsAValidGtbTraceOfTheRetainedWindow) {
  FlightRecorder recorder(4);
  record_rounds(&recorder, 0, 9);

  const std::string path = ::testing::TempDir() + "glap_flight_ring.gtb";
  ASSERT_TRUE(recorder.dump(path));
  const std::vector<trace::TraceEvent> events = read_dump(path);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, trace::EventKind::kRelearn);
    EXPECT_EQ(events[i].round, 6u + i) << "dump is not oldest-first";
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, EmptyRecorderDumpsAHeaderOnlyTrace) {
  FlightRecorder recorder(2);
  const std::string path = ::testing::TempDir() + "glap_flight_empty.gtb";
  ASSERT_TRUE(recorder.dump(path));
  EXPECT_TRUE(read_dump(path).empty());
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpToFdMatchesDump) {
  FlightRecorder recorder(2);
  record_rounds(&recorder, 5, 9);

  const std::string path = ::testing::TempDir() + "glap_flight_file.gtb";
  const std::string fd_path = ::testing::TempDir() + "glap_flight_fd.gtb";
  ASSERT_TRUE(recorder.dump(path));
  std::FILE* f = std::fopen(fd_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  recorder.dump_to_fd(fileno(f));
  std::fclose(f);

  std::ifstream a(path, std::ios::binary), b(fd_path, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::remove(path.c_str());
  std::remove(fd_path.c_str());
}

TEST(FlightRecorder, AttachedRegistrySnapshotJoinsTheDump) {
  FlightRecorder recorder(2);
  record_rounds(&recorder, 1, 1);
  metrics::MetricsRegistry registry;
  registry.counter("dc.migrations")->inc(7);
  recorder.set_registry(&registry);

  const std::string path = ::testing::TempDir() + "glap_flight_reg.gtb";
  ASSERT_TRUE(recorder.dump(path));
  std::ifstream side(path + ".metrics.json");
  ASSERT_TRUE(side.is_open());
  std::stringstream json;
  json << side.rdbuf();
  EXPECT_NE(json.str().find("\"dc.migrations\""), std::string::npos);
  std::remove(path.c_str());
  std::remove((path + ".metrics.json").c_str());
}

TEST(CrashDumpScope, FailedContractCheckLeavesAPostMortem) {
  FlightRecorder recorder(2);
  record_rounds(&recorder, 3, 4);
  const std::string path = ::testing::TempDir() + "glap_flight_crash.gtb";

  {
    const CrashDumpScope scope(&recorder, path);
    ASSERT_TRUE(scope.active());
    EXPECT_THROW(GLAP_ASSERT(false, "synthetic failure"), invariant_error);
  }

  const std::vector<trace::TraceEvent> events = read_dump(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].round, 3u);

  std::ifstream what(path + ".what.txt");
  ASSERT_TRUE(what.is_open()) << "failure text sidecar missing";
  std::string text;
  std::getline(what, text);
  EXPECT_NE(text.find("synthetic failure"), std::string::npos) << text;
  std::remove(path.c_str());
  std::remove((path + ".what.txt").c_str());
}

TEST(CrashDumpScope, SecondConcurrentScopeIsANoOp) {
  FlightRecorder outer_recorder(2);
  FlightRecorder inner_recorder(2);
  record_rounds(&outer_recorder, 1, 1);
  const std::string outer = ::testing::TempDir() + "glap_flight_outer.gtb";
  const std::string inner = ::testing::TempDir() + "glap_flight_inner.gtb";
  std::remove(inner.c_str());

  {
    const CrashDumpScope first(&outer_recorder, outer);
    const CrashDumpScope second(&inner_recorder, inner);
    EXPECT_TRUE(first.active());
    EXPECT_FALSE(second.active());
    EXPECT_THROW(GLAP_ASSERT(false, "inner must not win"), invariant_error);
  }

  // The dump landed at the first scope's path; the second left nothing.
  EXPECT_EQ(read_dump(outer).size(), 1u);
  std::ifstream none(inner, std::ios::binary);
  EXPECT_FALSE(none.is_open());
  std::remove(outer.c_str());
  std::remove((outer + ".what.txt").c_str());
}

TEST(CrashDumpScope, HookIsDisarmedOnExit) {
  FlightRecorder recorder(2);
  record_rounds(&recorder, 1, 1);
  const std::string path = ::testing::TempDir() + "glap_flight_gone.gtb";
  { const CrashDumpScope scope(&recorder, path); }
  std::remove(path.c_str());

  EXPECT_THROW(GLAP_ASSERT(false, "after scope"), invariant_error);
  std::ifstream in(path, std::ios::binary);
  EXPECT_FALSE(in.is_open()) << "disarmed scope still dumped";
}

}  // namespace
}  // namespace glap::flight
