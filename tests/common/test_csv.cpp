#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace glap {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, ValueRowFormatsCompactly) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row_values({1.0, 2.5, 0.000125});
  EXPECT_EQ(os.str(), "1,2.5,0.000125\n");
}

TEST(ParseCsvLine, SimpleFields) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, QuotedFieldWithComma) {
  const auto fields = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "c");
}

TEST(ParseCsvLine, EscapedQuote) {
  const auto fields = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvLine, EmptyFields) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLine, ToleratesCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops"), precondition_error);
}

TEST(ReadCsv, HeaderAndRows) {
  std::istringstream in("x,y\n1,2\n3,4\n");
  const auto table = read_csv(in);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.column("x"), 0u);
  EXPECT_EQ(table.column("y"), 1u);
  EXPECT_EQ(table.column("z"), CsvTable::npos);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][0], "3");
}

TEST(ReadCsv, NoHeaderMode) {
  std::istringstream in("1,2\n3,4\n");
  const auto table = read_csv(in, /*has_header=*/false);
  EXPECT_TRUE(table.header.empty());
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(ReadCsv, SkipsBlankLines) {
  std::istringstream in("x\n\n1\n\n2\n");
  const auto table = read_csv(in);
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(CsvRoundTrip, WriteThenRead) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"name", "value"});
  w.write_row({"weird,name", "say \"x\""});
  std::istringstream in(os.str());
  const auto table = read_csv(in);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "weird,name");
  EXPECT_EQ(table.rows[0][1], "say \"x\"");
}

}  // namespace
}  // namespace glap
