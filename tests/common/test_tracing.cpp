// TraceLog: serial-order rendering of buffered interaction events and the
// JSONL shapes of the driver-direct lines.
#include "common/tracing.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/exec_context.hpp"
#include "sim/node.hpp"

namespace glap::trace {
namespace {

struct ContextGuard {
  ContextGuard() : saved(exec::context()) {}
  ~ContextGuard() { exec::context() = saved; }
  exec::Context saved;
};

TEST(KindName, NamesAllKinds) {
  EXPECT_STREQ(kind_name(Kind::kMigration), "migration");
  EXPECT_STREQ(kind_name(Kind::kPower), "power");
  EXPECT_STREQ(kind_name(Kind::kShuffle), "shuffle");
  EXPECT_STREQ(kind_name(Kind::kOverload), "overload");
  EXPECT_STREQ(kind_name(Kind::kFault), "fault");
  EXPECT_STREQ(kind_name(Kind::kActivity), "activity");
}

// The activity reason codes are the numeric values of sim::WakeReason
// (the engine emits `static_cast<int64_t>(reason)`), so the two name
// tables must agree code for code.
TEST(ActivityReasonNames, PinnedToWakeReasonCodes) {
  for (std::int64_t code = 0; code <= 7; ++code)
    EXPECT_STREQ(activity_reason_name(code),
                 to_string(static_cast<sim::WakeReason>(code)))
        << "code " << code;
  EXPECT_STREQ(activity_reason_name(8), "?");
  EXPECT_STREQ(activity_reason_name(-1), "?");
}

TEST(TraceLog, RendersActivityKind) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(12);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 0;
  ctx.seq = 0;
  log.emit(Kind::kActivity, 7, /*awake=*/0,
           static_cast<std::int64_t>(sim::WakeReason::kConverged));
  log.emit(Kind::kActivity, 7, /*awake=*/1,
           static_cast<std::int64_t>(sim::WakeReason::kDemand));
  log.commit_round();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"activity\",\"round\":12,\"pm\":7,\"awake\":false,"
            "\"reason\":\"converged\"}\n"
            "{\"ev\":\"activity\",\"round\":12,\"pm\":7,\"awake\":true,"
            "\"reason\":\"demand\"}\n");
}

TEST(TraceLog, RendersReservedFaultKind) {
  // No engine emit site yet (reserved for fault injection), but the wire
  // format is pinned so today's readers parse tomorrow's fault traces.
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(30);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 0;
  ctx.seq = 0;
  log.emit(Kind::kFault, 17, 3, 0, 0, 2.5);
  log.commit_round();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"fault\",\"round\":30,\"pm\":17,\"kind\":3,"
            "\"value\":2.5}\n");
}

TEST(TraceLog, RendersBufferedEventsInOrderKeyOrder) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(3);

  // Emit from two shards with order keys reversed relative to emit order.
  auto& ctx = exec::context();
  ctx.shard_slot = 2;
  ctx.order_key = 5;
  ctx.seq = 0;
  log.emit(Kind::kPower, 9, 1);
  ctx.shard_slot = 1;
  ctx.order_key = 1;
  ctx.seq = 0;
  log.emit(Kind::kMigration, 7, 2, 4, 0, 0.5, 125.0);
  log.commit_round();

  EXPECT_EQ(out.str(),
            "{\"ev\":\"migration\",\"round\":3,\"vm\":7,\"from\":2,\"to\":4,"
            "\"cpu\":0.5,\"energy_j\":125}\n"
            "{\"ev\":\"power\",\"round\":3,\"pm\":9,\"on\":true}\n");
}

TEST(TraceLog, SeqOrdersEventsWithinOneInteraction) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(0);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 4;
  ctx.seq = 0;
  log.emit(Kind::kPower, 1, 0);  // seq 0: off
  log.emit(Kind::kPower, 1, 1);  // seq 1: on
  log.commit_round();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"power\",\"round\":0,\"pm\":1,\"on\":false}\n"
            "{\"ev\":\"power\",\"round\":0,\"pm\":1,\"on\":true}\n");
}

TEST(TraceLog, CommitClearsBuffersBetweenRounds) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(1);
  exec::context().order_key = 0;
  exec::context().seq = 0;
  log.emit(Kind::kShuffle, 1, 2, 3, 4);
  log.commit_round();
  log.begin_round(2);
  log.commit_round();  // nothing new: no extra output
  EXPECT_EQ(out.str(),
            "{\"ev\":\"shuffle\",\"round\":1,\"initiator\":1,\"peer\":2,"
            "\"sent\":3,\"reply\":4}\n");
}

TEST(TraceLog, DriverDirectLines) {
  std::ostringstream out;
  TraceLog log(out);
  log.round_summary(12, 100, 3, 7, 450, 9000);
  log.qsim(12, 0.875);
  log.overload(12, 42, 0.96875);
  log.relearn(13);
  log.shard_bytes(13, {64, 0, 128});
  EXPECT_EQ(out.str(),
            "{\"ev\":\"round\",\"round\":12,\"active_pms\":100,"
            "\"overloaded_pms\":3,\"migrations\":7,\"messages\":450,"
            "\"bytes\":9000}\n"
            "{\"ev\":\"qsim\",\"round\":12,\"similarity\":0.875}\n"
            "{\"ev\":\"overload\",\"round\":12,\"pm\":42,\"cpu\":0.96875}\n"
            "{\"ev\":\"relearn\",\"round\":13}\n"
            "{\"ev\":\"shard_bytes\",\"round\":13,\"bytes\":[64,0,128]}\n");
}

}  // namespace
}  // namespace glap::trace
