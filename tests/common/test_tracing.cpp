// TraceLog: serial-order rendering of buffered interaction events and the
// JSONL shapes of the driver-direct lines.
#include "common/tracing.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/exec_context.hpp"
#include "common/trace_format.hpp"
#include "sim/node.hpp"

namespace glap::trace {
namespace {

struct ContextGuard {
  ContextGuard() : saved(exec::context()) {}
  ~ContextGuard() { exec::context() = saved; }
  exec::Context saved;
};

TEST(KindName, NamesAllKinds) {
  EXPECT_STREQ(kind_name(Kind::kMigration), "migration");
  EXPECT_STREQ(kind_name(Kind::kPower), "power");
  EXPECT_STREQ(kind_name(Kind::kShuffle), "shuffle");
  EXPECT_STREQ(kind_name(Kind::kOverload), "overload");
  EXPECT_STREQ(kind_name(Kind::kFault), "fault");
  EXPECT_STREQ(kind_name(Kind::kActivity), "activity");
}

// The activity reason codes are the numeric values of sim::WakeReason
// (the engine emits `static_cast<int64_t>(reason)`), so the two name
// tables must agree code for code.
TEST(ActivityReasonNames, PinnedToWakeReasonCodes) {
  for (std::int64_t code = 0; code <= 7; ++code)
    EXPECT_STREQ(activity_reason_name(code),
                 to_string(static_cast<sim::WakeReason>(code)))
        << "code " << code;
  EXPECT_STREQ(activity_reason_name(8), "?");
  EXPECT_STREQ(activity_reason_name(-1), "?");
}

TEST(TraceLog, RendersActivityKind) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(12);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 0;
  ctx.seq = 0;
  log.emit(Kind::kActivity, 7, /*awake=*/0,
           static_cast<std::int64_t>(sim::WakeReason::kConverged));
  log.emit(Kind::kActivity, 7, /*awake=*/1,
           static_cast<std::int64_t>(sim::WakeReason::kDemand));
  log.commit_round();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"activity\",\"round\":12,\"pm\":7,\"awake\":false,"
            "\"reason\":\"converged\"}\n"
            "{\"ev\":\"activity\",\"round\":12,\"pm\":7,\"awake\":true,"
            "\"reason\":\"demand\"}\n");
}

TEST(TraceLog, RendersReservedFaultKind) {
  // No engine emit site yet (reserved for fault injection), but the wire
  // format is pinned so today's readers parse tomorrow's fault traces.
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(30);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 0;
  ctx.seq = 0;
  log.emit(Kind::kFault, 17, 3, 0, 0, 2.5);
  log.commit_round();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"fault\",\"round\":30,\"pm\":17,\"kind\":3,"
            "\"value\":2.5}\n");
}

TEST(TraceLog, RendersBufferedEventsInOrderKeyOrder) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(3);

  // Emit from two shards with order keys reversed relative to emit order.
  auto& ctx = exec::context();
  ctx.shard_slot = 2;
  ctx.order_key = 5;
  ctx.seq = 0;
  log.emit(Kind::kPower, 9, 1);
  ctx.shard_slot = 1;
  ctx.order_key = 1;
  ctx.seq = 0;
  log.emit(Kind::kMigration, 7, 2, 4, 0, 0.5, 125.0);
  log.commit_round();

  EXPECT_EQ(out.str(),
            "{\"ev\":\"migration\",\"round\":3,\"vm\":7,\"from\":2,\"to\":4,"
            "\"cpu\":0.5,\"energy_j\":125}\n"
            "{\"ev\":\"power\",\"round\":3,\"pm\":9,\"on\":true}\n");
}

TEST(TraceLog, SeqOrdersEventsWithinOneInteraction) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(0);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 4;
  ctx.seq = 0;
  log.emit(Kind::kPower, 1, 0);  // seq 0: off
  log.emit(Kind::kPower, 1, 1);  // seq 1: on
  log.commit_round();
  EXPECT_EQ(out.str(),
            "{\"ev\":\"power\",\"round\":0,\"pm\":1,\"on\":false}\n"
            "{\"ev\":\"power\",\"round\":0,\"pm\":1,\"on\":true}\n");
}

TEST(TraceLog, CommitClearsBuffersBetweenRounds) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(1);
  exec::context().order_key = 0;
  exec::context().seq = 0;
  log.emit(Kind::kShuffle, 1, 2, 3, 4);
  log.commit_round();
  log.begin_round(2);
  log.commit_round();  // nothing new: no extra output
  EXPECT_EQ(out.str(),
            "{\"ev\":\"shuffle\",\"round\":1,\"initiator\":1,\"peer\":2,"
            "\"sent\":3,\"reply\":4}\n");
}

TEST(TraceLog, DriverDirectLines) {
  std::ostringstream out;
  TraceLog log(out);
  log.round_summary(12, 100, 3, 7, 450, 9000);
  log.qsim(12, 0.875);
  log.overload(12, 42, 0.96875);
  log.relearn(13);
  log.shard_bytes(13, {64, 0, 128});
  EXPECT_EQ(out.str(),
            "{\"ev\":\"round\",\"round\":12,\"active_pms\":100,"
            "\"overloaded_pms\":3,\"migrations\":7,\"messages\":450,"
            "\"bytes\":9000}\n"
            "{\"ev\":\"qsim\",\"round\":12,\"similarity\":0.875}\n"
            "{\"ev\":\"overload\",\"round\":12,\"pm\":42,\"cpu\":0.96875}\n"
            "{\"ev\":\"relearn\",\"round\":13}\n"
            "{\"ev\":\"shard_bytes\",\"round\":13,\"bytes\":[64,0,128]}\n");
}

// ---- GTB output ---------------------------------------------------------

TEST(TraceLogGtb, StreamOpensWithTheVersionedHeader) {
  std::ostringstream out;
  TraceLog log(&out, Format::kGtb);
  const std::string bytes = out.str();
  std::string header;
  append_gtb_header(&header);
  EXPECT_EQ(bytes, header);
}

TEST(TraceLogGtb, EncodesTheSameEventsAsJsonl) {
  // One buffered event of each interaction kind plus every driver line,
  // written through both formats; the decoded event streams must agree
  // field for field.
  const auto write_all = [](TraceLog* log) {
    ContextGuard guard;
    log->begin_round(4);
    auto& ctx = exec::context();
    ctx.shard_slot = 1;
    ctx.order_key = 0;
    ctx.seq = 0;
    log->emit(Kind::kMigration, 7, 2, 4, 0, 0.5, 125.0);
    log->emit(Kind::kPower, 9, 1);
    log->emit(Kind::kShuffle, 1, 2, 3, 4);
    log->emit(Kind::kActivity, 7, 0,
              static_cast<std::int64_t>(sim::WakeReason::kConverged));
    log->emit(Kind::kNet, 0, 3, 8, 101, 512.0, 1.0);   // send
    log->emit(Kind::kNet, 1, 3, 8, 101, 2.0);          // deliver
    log->commit_round();
    log->round_summary(4, 100, 3, 7, 450, 9000);
    log->qsim(4, 0.875);
    log->overload(4, 42, 0.96875);
    log->relearn(5);
    log->net_queue(5, "uplink", 3, 65536);
    log->shard_bytes(5, {64, 0, 128});
  };

  std::ostringstream jsonl_out, gtb_out;
  TraceLog jsonl_log(&jsonl_out, Format::kJsonl);
  TraceLog gtb_log(&gtb_out, Format::kGtb);
  write_all(&jsonl_log);
  write_all(&gtb_log);

  const auto decode = [](const std::string& bytes) {
    std::istringstream in(bytes);
    TraceReader reader(in);
    std::vector<TraceEvent> events;
    TraceEvent e;
    std::string error;
    while (reader.next(&e, &error) == TraceReader::Status::kEvent)
      events.push_back(e);
    EXPECT_TRUE(error.empty()) << error;
    return events;
  };
  const std::vector<TraceEvent> a = decode(jsonl_out.str());
  const std::vector<TraceEvent> b = decode(gtb_out.str());

  // GTB spends a fraction of the JSONL bytes on the same stream.
  EXPECT_LT(gtb_out.str().size(), jsonl_out.str().size());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].round, b[i].round) << i;
    std::string left, right;
    render_jsonl(a[i], &left);
    render_jsonl(b[i], &right);
    EXPECT_EQ(left, right) << i;
  }
}

// ---- deterministic sampling ---------------------------------------------

/// Emits `count` shuffles and `count` three-op net message lifecycles in
/// one round and returns the rendered trace.
std::string sampled_trace(const SamplingPolicy& sampling, int count,
                          bool reverse_order = false) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(&out, Format::kJsonl, sampling);
  log.begin_round(1);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  for (int i = 0; i < count; ++i) {
    const int id = reverse_order ? count - 1 - i : i;
    ctx.order_key = static_cast<std::uint64_t>(id);
    ctx.seq = 0;
    log.emit(Kind::kShuffle, id, id + 1, 3, 3);
    log.emit(Kind::kNet, 0, id, id + 1, id, 80.0, 0.0);  // send
    log.emit(Kind::kNet, 1, id, id + 1, id, 0.0);        // deliver
  }
  log.commit_round();
  log.round_summary(1, 8, 0, 0, 0, 0);
  return out.str();
}

TEST(TraceSampling, KeepEverythingIsTheDefault) {
  const std::string full = sampled_trace({}, 16);
  int shuffles = 0, nets = 0;
  std::istringstream lines(full);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"ev\":\"shuffle\"", 0) == 0) ++shuffles;
    if (line.rfind("{\"ev\":\"net\"", 0) == 0) ++nets;
  }
  EXPECT_EQ(shuffles, 16);
  EXPECT_EQ(nets, 32);
}

TEST(TraceSampling, KeepZeroDropsSampledKindsButNeverDriverLines) {
  SamplingPolicy sampling;
  sampling.shuffle_keep = 0.0;
  sampling.net_keep = 0.0;
  sampling.seed = 42;
  const std::string trace = sampled_trace(sampling, 16);
  EXPECT_EQ(trace.find("\"ev\":\"shuffle\""), std::string::npos);
  EXPECT_EQ(trace.find("\"ev\":\"net\""), std::string::npos);
  // The driver summary is never sampled out.
  EXPECT_NE(trace.find("\"ev\":\"round\""), std::string::npos);
}

TEST(TraceSampling, DecisionsAreIndependentOfEmitOrder) {
  SamplingPolicy sampling;
  sampling.shuffle_keep = 0.5;
  sampling.net_keep = 0.5;
  sampling.seed = 42;
  // Reversing the emit order must not change which events survive: the
  // keep decision is a pure hash of (seed, ids), not an RNG stream.
  EXPECT_EQ(sampled_trace(sampling, 64), sampled_trace(sampling, 64, true));
}

TEST(TraceSampling, AllOpsOfOneMessageShareTheKeepDecision) {
  SamplingPolicy sampling;
  sampling.net_keep = 0.5;
  sampling.seed = 7;
  const std::string trace = sampled_trace(sampling, 64);
  // Sends and delivers carry the same msg ids, so a surviving send is
  // always paired with its deliver — the net-* invariants stay checkable.
  std::istringstream lines(trace);
  std::string line;
  int sends = 0, delivers = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"ev\":\"net\"", 0) != 0) continue;
    if (line.find("\"op\":\"send\"") != std::string::npos) ++sends;
    if (line.find("\"op\":\"deliver\"") != std::string::npos) ++delivers;
  }
  EXPECT_GT(sends, 0) << "0.5 keep sampled everything out of 64 messages";
  EXPECT_LT(sends, 64) << "0.5 keep sampled nothing out of 64 messages";
  EXPECT_EQ(sends, delivers);
}

TEST(TraceSampling, SeedSelectsADifferentSubset) {
  SamplingPolicy a;
  a.shuffle_keep = 0.5;
  a.seed = 1;
  SamplingPolicy b = a;
  b.seed = 2;
  EXPECT_NE(sampled_trace(a, 128), sampled_trace(b, 128));
}

TEST(TraceSampling, RejectsOutOfRangeProbabilities) {
  std::ostringstream out;
  SamplingPolicy bad;
  bad.net_keep = 1.5;
  EXPECT_THROW((TraceLog(&out, Format::kJsonl, bad)), precondition_error);
}

}  // namespace
}  // namespace glap::trace
