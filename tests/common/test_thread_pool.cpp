#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace glap {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i)
    pool.submit([&] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++done; });
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(200);
  parallel_for(pool, 200, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::logic_error("bad");
                            }),
               std::logic_error);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace glap
