#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/resources.hpp"
#include "common/table.hpp"

namespace glap {
namespace {

TEST(Resources, Arithmetic) {
  Resources a{1.0, 2.0};
  Resources b{0.5, 0.25};
  EXPECT_EQ(a + b, (Resources{1.5, 2.25}));
  EXPECT_EQ(a - b, (Resources{0.5, 1.75}));
  EXPECT_EQ(a * 2.0, (Resources{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Resources{2.0, 4.0}));
}

TEST(Resources, CompoundOps) {
  Resources a{1.0, 1.0};
  a += {2.0, 3.0};
  EXPECT_EQ(a, (Resources{3.0, 4.0}));
  a -= {1.0, 1.0};
  EXPECT_EQ(a, (Resources{2.0, 3.0}));
  a *= 0.5;
  EXPECT_EQ(a, (Resources{1.0, 1.5}));
}

TEST(Resources, DividedBy) {
  const Resources usage{1330.0, 2048.0};
  const Resources cap{2660.0, 4096.0};
  const Resources u = usage.divided_by(cap);
  EXPECT_DOUBLE_EQ(u.cpu, 0.5);
  EXPECT_DOUBLE_EQ(u.mem, 0.5);
}

TEST(Resources, DividedByZeroCapacityIsZero) {
  const Resources u = Resources{1.0, 1.0}.divided_by({0.0, 0.0});
  EXPECT_EQ(u.cpu, 0.0);
  EXPECT_EQ(u.mem, 0.0);
}

TEST(Resources, ScaledBy) {
  const Resources frac{0.5, 0.25};
  const Resources cap{500.0, 613.0};
  const Resources usage = frac.scaled_by(cap);
  EXPECT_DOUBLE_EQ(usage.cpu, 250.0);
  EXPECT_DOUBLE_EQ(usage.mem, 153.25);
}

TEST(Resources, FitsWithin) {
  EXPECT_TRUE((Resources{1.0, 1.0}).fits_within({1.0, 1.0}));
  EXPECT_FALSE((Resources{1.1, 1.0}).fits_within({1.0, 1.0}));
  EXPECT_FALSE((Resources{1.0, 1.1}).fits_within({1.0, 1.0}));
}

TEST(Resources, Aggregates) {
  const Resources r{0.3, 0.7};
  EXPECT_DOUBLE_EQ(r.max_component(), 0.7);
  EXPECT_DOUBLE_EQ(r.sum(), 1.0);
  EXPECT_DOUBLE_EQ(r.average(), 0.5);
}

TEST(Resources, Clamped) {
  const Resources r{-0.5, 1.5};
  const Resources c = r.clamped(0.0, 1.0);
  EXPECT_EQ(c, (Resources{0.0, 1.0}));
}

TEST(Resources, NonNegative) {
  EXPECT_TRUE((Resources{0.0, 0.0}).non_negative());
  EXPECT_FALSE((Resources{-0.1, 0.0}).non_negative());
}

TEST(ConsoleTable, RendersAlignedColumns) {
  ConsoleTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConsoleTable, RowWidthMismatchThrows) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(ConsoleTable, EmptyHeaderThrows) {
  EXPECT_THROW(ConsoleTable({}), precondition_error);
}

TEST(ConsoleTable, ValueRowFormatting) {
  ConsoleTable t({"label", "v1", "v2"});
  t.add_row_values("row", {1.23456, 7.0}, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_compact(0.000123), "0.000123");
}

}  // namespace
}  // namespace glap
