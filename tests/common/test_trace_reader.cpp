// trace_reader: every line TraceLog can emit parses back field-exact, and
// malformed lines come back as errors, never crashes.
#include "common/trace_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/exec_context.hpp"
#include "common/trace_format.hpp"
#include "common/tracing.hpp"

namespace glap::trace {
namespace {

struct ContextGuard {
  ContextGuard() : saved(exec::context()) {}
  ~ContextGuard() { exec::context() = saved; }
  exec::Context saved;
};

/// Renders one buffered event through TraceLog and parses it back.
TraceEvent round_trip_buffered(Kind kind, std::int64_t a, std::int64_t b,
                               std::int64_t c, std::int64_t d, double x,
                               double y, std::uint64_t round) {
  ContextGuard guard;
  std::ostringstream out;
  TraceLog log(out);
  log.begin_round(round);
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 0;
  ctx.seq = 0;
  log.emit(kind, a, b, c, d, x, y);
  log.commit_round();

  TraceEvent event;
  std::string error;
  const std::string line =
      out.str().substr(0, out.str().size() - 1);  // strip '\n'
  EXPECT_TRUE(parse_trace_line(line, &event, &error)) << line << ": " << error;
  EXPECT_EQ(event.round, round);
  return event;
}

TEST(EventKindNames, RoundTripAllKinds) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EventKind back;
    ASSERT_TRUE(event_kind_from_name(event_kind_name(kind), &back))
        << event_kind_name(kind);
    EXPECT_EQ(back, kind);
  }
  EventKind unused;
  EXPECT_FALSE(event_kind_from_name("not_a_kind", &unused));
}

TEST(ParseTraceLine, MigrationFieldExact) {
  const TraceEvent e = round_trip_buffered(Kind::kMigration, 7, 2, 4, 0,
                                           0.6713679112345, 41.867145699, 3);
  ASSERT_EQ(e.kind, EventKind::kMigration);
  EXPECT_EQ(e.migration.vm, 7);
  EXPECT_EQ(e.migration.from, 2);
  EXPECT_EQ(e.migration.to, 4);
  EXPECT_EQ(e.migration.cpu, 0.6713679112345);
  EXPECT_EQ(e.migration.energy_j, 41.867145699);
}

TEST(ParseTraceLine, PowerFieldExact) {
  const TraceEvent on = round_trip_buffered(Kind::kPower, 9, 1, 0, 0, 0, 0, 5);
  ASSERT_EQ(on.kind, EventKind::kPower);
  EXPECT_EQ(on.power.pm, 9);
  EXPECT_TRUE(on.power.on);

  const TraceEvent off =
      round_trip_buffered(Kind::kPower, 11, 0, 0, 0, 0, 0, 5);
  EXPECT_EQ(off.power.pm, 11);
  EXPECT_FALSE(off.power.on);
}

TEST(ParseTraceLine, ShuffleFieldExact) {
  const TraceEvent e =
      round_trip_buffered(Kind::kShuffle, 1, 2, 8, 7, 0, 0, 12);
  ASSERT_EQ(e.kind, EventKind::kShuffle);
  EXPECT_EQ(e.shuffle.initiator, 1);
  EXPECT_EQ(e.shuffle.peer, 2);
  EXPECT_EQ(e.shuffle.sent, 8);
  EXPECT_EQ(e.shuffle.reply, 7);
}

TEST(ParseTraceLine, OverloadFieldExact) {
  const TraceEvent e =
      round_trip_buffered(Kind::kOverload, 42, 0, 0, 0, 0.96875, 0, 12);
  ASSERT_EQ(e.kind, EventKind::kOverload);
  EXPECT_EQ(e.overload.pm, 42);
  EXPECT_EQ(e.overload.cpu, 0.96875);
}

TEST(ParseTraceLine, FaultFieldExact) {
  // Reserved kind: no engine emit site yet, but the wire format is pinned.
  const TraceEvent e =
      round_trip_buffered(Kind::kFault, 17, 3, 0, 0, 2.5, 0, 30);
  ASSERT_EQ(e.kind, EventKind::kFault);
  EXPECT_EQ(e.fault.pm, 17);
  EXPECT_EQ(e.fault.code, 3);
  EXPECT_EQ(e.fault.value, 2.5);
}

TEST(ParseTraceLine, ActivityFieldExact) {
  const TraceEvent parked =
      round_trip_buffered(Kind::kActivity, 4, 0, 0, 0, 0, 0, 9);
  ASSERT_EQ(parked.kind, EventKind::kActivity);
  EXPECT_EQ(parked.activity.pm, 4);
  EXPECT_FALSE(parked.activity.awake);
  EXPECT_EQ(parked.activity.reason, "converged");

  const TraceEvent woke =
      round_trip_buffered(Kind::kActivity, 4, 1, 2, 0, 0, 0, 9);
  EXPECT_TRUE(woke.activity.awake);
  EXPECT_EQ(woke.activity.reason, "demand");
}

TEST(ParseTraceLine, NetFieldExact) {
  // op codes: 0 send, 1 deliver, anything else drop (reason in x).
  const TraceEvent send =
      round_trip_buffered(Kind::kNet, 0, 5, 37, 123, 256.0, 2.0, 14);
  ASSERT_EQ(send.kind, EventKind::kNet);
  EXPECT_EQ(send.net.op, "send");
  EXPECT_EQ(send.net.src, 5);
  EXPECT_EQ(send.net.dst, 37);
  EXPECT_EQ(send.net.msg, 123);
  EXPECT_EQ(send.net.bytes, 256);
  EXPECT_EQ(send.net.channel, "aggregation");

  const TraceEvent deliver =
      round_trip_buffered(Kind::kNet, 1, 5, 37, 123, 3.0, 0.0, 17);
  EXPECT_EQ(deliver.net.op, "deliver");
  EXPECT_EQ(deliver.net.msg, 123);
  EXPECT_EQ(deliver.net.delay, 3);

  const TraceEvent loss =
      round_trip_buffered(Kind::kNet, 2, 5, 37, 124, 1.0, 0.0, 14);
  EXPECT_EQ(loss.net.op, "drop");
  EXPECT_EQ(loss.net.reason, "loss");
  const TraceEvent congestion =
      round_trip_buffered(Kind::kNet, 2, 5, 37, 125, 2.0, 0.0, 14);
  EXPECT_EQ(congestion.net.reason, "congestion");
}

TEST(ParseTraceLine, NetQueueDirectLineFieldExact) {
  std::ostringstream out;
  TraceLog log(out);
  log.net_queue(21, "uplink", 3, 65536);

  TraceEvent e;
  std::string error;
  const std::string line = out.str().substr(0, out.str().size() - 1);
  ASSERT_TRUE(parse_trace_line(line, &e, &error)) << line << ": " << error;
  ASSERT_EQ(e.kind, EventKind::kNet);
  EXPECT_EQ(e.round, 21u);
  EXPECT_EQ(e.net.op, "queue");
  EXPECT_EQ(e.net.link, "uplink");
  EXPECT_EQ(e.net.link_id, 3);
  EXPECT_EQ(e.net.bytes, 65536);
}

TEST(ParseTraceLine, UnknownNetOpIsAnError) {
  TraceEvent e;
  std::string error;
  EXPECT_FALSE(parse_trace_line(
      R"({"ev":"net","round":1,"op":"teleport","src":0,"dst":1,"msg":9})", &e,
      &error));
  EXPECT_NE(error.find("net op"), std::string::npos) << error;
}

TEST(ParseTraceLine, DriverDirectLinesFieldExact) {
  std::ostringstream out;
  TraceLog log(out);
  log.round_summary(12, 100, 3, 7, 450, 9000);
  log.qsim(12, 0.875);
  log.overload(12, 42, 0.96875);
  log.relearn(13);
  log.shard_bytes(13, {64, 0, 128});

  std::istringstream in(out.str());
  TraceReader reader(in);
  TraceEvent e;
  std::string error;

  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  ASSERT_EQ(e.kind, EventKind::kRound);
  EXPECT_EQ(e.round, 12u);
  EXPECT_EQ(e.summary.active_pms, 100u);
  EXPECT_EQ(e.summary.overloaded_pms, 3u);
  EXPECT_EQ(e.summary.migrations, 7u);
  EXPECT_EQ(e.summary.messages, 450u);
  EXPECT_EQ(e.summary.bytes, 9000u);

  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  ASSERT_EQ(e.kind, EventKind::kQsim);
  EXPECT_EQ(e.qsim.similarity, 0.875);

  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  ASSERT_EQ(e.kind, EventKind::kOverload);
  EXPECT_EQ(e.overload.pm, 42);
  EXPECT_EQ(e.overload.cpu, 0.96875);

  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  ASSERT_EQ(e.kind, EventKind::kRelearn);
  EXPECT_EQ(e.round, 13u);

  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  ASSERT_EQ(e.kind, EventKind::kShardBytes);
  ASSERT_EQ(e.shard_bytes.size(), 3u);
  EXPECT_EQ(e.shard_bytes[0], 64u);
  EXPECT_EQ(e.shard_bytes[1], 0u);
  EXPECT_EQ(e.shard_bytes[2], 128u);

  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kEof);
  EXPECT_EQ(reader.line_number(), 5u);
}

TEST(ParseTraceLine, ExtremeNumbersSurviveTheRoundTrip) {
  // json_double's shortest-round-trip rendering must parse back exactly.
  // (Subnormals are excluded: strtod flags them ERANGE and the reader
  // rejects out-of-range values; the simulator never produces them.)
  const double values[] = {1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                           123456789.123456789};
  for (double v : values) {
    const TraceEvent e =
        round_trip_buffered(Kind::kOverload, 1, 0, 0, 0, v, 0, 1);
    EXPECT_EQ(e.overload.cpu, v);
  }
}

TEST(ParseTraceLine, MalformedLinesReturnErrorsNotCrashes) {
  const char* cases[] = {
      "",                                               // empty
      "not json",                                       // not an object
      "{",                                              // truncated
      "{\"ev\":\"migration\"",                          // unterminated
      "{\"ev\":\"migration\"}",                         // missing fields
      "{\"ev\":\"warp\",\"round\":1}",                  // unknown kind
      "{\"round\":1}",                                  // no ev
      "{\"ev\":7,\"round\":1}",                         // ev not a string
      "{\"ev\":\"power\",\"round\":1,\"pm\":2}",        // missing 'on'
      "{\"ev\":\"power\",\"round\":1,\"pm\":2,\"on\":5,}",   // trailing comma
      "{\"ev\":\"power\",\"round\":1,\"pm\":2,\"on\":true}x",  // tail bytes
      "{\"ev\":\"power\",\"round\":-1,\"pm\":2,\"on\":true}",  // negative u64
      "{\"ev\":\"overload\",\"round\":1,\"pm\":2,\"cpu\":}",   // empty value
      "{\"ev\":\"overload\",\"round\":1,\"pm\":2,\"cpu\":nan}",
      "{\"ev\":\"shard_bytes\",\"round\":1,\"bytes\":[1,}",    // bad array
      "{\"ev\":\"shard_bytes\",\"round\":1,\"bytes\":7}",      // not an array
      "{\"ev\":\"round\",\"round\":1,\"active_pms\":1e99999}",  // overflow
      "{\"ev\":\"migration\",\"round\":1,\"vm\":\"x\",\"from\":1,\"to\":2,"
      "\"cpu\":1,\"energy_j\":1}",  // string where number expected
  };
  for (const char* line : cases) {
    TraceEvent event;
    std::string error;
    EXPECT_FALSE(parse_trace_line(line, &event, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(ParseTraceLine, TruncationFuzzNeverCrashes) {
  const std::string full =
      "{\"ev\":\"migration\",\"round\":3,\"vm\":7,\"from\":2,\"to\":4,"
      "\"cpu\":0.5,\"energy_j\":125}";
  for (std::size_t len = 0; len < full.size(); ++len) {
    TraceEvent event;
    std::string error;
    EXPECT_FALSE(parse_trace_line(full.substr(0, len), &event, &error))
        << "prefix length " << len;
  }
  TraceEvent event;
  EXPECT_TRUE(parse_trace_line(full, &event, nullptr));
}

TEST(TraceReader, SkipsBlankLinesAndReportsLineNumbers) {
  std::istringstream in(
      "\n{\"ev\":\"relearn\",\"round\":1}\n\n{\"ev\":\"bogus\"}\n");
  TraceReader reader(in);
  TraceEvent e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  EXPECT_EQ(e.kind, EventKind::kRelearn);
  EXPECT_EQ(reader.line_number(), 2u);
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kError);
  EXPECT_EQ(reader.line_number(), 4u);
}

/// A two-record GTB stream: header + relearn(1) + power(2, pm 9, on).
std::string small_gtb_stream() {
  std::string bytes;
  append_gtb_header(&bytes);
  TraceEvent e;
  e.kind = EventKind::kRelearn;
  e.round = 1;
  EXPECT_TRUE(append_gtb_record(e, &bytes, nullptr));
  e.kind = EventKind::kPower;
  e.round = 2;
  e.power = {9, true};
  EXPECT_TRUE(append_gtb_record(e, &bytes, nullptr));
  return bytes;
}

TEST(TraceReader, AutoDetectsGtbAndCountsRecords) {
  std::istringstream in(small_gtb_stream());
  TraceReader reader(in);
  TraceEvent e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  EXPECT_TRUE(reader.binary());
  EXPECT_EQ(e.kind, EventKind::kRelearn);
  EXPECT_EQ(reader.line_number(), 1u);
  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  EXPECT_EQ(e.kind, EventKind::kPower);
  EXPECT_EQ(e.power.pm, 9);
  EXPECT_EQ(reader.line_number(), 2u);
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kEof);
}

TEST(TraceReader, TruncatedGtbYieldsParsedPrefixThenTruncatedOnce) {
  const std::string full = small_gtb_stream();
  // Cut anywhere inside the second record (length prefix or payload):
  // the first record must still parse, then exactly one kTruncated.
  std::size_t second_record = kGtbHeaderBytes;
  {
    std::istringstream probe(full);
    probe.seekg(static_cast<std::streamoff>(kGtbHeaderBytes));
    char len_bytes[4] = {};
    probe.read(len_bytes, 4);
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(len_bytes[i]))
             << (8 * i);
    second_record += 4 + len;
  }
  for (std::size_t cut = second_record + 1; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    TraceReader reader(in);
    TraceEvent e;
    std::string error;
    ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent)
        << "cut " << cut << ": " << error;
    EXPECT_EQ(e.kind, EventKind::kRelearn);
    EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kTruncated)
        << "cut " << cut;
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kEof)
        << "cut " << cut;
  }
}

TEST(TraceReader, TruncatedGtbHeaderIsReportedNotParsed) {
  std::istringstream in("GTB");
  TraceReader reader(in);
  TraceEvent e;
  std::string error;
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kTruncated);
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(TraceReader, BadGtbMagicOrVersionIsAnError) {
  std::istringstream bad_magic(std::string("GTBX\x01\x00\x00\x00", 8));
  TraceReader r1(bad_magic);
  TraceEvent e;
  std::string error;
  EXPECT_EQ(r1.next(&e, &error), TraceReader::Status::kError);

  std::istringstream bad_version(std::string("GTB0\x09\x00\x00\x00", 8));
  TraceReader r2(bad_version);
  EXPECT_EQ(r2.next(&e, &error), TraceReader::Status::kError);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TraceReader, CorruptGtbLengthPrefixIsAnErrorNotTruncation) {
  std::string bytes;
  append_gtb_header(&bytes);
  // A length of 3 can never hold the kind byte plus the round number.
  bytes += std::string("\x03\x00\x00\x00", 4) + "abc";
  std::istringstream in(bytes);
  TraceReader reader(in);
  TraceEvent e;
  std::string error;
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kError);
  EXPECT_NE(error.find("length prefix"), std::string::npos) << error;
}

TEST(TraceReader, TruncatedJsonlYieldsParsedPrefixThenTruncatedOnce) {
  // The final line is cut mid-record and has no trailing newline.
  std::istringstream in(
      "{\"ev\":\"relearn\",\"round\":1}\n{\"ev\":\"relearn\",\"rou");
  TraceReader reader(in);
  TraceEvent e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), TraceReader::Status::kEvent) << error;
  EXPECT_FALSE(reader.binary());
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kTruncated);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kEof);
}

TEST(TraceReader, MalformedJsonlMidFileIsStillAnError) {
  // A bad line followed by more data is corruption, not truncation.
  std::istringstream in("{\"ev\":\"bogus\"}\n{\"ev\":\"relearn\",\"round\":1}\n");
  TraceReader reader(in);
  TraceEvent e;
  std::string error;
  EXPECT_EQ(reader.next(&e, &error), TraceReader::Status::kError);
}

TEST(ParseTraceLine, IgnoresUnknownKeys) {
  TraceEvent e;
  std::string error;
  ASSERT_TRUE(parse_trace_line(
      "{\"ev\":\"power\",\"round\":1,\"pm\":2,\"on\":true,\"extra\":9}", &e,
      &error))
      << error;
  EXPECT_EQ(e.power.pm, 2);
}

}  // namespace
}  // namespace glap::trace
