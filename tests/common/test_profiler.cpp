// PhaseProfiler: per-shard accumulation, quiescent-point merging, and the
// deterministic-vs-wall-clock split of the reported totals.
#include "common/profiler.hpp"

#include <gtest/gtest.h>

#include "common/exec_context.hpp"

namespace glap::prof {
namespace {

struct ContextGuard {
  ContextGuard() : saved(exec::context()) {}
  ~ContextGuard() { exec::context() = saved; }
  exec::Context saved;
};

const PhaseProfiler::PhaseTotals* find_phase(
    const std::vector<PhaseProfiler::PhaseTotals>& totals,
    std::size_t phase) {
  for (const auto& t : totals)
    if (t.phase == phase) return &t;
  return nullptr;
}

TEST(PhaseProfiler, BuiltinPhasesAlwaysReported) {
  const PhaseProfiler profiler;
  const auto totals = profiler.totals();
  const auto* select = find_phase(totals, PhaseProfiler::kSelect);
  const auto* commit = find_phase(totals, PhaseProfiler::kCommit);
  ASSERT_NE(select, nullptr);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(select->calls, 0u);
  EXPECT_EQ(select->label, "select");
  EXPECT_EQ(commit->label, "commit");
  // Uncalled slot phases stay out of the report.
  EXPECT_EQ(find_phase(totals, PhaseProfiler::kFirstSlot), nullptr);
}

TEST(PhaseProfiler, MergesAcrossShards) {
  ContextGuard guard;
  PhaseProfiler profiler;
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  profiler.record(PhaseProfiler::kFirstSlot, 100);
  ctx.shard_slot = 5;
  profiler.record(PhaseProfiler::kFirstSlot, 250);
  profiler.record(PhaseProfiler::kFirstSlot, 50);

  const auto totals = profiler.totals();
  const auto* slot = find_phase(totals, PhaseProfiler::kFirstSlot);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->calls, 3u);
  EXPECT_EQ(slot->wall_ns, 400u);
}

TEST(PhaseProfiler, OnlySelectIsNondeterministic) {
  ContextGuard guard;
  PhaseProfiler profiler;
  exec::context().shard_slot = 0;
  profiler.record(PhaseProfiler::kSelect, 1);
  profiler.record(PhaseProfiler::kCommit, 1);
  profiler.record(PhaseProfiler::kFirstSlot + 2, 1);
  const auto totals = profiler.totals();
  for (const auto& t : totals)
    EXPECT_EQ(t.deterministic, t.phase != PhaseProfiler::kSelect)
        << t.label;
}

TEST(PhaseProfiler, SetLabelRenamesSlotPhases) {
  ContextGuard guard;
  PhaseProfiler profiler;
  profiler.set_label(PhaseProfiler::kFirstSlot, "execute.learning");
  exec::context().shard_slot = 0;
  profiler.record(PhaseProfiler::kFirstSlot, 7);
  const auto totals = profiler.totals();
  const auto* slot = find_phase(totals, PhaseProfiler::kFirstSlot);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->label, "execute.learning");
}

TEST(PhaseProfiler, OutOfRangePhaseIsSilentlyDropped) {
  ContextGuard guard;
  PhaseProfiler profiler;
  exec::context().shard_slot = 0;
  profiler.record(PhaseProfiler::kMaxPhases, 99);
  profiler.record(PhaseProfiler::kMaxPhases + 7, 99);
  EXPECT_EQ(profiler.totals().size(), 2u);  // just select + commit
}

TEST(PhaseScope, NullProfilerIsANoop) {
  PhaseScope scope(nullptr, PhaseProfiler::kCommit);  // must not crash
}

TEST(PhaseScope, RecordsOneCallWithElapsedTime) {
  ContextGuard guard;
  PhaseProfiler profiler;
  exec::context().shard_slot = 2;
  {
    PhaseScope scope(&profiler, PhaseProfiler::kCommit);
  }
  const auto totals = profiler.totals();
  const auto* commit = find_phase(totals, PhaseProfiler::kCommit);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->calls, 1u);
}

}  // namespace
}  // namespace glap::prof
