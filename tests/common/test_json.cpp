// json_double round-tripping and JsonWriter formatting — the byte-level
// determinism the results files, metric snapshots and trace lines rely on.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace glap {
namespace {

double parse(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

TEST(JsonDouble, IntegersPrintWithoutExponentOrFraction) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(42.0), "42");
  EXPECT_EQ(json_double(-7.0), "-7");
  EXPECT_EQ(json_double(1e6), "1000000");
}

TEST(JsonDouble, RoundTripsExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           2.5,
                           -0.875,
                           3.141592653589793,
                           1e-9,
                           6.02214076e23,
                           123456.789,
                           std::nextafter(1.0, 2.0)};
  for (const double v : values) {
    const std::string s = json_double(v);
    EXPECT_EQ(parse(s), v) << s;
  }
}

TEST(JsonDouble, UsesShortestForm) {
  // 0.1 must not be dumped as its full 17-digit expansion.
  EXPECT_EQ(json_double(0.1), "0.1");
  EXPECT_EQ(json_double(2.5), "2.5");
}

TEST(JsonDouble, NegativeZeroKeepsSign) {
  EXPECT_EQ(json_double(-0.0), "-0");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, WritesPrettyPrintedObject) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.member("name", "glap");
  w.member("pi", 3.5);
  w.member("count", std::uint64_t{3});
  w.member("ok", true);
  w.key("list").begin_array();
  w.value(1).value(2);
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"name\": \"glap\",\n"
            "  \"pi\": 3.5,\n"
            "  \"count\": 3,\n"
            "  \"ok\": true,\n"
            "  \"list\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("a").begin_array().end_array();
  w.key("o").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"a\": [],\n"
            "  \"o\": {}\n"
            "}");
}

TEST(JsonWriter, SameValuesSameBytes) {
  auto render = [] {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    w.member("x", 0.30000000000000004);
    w.end_object();
    return out.str();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace glap
