#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace glap {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(7);
  Rng a = base.split(1);
  Rng b = base.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
  // Splitting is deterministic.
  Rng a2 = Rng(7).split(1);
  EXPECT_EQ(a2(), Rng(7).split(1)());
}

TEST(Rng, SplitByTagMatchesTagHash) {
  Rng base(7);
  Rng by_tag = base.split("workload");
  Rng by_id = base.split(hash_tag("workload"));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(by_tag(), by_id());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 2.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 2.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInBound) {
  Rng rng(13);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(19);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 80);
}

TEST(Rng, RangeInclusive) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng rng(41);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(43);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GammaMean) {
  Rng rng(47);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GammaSmallShapeMean) {
  Rng rng(53);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(Rng, BetaMeanAndBounds) {
  Rng rng(59);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.beta(2.0, 4.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0 / 6.0, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(67);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, PickIndexInRange) {
  Rng rng(71);
  std::vector<int> v(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.pick_index(v), v.size());
}

TEST(HashCombine, DeterministicAndSensitive) {
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
}

TEST(HashTag, DistinctTagsDistinctHashes) {
  EXPECT_EQ(hash_tag("abc"), hash_tag("abc"));
  EXPECT_NE(hash_tag("abc"), hash_tag("abd"));
  EXPECT_NE(hash_tag(""), hash_tag("a"));
}

}  // namespace
}  // namespace glap
