#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace glap {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100.0), 42.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, RejectsOutOfRangeQ) {
  EXPECT_THROW(percentile({1.0}, -1.0), precondition_error);
  EXPECT_THROW(percentile({1.0}, 101.0), precondition_error);
}

TEST(Summarize, KnownSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 1e-12);
  EXPECT_NEAR(s.p10, 10.9, 1e-12);
  EXPECT_NEAR(s.p90, 90.1, 1e-12);
  EXPECT_NEAR(s.p95, 95.05, 1e-12);
  EXPECT_NEAR(s.p99, 99.01, 1e-12);
}

TEST(Summarize, Empty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(CosineSimilarity, IdenticalVectors) {
  EXPECT_DOUBLE_EQ(cosine_similarity({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(CosineSimilarity, ScaledVectorsAreIdentical) {
  EXPECT_NEAR(cosine_similarity({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(CosineSimilarity, OrthogonalVectors) {
  EXPECT_DOUBLE_EQ(cosine_similarity({1, 0}, {0, 1}), 0.0);
}

TEST(CosineSimilarity, OppositeVectors) {
  EXPECT_DOUBLE_EQ(cosine_similarity({1, 0}, {-1, 0}), -1.0);
}

TEST(CosineSimilarity, ZeroVectorConventions) {
  EXPECT_DOUBLE_EQ(cosine_similarity({0, 0}, {0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity({0, 0}, {1, 0}), 0.0);
}

TEST(CosineSimilarity, LengthMismatchThrows) {
  EXPECT_THROW(cosine_similarity({1.0}, {1.0, 2.0}), precondition_error);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.3);
  h.add(0.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);
}

}  // namespace
}  // namespace glap
