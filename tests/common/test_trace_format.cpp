// GTB wire format (DESIGN.md §10.6): per-kind encode/decode round-trips,
// the versioned header, the name/code tables, and the strict rejection of
// corrupt records. render_jsonl is pinned against parse_trace_line so the
// two encodings stay interchangeable carriers of the same event stream.
#include "common/trace_format.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/trace_reader.hpp"

namespace glap::trace {
namespace {

/// Encodes `e` as one GTB record and decodes it back.
TraceEvent gtb_round_trip(const TraceEvent& e) {
  std::string bytes;
  std::string error;
  EXPECT_TRUE(append_gtb_record(e, &bytes, &error)) << error;
  EXPECT_GE(bytes.size(), 4u + 9u);
  // Length prefix covers exactly the payload that follows.
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
           << (8 * i);
  EXPECT_EQ(len, bytes.size() - 4);
  TraceEvent out;
  EXPECT_TRUE(decode_gtb_payload(
      std::string_view(bytes).substr(4), &out, &error))
      << error;
  return out;
}

/// JSONL round-trip through the line renderer and the line parser.
TraceEvent jsonl_round_trip(const TraceEvent& e) {
  std::string line;
  render_jsonl(e, &line);
  EXPECT_FALSE(line.empty()) << "render_jsonl produced nothing";
  EXPECT_EQ(line.back(), '\n');
  TraceEvent out;
  std::string error;
  EXPECT_TRUE(parse_trace_line(
      std::string_view(line).substr(0, line.size() - 1), &out, &error))
      << line << ": " << error;
  return out;
}

TEST(GtbHeader, EightVersionedMagicBytes) {
  std::string header;
  append_gtb_header(&header);
  ASSERT_EQ(header.size(), kGtbHeaderBytes);
  EXPECT_EQ(std::memcmp(header.data(), kGtbMagic, sizeof kGtbMagic), 0);
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i)
    version |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(header[4 + i]))
               << (8 * i);
  EXPECT_EQ(version, kGtbVersion);
}

TEST(GtbRoundTrip, Migration) {
  TraceEvent e;
  e.kind = EventKind::kMigration;
  e.round = 41;
  e.migration = {7, 2, 4, 0.59375, 125.5};
  const TraceEvent r = gtb_round_trip(e);
  ASSERT_EQ(r.kind, EventKind::kMigration);
  EXPECT_EQ(r.round, 41u);
  EXPECT_EQ(r.migration.vm, 7);
  EXPECT_EQ(r.migration.from, 2);
  EXPECT_EQ(r.migration.to, 4);
  EXPECT_EQ(r.migration.cpu, 0.59375);
  EXPECT_EQ(r.migration.energy_j, 125.5);
}

TEST(GtbRoundTrip, PowerBothPolarities) {
  TraceEvent e;
  e.kind = EventKind::kPower;
  e.round = 3;
  e.power = {19, true};
  EXPECT_TRUE(gtb_round_trip(e).power.on);
  e.power.on = false;
  const TraceEvent r = gtb_round_trip(e);
  EXPECT_EQ(r.power.pm, 19);
  EXPECT_FALSE(r.power.on);
}

TEST(GtbRoundTrip, Shuffle) {
  TraceEvent e;
  e.kind = EventKind::kShuffle;
  e.round = 9;
  e.shuffle = {1, 2, 3, 4};
  const TraceEvent r = gtb_round_trip(e);
  EXPECT_EQ(r.shuffle.initiator, 1);
  EXPECT_EQ(r.shuffle.peer, 2);
  EXPECT_EQ(r.shuffle.sent, 3);
  EXPECT_EQ(r.shuffle.reply, 4);
}

TEST(GtbRoundTrip, OverloadAndFaultAndQsim) {
  TraceEvent e;
  e.kind = EventKind::kOverload;
  e.round = 12;
  e.overload = {42, 0.96875};
  EXPECT_EQ(gtb_round_trip(e).overload.cpu, 0.96875);

  e.kind = EventKind::kFault;
  e.fault = {17, 3, 2.5};
  const TraceEvent f = gtb_round_trip(e);
  EXPECT_EQ(f.fault.pm, 17);
  EXPECT_EQ(f.fault.code, 3);
  EXPECT_EQ(f.fault.value, 2.5);

  e.kind = EventKind::kQsim;
  e.qsim.similarity = -0.125;
  EXPECT_EQ(gtb_round_trip(e).qsim.similarity, -0.125);
}

TEST(GtbRoundTrip, ActivityCarriesReasonByCode) {
  TraceEvent e;
  e.kind = EventKind::kActivity;
  e.round = 6;
  e.activity.pm = 5;
  e.activity.awake = true;
  // Every code in the table survives; the decoder restores the name.
  for (const char* reason : {"converged", "gossip", "demand", "migration",
                             "status", "schedule", "relearn", "network"}) {
    e.activity.reason = reason;
    EXPECT_EQ(gtb_round_trip(e).activity.reason, reason);
  }
}

TEST(GtbRoundTrip, NetAllFourOps) {
  TraceEvent e;
  e.kind = EventKind::kNet;
  e.round = 20;
  e.net.op = "send";
  e.net.src = 3;
  e.net.dst = 8;
  e.net.msg = 101;
  e.net.bytes = 512;
  e.net.channel = "learning";
  const TraceEvent s = gtb_round_trip(e);
  EXPECT_EQ(s.net.op, "send");
  EXPECT_EQ(s.net.bytes, 512);
  EXPECT_EQ(s.net.channel, "learning");

  e.net = {};
  e.net.op = "deliver";
  e.net.src = 3;
  e.net.dst = 8;
  e.net.msg = 101;
  e.net.delay = 2;
  EXPECT_EQ(gtb_round_trip(e).net.delay, 2);

  e.net = {};
  e.net.op = "drop";
  e.net.src = 3;
  e.net.dst = 8;
  e.net.msg = 102;
  e.net.reason = "congestion";
  EXPECT_EQ(gtb_round_trip(e).net.reason, "congestion");

  e.net = {};
  e.net.op = "queue";
  e.net.link = "uplink";
  e.net.link_id = 3;
  e.net.bytes = 65536;
  const TraceEvent q = gtb_round_trip(e);
  EXPECT_EQ(q.net.link, "uplink");
  EXPECT_EQ(q.net.link_id, 3);
  EXPECT_EQ(q.net.bytes, 65536);
}

TEST(GtbRoundTrip, DriverSummaryRelearnShardBytes) {
  TraceEvent e;
  e.kind = EventKind::kRound;
  e.round = 12;
  e.summary = {100, 3, 7, 450, 9000};
  const TraceEvent s = gtb_round_trip(e);
  EXPECT_EQ(s.summary.active_pms, 100u);
  EXPECT_EQ(s.summary.bytes, 9000u);

  e.kind = EventKind::kRelearn;
  e.round = 13;
  EXPECT_EQ(gtb_round_trip(e).round, 13u);

  e.kind = EventKind::kShardBytes;
  e.shard_bytes = {64, 0, 128};
  const TraceEvent b = gtb_round_trip(e);
  ASSERT_EQ(b.shard_bytes.size(), 3u);
  EXPECT_EQ(b.shard_bytes[2], 128u);
}

TEST(GtbRoundTrip, ExtremeDoublesSurviveBitExactly) {
  // f64 travels as the raw IEEE-754 bit pattern — no text rendering.
  const double values[] = {1.0 / 3.0, 1e-300, 5e-324,
                           1.7976931348623157e308, -0.0};
  TraceEvent e;
  e.kind = EventKind::kQsim;
  for (const double v : values) {
    e.qsim.similarity = v;
    const TraceEvent r = gtb_round_trip(e);
    EXPECT_EQ(std::memcmp(&r.qsim.similarity, &v, sizeof v), 0) << v;
  }
}

TEST(RenderJsonl, AgreesWithLineParserForEveryKind) {
  TraceEvent e;
  e.kind = EventKind::kMigration;
  e.round = 3;
  e.migration = {7, 2, 4, 0.5, 125.0};
  EXPECT_EQ(jsonl_round_trip(e).migration.energy_j, 125.0);

  e.kind = EventKind::kActivity;
  e.activity.pm = 7;
  e.activity.awake = false;
  e.activity.reason = "converged";
  EXPECT_EQ(jsonl_round_trip(e).activity.reason, "converged");

  e.kind = EventKind::kNet;
  e.net.op = "send";
  e.net.src = 1;
  e.net.dst = 2;
  e.net.msg = 9;
  e.net.bytes = 80;
  e.net.channel = "shuffle";
  EXPECT_EQ(jsonl_round_trip(e).net.channel, "shuffle");

  e.kind = EventKind::kShardBytes;
  e.shard_bytes = {64, 0, 128};
  EXPECT_EQ(jsonl_round_trip(e).shard_bytes, e.shard_bytes);
}

TEST(GtbEncode, RejectsUnknownStringCodes) {
  TraceEvent e;
  e.kind = EventKind::kNet;
  e.net.op = "teleport";
  std::string bytes;
  std::string error;
  EXPECT_FALSE(append_gtb_record(e, &bytes, &error));
  EXPECT_FALSE(error.empty());
  // A failed encode must not leave a partial record behind.
  EXPECT_TRUE(bytes.empty());

  e.net.op = "drop";
  e.net.reason = "gremlins";
  error.clear();
  EXPECT_FALSE(append_gtb_record(e, &bytes, &error));
  EXPECT_TRUE(bytes.empty());
}

TEST(GtbDecode, RejectsCorruptPayloads) {
  // A valid record to mutate.
  TraceEvent e;
  e.kind = EventKind::kPower;
  e.round = 3;
  e.power = {19, true};
  std::string bytes;
  ASSERT_TRUE(append_gtb_record(e, &bytes, nullptr));
  const std::string payload = bytes.substr(4);

  TraceEvent out;
  std::string error;
  // Unknown kind byte.
  std::string bad = payload;
  bad[0] = static_cast<char>(0x7f);
  EXPECT_FALSE(decode_gtb_payload(bad, &out, &error));
  EXPECT_FALSE(error.empty());

  // Every strict prefix is short, never accepted.
  for (std::size_t len = 0; len < payload.size(); ++len) {
    error.clear();
    EXPECT_FALSE(
        decode_gtb_payload(std::string_view(payload).substr(0, len), &out,
                           &error))
        << "prefix length " << len;
  }

  // Trailing bytes are corruption, not ignorable padding.
  bad = payload + '\0';
  error.clear();
  EXPECT_FALSE(decode_gtb_payload(bad, &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(NameCodeTables, RoundTripEveryPinnedName) {
  std::int64_t code = -1;
  for (std::int64_t c = 0; c <= 5; ++c) {
    ASSERT_TRUE(net_channel_code(net_channel_name(c), &code));
    EXPECT_EQ(code, c);
  }
  for (std::int64_t c = 0; c <= 3; ++c) {
    ASSERT_TRUE(net_op_code(net_op_name(c), &code));
    EXPECT_EQ(code, c);
  }
  for (std::int64_t c = 0; c <= 1; ++c) {
    ASSERT_TRUE(net_link_code(net_link_name(c), &code));
    EXPECT_EQ(code, c);
  }
  for (std::int64_t c = 1; c <= 2; ++c) {
    ASSERT_TRUE(net_drop_reason_code(net_drop_reason_name(c), &code));
    EXPECT_EQ(code, c);
  }
  EXPECT_FALSE(net_op_code("teleport", &code));
  EXPECT_FALSE(net_channel_code("?", &code));
  EXPECT_FALSE(activity_reason_code("?", &code));
}

}  // namespace
}  // namespace glap::trace
