// MetricsRegistry semantics: sharded counters, ordered-histogram replay,
// name-sorted deterministic snapshots.
#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/exec_context.hpp"

namespace glap::metrics {
namespace {

/// Saves/restores the thread-local exec context so tests that fake shard
/// slots and order keys cannot leak state into other tests.
struct ContextGuard {
  ContextGuard() : saved(exec::context()) {}
  ~ContextGuard() { exec::context() = saved; }
  exec::Context saved;
};

TEST(Counter, SumsAcrossShards) {
  ContextGuard guard;
  Counter c;
  exec::context().shard_slot = 0;
  c.inc();
  exec::context().shard_slot = 5;
  c.inc(10);
  exec::context().shard_slot = exec::kShardCount - 1;
  c.inc(100);
  EXPECT_EQ(c.value(), 111u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(OrderedHistogram, ReplaysInSerialOrderRegardlessOfShard) {
  ContextGuard guard;

  // Reference: samples applied directly in serial interaction order.
  RunningStats reference;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) reference.add(v);

  // Same samples observed "out of order" from two different shards: the
  // shard-1 thread handles interactions 1 and 3, shard-2 handles 0 and 2,
  // and shard 2 happens to run first.
  OrderedHistogram h;
  auto& ctx = exec::context();
  ctx.shard_slot = 2;
  ctx.order_key = 0;
  ctx.seq = 0;
  h.observe(1.0);
  ctx.order_key = 2;
  ctx.seq = 0;
  h.observe(3.0);
  ctx.shard_slot = 1;
  ctx.order_key = 3;
  ctx.seq = 0;
  h.observe(4.0);
  ctx.order_key = 1;
  ctx.seq = 0;
  h.observe(2.0);
  h.commit_round();

  EXPECT_EQ(h.stats().count(), 4u);
  EXPECT_EQ(h.stats().mean(), reference.mean());
  EXPECT_EQ(h.stats().variance(), reference.variance());
  EXPECT_EQ(h.stats().min(), 1.0);
  EXPECT_EQ(h.stats().max(), 4.0);
}

TEST(OrderedHistogram, SeqBreaksTiesWithinOneInteraction) {
  ContextGuard guard;
  OrderedHistogram h;
  auto& ctx = exec::context();
  ctx.shard_slot = 1;
  ctx.order_key = 7;
  ctx.seq = 0;
  h.observe(10.0);  // seq 0
  h.observe(20.0);  // seq 1
  h.commit_round();

  RunningStats reference;
  reference.add(10.0);
  reference.add(20.0);
  EXPECT_EQ(h.stats().mean(), reference.mean());
  EXPECT_EQ(h.stats().variance(), reference.variance());
}

TEST(OrderedHistogram, ObserveNowAppliesImmediately) {
  OrderedHistogram h;
  h.observe_now(5.0);
  EXPECT_EQ(h.stats().count(), 1u);
  EXPECT_EQ(h.stats().mean(), 5.0);
  h.commit_round();  // nothing buffered; stats unchanged
  EXPECT_EQ(h.stats().count(), 1u);
}

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("y"), a);
  EXPECT_EQ(reg.gauge("x"), reg.gauge("x"));
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  EXPECT_EQ(reg.series("s"), reg.series("s"));
}

TEST(MetricsRegistry, JsonIsNameSortedAndIndependentOfRegistrationOrder) {
  auto render = [](bool reversed) {
    MetricsRegistry reg;
    const char* names[] = {"alpha", "zeta"};
    for (int i = 0; i < 2; ++i) {
      const char* name = names[reversed ? 1 - i : i];
      reg.counter(name)->inc(name[0] == 'a' ? 1 : 2);
    }
    reg.gauge("g")->set(0.5);
    std::ostringstream out;
    reg.write_json(out);
    return out.str();
  };
  const std::string forward = render(false);
  EXPECT_EQ(forward, render(true));
  // alpha sorts before zeta regardless of registration order.
  EXPECT_LT(forward.find("alpha"), forward.find("zeta"));
}

TEST(MetricsRegistry, CommitRoundFlushesEveryHistogram) {
  ContextGuard guard;
  MetricsRegistry reg;
  auto& ctx = exec::context();
  ctx.shard_slot = 3;
  ctx.order_key = 1;
  reg.histogram("a")->observe(1.0);
  reg.histogram("b")->observe(2.0);
  EXPECT_EQ(reg.histogram("a")->stats().count(), 0u);
  reg.commit_round();
  EXPECT_EQ(reg.histogram("a")->stats().count(), 1u);
  EXPECT_EQ(reg.histogram("b")->stats().count(), 1u);
}

TEST(MetricsRegistry, SeriesCsvPadsShorterColumns) {
  MetricsRegistry reg;
  Series* a = reg.series("a");
  a->append(1.0);
  a->append(2.0);
  reg.series("b")->append(0.5);
  std::ostringstream out;
  reg.write_series_csv(out);
  EXPECT_EQ(out.str(),
            "round,a,b\n"
            "0,1,0.5\n"
            "1,2,\n");
}

}  // namespace
}  // namespace glap::metrics
