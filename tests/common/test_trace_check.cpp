// trace_check: lineage reconstruction, overload-episode detection, and one
// synthetic counterexample per invariant-checker rule.
#include "common/trace_check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace glap::trace {
namespace {

TraceEvent migration(std::uint64_t round, std::int64_t vm, std::int64_t from,
                     std::int64_t to, double cpu = 10.0,
                     double energy_j = 5.0) {
  TraceEvent e;
  e.kind = EventKind::kMigration;
  e.round = round;
  e.migration = {vm, from, to, cpu, energy_j};
  return e;
}

TraceEvent power(std::uint64_t round, std::int64_t pm, bool on) {
  TraceEvent e;
  e.kind = EventKind::kPower;
  e.round = round;
  e.power = {pm, on};
  return e;
}

TraceEvent shuffle(std::uint64_t round, std::int64_t initiator,
                   std::int64_t peer, std::int64_t sent = 8,
                   std::int64_t reply = 8) {
  TraceEvent e;
  e.kind = EventKind::kShuffle;
  e.round = round;
  e.shuffle = {initiator, peer, sent, reply};
  return e;
}

TraceEvent overload(std::uint64_t round, std::int64_t pm, double cpu = 1.1) {
  TraceEvent e;
  e.kind = EventKind::kOverload;
  e.round = round;
  e.overload = {pm, cpu};
  return e;
}

TraceEvent summary(std::uint64_t round, std::uint64_t active,
                   std::uint64_t overloaded, std::uint64_t migrations) {
  TraceEvent e;
  e.kind = EventKind::kRound;
  e.round = round;
  e.summary = {active, overloaded, migrations, 0, 0};
  return e;
}

TraceEvent activity(std::uint64_t round, std::int64_t pm, bool awake,
                    const char* reason) {
  TraceEvent e;
  e.kind = EventKind::kActivity;
  e.round = round;
  e.activity = {pm, awake, reason};
  return e;
}

TraceEvent qsim(std::uint64_t round, double similarity) {
  TraceEvent e;
  e.kind = EventKind::kQsim;
  e.round = round;
  e.qsim = {similarity};
  return e;
}

/// Feeds `events` with 1-based line numbers and returns the violations.
std::vector<Violation> check(const std::vector<TraceEvent>& events,
                             InvariantChecker::Options options = {}) {
  InvariantChecker checker(options);
  std::size_t line = 0;
  for (const TraceEvent& e : events) checker.add(e, ++line);
  checker.finish();
  return checker.violations();
}

void expect_single(const std::vector<Violation>& violations,
                   const char* rule) {
  ASSERT_EQ(violations.size(), 1u)
      << (violations.empty() ? "no violations" : violations[0].rule);
  EXPECT_EQ(violations[0].rule, rule) << violations[0].message;
  EXPECT_FALSE(violations[0].message.empty());
}

// ---- LineageBuilder -----------------------------------------------------

TEST(Lineage, ChainsAndTimelines) {
  LineageBuilder lineage;
  lineage.add(migration(1, 7, 0, 1));
  lineage.add(power(2, 0, false));
  lineage.add(migration(3, 7, 1, 2));

  const auto& chains = lineage.vm_chains();
  ASSERT_EQ(chains.size(), 1u);
  const auto& hops = chains.at(7);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].from, 0);
  EXPECT_EQ(hops[0].to, 1);
  EXPECT_EQ(hops[1].round, 3u);
  EXPECT_EQ(hops[1].to, 2);

  const auto& timelines = lineage.pm_timelines();
  ASSERT_EQ(timelines.count(1), 1u);
  const auto& pm1 = timelines.at(1);
  ASSERT_EQ(pm1.size(), 2u);
  EXPECT_EQ(pm1[0].what, OccupancyEvent::What::kVmIn);
  EXPECT_EQ(pm1[1].what, OccupancyEvent::What::kVmOut);
  ASSERT_EQ(timelines.count(0), 1u);
  EXPECT_EQ(timelines.at(0)[1].what, OccupancyEvent::What::kPowerOff);
  EXPECT_EQ(timelines.at(0)[1].vm, -1);
}

// ---- EpisodeDetector ----------------------------------------------------

TEST(Episodes, MigrationResolvedDemandDropAndOngoing) {
  EpisodeDetector detector;
  // pm 5: overloaded rounds 2-4, shed a VM in round 5 -> resolved.
  detector.add(overload(2, 5, 1.05));
  detector.add(overload(3, 5, 1.30));
  detector.add(overload(4, 5, 1.10));
  detector.add(migration(5, 9, 5, 6));
  // pm 7: one report in round 3, no shed -> demand drop.
  detector.add(overload(3, 7, 1.02));
  // pm 8: reported in the final round -> ongoing.
  detector.add(overload(6, 8, 1.40));

  const auto episodes = detector.finish();
  ASSERT_EQ(episodes.size(), 3u);

  EXPECT_EQ(episodes[0].pm, 5);
  EXPECT_EQ(episodes[0].onset_round, 2u);
  EXPECT_EQ(episodes[0].rounds, 3u);
  EXPECT_EQ(episodes[0].peak_cpu, 1.30);
  EXPECT_TRUE(episodes[0].resolved_by_migration);
  EXPECT_EQ(episodes[0].resolving_vm, 9);
  EXPECT_EQ(episodes[0].resolving_round, 5u);
  EXPECT_FALSE(episodes[0].ongoing);

  EXPECT_EQ(episodes[1].pm, 7);
  EXPECT_FALSE(episodes[1].resolved_by_migration);
  EXPECT_FALSE(episodes[1].ongoing);

  EXPECT_EQ(episodes[2].pm, 8);
  EXPECT_TRUE(episodes[2].ongoing);
}

TEST(Episodes, SplitsNonConsecutiveReportsIntoTwoEpisodes) {
  EpisodeDetector detector;
  detector.add(overload(1, 3));
  detector.add(overload(2, 3));
  detector.add(overload(6, 3));
  const auto episodes = detector.finish();
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].rounds, 2u);
  EXPECT_EQ(episodes[1].onset_round, 6u);
}

// ---- InvariantChecker ---------------------------------------------------

TEST(Invariants, CleanTracePasses) {
  const auto violations = check({
      migration(0, 1, 0, 1),
      summary(0, 2, 1, 1),
      overload(0, 1, 1.2),
      migration(1, 1, 1, 0),
      summary(1, 2, 0, 1),
      qsim(1, 0.875),
  });
  EXPECT_TRUE(violations.empty())
      << violations[0].rule << ": " << violations[0].message;
}

TEST(Invariants, MonotoneRounds) {
  expect_single(check({power(5, 1, true), shuffle(3, 1, 2)}),
                "monotone-rounds");
}

TEST(Invariants, MigrationSelf) {
  expect_single(check({migration(0, 1, 4, 4)}), "migration-self");
}

TEST(Invariants, MigrationChain) {
  expect_single(check({migration(0, 1, 0, 1), migration(1, 1, 5, 2)}),
                "migration-chain");
}

TEST(Invariants, MigrationChainRelaxedUnderChurn) {
  InvariantChecker::Options options;
  options.churn_tolerant = true;
  EXPECT_TRUE(
      check({migration(0, 1, 0, 1), migration(1, 1, 5, 2)}, options).empty());
}

TEST(Invariants, MigrationFromOff) {
  expect_single(check({power(0, 3, false), migration(0, 1, 3, 2)}),
                "migration-from-off");
}

TEST(Invariants, MigrationIntoOff) {
  expect_single(check({power(0, 3, false), migration(0, 1, 0, 3)}),
                "migration-into-off");
}

TEST(Invariants, MigrationIntoOverloadedIsStrictOnly) {
  const std::vector<TraceEvent> events = {
      summary(0, 3, 1, 0),
      overload(0, 2, 1.3),
      migration(1, 1, 0, 2),
      summary(1, 3, 0, 1),
  };
  EXPECT_TRUE(check(events).empty());  // advisory by default
  InvariantChecker::Options options;
  options.strict_overload_target = true;
  expect_single(check(events, options), "migration-into-overloaded");
}

TEST(Invariants, StrictOverloadMarkClearsAfterShed) {
  InvariantChecker::Options options;
  options.strict_overload_target = true;
  // pm 2 sheds a VM in round 1; a later migration into it is fine.
  EXPECT_TRUE(check(
                  {
                      summary(0, 3, 1, 0),
                      overload(0, 2, 1.3),
                      migration(1, 9, 2, 0),
                      migration(1, 1, 0, 2),
                      summary(1, 3, 0, 2),
                  },
                  options)
                  .empty());
}

TEST(Invariants, PowerAlternation) {
  expect_single(check({power(0, 1, true), power(1, 1, true)}),
                "power-alternation");
}

TEST(Invariants, PowerOffOccupied) {
  expect_single(check({migration(0, 1, 0, 2), power(0, 2, false)}),
                "power-off-occupied");
}

TEST(Invariants, PowerOffOccupiedRelaxedUnderChurn) {
  InvariantChecker::Options options;
  options.churn_tolerant = true;
  EXPECT_TRUE(
      check({migration(0, 1, 0, 2), power(0, 2, false)}, options).empty());
}

TEST(Invariants, OverloadOffPm) {
  expect_single(check({power(0, 4, false), overload(0, 4)}),
                "overload-off-pm");
}

TEST(Invariants, OverloadDuplicate) {
  // The summary claims one distinct overloaded PM; the scan names it twice.
  const auto violations =
      check({summary(0, 2, 1, 0), overload(0, 4), overload(0, 4)});
  expect_single(violations, "overload-duplicate");
}

TEST(Invariants, SummaryMigrations) {
  expect_single(check({migration(0, 1, 0, 1), summary(0, 2, 0, 5)}),
                "summary-migrations");
}

TEST(Invariants, SummaryOverloadedCountMismatch) {
  expect_single(check({summary(0, 2, 2, 0), overload(0, 1)}),
                "summary-overloaded");
}

TEST(Invariants, SummaryClaimsOverloadsButNoneFollow) {
  const auto violations = check({summary(0, 2, 1, 0), summary(1, 2, 0, 0)});
  expect_single(violations, "summary-overloaded");
  EXPECT_EQ(violations[0].line, 1u);  // anchored at the claiming summary
}

TEST(Invariants, SummaryGap) {
  expect_single(check({summary(0, 2, 0, 0), summary(2, 2, 0, 0)}),
                "summary-gap");
}

TEST(Invariants, SummaryActiveDelta) {
  // One PM wakes between the summaries, but active_pms does not move.
  expect_single(check({summary(0, 5, 0, 0), power(1, 9, true),
                       summary(1, 5, 0, 0)}),
                "summary-active-delta");
}

TEST(Invariants, SummaryActiveDeltaAcceptsConsistentTransitions) {
  EXPECT_TRUE(check({summary(0, 5, 0, 0), power(1, 9, true),
                     power(1, 3, true), power(1, 4, false),
                     summary(1, 6, 0, 0)})
                  .empty());
}

TEST(Invariants, QsimRange) {
  expect_single(check({qsim(0, 1.5)}), "qsim-range");
}

TEST(Invariants, ShuffleSelf) {
  expect_single(check({shuffle(0, 3, 3)}), "shuffle-self");
}

TEST(Invariants, ShuffleNegative) {
  expect_single(check({shuffle(0, 1, 2, -1, 8)}), "shuffle-negative");
}

TEST(Invariants, ActivityParkWakeCyclePasses) {
  EXPECT_TRUE(check({activity(1, 3, false, "converged"),
                     activity(4, 3, true, "gossip"),
                     activity(5, 3, false, "converged")})
                  .empty());
}

TEST(Invariants, ActivityUnknownReason) {
  expect_single(check({activity(1, 3, false, "cosmic-rays")}),
                "activity-reason");
}

TEST(Invariants, ActivityParkMustBeConvergedAndWakeMustNot) {
  expect_single(check({activity(1, 3, false, "gossip")}), "activity-reason");
  // Park legitimately first so only the reason (not alternation) trips.
  expect_single(check({activity(1, 3, false, "converged"),
                       activity(2, 3, true, "converged")}),
                "activity-reason");
}

TEST(Invariants, ActivityWakeWithoutPark) {
  expect_single(check({activity(2, 5, true, "demand")}),
                "activity-alternation");
}

TEST(Invariants, ActivityDoublePark) {
  expect_single(check({activity(1, 5, false, "converged"),
                       activity(2, 5, false, "converged")}),
                "activity-alternation");
}

TEST(Invariants, ActivityParkOnPoweredOffPm) {
  expect_single(check({power(0, 6, false), activity(1, 6, false, "converged")}),
                "activity-park-off-pm");
}

// ---- Network-model events (DESIGN.md §13) -------------------------------

TraceEvent net_send(std::uint64_t round, std::int64_t msg,
                    std::int64_t src = 0, std::int64_t dst = 1,
                    std::int64_t bytes = 128) {
  TraceEvent e;
  e.kind = EventKind::kNet;
  e.round = round;
  e.net.op = "send";
  e.net.src = src;
  e.net.dst = dst;
  e.net.msg = msg;
  e.net.bytes = bytes;
  e.net.channel = "shuffle";
  return e;
}

TraceEvent net_deliver(std::uint64_t round, std::int64_t msg,
                       std::int64_t delay = 0) {
  TraceEvent e;
  e.kind = EventKind::kNet;
  e.round = round;
  e.net.op = "deliver";
  e.net.src = 0;
  e.net.dst = 1;
  e.net.msg = msg;
  e.net.delay = delay;
  return e;
}

TraceEvent net_drop(std::uint64_t round, std::int64_t msg,
                    const char* reason = "loss") {
  TraceEvent e;
  e.kind = EventKind::kNet;
  e.round = round;
  e.net.op = "drop";
  e.net.src = 0;
  e.net.dst = 1;
  e.net.msg = msg;
  e.net.reason = reason;
  return e;
}

TEST(Invariants, NetSendDeliverDropLifecyclesPass) {
  EXPECT_TRUE(check({net_send(0, 1), net_deliver(0, 1, 0),  // same round
                     net_send(0, 2), net_drop(0, 2),        // lost at send
                     net_send(1, 3), net_deliver(3, 3, 2)}) // deferred
                  .empty());
}

TEST(Invariants, NetDeliverWithoutSend) {
  expect_single(check({net_deliver(2, 9)}), "net-deliver-unsent");
}

TEST(Invariants, NetDuplicateSend) {
  expect_single(check({net_send(0, 4), net_send(1, 4)}), "net-deliver-unsent");
}

TEST(Invariants, NetSecondTerminalForOneMessage) {
  expect_single(check({net_send(0, 5), net_deliver(0, 5, 0),
                       net_deliver(1, 5, 1)}),
                "net-terminal-duplicate");
}

TEST(Invariants, NetDelayArithmeticMustHold) {
  // Sent round 1 with delay 2 but delivered round 2.
  expect_single(check({net_send(1, 6), net_deliver(2, 6, 2)}),
                "net-delay-arithmetic");
  // Drops are decided at send time; a later drop round is a lie.
  expect_single(check({net_send(1, 7), net_drop(3, 7)}),
                "net-delay-arithmetic");
}

TEST(Invariants, NetDropNeedsLossyOrCongestedLink) {
  expect_single(check({net_send(0, 8), net_drop(0, 8, "gremlins")}),
                "net-drop-reason");
}

TEST(Invariants, NetQueueLinkMustBeAccessOrUplink) {
  TraceEvent q;
  q.kind = EventKind::kNet;
  q.round = 0;
  q.net.op = "queue";
  q.net.link = "warp-conduit";
  q.net.link_id = 0;
  q.net.bytes = 10;
  expect_single(check({q}), "net-drop-reason");
}

TEST(Invariants, NetQueueMustReportAPositiveBacklog) {
  // The writer skips idle links (DESIGN.md §13.6): a zero-backlog queue
  // line can only come from a corrupt or hand-edited trace.
  TraceEvent q;
  q.kind = EventKind::kNet;
  q.round = 0;
  q.net.op = "queue";
  q.net.link = "uplink";
  q.net.link_id = 2;
  q.net.bytes = 0;
  expect_single(check({q}), "net-queue-zero");
  q.net.bytes = 1;
  EXPECT_TRUE(check({q}).empty());
}

TEST(Invariants, NetworkWakeReasonIsAccepted) {
  EXPECT_TRUE(check({activity(1, 3, false, "converged"),
                     activity(4, 3, true, "network")})
                  .empty());
}

TEST(Invariants, FaultEventsAreAcceptedUnchecked) {
  TraceEvent fault;
  fault.kind = EventKind::kFault;
  fault.round = 3;
  fault.fault = {7, 1, 0.5};
  EXPECT_TRUE(check({fault}).empty());
}

TEST(Invariants, ViolationCarriesLineAndRound) {
  const auto violations =
      check({power(2, 1, true), migration(2, 1, 4, 4)});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].line, 2u);
  EXPECT_EQ(violations[0].round, 2u);
}

TEST(Invariants, CountsEventsChecked) {
  InvariantChecker checker;
  checker.add(power(0, 1, true), 1);
  checker.add(summary(0, 1, 0, 0), 2);
  checker.finish();
  EXPECT_EQ(checker.events_checked(), 2u);
  EXPECT_TRUE(checker.violations().empty());
}

// ---- StatsCollector -----------------------------------------------------

TEST(Stats, CountsAndSeries) {
  StatsCollector collector;
  collector.add(migration(4, 1, 0, 1, 25.0, 12.5));
  collector.add(shuffle(4, 1, 2, 8, 7));
  collector.add(summary(4, 10, 0, 1));
  collector.add(overload(5, 3, 1.25));

  const TraceStats& stats = collector.stats();
  EXPECT_EQ(stats.counts[static_cast<std::size_t>(EventKind::kMigration)],
            1u);
  EXPECT_EQ(stats.counts[static_cast<std::size_t>(EventKind::kFault)], 0u);
  EXPECT_EQ(stats.total_lines, 4u);
  EXPECT_EQ(stats.first_round, 4u);
  EXPECT_EQ(stats.last_round, 5u);
  ASSERT_EQ(stats.migration_cpu.size(), 1u);
  EXPECT_EQ(stats.migration_cpu[0], 25.0);
  ASSERT_EQ(stats.round_active_pms.size(), 1u);
  EXPECT_EQ(stats.round_active_pms[0], 10.0);
  ASSERT_EQ(stats.overload_cpu.size(), 1u);
  EXPECT_EQ(stats.overload_cpu[0], 1.25);
}

TEST(Stats, NetSeriesCollectBytesAndDelay) {
  StatsCollector collector;
  collector.add(net_send(0, 1, 0, 1, 512));
  collector.add(net_deliver(2, 1, 2));
  collector.add(net_send(2, 2, 0, 1, 64));
  collector.add(net_drop(2, 2));

  const TraceStats& stats = collector.stats();
  EXPECT_EQ(stats.counts[static_cast<std::size_t>(EventKind::kNet)], 4u);
  ASSERT_EQ(stats.net_send_bytes.size(), 2u);
  EXPECT_EQ(stats.net_send_bytes[0], 512.0);
  EXPECT_EQ(stats.net_send_bytes[1], 64.0);
  ASSERT_EQ(stats.net_deliver_delay.size(), 1u);
  EXPECT_EQ(stats.net_deliver_delay[0], 2.0);
}

}  // namespace
}  // namespace glap::trace
