#include "trace/trace_store.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "trace/demand_models.hpp"

namespace glap::trace {
namespace {

TEST(TraceStore, SetAndGet) {
  TraceStore store(2, 3);
  store.set(0, 0, {0.1, 0.2});
  store.set(1, 2, {0.9, 0.8});
  EXPECT_EQ(store.at(0, 0), (Resources{0.1, 0.2}));
  EXPECT_EQ(store.at(1, 2), (Resources{0.9, 0.8}));
  EXPECT_EQ(store.at(0, 1), (Resources{0.0, 0.0}));
}

TEST(TraceStore, BoundsAndRangeChecks) {
  TraceStore store(2, 2);
  EXPECT_THROW(store.at(2, 0), precondition_error);
  EXPECT_THROW(store.at(0, 2), precondition_error);
  EXPECT_THROW(store.set(0, 0, {1.5, 0.0}), precondition_error);
  EXPECT_THROW(store.set(0, 0, {0.0, -0.1}), precondition_error);
  EXPECT_THROW(TraceStore(0, 5), precondition_error);
}

TEST(TraceStore, FromModelsMaterializesSeries) {
  StableModel m0(0.3, 0.4, 0.0, Rng(1));
  StableModel m1(0.6, 0.2, 0.0, Rng(2));
  std::vector<DemandModel*> models{&m0, &m1};
  const TraceStore store = TraceStore::from_models(models, 10);
  EXPECT_EQ(store.vm_count(), 2u);
  EXPECT_EQ(store.round_count(), 10u);
  EXPECT_NEAR(store.at(0, 0).cpu, 0.3, 1e-12);
  EXPECT_NEAR(store.at(1, 5).cpu, 0.6, 1e-12);
}

TEST(TraceStore, SeriesMean) {
  TraceStore store(1, 4);
  store.set(0, 0, {0.0, 0.0});
  store.set(0, 1, {0.4, 0.2});
  store.set(0, 2, {0.4, 0.2});
  store.set(0, 3, {0.8, 0.4});
  const Resources mean = store.series_mean(0);
  EXPECT_NEAR(mean.cpu, 0.4, 1e-12);
  EXPECT_NEAR(mean.mem, 0.2, 1e-12);
}

TEST(TraceStore, CsvRoundTrip) {
  TraceStore store(2, 2);
  store.set(0, 0, {0.1, 0.2});
  store.set(0, 1, {0.3, 0.4});
  store.set(1, 0, {0.5, 0.6});
  store.set(1, 1, {0.7, 0.8});
  std::ostringstream os;
  store.save_csv(os);
  std::istringstream in(os.str());
  const TraceStore loaded = TraceStore::load_csv(in);
  EXPECT_EQ(loaded.vm_count(), 2u);
  EXPECT_EQ(loaded.round_count(), 2u);
  for (std::size_t vm = 0; vm < 2; ++vm)
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_NEAR(loaded.at(vm, r).cpu, store.at(vm, r).cpu, 1e-9);
      EXPECT_NEAR(loaded.at(vm, r).mem, store.at(vm, r).mem, 1e-9);
    }
}

TEST(TraceStore, CsvMissingColumnRejected) {
  std::istringstream in("vm,round,cpu\n0,0,0.5\n");
  EXPECT_THROW(TraceStore::load_csv(in), precondition_error);
}

TEST(TraceStore, CsvGapsRejected) {
  // vm 0 has rounds {0,1} but vm 1 only round 0.
  std::istringstream in(
      "vm,round,cpu,mem\n0,0,0.1,0.1\n0,1,0.2,0.2\n1,0,0.3,0.3\n");
  EXPECT_THROW(TraceStore::load_csv(in), precondition_error);
}

TEST(TraceStore, CsvEmptyRejected) {
  std::istringstream in("vm,round,cpu,mem\n");
  EXPECT_THROW(TraceStore::load_csv(in), precondition_error);
}

TEST(ReplayModel, ReplaysAndCycles) {
  TraceStore store(1, 3);
  store.set(0, 0, {0.1, 0.1});
  store.set(0, 1, {0.2, 0.2});
  store.set(0, 2, {0.3, 0.3});
  ReplayModel model(store, 0);
  EXPECT_NEAR(model.next().cpu, 0.1, 1e-12);
  EXPECT_NEAR(model.next().cpu, 0.2, 1e-12);
  EXPECT_NEAR(model.next().cpu, 0.3, 1e-12);
  EXPECT_NEAR(model.next().cpu, 0.1, 1e-12);  // cycles
}

TEST(ReplayModel, LongRunMeanIsSeriesMean) {
  TraceStore store(1, 2);
  store.set(0, 0, {0.2, 0.4});
  store.set(0, 1, {0.6, 0.8});
  ReplayModel model(store, 0);
  EXPECT_NEAR(model.long_run_mean().cpu, 0.4, 1e-12);
  EXPECT_NEAR(model.long_run_mean().mem, 0.6, 1e-12);
}

TEST(ReplayModel, RejectsBadVmIndex) {
  TraceStore store(1, 1);
  EXPECT_THROW(ReplayModel(store, 1), precondition_error);
}

}  // namespace
}  // namespace glap::trace
