#include "trace/google_synth.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace glap::trace {
namespace {

TEST(GoogleSynth, DeterministicPerSeedAndVm) {
  GoogleSynth a({}, 42), b({}, 42);
  for (std::uint64_t vm : {0ull, 1ull, 99ull}) {
    auto ma = a.make_model(vm);
    auto mb = b.make_model(vm);
    for (int i = 0; i < 200; ++i) {
      const Resources da = ma->next();
      const Resources db = mb->next();
      ASSERT_EQ(da.cpu, db.cpu);
      ASSERT_EQ(da.mem, db.mem);
    }
  }
}

TEST(GoogleSynth, DifferentVmsGetDifferentStreams) {
  GoogleSynth synth({}, 42);
  auto a = synth.make_model(0);
  auto b = synth.make_model(1);
  double diff = 0.0;
  for (int i = 0; i < 100; ++i)
    diff += std::abs(a->next().cpu - b->next().cpu);
  EXPECT_GT(diff, 0.1);
}

TEST(GoogleSynth, DifferentSeedsGetDifferentEnsembles) {
  GoogleSynth a({}, 1), b({}, 2);
  auto ma = a.make_model(0);
  auto mb = b.make_model(0);
  double diff = 0.0;
  for (int i = 0; i < 100; ++i)
    diff += std::abs(ma->next().cpu - mb->next().cpu);
  EXPECT_GT(diff, 0.1);
}

TEST(GoogleSynth, EnsembleCpuMeanIsGoogleLike) {
  // VMs use far less than their allocation: ensemble CPU mean well below
  // 0.6 of nominal, above 0.1 (not idle).
  GoogleSynth synth({}, 7);
  RunningStats means;
  for (std::uint64_t vm = 0; vm < 200; ++vm) {
    auto model = synth.make_model(vm);
    RunningStats s;
    for (int i = 0; i < 500; ++i) s.add(model->next().cpu);
    means.add(s.mean());
  }
  EXPECT_GT(means.mean(), 0.1);
  EXPECT_LT(means.mean(), 0.6);
}

TEST(GoogleSynth, EnsembleIsHeterogeneous) {
  // Per-VM long-run means must vary substantially (different PMs host
  // different workload patterns — the premise of per-PM thresholds).
  GoogleSynth synth({}, 7);
  RunningStats means;
  for (std::uint64_t vm = 0; vm < 200; ++vm) {
    auto model = synth.make_model(vm);
    RunningStats s;
    for (int i = 0; i < 300; ++i) s.add(model->next().cpu);
    means.add(s.mean());
  }
  EXPECT_GT(means.stddev(), 0.08);
}

TEST(GoogleSynth, SamplesBounded) {
  GoogleSynth synth({}, 13);
  for (std::uint64_t vm = 0; vm < 50; ++vm) {
    auto model = synth.make_model(vm);
    for (int i = 0; i < 300; ++i) {
      const Resources d = model->next();
      ASSERT_GE(d.cpu, 0.0);
      ASSERT_LE(d.cpu, 1.0);
      ASSERT_GE(d.mem, 0.0);
      ASSERT_LE(d.mem, 1.0);
    }
  }
}

TEST(GoogleSynth, MemoryLowerAndSteadierThanCpu) {
  GoogleSynth synth({}, 17);
  RunningStats cpu_sd, mem_sd;
  for (std::uint64_t vm = 0; vm < 100; ++vm) {
    auto model = synth.make_model(vm);
    RunningStats cpu, mem;
    for (int i = 0; i < 400; ++i) {
      const Resources d = model->next();
      cpu.add(d.cpu);
      mem.add(d.mem);
    }
    cpu_sd.add(cpu.stddev());
    mem_sd.add(mem.stddev());
  }
  EXPECT_LT(mem_sd.mean(), cpu_sd.mean());
}

TEST(GoogleSynth, SingleArchetypeWeights) {
  // Forcing all weight onto the stable archetype yields low-variance VMs.
  GoogleSynthConfig config;
  config.w_stable = 1.0;
  config.w_diurnal = config.w_random_walk = config.w_bursty =
      config.w_spike = 0.0;
  GoogleSynth synth(config, 19);
  for (std::uint64_t vm = 0; vm < 20; ++vm) {
    auto model = synth.make_model(vm);
    RunningStats s;
    for (int i = 0; i < 500; ++i) s.add(model->next().cpu);
    EXPECT_LT(s.stddev(), 0.05);
  }
}

TEST(GoogleSynth, ValidatesConfig) {
  GoogleSynthConfig zero_weights;
  zero_weights.w_stable = zero_weights.w_diurnal =
      zero_weights.w_random_walk = zero_weights.w_bursty =
          zero_weights.w_spike = 0.0;
  EXPECT_THROW(GoogleSynth(zero_weights, 1), precondition_error);

  GoogleSynthConfig bad_range;
  bad_range.cpu_lo = 0.8;
  bad_range.cpu_hi = 0.2;
  EXPECT_THROW(GoogleSynth(bad_range, 1), precondition_error);

  GoogleSynthConfig bad_period;
  bad_period.rounds_per_day = 0;
  EXPECT_THROW(GoogleSynth(bad_period, 1), precondition_error);
}

}  // namespace
}  // namespace glap::trace
