#include "trace/demand_models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <functional>
#include <vector>

#include "common/stats.hpp"

namespace glap::trace {
namespace {

using ModelFactory = std::function<DemandModelPtr(Rng)>;

struct ModelCase {
  const char* name;
  ModelFactory make;
};

std::vector<ModelCase> all_models() {
  return {
      {"stable",
       [](Rng rng) {
         return std::make_unique<StableModel>(0.4, 0.3, 0.03, rng);
       }},
      {"diurnal",
       [](Rng rng) {
         return std::make_unique<DiurnalModel>(0.5, 0.25, 96, 0.3, 0.3, rng);
       }},
      {"random_walk",
       [](Rng rng) {
         return std::make_unique<RandomWalkModel>(0.35, 0.06, 0.3, rng);
       }},
      {"bursty",
       [](Rng rng) {
         return std::make_unique<BurstyModel>(0.2, 0.85, 0.05, 0.08, 0.3,
                                              rng);
       }},
      {"spike",
       [](Rng rng) {
         return std::make_unique<SpikeModel>(0.15, 0.9, 0.02, 5, 0.3, rng);
       }},
  };
}

class AllModelsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllModelsTest, SamplesStayInUnitBox) {
  const auto model_case = all_models()[GetParam()];
  auto model = model_case.make(Rng(42));
  for (int i = 0; i < 5000; ++i) {
    const Resources d = model->next();
    ASSERT_GE(d.cpu, 0.0) << model_case.name;
    ASSERT_LE(d.cpu, 1.0) << model_case.name;
    ASSERT_GE(d.mem, 0.0) << model_case.name;
    ASSERT_LE(d.mem, 1.0) << model_case.name;
  }
}

TEST_P(AllModelsTest, DeterministicForSameSeed) {
  const auto model_case = all_models()[GetParam()];
  auto a = model_case.make(Rng(7));
  auto b = model_case.make(Rng(7));
  for (int i = 0; i < 500; ++i) {
    const Resources da = a->next();
    const Resources db = b->next();
    ASSERT_EQ(da.cpu, db.cpu) << model_case.name << " at step " << i;
    ASSERT_EQ(da.mem, db.mem) << model_case.name;
  }
}

TEST_P(AllModelsTest, DifferentSeedsDiffer) {
  const auto model_case = all_models()[GetParam()];
  auto a = model_case.make(Rng(1));
  auto b = model_case.make(Rng(2));
  double max_diff = 0.0;
  for (int i = 0; i < 200; ++i)
    max_diff = std::max(max_diff, std::abs(a->next().cpu - b->next().cpu));
  EXPECT_GT(max_diff, 0.0) << model_case.name;
}

TEST_P(AllModelsTest, EmpiricalMeanTracksLongRunMean) {
  const auto model_case = all_models()[GetParam()];
  auto model = model_case.make(Rng(11));
  RunningStats cpu;
  for (int i = 0; i < 30000; ++i) cpu.add(model->next().cpu);
  const double expected = model->long_run_mean().cpu;
  EXPECT_NEAR(cpu.mean(), expected, 0.08) << model_case.name;
}

INSTANTIATE_TEST_SUITE_P(Models, AllModelsTest,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const auto& info) {
                           return all_models()[info.param].name;
                         });

TEST(OuProcess, MeanRevertsFromDisplacement) {
  Rng rng(3);
  OuProcess ou(0.5, 0.2, 0.0, 1.0);  // no noise: pure decay toward 0.5
  double x = 1.0;
  for (int i = 0; i < 50; ++i) x = ou.step(rng);
  EXPECT_NEAR(x, 0.5, 0.01);
}

TEST(OuProcess, ClampsToUnitInterval) {
  Rng rng(4);
  OuProcess ou(0.5, 0.1, 0.5, 0.5);  // huge noise
  for (int i = 0; i < 1000; ++i) {
    const double x = ou.step(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
}

TEST(OuProcess, RecenterChangesAttractor) {
  Rng rng(5);
  OuProcess ou(0.2, 0.3, 0.0, 0.2);
  ou.recenter(0.8);
  double x = 0.2;
  for (int i = 0; i < 60; ++i) x = ou.step(rng);
  EXPECT_NEAR(x, 0.8, 0.01);
}

TEST(DiurnalModel, OscillatesWithConfiguredPeriod) {
  const std::uint32_t period = 120;
  DiurnalModel model(0.5, 0.3, period, 0.0, 0.3, Rng(6));
  std::vector<double> series;
  for (std::uint32_t i = 0; i < period * 2; ++i)
    series.push_back(model.next().cpu);
  // One full period apart the series should correlate strongly.
  double same = 0.0, opposite = 0.0;
  for (std::uint32_t i = 0; i < period; ++i) {
    same += std::abs(series[i] - series[i + period]);
    opposite += std::abs(series[i] - series[(i + period / 2) % period]);
  }
  EXPECT_LT(same / period, opposite / period);
}

TEST(DiurnalModel, AmplitudeVisible) {
  DiurnalModel model(0.5, 0.3, 100, 0.0, 0.3, Rng(7));
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double x = model.next().cpu;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_GT(hi - lo, 0.4);
}

TEST(BurstyModel, VisitsBothRegimes) {
  BurstyModel model(0.15, 0.9, 0.1, 0.1, 0.3, Rng(8));
  int low_rounds = 0, high_rounds = 0;
  for (int i = 0; i < 3000; ++i) {
    const double x = model.next().cpu;
    if (x < 0.4) ++low_rounds;
    if (x > 0.7) ++high_rounds;
  }
  EXPECT_GT(low_rounds, 300);
  EXPECT_GT(high_rounds, 300);
}

TEST(BurstyModel, StationaryMeanFormula) {
  // p_up = p_down => half the time in each regime.
  BurstyModel model(0.2, 0.8, 0.05, 0.05, 0.3, Rng(9));
  EXPECT_NEAR(model.long_run_mean().cpu, 0.5, 1e-9);
}

TEST(BurstyModel, RejectsBadProbabilities) {
  EXPECT_THROW(BurstyModel(0.2, 0.8, 1.5, 0.1, 0.3, Rng(1)),
               precondition_error);
  EXPECT_THROW(BurstyModel(0.2, 0.8, 0.1, -0.1, 0.3, Rng(1)),
               precondition_error);
}

TEST(SpikeModel, SpikesLastConfiguredLength) {
  SpikeModel model(0.1, 0.95, 0.01, 4, 0.3, Rng(10));
  int in_spike_run = 0;
  std::vector<int> run_lengths;
  for (int i = 0; i < 20000; ++i) {
    const double x = model.next().cpu;
    if (x > 0.6) {
      ++in_spike_run;
    } else if (in_spike_run > 0) {
      run_lengths.push_back(in_spike_run);
      in_spike_run = 0;
    }
  }
  ASSERT_FALSE(run_lengths.empty());
  for (int len : run_lengths) EXPECT_GE(len, 1);
  const double mean_len =
      std::accumulate(run_lengths.begin(), run_lengths.end(), 0.0) /
      run_lengths.size();
  EXPECT_NEAR(mean_len, 4.0, 1.5);
}

TEST(SpikeModel, MostlyQuiet) {
  SpikeModel model(0.1, 0.95, 0.005, 3, 0.3, Rng(11));
  int quiet = 0;
  for (int i = 0; i < 5000; ++i)
    if (model.next().cpu < 0.3) ++quiet;
  EXPECT_GT(quiet, 4000);
}

TEST(StableModel, LowVariance) {
  StableModel model(0.4, 0.3, 0.01, Rng(12));
  RunningStats s;
  for (int i = 0; i < 5000; ++i) s.add(model.next().cpu);
  EXPECT_NEAR(s.mean(), 0.4, 0.01);
  EXPECT_LT(s.stddev(), 0.03);
}

TEST(MemorySeriesViaModels, MemIsSteadierThanCpu) {
  RandomWalkModel model(0.4, 0.08, 0.4, Rng(13));
  RunningStats cpu, mem;
  for (int i = 0; i < 10000; ++i) {
    const Resources d = model.next();
    cpu.add(d.cpu);
    mem.add(d.mem);
  }
  EXPECT_LT(mem.stddev(), cpu.stddev());
}

}  // namespace
}  // namespace glap::trace
