#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "trace/demand_models.hpp"

namespace glap::trace {
namespace {

TEST(Autocorrelation, ConstantSeriesIsZero) {
  EXPECT_EQ(autocorrelation({1, 1, 1, 1}, 1), 0.0);
}

TEST(Autocorrelation, DegenerateInputs) {
  EXPECT_EQ(autocorrelation({}, 1), 0.0);
  EXPECT_EQ(autocorrelation({1.0}, 0), 0.0);
  EXPECT_EQ(autocorrelation({1.0, 2.0}, 5), 0.0);
}

TEST(Autocorrelation, PeriodicSeriesPeaksAtPeriod) {
  std::vector<double> series;
  for (int i = 0; i < 400; ++i)
    series.push_back(std::sin(2.0 * std::numbers::pi * i / 40.0));
  EXPECT_GT(autocorrelation(series, 40), 0.8);
  EXPECT_LT(autocorrelation(series, 20), -0.8);  // anti-phase
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  Rng rng(1);
  std::vector<double> series;
  for (int i = 0; i < 5000; ++i) series.push_back(rng.normal());
  EXPECT_NEAR(autocorrelation(series, 7), 0.0, 0.05);
}

TEST(Autocorrelation, LagZeroIsOne) {
  std::vector<double> series{1, 3, 2, 5, 4};
  EXPECT_NEAR(autocorrelation(series, 0), 1.0, 1e-12);
}

TEST(BurstFraction, CountsThresholdCrossings) {
  EXPECT_DOUBLE_EQ(burst_fraction({0.1, 0.9, 0.9, 0.1}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(burst_fraction({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(burst_fraction({0.5}, 0.5), 1.0);  // inclusive
}

TEST(MeanBurstLength, AveragesRuns) {
  // Runs of length 2 and 4.
  const std::vector<double> series{0, 1, 1, 0, 1, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(mean_burst_length(series, 0.5), 3.0);
}

TEST(MeanBurstLength, TrailingRunCounted) {
  EXPECT_DOUBLE_EQ(mean_burst_length({0, 1, 1}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(mean_burst_length({0, 0}, 0.5), 0.0);
}

TEST(PeakToMean, KnownValues) {
  EXPECT_DOUBLE_EQ(peak_to_mean({1, 1, 4}), 2.0);
  EXPECT_DOUBLE_EQ(peak_to_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(peak_to_mean({0, 0}), 0.0);
}

TEST(Analysis, BurstyModelHasLongerBurstsThanSpiky) {
  auto collect = [](DemandModel& model) {
    std::vector<double> out;
    for (int i = 0; i < 8000; ++i) out.push_back(model.next().cpu);
    return out;
  };
  BurstyModel bursty(0.2, 0.9, 0.03, 0.05, 0.3, Rng(2));
  SpikeModel spiky(0.1, 0.9, 0.01, 3, 0.3, Rng(3));
  auto b = collect(bursty);
  auto s = collect(spiky);
  EXPECT_GT(mean_burst_length(b, 0.6), mean_burst_length(s, 0.6));
}

TEST(Analysis, DiurnalModelIsAutocorrelatedAtPeriod) {
  DiurnalModel model(0.5, 0.3, 60, 0.0, 0.3, Rng(4));
  std::vector<double> series;
  for (int i = 0; i < 600; ++i) series.push_back(model.next().cpu);
  EXPECT_GT(autocorrelation(series, 60), 0.5);
}

}  // namespace
}  // namespace glap::trace
