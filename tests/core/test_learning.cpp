#include "core/learning.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/qtable_pair.hpp"

namespace glap::core {
namespace {

constexpr Resources kPmCapacity{2660.0, 4096.0};

VmProfile profile(double cur_cpu, double avg_cpu, double cur_mem = 0.3,
                  double avg_mem = 0.3) {
  const Resources alloc{500.0, 613.0};
  return {Resources{cur_cpu, cur_mem}.scaled_by(alloc),
          Resources{avg_cpu, avg_mem}.scaled_by(alloc), alloc};
}

GlapConfig test_config() {
  GlapConfig config;
  config.train_iterations_per_round = 50;
  return config;
}

TEST(VmProfile, ActionUsesVmRelativeLevels) {
  const VmProfile p = profile(0.85, 0.45);
  EXPECT_EQ(p.action(/*use_average=*/true),
            (qlearn::LevelPair{qlearn::Level::kHigh, qlearn::Level::kMedium}));
  EXPECT_EQ(p.action(/*use_average=*/false),
            (qlearn::LevelPair{qlearn::Level::k4xHigh,
                               qlearn::Level::kMedium}));
}

TEST(StateOfProfiles, AggregatesOverPmCapacity) {
  // Two VMs at 100% of 500 MIPS on a 2660 MIPS PM: 1000/2660 ~ 0.376.
  std::vector<VmProfile> profiles{profile(1.0, 1.0), profile(1.0, 1.0)};
  const auto state = state_of_profiles(profiles, kPmCapacity, true);
  EXPECT_EQ(state.cpu, qlearn::Level::kMedium);
}

TEST(StateOfProfiles, AverageAndCurrentDiffer) {
  std::vector<VmProfile> profiles{profile(1.0, 0.1), profile(1.0, 0.1)};
  const auto avg_state = state_of_profiles(profiles, kPmCapacity, true);
  const auto cur_state = state_of_profiles(profiles, kPmCapacity, false);
  EXPECT_EQ(avg_state.cpu, qlearn::Level::kLow);
  EXPECT_EQ(cur_state.cpu, qlearn::Level::kMedium);
}

TEST(LocalTrainer, DuplicationReachesTarget) {
  GlapConfig config = test_config();
  config.duplicate_pool_pm_multiple = 2.0;
  LocalTrainer trainer(config, kPmCapacity, Rng(1));
  // Each profile averages 0.5*500 = 250 MIPS; target = 2*2660 = 5320
  // -> needs ~22 profiles.
  std::vector<VmProfile> pool{profile(0.5, 0.5), profile(0.5, 0.5)};
  const auto grown = trainer.duplicate_if_required(pool);
  double total = 0.0;
  for (const auto& p : grown) total += p.average_usage.cpu;
  EXPECT_GE(total, 2.0 * kPmCapacity.cpu);
}

TEST(LocalTrainer, DuplicationCapped) {
  GlapConfig config = test_config();
  config.duplicate_pool_pm_multiple = 100.0;  // unreachable target
  LocalTrainer trainer(config, kPmCapacity, Rng(1));
  std::vector<VmProfile> pool{profile(0.01, 0.01)};
  const auto grown = trainer.duplicate_if_required(pool);
  EXPECT_LE(grown.size(), 16u);  // 16x the original single profile
}

TEST(LocalTrainer, EmptyAndTinyPoolsAreSafe) {
  LocalTrainer trainer(test_config(), kPmCapacity, Rng(1));
  QTablePair tables;
  trainer.train_round({}, tables);
  trainer.train_round({profile(0.5, 0.5)}, tables);
  EXPECT_TRUE(tables.out.empty());
  EXPECT_TRUE(tables.in.empty());
}

TEST(LocalTrainer, TrainingPopulatesBothTables) {
  LocalTrainer trainer(test_config(), kPmCapacity, Rng(2));
  std::vector<VmProfile> pool;
  for (int i = 0; i < 24; ++i)
    pool.push_back(profile(0.2 + 0.03 * i, 0.25 + 0.02 * i));
  QTablePair tables;
  for (int round = 0; round < 20; ++round) trainer.train_round(pool, tables);
  EXPECT_GT(tables.out.size(), 10u);
  EXPECT_GT(tables.in.size(), 10u);
}

TEST(LocalTrainer, DeterministicGivenSeed) {
  std::vector<VmProfile> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(profile(0.3, 0.4));
  QTablePair a, b;
  LocalTrainer ta(test_config(), kPmCapacity, Rng(7));
  LocalTrainer tb(test_config(), kPmCapacity, Rng(7));
  for (int round = 0; round < 5; ++round) {
    ta.train_round(pool, a);
    tb.train_round(pool, b);
  }
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 1.0);
  EXPECT_EQ(a.out.size(), b.out.size());
}

TEST(LocalTrainer, VolatileWorkloadsLearnNegativeAcceptanceValues) {
  // Profiles whose current demand is far above their average: accepting
  // them into loaded states lands in Overload often, so the IN table must
  // contain strongly negative entries.
  LocalTrainer trainer(test_config(), kPmCapacity, Rng(3));
  std::vector<VmProfile> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(profile(1.0, 0.35));
  QTablePair tables;
  for (int round = 0; round < 40; ++round) trainer.train_round(pool, tables);
  std::size_t negative = 0;
  for (const auto& [key, q] : tables.in.entries())
    if (q < 0.0) ++negative;
  EXPECT_GT(negative, 0u);
}

TEST(LocalTrainer, AcceptanceRiskGrowsWithStateLoad) {
  // The γ-chain means even light states carry *some* future overload
  // risk (the in-map has no "stop accepting" action), but the learned
  // risk must be ordered: accepting into Low states scores strictly
  // better than accepting into heavily loaded states.
  LocalTrainer trainer(test_config(), kPmCapacity, Rng(4));
  std::vector<VmProfile> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(profile(0.2, 0.2));
  QTablePair tables;
  for (int round = 0; round < 40; ++round) trainer.train_round(pool, tables);
  RunningStats light, heavy;
  for (const auto& [key, q] : tables.in.entries()) {
    const auto state = qlearn::QTable::state_of(key);
    const auto level = qlearn::level_index(state.cpu);
    if (level <= 1)
      light.add(q);
    else if (level >= 6)
      heavy.add(q);
  }
  ASSERT_GT(light.count(), 0u);
  ASSERT_GT(heavy.count(), 0u);
  EXPECT_GT(light.mean(), heavy.mean());
}

TEST(LocalTrainer, OutValuesRewardDraining) {
  LocalTrainer trainer(test_config(), kPmCapacity, Rng(5));
  std::vector<VmProfile> pool;
  for (int i = 0; i < 30; ++i) pool.push_back(profile(0.4, 0.4));
  QTablePair tables;
  for (int round = 0; round < 40; ++round) trainer.train_round(pool, tables);
  // All OUT values come from positive rewards, so they are positive.
  for (const auto& [key, q] : tables.out.entries()) EXPECT_GT(q, 0.0);
}

TEST(QTablePair, MergeAndSimilarity) {
  QTablePair a, b;
  a.out.set({qlearn::Level::kLow, qlearn::Level::kLow},
            {qlearn::Level::kLow, qlearn::Level::kLow}, 4.0);
  b.in.set({qlearn::Level::kHigh, qlearn::Level::kHigh},
           {qlearn::Level::kLow, qlearn::Level::kLow}, -2.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  QTablePair merged = a;
  merged.merge_average(b);
  EXPECT_EQ(merged.size(), 2u);
  QTablePair other = b;
  other.merge_average(a);
  EXPECT_DOUBLE_EQ(cosine_similarity(merged, other), 1.0);
}

TEST(QTablePair, EmptyPairsAreIdentical) {
  QTablePair a, b;
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 1.0);
  EXPECT_TRUE(a.empty());
}

}  // namespace
}  // namespace glap::core
