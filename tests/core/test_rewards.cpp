#include "core/rewards.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace glap::core {
namespace {

using qlearn::Level;
using qlearn::LevelPair;

TEST(RewardOut, StrictlyDecreasingAndPositive) {
  RewardSystem rewards({});
  double prev = 1e18;
  for (std::size_t i = 0; i < qlearn::kLevelCount; ++i) {
    const double r = rewards.out_level_reward(static_cast<Level>(i));
    EXPECT_GT(r, 0.0) << "r must stay positive at level " << i;
    EXPECT_LT(r, prev) << "r must strictly decrease";
    prev = r;
  }
}

TEST(RewardIn, IncreasingUpTo5xHighThenVeryNegative) {
  RewardSystem rewards({});
  double prev = -1e18;
  for (std::size_t i = 0; i + 1 < qlearn::kLevelCount; ++i) {
    const double r = rewards.in_level_reward(static_cast<Level>(i));
    EXPECT_GT(r, 0.0);
    EXPECT_GT(r, prev);
    prev = r;
  }
  const double overload = rewards.in_level_reward(Level::kOverload);
  EXPECT_LT(overload, 0.0);
  // r_O << 0: far below any positive reward.
  EXPECT_LT(overload, -10.0 * prev);
}

TEST(RewardTransition, SumsPerResourceRewards) {
  RewardSystem rewards({});
  const LevelPair next{Level::kLow, Level::kMedium};
  EXPECT_DOUBLE_EQ(rewards.out_reward(next),
                   rewards.out_level_reward(Level::kLow) +
                       rewards.out_level_reward(Level::kMedium));
  EXPECT_DOUBLE_EQ(rewards.in_reward(next),
                   rewards.in_level_reward(Level::kLow) +
                       rewards.in_level_reward(Level::kMedium));
}

TEST(RewardIn, SingleOverloadedResourceDominates) {
  RewardSystem rewards({});
  const LevelPair next{Level::kOverload, Level::kLow};
  EXPECT_LT(rewards.in_reward(next), 0.0);
}

TEST(RewardOut, EmptierDestinationPaysMore) {
  RewardSystem rewards({});
  const LevelPair lighter{Level::kLow, Level::kLow};
  const LevelPair heavier{Level::k4xHigh, Level::k4xHigh};
  EXPECT_GT(rewards.out_reward(lighter), rewards.out_reward(heavier));
}

TEST(RewardParams, Validation) {
  // out must stay positive at Overload: base too small for the step.
  EXPECT_THROW(RewardSystem({.out_base = 5.0, .out_step = 1.0}),
               precondition_error);
  EXPECT_THROW(RewardSystem({.out_step = 0.0}), precondition_error);
  EXPECT_THROW(RewardSystem({.in_base = -1.0}), precondition_error);
  EXPECT_THROW(RewardSystem({.in_step = 0.0}), precondition_error);
  EXPECT_THROW(RewardSystem({.in_overload = 5.0}), precondition_error);
}

}  // namespace
}  // namespace glap::core
