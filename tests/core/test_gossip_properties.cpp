// Property tests backing the paper's §IV-C convergence analysis
// (Theorem 1): gossip aggregation is pairwise averaging, so for a key
// every node holds, the global mean is an exact invariant of the process
// and the cross-node variance contracts monotonically toward 0.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/glap.hpp"
#include "overlay/cyclon.hpp"

namespace glap::core {
namespace {

struct Bed {
  cloud::DataCenter dc;
  sim::Engine engine;
  sim::Engine::ProtocolSlot learning;
  std::size_t n;

  explicit Bed(std::size_t nodes, std::uint64_t seed)
      : dc(nodes, nodes * 2, cloud::DataCenterConfig{}),
        engine(nodes, seed),
        n(nodes) {
    GlapConfig config;
    config.learning_rounds = 0;  // aggregation-only protocol
    config.aggregation_rounds = 1000;
    const auto overlay = overlay::CyclonProtocol::install(engine, {}, seed);
    learning =
        GossipLearningProtocol::install(engine, config, dc, overlay, seed);
    Rng rng(seed);
    dc.place_randomly(rng);
    std::vector<Resources> demands(nodes * 2, Resources{0.3, 0.3});
    dc.observe_demands(demands);
  }

  GossipLearningProtocol& node(sim::NodeId id) {
    return engine.protocol_at<GossipLearningProtocol>(learning, id);
  }

  RunningStats values(qlearn::State s, qlearn::Action a) {
    RunningStats stats;
    for (sim::NodeId i = 0; i < n; ++i)
      stats.add(node(i).tables().in.value(s, a));
    return stats;
  }
};

const qlearn::State kS{qlearn::Level::kHigh, qlearn::Level::kMedium};
const qlearn::Action kA{qlearn::Level::kMedium, qlearn::Level::kLow};

TEST(GossipAveraging, GlobalMeanIsInvariant) {
  Bed bed(32, 11);
  Rng rng(1);
  for (sim::NodeId i = 0; i < 32; ++i)
    bed.node(i).tables_mutable().in.set(kS, kA, rng.uniform(-50.0, 50.0));
  const double initial_mean = bed.values(kS, kA).mean();
  for (int round = 0; round < 30; ++round) bed.engine.step();
  EXPECT_NEAR(bed.values(kS, kA).mean(), initial_mean, 1e-9);
}

TEST(GossipAveraging, VarianceContractsMonotonically) {
  Bed bed(32, 12);
  Rng rng(2);
  for (sim::NodeId i = 0; i < 32; ++i)
    bed.node(i).tables_mutable().in.set(kS, kA, rng.uniform(0.0, 100.0));
  double prev_variance = bed.values(kS, kA).variance();
  for (int round = 0; round < 20; ++round) {
    bed.engine.step();
    const double variance = bed.values(kS, kA).variance();
    ASSERT_LE(variance, prev_variance + 1e-9) << "round " << round;
    prev_variance = variance;
  }
  // And it contracts a lot: exponential decay over 20 rounds.
  EXPECT_LT(prev_variance, 1.0);
}

TEST(GossipAveraging, UnionDisseminatesRareKeys) {
  // A key only one node holds must reach every node (union semantics).
  Bed bed(32, 13);
  bed.node(7).tables_mutable().out.set(kS, kA, 42.0);
  for (int round = 0; round < 25; ++round) bed.engine.step();
  for (sim::NodeId i = 0; i < 32; ++i)
    EXPECT_TRUE(bed.node(i).tables().out.contains(kS, kA))
        << "node " << i << " never learned the rare key";
}

TEST(GossipAveraging, ConvergedValueWithinInitialHull) {
  Bed bed(24, 14);
  for (sim::NodeId i = 0; i < 24; ++i)
    bed.node(i).tables_mutable().in.set(kS, kA,
                                        static_cast<double>(i) - 10.0);
  for (int round = 0; round < 40; ++round) bed.engine.step();
  const RunningStats stats = bed.values(kS, kA);
  EXPECT_GE(stats.min(), -10.0 - 1e-9);
  EXPECT_LE(stats.max(), 13.0 + 1e-9);
  // All nodes agree tightly.
  EXPECT_LT(stats.max() - stats.min(), 0.5);
}

}  // namespace
}  // namespace glap::core
