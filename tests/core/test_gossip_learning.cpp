#include "core/gossip_learning.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/glap.hpp"
#include "overlay/cyclon.hpp"
#include "trace/google_synth.hpp"

namespace glap::core {
namespace {

struct TestBed {
  cloud::DataCenter dc;
  sim::Engine engine;
  sim::Engine::ProtocolSlot overlay;
  sim::Engine::ProtocolSlot learning;

  TestBed(std::size_t pms, std::size_t vms, const GlapConfig& config,
          std::uint64_t seed)
      : dc(pms, vms, cloud::DataCenterConfig{}), engine(pms, seed) {
    Rng placement(hash_combine(seed, hash_tag("placement")));
    dc.place_randomly(placement);
    overlay = overlay::CyclonProtocol::install(engine, {}, seed);
    learning =
        GossipLearningProtocol::install(engine, config, dc, overlay, seed);
  }

  void advance_demands(std::uint64_t seed, std::uint32_t round) {
    std::vector<Resources> demands(dc.vm_count());
    Rng rng(hash_combine(seed, round));
    for (auto& d : demands) d = {rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.6)};
    dc.observe_demands(demands);
  }

  GossipLearningProtocol& node(sim::NodeId id) {
    return engine.protocol_at<GossipLearningProtocol>(learning, id);
  }

  double mean_similarity() {
    RunningStats stats;
    const auto n = static_cast<sim::NodeId>(engine.node_count());
    for (sim::NodeId a = 0; a < n; ++a)
      stats.add(cosine_similarity(node(a).tables(),
                                  node((a + 1) % n).tables()));
    return stats.mean();
  }
};

GlapConfig short_phases() {
  GlapConfig config;
  config.learning_rounds = 10;
  config.aggregation_rounds = 30;
  config.consolidation_start_round = 40;
  return config;
}

TEST(GossipLearning, PhaseProgression) {
  GlapConfig config = short_phases();
  TestBed bed(20, 40, config, 1);
  EXPECT_EQ(bed.node(0).phase(), GossipLearningProtocol::Phase::kLearning);
  for (std::uint32_t r = 0; r < 10; ++r) {
    bed.advance_demands(1, r);
    bed.engine.step();
  }
  EXPECT_EQ(bed.node(0).phase(),
            GossipLearningProtocol::Phase::kAggregation);
  for (std::uint32_t r = 10; r < 40; ++r) {
    bed.advance_demands(1, r);
    bed.engine.step();
  }
  EXPECT_EQ(bed.node(0).phase(), GossipLearningProtocol::Phase::kIdle);
}

TEST(GossipLearning, LearningPhaseProducesLocalTables) {
  GlapConfig config = short_phases();
  TestBed bed(20, 40, config, 2);
  for (std::uint32_t r = 0; r < 10; ++r) {
    bed.advance_demands(2, r);
    bed.engine.step();
  }
  std::size_t populated = 0;
  for (sim::NodeId n = 0; n < 20; ++n)
    if (!bed.node(n).tables().empty()) ++populated;
  EXPECT_GT(populated, 10u);
}

TEST(GossipLearning, AggregationUnifiesTables) {
  GlapConfig config = short_phases();
  TestBed bed(30, 60, config, 3);
  for (std::uint32_t r = 0; r < 10; ++r) {
    bed.advance_demands(3, r);
    bed.engine.step();
  }
  const double similarity_after_learning = bed.mean_similarity();
  for (std::uint32_t r = 10; r < 40; ++r) {
    bed.advance_demands(3, r);
    bed.engine.step();
  }
  const double similarity_after_aggregation = bed.mean_similarity();
  // The Fig. 5 behaviour: learning alone leaves tables dissimilar;
  // gossip aggregation converges them to (near-)identical.
  EXPECT_LT(similarity_after_learning, 0.95);
  EXPECT_GT(similarity_after_aggregation, 0.999);
  EXPECT_GT(similarity_after_aggregation, similarity_after_learning);
}

TEST(GossipLearning, HighlyLoadedPmsSkipTraining) {
  GlapConfig config = short_phases();
  config.learning_util_threshold = -1.0;  // nobody may train
  TestBed bed(10, 20, config, 4);
  for (std::uint32_t r = 0; r < 10; ++r) {
    bed.advance_demands(4, r);
    bed.engine.step();
  }
  for (sim::NodeId n = 0; n < 10; ++n)
    EXPECT_TRUE(bed.node(n).tables().empty());
}

TEST(GossipLearning, MergeIsPairwiseSymmetric) {
  GlapConfig config = short_phases();
  TestBed bed(2, 4, config, 5);
  // Hand-inject different tables, then run one aggregation exchange.
  bed.node(0).tables_mutable().out.set(
      {qlearn::Level::kLow, qlearn::Level::kLow},
      {qlearn::Level::kLow, qlearn::Level::kLow}, 4.0);
  bed.node(1).tables_mutable().out.set(
      {qlearn::Level::kLow, qlearn::Level::kLow},
      {qlearn::Level::kLow, qlearn::Level::kLow}, 8.0);
  // Skip straight to aggregation by stepping through learning rounds with
  // empty demand influence.
  for (std::uint32_t r = 0; r < 12; ++r) {
    bed.advance_demands(5, r);
    bed.engine.step();
  }
  const double v0 = bed.node(0).tables().out.value(
      {qlearn::Level::kLow, qlearn::Level::kLow},
      {qlearn::Level::kLow, qlearn::Level::kLow});
  const double v1 = bed.node(1).tables().out.value(
      {qlearn::Level::kLow, qlearn::Level::kLow},
      {qlearn::Level::kLow, qlearn::Level::kLow});
  EXPECT_DOUBLE_EQ(v0, v1);
}

TEST(GossipLearning, AggregationPreservesValueScale) {
  // Gossip averaging keeps values within the convex hull of initial ones.
  GlapConfig config = short_phases();
  config.learning_util_threshold = 0.0;  // no fresh training noise
  TestBed bed(16, 32, config, 6);
  const qlearn::State s{qlearn::Level::kMedium, qlearn::Level::kLow};
  const qlearn::Action a{qlearn::Level::kHigh, qlearn::Level::kLow};
  for (sim::NodeId n = 0; n < 16; ++n)
    bed.node(n).tables_mutable().in.set(s, a, static_cast<double>(n));
  for (std::uint32_t r = 0; r < 40; ++r) {
    bed.advance_demands(6, r);
    bed.engine.step();
  }
  for (sim::NodeId n = 0; n < 16; ++n) {
    const double v = bed.node(n).tables().in.value(s, a);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 15.0);
  }
  // And they agree.
  EXPECT_GT(bed.mean_similarity(), 0.999);
}

TEST(GossipLearning, InstallValidatesNodeMapping) {
  cloud::DataCenter dc(4, 8, cloud::DataCenterConfig{});
  sim::Engine engine(5, 1);  // mismatch: 5 nodes vs 4 PMs
  const auto overlay = overlay::CyclonProtocol::install(engine, {}, 1);
  EXPECT_THROW(
      GossipLearningProtocol::install(engine, GlapConfig{}, dc, overlay, 1),
      precondition_error);
}

}  // namespace
}  // namespace glap::core
