#include "core/consolidation.hpp"

#include <gtest/gtest.h>

#include "core/glap.hpp"
#include "overlay/random_graph.hpp"

namespace glap::core {
namespace {

using qlearn::Level;

/// A consolidation testbed with hand-seeded Q-tables: learning phases are
/// disabled (0 rounds) so the protocol activates immediately, and the
/// static random-graph overlay makes the pairing dense.
struct TestBed {
  cloud::DataCenter dc;
  sim::Engine engine;
  GlapConfig config;
  sim::Engine::ProtocolSlot overlay;
  sim::Engine::ProtocolSlot learning;
  sim::Engine::ProtocolSlot consolidation;

  TestBed(std::size_t pms, std::size_t vms, std::uint64_t seed)
      : dc(pms, vms, cloud::DataCenterConfig{}), engine(pms, seed) {
    config.learning_rounds = 0;
    config.aggregation_rounds = 0;
    config.consolidation_start_round = 0;
    overlay = overlay::RandomGraphProtocol::install(
        engine, {.degree = pms - 1}, seed);
    learning =
        GossipLearningProtocol::install(engine, config, dc, overlay, seed);
    consolidation = GlapConsolidationProtocol::install(
        engine, config, dc, overlay, learning, seed);
  }

  /// Seeds every node's Q-tables: OUT prefers any action; IN accepts all
  /// (state, action) pairs except those whose CPU state level is at least
  /// `reject_from_level` (value -1).
  void seed_tables(int reject_from_level) {
    for (sim::NodeId n = 0; n < engine.node_count(); ++n) {
      auto& tables = engine
                         .protocol_at<GossipLearningProtocol>(learning, n)
                         .tables_mutable();
      for (std::uint16_t s = 0; s < qlearn::kLevelPairCount; ++s) {
        for (std::uint16_t a = 0; a < qlearn::kLevelPairCount; ++a) {
          const auto state = qlearn::State::from_index(s);
          const auto action = qlearn::Action::from_index(a);
          tables.out.set(state, action, 1.0);
          const bool reject =
              static_cast<int>(qlearn::level_index(state.cpu)) >=
              reject_from_level;
          tables.in.set(state, action, reject ? -1.0 : 1.0);
        }
      }
    }
  }

  void set_demands(const std::vector<Resources>& demands) {
    dc.observe_demands(demands);
  }

  const ConsolidationStats& stats(sim::NodeId n) {
    return engine
        .protocol_at<GlapConsolidationProtocol>(consolidation, n)
        .stats();
  }
};

TEST(Consolidation, DrainsLessUtilizedPmToSleep) {
  TestBed bed(2, 3, 1);
  bed.dc.place(0, 0);
  bed.dc.place(1, 1);
  bed.dc.place(2, 1);
  bed.seed_tables(/*reject_from_level=*/9);  // accept everything
  bed.set_demands({{0.3, 0.3}, {0.3, 0.3}, {0.3, 0.3}});
  bed.engine.step();
  // PM 0 (1 VM) is less utilized: it drains to PM 1 and sleeps.
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 0u);
  EXPECT_EQ(bed.dc.pm(1).vm_count(), 3u);
  EXPECT_FALSE(bed.dc.pm_on(0));
  EXPECT_FALSE(bed.engine.is_active(0));
}

TEST(Consolidation, PiInRejectionBlocksMigration) {
  TestBed bed(2, 3, 2);
  bed.dc.place(0, 0);
  bed.dc.place(1, 1);
  bed.dc.place(2, 1);
  bed.seed_tables(/*reject_from_level=*/0);  // reject everything
  bed.set_demands({{0.3, 0.3}, {0.3, 0.3}, {0.3, 0.3}});
  bed.engine.step();
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 1u);
  EXPECT_EQ(bed.dc.pm(1).vm_count(), 2u);
  EXPECT_TRUE(bed.dc.pm_on(0));
  std::uint64_t rejects = 0;
  for (sim::NodeId n = 0; n < 2; ++n)
    rejects += bed.stats(n).rejected_by_pi_in;
  EXPECT_GT(rejects, 0u);
}

TEST(Consolidation, OverloadedPmShedsUntilRelieved) {
  TestBed bed(2, 8, 3);
  for (cloud::VmId v = 0; v < 7; ++v) bed.dc.place(v, 0);
  bed.dc.place(7, 1);
  bed.seed_tables(9);
  // 7 VMs at 80% CPU = 2800 MIPS > 2660: PM 0 overloaded.
  std::vector<Resources> demands(8, Resources{0.8, 0.3});
  bed.set_demands(demands);
  ASSERT_TRUE(bed.dc.overloaded(0));
  bed.engine.step();
  EXPECT_FALSE(bed.dc.overloaded(0));
  // Only enough VMs moved to clear the overload, not a full drain:
  // the overload path stops as soon as the PM is relieved.
  EXPECT_GE(bed.dc.pm(0).vm_count(), 5u);
}

TEST(Consolidation, CapacityGateBlocksMigration) {
  TestBed bed(2, 10, 4);
  for (cloud::VmId v = 0; v < 5; ++v) bed.dc.place(v, 0);
  for (cloud::VmId v = 5; v < 10; ++v) bed.dc.place(v, 1);
  bed.seed_tables(9);
  // Both PMs at 5 x 0.9 x 500 = 2250 MIPS; no VM fits anywhere else
  // (2250 + 450 > 2660 only allows... 2700 > 2660 -> blocked).
  std::vector<Resources> demands(10, Resources{0.9, 0.3});
  bed.set_demands(demands);
  bed.engine.step();
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 5u);
  EXPECT_EQ(bed.dc.pm(1).vm_count(), 5u);
  std::uint64_t capacity_rejects = 0;
  for (sim::NodeId n = 0; n < 2; ++n)
    capacity_rejects += bed.stats(n).rejected_by_capacity;
  EXPECT_GT(capacity_rejects, 0u);
}

TEST(Consolidation, WaitsForConfiguredStartRound) {
  TestBed bed(2, 2, 5);
  // Rebuild with a delayed start.
  cloud::DataCenter dc(2, 2, cloud::DataCenterConfig{});
  sim::Engine engine(2, 5);
  GlapConfig config;
  config.learning_rounds = 0;
  config.aggregation_rounds = 0;
  config.consolidation_start_round = 3;
  const auto overlay =
      overlay::RandomGraphProtocol::install(engine, {.degree = 1}, 5);
  const auto learning =
      GossipLearningProtocol::install(engine, config, dc, overlay, 5);
  GlapConsolidationProtocol::install(engine, config, dc, overlay, learning,
                                     5);
  dc.place(0, 0);
  dc.place(1, 1);
  std::vector<Resources> demands(2, Resources{0.2, 0.2});
  for (int round = 0; round < 3; ++round) {
    dc.observe_demands(demands);
    engine.step();
    // Nothing may move before the start round.
    EXPECT_EQ(dc.total_migrations(), 0u) << "round " << round;
  }
  dc.observe_demands(demands);
  engine.step();
  EXPECT_GT(dc.total_migrations(), 0u);
}

TEST(Consolidation, SingleActivePmDoesNothing) {
  TestBed bed(2, 2, 6);
  bed.dc.place(0, 0);
  bed.dc.place(1, 0);
  bed.seed_tables(9);
  bed.dc.set_power(1, cloud::PmPower::kSleep);
  bed.engine.set_status(1, sim::NodeStatus::kSleeping);
  bed.set_demands({{0.3, 0.3}, {0.3, 0.3}});
  bed.engine.step();
  EXPECT_EQ(bed.dc.total_migrations(), 0u);
  EXPECT_TRUE(bed.dc.pm_on(0));
}

TEST(Consolidation, EmptyTablesStillConsolidate) {
  // Unknown Q-values read as 0: pi_in accepts (>= 0) and pi_out picks an
  // arbitrary available action — consolidation still proceeds (the paper
  // notes PMs without Q-values simply act on defaults until aggregation
  // fills them in).
  TestBed bed(2, 2, 7);
  bed.dc.place(0, 0);
  bed.dc.place(1, 1);
  bed.set_demands({{0.2, 0.2}, {0.2, 0.2}});
  bed.engine.step();
  EXPECT_EQ(bed.dc.active_pm_count(), 1u);
}

TEST(Consolidation, StatsCountExchanges) {
  TestBed bed(4, 4, 8);
  for (cloud::VmId v = 0; v < 4; ++v) bed.dc.place(v, v);
  bed.seed_tables(9);
  std::vector<Resources> demands(4, Resources{0.3, 0.3});
  bed.set_demands(demands);
  bed.engine.step();
  std::uint64_t exchanges = 0;
  for (sim::NodeId n = 0; n < 4; ++n) exchanges += bed.stats(n).exchanges;
  EXPECT_GT(exchanges, 0u);
}

}  // namespace
}  // namespace glap::core
