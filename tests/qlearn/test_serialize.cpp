#include "qlearn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace glap::qlearn {
namespace {

TEST(Serialize, RoundTripPreservesEveryEntry) {
  QTable table;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const auto s = State::from_index(
        static_cast<std::uint16_t>(rng.bounded(kLevelPairCount)));
    const auto a = Action::from_index(
        static_cast<std::uint16_t>(rng.bounded(kLevelPairCount)));
    table.set(s, a, rng.uniform(-300.0, 20.0));
  }
  std::ostringstream os;
  save_qtable(table, os);
  std::istringstream in(os.str());
  const QTable loaded = load_qtable(in);
  ASSERT_EQ(loaded.size(), table.size());
  for (const auto& [key, q] : table.entries()) {
    const State s = QTable::state_of(key);
    const Action a = QTable::action_of(key);
    EXPECT_TRUE(loaded.contains(s, a));
    EXPECT_DOUBLE_EQ(loaded.value(s, a), q);
  }
}

TEST(Serialize, EmptyTableRoundTrips) {
  QTable table;
  std::ostringstream os;
  save_qtable(table, os);
  std::istringstream in(os.str());
  EXPECT_TRUE(load_qtable(in).empty());
}

TEST(Serialize, OutputIsSortedAndHumanReadable) {
  QTable table;
  table.set({Level::kHigh, Level::kLow}, {Level::kMedium, Level::kLow}, 2.5);
  table.set({Level::kLow, Level::kLow}, {Level::kLow, Level::kLow}, -1.0);
  std::ostringstream os;
  save_qtable(table, os);
  const std::string text = os.str();
  // The Low/Low entry sorts before High/Low (smaller key).
  EXPECT_LT(text.find("Low,Low,Low,Low,-1"), text.find("High,Low,Medium"));
  EXPECT_NE(text.find("state_cpu"), std::string::npos);
}

TEST(Serialize, LevelNameParsing) {
  EXPECT_EQ(level_from_string("Low"), Level::kLow);
  EXPECT_EQ(level_from_string("5xHigh"), Level::k5xHigh);
  EXPECT_EQ(level_from_string("Overload"), Level::kOverload);
  EXPECT_THROW(level_from_string("Bogus"), precondition_error);
}

TEST(Serialize, MalformedInputRejected) {
  std::istringstream bad_header("a,b,c\n");
  EXPECT_THROW(load_qtable(bad_header), precondition_error);
  std::istringstream bad_row(
      "state_cpu,state_mem,action_cpu,action_mem,q\nLow,Low,Low\n");
  EXPECT_THROW(load_qtable(bad_row), precondition_error);
  std::istringstream bad_level(
      "state_cpu,state_mem,action_cpu,action_mem,q\nNope,Low,Low,Low,1\n");
  EXPECT_THROW(load_qtable(bad_level), precondition_error);
}

// Golden-bytes test: the CSV wire format is a compatibility surface
// (saved policies from older runs must keep loading), so pin the exact
// serialized bytes for a fixed table and require load→save to reproduce
// them identically. Any storage-layer change that reorders rows or
// reformats values shows up here as a diff.
TEST(Serialize, GoldenBytesRoundTripExactly) {
  const std::string golden =
      "state_cpu,state_mem,action_cpu,action_mem,q\n"
      "Low,Low,Low,Low,2.5\n"
      "Low,Medium,High,Overload,-0.75\n"
      "xHigh,2xHigh,3xHigh,4xHigh,0.10000000000000001\n"
      "Overload,Overload,5xHigh,xHigh,42\n";

  // Insert in scrambled order; output must come out key-sorted.
  QTable table;
  table.set({Level::kOverload, Level::kOverload},
            {Level::k5xHigh, Level::kXHigh}, 42.0);
  table.set({Level::kLow, Level::kMedium},
            {Level::kHigh, Level::kOverload}, -0.75);
  table.set({Level::kXHigh, Level::k2xHigh},
            {Level::k3xHigh, Level::k4xHigh}, 0.1);
  table.set({Level::kLow, Level::kLow}, {Level::kLow, Level::kLow}, 2.5);

  std::ostringstream saved;
  save_qtable(table, saved);
  EXPECT_EQ(saved.str(), golden);

  std::istringstream in(golden);
  const QTable loaded = load_qtable(in);
  std::ostringstream resaved;
  save_qtable(loaded, resaved);
  EXPECT_EQ(resaved.str(), golden);
}

TEST(Serialize, PreservesExtremePrecision) {
  QTable table;
  table.set({Level::kLow, Level::kLow}, {Level::kLow, Level::kLow},
            0.12345678901234567);
  std::ostringstream os;
  save_qtable(table, os);
  std::istringstream in(os.str());
  const QTable loaded = load_qtable(in);
  EXPECT_DOUBLE_EQ(
      loaded.value({Level::kLow, Level::kLow}, {Level::kLow, Level::kLow}),
      0.12345678901234567);
}

}  // namespace
}  // namespace glap::qlearn
