#include "qlearn/levels.hpp"

#include <gtest/gtest.h>

namespace glap::qlearn {
namespace {

struct BoundaryCase {
  double utilization;
  Level expected;
};

class LevelBoundaryTest : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(LevelBoundaryTest, MapsToPaperLevel) {
  EXPECT_EQ(level_of(GetParam().utilization), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperThresholds, LevelBoundaryTest,
    ::testing::Values(
        // Exact boundaries from the paper's calibration table (§IV-A):
        // each threshold belongs to the lower level (x <= bound).
        BoundaryCase{0.0, Level::kLow}, BoundaryCase{0.2, Level::kLow},
        BoundaryCase{0.2000001, Level::kMedium},
        BoundaryCase{0.4, Level::kMedium}, BoundaryCase{0.45, Level::kHigh},
        BoundaryCase{0.5, Level::kHigh}, BoundaryCase{0.55, Level::kXHigh},
        BoundaryCase{0.6, Level::kXHigh}, BoundaryCase{0.65, Level::k2xHigh},
        BoundaryCase{0.7, Level::k2xHigh}, BoundaryCase{0.75, Level::k3xHigh},
        BoundaryCase{0.8, Level::k3xHigh}, BoundaryCase{0.85, Level::k4xHigh},
        BoundaryCase{0.9, Level::k4xHigh}, BoundaryCase{0.95, Level::k5xHigh},
        BoundaryCase{0.999, Level::k5xHigh},
        BoundaryCase{1.0, Level::kOverload},
        // Oversubscription is Overload too.
        BoundaryCase{1.3, Level::kOverload}));

TEST(Levels, PaperExampleVmAction) {
  // "a VM with average CPU and memory demand 0.85 and 0.56 ... indicates
  // an action (4xHigh, xHigh)".
  const LevelPair action = classify(0.85, 0.56);
  EXPECT_EQ(action.cpu, Level::k4xHigh);
  EXPECT_EQ(action.mem, Level::kXHigh);
}

TEST(Levels, PaperExamplePmState) {
  // Aggregated demands (0.95, 0.76) -> (5xHigh, 3xHigh).
  const LevelPair state = classify(0.95, 0.76);
  EXPECT_EQ(state.cpu, Level::k5xHigh);
  EXPECT_EQ(state.mem, Level::k3xHigh);
}

TEST(Levels, IndexRoundTripCoversAllPairs) {
  for (std::uint16_t i = 0; i < kLevelPairCount; ++i) {
    const LevelPair pair = LevelPair::from_index(i);
    EXPECT_EQ(pair.index(), i);
  }
}

TEST(Levels, IndexIsBijective) {
  std::vector<bool> seen(kLevelPairCount, false);
  for (std::size_t c = 0; c < kLevelCount; ++c)
    for (std::size_t m = 0; m < kLevelCount; ++m) {
      const LevelPair pair{static_cast<Level>(c), static_cast<Level>(m)};
      ASSERT_LT(pair.index(), kLevelPairCount);
      EXPECT_FALSE(seen[pair.index()]);
      seen[pair.index()] = true;
    }
}

TEST(Levels, MidpointsAreInsideBands) {
  for (std::size_t i = 0; i < kLevelCount; ++i) {
    const auto level = static_cast<Level>(i);
    EXPECT_EQ(level_of(level_midpoint(level)), level)
        << to_string(level);
  }
}

TEST(Levels, MidpointsIncrease) {
  for (std::size_t i = 1; i < kLevelCount; ++i)
    EXPECT_GT(level_midpoint(static_cast<Level>(i)),
              level_midpoint(static_cast<Level>(i - 1)));
}

TEST(Levels, AnyOverload) {
  EXPECT_TRUE((LevelPair{Level::kOverload, Level::kLow}).any_overload());
  EXPECT_TRUE((LevelPair{Level::kLow, Level::kOverload}).any_overload());
  EXPECT_FALSE((LevelPair{Level::k5xHigh, Level::k5xHigh}).any_overload());
}

TEST(Levels, ToStringNames) {
  EXPECT_EQ(to_string(Level::kLow), "Low");
  EXPECT_EQ(to_string(Level::k3xHigh), "3xHigh");
  EXPECT_EQ(to_string(Level::kOverload), "Overload");
  EXPECT_EQ(to_string(LevelPair{Level::kHigh, Level::kMedium}),
            "(High, Medium)");
}

TEST(Levels, Equality) {
  EXPECT_EQ((LevelPair{Level::kLow, Level::kHigh}),
            (LevelPair{Level::kLow, Level::kHigh}));
  EXPECT_FALSE((LevelPair{Level::kLow, Level::kHigh}) ==
               (LevelPair{Level::kHigh, Level::kLow}));
}

}  // namespace
}  // namespace glap::qlearn
