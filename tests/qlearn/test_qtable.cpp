#include "qlearn/qtable.hpp"

#include <gtest/gtest.h>

namespace glap::qlearn {
namespace {

const State kStateA{Level::kLow, Level::kLow};
const State kStateB{Level::kHigh, Level::kMedium};
const Action kActA{Level::kMedium, Level::kLow};
const Action kActB{Level::k4xHigh, Level::kXHigh};

TEST(QTable, DefaultsToZeroAndEmpty) {
  QTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.value(kStateA, kActA), 0.0);
  EXPECT_FALSE(table.contains(kStateA, kActA));
}

TEST(QTable, SetAndGet) {
  QTable table;
  table.set(kStateA, kActA, 3.5);
  EXPECT_TRUE(table.contains(kStateA, kActA));
  EXPECT_DOUBLE_EQ(table.value(kStateA, kActA), 3.5);
  EXPECT_EQ(table.size(), 1u);
}

TEST(QTable, UpdateMatchesBellmanArithmetic) {
  QTable table;
  const QLearningParams params{.alpha = 0.5, .gamma = 0.8};
  // Seed the next state's best action value.
  table.set(kStateB, kActB, 10.0);
  table.set(kStateA, kActA, 2.0);
  // Q <- (1-a)*2 + a*(R + g*max_a' Q(B, a')) = 0.5*2 + 0.5*(4 + 0.8*10)
  table.update(kStateA, kActA, 4.0, kStateB, params);
  EXPECT_DOUBLE_EQ(table.value(kStateA, kActA), 1.0 + 0.5 * 12.0);
}

TEST(QTable, UpdateFromUnknownPairStartsAtZero) {
  QTable table;
  const QLearningParams params{.alpha = 0.5, .gamma = 0.8};
  table.update(kStateA, kActA, 6.0, kStateB, params);
  // (1-0.5)*0 + 0.5*(6 + 0.8*0) = 3
  EXPECT_DOUBLE_EQ(table.value(kStateA, kActA), 3.0);
}

TEST(QTable, UpdateAlphaOneIsDeterministic) {
  QTable table;
  const QLearningParams params{.alpha = 1.0, .gamma = 0.0};
  table.set(kStateA, kActA, 100.0);
  table.update(kStateA, kActA, 7.0, kStateB, params);
  EXPECT_DOUBLE_EQ(table.value(kStateA, kActA), 7.0);
}

TEST(QTable, MaxValueOverKnownActions) {
  QTable table;
  EXPECT_DOUBLE_EQ(table.max_value(kStateA), 0.0);
  table.set(kStateA, kActA, -5.0);
  EXPECT_DOUBLE_EQ(table.max_value(kStateA), -5.0);
  table.set(kStateA, kActB, 2.0);
  EXPECT_DOUBLE_EQ(table.max_value(kStateA), 2.0);
  // Other states do not leak in.
  table.set(kStateB, kActA, 99.0);
  EXPECT_DOUBLE_EQ(table.max_value(kStateA), 2.0);
}

TEST(QTable, BestActionRestrictedToAvailable) {
  QTable table;
  table.set(kStateA, kActA, 1.0);
  table.set(kStateA, kActB, 10.0);
  const auto best = table.best_action(kStateA, {kActA});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, kActA);  // kActB is not available
  const auto best2 = table.best_action(kStateA, {kActA, kActB});
  ASSERT_TRUE(best2.has_value());
  EXPECT_EQ(*best2, kActB);
}

TEST(QTable, BestActionEmptyAvailableIsNullopt) {
  QTable table;
  EXPECT_EQ(table.best_action(kStateA, {}), std::nullopt);
}

TEST(QTable, BestActionUnknownPairsCountAsZero) {
  QTable table;
  table.set(kStateA, kActA, -3.0);
  // Unknown kActB has implicit value 0 > -3.
  const auto best = table.best_action(kStateA, {kActA, kActB});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, kActB);
}

TEST(QTable, BestActionTieBreaksFirst) {
  QTable table;
  table.set(kStateA, kActA, 5.0);
  table.set(kStateA, kActB, 5.0);
  const auto best = table.best_action(kStateA, {kActA, kActB});
  EXPECT_EQ(*best, kActA);
}

TEST(QTable, MergeAveragesCommonKeys) {
  QTable a, b;
  a.set(kStateA, kActA, 2.0);
  b.set(kStateA, kActA, 6.0);
  a.merge_average(b);
  EXPECT_DOUBLE_EQ(a.value(kStateA, kActA), 4.0);
}

TEST(QTable, MergeAdoptsDisjointKeys) {
  QTable a, b;
  a.set(kStateA, kActA, 2.0);
  b.set(kStateB, kActB, 8.0);
  a.merge_average(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.value(kStateA, kActA), 2.0);
  EXPECT_DOUBLE_EQ(a.value(kStateB, kActB), 8.0);
}

TEST(QTable, SymmetricMergeConverges) {
  QTable a, b;
  a.set(kStateA, kActA, 0.0);
  b.set(kStateA, kActA, 8.0);
  QTable merged = a;
  merged.merge_average(b);
  // Both parties adopting the merged table end up identical; their common
  // key holds the average.
  EXPECT_DOUBLE_EQ(merged.value(kStateA, kActA), 4.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(merged, merged), 1.0);
}

TEST(QTable, CosineSimilarityCases) {
  QTable a, b;
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 1.0);  // both empty
  a.set(kStateA, kActA, 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);  // one empty
  b.set(kStateA, kActA, 2.0);
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-12);  // parallel
  QTable c;
  c.set(kStateB, kActB, 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 0.0);  // orthogonal keys
}

TEST(QTable, DenseSnapshot) {
  QTable table;
  table.set(kStateA, kActA, 2.5);
  const auto dense = table.dense();
  EXPECT_EQ(dense.size(), kLevelPairCount * kLevelPairCount);
  EXPECT_DOUBLE_EQ(dense[QTable::key_of(kStateA, kActA)], 2.5);
  double sum = 0.0;
  for (double v : dense) sum += v;
  EXPECT_DOUBLE_EQ(sum, 2.5);
}

TEST(QTable, KeyRoundTrip) {
  const auto key = QTable::key_of(kStateB, kActB);
  EXPECT_EQ(QTable::state_of(key), kStateB);
  EXPECT_EQ(QTable::action_of(key), kActB);
}

TEST(QTable, ClearEmpties) {
  QTable table;
  table.set(kStateA, kActA, 1.0);
  table.clear();
  EXPECT_TRUE(table.empty());
}

}  // namespace
}  // namespace glap::qlearn
