// Differential test for the flat-array QTable: drives it alongside a
// straightforward unordered_map reference (the seed implementation's
// storage) through tens of thousands of randomized operations and
// requires bit-identical results throughout. This pins down the flat
// table's two load-bearing claims: sparsity semantics are preserved
// ("no entry" is distinct from "value 0"), and every kernel — Bellman
// update, greedy lookups, Algorithm 2's merge, the Fig. 5 cosine —
// computes the exact same doubles as the map-based version.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "qlearn/qtable.hpp"

namespace glap::qlearn {
namespace {

/// Hash-map Q-table with the seed implementation's semantics, used as the
/// differential oracle. Mirrors the documented QTable contract exactly.
class ReferenceQTable {
 public:
  using Key = QTable::Key;

  [[nodiscard]] double value(State s, Action a) const {
    const auto it = map_.find(QTable::key_of(s, a));
    return it == map_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] bool contains(State s, Action a) const {
    return map_.count(QTable::key_of(s, a)) != 0;
  }

  void set(State s, Action a, double q) { map_[QTable::key_of(s, a)] = q; }

  void update(State s, Action a, double reward, State next,
              const QLearningParams& params) {
    const double old_q = value(s, a);
    const double target = reward + params.gamma * max_value(next);
    map_[QTable::key_of(s, a)] =
        (1.0 - params.alpha) * old_q + params.alpha * target;
  }

  [[nodiscard]] double max_value(State s) const {
    double best = 0.0;
    bool found = false;
    for (std::uint16_t ai = 0; ai < kLevelPairCount; ++ai) {
      const auto it =
          map_.find(QTable::key_of(s, Action::from_index(ai)));
      if (it == map_.end()) continue;
      if (!found || it->second > best) best = it->second;
      found = true;
    }
    return found ? best : 0.0;
  }

  [[nodiscard]] std::optional<Action> best_action(
      State s, const std::vector<Action>& available) const {
    std::optional<Action> best;
    double best_q = 0.0;
    for (const Action& a : available) {
      const double q = value(s, a);
      if (!best || q > best_q) {
        best = a;
        best_q = q;
      }
    }
    return best;
  }

  void merge_average(const ReferenceQTable& other) {
    for (const auto& [key, theirs] : other.map_) {
      const auto it = map_.find(key);
      if (it == map_.end())
        map_[key] = theirs;
      else
        it->second = 0.5 * (it->second + theirs);
    }
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Dense 6561-dim expansion (absent keys are 0.0).
  [[nodiscard]] std::array<double, QTable::kEntryCount> dense() const {
    std::array<double, QTable::kEntryCount> out{};
    for (const auto& [key, q] : map_) out[key] = q;
    return out;
  }

  /// Cosine similarity with the same edge-case ladder and the same
  /// summation order as the flat kernel (four accumulator chains over
  /// k ≡ j mod 4, combined as (s0+s1)+(s2+s3)), computed from the hash
  /// maps via dense expansion. The chain structure is part of the
  /// kernel's documented deterministic result.
  [[nodiscard]] static double cosine(const ReferenceQTable& a,
                                     const ReferenceQTable& b) {
    if (a.map_.empty() && b.map_.empty()) return 1.0;
    if (a.map_.empty() || b.map_.empty()) return 0.0;
    const auto da = a.dense();
    const auto db = b.dense();
    double dot[4] = {}, na[4] = {}, nb[4] = {};
    constexpr std::size_t kBlocked = QTable::kEntryCount & ~std::size_t{3};
    for (std::size_t k = 0; k < kBlocked; k += 4) {
      for (std::size_t j = 0; j < 4; ++j) {
        dot[j] += da[k + j] * db[k + j];
        na[j] += da[k + j] * da[k + j];
        nb[j] += db[k + j] * db[k + j];
      }
    }
    double dot_s = (dot[0] + dot[1]) + (dot[2] + dot[3]);
    double norm_a = (na[0] + na[1]) + (na[2] + na[3]);
    double norm_b = (nb[0] + nb[1]) + (nb[2] + nb[3]);
    for (std::size_t k = kBlocked; k < QTable::kEntryCount; ++k) {
      dot_s += da[k] * db[k];
      norm_a += da[k] * da[k];
      norm_b += db[k] * db[k];
    }
    if (norm_a == 0.0 && norm_b == 0.0) return 1.0;
    if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
    return dot_s / (std::sqrt(norm_a) * std::sqrt(norm_b));
  }

 private:
  std::unordered_map<Key, double> map_;
};

LevelPair random_pair(Rng& rng) {
  return LevelPair::from_index(
      static_cast<std::uint16_t>(rng.bounded(kLevelPairCount)));
}

/// Full-state comparison: every one of the 6561 keys must agree on
/// presence and hold the bit-identical double.
void expect_identical(const QTable& flat, const ReferenceQTable& ref) {
  ASSERT_EQ(flat.size(), ref.size());
  for (std::uint16_t si = 0; si < kLevelPairCount; ++si) {
    const State s = State::from_index(si);
    for (std::uint16_t ai = 0; ai < kLevelPairCount; ++ai) {
      const Action a = Action::from_index(ai);
      ASSERT_EQ(flat.contains(s, a), ref.contains(s, a))
          << "presence mismatch at s=" << si << " a=" << ai;
      // EXPECT_EQ on doubles is exact (bit-identical up to -0.0 == 0.0),
      // which is the point: the flat kernels must not reorder arithmetic.
      ASSERT_EQ(flat.value(s, a), ref.value(s, a))
          << "value mismatch at s=" << si << " a=" << ai;
    }
  }
}

TEST(QTableDifferential, TenThousandRandomizedOpsMatchHashMapReference) {
  QTable flat_a, flat_b;
  ReferenceQTable ref_a, ref_b;
  const QLearningParams params;
  Rng rng(20260805);

  constexpr int kOps = 12000;
  for (int op = 0; op < kOps; ++op) {
    const auto roll = rng.bounded(100);
    QTable& flat = roll % 2 ? flat_b : flat_a;
    ReferenceQTable& ref = roll % 2 ? ref_b : ref_a;
    if (roll < 50) {
      // Bellman update with a random transition and reward.
      const State s = random_pair(rng);
      const Action a = random_pair(rng);
      const State next = random_pair(rng);
      const double reward = rng.uniform(-300.0, 20.0);
      flat.update(s, a, reward, next, params);
      ref.update(s, a, reward, next, params);
    } else if (roll < 70) {
      const State s = random_pair(rng);
      const Action a = random_pair(rng);
      const double q = rng.uniform(-10.0, 10.0);
      flat.set(s, a, q);
      ref.set(s, a, q);
    } else if (roll < 80) {
      const State s = random_pair(rng);
      ASSERT_EQ(flat.max_value(s), ref.max_value(s));
    } else if (roll < 92) {
      // Greedy policy with a random (possibly duplicated) action menu.
      const State s = random_pair(rng);
      std::vector<Action> available;
      const auto n = rng.bounded(8);
      for (std::uint64_t i = 0; i < n; ++i)
        available.push_back(random_pair(rng));
      const auto got = flat.best_action(s, available);
      const auto want = ref.best_action(s, available);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got) {
        ASSERT_EQ(*got, *want);
        ASSERT_EQ(flat.value(s, *got), ref.value(s, *want));
      }
    } else if (roll < 97) {
      ASSERT_EQ(cosine_similarity(flat_a, flat_b),
                ReferenceQTable::cosine(ref_a, ref_b));
    } else {
      // Algorithm 2's push-pull merge in a random direction.
      if (roll % 2) {
        flat_a.merge_average(flat_b);
        ref_a.merge_average(ref_b);
      } else {
        flat_b.merge_average(flat_a);
        ref_b.merge_average(ref_a);
      }
    }
    if (op % 500 == 0) {
      expect_identical(flat_a, ref_a);
      expect_identical(flat_b, ref_b);
    }
  }
  expect_identical(flat_a, ref_a);
  expect_identical(flat_b, ref_b);
  ASSERT_EQ(cosine_similarity(flat_a, flat_b),
            ReferenceQTable::cosine(ref_a, ref_b));
}

TEST(QTableDifferential, BestActionTieBreaksTowardFirstAvailable) {
  QTable table;
  const State s{Level::kHigh, Level::kMedium};
  const Action a0{Level::kLow, Level::kLow};
  const Action a1{Level::kMedium, Level::kLow};
  const Action a2{Level::kHigh, Level::kHigh};

  // All unknown: everything ties at Q = 0, first in `available` wins.
  EXPECT_EQ(table.best_action(s, {a1, a0, a2}), a1);

  // Explicit equal values tie toward the first occurrence, regardless of
  // key order.
  table.set(s, a0, 1.5);
  table.set(s, a1, 1.5);
  table.set(s, a2, 1.5);
  EXPECT_EQ(table.best_action(s, {a2, a0, a1}), a2);
  EXPECT_EQ(table.best_action(s, {a0, a2, a1}), a0);

  // An unknown action counts as Q = 0 and beats known negative values.
  table.set(s, a0, -4.0);
  table.set(s, a1, -2.0);
  const Action unknown{Level::kOverload, Level::kOverload};
  EXPECT_EQ(table.best_action(s, {a0, a1, unknown}), unknown);

  // ... and ties at 0 against other unknowns, first occurrence first.
  const Action unknown2{Level::k4xHigh, Level::kLow};
  EXPECT_EQ(table.best_action(s, {a0, unknown2, unknown}), unknown2);

  EXPECT_EQ(table.best_action(s, {}), std::nullopt);
}

}  // namespace
}  // namespace glap::qlearn
