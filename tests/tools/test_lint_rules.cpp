// Fixture-driven unit tests for every glap-lint rule: each rule has a
// pass fixture (0 findings), a fail fixture (>=1 finding, all under that
// rule), and a suppressed fixture (same hazard excused by a justified
// allow comment). A completeness test pins that the fixture set can
// never silently fall behind the rule catalogue.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "lint/lint.hpp"

namespace glap::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Each rule's fixtures are linted *as if* they lived at a path where the
// rule is in force — e.g. unordered-iteration only fires in protocol
// dirs, float-narrowing only in Q-kernel files.
const std::map<std::string, std::string>& as_path_for_rule() {
  static const std::map<std::string, std::string> kAsPath = {
      {"wall-clock", "bench/fixture.cpp"},
      {"banned-random", "src/core/fixture.cpp"},
      {"unordered-iteration", "src/sim/fixture.cpp"},
      {"pointer-order", "src/sim/fixture.cpp"},
      {"static-mutable", "src/overlay/fixture.cpp"},
      {"trace-kind", "src/common/fixture.cpp"},
      {"checks-guard", "src/common/fixture.cpp"},
      {"float-narrowing", "src/qlearn/fixture.cpp"},
      {"hot-alloc", "src/sim/fixture.cpp"},
      {"suppression", "bench/fixture.cpp"},
  };
  return kAsPath;
}

FileReport lint_fixture(const std::string& rule, const std::string& which) {
  const std::string path =
      std::string(GLAP_TESTS_DIR) + "/fixtures/lint/" + rule + "/" + which +
      ".cpp";
  return lint_source(as_path_for_rule().at(rule), read_file(path));
}

class LintRuleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LintRuleTest, PassFixtureIsClean) {
  const FileReport report = lint_fixture(GetParam(), "pass");
  for (const Finding& f : report.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                  << "] " << f.message;
}

TEST_P(LintRuleTest, FailFixtureFlagsOnlyThisRule) {
  const FileReport report = lint_fixture(GetParam(), "fail");
  ASSERT_FALSE(report.findings.empty());
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, GetParam()) << f.message;
    EXPECT_GT(f.line, 0u);
    EXPECT_FALSE(f.message.empty());
  }
}

TEST_P(LintRuleTest, SuppressedFixtureIsCleanAndUsesItsAllows) {
  const FileReport report = lint_fixture(GetParam(), "suppressed");
  for (const Finding& f : report.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                  << "] " << f.message;
  std::size_t used = 0;
  for (const Suppression& s : report.suppressions) {
    EXPECT_FALSE(s.reason.empty()) << "allow without justification";
    if (s.used) ++used;
  }
  EXPECT_GE(used, 1u) << "suppressed fixture's allow matched nothing";
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleTest,
    ::testing::Values("wall-clock", "banned-random", "unordered-iteration",
                      "pointer-order", "static-mutable", "trace-kind",
                      "checks-guard", "float-narrowing", "hot-alloc",
                      "suppression"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(LintRules, EveryCatalogueRuleHasAllThreeFixtures) {
  namespace fs = std::filesystem;
  for (const RuleInfo& r : rules()) {
    if (is_project_rule(r.name)) {
      // Project rules use fixture *trees* (driven by test_lint_model.cpp):
      // pass/, fail/ and suppressed/ directories shaped like a mini repo.
      for (const char* which : {"pass", "fail", "suppressed"}) {
        const fs::path dir = fs::path(GLAP_TESTS_DIR) / "fixtures" / "lint" /
                             r.name / which;
        EXPECT_TRUE(fs::is_directory(dir))
            << "missing fixture tree: " << dir;
      }
      continue;
    }
    EXPECT_TRUE(as_path_for_rule().count(r.name))
        << "rule " << r.name << " has no fixture mapping — add "
        << "tests/fixtures/lint/" << r.name << "/{pass,fail,suppressed}.cpp";
    for (const char* which : {"pass", "fail", "suppressed"}) {
      const std::string path = std::string(GLAP_TESTS_DIR) +
                               "/fixtures/lint/" + r.name + "/" + which +
                               ".cpp";
      std::ifstream in(path);
      EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
    }
  }
}

// Directory scoping: the same hazard is a violation in protocol code and
// silent outside it.
TEST(LintRules, UnorderedIterationOnlyFiresInProtocolDirs) {
  const std::string code =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<int,int>& m) {\n"
      "  int t = 0;\n"
      "  for (const auto& [k, v] : m) t += v;\n"
      "  return t;\n"
      "}\n";
  EXPECT_FALSE(lint_source("src/sim/x.cpp", code).findings.empty());
  EXPECT_FALSE(lint_source("src/baselines/x.cpp", code).findings.empty());
  EXPECT_TRUE(lint_source("tools/x.cpp", code).findings.empty());
  EXPECT_TRUE(lint_source("src/harness/x.cpp", code).findings.empty());
}

TEST(LintRules, WallClockWhitelistCoversProfilerAndRngOnly) {
  const std::string code =
      "#include <chrono>\n"
      "double t() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n";
  EXPECT_TRUE(lint_source("src/common/profiler.cpp", code).findings.empty());
  EXPECT_TRUE(lint_source("src/common/rng.cpp", code).findings.empty());
  EXPECT_FALSE(lint_source("src/common/metrics.cpp", code).findings.empty());
  EXPECT_FALSE(lint_source("src/sim/engine.cpp", code).findings.empty());
}

TEST(LintRules, FloatNarrowingCoversQtablePairButNotOtherCore) {
  const std::string code = "float q = 0.0f;\n";
  EXPECT_FALSE(
      lint_source("src/core/qtable_pair.cpp", code).findings.empty());
  EXPECT_FALSE(lint_source("src/qlearn/qtable.hpp", code).findings.empty());
  EXPECT_TRUE(lint_source("src/core/rewards.cpp", code).findings.empty());
}

// hot-alloc is scoped twice: by directory (src/sim, src/core) and by
// scope (round-loop functions only); a reserve anywhere in the file
// excuses push_back growth.
TEST(LintRules, HotAllocFiresOnlyInRoundLoopScopesOfSimAndCore) {
  const std::string hot =
      "#include <vector>\n"
      "void learning_cycle(std::vector<int>& v) { v.push_back(1); }\n";
  EXPECT_FALSE(lint_source("src/sim/x.cpp", hot).findings.empty());
  EXPECT_FALSE(lint_source("src/core/x.cpp", hot).findings.empty());
  EXPECT_TRUE(lint_source("src/overlay/x.cpp", hot).findings.empty());
  EXPECT_TRUE(lint_source("src/harness/x.cpp", hot).findings.empty());
  const std::string cold =
      "#include <vector>\n"
      "void install(std::vector<int>& v) { v.push_back(1); }\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", cold).findings.empty());
  const std::string reserved =
      "#include <vector>\n"
      "void prime(std::vector<int>& v) { v.reserve(8); }\n"
      "void learning_cycle(std::vector<int>& v) { v.push_back(1); }\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", reserved).findings.empty());
}

// A stale allow is itself a finding: deleting the hazard without deleting
// its excuse shrinks the allow inventory by force.
TEST(LintRules, StaleAllowIsReportedUnderTheSuppressionRule) {
  const std::string code =
      "// glap-lint: allow(wall-clock): excuse with nothing left to "
      "excuse\n"
      "int x = 0;\n";
  const FileReport report = lint_source("src/sim/x.cpp", code);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "suppression");
  EXPECT_EQ(report.findings[0].line, 1u);
}

TEST(LintRules, RuleCatalogueTiersAreStable) {
  std::map<std::string, std::string> tier;
  for (const RuleInfo& r : rules()) tier[r.name] = r.tier;
  EXPECT_EQ(tier.size(), 14u);
  EXPECT_EQ(tier.at("wall-clock"), "determinism");
  EXPECT_EQ(tier.at("banned-random"), "determinism");
  EXPECT_EQ(tier.at("unordered-iteration"), "determinism");
  EXPECT_EQ(tier.at("pointer-order"), "determinism");
  EXPECT_EQ(tier.at("static-mutable"), "determinism");
  EXPECT_EQ(tier.at("wave-safety"), "determinism");
  EXPECT_EQ(tier.at("trace-kind"), "safety");
  EXPECT_EQ(tier.at("checks-guard"), "safety");
  EXPECT_EQ(tier.at("float-narrowing"), "safety");
  EXPECT_EQ(tier.at("table-sync"), "safety");
  EXPECT_EQ(tier.at("hot-alloc"), "perf");
  EXPECT_EQ(tier.at("layering"), "project");
  EXPECT_EQ(tier.at("include-hygiene"), "project");
  EXPECT_EQ(tier.at("suppression"), "meta");
  EXPECT_TRUE(is_known_rule("wall-clock"));
  EXPECT_FALSE(is_known_rule("wallclock"));
  // Project rules resolve suppressions at tree scope; per-file rules don't.
  EXPECT_TRUE(is_project_rule("layering"));
  EXPECT_TRUE(is_project_rule("wave-safety"));
  EXPECT_TRUE(is_project_rule("table-sync"));
  EXPECT_TRUE(is_project_rule("include-hygiene"));
  EXPECT_FALSE(is_project_rule("hot-alloc"));
}

}  // namespace
}  // namespace glap::lint
