// End-to-end glap-lint CLI: the checked-in tree lints clean (exit 0), a
// seeded violation flips the scan to exit 1, unreadable input exits 2,
// and `trace-kinds` stays pinned to trace::EventKind so the trace-kind
// rule can never drift from the reader.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "common/trace_reader.hpp"
#include "lint/lint.hpp"

namespace {

int run(const std::string& cmd) {
  const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  EXPECT_NE(status, -1);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string capture(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  pclose(pipe);
  return out;
}

const std::string kBin = GLAP_LINT_BIN;

TEST(LintCli, CheckedInTreeLintsClean) {
  EXPECT_EQ(run(kBin + " scan " + GLAP_SOURCE_DIR), 0)
      << "the repo tree has lint violations; run `glap-lint scan .` for "
         "the list";
}

TEST(LintCli, SeededViolationFlipsTheScanToExitOne) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "glap_lint_seeded_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "sim");
  {
    std::ofstream bad(root / "src" / "sim" / "bad.cpp");
    bad << "#include <cstdlib>\n"
           "int draw() { return std::rand(); }\n";
  }
  EXPECT_EQ(run(kBin + " scan " + root.string()), 1);

  // The same hazard with a justified allow scans clean again.
  {
    std::ofstream ok(root / "src" / "sim" / "bad.cpp");
    ok << "#include <cstdlib>\n"
          "// glap-lint: allow(banned-random): seeded-fixture exemption\n"
          "int draw() { return std::rand(); }\n";
  }
  EXPECT_EQ(run(kBin + " scan " + root.string()), 0);
  fs::remove_all(root);
}

TEST(LintCli, MissingInputsExitTwo) {
  namespace fs = std::filesystem;
  const fs::path empty =
      fs::path(::testing::TempDir()) / "glap_lint_empty_tree";
  fs::remove_all(empty);
  fs::create_directories(empty);
  EXPECT_EQ(run(kBin + " scan " + empty.string()), 2);  // no scan roots
  fs::remove_all(empty);
  EXPECT_EQ(run(kBin + " file /nonexistent/no_such_file.cpp"), 2);
  EXPECT_EQ(run(kBin), 2);                 // no subcommand
  EXPECT_EQ(run(kBin + " frobnicate"), 2); // unknown subcommand
}

TEST(LintCli, FileSubcommandHonoursAsScoping) {
  namespace fs = std::filesystem;
  const fs::path file =
      fs::path(::testing::TempDir()) / "glap_lint_float_probe.cpp";
  {
    std::ofstream out(file);
    out << "float q = 0.0f;\n";
  }
  // float is only a violation inside the Q-table kernels.
  EXPECT_EQ(run(kBin + " file " + file.string()), 0);
  EXPECT_EQ(
      run(kBin + " file " + file.string() + " --as src/qlearn/probe.cpp"),
      1);
  fs::remove(file);
}

// The rule's accepted "ev" set must equal trace::EventKind exactly —
// both directions, via the CLI surface.
TEST(LintCli, TraceKindsMatchTheTraceReaderEnum) {
  const std::string out = capture(kBin + " trace-kinds");
  std::vector<std::string> listed;
  std::string::size_type start = 0;
  while (start < out.size()) {
    auto nl = out.find('\n', start);
    if (nl == std::string::npos) nl = out.size();
    if (nl > start) listed.push_back(out.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(listed.size(), glap::trace::kEventKindCount);
  for (std::size_t i = 0; i < glap::trace::kEventKindCount; ++i) {
    EXPECT_EQ(listed[i], glap::trace::event_kind_name(
                             static_cast<glap::trace::EventKind>(i)));
    glap::trace::EventKind kind;
    EXPECT_TRUE(glap::trace::event_kind_from_name(listed[i], &kind));
  }
  // And the in-process list the rule consults is the same list.
  ASSERT_EQ(glap::lint::trace_event_kinds().size(),
            glap::trace::kEventKindCount);
  for (std::size_t i = 0; i < listed.size(); ++i)
    EXPECT_EQ(glap::lint::trace_event_kinds()[i], listed[i]);
}

TEST(LintCli, RulesSubcommandListsTheFullCatalogue) {
  const std::string out = capture(kBin + " rules");
  for (const auto& r : glap::lint::rules())
    EXPECT_NE(out.find(r.name), std::string::npos) << r.name;
}

// The layering DAG is a checked-in contract: the file must exist (else
// the rule silently self-disables) and the real tree's observed module
// graph must be fully declared.
TEST(LintCli, LayersFileExistsAndRealGraphIsFullyDeclared) {
  std::ifstream layers(std::string(GLAP_SOURCE_DIR) +
                       "/tools/lint/layers.txt");
  ASSERT_TRUE(layers.is_open())
      << "tools/lint/layers.txt is gone — the layering rule is a no-op";
  const std::string out =
      capture(kBin + " graph " + GLAP_SOURCE_DIR + " 2>/dev/null");
  EXPECT_NE(out.find("modules ("), std::string::npos);
  EXPECT_NE(out.find("edges ("), std::string::npos);
  EXPECT_EQ(out.find("UNDECLARED"), std::string::npos)
      << "observed module edges missing from layers.txt:\n" << out;
}

TEST(LintCli, GraphDotModeEmitsGraphviz) {
  const std::string out =
      capture(kBin + " graph " + GLAP_SOURCE_DIR + " --dot 2>/dev/null");
  EXPECT_NE(out.find("digraph glap_modules"), std::string::npos);
  EXPECT_NE(out.find("\"sim\" -> \"common\""), std::string::npos);
}

// Incremental cache: cold run misses everything, warm run hits
// everything with identical results, a content change re-lints exactly
// the changed file, and a corrupt cache degrades to a cold scan.
TEST(LintCli, ScanCacheHitsMissesAndDegradesSafely) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "glap_lint_cached";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "sim");
  const fs::path cache = root / "lint.cache";
  {
    std::ofstream a(root / "src" / "sim" / "a.cpp");
    a << "int a() { return 1; }\n";
    std::ofstream b(root / "src" / "sim" / "b.cpp");
    b << "int b() { return 2; }\n";
  }
  const std::string scan =
      kBin + " scan " + root.string() + " --cache " + cache.string();
  std::string out = capture(scan + " 2>/dev/null");
  EXPECT_NE(out.find("0 hit(s), 2 miss(es)"), std::string::npos) << out;
  out = capture(scan + " 2>/dev/null");
  EXPECT_NE(out.find("2 hit(s), 0 miss(es)"), std::string::npos) << out;

  {
    std::ofstream a(root / "src" / "sim" / "a.cpp");
    a << "int a() { return 3; }\n";
  }
  out = capture(scan + " 2>/dev/null");
  EXPECT_NE(out.find("1 hit(s), 1 miss(es)"), std::string::npos) << out;

  {
    std::ofstream corrupt(cache);
    corrupt << "not a cache\n";
  }
  out = capture(scan + " 2>/dev/null");
  EXPECT_NE(out.find("0 hit(s), 2 miss(es)"), std::string::npos) << out;
  fs::remove_all(root);
}

// A warm cache must replay *findings*, not just cleanliness: the exit
// code and the per-file diagnostics survive the cache round-trip.
TEST(LintCli, CachedScanReplaysFindingsIdentically) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "glap_lint_cached_fail";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "sim");
  const fs::path cache = root / "lint.cache";
  {
    std::ofstream bad(root / "src" / "sim" / "bad.cpp");
    bad << "#include <cstdlib>\n"
           "int draw() { return std::rand(); }\n";
  }
  const std::string scan =
      kBin + " scan " + root.string() + " --cache " + cache.string();
  EXPECT_EQ(run(scan), 1);
  const std::string cold = capture(scan + " 2>&1");
  const std::string warm = capture(scan + " 2>&1");
  EXPECT_EQ(run(scan), 1);  // still failing from cache
  EXPECT_NE(warm.find("banned-random"), std::string::npos) << warm;
  // Identical modulo the hit/miss accounting line.
  auto strip_cache_line = [](std::string s) {
    const auto at = s.find("glap-lint: cache");
    if (at == std::string::npos) return s;
    const auto nl = s.find('\n', at);
    return s.erase(at, nl == std::string::npos ? s.size() - at
                                               : nl - at + 1);
  };
  EXPECT_EQ(strip_cache_line(cold), strip_cache_line(warm));
  fs::remove_all(root);
}

}  // namespace
