// Tests for glap-lint's cross-TU project model (tools/lint/model.*): the
// per-file summarizer, the joined project pass, and the four project
// rules. The rule-level tests are fixture trees — each project rule has
// pass/, fail/ and suppressed/ directories shaped like a miniature repo
// (src/<module>/..., optionally tools/lint/layers.txt) and run through
// the same lint_project pipeline `glap-lint scan` uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/lint.hpp"
#include "lint/model.hpp"

namespace glap::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Loads a fixture tree into lint_project inputs: every .cpp/.hpp/.h
/// becomes a ProjectFile keyed by its tree-relative path, and the tree's
/// tools/lint/layers.txt (if any) becomes the layers text.
struct FixtureTree {
  std::vector<ProjectFile> files;
  std::string layers;
};

FixtureTree load_tree(const std::string& rule, const std::string& which) {
  const fs::path root =
      fs::path(GLAP_TESTS_DIR) / "fixtures" / "lint" / rule / which;
  FixtureTree tree;
  EXPECT_TRUE(fs::is_directory(root)) << "missing fixture tree: " << root;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths)
    tree.files.push_back(
        {fs::relative(p, root).generic_string(), read_file(p)});
  const fs::path layers = root / "tools" / "lint" / "layers.txt";
  if (fs::exists(layers)) tree.layers = read_file(layers);
  return tree;
}

class ProjectRuleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProjectRuleTest, PassTreeIsClean) {
  const FixtureTree tree = load_tree(GetParam(), "pass");
  const TreeReport report = lint_project(tree.files, tree.layers);
  for (const Finding& f : report.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
}

TEST_P(ProjectRuleTest, FailTreeFlagsOnlyThisRule) {
  const FixtureTree tree = load_tree(GetParam(), "fail");
  const TreeReport report = lint_project(tree.files, tree.layers);
  ASSERT_FALSE(report.findings.empty());
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, GetParam()) << f.file << ":" << f.line << " "
                                  << f.message;
    EXPECT_GT(f.line, 0u);
    EXPECT_FALSE(f.message.empty());
  }
}

TEST_P(ProjectRuleTest, SuppressedTreeIsCleanAndUsesItsAllows) {
  const FixtureTree tree = load_tree(GetParam(), "suppressed");
  const TreeReport report = lint_project(tree.files, tree.layers);
  for (const Finding& f : report.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  EXPECT_GE(report.suppressions_used, 1u)
      << "suppressed fixture's allow matched nothing";
  EXPECT_GE(report.rule_suppressions.count(GetParam()), 1u);
}

INSTANTIATE_TEST_SUITE_P(ProjectRules, ProjectRuleTest,
                         ::testing::Values("layering", "wave-safety",
                                           "table-sync", "include-hygiene"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// The fail fixtures are built to exercise *every* failure mode of their
// rule; pin the specific shapes so a regression in one detector cannot
// hide behind the others still firing.
TEST(ProjectRules, LayeringFailTreeCoversAllFourFindingShapes) {
  const FixtureTree tree = load_tree("layering", "fail");
  const TreeReport report = lint_project(tree.files, tree.layers);
  bool undeclared = false, stale = false, missing = false, cycle = false;
  for (const Finding& f : report.findings) {
    if (f.message.find("does not declare") != std::string::npos)
      undeclared = true;
    if (f.message.find("stale declaration") != std::string::npos)
      stale = true;
    if (f.message.find("no entry") != std::string::npos) missing = true;
    if (f.message.find("dependency cycle") != std::string::npos) cycle = true;
    // Findings about layers.txt itself anchor there, not at a source file.
    if (f.message.find("cycle") != std::string::npos)
      EXPECT_EQ(f.file, "tools/lint/layers.txt");
  }
  EXPECT_TRUE(undeclared);
  EXPECT_TRUE(stale);
  EXPECT_TRUE(missing);
  EXPECT_TRUE(cycle);
}

TEST(ProjectRules, WaveSafetyFailTreeCoversAllFourEventKinds) {
  const FixtureTree tree = load_tree("wave-safety", "fail");
  const TreeReport report = lint_project(tree.files, tree.layers);
  bool assign = false, mutate = false, rng = false, call = false;
  for (const Finding& f : report.findings) {
    if (f.message.find("assigns to member") != std::string::npos)
      assign = true;
    if (f.message.find("in place") != std::string::npos) mutate = true;
    if (f.message.find("RNG member") != std::string::npos) rng = true;
    if (f.message.find("non-const method") != std::string::npos) call = true;
  }
  EXPECT_TRUE(assign);
  EXPECT_TRUE(mutate);
  EXPECT_TRUE(rng);
  EXPECT_TRUE(call);
}

TEST(ProjectRules, TableSyncFindingNamesEveryMissingTable) {
  const FixtureTree tree = load_tree("table-sync", "fail");
  const TreeReport report = lint_project(tree.files, tree.layers);
  ASSERT_EQ(report.findings.size(), 1u);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.file, "src/common/trace_reader.hpp");
  EXPECT_NE(f.message.find("kGamma"), std::string::npos);
  EXPECT_NE(f.message.find("trace_reader.cpp"), std::string::npos);
  EXPECT_NE(f.message.find("trace_format.cpp"), std::string::npos);
  EXPECT_NE(f.message.find("tracing.cpp"), std::string::npos);
}

// ---- summarize_source ---------------------------------------------------

TEST(SummarizeSource, ExtractsModuleHeaderAndIncludes) {
  const FileSummary s = summarize_source(
      "src/overlay/x.hpp",
      "#pragma once\n#include \"common/rng.hpp\"\n#include <vector>\n");
  EXPECT_EQ(s.module, "overlay");
  EXPECT_TRUE(s.is_header);
  EXPECT_TRUE(s.has_pragma_once);
  ASSERT_EQ(s.includes.size(), 1u);  // system includes are ignored
  EXPECT_EQ(s.includes[0].path, "common/rng.hpp");
  EXPECT_EQ(s.includes[0].line, 2u);
}

TEST(SummarizeSource, NonSrcPathsHaveNoModule) {
  EXPECT_EQ(summarize_source("tools/lint/lint.cpp", "int x;\n").module, "");
  EXPECT_EQ(summarize_source("bench/bench_rng.cpp", "int x;\n").module, "");
  EXPECT_EQ(summarize_source("src/sim/engine.cpp", "int x;\n").module,
            "sim");
}

// Regression: members declared *after* a nested struct must attach to the
// outer class (the class registry used to hold dangling pointers across
// vector reallocation, silently dropping them).
TEST(SummarizeSource, MembersSurviveNestedStructDeclarations) {
  const FileSummary s = summarize_source("src/overlay/c.hpp",
                                         "#pragma once\n"
                                         "class Outer : public Base {\n"
                                         " public:\n"
                                         "  struct Entry { int id; };\n"
                                         "  void run();\n"
                                         " private:\n"
                                         "  int cache_;\n"
                                         "  int rng_;\n"
                                         "};\n");
  ASSERT_EQ(s.classes.size(), 2u);
  const ClassDecl& outer = s.classes[0];
  EXPECT_EQ(outer.name, "Outer");
  ASSERT_EQ(outer.bases.size(), 1u);
  EXPECT_EQ(outer.bases[0], "Base");
  EXPECT_EQ(outer.members,
            (std::vector<std::string>{"cache_", "rng_"}));
  EXPECT_EQ(outer.mutating_methods, (std::vector<std::string>{"run"}));
}

TEST(SummarizeSource, QualifiedBasesCollapseToTheirLastComponent) {
  const FileSummary s = summarize_source(
      "src/sim/p.hpp",
      "#pragma once\nclass P final : public sim::Protocol {};\n");
  ASSERT_EQ(s.classes.size(), 1u);
  EXPECT_EQ(s.classes[0].bases, (std::vector<std::string>{"Protocol"}));
}

TEST(SummarizeSource, ConstAndStaticMethodsAreNotMutating) {
  const FileSummary s = summarize_source("src/sim/p.hpp",
                                         "#pragma once\n"
                                         "class P {\n"
                                         " public:\n"
                                         "  int peek() const { return 0; }\n"
                                         "  static int make();\n"
                                         "  void poke();\n"
                                         "};\n");
  ASSERT_EQ(s.classes.size(), 1u);
  EXPECT_EQ(s.classes[0].mutating_methods,
            (std::vector<std::string>{"poke"}));
}

TEST(SummarizeSource, EnumExtractionHandlesScopedUnderlyingAndValues) {
  const FileSummary s = summarize_source(
      "src/common/e.hpp",
      "#pragma once\n"
      "enum class Kind : unsigned char { kA = 0, kB, kC = 7 };\n"
      "enum Flags { kX, kY };\n"
      "enum class Fwd : int;\n");
  ASSERT_EQ(s.enums.size(), 2u);  // forward declaration contributes none
  EXPECT_EQ(s.enums[0].name, "Kind");
  EXPECT_EQ(s.enums[0].enumerators,
            (std::vector<std::string>{"kA", "kB", "kC"}));
  EXPECT_EQ(s.enums[1].name, "Flags");
  EXPECT_EQ(s.enums[1].enumerators, (std::vector<std::string>{"kX", "kY"}));
}

TEST(SummarizeSource, WaveEventsComeFromOutOfLineDefinitionsToo) {
  const FileSummary s = summarize_source(
      "src/overlay/c.cpp",
      "void CyclonProtocol::select_peers(int& engine) {\n"
      "  cache_ = 1;\n"
      "}\n");
  ASSERT_EQ(s.wave_events.size(), 1u);
  EXPECT_EQ(s.wave_events[0].kind, WaveEvent::Kind::kAssign);
  EXPECT_EQ(s.wave_events[0].class_name, "CyclonProtocol");
  EXPECT_EQ(s.wave_events[0].method, "select_peers");
  EXPECT_EQ(s.wave_events[0].name, "cache_");
  EXPECT_EQ(s.wave_events[0].line, 2u);
}

TEST(SummarizeSource, OrdinaryMethodsProduceNoWaveEvents) {
  const FileSummary s = summarize_source(
      "src/overlay/c.cpp",
      "void CyclonProtocol::execute(int& engine) { cache_ = 1; }\n");
  EXPECT_TRUE(s.wave_events.empty());
}

// ---- analyze_project ----------------------------------------------------

TEST(AnalyzeProject, WaveSafetyResolvesThroughIntermediateBases) {
  // CyclonProtocol -> NeighborProvider -> Protocol: the member write is a
  // finding even though "Protocol" is two hops away and in another file.
  const std::vector<ProjectFile> files = {
      {"src/sim/protocol.hpp", "#pragma once\nclass Protocol {};\n"},
      {"src/overlay/np.hpp",
       "#pragma once\nclass NeighborProvider : public sim::Protocol {};\n"},
      {"src/overlay/c.hpp",
       "#pragma once\n"
       "class Cyclon : public NeighborProvider {\n"
       " private:\n"
       "  int cache_;\n"
       "};\n"},
      {"src/overlay/c.cpp",
       "void Cyclon::select_peers(int& e) { cache_ = 1; }\n"},
  };
  const TreeReport report = lint_project(files, "");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "wave-safety");
  EXPECT_EQ(report.findings[0].file, "src/overlay/c.cpp");
}

TEST(AnalyzeProject, WaveSafetyIgnoresClassesOutsideTheProtocolTree) {
  // Same shape, but the class never reaches Protocol: writes are fine.
  const std::vector<ProjectFile> files = {
      {"src/cloud/p.hpp",
       "#pragma once\nclass Placer {\n private:\n  int cursor_;\n};\n"},
      {"src/cloud/p.cpp",
       "void Placer::select_peers(int& e) { cursor_ = 1; }\n"},
  };
  EXPECT_TRUE(lint_project(files, "").findings.empty());
}

TEST(AnalyzeProject, WaveSafetyAllowsLocalsAndScratchMembers) {
  const std::vector<ProjectFile> files = {
      {"src/sim/p.hpp",
       "#pragma once\n"
       "class P : public Protocol {\n"
       " private:\n"
       "  int scratch_ids_;\n"
       "  int rng_;\n"
       "};\n"},
      {"src/sim/p.cpp",
       "void P::select_peers(int& e) {\n"
       "  int local = 0;\n"
       "  local = local + 1;\n"
       "  scratch_ids_ = local;\n"
       "  int sim_rng = rng_;\n"
       "  (void)sim_rng;\n"
       "}\n"},
  };
  const TreeReport report = lint_project(files, "");
  for (const Finding& f : report.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " " << f.message;
}

TEST(AnalyzeProject, IncludeHygieneSeesTransitiveProvides) {
  // u.cpp includes a.hpp but only uses b_fn, which a.hpp pulls in from
  // b.hpp — the closure makes that include legitimate.
  const std::vector<ProjectFile> files = {
      {"src/common/b.hpp", "#pragma once\ninline int b_fn() { return 1; }\n"},
      {"src/common/a.hpp",
       "#pragma once\n#include \"common/b.hpp\"\n"
       "inline int a_fn() { return b_fn(); }\n"},
      {"src/sim/u.cpp",
       "#include \"common/a.hpp\"\nint u() { return b_fn(); }\n"},
  };
  const TreeReport report = lint_project(files, "");
  for (const Finding& f : report.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " " << f.message;
}

TEST(AnalyzeProject, ModuleGraphCountsEdgesAndDeclarations) {
  const std::vector<ProjectFile> files = {
      {"src/common/c.hpp", "#pragma once\ninline int c_fn() { return 1; }\n"},
      {"src/sim/a.cpp", "#include \"common/c.hpp\"\nint a() { return c_fn(); }\n"},
      {"src/sim/b.cpp", "#include \"common/c.hpp\"\nint b() { return c_fn(); }\n"},
  };
  const TreeReport report = lint_project(files, "common ->\nsim -> common\n");
  ASSERT_EQ(report.layer_edges.size(), 1u);
  EXPECT_EQ(report.layer_edges[0].from, "sim");
  EXPECT_EQ(report.layer_edges[0].to, "common");
  EXPECT_EQ(report.layer_edges[0].includes, 2u);
  EXPECT_TRUE(report.layer_edges[0].declared);
  EXPECT_EQ(report.module_files.at("sim"), 2u);
  EXPECT_EQ(report.module_files.at("common"), 1u);
  EXPECT_TRUE(report.findings.empty());
}

TEST(AnalyzeProject, EmptyLayersTextSkipsTheLayeringRule) {
  const std::vector<ProjectFile> files = {
      {"src/common/c.hpp", "#pragma once\ninline int c_fn() { return 1; }\n"},
      {"src/sim/a.cpp", "#include \"common/c.hpp\"\nint a() { return c_fn(); }\n"},
  };
  const TreeReport report = lint_project(files, "");
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.layer_edges.size(), 1u);  // graph still observed
  EXPECT_FALSE(report.layer_edges[0].declared);
}

// Stale project-rule allows surface at tree scope (lint_source defers
// them because the findings they could match only exist project-wide).
TEST(AnalyzeProject, StaleProjectAllowIsReportedAtTreeScope) {
  const std::string code =
      "// glap-lint: allow(wave-safety): nothing here to excuse\n"
      "int x = 0;\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", code).findings.empty());
  const TreeReport report = lint_project({{"src/sim/x.cpp", code}}, "");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "suppression");
  EXPECT_EQ(report.findings[0].line, 1u);
}

}  // namespace
}  // namespace glap::lint
