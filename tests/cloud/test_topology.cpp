#include "cloud/topology.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace glap::cloud {
namespace {

TEST(RackTopology, RackAssignmentIsConsecutive) {
  RackTopology topo(10, 4);
  EXPECT_EQ(topo.rack_count(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(topo.rack_of(0), 0u);
  EXPECT_EQ(topo.rack_of(3), 0u);
  EXPECT_EQ(topo.rack_of(4), 1u);
  EXPECT_EQ(topo.rack_of(9), 2u);
}

TEST(RackTopology, MembersMatchRackOf) {
  RackTopology topo(10, 4);
  for (RackId r = 0; r < topo.rack_count(); ++r)
    for (PmId p : topo.members(r)) EXPECT_EQ(topo.rack_of(p), r);
  EXPECT_EQ(topo.members(2).size(), 2u);  // the short last rack
}

TEST(RackTopology, Validation) {
  EXPECT_THROW(RackTopology(0, 4), precondition_error);
  EXPECT_THROW(RackTopology(10, 0), precondition_error);
  EXPECT_THROW(RackTopology(10, 4, -1.0), precondition_error);
  RackTopology topo(10, 4);
  EXPECT_THROW(topo.rack_of(10), precondition_error);
  EXPECT_THROW(topo.members(3), precondition_error);
}

TEST(RackTopology, ActiveRacksTracksPmPower) {
  DataCenter dc(8, 8, DataCenterConfig{});
  for (VmId v = 0; v < 8; ++v) dc.place(v, static_cast<PmId>(v));
  std::vector<Resources> demands(8, Resources{0.3, 0.3});
  dc.observe_demands(demands);
  RackTopology topo(8, 4);
  EXPECT_EQ(topo.active_racks(dc), 2u);
  // Empty and sleep all of rack 1.
  for (PmId p = 4; p < 8; ++p) {
    dc.migrate(p, static_cast<PmId>(p - 4));
    dc.set_power(p, PmPower::kSleep);
  }
  EXPECT_EQ(topo.active_racks(dc), 1u);
}

TEST(RackTopology, SwitchEnergyScalesWithActiveRacks) {
  DataCenter dc(8, 4, DataCenterConfig{});
  for (VmId v = 0; v < 4; ++v) dc.place(v, static_cast<PmId>(v));
  std::vector<Resources> demands(4, Resources{0.3, 0.3});
  dc.observe_demands(demands);
  RackTopology topo(8, 4, /*switch_watts=*/100.0);
  // Rack 1 hosts nothing; sleep its PMs.
  for (PmId p = 4; p < 8; ++p) dc.set_power(p, PmPower::kSleep);
  EXPECT_DOUBLE_EQ(topo.switch_energy_joules(dc, 120.0), 100.0 * 120.0);
}

TEST(RackTopology, RackLoadAveragesActivePms) {
  DataCenter dc(4, 4, DataCenterConfig{});
  for (VmId v = 0; v < 4; ++v) dc.place(v, 0);
  std::vector<Resources> demands(4, Resources{0.5, 0.5});
  dc.observe_demands(demands);
  RackTopology topo(4, 2);
  // Rack 0 = {pm0 loaded, pm1 empty}; rack 1 = empty PMs.
  EXPECT_GT(topo.rack_load(dc, 0), 0.0);
  EXPECT_EQ(topo.rack_load(dc, 1), 0.0);
  // Sleep pm1: rack 0's load doubles (mean over powered-on PMs only).
  const double before = topo.rack_load(dc, 0);
  dc.set_power(1, PmPower::kSleep);
  EXPECT_NEAR(topo.rack_load(dc, 0), 2.0 * before, 1e-12);
}

TEST(RackTopology, MismatchedDataCenterRejected) {
  DataCenter dc(4, 4, DataCenterConfig{});
  RackTopology topo(8, 4);
  EXPECT_THROW(topo.active_racks(dc), precondition_error);
}

}  // namespace
}  // namespace glap::cloud
