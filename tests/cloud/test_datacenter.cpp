#include "cloud/datacenter.hpp"

#include <gtest/gtest.h>

#include "cloud/average_tracker.hpp"
#include "common/assert.hpp"

namespace glap::cloud {
namespace {

DataCenterConfig small_config() {
  DataCenterConfig config;
  // Keep the paper presets but a generous migration bandwidth for exact
  // arithmetic in tests.
  config.pm_spec.migration_bw_mbps = 100.0;
  return config;
}

/// 4 PMs, 8 VMs, every VM placed 2-per-PM, all demands set to `frac`.
DataCenter make_dc(double frac = 0.5) {
  DataCenter dc(4, 8, small_config());
  for (VmId v = 0; v < 8; ++v) dc.place(v, static_cast<PmId>(v / 2));
  std::vector<Resources> demands(8, Resources{frac, frac});
  dc.observe_demands(demands);
  return dc;
}

TEST(AverageTracker, PaperFormula) {
  AverageTracker tracker;
  tracker.observe({0.4, 0.2});
  EXPECT_EQ(tracker.count(), 1u);
  EXPECT_NEAR(tracker.average().cpu, 0.4, 1e-12);
  // ((c*v) + d) / (c+1) with c=1, v=0.4, d=0.8 -> 0.6
  tracker.observe({0.8, 0.4});
  EXPECT_NEAR(tracker.average().cpu, 0.6, 1e-12);
  EXPECT_NEAR(tracker.average().mem, 0.3, 1e-12);
  tracker.observe({0.0, 0.0});
  EXPECT_NEAR(tracker.average().cpu, 0.4, 1e-12);
  tracker.reset();
  EXPECT_EQ(tracker.count(), 0u);
  EXPECT_EQ(tracker.average(), (Resources{0.0, 0.0}));
}

TEST(Vm, UsageScalesWithSpec) {
  DataCenter dc(1, 1, small_config());
  dc.place(0, 0);
  dc.observe_demands(std::vector<Resources>{{0.5, 0.25}});
  EXPECT_NEAR(dc.vm_current_usage(0).cpu, 250.0, 1e-9);
  EXPECT_NEAR(dc.vm_current_usage(0).mem, 613.0 * 0.25, 1e-9);
  EXPECT_EQ(dc.vm_observation_count(0), 1u);
}

TEST(Vm, RejectsOutOfRangeDemand) {
  DataCenter dc(1, 1, small_config());
  dc.place(0, 0);
  EXPECT_THROW(dc.observe_demands(std::vector<Resources>{{1.5, 0.0}}),
               precondition_error);
  EXPECT_THROW(dc.observe_demands(std::vector<Resources>{{0.0, -0.1}}),
               precondition_error);
}

TEST(DataCenter, PlacementAndHostLookup) {
  DataCenter dc = make_dc();
  EXPECT_EQ(dc.host_of(0), 0u);
  EXPECT_EQ(dc.host_of(7), 3u);
  EXPECT_EQ(dc.pm(0).vm_count(), 2u);
  EXPECT_EQ(dc.active_pm_count(), 4u);
}

TEST(DataCenter, DoublePlacementRejected) {
  DataCenter dc(2, 2, small_config());
  dc.place(0, 0);
  EXPECT_THROW(dc.place(0, 1), precondition_error);
}

TEST(DataCenter, UtilizationAggregatesVmUsage) {
  DataCenter dc = make_dc(0.5);
  // 2 VMs at 50% of (500, 613) on a (2660, 4096) PM.
  const Resources util = dc.current_utilization(0);
  EXPECT_NEAR(util.cpu, 2 * 250.0 / 2660.0, 1e-12);
  EXPECT_NEAR(util.mem, 2 * 306.5 / 4096.0, 1e-12);
}

TEST(DataCenter, AverageUtilizationUsesTrackedAverages) {
  DataCenter dc = make_dc(0.8);
  std::vector<Resources> demands(8, Resources{0.2, 0.2});
  dc.observe_demands(demands);  // average is now 0.5
  const Resources avg = dc.average_utilization(0);
  EXPECT_NEAR(avg.cpu, 2 * 250.0 / 2660.0, 1e-12);
  const Resources cur = dc.current_utilization(0);
  EXPECT_NEAR(cur.cpu, 2 * 100.0 / 2660.0, 1e-12);
}

TEST(DataCenter, MigrationMovesVmAndUpdatesCaches) {
  DataCenter dc = make_dc(0.5);
  const Resources before_src = dc.current_usage(0);
  const Resources before_dst = dc.current_usage(1);
  const MigrationRecord rec = dc.migrate(0, 1);
  EXPECT_EQ(rec.vm, 0u);
  EXPECT_EQ(rec.from, 0u);
  EXPECT_EQ(rec.to, 1u);
  EXPECT_EQ(dc.host_of(0), 1u);
  EXPECT_EQ(dc.pm(0).vm_count(), 1u);
  EXPECT_EQ(dc.pm(1).vm_count(), 3u);
  const Resources moved = dc.vm_current_usage(0);
  EXPECT_NEAR(dc.current_usage(0).cpu, before_src.cpu - moved.cpu, 1e-9);
  EXPECT_NEAR(dc.current_usage(1).cpu, before_dst.cpu + moved.cpu, 1e-9);
  EXPECT_EQ(dc.total_migrations(), 1u);
}

TEST(DataCenter, MigrationRecordsTauAndEnergy) {
  DataCenter dc = make_dc(0.5);
  const MigrationRecord rec = dc.migrate(0, 1);
  // tau = mem usage / bandwidth = 306.5 / 100.
  EXPECT_NEAR(rec.tau_seconds, 306.5 / 100.0, 1e-9);
  EXPECT_GT(rec.energy_joules, 0.0);
  EXPECT_NEAR(dc.migration_energy_joules(), rec.energy_joules, 1e-9);
}

TEST(DataCenter, MigrationValidation) {
  DataCenter dc = make_dc(0.1);
  EXPECT_THROW(dc.migrate(0, 0), precondition_error);  // to current host
  // Empty PM 3 and put it to sleep, then try to migrate there.
  dc.migrate(6, 0);
  dc.migrate(7, 0);
  dc.set_power(3, PmPower::kSleep);
  EXPECT_THROW(dc.migrate(0, 3), precondition_error);
}

TEST(DataCenter, SleepRequiresEmptyPm) {
  DataCenter dc = make_dc();
  EXPECT_THROW(dc.set_power(0, PmPower::kSleep), precondition_error);
  dc.migrate(0, 1);
  dc.migrate(1, 1);
  dc.set_power(0, PmPower::kSleep);
  EXPECT_EQ(dc.active_pm_count(), 3u);
  dc.set_power(0, PmPower::kOn);
  EXPECT_EQ(dc.active_pm_count(), 4u);
}

TEST(DataCenter, OverloadDetection) {
  DataCenter dc(1, 6, small_config());
  for (VmId v = 0; v < 6; ++v) dc.place(v, 0);
  // 6 VMs at full CPU = 3000 MIPS > 2660 -> overloaded on CPU.
  std::vector<Resources> demands(6, Resources{1.0, 0.2});
  dc.observe_demands(demands);
  EXPECT_TRUE(dc.overloaded(0));
  EXPECT_TRUE(dc.cpu_saturated(0));
  EXPECT_EQ(dc.overloaded_pm_count(), 1u);
  // Drop demand: no longer overloaded.
  std::vector<Resources> light(6, Resources{0.2, 0.2});
  dc.observe_demands(light);
  EXPECT_FALSE(dc.overloaded(0));
}

TEST(DataCenter, MemoryOverloadCountsToo) {
  DataCenter dc(1, 7, small_config());
  for (VmId v = 0; v < 7; ++v) dc.place(v, 0);
  // 7 VMs at full memory = 4291 MB > 4096 -> overloaded on memory only.
  std::vector<Resources> demands(7, Resources{0.1, 1.0});
  dc.observe_demands(demands);
  EXPECT_TRUE(dc.overloaded(0));
  EXPECT_FALSE(dc.cpu_saturated(0));
}

TEST(DataCenter, CanHostChecksProjectedUsage) {
  DataCenter dc(2, 6, small_config());
  for (VmId v = 0; v < 5; ++v) dc.place(v, 0);
  dc.place(5, 1);
  std::vector<Resources> demands(6, Resources{1.0, 0.3});
  dc.observe_demands(demands);  // PM0: 2500 MIPS used, PM1: 500
  EXPECT_FALSE(dc.can_host(0, 5));  // 2500 + 500 > 2660
  EXPECT_TRUE(dc.can_host(1, 0));   // 500 + 500 < 2660
}

TEST(DataCenter, CanHostFalseForSleepingPm) {
  DataCenter dc = make_dc(0.1);
  dc.migrate(6, 0);
  dc.migrate(7, 0);
  dc.set_power(3, PmPower::kSleep);
  EXPECT_FALSE(dc.can_host(3, 0));
}

TEST(DataCenter, EndRoundAccumulatesEnergyAndSla) {
  DataCenter dc = make_dc(0.5);
  dc.end_round();
  EXPECT_GT(dc.total_energy_joules(), 0.0);
  EXPECT_EQ(dc.round(), 1u);
  // 4 PMs at some utilization for 120 s each; energy bounded by idle/max.
  const double lo = 4 * 93.7 * 120.0;
  const double hi = 4 * 135.0 * 120.0;
  EXPECT_GE(dc.total_energy_joules(), lo);
  EXPECT_LE(dc.total_energy_joules(), hi);
}

TEST(DataCenter, SleepingPmsConsumeNothing) {
  DataCenter dc = make_dc(0.1);
  dc.migrate(6, 0);
  dc.migrate(7, 0);
  dc.set_power(3, PmPower::kSleep);
  dc.end_round();
  const double three_active_max = 3 * 135.0 * 120.0;
  EXPECT_LE(dc.total_energy_joules(), three_active_max);
}

TEST(DataCenter, MigrationsThisRoundResetsOnEndRound) {
  DataCenter dc = make_dc(0.1);
  dc.migrate(0, 1);
  EXPECT_EQ(dc.migrations_this_round(), 1u);
  dc.end_round();
  EXPECT_EQ(dc.migrations_this_round(), 0u);
  EXPECT_EQ(dc.total_migrations(), 1u);
}

TEST(DataCenter, RandomPlacementRespectsAllocations) {
  DataCenterConfig config = small_config();
  DataCenter dc(10, 40, config);  // ratio 4: fits nominal allocations
  Rng rng(5);
  dc.place_randomly(rng);
  const Resources vm_alloc = config.vm_spec.capacity();
  const Resources pm_cap = config.pm_spec.capacity();
  for (PmId p = 0; p < 10; ++p) {
    const Resources allocated =
        vm_alloc * static_cast<double>(dc.pm(p).vm_count());
    EXPECT_TRUE(allocated.fits_within(pm_cap))
        << "PM " << p << " over-allocated with " << dc.pm(p).vm_count()
        << " VMs";
  }
  // All VMs placed.
  std::size_t total = 0;
  for (PmId p = 0; p < 10; ++p) total += dc.pm(p).vm_count();
  EXPECT_EQ(total, 40u);
}

TEST(DataCenter, RandomPlacementDeterministicPerSeed) {
  DataCenter a(6, 18, small_config());
  DataCenter b(6, 18, small_config());
  Rng ra(9), rb(9);
  a.place_randomly(ra);
  b.place_randomly(rb);
  EXPECT_EQ(a.placement_snapshot(), b.placement_snapshot());
}

TEST(DataCenter, ObserveDemandsRequiresFullVector) {
  DataCenter dc(2, 4, small_config());
  for (VmId v = 0; v < 4; ++v) dc.place(v, 0);
  std::vector<Resources> wrong(3);
  EXPECT_THROW(dc.observe_demands(wrong), precondition_error);
}

TEST(DataCenter, SlaTracksMigrationDegradation) {
  DataCenter dc = make_dc(0.5);
  dc.migrate(0, 1);
  dc.end_round();
  EXPECT_GT(dc.sla().slalm(), 0.0);
}

// ---- quiescence wake hook (DESIGN.md §12) -------------------------------

using HookLog = std::vector<std::pair<PmId, DataCenter::WakeEvent>>;

HookLog::value_type ev(PmId pm, DataCenter::WakeEvent event) {
  return {pm, event};
}

TEST(DataCenter, WakeHookFiresOnMigrationPlacementDepartureAndPower) {
  DataCenter dc = make_dc(0.5);
  HookLog log;
  dc.set_wake_hook(
      [&](PmId pm, DataCenter::WakeEvent event) { log.push_back({pm, event}); },
      /*demand_epsilon=*/0.5);

  dc.migrate(0, 3);  // both endpoints must re-examine their packing
  EXPECT_EQ(log, (HookLog{ev(0, DataCenter::WakeEvent::kMigration),
                          ev(3, DataCenter::WakeEvent::kMigration)}));

  log.clear();
  dc.depart(1);  // PM 0's remaining load changed
  EXPECT_EQ(log, (HookLog{ev(0, DataCenter::WakeEvent::kMigration)}));

  log.clear();
  dc.set_power(0, PmPower::kSleep);  // PM 0 is empty now
  EXPECT_EQ(log, (HookLog{ev(0, DataCenter::WakeEvent::kPower)}));
}

TEST(DataCenter, WakeHookDemandEpsilonBandsDrift) {
  DataCenter dc = make_dc(0.5);  // reference anchored at 0.5 on install
  HookLog log;
  dc.set_wake_hook(
      [&](PmId pm, DataCenter::WakeEvent event) { log.push_back({pm, event}); },
      /*demand_epsilon=*/0.2);

  // Drift within the epsilon band: no wake, reference stays anchored.
  dc.observe_demands(std::vector<Resources>(8, Resources{0.65, 0.5}));
  EXPECT_TRUE(log.empty());

  // Cumulative drift past the band (vs the 0.5 anchor, not the last
  // sample): every hosted VM triggers a demand wake on its host.
  dc.observe_demands(std::vector<Resources>(8, Resources{0.72, 0.5}));
  ASSERT_FALSE(log.empty());
  for (const auto& [pm, event] : log) {
    EXPECT_EQ(event, DataCenter::WakeEvent::kDemand);
    EXPECT_LT(pm, 4u);
  }
  const std::size_t wakes_after_jump = log.size();
  EXPECT_GE(wakes_after_jump, 8u) << "one wake per drifted VM";

  // The reference re-anchors at the waking sample, so holding steady
  // produces no further wakes.
  log.clear();
  dc.observe_demands(std::vector<Resources>(8, Resources{0.72, 0.5}));
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace glap::cloud
