#include <gtest/gtest.h>

#include "cloud/power.hpp"
#include "cloud/sla.hpp"
#include "common/assert.hpp"

namespace glap::cloud {
namespace {

TEST(LinearPowerModel, Endpoints) {
  LinearPowerModel model({.idle_watts = 93.7, .max_watts = 135.0});
  EXPECT_DOUBLE_EQ(model.power_watts(0.0), 93.7);
  EXPECT_DOUBLE_EQ(model.power_watts(1.0), 135.0);
}

TEST(LinearPowerModel, Linearity) {
  LinearPowerModel model({.idle_watts = 100.0, .max_watts = 200.0});
  EXPECT_DOUBLE_EQ(model.power_watts(0.5), 150.0);
  EXPECT_DOUBLE_EQ(model.power_watts(0.25), 125.0);
}

TEST(LinearPowerModel, ClampsUtilization) {
  LinearPowerModel model({.idle_watts = 100.0, .max_watts = 200.0});
  EXPECT_DOUBLE_EQ(model.power_watts(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(model.power_watts(2.0), 200.0);
}

TEST(LinearPowerModel, EnergyIntegration) {
  LinearPowerModel model({.idle_watts = 100.0, .max_watts = 200.0});
  EXPECT_DOUBLE_EQ(model.energy_joules(0.5, 120.0), 150.0 * 120.0);
}

TEST(LinearPowerModel, RejectsInvalidParams) {
  EXPECT_THROW(LinearPowerModel({.idle_watts = -1.0, .max_watts = 10.0}),
               precondition_error);
  EXPECT_THROW(LinearPowerModel({.idle_watts = 10.0, .max_watts = 5.0}),
               precondition_error);
}

TEST(MigrationTime, MemoryOverBandwidth) {
  EXPECT_DOUBLE_EQ(migration_seconds(613.0, 125.0, 125.0), 613.0 / 125.0);
  // The slower endpoint bounds the transfer.
  EXPECT_DOUBLE_EQ(migration_seconds(500.0, 50.0, 125.0), 10.0);
  EXPECT_DOUBLE_EQ(migration_seconds(0.0, 125.0, 125.0), 0.0);
}

TEST(MigrationEnergy, MatchesEquationThree) {
  LinearPowerModel model({.idle_watts = 100.0, .max_watts = 200.0});
  const MigrationEnergyParams params{.cpu_overhead_fraction = 0.10};
  // Both endpoints at 0.5 utilization: P^lm = P(0.6) = 160 W each;
  // E = ((160-100) + (160-100)) * tau = 120 * tau.
  const double e =
      migration_energy_joules(model, 0.5, model, 0.5, 4.0, params);
  EXPECT_DOUBLE_EQ(e, 120.0 * 4.0);
}

TEST(MigrationEnergy, SaturatesAtFullUtilization) {
  LinearPowerModel model({.idle_watts = 100.0, .max_watts = 200.0});
  const MigrationEnergyParams params{.cpu_overhead_fraction = 0.10};
  // u = 1.0 -> P^lm clamps at max.
  const double e =
      migration_energy_joules(model, 1.0, model, 1.0, 2.0, params);
  EXPECT_DOUBLE_EQ(e, (100.0 + 100.0) * 2.0);
}

TEST(MigrationEnergy, ScalesWithTau) {
  LinearPowerModel model({.idle_watts = 90.0, .max_watts = 140.0});
  const MigrationEnergyParams params;
  const double e1 = migration_energy_joules(model, 0.3, model, 0.3, 1.0, params);
  const double e5 = migration_energy_joules(model, 0.3, model, 0.3, 5.0, params);
  EXPECT_NEAR(e5, 5.0 * e1, 1e-9);
}

TEST(Sla, SlavoAveragesSaturatedShare) {
  SlaAccounting sla(2, 1, {});
  // PM 0: saturated half its active time; PM 1: never saturated.
  sla.record_pm_round(0, true, true, 60.0);
  sla.record_pm_round(0, true, false, 60.0);
  sla.record_pm_round(1, true, false, 120.0);
  EXPECT_DOUBLE_EQ(sla.slavo(), 0.5 * (0.5 + 0.0));
}

TEST(Sla, InactivePmsDoNotCount) {
  SlaAccounting sla(2, 1, {});
  sla.record_pm_round(0, true, true, 100.0);
  sla.record_pm_round(1, false, false, 100.0);  // inactive: excluded
  EXPECT_DOUBLE_EQ(sla.slavo(), 1.0);
}

TEST(Sla, SlalmFollowsDegradationFormula) {
  SlaAccounting sla(1, 2, {.migration_degradation = 0.10});
  // VM 0: requested 1000 MIPS*s; one migration of 5 s at 100 MIPS
  // degrades 0.1 * 100 * 5 = 50 MIPS*s -> ratio 0.05.
  sla.record_vm_round(0, 100.0, 10.0);
  sla.record_migration(0, 100.0, 5.0);
  // VM 1: no migration -> ratio 0.
  sla.record_vm_round(1, 200.0, 10.0);
  EXPECT_DOUBLE_EQ(sla.slalm(), 0.5 * (0.05 + 0.0));
}

TEST(Sla, SlavIsProduct) {
  SlaAccounting sla(1, 1, {});
  sla.record_pm_round(0, true, true, 50.0);
  sla.record_pm_round(0, true, false, 50.0);
  sla.record_vm_round(0, 100.0, 100.0);
  sla.record_migration(0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(sla.slav(), sla.slavo() * sla.slalm());
}

TEST(Sla, EmptyAccountingIsZero) {
  SlaAccounting sla(3, 3, {});
  EXPECT_DOUBLE_EQ(sla.slavo(), 0.0);
  EXPECT_DOUBLE_EQ(sla.slalm(), 0.0);
  EXPECT_DOUBLE_EQ(sla.slav(), 0.0);
}

TEST(Sla, PerPmClocksQueryable) {
  SlaAccounting sla(2, 1, {});
  sla.record_pm_round(0, true, true, 30.0);
  EXPECT_DOUBLE_EQ(sla.pm_saturated_seconds(0), 30.0);
  EXPECT_DOUBLE_EQ(sla.pm_active_seconds(0), 30.0);
  EXPECT_DOUBLE_EQ(sla.pm_active_seconds(1), 0.0);
}

TEST(Sla, Validation) {
  EXPECT_THROW(SlaAccounting(0, 1, {}), precondition_error);
  SlaAccounting sla(1, 1, {});
  EXPECT_THROW(sla.record_pm_round(5, true, true, 1.0), precondition_error);
  EXPECT_THROW(sla.record_vm_round(5, 1.0, 1.0), precondition_error);
  EXPECT_THROW(sla.record_migration(0, -1.0, 1.0), precondition_error);
  EXPECT_THROW(SlaAccounting(1, 1, {.migration_degradation = 2.0}),
               precondition_error);
}

}  // namespace
}  // namespace glap::cloud
