#include <gtest/gtest.h>

#include "cloud/datacenter.hpp"
#include "common/assert.hpp"

namespace glap::cloud {
namespace {

DataCenter make_dc() {
  DataCenter dc(3, 6, DataCenterConfig{});
  for (VmId v = 0; v < 6; ++v) dc.place(v, static_cast<PmId>(v / 2));
  std::vector<Resources> demands(6, Resources{0.4, 0.4});
  dc.observe_demands(demands);
  return dc;
}

TEST(Churn, DepartRemovesVmFromHost) {
  DataCenter dc = make_dc();
  EXPECT_EQ(dc.placed_vm_count(), 6u);
  const Resources before = dc.current_usage(0);
  dc.depart(0);
  EXPECT_FALSE(dc.is_placed(0));
  EXPECT_EQ(dc.placed_vm_count(), 5u);
  EXPECT_EQ(dc.pm(0).vm_count(), 1u);
  EXPECT_LT(dc.current_usage(0).cpu, before.cpu);
}

TEST(Churn, DepartedVmHasNoHost) {
  DataCenter dc = make_dc();
  dc.depart(3);
  EXPECT_THROW(dc.host_of(3), precondition_error);
  EXPECT_THROW(dc.depart(3), precondition_error);  // double departure
}

TEST(Churn, DepartedVmIgnoresDemands) {
  DataCenter dc = make_dc();
  dc.depart(0);
  const auto count_before = dc.vm_observation_count(0);
  std::vector<Resources> demands(6, Resources{0.9, 0.9});
  dc.observe_demands(demands);
  EXPECT_EQ(dc.vm_observation_count(0), count_before);
  // Placed VMs still observe.
  EXPECT_GT(dc.vm_observation_count(1), count_before);
}

TEST(Churn, ReArrivalKeepsHistory) {
  DataCenter dc = make_dc();
  const auto observations = dc.vm_observation_count(0);
  dc.depart(0);
  dc.place(0, 2);
  EXPECT_TRUE(dc.is_placed(0));
  EXPECT_EQ(dc.host_of(0), 2u);
  EXPECT_EQ(dc.vm_observation_count(0), observations);
  EXPECT_EQ(dc.placed_vm_count(), 6u);
}

TEST(Churn, DepartedVmAccruesNoRequestedCpu) {
  DataCenter dc = make_dc();
  dc.depart(0);
  dc.end_round();
  // VM 0 contributed no Cr this round, so a later migration of VM 1
  // produces SLALM while VM 0 stays ratio-less (excluded from mean).
  dc.migrate(1, 1);
  dc.end_round();
  EXPECT_GT(dc.sla().slalm(), 0.0);
}

TEST(Churn, PlacementSnapshotMarksDeparted) {
  DataCenter dc = make_dc();
  dc.depart(4);
  const auto snapshot = dc.placement_snapshot();
  EXPECT_EQ(snapshot[4], static_cast<PmId>(-1));
  EXPECT_EQ(snapshot[0], 0u);
}

TEST(Churn, EmptyHostCanSleepAfterDepartures) {
  DataCenter dc = make_dc();
  dc.depart(4);
  dc.depart(5);
  dc.set_power(2, PmPower::kSleep);
  EXPECT_EQ(dc.active_pm_count(), 2u);
}

TEST(Heterogeneous, PerPmSpecsDriveUtilization) {
  DataCenterConfig config;
  std::vector<PmSpec> pms{hp_proliant_ml110_g5(), hp_proliant_ml110_g4()};
  std::vector<VmSpec> vms{ec2_micro(), ec2_micro()};
  DataCenter dc(pms, vms, config);
  dc.place(0, 0);
  dc.place(1, 1);
  std::vector<Resources> demands(2, Resources{1.0, 0.2});
  dc.observe_demands(demands);
  // Same absolute usage, different capacities: the G4 runs hotter.
  EXPECT_NEAR(dc.current_utilization(0).cpu, 500.0 / 2660.0, 1e-12);
  EXPECT_NEAR(dc.current_utilization(1).cpu, 500.0 / 1860.0, 1e-12);
}

TEST(Heterogeneous, MixedVmSizesAggregate) {
  DataCenterConfig config;
  std::vector<PmSpec> pms{hp_proliant_ml110_g5()};
  std::vector<VmSpec> vms{ec2_micro(), ec2_medium()};
  DataCenter dc(pms, vms, config);
  dc.place(0, 0);
  dc.place(1, 0);
  std::vector<Resources> demands(2, Resources{0.5, 0.1});
  dc.observe_demands(demands);
  // 0.5*500 + 0.5*2000 = 1250 MIPS.
  EXPECT_NEAR(dc.current_usage(0).cpu, 1250.0, 1e-9);
}

TEST(Heterogeneous, CanHostUsesTargetCapacity) {
  DataCenterConfig config;
  std::vector<PmSpec> pms{hp_proliant_ml110_g5(), hp_proliant_ml110_g4()};
  std::vector<VmSpec> vms{ec2_medium()};
  DataCenter dc(pms, vms, config);
  dc.place(0, 0);
  std::vector<Resources> demands(1, Resources{0.95, 0.2});
  dc.observe_demands(demands);
  // 1900 MIPS fits the G5 (2660) but not the G4 (1860).
  EXPECT_FALSE(dc.can_host(1, 0));
}

TEST(Heterogeneous, PowerModelsDifferPerPm) {
  DataCenterConfig config;
  std::vector<PmSpec> pms{hp_proliant_ml110_g5(), hp_proliant_ml110_g4()};
  std::vector<VmSpec> vms{ec2_micro()};
  DataCenter dc(pms, vms, config);
  EXPECT_DOUBLE_EQ(dc.pm(0).power_model().idle_watts(), 93.7);
  EXPECT_DOUBLE_EQ(dc.pm(1).power_model().idle_watts(), 86.0);
}

}  // namespace
}  // namespace glap::cloud
