// Lookups into an unordered container are fine; iteration goes through
// the blessed sorted-extraction idiom (copy out, sort, then iterate).
#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

int sum_sorted(const std::unordered_map<int, int>& load) {
  std::vector<std::pair<int, int>> sorted(load.begin(), load.end());
  std::sort(sorted.begin(), sorted.end());
  int total = 0;
  for (const auto& [pm, cpu] : sorted) total += cpu;
  return total + (load.count(0) ? 1 : 0);
}
