// Iteration order over unordered containers depends on hashing and
// allocation history — engine-order-dependent in protocol code.
#include <unordered_map>
#include <unordered_set>

int sum(const std::unordered_map<int, int>& load,
        const std::unordered_set<int>& active) {
  int total = 0;
  for (const auto& [pm, cpu] : load) total += cpu;
  for (int pm : active) total += pm;
  auto it = load.begin();
  (void)it;
  return total;
}
