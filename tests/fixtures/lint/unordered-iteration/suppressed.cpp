#include <unordered_map>

int sum(const std::unordered_map<int, int>& load) {
  int total = 0;
  // glap-lint: allow(unordered-iteration): integer sum is iteration-order independent; pinned by the paired unit test
  for (const auto& [pm, cpu] : load) total += cpu;
  return total;
}
