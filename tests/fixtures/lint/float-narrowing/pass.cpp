// Q-table kernels are double end to end — merges, cosine similarity,
// and updates all stay in double precision.
double merge(double mine, double theirs, double weight) {
  return mine + weight * (theirs - mine);
}
