// glap-lint: allow-file(float-narrowing): fixture models a quantized export path that is read-only for learning state
float quantize(double q) { return static_cast<float>(q); }
