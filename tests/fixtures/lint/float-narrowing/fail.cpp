// A float round-trip in a Q-table kernel silently perturbs merge results
// and breaks the golden tests.
float merge(float mine, double theirs, double weight) {
  return mine + static_cast<float>(weight * (theirs - mine));
}
