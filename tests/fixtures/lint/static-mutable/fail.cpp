// Mutable statics in protocol code survive across rounds and across
// engine configurations — hidden state the seed does not control.
static int call_count = 0;

int bump() {
  static long total = 0;
  ++call_count;
  return static_cast<int>(++total);
}
