// glap-lint: allow-file(static-mutable): fixture pins the file-wide allow form; not linked into the simulator
static int call_count = 0;

int bump() {
  static long total = 0;
  ++call_count;
  return static_cast<int>(++total);
}
