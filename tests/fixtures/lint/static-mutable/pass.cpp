// Constants and functions are fine; only mutable statics carry hidden
// cross-round / cross-run state.
static const int kRetries = 3;
static constexpr double kAlpha = 0.1;

static int helper(int x) { return x + kRetries; }

static inline long scaled(long v) { return v * 2; }
