// Pointer *values* may be stored; only ordering/hashing by address is
// banned. Keys here are stable integer ids.
#include <map>
#include <set>

struct Node {
  int id;
};

std::map<int, Node*> by_id;
std::set<int> ids;
