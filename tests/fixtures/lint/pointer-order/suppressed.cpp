#include <map>

struct Node {
  int id;
};

// glap-lint: allow(pointer-order): membership-only set; never iterated and never feeds an ordering decision
std::map<Node*, int> seen;
